package adaptiveba

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

func TestReplicateBatchFailureFree(t *testing.T) {
	const n, rounds, batch = 5, 2, 3
	res, err := ReplicateBatchContext(context.Background(), n,
		queuesFor(n, rounds*batch), rounds, WithBatch(batch))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatal("replicas diverged")
	}
	if got, want := res.Committed, n*rounds*batch; got != want {
		t.Fatalf("committed %d commands, want %d", got, want)
	}
	if res.SubsetMin != n {
		t.Errorf("min subset %d, want %d in a failure-free run", res.SubsetMin, n)
	}
	if len(res.Entries) != res.Committed {
		t.Fatalf("%d entries for %d committed commands", len(res.Entries), res.Committed)
	}
	// Round 0, proposer 0's batch leads the order.
	if !bytes.Equal(res.Entries[0].Command, []byte("cmd-0-0")) {
		t.Errorf("entry 0 committed %q", res.Entries[0].Command)
	}
	if res.WordsPerCommit <= 0 {
		t.Errorf("words per commit = %.1f", res.WordsPerCommit)
	}
	if res.StateHash == "" {
		t.Error("empty state hash")
	}
}

// TestReplicateBatchBeatsSingleProposer pins the throughput claim at the
// API level: one batched round commits n×batch commands where one
// single-proposer slot commits one.
func TestReplicateBatchBeatsSingleProposer(t *testing.T) {
	const n, batch = 5, 4
	acs, err := ReplicateBatchContext(context.Background(), n,
		queuesFor(n, batch), 1, WithBatch(batch))
	if err != nil {
		t.Fatal(err)
	}
	log, err := ReplicateLogContext(context.Background(), n, queuesFor(n, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	committed := 0
	for _, e := range log.Entries {
		if e.Command != nil {
			committed++
		}
	}
	if acs.Committed != n*batch || committed != 1 {
		t.Fatalf("per-slot commits: batched=%d single=%d, want %d and 1", acs.Committed, committed, n*batch)
	}
}

func TestReplicateBatchCrashFaults(t *testing.T) {
	const n, rounds, batch = 5, 2, 2
	res, err := ReplicateBatchContext(context.Background(), n,
		queuesFor(n, rounds*batch), rounds, WithBatch(batch), WithFaults(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatal("replicas diverged")
	}
	if res.SubsetMin < n-2 {
		t.Errorf("min subset %d < n-t = %d", res.SubsetMin, n-2)
	}
	if got, want := res.Committed, (n-2)*rounds*batch; got != want {
		t.Errorf("committed %d commands, want %d", got, want)
	}
	for _, e := range res.Entries {
		if e.Proposer == 1 || e.Proposer == 2 {
			t.Errorf("slot %d attributed to crashed proposer %d", e.Slot, e.Proposer)
		}
	}
}

// TestReplicateBatchPipelined checks the window-independence contract:
// committed entries and the state hash are identical at every inflight
// window.
func TestReplicateBatchPipelined(t *testing.T) {
	const n, rounds, batch = 5, 3, 2
	var serial *BatchResult
	for _, w := range []int{1, 2} {
		res, err := ReplicateBatchContext(context.Background(), n,
			queuesFor(n, rounds*batch), rounds, WithBatch(batch), WithInflight(w))
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if serial == nil {
			serial = res
			continue
		}
		if res.StateHash != serial.StateHash {
			t.Errorf("w=%d: state hash %s != serial %s", w, res.StateHash, serial.StateHash)
		}
		if len(res.Entries) != len(serial.Entries) {
			t.Fatalf("w=%d: %d entries != serial %d", w, len(res.Entries), len(serial.Entries))
		}
		for i := range res.Entries {
			if !bytes.Equal(res.Entries[i].Command, serial.Entries[i].Command) {
				t.Errorf("w=%d: entry %d differs", w, i)
			}
		}
	}
}

func TestReplicateBatchValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := ReplicateBatchContext(ctx, 5, queuesFor(4, 1), 1); !errors.Is(err, ErrInputs) {
		t.Errorf("queue count: %v", err)
	}
	if _, err := ReplicateBatchContext(ctx, 5, queuesFor(5, 1), 0); !errors.Is(err, ErrInputs) {
		t.Errorf("zero rounds: %v", err)
	}
	if _, err := ReplicateBatchContext(ctx, 2, queuesFor(2, 1), 1); !errors.Is(err, ErrBadN) {
		t.Errorf("bad n: %v", err)
	}
	if _, err := ReplicateBatchContext(ctx, 5, queuesFor(5, 1), 1, WithBatch(-1)); !errors.Is(err, ErrOptions) {
		t.Errorf("negative batch: %v", err)
	}
	if _, err := ReplicateBatchContext(ctx, 5, queuesFor(5, 1), 1, WithPattern(FaultReplay), WithFaults(1)); !errors.Is(err, ErrOptions) {
		t.Errorf("unsupported pattern: %v", err)
	}
}

func TestReplicateBatchCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ReplicateBatchContext(ctx, 5, queuesFor(5, 1), 1)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("canceled run returned %v", err)
	}
}
