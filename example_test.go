package adaptiveba_test

import (
	"bytes"
	"fmt"

	"adaptiveba"
)

// The simplest use: a designated sender broadcasts a value to n processes
// with Byzantine fault tolerance. In failure-free runs this costs O(n)
// words — not the classic Θ(n²).
func ExampleBroadcast() {
	res, err := adaptiveba.Broadcast(adaptiveba.Options{N: 9}, []byte("block #1"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("decision=%s agreement=%v\n", res.Decision, res.Agreement)
	// Output:
	// decision=block #1 agreement=true
}

// Broadcast tolerates up to t = (n-1)/2 corrupted processes; here two
// processes crash and validity still holds.
func ExampleBroadcast_withFaults() {
	res, err := adaptiveba.Broadcast(adaptiveba.Options{N: 9, Faults: 2}, []byte("v"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("decision=%s fallback-processes=%d\n", res.Decision, res.FallbackProcesses)
	// Output:
	// decision=v fallback-processes=0
}

// Weak Byzantine Agreement decides a value satisfying an application
// predicate (unique validity): every process proposes, and the decision
// is one of the valid proposals, or ⊥ only if several valid values
// circulated.
func ExampleWeakAgree() {
	inputs := [][]byte{
		[]byte("tx:a"), []byte("tx:a"), []byte("tx:a"),
		[]byte("tx:a"), []byte("tx:a"),
	}
	isTx := func(v []byte) bool { return bytes.HasPrefix(v, []byte("tx:")) }
	res, err := adaptiveba.WeakAgree(adaptiveba.Options{N: 5}, inputs, isTx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("decision=%s\n", res.Decision)
	// Output:
	// decision=tx:a
}

// Binary strong BA guarantees strong unanimity: if every correct process
// proposes the same bit, that bit wins — at O(n) words when failure-free.
func ExampleStrongAgreeBinary() {
	inputs := []bool{true, true, true, true, true, true, true, true, true}
	res, err := adaptiveba.StrongAgreeBinary(adaptiveba.Options{N: 9}, inputs)
	if err != nil {
		panic(err)
	}
	bit, ok := res.Bit()
	fmt.Printf("bit=%v ok=%v\n", bit, ok)
	// Output:
	// bit=true ok=true
}

// ReplicateLog turns the broadcast into a totally-ordered replicated log:
// one slot per adaptive Byzantine Broadcast, rotating proposers.
func ExampleReplicateLog() {
	queues := [][][]byte{
		{[]byte("SET a=1")},
		{[]byte("SET b=2")},
		{[]byte("SET c=3")},
	}
	res, err := adaptiveba.ReplicateLog(adaptiveba.Options{N: 3}, queues, 3)
	if err != nil {
		panic(err)
	}
	for _, e := range res.Entries {
		fmt.Printf("slot %d: %s\n", e.Slot, e.Command)
	}
	// Output:
	// slot 0: SET a=1
	// slot 1: SET b=2
	// slot 2: SET c=3
}

// AgreeStrong is the multivalued strong agreement (the non-adaptive
// fallback run directly): if every correct process proposes the same
// value, it wins.
func ExampleAgreeStrong() {
	inputs := [][]byte{
		[]byte("state-root-9c"), []byte("state-root-9c"), []byte("state-root-9c"),
		[]byte("state-root-9c"), []byte("state-root-9c"),
	}
	res, err := adaptiveba.AgreeStrong(adaptiveba.Options{N: 5, Faults: 1}, inputs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("decision=%s\n", res.Decision)
	// Output:
	// decision=state-root-9c
}
