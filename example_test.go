package adaptiveba_test

import (
	"bytes"
	"context"
	"fmt"
	"os"

	"adaptiveba"
)

// mustTempDir makes a scratch directory for the service example's blob
// store (examples have no testing.T to clean up with).
func mustTempDir() string {
	dir, err := os.MkdirTemp("", "adaptiveba-example-")
	if err != nil {
		panic(err)
	}
	return dir
}

// The simplest use: a designated sender broadcasts a value to n processes
// with Byzantine fault tolerance. In failure-free runs this costs O(n)
// words — not the classic Θ(n²).
func ExampleBroadcastContext() {
	res, err := adaptiveba.BroadcastContext(context.Background(), 9, []byte("block #1"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("decision=%s agreement=%v\n", res.Decision, res.Agreement)
	// Output:
	// decision=block #1 agreement=true
}

// Broadcast tolerates up to t = (n-1)/2 corrupted processes; here two
// processes crash and validity still holds.
func ExampleBroadcastContext_withFaults() {
	res, err := adaptiveba.BroadcastContext(context.Background(), 9, []byte("v"),
		adaptiveba.WithFaults(2))
	if err != nil {
		panic(err)
	}
	fmt.Printf("decision=%s fallback-processes=%d\n", res.Decision, res.FallbackProcesses)
	// Output:
	// decision=v fallback-processes=0
}

// Weak Byzantine Agreement decides a value satisfying an application
// predicate (unique validity): every process proposes, and the decision
// is one of the valid proposals, or ⊥ only if several valid values
// circulated.
func ExampleWeakAgreeContext() {
	inputs := [][]byte{
		[]byte("tx:a"), []byte("tx:a"), []byte("tx:a"),
		[]byte("tx:a"), []byte("tx:a"),
	}
	isTx := func(v []byte) bool { return bytes.HasPrefix(v, []byte("tx:")) }
	res, err := adaptiveba.WeakAgreeContext(context.Background(), 5, inputs, isTx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("decision=%s\n", res.Decision)
	// Output:
	// decision=tx:a
}

// Binary strong BA guarantees strong unanimity: if every correct process
// proposes the same bit, that bit wins — at O(n) words when failure-free.
func ExampleStrongAgreeBinaryContext() {
	inputs := []bool{true, true, true, true, true, true, true, true, true}
	res, err := adaptiveba.StrongAgreeBinaryContext(context.Background(), 9, inputs)
	if err != nil {
		panic(err)
	}
	bit, ok := res.Bit()
	fmt.Printf("bit=%v ok=%v\n", bit, ok)
	// Output:
	// bit=true ok=true
}

// ReplicateLogContext turns the broadcast into a totally-ordered
// replicated log: one slot per adaptive Byzantine Broadcast, rotating
// proposers.
func ExampleReplicateLogContext() {
	queues := [][][]byte{
		{[]byte("SET a=1")},
		{[]byte("SET b=2")},
		{[]byte("SET c=3")},
	}
	res, err := adaptiveba.ReplicateLogContext(context.Background(), 3, queues, 3)
	if err != nil {
		panic(err)
	}
	for _, e := range res.Entries {
		fmt.Printf("slot %d: %s\n", e.Slot, e.Command)
	}
	// Output:
	// slot 0: SET a=1
	// slot 1: SET b=2
	// slot 2: SET c=3
}

// StrongAgreeContext is the multivalued strong agreement (the
// non-adaptive fallback run directly): if every correct process
// proposes the same value, it wins.
func ExampleStrongAgreeContext() {
	inputs := [][]byte{
		[]byte("state-root-9c"), []byte("state-root-9c"), []byte("state-root-9c"),
		[]byte("state-root-9c"), []byte("state-root-9c"),
	}
	res, err := adaptiveba.StrongAgreeContext(context.Background(), 5, inputs,
		adaptiveba.WithFaults(1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("decision=%s\n", res.Decision)
	// Output:
	// decision=state-root-9c
}

// The replicated KV service: writes commit through batched agreement
// rounds, large values are anchored through the content-addressed blob
// store (only their 32-byte digests enter agreement), and Verify walks
// the tamper-evident audit chain end to end.
func ExampleServeContext() {
	ctx := context.Background()
	dir := mustTempDir()
	svc, err := adaptiveba.ServeContext(ctx, "127.0.0.1:0",
		adaptiveba.WithBlobDir(dir), adaptiveba.WithInlineMax(64))
	if err != nil {
		panic(err)
	}
	defer svc.Close()

	c, err := adaptiveba.DialContext(ctx, svc.Addr())
	if err != nil {
		panic(err)
	}
	defer c.Close()

	if err := c.Put(ctx, []byte("config"), []byte("v1")); err != nil {
		panic(err)
	}
	if err := c.Put(ctx, []byte("payload"), bytes.Repeat([]byte("x"), 1000)); err != nil {
		panic(err)
	}
	v, err := c.Get(ctx, []byte("config"))
	if err != nil {
		panic(err)
	}
	rep, err := c.Verify(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("config=%s verified=%v anchored-blobs=%d\n", v, rep.OK(), rep.Blobs)
	// Output:
	// config=v1 verified=true anchored-blobs=1
}
