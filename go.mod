module adaptiveba

go 1.22
