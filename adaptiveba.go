// Package adaptiveba is a from-scratch Go implementation of the protocols
// in "Make Every Word Count: Adaptive Byzantine Agreement with Fewer
// Words" (Cohen, Keidar, Spiegelman — PODC 2022): Byzantine Broadcast and
// weak Byzantine Agreement with O(n(f+1)) communication at optimal
// resilience n = 2t+1, and a binary strong BA that is linear in the
// failure-free case.
//
// The package's primary surface is context-aware and option-based:
// BroadcastContext, WeakAgreeContext, StrongAgreeBinaryContext,
// StrongAgreeContext, and ReplicateLogContext each execute a full
// protocol run on the built-in deterministic synchronous simulator and
// report the decision together with the paper's cost metrics (words
// sent by correct processes); RunMany fans a whole batch of instances
// out over the multi-session engine, pipelined up to the WithInflight
// window. Fault injection and every other knob are functional Options
// (WithFaults, WithPattern, WithSeed, WithRealSignatures, WithTrace,
// WithThreshold, WithInflight); validation and cancellation failures
// are typed sentinels (ErrBadN, ErrTooManyFaults, ErrNoQuorum,
// ErrCanceled) matched with errors.Is.
//
// The earlier Options-struct entry points (Broadcast, WeakAgree,
// StrongAgreeBinary, StrongAgree, ReplicateLog) remain as thin
// wrappers and keep working; new code should prefer the context forms.
//
// For networked deployments, lower-level building blocks (the protocol
// state machines, the TCP runtime, the adversary library, and the
// experiment harness) live under internal/; the cmd/ binaries expose them
// on the command line.
package adaptiveba

import (
	"errors"
	"fmt"
	"io"

	"adaptiveba/internal/harness"
	"adaptiveba/internal/types"
)

// FaultPattern selects how the run's f corrupted processes misbehave.
type FaultPattern string

// Fault patterns supported by the one-shot API.
const (
	// FaultCrash stops processes 1..f (the first rotating leaders; the
	// worst crash placement for the adaptive protocols).
	FaultCrash FaultPattern = "crash"
	// FaultCrashLeader stops processes 0..f-1, including the designated
	// sender/leader p0.
	FaultCrashLeader FaultPattern = "crash-leader"
	// FaultReplay stops the corrupted processes and replays stale honest
	// traffic from their identities.
	FaultReplay FaultPattern = "replay"
)

// Options configures a run.
type Options struct {
	// N is the number of processes (n = 2t+1; even n tolerates the same
	// t as n-1). Required, at least 3.
	N int
	// Faults is the number of corrupted processes f (0 ≤ f ≤ t).
	Faults int
	// Pattern selects the corruption behaviour (default FaultCrash).
	Pattern FaultPattern
	// Seed drives randomized fault patterns.
	Seed int64
	// RealSignatures switches from fast HMAC authenticators to Ed25519.
	RealSignatures bool
	// Trace, if non-nil, receives a per-message trace of the run.
	Trace io.Writer
	// Threshold overrides the corruption threshold t (default
	// floor((n-1)/2), the paper's optimal n = 2t+1). N < 2t+1 fails
	// with ErrNoQuorum.
	Threshold int
	// Inflight bounds how many sessions a multi-session run (RunMany,
	// the replicated log) keeps in flight concurrently; 1 is strictly
	// serial, 0 pipelines as deeply as the workload allows.
	Inflight int
	// Batch is the per-proposer batch size of a batched log run
	// (ReplicateBatchContext); 0 means 1.
	Batch int
	// Sched selects the session scheduling policy of a multi-session
	// run (Static or Eager; nil = Static). See WithScheduler.
	Sched Scheduler
}

// Result reports a completed run.
type Result struct {
	// Decision is the agreed value; nil means the protocol decided ⊥.
	Decision []byte
	// Bottom reports a ⊥ decision explicitly.
	Bottom bool
	// Agreement is true when all correct processes decided identically
	// (it always should be; exposed for test harnesses and paranoia).
	Agreement bool
	// AllDecided is true when every correct process terminated with a
	// decision.
	AllDecided bool
	// Words is the paper's cost measure: words sent by correct processes.
	Words int64
	// Messages is the number of messages sent by correct processes.
	Messages int64
	// Ticks is the run's duration in δ units.
	Ticks int64
	// FallbackProcesses is the number of correct processes that executed
	// the quadratic fallback algorithm.
	FallbackProcesses int
	// LayerWords breaks Words down per protocol layer (the composition
	// of Figure 1 in the paper).
	LayerWords map[string]int64
}

// Errors returned by the public API.
var (
	// ErrOptions reports invalid Options.
	ErrOptions = errors.New("adaptiveba: invalid options")
	// ErrInputs reports invalid protocol inputs.
	ErrInputs = errors.New("adaptiveba: invalid inputs")
)

// Broadcast runs the adaptive Byzantine Broadcast (paper Algorithms 1–2)
// with process 0 as the designated sender broadcasting value. When the
// sender stays correct, the decision is value at every correct process;
// with a corrupted sender the decision is some common value or ⊥.
//
// Deprecated: Use BroadcastContext, which adds cancellation and
// functional options; this struct form is kept for existing callers
// and pinned byte-identical by TestAPIParityBroadcast.
func Broadcast(opts Options, value []byte) (*Result, error) {
	return broadcastRun(opts, nil, value)
}

func broadcastRun(opts Options, halt func(types.Tick) bool, value []byte) (*Result, error) {
	spec, err := baseSpec(opts)
	if err != nil {
		return nil, err
	}
	spec.Protocol = harness.ProtocolBB
	spec.Value = types.Value(value).Clone()
	spec.Halt = halt
	return runSpec(spec)
}

// WeakAgree runs the adaptive weak Byzantine Agreement (Algorithms 3–4)
// with one input per process (inputs[i] is process i's proposal) and the
// given validity predicate; a nil predicate accepts any non-empty value.
// Unique validity guarantees the decision satisfies the predicate or is ⊥,
// and ⊥ only when several valid values existed in the run.
//
// Deprecated: Use WeakAgreeContext, which adds cancellation and
// functional options; this struct form is kept for existing callers
// and pinned byte-identical by TestAPIParityWeakAgree.
func WeakAgree(opts Options, inputs [][]byte, predicate func([]byte) bool) (*Result, error) {
	return weakAgreeRun(opts, nil, inputs, predicate)
}

func weakAgreeRun(opts Options, halt func(types.Tick) bool, inputs [][]byte, predicate func([]byte) bool) (*Result, error) {
	spec, err := baseSpec(opts)
	if err != nil {
		return nil, err
	}
	spec.Halt = halt
	if len(inputs) != opts.N {
		return nil, fmt.Errorf("%w: need %d inputs, got %d", ErrInputs, opts.N, len(inputs))
	}
	spec.Protocol = harness.ProtocolWBA
	spec.PerProcessInputs = make([]types.Value, len(inputs))
	for i, in := range inputs {
		if len(in) == 0 {
			return nil, fmt.Errorf("%w: process %d has an empty input", ErrInputs, i)
		}
		spec.PerProcessInputs[i] = types.Value(in).Clone()
	}
	if predicate != nil {
		spec.Predicate = func(v types.Value) bool { return predicate([]byte(v)) }
	}
	return runSpec(spec)
}

// StrongAgreeBinary runs the binary strong BA (Algorithm 5): inputs[i] is
// process i's bit. If all correct processes propose the same bit, that
// bit is the decision; the cost is O(n) words when no process fails.
//
// Deprecated: Use StrongAgreeBinaryContext, which adds cancellation
// and functional options; this struct form is kept for existing
// callers and pinned byte-identical by TestAPIParityStrongAgreeBinary.
func StrongAgreeBinary(opts Options, inputs []bool) (*Result, error) {
	return strongAgreeBinaryRun(opts, nil, inputs)
}

func strongAgreeBinaryRun(opts Options, halt func(types.Tick) bool, inputs []bool) (*Result, error) {
	spec, err := baseSpec(opts)
	if err != nil {
		return nil, err
	}
	spec.Halt = halt
	if len(inputs) != opts.N {
		return nil, fmt.Errorf("%w: need %d inputs, got %d", ErrInputs, opts.N, len(inputs))
	}
	spec.Protocol = harness.ProtocolStrongBA
	spec.PerProcessInputs = make([]types.Value, len(inputs))
	for i, b := range inputs {
		spec.PerProcessInputs[i] = types.BinaryValue(b)
	}
	return runSpec(spec)
}

// StrongAgree runs multivalued strong Byzantine Agreement: if all correct
// processes propose the same value, that value is decided. Unlike the
// adaptive protocols, its cost does not adapt to f — it is the quadratic
// A_fallback (n parallel authenticated broadcasts and a plurality vote)
// run directly, provided for completeness of the problem family (the
// paper's Table 1 cites Momose–Ren for this row).
//
// Deprecated: Use StrongAgreeContext, which adds cancellation and
// functional options; this struct form is kept for existing callers
// and pinned byte-identical by TestAPIParityStrongAgree.
func StrongAgree(opts Options, inputs [][]byte) (*Result, error) {
	return strongAgreeRun(opts, nil, inputs)
}

// AgreeStrong is the former name of StrongAgree, kept as an alias so
// existing callers compile unchanged.
//
// Deprecated: Use StrongAgree (or StrongAgreeContext). The name now
// matches its siblings StrongAgreeBinary / StrongAgreeBinaryContext.
func AgreeStrong(opts Options, inputs [][]byte) (*Result, error) {
	return StrongAgree(opts, inputs)
}

func strongAgreeRun(opts Options, halt func(types.Tick) bool, inputs [][]byte) (*Result, error) {
	spec, err := baseSpec(opts)
	if err != nil {
		return nil, err
	}
	spec.Halt = halt
	if len(inputs) != opts.N {
		return nil, fmt.Errorf("%w: need %d inputs, got %d", ErrInputs, opts.N, len(inputs))
	}
	spec.Protocol = harness.ProtocolFallback
	spec.PerProcessInputs = make([]types.Value, len(inputs))
	for i, in := range inputs {
		if len(in) == 0 {
			return nil, fmt.Errorf("%w: process %d has an empty input", ErrInputs, i)
		}
		spec.PerProcessInputs[i] = types.Value(in).Clone()
	}
	return runSpec(spec)
}

// Bit converts a binary decision back to a bool. ok is false for ⊥ or
// non-binary decisions.
func (r *Result) Bit() (bit, ok bool) {
	v := types.Value(r.Decision)
	if !v.IsBinary() {
		return false, false
	}
	return v.Equal(types.One), true
}

// baseSpec validates options into a harness spec. Failures carry the
// typed sentinels (ErrBadN, ErrTooManyFaults, ErrNoQuorum), each of
// which also matches the legacy ErrOptions class.
func baseSpec(opts Options) (harness.Spec, error) {
	if opts.N < 3 {
		return harness.Spec{}, fmt.Errorf("%w: n=%d (need at least 3)", ErrBadN, opts.N)
	}
	var params types.Params
	var err error
	if opts.Threshold != 0 {
		params, err = types.Custom(opts.N, opts.Threshold)
		if err != nil {
			return harness.Spec{}, fmt.Errorf("%w: n=%d cannot tolerate t=%d (%v)",
				ErrNoQuorum, opts.N, opts.Threshold, err)
		}
	} else if params, err = types.NewParams(opts.N); err != nil {
		return harness.Spec{}, fmt.Errorf("%w: %v", ErrBadN, err)
	}
	if opts.Faults < 0 || opts.Faults > params.T {
		return harness.Spec{}, fmt.Errorf("%w: f=%d with t=%d", ErrTooManyFaults, opts.Faults, params.T)
	}
	spec := harness.Spec{
		N:       opts.N,
		T:       opts.Threshold,
		F:       opts.Faults,
		Seed:    opts.Seed,
		Ed25519: opts.RealSignatures,
		Trace:   opts.Trace,
	}
	switch opts.Pattern {
	case "", FaultCrash:
		spec.Fault = harness.FaultCrash
	case FaultCrashLeader:
		spec.Fault = harness.FaultCrashLeader
	case FaultReplay:
		spec.Fault = harness.FaultReplay
	default:
		return harness.Spec{}, fmt.Errorf("%w: unknown fault pattern %q", ErrOptions, opts.Pattern)
	}
	return spec, nil
}

// runSpec executes and converts the outcome.
func runSpec(spec harness.Spec) (*Result, error) {
	o, err := harness.Run(spec)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Bottom:            o.Decision.IsBottom(),
		Agreement:         o.Agreement,
		AllDecided:        o.Decided,
		Words:             o.Words,
		Messages:          o.Messages,
		Ticks:             int64(o.Ticks),
		FallbackProcesses: o.FallbackCount,
		LayerWords:        make(map[string]int64, len(o.ByLayer)),
	}
	if !o.Decision.IsBottom() {
		res.Decision = append([]byte(nil), o.Decision...)
	}
	for layer, s := range o.ByLayer {
		res.LayerWords[layer] = s.Words
	}
	return res, nil
}
