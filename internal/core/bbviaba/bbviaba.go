// Package bbviaba implements the classic reduction the paper recalls at
// the start of Section 5 (and Figure 1 depicts): Byzantine Broadcast from
// strong BA. The designated sender first sends its value to everyone;
// then all processes run strong BA on what they received. If the sender
// is correct, every correct process enters the BA with the same input and
// strong unanimity forces that value.
//
// Because the only optimally-resilient strong BA in this repository (and
// in the paper) is binary, this reduction broadcasts one bit. It serves
// two roles: a working demonstration of Figure 1's right-hand box, and an
// experimental contrast — its cost degrades to the strong BA's quadratic
// regime at the first failure, while the paper's adaptive BB (package bb)
// stays linear up to the fallback threshold.
package bbviaba

import (
	"fmt"

	"adaptiveba/internal/core/strongba"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

const baSession = "ba"

// senderBase is what the sender signs over its bit.
func senderBase(tag string, sender types.ProcessID, v types.Value) []byte {
	w := wire.NewWriter()
	w.PutString("bbviaba/sender")
	w.PutString(tag)
	w.PutProcess(sender)
	w.PutValue(v)
	return w.Bytes()
}

// SenderBit is the round-1 dissemination ⟨v⟩_sender.
type SenderBit struct {
	V   types.Value
	Sig sig.Signature
}

// Type implements proto.Payload.
func (SenderBit) Type() string { return "bbviaba/sender" }

// Words implements proto.Payload.
func (SenderBit) Words() int { return 1 }

// SigCount implements proto.SigCarrier.
func (SenderBit) SigCount() int { return 1 }

// Config parameterizes the reduction for one process.
type Config struct {
	Params types.Params
	Crypto *proto.Crypto
	ID     types.ProcessID
	Sender types.ProcessID
	// Input is the broadcast bit (types.Zero or types.One); used when
	// ID == Sender.
	Input types.Value
	// Tag domain-separates this instance.
	Tag string
}

// Machine implements proto.Machine for the reduction.
type Machine struct {
	cfg   Config
	clock proto.RoundClock
	input types.Value // BA input adopted from the sender (default 0)
	baSub *proto.Sub
	ba    *strongba.Machine
	err   error
}

var _ proto.Machine = (*Machine)(nil)

// NewMachine builds the reduction machine.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.ID == cfg.Sender && !cfg.Input.IsBinary() {
		return nil, fmt.Errorf("bbviaba: %w", strongba.ErrNotBinary)
	}
	if err := cfg.Params.CheckProcess(cfg.Sender); err != nil {
		return nil, fmt.Errorf("bbviaba: %w", err)
	}
	return &Machine{cfg: cfg, input: types.Zero}, nil
}

// MaxTicks bounds a full run.
func (m *Machine) MaxTicks() types.Tick {
	probe, err := strongba.NewMachine(strongba.Config{
		Params: m.cfg.Params, Crypto: m.cfg.Crypto, ID: m.cfg.ID,
		Input: types.Zero, Tag: m.cfg.Tag + "/probe",
	})
	if err != nil {
		return 64
	}
	return probe.MaxTicks() + 4
}

// RanFallback reports whether the inner strong BA used its fallback.
func (m *Machine) RanFallback() bool { return m.ba != nil && m.ba.RanFallback() }

// Failed returns the first internal error (for tests).
func (m *Machine) Failed() error { return m.err }

// Begin implements proto.Machine: the sender disseminates its signed bit.
func (m *Machine) Begin(now types.Tick) []proto.Outgoing {
	m.clock = proto.NewRoundClock(now, 1)
	if m.cfg.ID != m.cfg.Sender {
		return nil
	}
	s, err := m.cfg.Crypto.Signer(m.cfg.ID).Sign(senderBase(m.cfg.Tag, m.cfg.Sender, m.cfg.Input))
	if err != nil {
		m.err = err
		return nil
	}
	m.input = m.cfg.Input.Clone()
	return proto.Broadcast(m.cfg.Params, "", SenderBit{V: m.cfg.Input, Sig: s})
}

// Tick implements proto.Machine.
func (m *Machine) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	var outs []proto.Outgoing
	var baIn []proto.Incoming
	for _, in := range inbox {
		if head, _ := proto.SplitSession(in.Session); head == baSession {
			baIn = append(baIn, in)
			continue
		}
		// Round-1 dissemination: adopt a valid sender bit before the BA
		// starts.
		sb, ok := in.Payload.(SenderBit)
		if !ok || in.From != m.cfg.Sender || m.baSub != nil || !sb.V.IsBinary() {
			continue
		}
		if m.cfg.Crypto.Scheme.Verify(m.cfg.Sender, senderBase(m.cfg.Tag, m.cfg.Sender, sb.V), sb.Sig) {
			m.input = sb.V.Clone()
		}
	}

	// The BA starts in round 2 for everyone simultaneously.
	if r, boundary := m.clock.BoundaryAt(now); boundary && r == 2 && m.baSub == nil {
		ba, err := strongba.NewMachine(strongba.Config{
			Params: m.cfg.Params, Crypto: m.cfg.Crypto, ID: m.cfg.ID,
			Input: m.input, Tag: m.cfg.Tag + "/" + baSession,
		})
		if err != nil {
			m.err = err
			return outs
		}
		m.ba = ba
		m.baSub = proto.NewSub(baSession, ba)
		outs = append(outs, m.baSub.Begin(now)...)
	}
	if m.baSub != nil {
		routed := make([]proto.Incoming, 0, len(baIn))
		for _, in := range baIn {
			_, rest := proto.SplitSession(in.Session)
			in.Session = rest
			routed = append(routed, in)
		}
		outs = append(outs, m.baSub.Tick(now, routed)...)
	}
	return outs
}

// Output implements proto.Machine.
func (m *Machine) Output() (types.Value, bool) {
	if m.baSub == nil {
		return nil, false
	}
	return m.baSub.Output()
}

// Done implements proto.Machine.
func (m *Machine) Done() bool { return m.baSub != nil && m.baSub.Done() }
