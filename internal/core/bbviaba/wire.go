package bbviaba

import (
	"fmt"

	"adaptiveba/internal/proto"
	"adaptiveba/internal/wire"
)

// RegisterWire registers this package's payload codec (the nested strong
// BA registers its own).
func RegisterWire(reg *wire.Registry) {
	reg.MustRegister(wire.Codec{
		Type: SenderBit{}.Type(),
		Encode: func(w *wire.Writer, p proto.Payload) error {
			m, ok := p.(SenderBit)
			if !ok {
				return fmt.Errorf("bbviaba: unexpected payload %T", p)
			}
			w.PutValue(m.V)
			w.PutSig(m.Sig)
			return nil
		},
		Decode: func(r *wire.Reader) (proto.Payload, error) {
			return SenderBit{V: r.Value(), Sig: r.Sig()}, r.Err()
		},
	})
}
