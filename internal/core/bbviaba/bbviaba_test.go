package bbviaba

import (
	"testing"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

func setup(t *testing.T, n int) (*proto.Crypto, types.Params) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("bbviaba-test"))
	if err != nil {
		t.Fatal(err)
	}
	return proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d")), params
}

func run(t *testing.T, n int, sender types.ProcessID, bit types.Value, adv sim.Adversary) *sim.Result {
	t.Helper()
	crypto, params := setup(t, n)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m, err := NewMachine(Config{
				Params: params, Crypto: crypto, ID: id,
				Sender: sender, Input: bit, Tag: "r",
			})
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
		Adversary: adv,
		MaxTicks:  types.Tick(30*n + 300),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCorrectSenderValidity(t *testing.T) {
	for _, bit := range []types.Value{types.Zero, types.One} {
		res := run(t, 9, 2, bit, nil)
		if !res.AllDecided() {
			t.Fatal("not all decided")
		}
		v, ok := res.Agreement()
		if !ok || !v.Equal(bit) {
			t.Errorf("decided %v (%v), want %v", v, ok, bit)
		}
	}
}

func TestCrashedSenderStillAgrees(t *testing.T) {
	res := run(t, 9, 0, types.One, adversary.NewCrash(0))
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("disagreement")
	}
	// Everyone enters the BA with the default 0: strong unanimity → 0.
	if !v.Equal(types.Zero) {
		t.Errorf("decided %v, want default 0", v)
	}
}

func TestFollowerCrashesKeepValidity(t *testing.T) {
	res := run(t, 9, 0, types.One, adversary.NewCrash(3, 5, 7))
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.One) {
		t.Errorf("decided %v (%v), want 1", v, ok)
	}
}

func TestReductionLinearOnlyAtFZero(t *testing.T) {
	// The reduction's headline limitation: at f=0 it is O(n), but a
	// single crash already sends the inner strong BA into its fallback —
	// unlike the adaptive BB, which stays O(n) up to the threshold.
	n := 21
	free := run(t, n, 0, types.One, nil)
	if w := free.Report.Honest.Words; w > int64(8*n) {
		t.Errorf("f=0 words = %d, want O(n)", w)
	}
	oneCrash := run(t, n, 0, types.One, adversary.NewCrash(5))
	if oneCrash.Report.Honest.Words < int64(3*n*n) {
		t.Errorf("f=1 words = %d; expected the quadratic+ regime", oneCrash.Report.Honest.Words)
	}
}

func TestInputValidation(t *testing.T) {
	crypto, params := setup(t, 5)
	if _, err := NewMachine(Config{Params: params, Crypto: crypto, ID: 0, Sender: 0, Input: types.Value("x"), Tag: "r"}); err == nil {
		t.Error("non-binary sender input accepted")
	}
	if _, err := NewMachine(Config{Params: params, Crypto: crypto, ID: 0, Sender: 99, Tag: "r"}); err == nil {
		t.Error("bad sender accepted")
	}
	// Non-senders do not need a binary input.
	if _, err := NewMachine(Config{Params: params, Crypto: crypto, ID: 1, Sender: 0, Tag: "r"}); err != nil {
		t.Errorf("non-sender rejected: %v", err)
	}
}
