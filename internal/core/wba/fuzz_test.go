package wba

import (
	"testing"

	"adaptiveba/internal/core/valid"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

// FuzzMachineIngest drives a weak BA machine with adversarially mutated
// payloads: whatever the registry decodes must never panic the machine or
// trick it into an unsound decision (a decision without a valid
// certificate).
func FuzzMachineIngest(f *testing.F) {
	reg := wire.NewRegistry()
	RegisterWire(reg)

	params, err := types.NewParams(5)
	if err != nil {
		f.Fatal(err)
	}
	ring, err := sig.NewHMACRing(5, []byte("fuzz"))
	if err != nil {
		f.Fatal(err)
	}
	crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))

	// Seed corpus: one well-formed frame per payload type.
	share, err := ring.Sign(1, []byte("x"))
	if err != nil {
		f.Fatal(err)
	}
	seeds := []proto.Payload{
		Propose{Phase: 1, V: types.Value("v")},
		Vote{Phase: 1, V: types.Value("v"), Share: share},
		Commit{Phase: 1, V: types.Value("v"), Level: 1},
		Finalized{Phase: 1, V: types.Value("v")},
		HelpReq{Share: share},
		Help{V: types.Value("v"), ProofPhase: 1},
		FallbackCert{V: types.Value("v")},
	}
	for _, p := range seeds {
		frame, err := reg.EncodePayload(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame, uint8(0), uint8(3))
	}

	f.Fuzz(func(t *testing.T, frame []byte, fromRaw, tickRaw uint8) {
		payload, err := reg.DecodePayload(frame)
		if err != nil {
			return
		}
		m := NewMachine(Config{
			Params: params, Crypto: crypto, ID: 0,
			Input: types.Value("own"), Predicate: valid.NonBottom(), Tag: "fz",
		})
		m.Begin(0)
		from := types.ProcessID(fromRaw % 5)
		horizon := types.Tick(tickRaw%40) + 1
		for now := types.Tick(1); now <= horizon; now++ {
			var inbox []proto.Incoming
			if now == horizon/2+1 {
				inbox = []proto.Incoming{{From: from, Payload: payload}}
			}
			m.Tick(now, inbox) // must not panic
		}
		// A single injected message can never legitimately decide this
		// machine: every decision path needs a quorum certificate, and
		// the fuzzer cannot forge one.
		if v, ok := m.Output(); ok {
			// The only way to decide is a valid Finalized/Help
			// certificate, which requires Quorum()=4 genuine signatures
			// over the exact instance tag. Reaching here means forgery.
			t.Fatalf("machine decided %v from a fuzzed message", v)
		}
	})
}
