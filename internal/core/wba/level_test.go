package wba

import (
	"testing"

	"adaptiveba/internal/core/valid"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

// levelFixture drives a single weak BA machine by hand, playing a
// Byzantine environment around it.
type levelFixture struct {
	t      *testing.T
	crypto *proto.Crypto
	params types.Params
	m      *Machine
	now    types.Tick
}

func newLevelFixture(t *testing.T) *levelFixture {
	t.Helper()
	params, err := types.NewParams(9)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(9, []byte("level-test"))
	if err != nil {
		t.Fatal(err)
	}
	crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))
	f := &levelFixture{t: t, crypto: crypto, params: params}
	f.m = NewMachine(Config{
		Params: params, Crypto: crypto, ID: 0,
		Input: types.Value("own"), Predicate: valid.NonBottom(), Tag: "lv",
	})
	f.m.Begin(0)
	return f
}

// step advances one tick delivering the given messages.
func (f *levelFixture) step(inbox ...proto.Incoming) []proto.Outgoing {
	f.now++
	return f.m.Tick(f.now, inbox)
}

// stepTo advances ticks (empty inboxes) until tick target.
func (f *levelFixture) stepTo(target types.Tick) {
	for f.now < target {
		f.step()
	}
}

// commitCert builds a valid commit certificate for (v, level) using the
// quorum's worth of signers.
func (f *levelFixture) commitCert(v types.Value, level int) *threshold.Cert {
	f.t.Helper()
	scheme := f.crypto.Threshold(f.params.Quorum())
	base := VoteBase("lv", level, v)
	var shares []threshold.Share
	for i := 0; i < f.params.Quorum(); i++ {
		sh, err := scheme.SignShare(types.ProcessID(i), base)
		if err != nil {
			f.t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	cert, err := scheme.Combine(base, shares)
	if err != nil {
		f.t.Fatal(err)
	}
	return cert
}

// decideShareSent reports whether outs contains a Decide for (v, phase).
func decideShareSent(outs []proto.Outgoing, v types.Value, phase int) bool {
	for _, o := range outs {
		if d, ok := o.Payload.(Decide); ok && d.Phase == phase && d.V.Equal(v) {
			return true
		}
	}
	return false
}

// TestCommitLevelGating exercises Algorithm 4 line 43: a process that
// committed at level L must reject commit certificates from lower levels
// — the invariant Lemma 15's cross-phase case stands on.
func TestCommitLevelGating(t *testing.T) {
	f := newLevelFixture(t)
	v2 := types.Value("v2")
	v1 := types.Value("v1")
	leader2 := f.params.Leader(2) // p2
	leader3 := f.params.Leader(3) // p3

	// Phase 2 (rounds 6..10, ticks 5..9): the machine receives a level-2
	// commit from phase 2's leader just before round 4 of the phase
	// (tick 8) and must answer with a decide share.
	f.stepTo(7)
	outs := f.step(proto.Incoming{
		From:    leader2,
		Payload: Commit{Phase: 2, V: v2, Cert: f.commitCert(v2, 2), Level: 2},
	})
	if !decideShareSent(outs, v2, 2) {
		t.Fatal("valid level-2 commit did not produce a decide share")
	}

	// Phase 3 (ticks 10..14): a STALE level-1 certificate for a different
	// value arrives from phase 3's leader. Level 1 < committed level 2:
	// the machine must stay silent.
	f.stepTo(12)
	outs = f.step(proto.Incoming{
		From:    leader3,
		Payload: Commit{Phase: 3, V: v1, Cert: f.commitCert(v1, 1), Level: 1},
	})
	if decideShareSent(outs, v1, 3) {
		t.Fatal("stale lower-level commit harvested a decide share (Lemma 15 regression)")
	}
}

// TestCommitRejectsForgedAndMismatchedCerts covers the remaining guards
// of round 4: bad certificates, future levels, and leader binding.
func TestCommitRejectsForgedAndMismatchedCerts(t *testing.T) {
	cases := []struct {
		name  string
		build func(f *levelFixture) proto.Incoming
	}{
		{
			name: "forged certificate",
			build: func(f *levelFixture) proto.Incoming {
				return proto.Incoming{
					From: f.params.Leader(2),
					Payload: Commit{Phase: 2, V: types.Value("x"), Level: 2,
						Cert: &threshold.Cert{K: f.params.Quorum(), Signers: types.NewBitSet(9), Tag: []byte("junk")}},
				}
			},
		},
		{
			name: "level exceeds phase",
			build: func(f *levelFixture) proto.Incoming {
				return proto.Incoming{
					From:    f.params.Leader(2),
					Payload: Commit{Phase: 2, V: types.Value("x"), Cert: f.commitCert(types.Value("x"), 3), Level: 3},
				}
			},
		},
		{
			name: "cert level does not match claimed level",
			build: func(f *levelFixture) proto.Incoming {
				return proto.Incoming{
					From:    f.params.Leader(2),
					Payload: Commit{Phase: 2, V: types.Value("x"), Cert: f.commitCert(types.Value("x"), 1), Level: 2},
				}
			},
		},
		{
			name: "commit from a non-leader",
			build: func(f *levelFixture) proto.Incoming {
				return proto.Incoming{
					From:    7, // not phase 2's leader
					Payload: Commit{Phase: 2, V: types.Value("x"), Cert: f.commitCert(types.Value("x"), 2), Level: 2},
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newLevelFixture(t)
			f.stepTo(7)
			outs := f.step(tc.build(f))
			if decideShareSent(outs, types.Value("x"), 2) {
				t.Fatalf("%s: decide share produced", tc.name)
			}
			f.stepTo(9) // drain the rest of the phase
		})
	}
}

// TestFinalizedFromWrongLeaderStillSafe: Finalized messages are accepted
// from anyone because they are certificate-backed — but only with a VALID
// certificate for the claimed phase.
func TestFinalizedValidation(t *testing.T) {
	f := newLevelFixture(t)
	// Garbage certificate: no decision.
	f.step(proto.Incoming{
		From: 5,
		Payload: Finalized{Phase: 1, V: types.Value("x"),
			Cert: &threshold.Cert{K: f.params.Quorum(), Signers: types.NewBitSet(9), Tag: []byte("bad")}},
	})
	if _, ok := f.m.Output(); ok {
		t.Fatal("decided on a forged finalize certificate")
	}
	// A genuine certificate decides immediately, regardless of sender.
	scheme := f.crypto.Threshold(f.params.Quorum())
	base := DecideBase("lv", 1, types.Value("real"))
	var shares []threshold.Share
	for i := 0; i < f.params.Quorum(); i++ {
		sh, err := scheme.SignShare(types.ProcessID(i), base)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	cert, err := scheme.Combine(base, shares)
	if err != nil {
		t.Fatal(err)
	}
	f.step(proto.Incoming{
		From:    8,
		Payload: Finalized{Phase: 1, V: types.Value("real"), Cert: cert},
	})
	v, ok := f.m.Output()
	if !ok || !v.Equal(types.Value("real")) {
		t.Fatalf("valid finalize certificate not adopted: %v %v", v, ok)
	}
}
