package wba

import (
	"bytes"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

// roundTrip encodes, decodes, and re-encodes, requiring byte equality —
// a strong determinism + fidelity check.
func roundTrip(t *testing.T, reg *wire.Registry, p proto.Payload) proto.Payload {
	t.Helper()
	b1, err := reg.EncodePayload(p)
	if err != nil {
		t.Fatalf("encode %s: %v", p.Type(), err)
	}
	got, err := reg.DecodePayload(b1)
	if err != nil {
		t.Fatalf("decode %s: %v", p.Type(), err)
	}
	b2, err := reg.EncodePayload(got)
	if err != nil {
		t.Fatalf("re-encode %s: %v", p.Type(), err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("%s: round trip not byte-identical", p.Type())
	}
	return got
}

func TestWireRoundTrip(t *testing.T) {
	reg := wire.NewRegistry()
	RegisterWire(reg)

	ring, err := sig.NewHMACRing(5, []byte("w"))
	if err != nil {
		t.Fatal(err)
	}
	th, err := threshold.New(ring, 3, threshold.ModeAggregate, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	var shares []threshold.Share
	for _, id := range []types.ProcessID{0, 2, 4} {
		sh, err := th.SignShare(id, msg)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	cert, err := th.Combine(msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ring.Sign(1, msg)
	if err != nil {
		t.Fatal(err)
	}

	payloads := []proto.Payload{
		Propose{Phase: 3, V: types.Value("v")},
		Vote{Phase: 1, V: types.Value("v"), Share: s},
		CommitInfo{Phase: 2, V: types.Value("v"), Cert: cert, Level: 1},
		Commit{Phase: 2, V: types.Value("v"), Cert: cert, Level: 2},
		Decide{Phase: 4, V: types.Value("v"), Share: s},
		Finalized{Phase: 4, V: types.Value("v"), Cert: cert},
		HelpReq{Share: s},
		Help{V: types.Value("v"), Proof: cert, ProofPhase: 2},
		Help{V: types.Bottom, Proof: nil, ProofPhase: 0},
		FallbackCert{Cert: cert, V: types.Value("v"), Proof: cert, ProofPhase: 1},
		FallbackCert{Cert: cert, V: types.Bottom, Proof: nil, ProofPhase: 0},
	}
	for _, p := range payloads {
		got := roundTrip(t, reg, p)
		if got.Type() != p.Type() || got.Words() != p.Words() {
			t.Errorf("%s: metadata changed after round trip", p.Type())
		}
	}

	// Decoded certificate must still verify.
	f, ok := roundTrip(t, reg, Finalized{Phase: 4, V: types.Value("v"), Cert: cert}).(Finalized)
	if !ok {
		t.Fatal("wrong decoded type")
	}
	if !th.Verify(msg, f.Cert) {
		t.Error("decoded cert no longer verifies")
	}
}
