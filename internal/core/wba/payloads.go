package wba

import (
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

// Sign bases. Every signature and threshold share in the protocol covers
// one of these byte strings; the invocation Tag domain-separates parallel
// or nested instances, and the phase number binds certificates to the
// phase that produced them (the commit_level mechanism of Algorithm 4).

// voteBase is what vote shares sign: a commit certificate for (v, level j)
// is a threshold certificate over voteBase(tag, j, v).
func voteBase(tag string, phase int, v types.Value) []byte {
	w := wire.NewWriter()
	w.PutString("wba/vote")
	w.PutString(tag)
	w.PutInt(phase)
	w.PutValue(v)
	return w.Bytes()
}

// decideBase is what decide shares sign: a finalize certificate for (v, j)
// is a threshold certificate over decideBase(tag, j, v).
func decideBase(tag string, phase int, v types.Value) []byte {
	w := wire.NewWriter()
	w.PutString("wba/decide")
	w.PutString(tag)
	w.PutInt(phase)
	w.PutValue(v)
	return w.Bytes()
}

// helpReqBase is what help_req shares sign: the fallback certificate is a
// (t+1, n)-threshold certificate over it.
func helpReqBase(tag string) []byte {
	w := wire.NewWriter()
	w.PutString("wba/help_req")
	w.PutString(tag)
	return w.Bytes()
}

// VoteBase, DecideBase, and HelpReqBase expose the sign bases so the
// adversary library can construct protocol-conformant attacks (a real
// Byzantine process knows the protocol, so hiding the bases would only
// weaken the attack surface the tests exercise).

// VoteBase is the byte string vote shares sign in a phase.
func VoteBase(tag string, phase int, v types.Value) []byte { return voteBase(tag, phase, v) }

// DecideBase is the byte string decide shares sign in a phase.
func DecideBase(tag string, phase int, v types.Value) []byte { return decideBase(tag, phase, v) }

// HelpReqBase is the byte string help requests sign.
func HelpReqBase(tag string) []byte { return helpReqBase(tag) }

// Propose is the phase leader's round-1 message ⟨propose, v, j⟩ (Alg. 4
// line 32). Sender authenticity comes from the reliable links.
type Propose struct {
	Phase int
	V     types.Value
}

// Type implements proto.Payload.
func (Propose) Type() string { return "wba/propose" }

// Words implements proto.Payload: one value, constant size.
func (Propose) Words() int { return 1 }

// Vote is a process's round-2 answer ⟨vote, v, j⟩ (line 34): a threshold
// share over voteBase.
type Vote struct {
	Phase int
	V     types.Value
	Share sig.Signature
}

// Type implements proto.Payload.
func (Vote) Type() string { return "wba/vote" }

// Words implements proto.Payload.
func (Vote) Words() int { return 1 }

// CommitInfo is the alternative round-2 answer for processes that already
// committed: ⟨commit, commit, commit_proof, commit_level, j⟩ (line 36).
type CommitInfo struct {
	Phase int
	V     types.Value
	Cert  *threshold.Cert // over voteBase(tag, Level, V)
	Level int
}

// Type implements proto.Payload.
func (CommitInfo) Type() string { return "wba/commit_info" }

// Words implements proto.Payload: a value and a certificate, one word.
func (CommitInfo) Words() int { return 1 }

// Commit is the leader's round-3 broadcast: a commit certificate at some
// level (lines 39 and 42).
type Commit struct {
	Phase int
	V     types.Value
	Cert  *threshold.Cert // over voteBase(tag, Level, V)
	Level int
}

// Type implements proto.Payload.
func (Commit) Type() string { return "wba/commit" }

// Words implements proto.Payload.
func (Commit) Words() int { return 1 }

// Decide is a process's round-4 share ⟨decide, v, j⟩ (line 44) over
// decideBase.
type Decide struct {
	Phase int
	V     types.Value
	Share sig.Signature
}

// Type implements proto.Payload.
func (Decide) Type() string { return "wba/decide" }

// Words implements proto.Payload.
func (Decide) Words() int { return 1 }

// Finalized is the leader's round-5 broadcast ⟨finalized, v, QC, j⟩
// (line 51): the decision certificate.
type Finalized struct {
	Phase int
	V     types.Value
	Cert  *threshold.Cert // over decideBase(tag, Phase, V)
}

// Type implements proto.Payload.
func (Finalized) Type() string { return "wba/finalized" }

// Words implements proto.Payload.
func (Finalized) Words() int { return 1 }

// HelpReq is the post-phases broadcast of processes that have not decided
// (Alg. 3 line 6): a threshold share over helpReqBase.
type HelpReq struct {
	Share sig.Signature
}

// Type implements proto.Payload.
func (HelpReq) Type() string { return "wba/help_req" }

// Words implements proto.Payload.
func (HelpReq) Words() int { return 1 }

// Help answers a help request with the decided value and its finalize
// certificate (line 8).
type Help struct {
	V          types.Value
	Proof      *threshold.Cert // over decideBase(tag, ProofPhase, V)
	ProofPhase int
}

// Type implements proto.Payload.
func (Help) Type() string { return "wba/help" }

// Words implements proto.Payload.
func (Help) Words() int { return 1 }

// FallbackCert announces the fallback: a (t+1)-certificate over
// helpReqBase plus the sender's decision evidence, if any (lines 11, 22).
type FallbackCert struct {
	Cert       *threshold.Cert // over helpReqBase(tag)
	V          types.Value     // bu_decision; may be ⊥/undecided evidence-free
	Proof      *threshold.Cert // finalize cert for V, or nil
	ProofPhase int
}

// Type implements proto.Payload.
func (FallbackCert) Type() string { return "wba/fallback_cert" }

// Words implements proto.Payload: two certificates and a value, still a
// constant number of words.
func (FallbackCert) Words() int { return 2 }

// Component-signature accounting (proto.SigCarrier): certificates count
// as their signer set size, plain shares as one. This feeds the
// Dolev–Reischuk signature-count experiment — the words stay O(n(f+1))
// while Θ(nt) signatures travel inside the certificates.

// SigCount implements proto.SigCarrier.
func (Propose) SigCount() int { return 0 }

// SigCount implements proto.SigCarrier.
func (Vote) SigCount() int { return 1 }

// SigCount implements proto.SigCarrier.
func (m CommitInfo) SigCount() int { return m.Cert.Count() }

// SigCount implements proto.SigCarrier.
func (m Commit) SigCount() int { return m.Cert.Count() }

// SigCount implements proto.SigCarrier.
func (Decide) SigCount() int { return 1 }

// SigCount implements proto.SigCarrier.
func (m Finalized) SigCount() int { return m.Cert.Count() }

// SigCount implements proto.SigCarrier.
func (HelpReq) SigCount() int { return 1 }

// SigCount implements proto.SigCarrier.
func (m Help) SigCount() int { return m.Proof.Count() }

// SigCount implements proto.SigCarrier.
func (m FallbackCert) SigCount() int { return m.Cert.Count() + m.Proof.Count() }
