package wba

import (
	"fmt"

	"adaptiveba/internal/proto"
	"adaptiveba/internal/wire"
)

// RegisterWire registers this package's payload codecs. The nested
// fallback session reuses the Dolev–Strong relay codec, which the caller
// registers separately (the transport setup registers every protocol).
func RegisterWire(reg *wire.Registry) {
	reg.MustRegister(
		wire.Codec{
			Type: Propose{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(Propose)
				if !ok {
					return badType(p)
				}
				w.PutInt(m.Phase)
				w.PutValue(m.V)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return Propose{Phase: r.Int(), V: r.Value()}, r.Err()
			},
		},
		wire.Codec{
			Type: Vote{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(Vote)
				if !ok {
					return badType(p)
				}
				w.PutInt(m.Phase)
				w.PutValue(m.V)
				w.PutSig(m.Share)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return Vote{Phase: r.Int(), V: r.Value(), Share: r.Sig()}, r.Err()
			},
		},
		wire.Codec{
			Type: CommitInfo{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(CommitInfo)
				if !ok {
					return badType(p)
				}
				w.PutInt(m.Phase)
				w.PutValue(m.V)
				w.PutCert(m.Cert)
				w.PutInt(m.Level)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return CommitInfo{Phase: r.Int(), V: r.Value(), Cert: r.Cert(), Level: r.Int()}, r.Err()
			},
		},
		wire.Codec{
			Type: Commit{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(Commit)
				if !ok {
					return badType(p)
				}
				w.PutInt(m.Phase)
				w.PutValue(m.V)
				w.PutCert(m.Cert)
				w.PutInt(m.Level)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return Commit{Phase: r.Int(), V: r.Value(), Cert: r.Cert(), Level: r.Int()}, r.Err()
			},
		},
		wire.Codec{
			Type: Decide{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(Decide)
				if !ok {
					return badType(p)
				}
				w.PutInt(m.Phase)
				w.PutValue(m.V)
				w.PutSig(m.Share)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return Decide{Phase: r.Int(), V: r.Value(), Share: r.Sig()}, r.Err()
			},
		},
		wire.Codec{
			Type: Finalized{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(Finalized)
				if !ok {
					return badType(p)
				}
				w.PutInt(m.Phase)
				w.PutValue(m.V)
				w.PutCert(m.Cert)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return Finalized{Phase: r.Int(), V: r.Value(), Cert: r.Cert()}, r.Err()
			},
		},
		wire.Codec{
			Type: HelpReq{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(HelpReq)
				if !ok {
					return badType(p)
				}
				w.PutSig(m.Share)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return HelpReq{Share: r.Sig()}, r.Err()
			},
		},
		wire.Codec{
			Type: Help{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(Help)
				if !ok {
					return badType(p)
				}
				w.PutValue(m.V)
				w.PutCert(m.Proof)
				w.PutInt(m.ProofPhase)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return Help{V: r.Value(), Proof: r.Cert(), ProofPhase: r.Int()}, r.Err()
			},
		},
		wire.Codec{
			Type: FallbackCert{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(FallbackCert)
				if !ok {
					return badType(p)
				}
				w.PutCert(m.Cert)
				w.PutValue(m.V)
				w.PutCert(m.Proof)
				w.PutInt(m.ProofPhase)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return FallbackCert{Cert: r.Cert(), V: r.Value(), Proof: r.Cert(), ProofPhase: r.Int()}, r.Err()
			},
		},
	)
}

func badType(p proto.Payload) error {
	return fmt.Errorf("wba: unexpected payload %T", p)
}
