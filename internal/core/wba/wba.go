// Package wba implements the paper's adaptive weak Byzantine Agreement
// (Section 6, Algorithms 3 and 4): resilience n = 2t+1, unique validity
// with respect to a caller-chosen predicate, O(n(f+1)) words when
// f < (n-t-1)/2 and a quadratic fallback otherwise.
//
// Structure of a run (ticks are δ units, one round per tick):
//
//	phases j = 1..P (default P = t+1), 5 rounds each:
//	  r1 propose   — leader (rotating, silent if it already decided)
//	  r2 vote      — vote for the proposal, or report an earlier commit
//	  r3 commit    — leader broadcasts a ⌈(n+t+1)/2⌉ commit certificate
//	  r4 decide    — processes lock the commit and sign decide shares
//	  r5 finalize  — leader broadcasts the finalize certificate
//	help round A   — undecided processes broadcast signed help requests
//	help round B   — decided processes answer; t+1 requests form a
//	                 fallback certificate that is broadcast
//	help round C   — help answers adopted
//	fallback       — 2δ after learning the certificate, run A_fallback
//	                 with 2δ rounds and the best-known decision as input
package wba

import (
	"fmt"
	"sort"

	"adaptiveba/internal/core/valid"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/fallback"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

// Config parameterizes weak BA for one process.
type Config struct {
	Params types.Params
	Crypto *proto.Crypto
	ID     types.ProcessID
	// Input is the process's proposal. The protocol's preconditions
	// require it to satisfy Predicate.
	Input types.Value
	// Predicate is the unique-validity predicate (Definition 3).
	Predicate valid.Predicate
	// Tag domain-separates this instance's signatures.
	Tag string
	// Phases overrides the number of leader phases; 0 means the default
	// t+1 (Algorithm 3 line 1). The ablation experiments also run with n.
	Phases int
	// DisableSilentPhases makes leaders initiate phases even after they
	// decided. Used only by the ablation experiments: it restores the
	// non-adaptive Θ(n·P) cost.
	DisableSilentPhases bool
	// QuorumOverride replaces the paper's ⌈(n+t+1)/2⌉ commit/finalize
	// quorum. ABLATION ONLY: anything below the paper's value loses the
	// correct-intersection property and the protocol becomes UNSAFE (the
	// ablate-quorum experiment demonstrates the resulting split-brain).
	QuorumOverride int
}

const fbSession = "fb"

// roundsPerPhase is the paper's 5-round phase structure (Algorithm 4).
const roundsPerPhase = 5

// Machine implements proto.Machine for weak BA.
type Machine struct {
	cfg    Config
	signer *sig.Signer
	clock  proto.RoundClock
	phases int

	quorumSize int
	quorum     *threshold.Scheme // commit/finalize scheme (⌈(n+t+1)/2⌉ by default)
	small      *threshold.Scheme // t+1 scheme for the fallback certificate

	// Algorithm state.
	vi          types.Value
	decided     bool
	decision    types.Value
	decideProof *threshold.Cert
	decidePhase int

	commit      types.Value
	commitProof *threshold.Cert
	commitLevel int

	buDecision   types.Value
	buProof      *threshold.Cert
	buProofPhase int

	// Per-phase round-gated stashes.
	proposals    map[int]*Propose
	commitMsgs   map[int][]Commit
	votes        map[int]map[string][]threshold.Share
	commitInfos  map[int][]CommitInfo
	decideShares map[int]map[string][]threshold.Share
	votedPhase   map[int]bool
	decidedShare map[int]bool

	// Help round state.
	helpReqShares map[types.ProcessID]sig.Signature
	helpReqFrom   []types.ProcessID
	helpDone      bool // past round C

	// Fallback state.
	fallbackStart   types.Tick // -1 = ∞ (not scheduled)
	fbSub           *proto.Sub
	fbBuffer        []proto.Incoming
	fbAdopted       bool
	pendingAnnounce *FallbackCert // echo queued by onFallbackCert

	// Run statistics for the experiment harness.
	decidedAtPhase int        // 0 = not via phases
	decidedAtTick  types.Tick // tick of the decision (latency metric)
	nowTick        types.Tick
	ranFallback    bool

	err error // first internal error (signing); surfaces via Failed
}

var _ proto.Machine = (*Machine)(nil)

// NewMachine builds the weak BA machine.
func NewMachine(cfg Config) *Machine {
	phases := cfg.Phases
	if phases <= 0 {
		phases = cfg.Params.T + 1
	}
	quorumSize := cfg.Params.Quorum()
	if cfg.QuorumOverride > 0 {
		quorumSize = cfg.QuorumOverride
	}
	m := &Machine{
		cfg:           cfg,
		signer:        cfg.Crypto.Signer(cfg.ID),
		phases:        phases,
		quorumSize:    quorumSize,
		quorum:        cfg.Crypto.Threshold(quorumSize),
		small:         cfg.Crypto.Threshold(cfg.Params.SmallQuorum()),
		vi:            cfg.Input.Clone(),
		buDecision:    cfg.Input.Clone(),
		fallbackStart: -1,
		proposals:     make(map[int]*Propose),
		commitMsgs:    make(map[int][]Commit),
		votes:         make(map[int]map[string][]threshold.Share),
		commitInfos:   make(map[int][]CommitInfo),
		decideShares:  make(map[int]map[string][]threshold.Share),
		votedPhase:    make(map[int]bool),
		decidedShare:  make(map[int]bool),
		helpReqShares: make(map[types.ProcessID]sig.Signature),
	}
	return m
}

// Rounds returns the number of lock-step rounds before the fallback may
// start: the phases plus the three help rounds.
func (m *Machine) Rounds() int { return m.phases*roundsPerPhase + 3 }

// MaxTicks conservatively bounds a full run including the fallback, for
// sizing simulator budgets.
func (m *Machine) MaxTicks() types.Tick {
	fb := types.Tick((m.cfg.Params.T + 2) * 2)
	return types.Tick(m.Rounds()) + 4 + fb + 4
}

// DecidedAtPhase reports the phase whose finalize certificate decided this
// process (0 if the decision came from help or the fallback).
func (m *Machine) DecidedAtPhase() int { return m.decidedAtPhase }

// RanFallback reports whether this process executed A_fallback.
func (m *Machine) RanFallback() bool { return m.ranFallback }

// DecidedAtTick reports when (in δ ticks from the run start) this process
// decided; meaningful only once Output reports a decision.
func (m *Machine) DecidedAtTick() types.Tick { return m.decidedAtTick }

// Failed returns the first internal error (it cannot happen with a
// well-formed trusted setup; exposed for tests).
func (m *Machine) Failed() error { return m.err }

// Begin implements proto.Machine.
func (m *Machine) Begin(now types.Tick) []proto.Outgoing {
	m.nowTick = now
	m.clock = proto.NewRoundClock(now, 1)
	return m.boundary(now, 1)
}

// Tick implements proto.Machine.
func (m *Machine) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	m.nowTick = now
	var outs []proto.Outgoing

	// Route fallback traffic.
	var fbIn, mine []proto.Incoming
	for _, in := range inbox {
		if head, _ := proto.SplitSession(in.Session); head == fbSession {
			fbIn = append(fbIn, in)
		} else {
			mine = append(mine, in)
		}
	}

	// Ingest protocol messages (certificate-backed ones take effect
	// immediately; round-gated ones are stashed).
	for _, in := range mine {
		m.ingest(now, in)
	}

	// Echo a newly learned fallback certificate right away (line 22): the
	// lock-step rounds may already be over by the time it arrives.
	if m.pendingAnnounce != nil {
		outs = append(outs, proto.Broadcast(m.cfg.Params, "", *m.pendingAnnounce)...)
		m.pendingAnnounce = nil
	}

	if r, ok := m.clock.BoundaryAt(now); ok && int(r) <= m.Rounds() {
		outs = append(outs, m.boundary(now, int(r))...)
	}

	// Fallback lifecycle.
	if m.fallbackStart >= 0 && m.fbSub == nil && now >= m.fallbackStart {
		outs = append(outs, m.startFallback(now)...)
	}
	if m.fbSub != nil {
		if len(m.fbBuffer) > 0 {
			fbIn = append(m.fbBuffer, fbIn...)
			m.fbBuffer = nil
		}
		routed := make([]proto.Incoming, 0, len(fbIn))
		for _, in := range fbIn {
			_, rest := proto.SplitSession(in.Session)
			in.Session = rest
			routed = append(routed, in)
		}
		outs = append(outs, m.fbSub.Tick(now, routed)...)
		m.finishFallback()
	} else {
		m.fbBuffer = append(m.fbBuffer, fbIn...)
	}
	return outs
}

// Output implements proto.Machine.
func (m *Machine) Output() (types.Value, bool) { return m.decision, m.decided }

// Done implements proto.Machine.
func (m *Machine) Done() bool {
	if !m.decided || !m.helpDone {
		return false
	}
	if m.fallbackStart >= 0 {
		return m.fbSub != nil && m.fbSub.Done()
	}
	return true
}

// phaseOf maps a global round to (phase, withinRound).
func (m *Machine) phaseOf(r int) (phase, w int) {
	return (r-1)/roundsPerPhase + 1, (r-1)%roundsPerPhase + 1
}

// leaderOf returns the rotating leader of a phase.
func (m *Machine) leaderOf(phase int) types.ProcessID {
	return m.cfg.Params.Leader(phase)
}

// setDecision records a decision exactly once (Lemma 23).
func (m *Machine) setDecision(v types.Value, proof *threshold.Cert, phase int) {
	if m.decided {
		return
	}
	m.decided = true
	m.decision = v.Clone()
	m.decideProof = proof
	m.decidePhase = phase
	m.decidedAtTick = m.nowTick
	m.buDecision = m.decision
	m.buProof = proof
	m.buProofPhase = phase
}

// verifyFinalize checks a finalize certificate for (v, phase).
func (m *Machine) verifyFinalize(v types.Value, phase int, cert *threshold.Cert) bool {
	if cert == nil || phase < 1 || phase > m.phases || v.IsBottom() {
		return false
	}
	return m.quorum.Verify(decideBase(m.cfg.Tag, phase, v), cert)
}

// verifyCommit checks a commit certificate for (v, level).
func (m *Machine) verifyCommit(v types.Value, level int, cert *threshold.Cert) bool {
	if cert == nil || level < 1 || level > m.phases || v.IsBottom() {
		return false
	}
	return m.quorum.Verify(voteBase(m.cfg.Tag, level, v), cert)
}

// ingest handles one incoming message: certificate-backed messages take
// effect immediately, round-gated ones are stashed for their boundary.
func (m *Machine) ingest(now types.Tick, in proto.Incoming) {
	switch p := in.Payload.(type) {
	case Propose:
		// Only the phase's leader's first proposal counts.
		if in.From == m.leaderOf(p.Phase) && m.proposals[p.Phase] == nil {
			cp := p
			m.proposals[p.Phase] = &cp
		}
	case Vote:
		if m.leaderOf(p.Phase) != m.cfg.ID {
			return
		}
		if !m.quorum.VerifyShare(voteBase(m.cfg.Tag, p.Phase, p.V), threshold.Share{Signer: in.From, Sig: p.Share}) {
			return
		}
		if m.votes[p.Phase] == nil {
			m.votes[p.Phase] = make(map[string][]threshold.Share)
		}
		key := string(p.V)
		m.votes[p.Phase][key] = append(m.votes[p.Phase][key], threshold.Share{Signer: in.From, Sig: p.Share})
	case CommitInfo:
		if m.leaderOf(p.Phase) != m.cfg.ID {
			return
		}
		if !m.verifyCommit(p.V, p.Level, p.Cert) {
			return
		}
		m.commitInfos[p.Phase] = append(m.commitInfos[p.Phase], p)
	case Commit:
		// Stashed; validated at the phase's round-4 boundary. A Byzantine
		// leader may send several; keep them all and pick a valid one.
		if in.From == m.leaderOf(p.Phase) {
			m.commitMsgs[p.Phase] = append(m.commitMsgs[p.Phase], p)
		}
	case Decide:
		if m.leaderOf(p.Phase) != m.cfg.ID {
			return
		}
		if !m.quorum.VerifyShare(decideBase(m.cfg.Tag, p.Phase, p.V), threshold.Share{Signer: in.From, Sig: p.Share}) {
			return
		}
		if m.decideShares[p.Phase] == nil {
			m.decideShares[p.Phase] = make(map[string][]threshold.Share)
		}
		key := string(p.V)
		m.decideShares[p.Phase][key] = append(m.decideShares[p.Phase][key], threshold.Share{Signer: in.From, Sig: p.Share})
	case Finalized:
		if m.verifyFinalize(p.V, p.Phase, p.Cert) {
			if !m.decided {
				m.decidedAtPhase = p.Phase
			}
			m.setDecision(p.V, p.Cert, p.Phase)
		}
	case HelpReq:
		if !m.small.VerifyShare(helpReqBase(m.cfg.Tag), threshold.Share{Signer: in.From, Sig: p.Share}) {
			return
		}
		if _, seen := m.helpReqShares[in.From]; !seen {
			m.helpReqShares[in.From] = p.Share
			m.helpReqFrom = append(m.helpReqFrom, in.From)
		}
	case Help:
		if m.verifyFinalize(p.V, p.ProofPhase, p.Proof) {
			m.setDecision(p.V, p.Proof, p.ProofPhase)
		}
	case FallbackCert:
		m.onFallbackCert(now, p)
	}
}

// onFallbackCert handles lines 16–23 of Algorithm 3.
func (m *Machine) onFallbackCert(now types.Tick, p FallbackCert) {
	if p.Cert == nil || !m.small.Verify(helpReqBase(m.cfg.Tag), p.Cert) {
		return
	}
	// Adopt attached decision evidence while undecided.
	if !m.decided && m.verifyFinalize(p.V, p.ProofPhase, p.Proof) {
		m.buDecision = p.V.Clone()
		m.buProof = p.Proof
		m.buProofPhase = p.ProofPhase
	}
	if m.fallbackStart < 0 {
		// First time hearing about the fallback: echo and schedule.
		m.fallbackStart = now + 2
		m.pendingAnnounce = &FallbackCert{
			Cert:       p.Cert,
			V:          m.buDecision,
			Proof:      m.buProof,
			ProofPhase: m.buProofPhase,
		}
	}
}

// boundary performs the round-r actions.
func (m *Machine) boundary(now types.Tick, r int) []proto.Outgoing {
	var outs []proto.Outgoing
	if r <= m.phases*roundsPerPhase {
		phase, w := m.phaseOf(r)
		return append(outs, m.phaseRound(phase, w)...)
	}
	switch r - m.phases*roundsPerPhase {
	case 1: // round A: help requests
		if !m.decided {
			share, err := m.signer.Sign(helpReqBase(m.cfg.Tag))
			if err != nil {
				m.fail(err)
				return outs
			}
			outs = append(outs, proto.Broadcast(m.cfg.Params, "", HelpReq{Share: share})...)
		}
	case 2: // round B: help answers + fallback certificate
		outs = append(outs, m.helpRoundB(now)...)
	case 3: // round C: adoption already happened in ingest; close help phase
		m.helpDone = true
		if m.decided {
			m.buDecision = m.decision
		}
	}
	return outs
}

// phaseRound implements Algorithm 4 for phase/round (phase, w).
func (m *Machine) phaseRound(phase, w int) []proto.Outgoing {
	leader := m.leaderOf(phase)
	amLeader := leader == m.cfg.ID
	switch w {
	case 1:
		if amLeader && (!m.decided || m.cfg.DisableSilentPhases) {
			return proto.Broadcast(m.cfg.Params, "", Propose{Phase: phase, V: m.vi})
		}
	case 2:
		p := m.proposals[phase]
		if p == nil {
			return nil
		}
		if m.commit != nil && m.commitProof != nil {
			return proto.Unicast(leader, "", CommitInfo{
				Phase: phase, V: m.commit, Cert: m.commitProof, Level: m.commitLevel,
			})
		}
		if !m.votedPhase[phase] && m.cfg.Predicate.Validate(p.V) {
			m.votedPhase[phase] = true
			share, err := m.signer.Sign(voteBase(m.cfg.Tag, phase, p.V))
			if err != nil {
				m.fail(err)
				return nil
			}
			return proto.Unicast(leader, "", Vote{Phase: phase, V: p.V, Share: share})
		}
	case 3:
		if !amLeader || !m.phaseActive(phase) {
			return nil
		}
		// Prefer relaying the highest-level commit heard of (line 39).
		if infos := m.commitInfos[phase]; len(infos) > 0 {
			best := infos[0]
			for _, ci := range infos[1:] {
				if ci.Level > best.Level {
					best = ci
				}
			}
			return proto.Broadcast(m.cfg.Params, "", Commit{
				Phase: phase, V: best.V, Cert: best.Cert, Level: best.Level,
			})
		}
		// Otherwise form a fresh commit certificate (lines 40–42).
		for _, key := range sortedKeys(m.votes[phase]) {
			shares := m.votes[phase][key]
			if len(shares) < m.quorumSize {
				continue
			}
			v := types.Value(key)
			cert, err := m.quorum.Combine(voteBase(m.cfg.Tag, phase, v), shares)
			if err != nil {
				continue
			}
			return proto.Broadcast(m.cfg.Params, "", Commit{Phase: phase, V: v, Cert: cert, Level: phase})
		}
	case 4:
		if m.decidedShare[phase] {
			return nil
		}
		var best *Commit
		for i := range m.commitMsgs[phase] {
			c := &m.commitMsgs[phase][i]
			if !m.verifyCommit(c.V, c.Level, c.Cert) || c.Level > phase || c.Level < m.commitLevel {
				continue
			}
			if best == nil || c.Level > best.Level {
				best = c
			}
		}
		if best == nil {
			return nil
		}
		m.decidedShare[phase] = true
		m.commit = best.V.Clone()
		m.commitProof = best.Cert
		m.commitLevel = best.Level
		share, err := m.signer.Sign(decideBase(m.cfg.Tag, phase, best.V))
		if err != nil {
			m.fail(err)
			return nil
		}
		return proto.Unicast(leader, "", Decide{Phase: phase, V: best.V, Share: share})
	case 5:
		if !amLeader || !m.phaseActive(phase) {
			return nil
		}
		for _, key := range sortedKeys(m.decideShares[phase]) {
			shares := m.decideShares[phase][key]
			if len(shares) < m.quorumSize {
				continue
			}
			v := types.Value(key)
			cert, err := m.quorum.Combine(decideBase(m.cfg.Tag, phase, v), shares)
			if err != nil {
				continue
			}
			return proto.Broadcast(m.cfg.Params, "", Finalized{Phase: phase, V: v, Cert: cert})
		}
	}
	return nil
}

// phaseActive reports whether this process initiated phase as leader (a
// silent leader performs no aggregation either).
func (m *Machine) phaseActive(phase int) bool {
	return m.proposals[phase] != nil && m.leaderOf(phase) == m.cfg.ID
}

// helpRoundB answers help requests and forms the fallback certificate.
func (m *Machine) helpRoundB(now types.Tick) []proto.Outgoing {
	var outs []proto.Outgoing
	if m.decided {
		for _, from := range m.helpReqFrom {
			if from == m.cfg.ID {
				continue
			}
			outs = append(outs, proto.Unicast(from, "", Help{
				V: m.decision, Proof: m.decideProof, ProofPhase: m.decidePhase,
			})...)
		}
	}
	if len(m.helpReqShares) >= m.cfg.Params.SmallQuorum() && m.fallbackStart < 0 {
		shares := make([]threshold.Share, 0, len(m.helpReqShares))
		for _, from := range m.helpReqFrom {
			shares = append(shares, threshold.Share{Signer: from, Sig: m.helpReqShares[from]})
		}
		cert, err := m.small.Combine(helpReqBase(m.cfg.Tag), shares)
		if err == nil {
			m.fallbackStart = now + 2
			var v types.Value
			var proof *threshold.Cert
			phase := 0
			if m.decided {
				v, proof, phase = m.decision, m.decideProof, m.decidePhase
			}
			outs = append(outs, proto.Broadcast(m.cfg.Params, "", FallbackCert{
				Cert: cert, V: v, Proof: proof, ProofPhase: phase,
			})...)
		}
	}
	return outs
}

// startFallback launches A_fallback with δ' = 2δ and input bu_decision
// (Algorithm 3 line 24).
func (m *Machine) startFallback(now types.Tick) []proto.Outgoing {
	m.ranFallback = true
	fb := fallback.NewMachine(fallback.Config{
		Params:   m.cfg.Params,
		Crypto:   m.cfg.Crypto,
		ID:       m.cfg.ID,
		Input:    m.buDecision,
		Tag:      m.cfg.Tag + "/" + fbSession,
		RoundDur: 2,
	})
	m.fbSub = proto.NewSub(fbSession, fb)
	return m.fbSub.Begin(now)
}

// finishFallback adopts the fallback output (lines 25–29): the fallback
// value if it satisfies the predicate, ⊥ otherwise. Processes that decided
// earlier keep their decision (line 25's guard).
func (m *Machine) finishFallback() {
	if m.fbSub == nil || !m.fbSub.Done() || m.fbAdopted {
		return
	}
	m.fbAdopted = true
	if m.decided {
		return
	}
	fv, _ := m.fbSub.Output()
	if m.cfg.Predicate.Validate(fv) {
		m.setDecision(fv, nil, 0)
		return
	}
	m.setDecision(types.Bottom, nil, 0)
}

// fail records the first internal error.
func (m *Machine) fail(err error) {
	if m.err == nil {
		m.err = fmt.Errorf("wba %v: %w", m.cfg.ID, err)
	}
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys(mp map[string][]threshold.Share) []string {
	keys := make([]string, 0, len(mp))
	for k := range mp {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
