package wba

import (
	"testing"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/core/valid"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

func setup(t *testing.T, n int) (*proto.Crypto, types.Params) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("wba-test"))
	if err != nil {
		t.Fatal(err)
	}
	return proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d")), params
}

func run(t *testing.T, n int, adv sim.Adversary, input func(types.ProcessID) types.Value) (*sim.Result, map[types.ProcessID]*Machine) {
	t.Helper()
	crypto, params := setup(t, n)
	machines := make(map[types.ProcessID]*Machine)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m := NewMachine(Config{
				Params:    params,
				Crypto:    crypto,
				ID:        id,
				Input:     input(id),
				Predicate: valid.NonBottom(),
				Tag:       "t",
			})
			machines[id] = m
			return m
		},
		Adversary: adv,
		MaxTicks:  types.Tick(40*n + 400),
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, m := range machines {
		if m.Failed() != nil {
			t.Fatalf("machine %v failed: %v", id, m.Failed())
		}
	}
	return res, machines
}

func constInput(v types.Value) func(types.ProcessID) types.Value {
	return func(types.ProcessID) types.Value { return v }
}

func TestFailureFreeUnanimous(t *testing.T) {
	for _, n := range []int{3, 5, 9, 21} {
		res, machines := run(t, n, nil, constInput(types.Value("v")))
		if res.TimedOut {
			t.Fatalf("n=%d timed out", n)
		}
		if !res.AllDecided() {
			t.Fatalf("n=%d: not all decided", n)
		}
		v, ok := res.Agreement()
		if !ok || !v.Equal(types.Value("v")) {
			t.Errorf("n=%d: decided %v (%v)", n, v, ok)
		}
		for id, m := range machines {
			if m.RanFallback() {
				t.Errorf("n=%d: %v ran fallback in failure-free run (Lemma 6)", n, id)
			}
			if m.DecidedAtPhase() != 1 {
				t.Errorf("n=%d: %v decided at phase %d, want 1", n, id, m.DecidedAtPhase())
			}
		}
	}
}

func TestFailureFreeLinearWords(t *testing.T) {
	// With f=0 only phase 1 is non-silent: a constant number of
	// leader-to-all and all-to-leader rounds, so words ≈ c·n.
	for _, n := range []int{11, 41, 101} {
		res, _ := run(t, n, nil, constInput(types.Value("v")))
		words := res.Report.Honest.Words
		if max := int64(12 * n); words > max {
			t.Errorf("n=%d: %d words exceed linear bound %d", n, words, max)
		}
	}
}

func TestDistinctValidInputsAgree(t *testing.T) {
	res, _ := run(t, 7, nil, func(id types.ProcessID) types.Value {
		return types.Value{byte('a' + id)}
	})
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("disagreement")
	}
	// Phase 1's leader is p1; with no failures its proposal wins.
	if !v.Equal(types.Value("b")) {
		t.Errorf("decided %v, want phase-1 leader's input b", v)
	}
}

func TestSmallCrashCountNoFallback(t *testing.T) {
	// n=9, t=4: Lemma 6 threshold is (n-t-1)/2 = 2, so f=1 must not
	// trigger the fallback even when the crashed process leads phase 1.
	res, machines := run(t, 9, adversary.NewCrash(1), constInput(types.Value("v")))
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("v")) {
		t.Errorf("decided %v (%v)", v, ok)
	}
	for id, m := range machines {
		if m.RanFallback() {
			t.Errorf("%v ran fallback with f=1 < threshold", id)
		}
	}
}

func TestCrashedLeaderSkipsToNextPhase(t *testing.T) {
	// Crash phase-1's leader: phase 1 is silent (or partial), phase 2's
	// leader p2 decides everyone.
	res, machines := run(t, 9, adversary.NewCrash(1), func(id types.ProcessID) types.Value {
		return types.Value{byte('a' + id)}
	})
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("disagreement")
	}
	if !v.Equal(types.Value("c")) {
		t.Errorf("decided %v, want phase-2 leader's input c", v)
	}
	for _, m := range machines {
		if got := m.DecidedAtPhase(); got != 2 {
			t.Errorf("decided at phase %d, want 2", got)
		}
	}
}

func TestManyCrashesTriggerFallback(t *testing.T) {
	// n=9, t=4, quorum=7: crashing 3 leaves 6 < 7 alive, so no commit
	// certificate can form; all correct processes stay undecided, send
	// help requests, form the fallback certificate, and run A_fallback.
	res, machines := run(t, 9, adversary.NewCrash(0, 1, 2), constInput(types.Value("v")))
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("v")) {
		t.Errorf("decided %v (%v), strong unanimity through fallback", v, ok)
	}
	ran := 0
	for _, m := range machines {
		if m.RanFallback() {
			ran++
		}
	}
	if ran != len(res.Honest) {
		t.Errorf("%d/%d honest ran the fallback", ran, len(res.Honest))
	}
}

func TestMaxCrashes(t *testing.T) {
	// f = t = 4 at n = 9.
	res, _ := run(t, 9, adversary.NewCrash(0, 1, 2, 3), constInput(types.Value("v")))
	if !res.AllDecided() {
		t.Fatal("not all decided with f = t crashes")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("v")) {
		t.Errorf("decided %v (%v)", v, ok)
	}
}

func TestMidRunCrashes(t *testing.T) {
	// Crash leaders mid-phase: p1 after its propose went out, p2 during
	// its own phase.
	res, _ := run(t, 9, adversary.NewCrashAt(map[types.ProcessID]types.Tick{
		1: 1, // phase 1 leader dies right after proposing
		2: 7, // phase 2 leader dies mid-phase (phase 2 spans ticks 5..9)
	}), constInput(types.Value("v")))
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("v")) {
		t.Errorf("decided %v (%v)", v, ok)
	}
}

// byzFactory runs the honest protocol with a different input on corrupted
// processes.
func byzFactory(crypto *proto.Crypto, params types.Params, input types.Value) func(types.ProcessID) proto.Machine {
	return func(id types.ProcessID) proto.Machine {
		return NewMachine(Config{
			Params:    params,
			Crypto:    crypto,
			ID:        id,
			Input:     input,
			Predicate: valid.NonBottom(),
			Tag:       "t",
		})
	}
}

func TestByzantineMinorityCannotOverrideUnanimity(t *testing.T) {
	crypto, params := setup(t, 9)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return NewMachine(Config{
				Params:    params,
				Crypto:    crypto,
				ID:        id,
				Input:     types.Value("good"),
				Predicate: valid.NonBottom(),
				Tag:       "t",
			})
		},
		Adversary: adversary.NewMimic(byzFactory(crypto, params, types.Value("evil")), 1, 3),
		MaxTicks:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("disagreement")
	}
	// Byzantine p1 leads phase 1 and proposes "evil" — a valid value, so
	// deciding it is allowed by unique validity. What is NOT allowed is
	// disagreement or an invalid value.
	if !v.Equal(types.Value("good")) && !v.Equal(types.Value("evil")) && !v.IsBottom() {
		t.Errorf("decided out-of-run value %v", v)
	}
}

func TestReplayAttackSafety(t *testing.T) {
	crypto, params := setup(t, 9)
	for seed := int64(0); seed < 5; seed++ {
		res, err := sim.Run(sim.Config{
			Params: params,
			Crypto: crypto,
			Factory: func(id types.ProcessID) proto.Machine {
				return NewMachine(Config{
					Params:    params,
					Crypto:    crypto,
					ID:        id,
					Input:     types.Value{byte('a' + id)},
					Predicate: valid.NonBottom(),
					Tag:       "t",
				})
			},
			Adversary: adversary.NewReplay(seed, 200, 0, 4),
			MaxTicks:  2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided() {
			t.Fatalf("seed %d: not all decided", seed)
		}
		if _, ok := res.Agreement(); !ok {
			t.Fatalf("seed %d: replay attack broke agreement", seed)
		}
	}
}

func TestAdaptivityWordsGrowWithF(t *testing.T) {
	// More crashed leaders → more non-silent phases → more words; but for
	// f below the fallback threshold the growth must stay ~linear in n
	// per extra failure.
	n := 21 // t=10, threshold (n-t-1)/2 = 5
	var prev int64
	for f := 0; f <= 4; f++ {
		res, machines := run(t, n, adversary.NewCrash(adversary.FirstProcesses(f)...), constInput(types.Value("v")))
		if !res.AllDecided() {
			t.Fatalf("f=%d: not all decided", f)
		}
		for _, m := range machines {
			if m.RanFallback() {
				t.Fatalf("f=%d below threshold ran fallback", f)
			}
		}
		words := res.Report.Honest.Words
		if words > int64(10*n*(f+2)) {
			t.Errorf("f=%d: words=%d exceed O(n(f+1)) envelope %d", f, words, 10*n*(f+2))
		}
		if words < prev {
			// Monotonicity is not strictly guaranteed, but a decrease
			// of more than one phase's worth signals a bug.
			if prev-words > int64(4*n) {
				t.Errorf("f=%d: words dropped from %d to %d", f, prev, words)
			}
		}
		prev = words
	}
}

func TestWeakBAQuorumThreshold(t *testing.T) {
	// Quorum() must exceed both n/2 and t to make vote splitting
	// impossible; sanity-check the arithmetic the protocol relies on.
	for _, n := range []int{3, 9, 21, 101} {
		p, _ := types.NewParams(n)
		q := p.Quorum()
		if 2*q-n < p.T+1 {
			t.Errorf("n=%d: quorum %d lacks correct-intersection", n, q)
		}
	}
}

func TestBottomDecisionOnlyWithMultipleValidValues(t *testing.T) {
	// Unique validity: when all correct processes propose the same value
	// and the adversary only crashes (cannot craft another valid value
	// under the non-bottom predicate it can always craft one... so use a
	// crash run): the decision must be the common input, not ⊥.
	res, _ := run(t, 9, adversary.NewCrash(0, 1, 2), constInput(types.Value("only")))
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("disagreement")
	}
	if v.IsBottom() {
		t.Error("decided ⊥ although a single valid value existed")
	}
}

func TestPhaseCountOverride(t *testing.T) {
	crypto, params := setup(t, 5)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return NewMachine(Config{
				Params:    params,
				Crypto:    crypto,
				ID:        id,
				Input:     types.Value("v"),
				Predicate: valid.NonBottom(),
				Tag:       "t",
				Phases:    params.N, // the prose version: n phases
			})
		},
		MaxTicks: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("v")) {
		t.Errorf("decided %v (%v)", v, ok)
	}
}

func TestMachineAccounting(t *testing.T) {
	crypto, params := setup(t, 5)
	m := NewMachine(Config{
		Params: params, Crypto: crypto, ID: 0,
		Input: types.Value("v"), Predicate: valid.NonBottom(), Tag: "t",
	})
	if m.Rounds() != (params.T+1)*5+3 {
		t.Errorf("Rounds = %d", m.Rounds())
	}
	if m.MaxTicks() <= types.Tick(m.Rounds()) {
		t.Errorf("MaxTicks = %d too small", m.MaxTicks())
	}
}
