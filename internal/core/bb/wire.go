package bb

import (
	"fmt"

	"adaptiveba/internal/proto"
	"adaptiveba/internal/wire"
)

// RegisterWire registers this package's payload codecs. The nested weak
// BA and fallback codecs are registered by their own packages.
func RegisterWire(reg *wire.Registry) {
	reg.MustRegister(
		wire.Codec{
			Type: SenderMsg{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(SenderMsg)
				if !ok {
					return badType(p)
				}
				w.PutValue(m.V)
				w.PutSig(m.Sig)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return SenderMsg{V: r.Value(), Sig: r.Sig()}, r.Err()
			},
		},
		wire.Codec{
			Type: HelpReq{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(HelpReq)
				if !ok {
					return badType(p)
				}
				w.PutInt(m.Phase)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return HelpReq{Phase: r.Int()}, r.Err()
			},
		},
		wire.Codec{
			Type: Reply{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(Reply)
				if !ok {
					return badType(p)
				}
				w.PutInt(m.Phase)
				w.PutValue(m.Val)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return Reply{Phase: r.Int(), Val: r.Value()}, r.Err()
			},
		},
		wire.Codec{
			Type: IdkShare{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(IdkShare)
				if !ok {
					return badType(p)
				}
				w.PutInt(m.Phase)
				w.PutSig(m.Share)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return IdkShare{Phase: r.Int(), Share: r.Sig()}, r.Err()
			},
		},
		wire.Codec{
			Type: Vetted{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(Vetted)
				if !ok {
					return badType(p)
				}
				w.PutInt(m.Phase)
				w.PutValue(m.Val)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return Vetted{Phase: r.Int(), Val: r.Value()}, r.Err()
			},
		},
	)
}

func badType(p proto.Payload) error {
	return fmt.Errorf("bb: unexpected payload %T", p)
}
