package bb

import (
	"testing"

	"adaptiveba/internal/types"
)

// FuzzDecodeValue: BB value envelopes arrive from Byzantine processes, so
// the decoder must be total — no panics on arbitrary bytes, and anything
// that decodes must re-encode canonically.
func FuzzDecodeValue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{2})
	f.Add([]byte(EncodeSenderValue(SenderValue{V: types.Value("v"), Sig: []byte("sig")})))
	f.Add([]byte(EncodeIDKCert(IDKCert{Phase: 3})))
	f.Fuzz(func(t *testing.T, data []byte) {
		sv, idk, err := DecodeValue(types.Value(data))
		if err != nil {
			return
		}
		switch {
		case sv != nil:
			enc := EncodeSenderValue(*sv)
			if !enc.Equal(types.Value(data)) {
				t.Fatalf("sender value does not re-encode canonically")
			}
		case idk != nil:
			enc := EncodeIDKCert(*idk)
			if !enc.Equal(types.Value(data)) {
				t.Fatalf("idk cert does not re-encode canonically")
			}
		default:
			t.Fatal("decode returned neither variant nor error")
		}
	})
}
