package bb

import (
	"errors"
	"fmt"

	"adaptiveba/internal/core/valid"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

// The BB protocol agrees (via weak BA) on structured values: either the
// sender's signed value ⟨v⟩_sender or an idk quorum certificate formed by
// a vetting phase. Both are serialized into opaque types.Values so the
// weak BA layer stays value-agnostic, exactly as the reduction in
// Section 5 requires.

// Value kinds used in the encoding.
const (
	kindSenderValue byte = 1
	kindIDKCert     byte = 2
)

// ErrBadBBValue reports a value that is not a well-formed BB envelope.
var ErrBadBBValue = errors.New("bb: malformed value envelope")

// senderBase is the byte string the designated sender signs over its
// input value.
func senderBase(tag string, sender types.ProcessID, v types.Value) []byte {
	w := wire.NewWriter()
	w.PutString("bb/sender")
	w.PutString(tag)
	w.PutProcess(sender)
	w.PutValue(v)
	return w.Bytes()
}

// idkBase is the byte string idk shares sign in phase j (⟨idk, j⟩_p).
func idkBase(tag string, phase int) []byte {
	w := wire.NewWriter()
	w.PutString("bb/idk")
	w.PutString(tag)
	w.PutInt(phase)
	return w.Bytes()
}

// SenderValue is the decoded form of ⟨v⟩_sender.
type SenderValue struct {
	V   types.Value
	Sig sig.Signature
}

// IDKCert is the decoded form of QC_idk: t+1 processes declared they did
// not receive the sender's value in phase Phase.
type IDKCert struct {
	Phase int
	Cert  *threshold.Cert
}

// EncodeSenderValue serializes ⟨v⟩_sender into an opaque weak-BA value.
func EncodeSenderValue(sv SenderValue) types.Value {
	w := wire.NewWriter()
	w.PutByte(kindSenderValue)
	w.PutValue(sv.V)
	w.PutSig(sv.Sig)
	return types.Value(w.Bytes())
}

// EncodeIDKCert serializes QC_idk into an opaque weak-BA value.
func EncodeIDKCert(c IDKCert) types.Value {
	w := wire.NewWriter()
	w.PutByte(kindIDKCert)
	w.PutInt(c.Phase)
	w.PutCert(c.Cert)
	return types.Value(w.Bytes())
}

// DecodeValue parses a BB envelope. Exactly one of the returns is non-nil
// on success.
func DecodeValue(v types.Value) (*SenderValue, *IDKCert, error) {
	if v.IsBottom() {
		return nil, nil, fmt.Errorf("%w: bottom", ErrBadBBValue)
	}
	r := wire.NewReader(v)
	switch kind := r.Byte(); kind {
	case kindSenderValue:
		sv := &SenderValue{V: r.Value(), Sig: r.Sig()}
		if err := r.Close(); err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrBadBBValue, err)
		}
		return sv, nil, nil
	case kindIDKCert:
		c := &IDKCert{Phase: r.Int(), Cert: r.Cert()}
		if err := r.Close(); err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrBadBBValue, err)
		}
		return nil, c, nil
	default:
		return nil, nil, fmt.Errorf("%w: kind %d", ErrBadBBValue, kind)
	}
}

// Validator evaluates BB_valid (Section 5): a value is valid iff it is
// signed by the designated sender, or carries t+1 unique idk signatures.
type Validator struct {
	crypto *proto.Crypto
	tag    string
	sender types.ProcessID
	phases int
	small  *threshold.Scheme
}

var _ valid.Predicate = (*Validator)(nil)

// NewValidator builds the BB_valid predicate for one BB instance. phases
// bounds the acceptable idk-certificate phase numbers.
func NewValidator(crypto *proto.Crypto, tag string, sender types.ProcessID, phases int) *Validator {
	return &Validator{
		crypto: crypto,
		tag:    tag,
		sender: sender,
		phases: phases,
		small:  crypto.Threshold(crypto.Params.SmallQuorum()),
	}
}

// Name implements valid.Predicate.
func (bv *Validator) Name() string { return "BB_valid" }

// Validate implements valid.Predicate.
func (bv *Validator) Validate(v types.Value) bool {
	sv, idk, err := DecodeValue(v)
	if err != nil {
		return false
	}
	if sv != nil {
		return bv.crypto.Scheme.Verify(bv.sender, senderBase(bv.tag, bv.sender, sv.V), sv.Sig)
	}
	if idk.Phase < 1 || idk.Phase > bv.phases {
		return false
	}
	return bv.small.Verify(idkBase(bv.tag, idk.Phase), idk.Cert)
}

// SenderBase exposes the sender's sign base so the adversary library can
// construct protocol-conformant attacks (a Byzantine sender knows what it
// signs).
func SenderBase(tag string, sender types.ProcessID, v types.Value) []byte {
	return senderBase(tag, sender, v)
}

// envelopeSigCount counts the component signatures inside a BB value
// envelope, for proto.SigCarrier accounting.
func envelopeSigCount(v types.Value) int {
	sv, idk, err := DecodeValue(v)
	switch {
	case err != nil:
		return 0
	case sv != nil:
		return 1
	default:
		return idk.Cert.Count()
	}
}
