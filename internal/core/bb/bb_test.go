package bb

import (
	"errors"
	"testing"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

func setup(t *testing.T, n int) (*proto.Crypto, types.Params) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("bb-test"))
	if err != nil {
		t.Fatal(err)
	}
	return proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d")), params
}

func run(t *testing.T, n int, sender types.ProcessID, input types.Value, adv sim.Adversary) (*sim.Result, map[types.ProcessID]*Machine) {
	t.Helper()
	crypto, params := setup(t, n)
	machines := make(map[types.ProcessID]*Machine)
	var budget types.Tick
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m := NewMachine(Config{
				Params: params,
				Crypto: crypto,
				ID:     id,
				Sender: sender,
				Input:  input,
				Tag:    "t",
			})
			machines[id] = m
			budget = m.MaxTicks()
			return m
		},
		Adversary: adv,
		MaxTicks:  budget * 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, m := range machines {
		if m.Failed() != nil {
			t.Fatalf("machine %v: %v", id, m.Failed())
		}
	}
	return res, machines
}

func TestCorrectSenderValidity(t *testing.T) {
	for _, n := range []int{3, 5, 9} {
		res, _ := run(t, n, 0, types.Value("payload"), nil)
		if res.TimedOut {
			t.Fatalf("n=%d: timed out", n)
		}
		if !res.AllDecided() {
			t.Fatalf("n=%d: not all decided", n)
		}
		v, ok := res.Agreement()
		if !ok || !v.Equal(types.Value("payload")) {
			t.Errorf("n=%d: decided %v (%v), want payload", n, v, ok)
		}
	}
}

func TestCorrectSenderLinearWords(t *testing.T) {
	// With a correct sender and f=0 every vetting phase is silent: words
	// are the sender's n messages plus the weak BA's O(n).
	for _, n := range []int{11, 41, 101} {
		res, _ := run(t, n, 0, types.Value("v"), nil)
		words := res.Report.Honest.Words
		if max := int64(14 * n); words > max {
			t.Errorf("n=%d: %d words exceed linear bound %d", n, words, max)
		}
	}
}

func TestCrashedSenderDecidesBottom(t *testing.T) {
	res, _ := run(t, 9, 0, types.Value("v"), adversary.NewCrash(0))
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("disagreement")
	}
	if !v.IsBottom() {
		t.Errorf("decided %v, want ⊥ for a silent sender", v)
	}
}

func TestValidityUnderMaxCrashes(t *testing.T) {
	// f = t crashes not including the sender: validity must still hold.
	// n=9, t=4; crashing 4 leaves 5 alive, and the weak BA quorum is 7 —
	// unreachable, so the weak BA goes through its fallback; strong
	// unanimity there still forces the sender's value.
	res, _ := run(t, 9, 0, types.Value("v"), adversary.NewCrash(1, 2, 3, 4))
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("v")) {
		t.Errorf("decided %v (%v), want v", v, ok)
	}
}

func TestCrashedSenderAndLeaders(t *testing.T) {
	// Sender plus the first vetting leader crash (f=2 at n=9, below the
	// fallback threshold... threshold is (9-4-1)/2=2, f=2 not below; use
	// n=11, t=5, threshold (11-5-1)/2=2 — still not; just assert
	// agreement and termination).
	res, _ := run(t, 11, 0, types.Value("v"), adversary.NewCrash(0, 1))
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("disagreement")
	}
	if !v.IsBottom() {
		t.Errorf("decided %v, want ⊥", v)
	}
}

// equivSender sends differently signed values to the two halves at tick 0.
type equivSender struct {
	adversary.Core
	sent bool
}

func (a *equivSender) Corruptions() []sim.Corruption {
	return []sim.Corruption{{ID: 0}}
}

func (a *equivSender) Act(now types.Tick, _ []sim.Message) []sim.Message {
	if a.sent {
		return nil
	}
	a.sent = true
	signer := a.Env.Crypto.Signer(0)
	mk := func(v types.Value) SenderMsg {
		s, err := signer.Sign(senderBase("t", 0, v))
		if err != nil {
			return SenderMsg{}
		}
		return SenderMsg{V: v, Sig: s}
	}
	ma, mb := mk(types.Value("a")), mk(types.Value("b"))
	var msgs []sim.Message
	for i := 1; i < a.Env.Params.N; i++ {
		p := ma
		if i%2 == 0 {
			p = mb
		}
		msgs = append(msgs, sim.Message{From: 0, To: types.ProcessID(i), Payload: p})
	}
	return msgs
}

func TestEquivocatingSenderAgreement(t *testing.T) {
	res, _ := run(t, 9, 0, nil, &equivSender{})
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("agreement violated under sender equivocation")
	}
	// Any of a, b, ⊥ is acceptable for a Byzantine sender.
	if !v.IsBottom() && !v.Equal(types.Value("a")) && !v.Equal(types.Value("b")) {
		t.Errorf("decided out-of-run value %v", v)
	}
}

// stingySender delivers the signed value to exactly one process.
type stingySender struct {
	adversary.Core
	sent bool
}

func (a *stingySender) Corruptions() []sim.Corruption {
	return []sim.Corruption{{ID: 0}}
}

func (a *stingySender) Act(now types.Tick, _ []sim.Message) []sim.Message {
	if a.sent {
		return nil
	}
	a.sent = true
	signer := a.Env.Crypto.Signer(0)
	v := types.Value("rare")
	s, err := signer.Sign(senderBase("t", 0, v))
	if err != nil {
		return nil
	}
	return []sim.Message{{From: 0, To: 5, Payload: SenderMsg{V: v, Sig: s}}}
}

func TestStingySenderStillAgrees(t *testing.T) {
	res, _ := run(t, 9, 0, nil, &stingySender{})
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("disagreement")
	}
	// The single holder propagates the value through the vetting phases;
	// deciding "rare" or ⊥ are both legal.
	if !v.IsBottom() && !v.Equal(types.Value("rare")) {
		t.Errorf("decided %v", v)
	}
}

func TestReplayAttackSafety(t *testing.T) {
	crypto, params := setup(t, 9)
	for seed := int64(1); seed <= 3; seed++ {
		res, err := sim.Run(sim.Config{
			Params: params,
			Crypto: crypto,
			Factory: func(id types.ProcessID) proto.Machine {
				return NewMachine(Config{
					Params: params, Crypto: crypto, ID: id,
					Sender: 0, Input: types.Value("v"), Tag: "t",
				})
			},
			Adversary: adversary.NewReplay(seed, 300, 3, 7),
			MaxTicks:  5000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided() {
			t.Fatalf("seed=%d: not all decided", seed)
		}
		v, ok := res.Agreement()
		if !ok {
			t.Fatalf("seed=%d: replay broke agreement", seed)
		}
		// Sender is correct here, so validity must give exactly v.
		if !v.Equal(types.Value("v")) {
			t.Errorf("seed=%d: decided %v, want v", seed, v)
		}
	}
}

func TestValueEncoding(t *testing.T) {
	crypto, _ := setup(t, 5)
	signer := crypto.Signer(0)
	s, err := signer.Sign(senderBase("t", 0, types.Value("x")))
	if err != nil {
		t.Fatal(err)
	}
	env := EncodeSenderValue(SenderValue{V: types.Value("x"), Sig: s})
	sv, idk, err := DecodeValue(env)
	if err != nil || sv == nil || idk != nil {
		t.Fatalf("decode: %v %v %v", sv, idk, err)
	}
	if !sv.V.Equal(types.Value("x")) {
		t.Errorf("inner value %v", sv.V)
	}

	small := crypto.Threshold(3)
	var shares []threshold.Share
	for _, id := range []types.ProcessID{0, 1, 2} {
		sh, err := small.SignShare(id, idkBase("t", 2))
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	cert, err := small.Combine(idkBase("t", 2), shares)
	if err != nil {
		t.Fatal(err)
	}
	env2 := EncodeIDKCert(IDKCert{Phase: 2, Cert: cert})
	sv2, idk2, err := DecodeValue(env2)
	if err != nil || sv2 != nil || idk2 == nil {
		t.Fatalf("decode idk: %v %v %v", sv2, idk2, err)
	}
	if idk2.Phase != 2 {
		t.Errorf("phase %d", idk2.Phase)
	}

	if _, _, err := DecodeValue(types.Bottom); !errors.Is(err, ErrBadBBValue) {
		t.Errorf("bottom decoded: %v", err)
	}
	if _, _, err := DecodeValue(types.Value{99}); !errors.Is(err, ErrBadBBValue) {
		t.Errorf("bad kind decoded: %v", err)
	}
	if _, _, err := DecodeValue(append(env.Clone(), 0)); !errors.Is(err, ErrBadBBValue) {
		t.Errorf("trailing bytes decoded: %v", err)
	}
}

func TestValidator(t *testing.T) {
	crypto, params := setup(t, 5)
	v := NewValidator(crypto, "t", 0, params.N)

	// Valid sender value.
	s, _ := crypto.Signer(0).Sign(senderBase("t", 0, types.Value("x")))
	good := EncodeSenderValue(SenderValue{V: types.Value("x"), Sig: s})
	if !v.Validate(good) {
		t.Error("valid sender value rejected")
	}
	// Signed by the wrong process.
	s1, _ := crypto.Signer(1).Sign(senderBase("t", 0, types.Value("x")))
	bad := EncodeSenderValue(SenderValue{V: types.Value("x"), Sig: s1})
	if v.Validate(bad) {
		t.Error("non-sender signature accepted")
	}
	// Signature over a different value.
	swap := EncodeSenderValue(SenderValue{V: types.Value("y"), Sig: s})
	if v.Validate(swap) {
		t.Error("transplanted signature accepted")
	}
	// Idk cert with too few shares cannot even combine; a forged cert
	// must fail verification.
	forged := EncodeIDKCert(IDKCert{Phase: 1, Cert: &threshold.Cert{K: 3, Signers: types.NewBitSet(5), Tag: []byte("junk")}})
	if v.Validate(forged) {
		t.Error("forged idk cert accepted")
	}
	// Phase out of range.
	small := crypto.Threshold(3)
	var shares []threshold.Share
	for _, id := range []types.ProcessID{0, 1, 2} {
		sh, _ := small.SignShare(id, idkBase("t", 99))
		shares = append(shares, sh)
	}
	cert, err := small.Combine(idkBase("t", 99), shares)
	if err != nil {
		t.Fatal(err)
	}
	out := EncodeIDKCert(IDKCert{Phase: 99, Cert: cert})
	if v.Validate(out) {
		t.Error("out-of-range phase accepted")
	}
	if v.Name() != "BB_valid" {
		t.Errorf("Name = %q", v.Name())
	}
}

func TestAdaptiveWordsVsCrashes(t *testing.T) {
	// The envelope O(n(f+1)): crashing the sender and early leaders adds
	// roughly one non-silent phase (3n words) per crash.
	n := 21
	for _, f := range []int{1, 2, 3} {
		res, _ := run(t, n, 0, types.Value("v"), adversary.NewCrash(adversary.FirstProcesses(f)...))
		if !res.AllDecided() {
			t.Fatalf("f=%d: not all decided", f)
		}
		words := res.Report.Honest.Words
		if max := int64(14 * n * (f + 1)); words > max {
			t.Errorf("f=%d: words=%d exceed adaptive bound %d", f, words, max)
		}
	}
}
