// Package bb implements the paper's adaptive Byzantine Broadcast
// (Section 5, Algorithms 1 and 2): resilience n = 2t+1 and O(n(f+1))
// communication, by reduction to adaptive weak BA with the BB_valid
// predicate.
//
// Run structure (one round per tick):
//
//	round 1        — the designated sender disseminates ⟨v⟩_sender
//	n vetting phases, 3 rounds each, rotating leader:
//	  r1 help_req  — the leader asks for help iff it has no value yet
//	  r2 reply     — processes return their value, or a signed idk
//	  r3 vet       — the leader broadcasts a sender-signed value or an
//	                 idk certificate batched from t+1 idk signatures
//	weak BA        — on the (BB_valid) envelope values; a decision of the
//	                 form ⟨v⟩_sender yields v, anything else yields ⊥
//
// One deviation from the paper's pseudocode, which only re-broadcasts
// sender-signed replies (Alg. 2 line 23): a leader here re-broadcasts any
// BB_valid reply, including idk certificates adopted in earlier phases.
// Without this, a correct leader whose helpers all hold idk certificates
// could end the vetting with no value, breaking the weak BA precondition;
// with it, Lemma 9 holds in all cases while validity (Lemma 10/12) is
// unaffected — when the sender is correct no idk certificate can exist at
// all. (The published version notes a related correction by Elsheimy et
// al. to the weak BA; this is the analogous repair on the BB side.)
package bb

import (
	"fmt"

	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

// Session name of the nested weak BA.
const wbaSession = "wba"

// roundsPerPhase is the 3-round vetting phase structure (Algorithm 2).
const roundsPerPhase = 3

// Config parameterizes BB for one process.
type Config struct {
	Params types.Params
	Crypto *proto.Crypto
	ID     types.ProcessID
	// Sender is the designated sender.
	Sender types.ProcessID
	// Input is the broadcast value; used only when ID == Sender.
	Input types.Value
	// Tag domain-separates this instance.
	Tag string
	// Phases overrides the number of vetting phases (default n,
	// Algorithm 1 line 5).
	Phases int
	// WBAPhases overrides the nested weak BA's phase count (default t+1).
	WBAPhases int
	// DisableSilentPhases is for ablation only; see wba.Config.
	DisableSilentPhases bool
}

// Payloads of the vetting part.

// SenderMsg is the round-1 dissemination ⟨v⟩_sender.
type SenderMsg struct {
	V   types.Value
	Sig sig.Signature
}

// Type implements proto.Payload.
func (SenderMsg) Type() string { return "bb/sender" }

// Words implements proto.Payload.
func (SenderMsg) Words() int { return 1 }

// HelpReq is the phase leader's ⟨help_req, j⟩ (Alg. 2 line 16).
type HelpReq struct {
	Phase int
}

// Type implements proto.Payload.
func (HelpReq) Type() string { return "bb/help_req" }

// Words implements proto.Payload.
func (HelpReq) Words() int { return 1 }

// Reply returns a held value to the leader (line 19). Val is a BB value
// envelope (sender-signed or idk certificate).
type Reply struct {
	Phase int
	Val   types.Value
}

// Type implements proto.Payload.
func (Reply) Type() string { return "bb/reply" }

// Words implements proto.Payload.
func (Reply) Words() int { return 1 }

// IdkShare is the signed ⟨idk, j⟩ answer (line 21).
type IdkShare struct {
	Phase int
	Share sig.Signature
}

// Type implements proto.Payload.
func (IdkShare) Type() string { return "bb/idk" }

// Words implements proto.Payload.
func (IdkShare) Words() int { return 1 }

// Vetted is the leader's phase conclusion ⟨v, j⟩ (lines 24 and 27).
type Vetted struct {
	Phase int
	Val   types.Value
}

// Type implements proto.Payload.
func (Vetted) Type() string { return "bb/vetted" }

// Words implements proto.Payload.
func (Vetted) Words() int { return 1 }

// Machine implements proto.Machine for BB.
type Machine struct {
	cfg       Config
	signer    *sig.Signer
	clock     proto.RoundClock
	phases    int
	validator *Validator
	small     *threshold.Scheme

	vi       types.Value // current BB envelope value, ⊥ until adopted
	decided  bool
	decision types.Value

	helpReqs  map[int]bool // phase -> leader asked
	replies   map[int][]types.Value
	idkShares map[int]map[types.ProcessID]sig.Signature
	vetted    map[int]bool // phase -> already applied a vetted value

	wbaSub     *proto.Sub
	wbaMachine *wba.Machine

	decidedAtTick types.Tick
	nowTick       types.Tick

	err error
}

var _ proto.Machine = (*Machine)(nil)

// NewMachine builds the BB machine.
func NewMachine(cfg Config) *Machine {
	phases := cfg.Phases
	if phases <= 0 {
		phases = cfg.Params.N
	}
	return &Machine{
		cfg:       cfg,
		signer:    cfg.Crypto.Signer(cfg.ID),
		phases:    phases,
		validator: NewValidator(cfg.Crypto, cfg.Tag, cfg.Sender, phases),
		small:     cfg.Crypto.Threshold(cfg.Params.SmallQuorum()),
		helpReqs:  make(map[int]bool),
		replies:   make(map[int][]types.Value),
		idkShares: make(map[int]map[types.ProcessID]sig.Signature),
		vetted:    make(map[int]bool),
	}
}

// Rounds returns the number of vetting rounds before weak BA starts.
func (m *Machine) Rounds() int { return 1 + m.phases*roundsPerPhase }

// MaxTicks conservatively bounds a full run for simulator budgets.
func (m *Machine) MaxTicks() types.Tick {
	inner := wba.NewMachine(m.wbaConfig())
	return types.Tick(m.Rounds()) + inner.MaxTicks() + 4
}

// WBA exposes the nested weak BA machine for experiment introspection
// (nil until the vetting part completes).
func (m *Machine) WBA() *wba.Machine { return m.wbaMachine }

// Failed returns the first internal error (for tests).
func (m *Machine) Failed() error { return m.err }

// DecidedAtTick reports when (in δ ticks) this process decided.
func (m *Machine) DecidedAtTick() types.Tick { return m.decidedAtTick }

// Begin implements proto.Machine.
func (m *Machine) Begin(now types.Tick) []proto.Outgoing {
	m.nowTick = now
	m.clock = proto.NewRoundClock(now, 1)
	if m.cfg.ID != m.cfg.Sender {
		return nil
	}
	s, err := m.signer.Sign(senderBase(m.cfg.Tag, m.cfg.Sender, m.cfg.Input))
	if err != nil {
		m.fail(err)
		return nil
	}
	return proto.Broadcast(m.cfg.Params, "", SenderMsg{V: m.cfg.Input, Sig: s})
}

// Tick implements proto.Machine.
func (m *Machine) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	m.nowTick = now
	var outs []proto.Outgoing

	var wbaIn, mine []proto.Incoming
	for _, in := range inbox {
		if head, _ := proto.SplitSession(in.Session); head == wbaSession {
			wbaIn = append(wbaIn, in)
		} else {
			mine = append(mine, in)
		}
	}
	for _, in := range mine {
		m.ingest(now, in)
	}

	if r, ok := m.clock.BoundaryAt(now); ok {
		outs = append(outs, m.boundary(int(r))...)
	}

	if m.wbaSub != nil {
		routed := make([]proto.Incoming, 0, len(wbaIn))
		for _, in := range wbaIn {
			_, rest := proto.SplitSession(in.Session)
			in.Session = rest
			routed = append(routed, in)
		}
		outs = append(outs, m.wbaSub.Tick(now, routed)...)
		m.finish()
	}
	return outs
}

// Output implements proto.Machine.
func (m *Machine) Output() (types.Value, bool) { return m.decision, m.decided }

// Done implements proto.Machine.
func (m *Machine) Done() bool {
	return m.decided && m.wbaSub != nil && m.wbaSub.Done()
}

// ingest stashes or applies one incoming message.
func (m *Machine) ingest(now types.Tick, in proto.Incoming) {
	switch p := in.Payload.(type) {
	case SenderMsg:
		// Round-1 dissemination only (line 3); late sender messages are
		// ignored to keep the vetting phases meaningful.
		if in.From != m.cfg.Sender || now > m.clock.StartOf(2) {
			return
		}
		if m.vi != nil {
			return
		}
		env := EncodeSenderValue(SenderValue{V: p.V, Sig: p.Sig})
		if m.validator.Validate(env) {
			m.vi = env
		}
	case HelpReq:
		if p.Phase >= 1 && p.Phase <= m.phases && in.From == m.cfg.Params.Leader(p.Phase) {
			m.helpReqs[p.Phase] = true
		}
	case Reply:
		if m.cfg.Params.Leader(p.Phase) != m.cfg.ID {
			return
		}
		if m.validator.Validate(p.Val) {
			m.replies[p.Phase] = append(m.replies[p.Phase], p.Val)
		}
	case IdkShare:
		if m.cfg.Params.Leader(p.Phase) != m.cfg.ID {
			return
		}
		if !m.small.VerifyShare(idkBase(m.cfg.Tag, p.Phase), threshold.Share{Signer: in.From, Sig: p.Share}) {
			return
		}
		if m.idkShares[p.Phase] == nil {
			m.idkShares[p.Phase] = make(map[types.ProcessID]sig.Signature)
		}
		m.idkShares[p.Phase][in.From] = p.Share
	case Vetted:
		// Applied immediately: the value is certificate/signature-backed,
		// so adopting it early is safe (line 28–29 and line 8). Only a
		// VALID value concludes the phase — a Byzantine leader cannot
		// block its own phase's valid conclusion with a garbage prefix.
		if p.Phase < 1 || p.Phase > m.phases || in.From != m.cfg.Params.Leader(p.Phase) || m.vetted[p.Phase] {
			return
		}
		if m.validator.Validate(p.Val) {
			m.vetted[p.Phase] = true
			m.vi = p.Val.Clone()
		}
	}
}

// boundary performs round-r actions.
func (m *Machine) boundary(r int) []proto.Outgoing {
	if r >= 2 && r <= m.Rounds() {
		phase := (r - 2) / roundsPerPhase
		w := (r-2)%roundsPerPhase + 1
		return m.phaseRound(phase+1, w)
	}
	if r == m.Rounds()+1 && m.wbaSub == nil {
		return m.startWBA()
	}
	return nil
}

// phaseRound implements Algorithm 2 for (phase, round w).
func (m *Machine) phaseRound(phase, w int) []proto.Outgoing {
	leader := m.cfg.Params.Leader(phase)
	amLeader := leader == m.cfg.ID
	switch w {
	case 1:
		if amLeader && m.vi == nil {
			return proto.Broadcast(m.cfg.Params, "", HelpReq{Phase: phase})
		}
	case 2:
		if !m.helpReqs[phase] {
			return nil
		}
		if m.vi != nil {
			return proto.Unicast(leader, "", Reply{Phase: phase, Val: m.vi})
		}
		share, err := m.signer.Sign(idkBase(m.cfg.Tag, phase))
		if err != nil {
			m.fail(err)
			return nil
		}
		return proto.Unicast(leader, "", IdkShare{Phase: phase, Share: share})
	case 3:
		if !amLeader || !m.helpReqs[phase] {
			return nil
		}
		// Prefer a sender-signed reply (line 23), then any valid reply,
		// then an idk certificate from t+1 fresh shares (line 25).
		var fallbackVal types.Value
		for _, val := range m.replies[phase] {
			sv, _, err := DecodeValue(val)
			if err != nil {
				continue
			}
			if sv != nil {
				return proto.Broadcast(m.cfg.Params, "", Vetted{Phase: phase, Val: val})
			}
			if fallbackVal == nil {
				fallbackVal = val
			}
		}
		if fallbackVal != nil {
			return proto.Broadcast(m.cfg.Params, "", Vetted{Phase: phase, Val: fallbackVal})
		}
		shares := m.idkShares[phase]
		if len(shares) < m.cfg.Params.SmallQuorum() {
			return nil
		}
		list := make([]threshold.Share, 0, len(shares))
		for _, id := range m.cfg.Params.AllProcesses() {
			if s, ok := shares[id]; ok {
				list = append(list, threshold.Share{Signer: id, Sig: s})
			}
		}
		cert, err := m.small.Combine(idkBase(m.cfg.Tag, phase), list)
		if err != nil {
			return nil
		}
		env := EncodeIDKCert(IDKCert{Phase: phase, Cert: cert})
		return proto.Broadcast(m.cfg.Params, "", Vetted{Phase: phase, Val: env})
	}
	return nil
}

// wbaConfig assembles the nested weak BA configuration.
func (m *Machine) wbaConfig() wba.Config {
	return wba.Config{
		Params:              m.cfg.Params,
		Crypto:              m.cfg.Crypto,
		ID:                  m.cfg.ID,
		Input:               m.vi,
		Predicate:           m.validator,
		Tag:                 m.cfg.Tag + "/" + wbaSession,
		Phases:              m.cfg.WBAPhases,
		DisableSilentPhases: m.cfg.DisableSilentPhases,
	}
}

// startWBA launches the weak BA with the vetted value (Alg. 1 line 9).
func (m *Machine) startWBA() []proto.Outgoing {
	inner := wba.NewMachine(m.wbaConfig())
	m.wbaMachine = inner
	m.wbaSub = proto.NewSub(wbaSession, inner)
	return m.wbaSub.Begin(m.clock.StartOf(types.Round(m.Rounds() + 1)))
}

// finish maps the weak BA decision to the BB decision (lines 10–13).
func (m *Machine) finish() {
	if m.decided || m.wbaSub == nil {
		return
	}
	baDecision, ok := m.wbaSub.Output()
	if !ok {
		return
	}
	m.decided = true
	m.decidedAtTick = m.nowTick
	if sv, _, err := DecodeValue(baDecision); err == nil && sv != nil {
		// Guard against a Byzantine-crafted envelope that weak BA could
		// only decide if it was valid; double-check the signature anyway.
		if m.validator.Validate(baDecision) {
			m.decision = sv.V.Clone()
			return
		}
	}
	m.decision = types.Bottom
}

// fail records the first internal error.
func (m *Machine) fail(err error) {
	if m.err == nil {
		m.err = fmt.Errorf("bb %v: %w", m.cfg.ID, err)
	}
}

// Component-signature accounting (proto.SigCarrier).

// SigCount implements proto.SigCarrier.
func (SenderMsg) SigCount() int { return 1 }

// SigCount implements proto.SigCarrier.
func (HelpReq) SigCount() int { return 0 }

// SigCount implements proto.SigCarrier.
func (m Reply) SigCount() int { return envelopeSigCount(m.Val) }

// SigCount implements proto.SigCarrier.
func (IdkShare) SigCount() int { return 1 }

// SigCount implements proto.SigCarrier.
func (m Vetted) SigCount() int { return envelopeSigCount(m.Val) }
