package bb

import (
	"bytes"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

func TestWireRoundTrip(t *testing.T) {
	reg := wire.NewRegistry()
	RegisterWire(reg)
	ring, err := sig.NewHMACRing(3, []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ring.Sign(0, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	payloads := []proto.Payload{
		SenderMsg{V: types.Value("v"), Sig: s},
		HelpReq{Phase: 7},
		Reply{Phase: 2, Val: types.Value("env")},
		IdkShare{Phase: 3, Share: s},
		Vetted{Phase: 4, Val: types.Value("env")},
	}
	for _, p := range payloads {
		b1, err := reg.EncodePayload(p)
		if err != nil {
			t.Fatalf("encode %s: %v", p.Type(), err)
		}
		got, err := reg.DecodePayload(b1)
		if err != nil {
			t.Fatalf("decode %s: %v", p.Type(), err)
		}
		b2, err := reg.EncodePayload(got)
		if err != nil {
			t.Fatalf("re-encode %s: %v", p.Type(), err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: round trip not byte-identical", p.Type())
		}
	}
}
