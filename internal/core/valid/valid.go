// Package valid defines the external validity predicates of the paper's
// weak Byzantine Agreement (Definition 3, unique validity). A predicate is
// any locally computable boolean over values; the application layer picks
// the predicate, and weak BA guarantees that a non-⊥ decision satisfies
// it, while ⊥ may only be decided when more than one valid value exists in
// the run.
package valid

import "adaptiveba/internal/types"

// Predicate decides whether a value is valid. Implementations must be
// deterministic and locally computable (they may verify signatures or
// certificates embedded in the value, as BB_valid does).
type Predicate interface {
	// Name identifies the predicate in logs and experiment output.
	Name() string
	// Validate reports whether v is valid. ⊥ is never valid: ⊥ is the
	// distinguished "no unanimous valid value" outcome, not a value.
	Validate(v types.Value) bool
}

// Func adapts a plain function to a Predicate.
type Func struct {
	// PredicateName is returned by Name.
	PredicateName string
	// Fn implements Validate.
	Fn func(types.Value) bool
}

var _ Predicate = Func{}

// Name implements Predicate.
func (f Func) Name() string { return f.PredicateName }

// Validate implements Predicate.
func (f Func) Validate(v types.Value) bool {
	if v.IsBottom() {
		return false
	}
	return f.Fn(v)
}

// NonBottom accepts every non-⊥ value: the weakest useful predicate,
// matching external validity with a trivially satisfiable predicate.
func NonBottom() Predicate {
	return Func{PredicateName: "non-bottom", Fn: func(types.Value) bool { return true }}
}

// Binary accepts exactly the canonical binary values {0, 1}.
func Binary() Predicate {
	return Func{PredicateName: "binary", Fn: func(v types.Value) bool { return v.IsBinary() }}
}
