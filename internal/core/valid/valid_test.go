package valid

import (
	"bytes"
	"testing"

	"adaptiveba/internal/types"
)

func TestNonBottom(t *testing.T) {
	p := NonBottom()
	if p.Name() != "non-bottom" {
		t.Errorf("Name = %q", p.Name())
	}
	if !p.Validate(types.Value("anything")) {
		t.Error("non-empty value rejected")
	}
	if p.Validate(types.Bottom) {
		t.Error("⊥ accepted: ⊥ is never a valid value")
	}
	if p.Validate(types.Value{}) {
		t.Error("empty value accepted")
	}
}

func TestBinary(t *testing.T) {
	p := Binary()
	if !p.Validate(types.Zero) || !p.Validate(types.One) {
		t.Error("canonical binaries rejected")
	}
	for _, v := range []types.Value{types.Bottom, types.Value("x"), {2}, {0, 0}} {
		if p.Validate(v) {
			t.Errorf("non-binary %v accepted", v)
		}
	}
}

func TestFuncAdapter(t *testing.T) {
	p := Func{
		PredicateName: "prefix",
		Fn:            func(v types.Value) bool { return bytes.HasPrefix(v, []byte("tx:")) },
	}
	if p.Name() != "prefix" {
		t.Errorf("Name = %q", p.Name())
	}
	if !p.Validate(types.Value("tx:42")) {
		t.Error("matching value rejected")
	}
	if p.Validate(types.Value("block:42")) {
		t.Error("non-matching value accepted")
	}
	// ⊥ short-circuits before Fn runs.
	called := false
	q := Func{PredicateName: "spy", Fn: func(types.Value) bool { called = true; return true }}
	if q.Validate(types.Bottom) {
		t.Error("⊥ accepted")
	}
	if called {
		t.Error("Fn invoked for ⊥")
	}
}
