package strongba

import (
	"errors"
	"testing"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

func setup(t *testing.T, n int) (*proto.Crypto, types.Params) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("sba-test"))
	if err != nil {
		t.Fatal(err)
	}
	return proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d")), params
}

func run(t *testing.T, n int, adv sim.Adversary, input func(types.ProcessID) types.Value) (*sim.Result, map[types.ProcessID]*Machine) {
	t.Helper()
	crypto, params := setup(t, n)
	machines := make(map[types.ProcessID]*Machine)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m, err := NewMachine(Config{
				Params: params,
				Crypto: crypto,
				ID:     id,
				Input:  input(id),
				Tag:    "t",
			})
			if err != nil {
				t.Fatal(err)
			}
			machines[id] = m
			return m
		},
		Adversary: adv,
		MaxTicks:  types.Tick(20*n + 200),
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, m := range machines {
		if m.Failed() != nil {
			t.Fatalf("machine %v: %v", id, m.Failed())
		}
	}
	return res, machines
}

func constInput(v types.Value) func(types.ProcessID) types.Value {
	return func(types.ProcessID) types.Value { return v }
}

func TestFailureFreeUnanimous(t *testing.T) {
	for _, n := range []int{3, 9, 21} {
		res, machines := run(t, n, nil, constInput(types.One))
		if res.TimedOut {
			t.Fatalf("n=%d: timed out", n)
		}
		if !res.AllDecided() {
			t.Fatalf("n=%d: not all decided", n)
		}
		v, ok := res.Agreement()
		if !ok || !v.Equal(types.One) {
			t.Errorf("n=%d: decided %v (%v)", n, v, ok)
		}
		for id, m := range machines {
			if m.RanFallback() {
				t.Errorf("n=%d: %v ran fallback at f=0 (Lemma 8)", n, id)
			}
		}
	}
}

func TestFailureFreeLinearWords(t *testing.T) {
	// Lemma 8 + Section 7.1: f=0 costs 4 leader rounds, O(n) words.
	for _, n := range []int{11, 41, 101, 201} {
		res, _ := run(t, n, nil, constInput(types.Zero))
		words := res.Report.Honest.Words
		if max := int64(6 * n); words > max {
			t.Errorf("n=%d: %d words exceed linear bound %d", n, words, max)
		}
	}
}

func TestSplitBinaryInputsFailureFree(t *testing.T) {
	// With n = 2t+1 correct processes and binary inputs, some value has
	// t+1 inputs; the leader certifies it and everyone decides it.
	res, _ := run(t, 9, nil, func(id types.ProcessID) types.Value {
		return types.BinaryValue(id%2 == 0) // five 1s, four 0s
	})
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("disagreement")
	}
	if !v.IsBinary() {
		t.Errorf("non-binary decision %v", v)
	}
}

func TestStrongUnanimityWithCrashedFollower(t *testing.T) {
	// One crash (not the leader): QC_decide needs n signatures, so the
	// fast path dies and the fallback must deliver the unanimous value.
	res, machines := run(t, 9, adversary.NewCrash(5), constInput(types.One))
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.One) {
		t.Errorf("decided %v (%v), want 1", v, ok)
	}
	for _, m := range machines {
		if !m.RanFallback() {
			t.Error("fast path should be dead with one crash")
		}
	}
}

func TestStrongUnanimityWithCrashedLeader(t *testing.T) {
	res, _ := run(t, 9, adversary.NewCrash(0), constInput(types.Zero))
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Zero) {
		t.Errorf("decided %v (%v), want 0", v, ok)
	}
}

func TestMaxCrashes(t *testing.T) {
	res, _ := run(t, 9, adversary.NewCrash(0, 1, 2, 3), constInput(types.One))
	if !res.AllDecided() {
		t.Fatal("not all decided with f=t")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.One) {
		t.Errorf("decided %v (%v)", v, ok)
	}
}

func TestSplitInputsWithCrashes(t *testing.T) {
	// Split inputs + crashes: only agreement and binary-ness are required.
	res, _ := run(t, 9, adversary.NewCrash(1, 6), func(id types.ProcessID) types.Value {
		return types.BinaryValue(id < 4)
	})
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("disagreement")
	}
	if !v.IsBinary() && !v.IsBottom() {
		t.Errorf("decided %v", v)
	}
}

// partialLeader is a Byzantine leader that completes rounds 2 and 4
// honestly but sends QC_decide to only one process: the safety window must
// propagate that decision to everyone.
type partialLeader struct {
	adversary.Core
	inbox []proto.Incoming
}

func (a *partialLeader) Corruptions() []sim.Corruption {
	return []sim.Corruption{{ID: 0}}
}

func (a *partialLeader) Observe(_ types.Tick, _ types.ProcessID, inbox []proto.Incoming) {
	a.inbox = append(a.inbox, inbox...)
}

func (a *partialLeader) Act(now types.Tick, _ []sim.Message) []sim.Message {
	params := a.Env.Params
	small := a.Env.Crypto.Threshold(params.SmallQuorum())
	full := a.Env.Crypto.Threshold(params.N)
	switch now {
	case 1:
		// Build QC_propose from observed input shares (plus our own).
		shares := a.collect(func(p proto.Payload) (types.Value, sig.Signature, bool) {
			if is, ok := p.(InputShare); ok {
				return is.V, is.Share, true
			}
			return nil, nil, false
		}, inputBase("t", types.One))
		own, err := a.Env.Crypto.Signer(0).Sign(inputBase("t", types.One))
		if err != nil {
			return nil
		}
		shares = append(shares, threshold.Share{Signer: 0, Sig: own})
		cert, err := small.Combine(inputBase("t", types.One), shares)
		if err != nil {
			return nil
		}
		var msgs []sim.Message
		for i := 0; i < params.N; i++ {
			msgs = append(msgs, sim.Message{From: 0, To: types.ProcessID(i), Payload: Propose{V: types.One, Cert: cert}})
		}
		return msgs
	case 3:
		shares := a.collect(func(p proto.Payload) (types.Value, sig.Signature, bool) {
			if ds, ok := p.(DecideShare); ok {
				return ds.V, ds.Share, true
			}
			return nil, nil, false
		}, decideBase("t", types.One))
		own, err := a.Env.Crypto.Signer(0).Sign(decideBase("t", types.One))
		if err != nil {
			return nil
		}
		shares = append(shares, threshold.Share{Signer: 0, Sig: own})
		cert, err := full.Combine(decideBase("t", types.One), shares)
		if err != nil {
			return nil // could not assemble n shares; fall back silently
		}
		// Deal the decision certificate to p1 only.
		return []sim.Message{{From: 0, To: 1, Payload: DecideMsg{V: types.One, Cert: cert}}}
	}
	return nil
}

// collect extracts matching shares from the observed inbox.
func (a *partialLeader) collect(extract func(proto.Payload) (types.Value, sig.Signature, bool), base []byte) []threshold.Share {
	var shares []threshold.Share
	seen := map[types.ProcessID]bool{}
	for _, in := range a.inbox {
		v, s, ok := extract(in.Payload)
		if !ok || seen[in.From] || !v.Equal(types.One) {
			continue
		}
		seen[in.From] = true
		shares = append(shares, threshold.Share{Signer: in.From, Sig: s})
	}
	_ = base
	return shares
}

func TestPartialDecisionPropagatesThroughSafetyWindow(t *testing.T) {
	res, _ := run(t, 5, &partialLeader{}, constInput(types.One))
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("agreement violated: the early decision did not propagate")
	}
	if !v.Equal(types.One) {
		t.Errorf("decided %v, want 1", v)
	}
}

func TestNonBinaryInputRejected(t *testing.T) {
	crypto, params := setup(t, 3)
	_, err := NewMachine(Config{Params: params, Crypto: crypto, ID: 0, Input: types.Value("x"), Tag: "t"})
	if !errors.Is(err, ErrNotBinary) {
		t.Errorf("err = %v", err)
	}
	_, err = NewMachine(Config{Params: params, Crypto: crypto, ID: 0, Input: types.Bottom, Tag: "t"})
	if !errors.Is(err, ErrNotBinary) {
		t.Errorf("bottom input: err = %v", err)
	}
}

func TestBadLeaderRejected(t *testing.T) {
	crypto, params := setup(t, 3)
	_, err := NewMachine(Config{Params: params, Crypto: crypto, ID: 0, Input: types.One, Leader: 7, Tag: "t"})
	if err == nil {
		t.Error("out-of-range leader accepted")
	}
}

func TestReplayAttackSafety(t *testing.T) {
	crypto, params := setup(t, 9)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m, err := NewMachine(Config{
				Params: params, Crypto: crypto, ID: id,
				Input: types.BinaryValue(id%2 == 0), Tag: "t",
			})
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
		Adversary: adversary.NewReplay(7, 150, 2, 8),
		MaxTicks:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	if _, ok := res.Agreement(); !ok {
		t.Fatal("replay attack broke agreement")
	}
}
