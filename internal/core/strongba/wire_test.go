package strongba

import (
	"bytes"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

func TestWireRoundTrip(t *testing.T) {
	reg := wire.NewRegistry()
	RegisterWire(reg)
	ring, err := sig.NewHMACRing(3, []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	th, err := threshold.New(ring, 2, threshold.ModeCompact, []byte("d"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	var shares []threshold.Share
	for _, id := range []types.ProcessID{0, 1} {
		sh, err := th.SignShare(id, msg)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	cert, err := th.Combine(msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ring.Sign(2, msg)
	if err != nil {
		t.Fatal(err)
	}

	payloads := []proto.Payload{
		InputShare{V: types.One, Share: s},
		Propose{V: types.Zero, Cert: cert},
		DecideShare{V: types.One, Share: s},
		DecideMsg{V: types.One, Cert: cert},
		Fallback{V: types.One, Proof: cert},
		Fallback{}, // the bare ⟨fallback, ⊥, ⊥⟩ announcement
	}
	for _, p := range payloads {
		b1, err := reg.EncodePayload(p)
		if err != nil {
			t.Fatalf("encode %s: %v", p.Type(), err)
		}
		got, err := reg.DecodePayload(b1)
		if err != nil {
			t.Fatalf("decode %s: %v", p.Type(), err)
		}
		b2, err := reg.EncodePayload(got)
		if err != nil {
			t.Fatalf("re-encode %s: %v", p.Type(), err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: round trip not byte-identical", p.Type())
		}
	}
}
