// Package strongba implements the paper's binary strong Byzantine
// Agreement (Section 7, Algorithm 5): optimal resilience n = 2t+1, O(n)
// words in the failure-free case and O(n²)+fallback otherwise.
//
// Run structure (one round per tick):
//
//	r1 input    — everyone sends its signed binary input to the leader
//	r2 propose  — the leader batches t+1 matching inputs into QC_propose
//	              (binary domain: with f = 0 some value must have t+1)
//	r3 decide   — processes answer a valid proposal with decide shares
//	r4 certify  — the leader batches n decide shares into QC_decide
//	r5 decide   — holders of QC_decide decide; everyone else broadcasts a
//	              fallback announcement
//	fallback    — 2δ after the first announcement, A_fallback runs with
//	              δ' = 2δ; decisions made before it are preserved through
//	              the safety window and strong unanimity
//
// One pseudocode repair, mirroring Algorithm 3's initialization: line 19
// (bu_decision ← decision) is applied only when a decision exists;
// otherwise bu_decision keeps the process's original input. Taking it
// literally would run the fallback on ⊥ inputs and break strong unanimity
// (Lemma 28's proof indeed argues with "the original initial values").
package strongba

import (
	"fmt"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/fallback"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

const fbSession = "fb"

// preRounds is the number of lock-step rounds before the fallback window.
const preRounds = 5

// inputBase is what input shares sign (round 1).
func inputBase(tag string, v types.Value) []byte {
	w := wire.NewWriter()
	w.PutString("sba/input")
	w.PutString(tag)
	w.PutValue(v)
	return w.Bytes()
}

// decideBase is what decide shares sign (round 3).
func decideBase(tag string, v types.Value) []byte {
	w := wire.NewWriter()
	w.PutString("sba/decide")
	w.PutString(tag)
	w.PutValue(v)
	return w.Bytes()
}

// InputShare is the round-1 message ⟨v_i⟩_pi.
type InputShare struct {
	V     types.Value
	Share sig.Signature
}

// Type implements proto.Payload.
func (InputShare) Type() string { return "sba/input" }

// Words implements proto.Payload.
func (InputShare) Words() int { return 1 }

// Propose is the leader's round-2 broadcast ⟨propose, v, QC_propose(v)⟩.
type Propose struct {
	V    types.Value
	Cert *threshold.Cert // (t+1, n) over inputBase
}

// Type implements proto.Payload.
func (Propose) Type() string { return "sba/propose" }

// Words implements proto.Payload.
func (Propose) Words() int { return 1 }

// DecideShare is the round-3 answer ⟨decide, v⟩_pi.
type DecideShare struct {
	V     types.Value
	Share sig.Signature
}

// Type implements proto.Payload.
func (DecideShare) Type() string { return "sba/decide_share" }

// Words implements proto.Payload.
func (DecideShare) Words() int { return 1 }

// DecideMsg is the leader's round-4 broadcast ⟨decide, v, QC_decide(v)⟩.
type DecideMsg struct {
	V    types.Value
	Cert *threshold.Cert // (n, n) over decideBase
}

// Type implements proto.Payload.
func (DecideMsg) Type() string { return "sba/decide" }

// Words implements proto.Payload.
func (DecideMsg) Words() int { return 1 }

// Fallback announces the fallback path ⟨fallback, v, proof⟩; v/proof carry
// the sender's decision evidence if it has any.
type Fallback struct {
	V     types.Value
	Proof *threshold.Cert
}

// Type implements proto.Payload.
func (Fallback) Type() string { return "sba/fallback" }

// Words implements proto.Payload.
func (Fallback) Words() int { return 1 }

// Config parameterizes strong BA for one process.
type Config struct {
	Params types.Params
	Crypto *proto.Crypto
	ID     types.ProcessID
	// Input must be a canonical binary value (types.Zero or types.One).
	Input types.Value
	// Leader is the designated leader (the paper fixes "leader ← p1"; the
	// identity is arbitrary, and the zero value selects p0).
	Leader types.ProcessID
	// Tag domain-separates this instance.
	Tag string
}

// ErrNotBinary reports a non-binary input.
var ErrNotBinary = fmt.Errorf("strongba: input must be binary")

// Machine implements proto.Machine for Algorithm 5.
type Machine struct {
	cfg    Config
	leader types.ProcessID
	signer *sig.Signer
	clock  proto.RoundClock
	small  *threshold.Scheme // (t+1, n)
	full   *threshold.Scheme // (n, n)

	decided  bool
	decision types.Value
	proof    *threshold.Cert

	buDecision types.Value
	buProof    *threshold.Cert

	inputShares  map[string]map[types.ProcessID]sig.Signature
	decideShares map[string]map[types.ProcessID]sig.Signature
	proposal     *Propose

	fallbackStart   types.Tick
	fbSub           *proto.Sub
	fbBuffer        []proto.Incoming
	fbAdopted       bool
	pendingAnnounce *Fallback
	ranFallback     bool
	decidedAtTick   types.Tick
	nowTick         types.Tick

	err error
}

var _ proto.Machine = (*Machine)(nil)

// NewMachine builds the strong BA machine.
func NewMachine(cfg Config) (*Machine, error) {
	if !cfg.Input.IsBinary() {
		return nil, fmt.Errorf("%w: %v", ErrNotBinary, cfg.Input)
	}
	if err := cfg.Params.CheckProcess(cfg.Leader); err != nil {
		return nil, err
	}
	return &Machine{
		cfg:           cfg,
		leader:        cfg.Leader,
		signer:        cfg.Crypto.Signer(cfg.ID),
		small:         cfg.Crypto.Threshold(cfg.Params.SmallQuorum()),
		full:          cfg.Crypto.Threshold(cfg.Params.N),
		buDecision:    cfg.Input.Clone(),
		inputShares:   make(map[string]map[types.ProcessID]sig.Signature),
		decideShares:  make(map[string]map[types.ProcessID]sig.Signature),
		fallbackStart: -1,
	}, nil
}

// MaxTicks bounds a full run for simulator budgets.
func (m *Machine) MaxTicks() types.Tick {
	return types.Tick(preRounds) + 6 + types.Tick((m.cfg.Params.T+2)*2) + 4
}

// RanFallback reports whether this process executed A_fallback.
func (m *Machine) RanFallback() bool { return m.ranFallback }

// DecidedAtTick reports when (in δ ticks) this process decided.
func (m *Machine) DecidedAtTick() types.Tick { return m.decidedAtTick }

// Failed returns the first internal error (for tests).
func (m *Machine) Failed() error { return m.err }

// Begin implements proto.Machine: round 1 sends the signed input.
func (m *Machine) Begin(now types.Tick) []proto.Outgoing {
	m.nowTick = now
	m.clock = proto.NewRoundClock(now, 1)
	share, err := m.signer.Sign(inputBase(m.cfg.Tag, m.cfg.Input))
	if err != nil {
		m.fail(err)
		return nil
	}
	return proto.Unicast(m.leader, "", InputShare{V: m.cfg.Input, Share: share})
}

// Tick implements proto.Machine.
func (m *Machine) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	m.nowTick = now
	var outs []proto.Outgoing
	var fbIn, mine []proto.Incoming
	for _, in := range inbox {
		if head, _ := proto.SplitSession(in.Session); head == fbSession {
			fbIn = append(fbIn, in)
		} else {
			mine = append(mine, in)
		}
	}
	for _, in := range mine {
		m.ingest(now, in)
	}
	if m.pendingAnnounce != nil {
		outs = append(outs, proto.Broadcast(m.cfg.Params, "", *m.pendingAnnounce)...)
		m.pendingAnnounce = nil
	}
	if r, ok := m.clock.BoundaryAt(now); ok && int(r) >= 2 && int(r) <= preRounds {
		outs = append(outs, m.boundary(now, int(r))...)
	}
	if m.fallbackStart >= 0 && m.fbSub == nil && now >= m.fallbackStart {
		outs = append(outs, m.startFallback(now)...)
	}
	if m.fbSub != nil {
		if len(m.fbBuffer) > 0 {
			fbIn = append(m.fbBuffer, fbIn...)
			m.fbBuffer = nil
		}
		routed := make([]proto.Incoming, 0, len(fbIn))
		for _, in := range fbIn {
			_, rest := proto.SplitSession(in.Session)
			in.Session = rest
			routed = append(routed, in)
		}
		outs = append(outs, m.fbSub.Tick(now, routed)...)
		m.finishFallback()
	} else {
		m.fbBuffer = append(m.fbBuffer, fbIn...)
	}
	return outs
}

// Output implements proto.Machine.
func (m *Machine) Output() (types.Value, bool) { return m.decision, m.decided }

// Done implements proto.Machine.
func (m *Machine) Done() bool {
	if !m.decided {
		return false
	}
	if m.fallbackStart >= 0 {
		return m.fbSub != nil && m.fbSub.Done()
	}
	return true
}

// ingest processes one incoming message.
func (m *Machine) ingest(now types.Tick, in proto.Incoming) {
	switch p := in.Payload.(type) {
	case InputShare:
		if m.cfg.ID != m.leader || !p.V.IsBinary() {
			return
		}
		if !m.small.VerifyShare(inputBase(m.cfg.Tag, p.V), threshold.Share{Signer: in.From, Sig: p.Share}) {
			return
		}
		key := string(p.V)
		if m.inputShares[key] == nil {
			m.inputShares[key] = make(map[types.ProcessID]sig.Signature)
		}
		m.inputShares[key][in.From] = p.Share
	case Propose:
		if in.From != m.leader || m.proposal != nil {
			return
		}
		if !p.V.IsBinary() || !m.small.Verify(inputBase(m.cfg.Tag, p.V), p.Cert) {
			return
		}
		cp := p
		m.proposal = &cp
	case DecideShare:
		if m.cfg.ID != m.leader || !p.V.IsBinary() {
			return
		}
		if !m.full.VerifyShare(decideBase(m.cfg.Tag, p.V), threshold.Share{Signer: in.From, Sig: p.Share}) {
			return
		}
		key := string(p.V)
		if m.decideShares[key] == nil {
			m.decideShares[key] = make(map[types.ProcessID]sig.Signature)
		}
		m.decideShares[key][in.From] = p.Share
	case DecideMsg:
		// Certificate-backed: accept whenever it arrives.
		if !p.V.IsBinary() || !m.full.Verify(decideBase(m.cfg.Tag, p.V), p.Cert) {
			return
		}
		m.setDecision(p.V, p.Cert)
	case Fallback:
		m.onFallback(now, p)
	}
}

// onFallback implements lines 20–27.
func (m *Machine) onFallback(now types.Tick, p Fallback) {
	// Adopt decision evidence while undecided.
	if !m.decided && p.Proof != nil && p.V.IsBinary() &&
		m.full.Verify(decideBase(m.cfg.Tag, p.V), p.Proof) {
		m.buDecision = p.V.Clone()
		m.buProof = p.Proof
	}
	if m.fallbackStart < 0 {
		m.fallbackStart = now + 2
		m.pendingAnnounce = &Fallback{V: m.buDecision, Proof: m.buProof}
	}
}

// boundary performs round-r actions (r in 2..5).
func (m *Machine) boundary(now types.Tick, r int) []proto.Outgoing {
	amLeader := m.cfg.ID == m.leader
	switch r {
	case 2:
		if !amLeader {
			return nil
		}
		for _, key := range []string{string(types.Zero), string(types.One)} {
			shares := m.inputShares[key]
			if len(shares) < m.cfg.Params.SmallQuorum() {
				continue
			}
			v := types.Value(key)
			cert, err := m.small.Combine(inputBase(m.cfg.Tag, v), m.shareList(shares))
			if err != nil {
				continue
			}
			return proto.Broadcast(m.cfg.Params, "", Propose{V: v, Cert: cert})
		}
	case 3:
		if m.proposal == nil {
			return nil
		}
		share, err := m.signer.Sign(decideBase(m.cfg.Tag, m.proposal.V))
		if err != nil {
			m.fail(err)
			return nil
		}
		return proto.Unicast(m.leader, "", DecideShare{V: m.proposal.V, Share: share})
	case 4:
		if !amLeader {
			return nil
		}
		for _, key := range []string{string(types.Zero), string(types.One)} {
			shares := m.decideShares[key]
			if len(shares) < m.cfg.Params.N {
				continue
			}
			v := types.Value(key)
			cert, err := m.full.Combine(decideBase(m.cfg.Tag, v), m.shareList(shares))
			if err != nil {
				continue
			}
			return proto.Broadcast(m.cfg.Params, "", DecideMsg{V: v, Cert: cert})
		}
	case 5:
		// Line 13–18: holders of QC_decide decided via ingest; everyone
		// else announces the fallback.
		if !m.decided && m.fallbackStart < 0 {
			m.fallbackStart = now + 2
			return proto.Broadcast(m.cfg.Params, "", Fallback{})
		}
	}
	return nil
}

// shareList converts a signer-keyed share map to a deterministic slice.
func (m *Machine) shareList(shares map[types.ProcessID]sig.Signature) []threshold.Share {
	list := make([]threshold.Share, 0, len(shares))
	for _, id := range m.cfg.Params.AllProcesses() {
		if s, ok := shares[id]; ok {
			list = append(list, threshold.Share{Signer: id, Sig: s})
		}
	}
	return list
}

// setDecision records the decision once.
func (m *Machine) setDecision(v types.Value, proof *threshold.Cert) {
	if m.decided {
		return
	}
	m.decided = true
	m.decision = v.Clone()
	m.proof = proof
	m.decidedAtTick = m.nowTick
	m.buDecision = m.decision
	m.buProof = proof
}

// startFallback launches A_fallback (line 28).
func (m *Machine) startFallback(now types.Tick) []proto.Outgoing {
	m.ranFallback = true
	fb := fallback.NewMachine(fallback.Config{
		Params:   m.cfg.Params,
		Crypto:   m.cfg.Crypto,
		ID:       m.cfg.ID,
		Input:    m.buDecision,
		Tag:      m.cfg.Tag + "/" + fbSession,
		RoundDur: 2,
	})
	m.fbSub = proto.NewSub(fbSession, fb)
	return m.fbSub.Begin(now)
}

// finishFallback adopts the fallback output (lines 29–30).
func (m *Machine) finishFallback() {
	if m.fbSub == nil || !m.fbSub.Done() || m.fbAdopted {
		return
	}
	m.fbAdopted = true
	if m.decided {
		return
	}
	fv, _ := m.fbSub.Output()
	m.setDecision(fv, nil)
}

// fail records the first internal error.
func (m *Machine) fail(err error) {
	if m.err == nil {
		m.err = fmt.Errorf("strongba %v: %w", m.cfg.ID, err)
	}
}

// Component-signature accounting (proto.SigCarrier).

// SigCount implements proto.SigCarrier.
func (InputShare) SigCount() int { return 1 }

// SigCount implements proto.SigCarrier.
func (m Propose) SigCount() int { return m.Cert.Count() }

// SigCount implements proto.SigCarrier.
func (DecideShare) SigCount() int { return 1 }

// SigCount implements proto.SigCarrier.
func (m DecideMsg) SigCount() int { return m.Cert.Count() }

// SigCount implements proto.SigCarrier.
func (m Fallback) SigCount() int { return m.Proof.Count() }

// DecideBaseFor exposes the decide-share sign base for external invariant
// monitors and attack construction.
func DecideBaseFor(tag string, v types.Value) []byte { return decideBase(tag, v) }
