package strongba

import (
	"fmt"

	"adaptiveba/internal/proto"
	"adaptiveba/internal/wire"
)

// RegisterWire registers this package's payload codecs.
func RegisterWire(reg *wire.Registry) {
	reg.MustRegister(
		wire.Codec{
			Type: InputShare{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(InputShare)
				if !ok {
					return badType(p)
				}
				w.PutValue(m.V)
				w.PutSig(m.Share)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return InputShare{V: r.Value(), Share: r.Sig()}, r.Err()
			},
		},
		wire.Codec{
			Type: Propose{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(Propose)
				if !ok {
					return badType(p)
				}
				w.PutValue(m.V)
				w.PutCert(m.Cert)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return Propose{V: r.Value(), Cert: r.Cert()}, r.Err()
			},
		},
		wire.Codec{
			Type: DecideShare{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(DecideShare)
				if !ok {
					return badType(p)
				}
				w.PutValue(m.V)
				w.PutSig(m.Share)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return DecideShare{V: r.Value(), Share: r.Sig()}, r.Err()
			},
		},
		wire.Codec{
			Type: DecideMsg{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(DecideMsg)
				if !ok {
					return badType(p)
				}
				w.PutValue(m.V)
				w.PutCert(m.Cert)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return DecideMsg{V: r.Value(), Cert: r.Cert()}, r.Err()
			},
		},
		wire.Codec{
			Type: Fallback{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(Fallback)
				if !ok {
					return badType(p)
				}
				w.PutValue(m.V)
				w.PutCert(m.Proof)
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				return Fallback{V: r.Value(), Proof: r.Cert()}, r.Err()
			},
		},
	)
}

func badType(p proto.Payload) error {
	return fmt.Errorf("strongba: unexpected payload %T", p)
}
