package types

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitSetBasics(t *testing.T) {
	b := NewBitSet(70) // spans two words
	if b.Count() != 0 {
		t.Fatal("new set not empty")
	}
	for _, id := range []ProcessID{0, 1, 63, 64, 69} {
		if !b.Add(id) {
			t.Fatalf("Add(%v) rejected", id)
		}
	}
	if b.Count() != 5 {
		t.Fatalf("Count = %d, want 5", b.Count())
	}
	for _, id := range []ProcessID{0, 1, 63, 64, 69} {
		if !b.Has(id) {
			t.Errorf("missing %v", id)
		}
	}
	if b.Has(2) || b.Has(68) {
		t.Error("phantom members")
	}
	// Duplicate adds are idempotent.
	b.Add(0)
	if b.Count() != 5 {
		t.Error("duplicate add changed count")
	}
}

func TestBitSetBounds(t *testing.T) {
	b := NewBitSet(8)
	if b.Add(8) || b.Add(-1) || b.Add(NilProcess) {
		t.Error("out-of-range add accepted")
	}
	if b.Has(8) || b.Has(-1) {
		t.Error("out-of-range membership reported")
	}
	z := NewBitSet(0)
	if z.Count() != 0 || len(z.Members()) != 0 {
		t.Error("zero-capacity set misbehaves")
	}
	neg := NewBitSet(-3)
	if neg.Cap() != 0 {
		t.Error("negative capacity not clamped")
	}
}

func TestBitSetMembersSorted(t *testing.T) {
	b := NewBitSet(100)
	for _, id := range []ProcessID{42, 7, 99, 0, 13} {
		b.Add(id)
	}
	m := b.Members()
	want := []ProcessID{0, 7, 13, 42, 99}
	if len(m) != len(want) {
		t.Fatalf("got %v", m)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("members not sorted: got %v", m)
		}
	}
}

func TestBitSetCloneEqual(t *testing.T) {
	b := NewBitSet(10)
	b.Add(3)
	c := b.Clone()
	if !b.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Add(4)
	if b.Equal(c) {
		t.Fatal("mutating clone affected equality")
	}
	if b.Has(4) {
		t.Fatal("clone aliases original")
	}
	d := NewBitSet(11)
	d.Add(3)
	if b.Equal(d) {
		t.Error("different capacity considered equal")
	}
}

func TestBitSetIntersects(t *testing.T) {
	a, b := NewBitSet(130), NewBitSet(130)
	a.Add(128)
	b.Add(127)
	if a.Intersects(b) {
		t.Error("disjoint sets intersect")
	}
	b.Add(128)
	if !a.Intersects(b) {
		t.Error("shared member not detected")
	}
}

func TestBitSetRoundTripWords(t *testing.T) {
	b := NewBitSet(67)
	b.Add(0)
	b.Add(66)
	got, err := BitSetFromWords(67, b.Words())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(b) {
		t.Error("words round trip lost members")
	}
}

func TestBitSetFromWordsValidation(t *testing.T) {
	if _, err := BitSetFromWords(10, []uint64{1, 2}); err == nil {
		t.Error("wrong word count accepted")
	}
	if _, err := BitSetFromWords(-1, nil); err == nil {
		t.Error("negative capacity accepted")
	}
	// Stray bit beyond n must be rejected (keeps encodings canonical).
	if _, err := BitSetFromWords(10, []uint64{1 << 12}); err == nil {
		t.Error("stray high bit accepted")
	}
}

func TestBitSetString(t *testing.T) {
	b := NewBitSet(5)
	b.Add(1)
	b.Add(3)
	if got := b.String(); got != "{p1,p3}" {
		t.Errorf("String = %q", got)
	}
}

// Property: membership after a sequence of adds matches a reference map.
func TestBitSetQuickAgainstMap(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%150) + 1
		rng := rand.New(rand.NewSource(seed))
		b := NewBitSet(n)
		ref := map[ProcessID]bool{}
		for i := 0; i < 200; i++ {
			id := ProcessID(rng.Intn(n))
			b.Add(id)
			ref[id] = true
		}
		if b.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if b.Has(ProcessID(i)) != ref[ProcessID(i)] {
				return false
			}
		}
		rt, err := BitSetFromWords(n, b.Words())
		return err == nil && rt.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
