package types

import (
	"fmt"
	"math/bits"
	"strings"
)

// BitSet is a fixed-capacity set of ProcessIDs, used to record the signer
// sets of threshold certificates compactly and deterministically.
type BitSet struct {
	n     int
	words []uint64
}

// NewBitSet returns an empty set with capacity for IDs in [0, n).
func NewBitSet(n int) *BitSet {
	if n < 0 {
		n = 0
	}
	return &BitSet{n: n, words: make([]uint64, (n+63)/64)}
}

// BitSetFromWords reconstructs a set from its raw word representation,
// as produced by Words. It is used by the wire codec.
func BitSetFromWords(n int, words []uint64) (*BitSet, error) {
	want := (n + 63) / 64
	if n < 0 || len(words) != want {
		return nil, fmt.Errorf("bitset: got %d words for n=%d, want %d", len(words), n, want)
	}
	// Reject stray bits beyond n so equal sets have equal encodings.
	if rem := n % 64; rem != 0 && want > 0 {
		if words[want-1]&^(uint64(1)<<rem-1) != 0 {
			return nil, fmt.Errorf("bitset: bits set beyond capacity %d", n)
		}
	}
	b := &BitSet{n: n, words: make([]uint64, want)}
	copy(b.words, words)
	return b, nil
}

// Cap returns the capacity n.
func (b *BitSet) Cap() int { return b.n }

// Words exposes a copy of the raw representation for encoding.
func (b *BitSet) Words() []uint64 {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return w
}

// NumWords returns the number of raw 64-bit words.
func (b *BitSet) NumWords() int { return len(b.words) }

// Word returns raw word i without copying; pair with NumWords on
// allocation-sensitive encoding paths.
func (b *BitSet) Word(i int) uint64 { return b.words[i] }

// Add inserts id into the set. Out-of-range IDs are ignored and reported.
func (b *BitSet) Add(id ProcessID) bool {
	if id < 0 || int(id) >= b.n {
		return false
	}
	b.words[id/64] |= 1 << (uint(id) % 64)
	return true
}

// Has reports membership.
func (b *BitSet) Has(id ProcessID) bool {
	if id < 0 || int(id) >= b.n {
		return false
	}
	return b.words[id/64]&(1<<(uint(id)%64)) != 0
}

// Remove deletes id from the set. Out-of-range IDs are ignored.
func (b *BitSet) Remove(id ProcessID) {
	if id < 0 || int(id) >= b.n {
		return
	}
	b.words[id/64] &^= 1 << (uint(id) % 64)
}

// Reset empties the set in place, keeping its capacity.
func (b *BitSet) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of members.
func (b *BitSet) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Union merges o's members into b in place. Members of o beyond b's
// capacity are ignored (b stays canonical: no bits at or above Cap).
func (b *BitSet) Union(o *BitSet) {
	if o == nil {
		return
	}
	m := len(b.words)
	if len(o.words) < m {
		m = len(o.words)
	}
	for i := 0; i < m; i++ {
		b.words[i] |= o.words[i]
	}
	// o may have capacity beyond b.n but canonical sets carry no stray
	// bits; when o.n > b.n the shared last word can still hold o-members
	// >= b.n, so mask b's last word back to its own capacity.
	if rem := b.n % 64; rem != 0 && m == len(b.words) && m > 0 {
		b.words[m-1] &= uint64(1)<<rem - 1
	}
}

// ContainsAll reports whether every member of o is also in b (o ⊆ b).
func (b *BitSet) ContainsAll(o *BitSet) bool {
	if o == nil {
		return true
	}
	for i, w := range o.words {
		if i < len(b.words) {
			if w&^b.words[i] != 0 {
				return false
			}
		} else if w != 0 {
			return false
		}
	}
	return true
}

// PopcountRange counts the members in the half-open ID range [lo, hi).
// Out-of-range bounds are clamped to [0, Cap].
func (b *BitSet) PopcountRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	if lo >= hi {
		return 0
	}
	loW, hiW := lo/64, (hi-1)/64
	loMask := ^uint64(0) << (uint(lo) % 64)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)%64)
	if loW == hiW {
		return bits.OnesCount64(b.words[loW] & loMask & hiMask)
	}
	c := bits.OnesCount64(b.words[loW] & loMask)
	for i := loW + 1; i < hiW; i++ {
		c += bits.OnesCount64(b.words[i])
	}
	return c + bits.OnesCount64(b.words[hiW]&hiMask)
}

// NextSet returns the smallest member >= from, or (NilProcess, false) if
// there is none. Iterate a set allocation-free with
//
//	for id, ok := b.NextSet(0); ok; id, ok = b.NextSet(int(id) + 1) { ... }
func (b *BitSet) NextSet(from int) (ProcessID, bool) {
	if from < 0 {
		from = 0
	}
	if from >= b.n {
		return NilProcess, false
	}
	w := from / 64
	cur := b.words[w] & (^uint64(0) << (uint(from) % 64))
	for {
		if cur != 0 {
			id := ProcessID(w*64 + bits.TrailingZeros64(cur))
			if int(id) >= b.n {
				return NilProcess, false
			}
			return id, true
		}
		w++
		if w >= len(b.words) {
			return NilProcess, false
		}
		cur = b.words[w]
	}
}

// Members lists the member IDs in ascending order.
func (b *BitSet) Members() []ProcessID {
	out := make([]ProcessID, 0, b.Count())
	for id, ok := b.NextSet(0); ok; id, ok = b.NextSet(int(id) + 1) {
		out = append(out, id)
	}
	return out
}

// Clone returns an independent copy.
func (b *BitSet) Clone() *BitSet {
	c := NewBitSet(b.n)
	copy(c.words, b.words)
	return c
}

// Equal reports whether two sets have identical capacity and members.
func (b *BitSet) Equal(o *BitSet) bool {
	if b == nil || o == nil {
		return b == o
	}
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether the two sets share at least one member.
func (b *BitSet) Intersects(o *BitSet) bool {
	m := len(b.words)
	if len(o.words) < m {
		m = len(o.words)
	}
	for i := 0; i < m; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// String renders the set as {p0,p3,...}.
func (b *BitSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, id := range b.Members() {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(id.String())
	}
	sb.WriteByte('}')
	return sb.String()
}
