package types

import (
	"math/rand"
	"testing"
)

// TestBitSetUnion covers in-place union including mismatched capacities
// spanning multiple words.
func TestBitSetUnion(t *testing.T) {
	a := NewBitSet(130)
	b := NewBitSet(130)
	a.Add(0)
	a.Add(65)
	b.Add(64)
	b.Add(129)
	a.Union(b)
	for _, id := range []ProcessID{0, 64, 65, 129} {
		if !a.Has(id) {
			t.Errorf("union missing %v", id)
		}
	}
	if a.Count() != 4 {
		t.Errorf("union count = %d, want 4", a.Count())
	}

	// A larger source must not smuggle bits beyond the target capacity:
	// the shared last word of a 70-cap target can hold source members
	// 70..127, which must be masked away.
	small := NewBitSet(70)
	big := NewBitSet(128)
	big.Add(69)
	big.Add(70)
	big.Add(127)
	small.Union(big)
	if !small.Has(69) || small.Count() != 1 {
		t.Errorf("truncating union = %v, want {p69}", small)
	}
	// The result must stay canonical so wire round-trips keep working.
	if _, err := BitSetFromWords(small.Cap(), small.Words()); err != nil {
		t.Errorf("union left non-canonical words: %v", err)
	}
	small.Union(nil) // no-op
	if small.Count() != 1 {
		t.Error("nil union changed the set")
	}
}

func TestBitSetContainsAll(t *testing.T) {
	a := NewBitSet(200)
	b := NewBitSet(200)
	for _, id := range []ProcessID{1, 64, 128, 199} {
		a.Add(id)
	}
	if !a.ContainsAll(b) {
		t.Error("empty set not contained")
	}
	b.Add(64)
	b.Add(199)
	if !a.ContainsAll(b) {
		t.Error("subset rejected")
	}
	b.Add(2)
	if a.ContainsAll(b) {
		t.Error("non-subset accepted")
	}
	if !a.ContainsAll(nil) {
		t.Error("nil not contained")
	}
	// A wider set with a member beyond a's capacity is not contained.
	wide := NewBitSet(512)
	wide.Add(300)
	if a.ContainsAll(wide) {
		t.Error("member beyond capacity accepted")
	}
}

func TestBitSetPopcountRange(t *testing.T) {
	b := NewBitSet(300)
	members := []ProcessID{0, 1, 63, 64, 65, 127, 128, 255, 299}
	for _, id := range members {
		b.Add(id)
	}
	cases := []struct{ lo, hi, want int }{
		{0, 300, len(members)},
		{0, 0, 0},
		{5, 5, 0},
		{0, 1, 1},
		{1, 64, 2},
		{63, 65, 2},
		{64, 128, 3},
		{128, 256, 2},
		{256, 300, 1},
		{-10, 1000, len(members)}, // clamped
		{299, 300, 1},
		{300, 400, 0},
	}
	for _, c := range cases {
		if got := b.PopcountRange(c.lo, c.hi); got != c.want {
			t.Errorf("PopcountRange(%d, %d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestBitSetNextSet(t *testing.T) {
	b := NewBitSet(257)
	for _, id := range []ProcessID{3, 64, 191, 256} {
		b.Add(id)
	}
	var got []ProcessID
	for id, ok := b.NextSet(0); ok; id, ok = b.NextSet(int(id) + 1) {
		got = append(got, id)
	}
	want := []ProcessID{3, 64, 191, 256}
	if len(got) != len(want) {
		t.Fatalf("NextSet walk = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextSet walk = %v, want %v", got, want)
		}
	}
	if id, ok := b.NextSet(257); ok || id != NilProcess {
		t.Error("NextSet past capacity returned a member")
	}
	if id, ok := b.NextSet(-5); !ok || id != 3 {
		t.Errorf("NextSet(-5) = %v, %v", id, ok)
	}
	if _, ok := NewBitSet(0).NextSet(0); ok {
		t.Error("empty-capacity set returned a member")
	}
}

// FuzzBitSetOps drives the new dense-state operations against a
// map-based model over capacities that cross many word boundaries.
func FuzzBitSetOps(f *testing.F) {
	f.Add(int64(1), 70, uint8(16))
	f.Add(int64(2), 257, uint8(64))
	f.Add(int64(3), 64, uint8(3))
	f.Add(int64(4), 1, uint8(1))
	f.Add(int64(5), 4096, uint8(128))
	f.Fuzz(func(t *testing.T, seed int64, n int, ops uint8) {
		if n < 0 || n > 1<<14 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		b := NewBitSet(n)
		model := make(map[ProcessID]bool)
		for i := 0; i < int(ops); i++ {
			switch rng.Intn(4) {
			case 0: // add
				id := ProcessID(rng.Intn(n + 1)) // may be == n (out of range)
				b.Add(id)
				if int(id) < n {
					model[id] = true
				}
			case 1: // remove
				id := ProcessID(rng.Intn(n + 1))
				b.Remove(id)
				delete(model, id)
			case 2: // union with a random set (possibly different capacity)
				on := n + rng.Intn(65) - 32
				if on < 0 {
					on = 0
				}
				o := NewBitSet(on)
				for j := 0; j < rng.Intn(8); j++ {
					if on == 0 {
						break
					}
					id := ProcessID(rng.Intn(on))
					o.Add(id)
					if int(id) < n {
						model[id] = true
					}
				}
				b.Union(o)
			case 3: // reset occasionally
				if rng.Intn(8) == 0 {
					b.Reset()
					model = make(map[ProcessID]bool)
				}
			}
		}

		// Membership, count, and canonical encoding match the model.
		if b.Count() != len(model) {
			t.Fatalf("Count = %d, model %d", b.Count(), len(model))
		}
		if _, err := BitSetFromWords(n, b.Words()); err != nil {
			t.Fatalf("non-canonical words after ops: %v", err)
		}
		for id := range model {
			if !b.Has(id) {
				t.Fatalf("missing %v", id)
			}
		}

		// NextSet walks exactly the model's members in ascending order.
		walked := 0
		prev := ProcessID(-1)
		for id, ok := b.NextSet(0); ok; id, ok = b.NextSet(int(id) + 1) {
			if id <= prev {
				t.Fatalf("NextSet not ascending: %v after %v", id, prev)
			}
			if !model[id] {
				t.Fatalf("NextSet yielded non-member %v", id)
			}
			prev = id
			walked++
		}
		if walked != len(model) {
			t.Fatalf("NextSet walked %d members, model has %d", walked, len(model))
		}

		// PopcountRange over random windows matches a model count.
		for i := 0; i < 8; i++ {
			lo, hi := rng.Intn(n+2)-1, rng.Intn(n+2)-1
			want := 0
			for id := range model {
				if int(id) >= lo && int(id) < hi {
					want++
				}
			}
			if got := b.PopcountRange(lo, hi); got != want {
				t.Fatalf("PopcountRange(%d, %d) = %d, model %d", lo, hi, got, want)
			}
		}

		// ContainsAll agrees with the model for a random subset and a
		// perturbed non-subset.
		sub := NewBitSet(n)
		for id := range model {
			if rng.Intn(2) == 0 {
				sub.Add(id)
			}
		}
		if !b.ContainsAll(sub) {
			t.Fatal("subset rejected")
		}
		if n > 0 {
			extra := ProcessID(rng.Intn(n))
			if !model[extra] {
				sub.Add(extra)
				if b.ContainsAll(sub) {
					t.Fatalf("non-subset accepted (extra %v)", extra)
				}
			}
		}
	})
}
