// Package types holds the primitive vocabulary shared by every layer of the
// library: process identities, protocol values, time units, and the run
// parameters (n, t) with the quorum arithmetic the paper's protocols rely
// on.
package types

import (
	"encoding/hex"
	"errors"
	"fmt"
)

// ProcessID identifies one of the n processes in the static set Π.
// IDs are dense integers in [0, n).
type ProcessID int

// NilProcess is the zero-ish sentinel for "no process". Valid IDs are >= 0.
const NilProcess ProcessID = -1

// String renders the ID as pN, e.g. p3.
func (p ProcessID) String() string {
	if p == NilProcess {
		return "p?"
	}
	return fmt.Sprintf("p%d", int(p))
}

// Tick is the simulator's unit of time. One tick equals the known message
// delay bound δ: a message sent at tick T is delivered no later than tick
// T+1. Protocol rounds span one or more ticks (the fallback runs with
// rounds of 2δ, i.e. two ticks).
type Tick int64

// Round numbers a protocol's synchronous rounds, starting at 1 to match
// the paper's pseudocode.
type Round int

// Errors reported by parameter validation.
var (
	ErrBadN        = errors.New("n must be at least 3")
	ErrBadT        = errors.New("t must satisfy 0 <= t and n >= 2t+1")
	ErrBadProcess  = errors.New("process id out of range")
	ErrTooManyCorr = errors.New("more corruptions than t")
)

// Params captures a run's resilience parameters. The paper fixes
// n = 2t + 1; NewParams derives the maximal such t, while Custom allows
// any n >= 2t+1 (used by ablation experiments).
type Params struct {
	N int // total number of processes
	T int // maximum number of Byzantine processes tolerated
}

// NewParams returns Params with the optimal resilience t = floor((n-1)/2),
// i.e. n = 2t+1 for odd n.
func NewParams(n int) (Params, error) {
	if n < 3 {
		return Params{}, ErrBadN
	}
	return Params{N: n, T: (n - 1) / 2}, nil
}

// Custom returns Params with an explicit t, validating n >= 2t+1.
func Custom(n, t int) (Params, error) {
	if n < 3 {
		return Params{}, ErrBadN
	}
	if t < 0 || n < 2*t+1 {
		return Params{}, ErrBadT
	}
	return Params{N: n, T: t}, nil
}

// Valid reports whether the parameters satisfy the model's constraints.
func (p Params) Valid() bool {
	return p.N >= 3 && p.T >= 0 && p.N >= 2*p.T+1
}

// Quorum is the paper's key threshold ⌈(n+t+1)/2⌉ (Section 6): any two
// certificates with this many unique signers intersect in at least one
// correct process even at resilience n = 2t+1.
func (p Params) Quorum() int {
	return (p.N + p.T + 2) / 2 // ceil((n+t+1)/2)
}

// SmallQuorum is t+1: enough to guarantee at least one correct signer.
func (p Params) SmallQuorum() int {
	return p.T + 1
}

// FallbackThreshold is (n-t-1)/2. Lemma 6: if f is strictly below this,
// correct processes never run the fallback algorithm.
func (p Params) FallbackThreshold() int {
	return (p.N - p.T - 1) / 2
}

// CheckProcess validates an ID against the parameter set.
func (p Params) CheckProcess(id ProcessID) error {
	if id < 0 || int(id) >= p.N {
		return fmt.Errorf("%w: %v with n=%d", ErrBadProcess, id, p.N)
	}
	return nil
}

// Leader returns the rotating leader of phase j (1-indexed), matching the
// pseudocode's "leader <- p_{j mod n}".
func (p Params) Leader(phase int) ProcessID {
	m := phase % p.N
	if m < 0 {
		m += p.N
	}
	return ProcessID(m)
}

// AllProcesses returns the dense ID list [0, n).
func (p Params) AllProcesses() []ProcessID {
	ids := make([]ProcessID, p.N)
	for i := range ids {
		ids[i] = ProcessID(i)
	}
	return ids
}

// Value is a protocol value from the application domain. A nil Value is the
// distinguished ⊥ (bottom). Values are treated as immutable: callers must
// Clone before mutating shared bytes.
type Value []byte

// Bottom is the ⊥ value.
var Bottom Value

// IsBottom reports whether v is ⊥.
func (v Value) IsBottom() bool { return len(v) == 0 }

// Equal compares two values byte-wise; two ⊥ values are equal.
func (v Value) Equal(o Value) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the value.
func (v Value) Clone() Value {
	if v == nil {
		return nil
	}
	c := make(Value, len(v))
	copy(c, v)
	return c
}

// String renders the value for logs: ⊥, a short hex prefix, or printable
// ASCII verbatim.
func (v Value) String() string {
	if v.IsBottom() {
		return "⊥"
	}
	printable := true
	for _, b := range v {
		if b < 0x20 || b > 0x7e {
			printable = false
			break
		}
	}
	if printable && len(v) <= 24 {
		return string(v)
	}
	h := hex.EncodeToString(v)
	if len(h) > 16 {
		h = h[:16] + "…"
	}
	return "0x" + h
}

// Binary values for the strong BA protocol (Algorithm 5).
var (
	Zero = Value{0}
	One  = Value{1}
)

// BinaryValue converts a bool to the canonical binary Value.
func BinaryValue(b bool) Value {
	if b {
		return One
	}
	return Zero
}

// IsBinary reports whether v is one of the two canonical binary values.
func (v Value) IsBinary() bool {
	return v.Equal(Zero) || v.Equal(One)
}
