package types

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewParams(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		wantT   int
		wantErr error
	}{
		{name: "minimum", n: 3, wantT: 1},
		{name: "odd", n: 7, wantT: 3},
		{name: "even rounds down", n: 8, wantT: 3},
		{name: "large", n: 201, wantT: 100},
		{name: "too small", n: 2, wantErr: ErrBadN},
		{name: "zero", n: 0, wantErr: ErrBadN},
		{name: "negative", n: -5, wantErr: ErrBadN},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := NewParams(tt.n)
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("NewParams(%d) err = %v, want %v", tt.n, err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if p.T != tt.wantT {
				t.Errorf("NewParams(%d).T = %d, want %d", tt.n, p.T, tt.wantT)
			}
			if !p.Valid() {
				t.Errorf("NewParams(%d) not Valid", tt.n)
			}
		})
	}
}

func TestCustomParams(t *testing.T) {
	tests := []struct {
		n, t    int
		wantErr error
	}{
		{n: 7, t: 3},
		{n: 7, t: 2},
		{n: 7, t: 0},
		{n: 10, t: 4},
		{n: 7, t: 4, wantErr: ErrBadT},
		{n: 7, t: -1, wantErr: ErrBadT},
		{n: 1, t: 0, wantErr: ErrBadN},
	}
	for _, tt := range tests {
		_, err := Custom(tt.n, tt.t)
		if !errors.Is(err, tt.wantErr) {
			t.Errorf("Custom(%d,%d) err = %v, want %v", tt.n, tt.t, err, tt.wantErr)
		}
	}
}

// TestQuorumIntersection verifies the paper's key observation (Section 6):
// with quorum q = ceil((n+t+1)/2), any two q-sized subsets of [0,n)
// intersect in at least t+1 processes, hence in at least one correct
// process. This is the property the whole weak BA safety argument rests on.
func TestQuorumIntersection(t *testing.T) {
	for n := 3; n <= 203; n += 2 {
		p, err := NewParams(n)
		if err != nil {
			t.Fatal(err)
		}
		q := p.Quorum()
		// Worst-case overlap of two q-subsets of an n-set is 2q - n.
		overlap := 2*q - n
		if overlap < p.T+1 {
			t.Errorf("n=%d t=%d quorum=%d: worst-case overlap %d < t+1=%d",
				n, p.T, q, overlap, p.T+1)
		}
		if q > n {
			t.Errorf("n=%d: quorum %d exceeds n", n, q)
		}
	}
}

// TestSmallQuorumNoIntersection documents why the naive t+1 quorum is NOT
// safe at n=2t+1: two (t+1)-quorums may intersect only in a single,
// possibly Byzantine, process.
func TestSmallQuorumNoIntersection(t *testing.T) {
	p, _ := NewParams(11) // t=5
	q := p.SmallQuorum()
	overlap := 2*q - p.N
	if overlap > 1 {
		t.Fatalf("expected worst-case overlap of two (t+1)-quorums to be <=1, got %d", overlap)
	}
}

func TestFallbackThreshold(t *testing.T) {
	// Lemma 6's bound: f < (n-t-1)/2 implies no fallback. Check the
	// threshold matches the closed form for n = 2t+1: (n-t-1)/2 = t/2.
	for n := 3; n <= 101; n += 2 {
		p, _ := NewParams(n)
		if got, want := p.FallbackThreshold(), p.T/2; got != want {
			t.Errorf("n=%d: FallbackThreshold=%d want %d", n, got, want)
		}
	}
}

func TestLeaderRotation(t *testing.T) {
	p, _ := NewParams(5)
	seen := map[ProcessID]int{}
	for j := 1; j <= p.N; j++ {
		l := p.Leader(j)
		if err := p.CheckProcess(l); err != nil {
			t.Fatalf("phase %d: %v", j, err)
		}
		seen[l]++
	}
	if len(seen) != p.N {
		t.Errorf("n phases should visit all n leaders, saw %d", len(seen))
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("leader %v chosen %d times in n phases", id, c)
		}
	}
}

func TestCheckProcess(t *testing.T) {
	p, _ := NewParams(5)
	if err := p.CheckProcess(0); err != nil {
		t.Error(err)
	}
	if err := p.CheckProcess(4); err != nil {
		t.Error(err)
	}
	if err := p.CheckProcess(5); !errors.Is(err, ErrBadProcess) {
		t.Errorf("want ErrBadProcess, got %v", err)
	}
	if err := p.CheckProcess(NilProcess); !errors.Is(err, ErrBadProcess) {
		t.Errorf("want ErrBadProcess, got %v", err)
	}
}

func TestValueBasics(t *testing.T) {
	if !Bottom.IsBottom() {
		t.Error("Bottom must be bottom")
	}
	v := Value("hello")
	if v.IsBottom() {
		t.Error("non-empty value reported bottom")
	}
	if !v.Equal(Value("hello")) || v.Equal(Value("world")) {
		t.Error("Equal misbehaves")
	}
	c := v.Clone()
	c[0] = 'H'
	if v[0] != 'h' {
		t.Error("Clone aliases the original")
	}
	if Bottom.String() != "⊥" {
		t.Errorf("Bottom.String() = %q", Bottom.String())
	}
	if Value("abc").String() != "abc" {
		t.Errorf("printable string mangled: %q", Value("abc").String())
	}
	if got := (Value{0xff, 0x01}).String(); got != "0xff01" {
		t.Errorf("hex rendering: %q", got)
	}
}

func TestBinaryValues(t *testing.T) {
	if !Zero.IsBinary() || !One.IsBinary() {
		t.Error("canonical binaries not binary")
	}
	if Value("x").IsBinary() || Bottom.IsBinary() {
		t.Error("non-binary classified binary")
	}
	if !BinaryValue(true).Equal(One) || !BinaryValue(false).Equal(Zero) {
		t.Error("BinaryValue mapping wrong")
	}
}

func TestValueEqualQuick(t *testing.T) {
	eqRefl := func(b []byte) bool {
		v := Value(b)
		return v.Equal(v.Clone())
	}
	if err := quick.Check(eqRefl, nil); err != nil {
		t.Error(err)
	}
}

func TestProcessIDString(t *testing.T) {
	if ProcessID(3).String() != "p3" {
		t.Errorf("got %q", ProcessID(3).String())
	}
	if NilProcess.String() != "p?" {
		t.Errorf("got %q", NilProcess.String())
	}
}

// TestQuorumEdges pins the three thresholds at the boundary parameter
// sets: the smallest legal system (n=3, t=1), optimal resilience
// n = 2t+1 at several sizes, and Custom parameter sets with n > 2t+1
// slack (Section 8's improved resilience).
func TestQuorumEdges(t *testing.T) {
	tests := []struct {
		name                  string
		n, t                  int
		custom                bool
		quorum, small, fbackT int
	}{
		// n=3, t=1: quorum is all of Π, small quorum is a majority, and
		// the fallback threshold is 0 — a single failure forces fallback.
		{name: "minimum n=3", n: 3, t: 1, quorum: 3, small: 2, fbackT: 0},
		{name: "n=5 t=2", n: 5, t: 2, quorum: 4, small: 3, fbackT: 1},
		{name: "n=7 t=3", n: 7, t: 3, quorum: 6, small: 4, fbackT: 1},
		{name: "n=41 t=20", n: 41, t: 20, quorum: 31, small: 21, fbackT: 10},
		// Even n: t rounds down, quorum formula still ceils correctly.
		{name: "even n=8 t=3", n: 8, t: 3, quorum: 6, small: 4, fbackT: 2},
		// Custom slack: n > 2t+1 shrinks the quorum fraction and raises
		// the fallback threshold — more failures absorbed adaptively.
		{name: "custom n=11 t=2", n: 11, t: 2, custom: true, quorum: 7, small: 3, fbackT: 4},
		{name: "custom n=16 t=5", n: 16, t: 5, custom: true, quorum: 11, small: 6, fbackT: 5},
		{name: "custom n=21 t=5", n: 21, t: 5, custom: true, quorum: 14, small: 6, fbackT: 7},
		// Custom degenerate t=0: quorum collapses to a simple majority.
		{name: "custom n=4 t=0", n: 4, t: 0, custom: true, quorum: 3, small: 1, fbackT: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var p Params
			var err error
			if tt.custom {
				p, err = Custom(tt.n, tt.t)
			} else {
				p, err = NewParams(tt.n)
			}
			if err != nil {
				t.Fatal(err)
			}
			if p.T != tt.t {
				t.Fatalf("T = %d, want %d", p.T, tt.t)
			}
			if got := p.Quorum(); got != tt.quorum {
				t.Errorf("Quorum() = %d, want %d (⌈(n+t+1)/2⌉)", got, tt.quorum)
			}
			if got := p.SmallQuorum(); got != tt.small {
				t.Errorf("SmallQuorum() = %d, want %d (t+1)", got, tt.small)
			}
			if got := p.FallbackThreshold(); got != tt.fbackT {
				t.Errorf("FallbackThreshold() = %d, want %d ((n-t-1)/2)", got, tt.fbackT)
			}
			// The safety invariant behind the weak BA argument: any two
			// paper quorums overlap in at least t+1 processes, hence in a
			// correct one. (The quorum may exceed n-t: when Byzantine
			// processes withhold signatures the certificate simply never
			// forms and the run takes the fallback path — safety over
			// liveness by construction.)
			if over := 2*p.Quorum() - p.N; over < p.T+1 {
				t.Errorf("two quorums overlap in %d < t+1 = %d processes", over, p.T+1)
			}
			if p.Quorum() < p.SmallQuorum() {
				t.Errorf("paper quorum %d below t+1 = %d", p.Quorum(), p.SmallQuorum())
			}
		})
	}
}

// TestQuorumVsSmallQuorumBoundary sweeps Custom parameter space and
// checks where ⌈(n+t+1)/2⌉ coincides with t+1: exactly the n = 2t+1
// systems and nowhere else (for n > 2t+1 the paper quorum is strictly
// larger than t+1 whenever it must be, i.e. unless t = n-1 slackless
// cases which Custom rejects).
func TestQuorumVsSmallQuorumBoundary(t *testing.T) {
	for n := 3; n <= 60; n++ {
		for tt := 0; 2*tt+1 <= n; tt++ {
			p, err := Custom(n, tt)
			if err != nil {
				t.Fatalf("Custom(%d,%d): %v", n, tt, err)
			}
			q, sq := p.Quorum(), p.SmallQuorum()
			if n == 2*tt+1 {
				// Optimal resilience: quorum = ceil((3t+2)/2) = n-t/2... must
				// still intersect; equality with t+1 only in the n=3 corner.
				if q == sq && n != 3 {
					t.Errorf("n=%d t=%d: quorum collapsed to t+1", n, tt)
				}
				continue
			}
			// With slack the quorums stay ordered, intersecting, and —
			// unlike at optimal resilience — attainable by the correct
			// processes alone once n >= 3t+2 (certificates always form).
			if q < sq {
				t.Errorf("n=%d t=%d: quorum %d < small quorum %d", n, tt, q, sq)
			}
			if over := 2*q - n; over < tt+1 {
				t.Errorf("n=%d t=%d: two quorums overlap in %d < t+1", n, tt, over)
			}
			if n >= 3*tt+2 && q > n-tt {
				t.Errorf("n=%d t=%d: quorum %d unreachable by the %d correct processes despite n >= 3t+2", n, tt, q, n-tt)
			}
		}
	}
}
