package types

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewParams(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		wantT   int
		wantErr error
	}{
		{name: "minimum", n: 3, wantT: 1},
		{name: "odd", n: 7, wantT: 3},
		{name: "even rounds down", n: 8, wantT: 3},
		{name: "large", n: 201, wantT: 100},
		{name: "too small", n: 2, wantErr: ErrBadN},
		{name: "zero", n: 0, wantErr: ErrBadN},
		{name: "negative", n: -5, wantErr: ErrBadN},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := NewParams(tt.n)
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("NewParams(%d) err = %v, want %v", tt.n, err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if p.T != tt.wantT {
				t.Errorf("NewParams(%d).T = %d, want %d", tt.n, p.T, tt.wantT)
			}
			if !p.Valid() {
				t.Errorf("NewParams(%d) not Valid", tt.n)
			}
		})
	}
}

func TestCustomParams(t *testing.T) {
	tests := []struct {
		n, t    int
		wantErr error
	}{
		{n: 7, t: 3},
		{n: 7, t: 2},
		{n: 7, t: 0},
		{n: 10, t: 4},
		{n: 7, t: 4, wantErr: ErrBadT},
		{n: 7, t: -1, wantErr: ErrBadT},
		{n: 1, t: 0, wantErr: ErrBadN},
	}
	for _, tt := range tests {
		_, err := Custom(tt.n, tt.t)
		if !errors.Is(err, tt.wantErr) {
			t.Errorf("Custom(%d,%d) err = %v, want %v", tt.n, tt.t, err, tt.wantErr)
		}
	}
}

// TestQuorumIntersection verifies the paper's key observation (Section 6):
// with quorum q = ceil((n+t+1)/2), any two q-sized subsets of [0,n)
// intersect in at least t+1 processes, hence in at least one correct
// process. This is the property the whole weak BA safety argument rests on.
func TestQuorumIntersection(t *testing.T) {
	for n := 3; n <= 203; n += 2 {
		p, err := NewParams(n)
		if err != nil {
			t.Fatal(err)
		}
		q := p.Quorum()
		// Worst-case overlap of two q-subsets of an n-set is 2q - n.
		overlap := 2*q - n
		if overlap < p.T+1 {
			t.Errorf("n=%d t=%d quorum=%d: worst-case overlap %d < t+1=%d",
				n, p.T, q, overlap, p.T+1)
		}
		if q > n {
			t.Errorf("n=%d: quorum %d exceeds n", n, q)
		}
	}
}

// TestSmallQuorumNoIntersection documents why the naive t+1 quorum is NOT
// safe at n=2t+1: two (t+1)-quorums may intersect only in a single,
// possibly Byzantine, process.
func TestSmallQuorumNoIntersection(t *testing.T) {
	p, _ := NewParams(11) // t=5
	q := p.SmallQuorum()
	overlap := 2*q - p.N
	if overlap > 1 {
		t.Fatalf("expected worst-case overlap of two (t+1)-quorums to be <=1, got %d", overlap)
	}
}

func TestFallbackThreshold(t *testing.T) {
	// Lemma 6's bound: f < (n-t-1)/2 implies no fallback. Check the
	// threshold matches the closed form for n = 2t+1: (n-t-1)/2 = t/2.
	for n := 3; n <= 101; n += 2 {
		p, _ := NewParams(n)
		if got, want := p.FallbackThreshold(), p.T/2; got != want {
			t.Errorf("n=%d: FallbackThreshold=%d want %d", n, got, want)
		}
	}
}

func TestLeaderRotation(t *testing.T) {
	p, _ := NewParams(5)
	seen := map[ProcessID]int{}
	for j := 1; j <= p.N; j++ {
		l := p.Leader(j)
		if err := p.CheckProcess(l); err != nil {
			t.Fatalf("phase %d: %v", j, err)
		}
		seen[l]++
	}
	if len(seen) != p.N {
		t.Errorf("n phases should visit all n leaders, saw %d", len(seen))
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("leader %v chosen %d times in n phases", id, c)
		}
	}
}

func TestCheckProcess(t *testing.T) {
	p, _ := NewParams(5)
	if err := p.CheckProcess(0); err != nil {
		t.Error(err)
	}
	if err := p.CheckProcess(4); err != nil {
		t.Error(err)
	}
	if err := p.CheckProcess(5); !errors.Is(err, ErrBadProcess) {
		t.Errorf("want ErrBadProcess, got %v", err)
	}
	if err := p.CheckProcess(NilProcess); !errors.Is(err, ErrBadProcess) {
		t.Errorf("want ErrBadProcess, got %v", err)
	}
}

func TestValueBasics(t *testing.T) {
	if !Bottom.IsBottom() {
		t.Error("Bottom must be bottom")
	}
	v := Value("hello")
	if v.IsBottom() {
		t.Error("non-empty value reported bottom")
	}
	if !v.Equal(Value("hello")) || v.Equal(Value("world")) {
		t.Error("Equal misbehaves")
	}
	c := v.Clone()
	c[0] = 'H'
	if v[0] != 'h' {
		t.Error("Clone aliases the original")
	}
	if Bottom.String() != "⊥" {
		t.Errorf("Bottom.String() = %q", Bottom.String())
	}
	if Value("abc").String() != "abc" {
		t.Errorf("printable string mangled: %q", Value("abc").String())
	}
	if got := (Value{0xff, 0x01}).String(); got != "0xff01" {
		t.Errorf("hex rendering: %q", got)
	}
}

func TestBinaryValues(t *testing.T) {
	if !Zero.IsBinary() || !One.IsBinary() {
		t.Error("canonical binaries not binary")
	}
	if Value("x").IsBinary() || Bottom.IsBinary() {
		t.Error("non-binary classified binary")
	}
	if !BinaryValue(true).Equal(One) || !BinaryValue(false).Equal(Zero) {
		t.Error("BinaryValue mapping wrong")
	}
}

func TestValueEqualQuick(t *testing.T) {
	eqRefl := func(b []byte) bool {
		v := Value(b)
		return v.Equal(v.Clone())
	}
	if err := quick.Check(eqRefl, nil); err != nil {
		t.Error(err)
	}
}

func TestProcessIDString(t *testing.T) {
	if ProcessID(3).String() != "p3" {
		t.Errorf("got %q", ProcessID(3).String())
	}
	if NilProcess.String() != "p?" {
		t.Errorf("got %q", NilProcess.String())
	}
}
