// Package fallback provides A_fallback: a deterministic synchronous strong
// Byzantine Agreement with resilience n = 2t+1, used by the paper's weak
// BA (Algorithm 3) and failure-free strong BA (Algorithm 5) whenever the
// cheap adaptive path cannot make progress.
//
// The paper plugs in Momose–Ren's O(n²)-word protocol (DISC 2021). That
// protocol's text is not available offline, so this package substitutes
// the classic construction "strong BA from n parallel Byzantine
// Broadcasts": every process Dolev–Strong-broadcasts its input; after all
// instances resolve, everyone holds the same vector of n outputs and
// decides its plurality value. Correctness is identical (agreement,
// termination, strong unanimity at n = 2t+1 because the t+1 correct
// instances outvote the rest); the communication cost is O(n²) per
// instance in benign runs, i.e. O(n³) for the whole fallback versus
// Momose–Ren's O(n²). DESIGN.md §2 and EXPERIMENTS.md discuss how this
// substitution affects (only) the constant regime of the quadratic
// fallback rows.
//
// The machine runs with configurable round duration: the paper invokes
// A_fallback with δ' = 2δ (two ticks per round) so that correct processes
// entering up to δ apart still overlap in every round (Lemma 18).
package fallback

import (
	"bytes"
	"fmt"
	"sort"

	"adaptiveba/internal/baseline/dolevstrong"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

// Config parameterizes the fallback BA for one process.
type Config struct {
	Params types.Params
	Crypto *proto.Crypto
	ID     types.ProcessID
	// Input is this process's proposal.
	Input types.Value
	// Tag domain-separates this invocation from every other protocol layer
	// (signatures from one invocation must not validate in another).
	Tag string
	// RoundDur is ticks per round; the callers in this repository use 2
	// (δ' = 2δ). Defaults to 1.
	RoundDur int
}

// Machine implements strong BA via n parallel Dolev–Strong instances.
// The instances live under a proto.Mux, which demultiplexes the shared
// inbox in one O(inbox) pass; routing each instance separately with
// Sub.Route would rescan the inbox n times per tick — the dominant cost
// of the quadratic fallback regime at large n.
type Machine struct {
	cfg       Config
	mux       *proto.Mux
	instances []*proto.Sub
	decided   bool
	decision  types.Value
}

var _ proto.Machine = (*Machine)(nil)

// NewMachine builds the fallback machine.
func NewMachine(cfg Config) *Machine {
	if cfg.RoundDur < 1 {
		cfg.RoundDur = 1
	}
	return &Machine{cfg: cfg}
}

// Duration returns the ticks from Begin until the machine decides.
func (m *Machine) Duration() types.Tick {
	return types.Tick((m.cfg.Params.T + 1) * m.cfg.RoundDur)
}

// instanceName names the per-sender Dolev–Strong session.
func instanceName(sender types.ProcessID) string {
	return fmt.Sprintf("i%d", int(sender))
}

// Begin implements proto.Machine: all n broadcast instances start
// simultaneously; this process is the designated sender of its own.
func (m *Machine) Begin(now types.Tick) []proto.Outgoing {
	m.mux = proto.NewMux()
	m.instances = make([]*proto.Sub, m.cfg.Params.N)
	var outs []proto.Outgoing
	for i := 0; i < m.cfg.Params.N; i++ {
		sender := types.ProcessID(i)
		inst := dolevstrong.NewMachine(dolevstrong.Config{
			Params:   m.cfg.Params,
			Crypto:   m.cfg.Crypto,
			ID:       m.cfg.ID,
			Sender:   sender,
			Input:    m.cfg.Input,
			Tag:      m.cfg.Tag + "/" + instanceName(sender),
			RoundDur: m.cfg.RoundDur,
		})
		m.instances[i] = m.mux.Add(instanceName(sender), inst)
		outs = append(outs, m.instances[i].Begin(now)...)
	}
	return outs
}

// Tick implements proto.Machine. The Mux preserves exactly the serial
// per-instance routing order (instances stepped in sender order, each
// seeing its messages in inbox order), so the refactor is invisible to
// the observable schedule.
func (m *Machine) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	outs := m.mux.Tick(now, inbox)
	if !m.decided && m.mux.Done() {
		m.decide()
	}
	return outs
}

// decide computes the plurality of the instance outputs: the most frequent
// non-⊥ value, ties broken by smallest byte order; ⊥ if every instance
// resolved to ⊥. Every correct process holds the same vector (agreement of
// each broadcast instance), so this is deterministic and common.
func (m *Machine) decide() {
	m.decided = true
	counts := make(map[string]int, len(m.instances))
	for _, inst := range m.instances {
		v, ok := inst.Output()
		if !ok || v.IsBottom() {
			continue
		}
		counts[string(v)]++
	}
	if len(counts) == 0 {
		m.decision = types.Bottom
		return
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best := keys[0]
	for _, k := range keys[1:] {
		if counts[k] > counts[best] {
			best = k
		}
	}
	m.decision = types.Value(bytes.Clone([]byte(best)))
}

// Output implements proto.Machine.
func (m *Machine) Output() (types.Value, bool) { return m.decision, m.decided }

// Done implements proto.Machine.
func (m *Machine) Done() bool { return m.decided }
