package fallback

import (
	"testing"

	"adaptiveba/internal/baseline/dolevstrong"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

func setup(t *testing.T, n int) (*proto.Crypto, types.Params) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("fb-test"))
	if err != nil {
		t.Fatal(err)
	}
	return proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d")), params
}

func factory(crypto *proto.Crypto, params types.Params, dur int, input func(types.ProcessID) types.Value) func(types.ProcessID) proto.Machine {
	return func(id types.ProcessID) proto.Machine {
		return NewMachine(Config{
			Params:   params,
			Crypto:   crypto,
			ID:       id,
			Input:    input(id),
			Tag:      "fb",
			RoundDur: dur,
		})
	}
}

func TestStrongUnanimityFailureFree(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		crypto, params := setup(t, n)
		res, err := sim.Run(sim.Config{
			Params:   params,
			Crypto:   crypto,
			Factory:  factory(crypto, params, 1, func(types.ProcessID) types.Value { return types.Value("v") }),
			MaxTicks: 2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided() {
			t.Fatalf("n=%d: not all decided", n)
		}
		v, ok := res.Agreement()
		if !ok || !v.Equal(types.Value("v")) {
			t.Errorf("n=%d: decided %v (%v), want v", n, v, ok)
		}
	}
}

func TestSplitInputsStillAgree(t *testing.T) {
	crypto, params := setup(t, 7)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: factory(crypto, params, 1, func(id types.ProcessID) types.Value {
			if id%2 == 0 {
				return types.Value("even")
			}
			return types.Value("odd")
		}),
		MaxTicks: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("agreement violated on split inputs")
	}
	// 4 even vs 3 odd: plurality is "even".
	if !v.Equal(types.Value("even")) {
		t.Errorf("plurality = %v", v)
	}
}

type crashAdv struct {
	ids []types.ProcessID
	env sim.Env
}

func (a *crashAdv) Init(env sim.Env) { a.env = env }
func (a *crashAdv) Corruptions() []sim.Corruption {
	cs := make([]sim.Corruption, len(a.ids))
	for i, id := range a.ids {
		cs[i] = sim.Corruption{ID: id}
	}
	return cs
}
func (a *crashAdv) Observe(types.Tick, types.ProcessID, []proto.Incoming) {}
func (a *crashAdv) Act(types.Tick, []sim.Message) []sim.Message           { return nil }
func (a *crashAdv) Quiescent(types.Tick) bool                             { return true }

func TestStrongUnanimityWithCrashes(t *testing.T) {
	crypto, params := setup(t, 7) // t = 3
	res, err := sim.Run(sim.Config{
		Params:    params,
		Crypto:    crypto,
		Factory:   factory(crypto, params, 1, func(types.ProcessID) types.Value { return types.Value("u") }),
		Adversary: &crashAdv{ids: []types.ProcessID{0, 3, 6}},
		MaxTicks:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("u")) {
		t.Errorf("decided %v (%v), want u despite t crashes", v, ok)
	}
}

// byzInputAdv runs the protocol honestly for its corrupted processes but
// with a conflicting input value: strong unanimity must still force the
// correct processes' common value.
type byzInputAdv struct {
	crashAdv
	machines map[types.ProcessID]proto.Machine
	inboxes  map[types.ProcessID][]proto.Incoming
	begun    bool
}

func newByzInputAdv(ids []types.ProcessID) *byzInputAdv {
	return &byzInputAdv{
		crashAdv: crashAdv{ids: ids},
		machines: make(map[types.ProcessID]proto.Machine),
		inboxes:  make(map[types.ProcessID][]proto.Incoming),
	}
}

func (a *byzInputAdv) Observe(now types.Tick, to types.ProcessID, inbox []proto.Incoming) {
	a.inboxes[to] = append(a.inboxes[to], inbox...)
}

func (a *byzInputAdv) Act(now types.Tick, _ []sim.Message) []sim.Message {
	if !a.begun {
		a.begun = true
		for _, id := range a.ids {
			a.machines[id] = NewMachine(Config{
				Params:   a.env.Params,
				Crypto:   a.env.Crypto,
				ID:       id,
				Input:    types.Value("evil"),
				Tag:      "fb",
				RoundDur: 1,
			})
		}
	}
	var msgs []sim.Message
	for _, id := range a.ids {
		m := a.machines[id]
		var outs []proto.Outgoing
		if now == 0 {
			outs = m.Begin(0)
		} else {
			outs = m.Tick(now, a.inboxes[id])
			a.inboxes[id] = nil
		}
		for _, o := range outs {
			msgs = append(msgs, sim.Message{From: id, To: o.To, Session: o.Session, Payload: o.Payload})
		}
	}
	return msgs
}

func TestStrongUnanimityAgainstByzantineMinority(t *testing.T) {
	crypto, params := setup(t, 7) // t = 3: 4 correct with "good", 3 byzantine with "evil"
	res, err := sim.Run(sim.Config{
		Params:    params,
		Crypto:    crypto,
		Factory:   factory(crypto, params, 1, func(types.ProcessID) types.Value { return types.Value("good") }),
		Adversary: newByzInputAdv([]types.ProcessID{1, 2, 5}),
		MaxTicks:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("agreement violated")
	}
	if !v.Equal(types.Value("good")) {
		t.Errorf("decided %v, want good (strong unanimity)", v)
	}
}

// delayedStart defers Begin by a per-process offset (at most 1 tick = δ),
// exercising Lemma 18: with 2δ rounds, skewed starts must not break the
// protocol.
type delayedStart struct {
	inner proto.Machine
	delay types.Tick
	sub   *proto.Sub
}

func newDelayedStart(inner proto.Machine, delay types.Tick) *delayedStart {
	return &delayedStart{inner: inner, delay: delay, sub: proto.NewSub("d", inner)}
}

func (d *delayedStart) Begin(now types.Tick) []proto.Outgoing {
	if d.delay == 0 {
		return d.sub.Begin(now)
	}
	return nil
}

func (d *delayedStart) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	mine, _ := d.sub.Route(inbox)
	var outs []proto.Outgoing
	if !d.sub.Started() && now >= d.delay {
		outs = append(outs, d.sub.Begin(now)...)
	}
	outs = append(outs, d.sub.Tick(now, mine)...)
	return outs
}

func (d *delayedStart) Output() (types.Value, bool) { return d.sub.Output() }
func (d *delayedStart) Done() bool                  { return d.sub.Done() }

func TestSkewedStartsWithDoubleRounds(t *testing.T) {
	crypto, params := setup(t, 5)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			inner := NewMachine(Config{
				Params:   params,
				Crypto:   crypto,
				ID:       id,
				Input:    types.Value("s"),
				Tag:      "fb",
				RoundDur: 2, // δ' = 2δ as the paper prescribes
			})
			return newDelayedStart(inner, types.Tick(int(id)%2))
		},
		MaxTicks: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided under skewed starts")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("s")) {
		t.Errorf("decided %v (%v)", v, ok)
	}
}

// equivSkewAdv corrupts process 0 and equivocates in the fallback's i0
// broadcast instance: it signs value "a" toward process 1 and value "b"
// toward process 2 at tick 0 and stays silent otherwise. Combined with
// skewed honest starts this is the Lemma 18 stress case: an honest
// relay crossing a round boundary arrives one LOCAL round later at the
// other process, where the chain is one signature short of the
// acceptance threshold min(b-1, t+1) and is rejected.
type equivSkewAdv struct {
	crashAdv
	sent bool
}

func (a *equivSkewAdv) Act(now types.Tick, _ []sim.Message) []sim.Message {
	if a.sent {
		return nil
	}
	a.sent = true
	signer := a.env.Crypto.Signer(0)
	var msgs []sim.Message
	for _, half := range []struct {
		to types.ProcessID
		v  types.Value
	}{{1, types.Value("a")}, {2, types.Value("b")}} {
		chain, err := dolevstrong.NewChain(signer, "fb/i0", half.v)
		if err != nil {
			panic(err)
		}
		msgs = append(msgs, sim.Message{
			From: 0, To: half.to, Session: "i0",
			Payload: dolevstrong.Relay{Sender: 0, V: half.v, Chain: chain},
		})
	}
	return msgs
}

// skewedMachine defers an inner machine's Begin by delay ticks,
// buffering anything that arrives before the start (real processes do
// not drop pre-join traffic; TCP delivers it once they are up).
type skewedMachine struct {
	inner   proto.Machine
	delay   types.Tick
	started bool
	buf     []proto.Incoming
}

func (s *skewedMachine) Begin(now types.Tick) []proto.Outgoing {
	if s.delay == 0 {
		s.started = true
		return s.inner.Begin(now)
	}
	return nil
}

func (s *skewedMachine) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	if !s.started {
		if now < s.delay {
			s.buf = append(s.buf, inbox...)
			return nil
		}
		s.started = true
		outs := s.inner.Begin(now)
		inbox = append(s.buf, inbox...)
		s.buf = nil
		return append(outs, s.inner.Tick(now, inbox)...)
	}
	return s.inner.Tick(now, inbox)
}

func (s *skewedMachine) Output() (types.Value, bool) { return s.inner.Output() }
func (s *skewedMachine) Done() bool                  { return s.started && s.inner.Done() }

// TestSkewTableLemma18 pins exactly where the fallback's synchrony
// margin holds and where it breaks, per Lemma 18 of the paper: correct
// processes may enter A_fallback up to δ apart, so the paper invokes it
// with doubled rounds (δ' = 2δ) to keep every pair of correct processes
// overlapping in every round.
//
// The scenario that separates the regimes (n=3, t=1): corrupted sender
// 0 equivocates "a"/"b" toward the two honest processes, which start
// skew ticks apart with split inputs "x"/"y". When every honest relay
// lands within the other's same local round, both extract both forged
// values, resolve instance i0 to ⊥, and agree. When the skew eats the
// overlap, the late process's relay misses the early process's final
// acceptance boundary: one resolves i0 to a forged value, the other to
// ⊥, their plurality vectors split, and agreement breaks.
//
// The table (1 tick = δ; RoundDur 2 = the paper's δ'):
//
//	δ'=2δ, skew δ    — Lemma 18's stated margin: MUST agree.
//	δ'=2δ, skew 2δ   — one tick past the margin: agreement breaks.
//	δ'=2δ, skew 2δ+1 — further out: still broken.
//	δ'=δ,  skew 0    — perfectly aligned entries need no margin.
//	δ'=δ,  skew δ    — why the paper doubles: a bare-δ' fallback is
//	                   unsafe under the very skew its callers produce.
//
// Every row is swept over inbox-shuffle seeds: the verdicts are a
// property of the timing geometry, not of delivery order within a tick.
func TestSkewTableLemma18(t *testing.T) {
	cases := []struct {
		name      string
		roundDur  int
		skew      types.Tick
		wantAgree bool
	}{
		{"doubled-rounds/skew-delta", 2, 1, true},
		{"doubled-rounds/skew-2delta", 2, 2, false},
		{"doubled-rounds/skew-2delta+1", 2, 3, false},
		{"bare-rounds/skew-0", 1, 0, true},
		{"bare-rounds/skew-delta", 1, 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, shuffle := range []int64{0, 7, 123} {
				crypto, params := setup(t, 3) // t = 1
				res, err := sim.Run(sim.Config{
					Params: params,
					Crypto: crypto,
					Factory: func(id types.ProcessID) proto.Machine {
						input := types.Value("x")
						if id == 2 {
							input = types.Value("y")
						}
						inner := NewMachine(Config{
							Params: params, Crypto: crypto, ID: id,
							Input: input, Tag: "fb", RoundDur: tc.roundDur,
						})
						var delay types.Tick
						if id == 2 {
							delay = tc.skew
						}
						return &skewedMachine{inner: inner, delay: delay}
					},
					Adversary:   &equivSkewAdv{crashAdv: crashAdv{ids: []types.ProcessID{0}}},
					MaxTicks:    200,
					ShuffleSeed: shuffle,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.AllDecided() {
					t.Fatalf("shuffle=%d: not all honest processes decided", shuffle)
				}
				_, agree := res.Agreement()
				if agree != tc.wantAgree {
					t.Errorf("shuffle=%d: agreement=%v, want %v (decisions p1=%q p2=%q)",
						shuffle, agree, tc.wantAgree,
						res.Decisions[1], res.Decisions[2])
				}
			}
		})
	}
}

func TestAllBottomWhenEverythingCrashes(t *testing.T) {
	// Corrupt t processes; the n-t correct ones still broadcast their
	// inputs, so the decision is their common value — but if inputs are
	// all distinct, plurality tie-breaks deterministically.
	crypto, params := setup(t, 5)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: factory(crypto, params, 1, func(id types.ProcessID) types.Value {
			return types.Value{byte('a' + id)}
		}),
		Adversary: &crashAdv{ids: []types.ProcessID{0, 1}},
		MaxTicks:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("agreement violated")
	}
	// Distinct inputs c, d, e from p2, p3, p4: tie broken to smallest.
	if !v.Equal(types.Value("c")) {
		t.Errorf("tie-break decided %v, want c", v)
	}
}

func TestDurationMatchesDecisionTick(t *testing.T) {
	crypto, params := setup(t, 5) // t=2
	m := NewMachine(Config{Params: params, Crypto: crypto, ID: 0, Input: types.Value("v"), Tag: "x", RoundDur: 2})
	if m.Duration() != 6 {
		t.Errorf("Duration = %d, want (t+1)*dur = 6", m.Duration())
	}
	inner := dolevstrong.NewMachine(dolevstrong.Config{Params: params, Crypto: crypto, ID: 0, Sender: 0, Tag: "y", RoundDur: 2})
	if inner.Duration() != m.Duration() {
		t.Errorf("fallback duration %d != instance duration %d", m.Duration(), inner.Duration())
	}
}
