package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	out := Render(Config{
		Title: "words vs f", Width: 40, Height: 10,
		XLabel: "f", YLabel: "words",
	},
		Series{Label: "adaptive", Points: []Point{{0, 100}, {5, 200}, {10, 300}}},
		Series{Label: "baseline", Points: []Point{{0, 1000}, {5, 1000}, {10, 1000}}},
	)
	for _, want := range []string{"words vs f", "legend:", "* adaptive", "o baseline", "x: f", "y: words"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The top tick is the max y, the bottom the min.
	if !strings.Contains(out, "1000 |") {
		t.Errorf("max tick missing:\n%s", out)
	}
	if !strings.Contains(out, "100 |") {
		t.Errorf("min tick missing:\n%s", out)
	}
}

func TestRenderLogScale(t *testing.T) {
	out := Render(Config{LogY: true, Width: 30, Height: 8},
		Series{Label: "s", Points: []Point{{0, 10}, {1, 100}, {2, 100000}}},
	)
	if !strings.Contains(out, "100000 |") {
		t.Errorf("log-scale top tick:\n%s", out)
	}
	if !strings.Contains(out, "(log scale)") && strings.Contains(out, "y:") {
		t.Errorf("log scale not labeled:\n%s", out)
	}
}

func TestRenderEdgeCases(t *testing.T) {
	if got := Render(Config{}); got != "(no data)\n" {
		t.Errorf("empty render: %q", got)
	}
	// Single point, flat series, zero y with log scale — must not panic.
	out := Render(Config{LogY: true},
		Series{Label: "one", Points: []Point{{1, 0}}},
	)
	if len(out) == 0 {
		t.Error("empty output")
	}
	out = Render(Config{},
		Series{Label: "flat", Points: []Point{{0, 5}, {1, 5}, {2, 5}}},
	)
	if !strings.Contains(out, "flat") {
		t.Error("flat series lost")
	}
}

func TestMarkersCycle(t *testing.T) {
	series := make([]Series, 8)
	for i := range series {
		series[i] = Series{Label: string(rune('a' + i)), Points: []Point{{float64(i), float64(i + 1)}}}
	}
	out := Render(Config{Width: 20, Height: 6}, series...)
	// 8 series with 6 markers: wraps around without panicking.
	if !strings.Contains(out, "legend:") {
		t.Errorf("legend missing:\n%s", out)
	}
}
