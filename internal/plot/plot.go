// Package plot renders simple ASCII line charts for the experiment CLI:
// words-vs-f curves and n-scaling plots readable straight from the
// terminal, with multiple labeled series, log-scale support (the adaptive
// vs quadratic comparisons span orders of magnitude), and axis ticks.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one labeled curve.
type Series struct {
	Label  string
	Points []Point
}

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Config controls rendering.
type Config struct {
	// Title is printed above the chart.
	Title string
	// Width and Height are the plot area in characters (defaults 64×16).
	Width, Height int
	// LogY switches the y axis to log₁₀ (zero/negative values clamp to
	// the smallest positive sample).
	LogY bool
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
}

// markers cycles per series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart.
func Render(cfg Config, series ...Series) string {
	width, height := cfg.Width, cfg.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	minPosY := math.Inf(1)
	var any bool
	for _, s := range series {
		for _, p := range s.Points {
			any = true
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			if p.Y > 0 {
				minPosY = math.Min(minPosY, p.Y)
			}
		}
	}
	if !any {
		return "(no data)\n"
	}
	ty := func(y float64) float64 { return y }
	if cfg.LogY {
		if math.IsInf(minPosY, 1) {
			minPosY = 1
		}
		ty = func(y float64) float64 {
			if y < minPosY {
				y = minPosY
			}
			return math.Log10(y)
		}
		minY, maxY = ty(minY), ty(maxY)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for _, p := range s.Points {
			col := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((ty(p.Y) - minY) / (maxY - minY) * float64(height-1)))
			row = height - 1 - row
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	yHi, yLo := maxY, minY
	hiLabel, loLabel := fmtTick(yHi, cfg.LogY), fmtTick(yLo, cfg.LogY)
	labelWidth := len(hiLabel)
	if len(loLabel) > labelWidth {
		labelWidth = len(loLabel)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch i {
		case 0:
			label = pad(hiLabel, labelWidth)
		case height - 1:
			label = pad(loLabel, labelWidth)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-10s%s%10s\n", strings.Repeat(" ", labelWidth),
		trimFloat(minX), strings.Repeat(" ", maxInt(0, width-20)), trimFloat(maxX))
	if cfg.XLabel != "" || cfg.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s", strings.Repeat(" ", labelWidth), cfg.XLabel, yAxisName(cfg))
		b.WriteByte('\n')
	}
	// Legend, stable order.
	labels := make([]string, 0, len(series))
	for si, s := range series {
		labels = append(labels, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Label))
	}
	sort.Strings(labels)
	fmt.Fprintf(&b, "%s  legend: %s\n", strings.Repeat(" ", labelWidth), strings.Join(labels, "   "))
	return b.String()
}

func yAxisName(cfg Config) string {
	if cfg.LogY {
		return cfg.YLabel + " (log scale)"
	}
	return cfg.YLabel
}

func fmtTick(v float64, logY bool) string {
	if logY {
		return trimFloat(math.Pow(10, v))
	}
	return trimFloat(v)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2g", v)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
