// Batched replicated-log driver: the engine's session scheduler applied
// to BKR ACS rounds. Where RunLog commits ONE command per slot through
// a single rotating proposer, RunACSLog commits a SUBSET OF n BATCHES
// per slot — every process proposes its next `batch` commands, the
// round's n broadcasts + n binary votes (internal/acs) decide which
// proposals land, and the winning batches flatten into the log in
// (round, proposer-ID, batch-position) order. Throughput per slot
// scales as n×batch while the per-command word cost is amortized by the
// batch size; total order still follows from the static slot schedule,
// so decisions remain byte-identical at every window size and worker
// count.
package engine

import (
	"fmt"

	"adaptiveba/internal/acs"
	"adaptiveba/internal/kv"
	"adaptiveba/internal/smr"
	"adaptiveba/internal/types"
)

// ACSRound summarizes one committed ACS round.
type ACSRound struct {
	Round int
	// Subset is how many proposers' batches committed (≥ n−t whenever
	// the round converged inside the fault model).
	Subset int
	// Requests is the number of commands the round committed.
	Requests int
}

// ACSLogReport is the outcome of a batched (ACS) log run.
type ACSLogReport struct {
	Engine *Report
	Rounds []ACSRound
	// Entries is the committed log: the winning batches of every round,
	// flattened one entry per command in (round, proposer, position)
	// order.
	Entries []smr.Entry
	// Committed counts the committed commands across all rounds.
	Committed int
	// SubsetMin is the smallest committed subset over all converged
	// rounds (n+1 if no round converged).
	SubsetMin int
	// Converged reports that every round reached agreement with every
	// honest process decided.
	Converged bool
	// StateHash is the canonical digest of the kv state machine after
	// replaying the log — the cheap cross-run convergence check.
	StateHash string
	// RejectedCommands lists commands the kv state machine refused
	// (deterministically, identically on every replica).
	RejectedCommands []error
}

// RunACSLog drives a batched replicated log of `rounds` ACS rounds:
// in round r every process proposes its next `batch` commands from
// queues[proposer], the round commits a ≥ n−t subset of the n proposals,
// and committed commands replay through the kv state machine.
func RunACSLog(cfg Config, queues [][]types.Value, rounds, batch int) (*ACSLogReport, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("%w: need at least one round, got %d", ErrConfig, rounds)
	}
	if batch < 1 {
		return nil, fmt.Errorf("%w: batch must be >= 1, got %d", ErrConfig, batch)
	}
	if len(queues) > cfg.N {
		return nil, fmt.Errorf("%w: %d queues for n=%d", ErrConfig, len(queues), cfg.N)
	}
	reqs := make([]Request, rounds)
	pos := make([]int, cfg.N)
	for r := range reqs {
		inputs := make([]types.Value, cfg.N)
		for p := 0; p < cfg.N; p++ {
			var cmds []types.Value
			if p < len(queues) {
				q := queues[p]
				for len(cmds) < batch && pos[p] < len(q) {
					cmds = append(cmds, q[pos[p]])
					pos[p]++
				}
			}
			// An empty batch still encodes non-⊥, so a drained proposer
			// keeps winning its vote instead of reading as faulty.
			inputs[p] = acs.EncodeBatch(cmds)
		}
		reqs[r] = Request{Kind: KindACS, Inputs: inputs}
	}

	rep, err := Run(cfg, reqs)
	if err != nil {
		return nil, err
	}

	out := &ACSLogReport{
		Engine:    rep,
		Rounds:    make([]ACSRound, rounds),
		Converged: true,
		SubsetMin: cfg.N + 1,
	}
	for r := range rep.Sessions {
		sess := &rep.Sessions[r]
		out.Rounds[r] = ACSRound{Round: r}
		if !sess.Agreement || !sess.AllDecided {
			out.Converged = false
			continue
		}
		result, err := acs.DecodeResult(sess.Decision)
		if err != nil {
			return nil, fmt.Errorf("engine: round %d decided a malformed result: %w", r, err)
		}
		round := &out.Rounds[r]
		round.Subset = result.Committed.Count()
		if round.Subset < out.SubsetMin {
			out.SubsetMin = round.Subset
		}
		proposers := result.Committed.Members()
		for bi, enc := range result.Batches {
			b, err := acs.DecodeBatch(enc)
			if err != nil {
				return nil, fmt.Errorf("engine: round %d batch %d malformed: %w", r, bi, err)
			}
			var proposer types.ProcessID
			if bi < len(proposers) {
				proposer = proposers[bi]
			}
			for _, cmd := range b.Cmds {
				out.Entries = append(out.Entries, smr.Entry{
					Slot:     len(out.Entries),
					Proposer: proposer,
					Command:  cmd.Clone(),
				})
				round.Requests++
			}
		}
		out.Committed += round.Requests
	}
	store, rejected := kv.Replay(out.Entries)
	out.StateHash = store.Hash()
	out.RejectedCommands = rejected
	return out, nil
}
