// Pipelined replicated-log driver: the engine's session scheduler
// applied to SMR. Each log slot is one BB session whose designated
// sender is the rotating proposer p_{s mod n}; with Inflight=W, slot
// s+1 starts ceil(D/W) ticks after slot s — while slot s may still be
// deep in its fallback — instead of waiting the full worst-case slot
// duration D. Agreement per slot is BB agreement, total order follows
// from the fixed slot schedule, and throughput multiplies by up to W
// without changing any per-slot decision.
package engine

import (
	"fmt"

	"adaptiveba/internal/kv"
	"adaptiveba/internal/smr"
	"adaptiveba/internal/types"
)

// LogReport is the outcome of a pipelined log run.
type LogReport struct {
	Engine *Report
	// Entries is the committed log, in slot order (⊥ marks slots whose
	// proposer was faulty or had nothing to propose).
	Entries []smr.Entry
	// Committed counts the non-skipped commands.
	Committed int
	// Converged reports that every slot reached agreement with every
	// honest process decided.
	Converged bool
	// StateHash is the canonical digest of the kv state machine after
	// replaying the log — the cheap cross-run convergence check.
	StateHash string
	// RejectedCommands lists commands the kv state machine refused
	// (deterministically, identically on every replica).
	RejectedCommands []error
}

// RunLog drives a pipelined replicated log: slots BB sessions with
// rotating proposers drawing commands from queues[proposer], committed
// in slot order and replayed through the kv state machine.
func RunLog(cfg Config, queues [][]types.Value, slots int) (*LogReport, error) {
	if slots < 1 {
		return nil, fmt.Errorf("%w: need at least one slot, got %d", ErrConfig, slots)
	}
	if len(queues) > cfg.N {
		return nil, fmt.Errorf("%w: %d queues for n=%d", ErrConfig, len(queues), cfg.N)
	}
	reqs := make([]Request, slots)
	pos := make([]int, cfg.N)
	for s := range reqs {
		proposer := s % cfg.N
		var cmd types.Value
		if proposer < len(queues) && pos[proposer] < len(queues[proposer]) {
			cmd = queues[proposer][pos[proposer]]
			pos[proposer]++
		}
		reqs[s] = Request{Kind: KindBB, Sender: types.ProcessID(proposer), Value: cmd}
	}

	rep, err := Run(cfg, reqs)
	if err != nil {
		return nil, err
	}

	out := &LogReport{
		Engine:    rep,
		Entries:   make([]smr.Entry, slots),
		Converged: true,
	}
	for s := range rep.Sessions {
		sess := &rep.Sessions[s]
		if !sess.Agreement || !sess.AllDecided {
			out.Converged = false
		}
		var cmd types.Value
		if sess.Agreement {
			cmd = sess.Decision.Clone()
		}
		out.Entries[s] = smr.Entry{Slot: s, Proposer: types.ProcessID(s % cfg.N), Command: cmd}
		if !cmd.IsBottom() {
			out.Committed++
		}
	}
	store, rejected := kv.Replay(out.Entries)
	out.StateHash = store.Hash()
	out.RejectedCommands = rejected
	return out, nil
}
