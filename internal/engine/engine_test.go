package engine

import (
	"errors"
	"fmt"
	"testing"

	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// mixedRequests builds a workload that exercises every session kind,
// ⊥-deciding slots (senders that get crashed), and wba fallback
// (distinct inputs force disagreement handling).
func mixedRequests(n, count int) []Request {
	reqs := make([]Request, count)
	for k := range reqs {
		switch k % 4 {
		case 0:
			reqs[k] = Request{Kind: KindBB, Sender: types.ProcessID(k % n), Value: types.Value(fmt.Sprintf("cmd%d", k))}
		case 1:
			reqs[k] = Request{Kind: KindWBA, Value: types.Value(fmt.Sprintf("w%d", k))}
		case 2:
			inputs := make([]types.Value, n)
			for i := range inputs {
				inputs[i] = types.Value(fmt.Sprintf("v%d", i))
			}
			reqs[k] = Request{Kind: KindWBA, Inputs: inputs}
		default:
			reqs[k] = Request{Kind: KindStrongBA, Value: types.One}
		}
	}
	return reqs
}

// TestEngineDeterminism is the pinning test behind the engine's whole
// design: per-session decisions, word counts, and message counts are
// byte-identical at every in-flight window size — W=16 fully pipelined
// equals W=1 strictly serial one-at-a-time execution. CI runs it under
// -race; the 16-session workload mixes BB, weak BA (incl. fallback),
// and strong BA, with and without crashes.
func TestEngineDeterminism(t *testing.T) {
	const n, sessions = 5, 16
	for _, f := range []struct {
		f      int
		leader bool
	}{{0, false}, {1, false}, {2, true}} {
		t.Run(fmt.Sprintf("f=%d,leader=%t", f.f, f.leader), func(t *testing.T) {
			reqs := mixedRequests(n, sessions)
			var serial string
			for _, w := range []int{1, 4, 16} {
				rep, err := Run(Config{
					N: n, F: f.f, LeaderFault: f.leader, Inflight: w, Seed: 7,
				}, reqs)
				if err != nil {
					t.Fatalf("W=%d: %v", w, err)
				}
				if rep.TimedOut {
					t.Fatalf("W=%d: timed out at %d ticks", w, rep.Ticks)
				}
				if rep.Metrics.EngineLate != 0 {
					t.Errorf("W=%d: %d late messages (budget too small?)", w, rep.Metrics.EngineLate)
				}
				fp := rep.Fingerprint()
				if w == 1 {
					serial = fp
					for i := range rep.Sessions {
						s := &rep.Sessions[i]
						if !s.AllDecided || !s.Agreement {
							t.Errorf("serial session %d: decided=%t agree=%t", i, s.AllDecided, s.Agreement)
						}
					}
					continue
				}
				if fp != serial {
					t.Errorf("W=%d diverges from serial:\n--- serial ---\n%s--- W=%d ---\n%s", w, serial, w, fp)
				}
				if rep.Ticks >= sessions*rep.SessionTicks {
					t.Errorf("W=%d: no pipelining (%d ticks, serial needs ~%d)", w, rep.Ticks, sessions*rep.SessionTicks)
				}
			}
		})
	}
}

// TestEnginePipeliningSpeedup checks the stride schedule actually
// compresses the run: W in-flight sessions take ~1/W the ticks.
func TestEnginePipeliningSpeedup(t *testing.T) {
	reqs := mixedRequests(5, 12)
	serial, err := Run(Config{N: 5, Inflight: 1}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := Run(Config{N: 5, Inflight: 4}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(serial.Ticks) / float64(piped.Ticks); ratio < 2 {
		t.Errorf("W=4 speedup %.2fx over serial (%d vs %d ticks), want >= 2x",
			ratio, serial.Ticks, piped.Ticks)
	}
}

// TestEngineBackpressure pins the drop-not-block admission policy:
// requests beyond window+queue are shed and surfaced, never blocked on.
func TestEngineBackpressure(t *testing.T) {
	reqs := mixedRequests(5, 8)
	rep, err := Run(Config{N: 5, Inflight: 2, MaxQueue: 2}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 4 || rep.Rejected != 4 || rep.Queued != 2 {
		t.Fatalf("accepted/rejected/queued = %d/%d/%d, want 4/4/2",
			rep.Accepted, rep.Rejected, rep.Queued)
	}
	if rep.Metrics.EngineRejects != 4 || rep.Metrics.EngineQueued != 2 {
		t.Errorf("metrics rejects/queued = %d/%d, want 4/2",
			rep.Metrics.EngineRejects, rep.Metrics.EngineQueued)
	}
	for i, s := range rep.Sessions {
		if got, want := s.Rejected, i >= 4; got != want {
			t.Errorf("session %d rejected=%t, want %t", i, got, want)
		}
		if got, want := s.Queued, i >= 2 && i < 4; got != want {
			t.Errorf("session %d queued=%t, want %t", i, got, want)
		}
		if !s.Rejected && !s.AllDecided {
			t.Errorf("accepted session %d did not decide", i)
		}
	}

	// A negative MaxQueue sheds everything beyond the window itself.
	rep, err = Run(Config{N: 5, Inflight: 2, MaxQueue: -1}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 2 || rep.Rejected != 6 || rep.Queued != 0 {
		t.Fatalf("no-queue accepted/rejected/queued = %d/%d/%d, want 2/6/0",
			rep.Accepted, rep.Rejected, rep.Queued)
	}
}

// TestEngineHalt pins the cancellation hook: Halt aborts the run with
// sim.ErrHalted before the halting tick's machines are stepped.
func TestEngineHalt(t *testing.T) {
	_, err := Run(Config{
		N: 5, Inflight: 2,
		Halt: func(now types.Tick) bool { return now >= 3 },
	}, mixedRequests(5, 8))
	if !errors.Is(err, sim.ErrHalted) {
		t.Fatalf("err = %v, want sim.ErrHalted", err)
	}
}

// TestEngineConfigErrors pins the validation surface.
func TestEngineConfigErrors(t *testing.T) {
	reqs := mixedRequests(5, 2)
	cases := []struct {
		name string
		cfg  Config
		reqs []Request
		want error
	}{
		{"no sessions", Config{N: 5}, nil, ErrNoSessions},
		{"bad n", Config{N: 2}, reqs, ErrConfig},
		{"too many faults", Config{N: 5, F: 3}, reqs, ErrConfig},
		{"bad kind", Config{N: 5}, []Request{{Kind: "nope"}}, ErrConfig},
	}
	for _, c := range cases {
		if _, err := Run(c.cfg, c.reqs); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

// idleMachine never decides and never sends: the procMachine around it
// reaches steady state immediately.
type idleMachine struct{}

func (idleMachine) Begin(types.Tick) []proto.Outgoing                  { return nil }
func (idleMachine) Tick(types.Tick, []proto.Incoming) []proto.Outgoing { return nil }
func (idleMachine) Output() (types.Value, bool)                        { return nil, false }
func (idleMachine) Done() bool                                         { return false }

// TestEngineSteadyStateAllocs guards the per-session steady-state path:
// once its sessions are admitted, a process's per-tick scheduling work —
// retirement scan, demux, child stepping — allocates nothing. CI runs
// this as the engine alloc-guard.
func TestEngineSteadyStateAllocs(t *testing.T) {
	p := &procMachine{
		id:       0,
		build:    func(int, types.ProcessID) proto.Machine { return idleMachine{} },
		starts:   []types.Tick{0, 2, 4, 6},
		names:    []string{"s0", "s1", "s2", "s3"},
		duration: 1 << 30,
		mux:      proto.NewMux(),
		children: make([]proto.Machine, 4),
	}
	p.Begin(0)
	var now types.Tick
	for now = 1; now < 10; now++ {
		p.Tick(now, nil) // admit everything, warm scratch
	}
	inbox := []proto.Incoming{
		{From: 1, Session: "s0", Payload: nil},
		{From: 2, Session: "s3", Payload: nil},
	}
	allocs := testing.AllocsPerRun(100, func() {
		now++
		p.Tick(now, inbox)
	})
	if allocs > 0 {
		t.Errorf("steady-state engine tick allocates %.1f/op, want 0", allocs)
	}
}

// TestRunLogConvergence drives the pipelined log end to end: identical
// entries, committed commands, and kv state hash at every window size,
// fewer ticks when pipelined, and convergence under crashes.
func TestRunLogConvergence(t *testing.T) {
	const n, slots = 5, 10
	queues := make([][]types.Value, n)
	for i := range queues {
		for j := 0; j < 2; j++ {
			queues[i] = append(queues[i], types.Value(fmt.Sprintf("SET k%d-%d p%d", i, j, i)))
		}
	}
	var serial *LogReport
	for _, w := range []int{1, 5} {
		rep, err := RunLog(Config{N: n, F: 1, Inflight: w}, queues, slots)
		if err != nil {
			t.Fatalf("W=%d: %v", w, err)
		}
		if !rep.Converged {
			t.Fatalf("W=%d: log did not converge", w)
		}
		// Proposer p1 is crashed: its slots (1 and 6) commit ⊥.
		if rep.Committed != slots-2 {
			t.Errorf("W=%d: committed %d, want %d", w, rep.Committed, slots-2)
		}
		if len(rep.RejectedCommands) != 0 {
			t.Errorf("W=%d: kv rejected %v", w, rep.RejectedCommands)
		}
		if w == 1 {
			serial = rep
			continue
		}
		if rep.StateHash != serial.StateHash {
			t.Errorf("W=%d state hash %s != serial %s", w, rep.StateHash, serial.StateHash)
		}
		if got, want := rep.Engine.Fingerprint(), serial.Engine.Fingerprint(); got != want {
			t.Errorf("W=%d log sessions diverge from serial:\n%s\nvs\n%s", w, got, want)
		}
		if rep.Engine.Ticks*2 >= serial.Engine.Ticks {
			t.Errorf("W=%d: %d ticks vs serial %d, want >= 2x pipelining",
				w, rep.Engine.Ticks, serial.Engine.Ticks)
		}
	}
}
