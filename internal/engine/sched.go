// Scheduling policies: when sessions retire and how admission reacts.
//
// The engine's original (and default) schedule is the static stride:
// session k begins at tick k·ceil(D/W) and holds its slot for the full
// worst-case duration D, a pure function of the request index. That
// keeps every correct process in lockstep but pays worst-case latency
// even when every session decides rounds earlier — the scheduling
// analogue of the word-complexity pessimism the paper removes.
//
// The Eager policy extends the paper's adaptivity to wall-clock: a
// session vacates its slot the tick after its machine decides, and the
// next queued session is admitted into the freed slot immediately. The
// determinism argument (DESIGN.md §5): under crash faults every honest
// process decides a given session at the same tick, because decisions
// are driven by broadcast certificates (delivered to all, including the
// sender, on the same tick) or by fixed fallback schedules anchored at
// Begin. Retirement and admission are therefore functions of locally
// observable events that are nevertheless identical across processes —
// no coordination traffic is needed, and per-session decisions, words,
// and messages stay byte-identical to the static schedule.
package engine

import (
	"fmt"

	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

// Scheduler selects the engine's session admission/retirement policy.
// The implementations are Static (the stride schedule, default) and
// Eager (decision-driven retirement). The interface is sealed: policy
// correctness rests on the cross-process determinism argument above, so
// implementations outside this package are not accepted.
type Scheduler interface {
	// Name identifies the policy in reports and CLI flags.
	Name() string

	// reactive reports whether admission reacts to retirements (Eager)
	// or follows the precomputed stride schedule (Static).
	reactive() bool
	// retireNow reports whether a live session admitted at tick
	// `admitted` with worst-case duration `duration` should vacate its
	// slot at the top of tick now, given its machine's observable state.
	retireNow(child proto.Machine, admitted, duration, now types.Tick) bool
	// budget returns the run's tick bound for `accepted` sessions
	// through a window of `window` slots with per-session duration
	// `slot` (Static computes its bound from the stride schedule
	// directly and does not use this).
	budget(accepted, window int, slot types.Tick) types.Tick
}

type staticPolicy struct{}

func (staticPolicy) Name() string   { return "static" }
func (staticPolicy) reactive() bool { return false }

func (staticPolicy) retireNow(_ proto.Machine, admitted, duration, now types.Tick) bool {
	return now >= admitted+duration
}

func (staticPolicy) budget(accepted, window int, slot types.Tick) types.Tick {
	stride := (slot + types.Tick(window) - 1) / types.Tick(window)
	if stride < 1 {
		stride = 1
	}
	return types.Tick(accepted-1)*stride + 2*slot
}

type eagerPolicy struct{}

func (eagerPolicy) Name() string   { return "eager" }
func (eagerPolicy) reactive() bool { return true }

// retireNow retires a decided session the tick after its machine
// reports a decision (its last step was at now−1, so Output turning ok
// here means every honest process observed the same decision tick), and
// in any case at the worst-case deadline, so a never-deciding session
// cannot wedge admission.
func (eagerPolicy) retireNow(child proto.Machine, admitted, duration, now types.Tick) bool {
	if now >= admitted+duration {
		return true
	}
	_, decided := child.Output()
	return decided
}

// budget bounds the eager run by batch-sequential execution: if no
// session ever decided early, ceil(accepted/window) full-duration
// batches run back to back (plus the same 2·D slack the static bound
// carries).
func (eagerPolicy) budget(accepted, window int, slot types.Tick) types.Tick {
	batches := types.Tick((accepted + window - 1) / window)
	return (batches + 2) * slot
}

// Static is the stride schedule: session k begins at tick k·ceil(D/W)
// and retires D ticks later, a pure function of the request index. It
// is the default and the A/B control for golden-trace tests.
var Static Scheduler = staticPolicy{}

// Eager retires a session the tick after its machine decides, admitting
// the next queued session into the freed slot immediately, and switches
// ACS sessions to the early-stopping vote boundary (acs.Config.Early).
// Decisions, words, and messages per session are identical to Static;
// only the schedule (and hence the run's tick count) changes.
var Eager Scheduler = eagerPolicy{}

// SchedulerByName maps a CLI name to a policy ("" selects the default).
func SchedulerByName(name string) (Scheduler, error) {
	switch name {
	case "", "static":
		return Static, nil
	case "eager":
		return Eager, nil
	}
	return nil, fmt.Errorf("%w: unknown scheduler %q (static | eager)", ErrConfig, name)
}
