package engine

import (
	"fmt"
	"testing"

	"adaptiveba/internal/acs"
	"adaptiveba/internal/adversary"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

func acsQueues(n, perProc int) [][]types.Value {
	queues := make([][]types.Value, n)
	for i := range queues {
		for j := 0; j < perProc; j++ {
			queues[i] = append(queues[i], types.Value(fmt.Sprintf("SET k%d-%d p%d", i, j, i)))
		}
	}
	return queues
}

// TestRunACSLogConvergence drives the batched log end to end: identical
// entries, committed counts, and kv state hash at every window size and
// worker count; failure-free rounds commit all n batches.
func TestRunACSLogConvergence(t *testing.T) {
	const n, rounds, batch = 5, 3, 2
	var serial *ACSLogReport
	var serialFP string
	for _, run := range []struct {
		window, workers int
	}{{1, 1}, {2, 1}, {2, 8}} {
		queues := acsQueues(n, rounds*batch)
		rep, err := RunACSLog(Config{N: n, Inflight: run.window, TickWorkers: run.workers}, queues, rounds, batch)
		if err != nil {
			t.Fatalf("W=%d workers=%d: %v", run.window, run.workers, err)
		}
		if !rep.Converged {
			t.Fatalf("W=%d workers=%d: log did not converge", run.window, run.workers)
		}
		if got, want := rep.Committed, n*rounds*batch; got != want {
			t.Errorf("W=%d workers=%d: committed %d commands, want %d", run.window, run.workers, got, want)
		}
		if rep.SubsetMin != n {
			t.Errorf("W=%d workers=%d: min subset %d, want %d (failure-free)", run.window, run.workers, rep.SubsetMin, n)
		}
		if len(rep.RejectedCommands) != 0 {
			t.Errorf("W=%d workers=%d: kv rejected %v", run.window, run.workers, rep.RejectedCommands)
		}
		fp := rep.Engine.Fingerprint()
		if serial == nil {
			serial, serialFP = rep, fp
			continue
		}
		if rep.StateHash != serial.StateHash {
			t.Errorf("W=%d workers=%d: state hash %s != serial %s", run.window, run.workers, rep.StateHash, serial.StateHash)
		}
		if fp != serialFP {
			t.Errorf("W=%d workers=%d: fingerprint differs from serial run", run.window, run.workers)
		}
		if len(rep.Entries) != len(serial.Entries) {
			t.Fatalf("W=%d workers=%d: %d entries != serial %d", run.window, run.workers, len(rep.Entries), len(serial.Entries))
		}
		for i := range rep.Entries {
			if !rep.Entries[i].Command.Equal(serial.Entries[i].Command) {
				t.Errorf("W=%d workers=%d: entry %d differs", run.window, run.workers, i)
			}
		}
	}
}

// TestRunACSLogCrashFaults pins the fault-grid behavior: with f crashed
// processes every round still commits an ≥ n−t subset that excludes
// exactly the crashed proposers.
func TestRunACSLogCrashFaults(t *testing.T) {
	const n, rounds, batch = 5, 2, 2
	rep, err := RunACSLog(Config{N: n, F: 2, Inflight: 2}, acsQueues(n, rounds*batch), rounds, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("log did not converge")
	}
	params, _ := types.NewParams(n)
	if min := params.N - params.T; rep.SubsetMin < min {
		t.Errorf("min subset %d < n-t = %d", rep.SubsetMin, min)
	}
	// Crashed proposers 1..2 contribute nothing; the other 3 commit full
	// batches every round.
	if got, want := rep.Committed, (n-2)*rounds*batch; got != want {
		t.Errorf("committed %d commands, want %d", got, want)
	}
	for _, e := range rep.Entries {
		if e.Proposer == 1 || e.Proposer == 2 {
			t.Errorf("entry %d attributed to crashed proposer %v", e.Slot, e.Proposer)
		}
	}
}

// TestACSEngineLate is the late-accounting guard: a replay adversary
// re-sending recorded broadcast-stage traffic past the round's vote
// boundary hits retired "b<i>" sessions inside the ACS machines, which
// must surface in EngineLate — and the round must still commit an
// ≥ n−t subset with byte-identical decisions across worker counts.
func TestACSEngineLate(t *testing.T) {
	const n = 5
	params, _ := types.NewParams(n)
	var serialFP string
	for _, workers := range []int{1, 4} {
		rep, err := RunACSLog(Config{
			N:           n,
			TickWorkers: workers,
			Adversary: func(maxTicks types.Tick) sim.Adversary {
				// Replay until the budget runs out: stale BB traffic keeps
				// arriving long after the vote boundary retires the
				// broadcast sessions.
				return adversary.NewReplay(7, maxTicks, 1)
			},
		}, acsQueues(n, 2), 1, 2)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !rep.Converged {
			t.Fatalf("workers=%d: round did not converge", workers)
		}
		if min := params.N - params.T; rep.SubsetMin < min {
			t.Errorf("workers=%d: subset %d < n-t = %d", workers, rep.SubsetMin, min)
		}
		if late := rep.Engine.Metrics.EngineLate; late == 0 {
			t.Errorf("workers=%d: replayed broadcast traffic did not surface in EngineLate", workers)
		}
		fp := rep.Engine.Fingerprint()
		if workers == 1 {
			serialFP = fp
		} else if fp != serialFP {
			t.Errorf("workers=%d: fingerprint differs from serial run (adversarial run must stay deterministic)", workers)
		}
	}
}

// TestRunACSLogThroughput pins the headline claim at a small scale: per
// log slot, the ACS round commits n×batch commands where the BB log
// commits one.
func TestRunACSLogThroughput(t *testing.T) {
	const n, batch = 5, 4
	queues := acsQueues(n, batch)
	acsRep, err := RunACSLog(Config{N: n}, queues, 1, batch)
	if err != nil {
		t.Fatal(err)
	}
	bbRep, err := RunLog(Config{N: n}, acsQueues(n, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if acsRep.Committed != n*batch || bbRep.Committed != 1 {
		t.Fatalf("per-slot commits: acs=%d bb=%d, want %d and 1", acsRep.Committed, bbRep.Committed, n*batch)
	}
	if ratio := acsRep.Committed / bbRep.Committed; ratio < n/2 {
		t.Errorf("requests-per-slot ratio %d < n/2 = %d", ratio, n/2)
	}
}

// TestRunACSLogRejectsBadConfig covers the argument validation.
func TestRunACSLogRejectsBadConfig(t *testing.T) {
	if _, err := RunACSLog(Config{N: 5}, nil, 0, 1); err == nil {
		t.Error("rounds=0 accepted")
	}
	if _, err := RunACSLog(Config{N: 5}, nil, 1, 0); err == nil {
		t.Error("batch=0 accepted")
	}
	if _, err := RunACSLog(Config{N: 3}, make([][]types.Value, 9), 1, 1); err == nil {
		t.Error("more queues than processes accepted")
	}
}

// TestEngineACSSessionKind runs ACS sessions through the generic engine
// entry point: decisions decode as acs/result frames and agreement
// holds per session.
func TestEngineACSSessionKind(t *testing.T) {
	const n = 5
	inputs := make([]types.Value, n)
	for i := range inputs {
		inputs[i] = acs.EncodeBatch([]types.Value{types.Value(fmt.Sprintf("SET a%d 1", i))})
	}
	rep, err := Run(Config{N: n, Inflight: 2}, []Request{
		{Kind: KindACS, Inputs: inputs},
		{Kind: KindACS, Inputs: inputs},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Sessions {
		if !s.Agreement || !s.AllDecided {
			t.Fatalf("session %s: agreement=%t allDecided=%t", s.Name, s.Agreement, s.AllDecided)
		}
		result, err := acs.DecodeResult(s.Decision)
		if err != nil {
			t.Fatalf("session %s: %v", s.Name, err)
		}
		if result.Committed.Count() != n {
			t.Errorf("session %s: committed %d, want %d", s.Name, result.Committed.Count(), n)
		}
	}
}
