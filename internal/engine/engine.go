// Package engine runs many agreement instances — BB, weak BA, binary
// strong BA, and SMR log slots — in flight simultaneously over one
// shared simulator run and crypto suite. It is the multi-session
// scheduler behind adaptiveba.RunMany and the pipelined replicated log:
// each instance lives in its own session, inbound traffic is demuxed to
// per-session protocol machines by session ID (proto.Mux), and the
// per-engine report aggregates per-session word/message/round metrics.
//
// # Admission and backpressure
//
// In-flight sessions are bounded by an admission window of Inflight
// concurrent instances. Requests beyond the window wait their turn
// (surfaced as EngineQueued); when a queue bound is set, requests
// beyond window+queue are shed outright rather than blocking the run —
// the transport outbox's drop-not-block policy applied to admission —
// and surfaced as EngineRejects.
//
// # Scheduling and determinism
//
// Synchronous processes cannot observe when *other* processes finish a
// session, so admission cannot react to completions without extra
// agreement traffic. Instead the engine uses a static stride schedule:
// with D the worst-case duration of the longest session and W the
// window, session k begins at tick k·ceil(D/W) on every process. The
// schedule is a pure function of the request index, so all correct
// processes open, serve, and retire every session at identical ticks —
// at most W sessions are ever live, W=1 reduces to strictly serial
// one-at-a-time execution, and because sessions are isolated by session
// ID and machines are tick-offset invariant (their round clocks anchor
// at Begin), per-session decisions and word counts are byte-identical
// at every window size.
package engine

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"adaptiveba/internal/acs"
	"adaptiveba/internal/adversary"
	"adaptiveba/internal/core/bb"
	"adaptiveba/internal/core/strongba"
	"adaptiveba/internal/core/valid"
	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/metrics"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

// Kind selects the protocol an individual session runs.
type Kind string

// Session kinds.
const (
	// KindBB is the paper's adaptive Byzantine Broadcast (Alg. 1+2).
	KindBB Kind = "bb"
	// KindWBA is the paper's adaptive weak BA (Alg. 3+4).
	KindWBA Kind = "wba"
	// KindStrongBA is the paper's binary strong BA (Alg. 5).
	KindStrongBA Kind = "strongba"
	// KindACS is the BKR agreement-on-common-subset round: n concurrent
	// BBs disseminate per-proposer batches, n binary strong-BA votes
	// decide the committed subset (internal/acs).
	KindACS Kind = "acs"
)

// Request describes one agreement instance to run.
type Request struct {
	Kind Kind
	// Sender is the BB designated sender (KindBB only).
	Sender types.ProcessID
	// Value is the BB broadcast value / unanimous agreement input
	// (default "v"; binary protocols use 1).
	Value types.Value
	// Inputs, when non-nil, assigns each process its own input (length
	// N) and overrides Value for the agreement protocols.
	Inputs []types.Value
	// Predicate overrides weak BA's validity predicate (default: accept
	// any non-⊥ value).
	Predicate func(types.Value) bool
}

// Config parameterizes one engine run.
type Config struct {
	N int
	// T overrides the corruption threshold (default floor((n-1)/2)).
	T int
	// F crashes that many processes at tick 0 for the whole run (every
	// session sees the same failure pattern, as one deployment would).
	F int
	// LeaderFault crashes processes 0..F-1 (taking out the default BB
	// sender) instead of the default 1..F.
	LeaderFault bool
	// Adversary, if set, overrides the F-derived crash adversary with a
	// custom one built against the run's tick budget (e.g. a replay
	// adversary whose horizon targets a session retirement edge).
	Adversary func(maxTicks types.Tick) sim.Adversary
	// Inflight bounds the number of concurrently live sessions (the
	// admission window W). 0 admits as many as requested; 1 runs
	// sessions strictly serially.
	Inflight int
	// Scheduler selects the admission/retirement policy (nil = Static,
	// the stride schedule). Eager retires each session the tick after
	// its machine decides and admits the next queued session into the
	// freed slot; per-session decisions and word counts are identical
	// under both policies (see sched.go).
	Scheduler Scheduler
	// MaxQueue bounds how many admitted sessions may wait behind the
	// window: 0 means an unbounded queue (every request is eventually
	// served), a positive value sheds requests beyond Inflight+MaxQueue
	// (drop-not-block; see Report.Rejected), and a negative value sheds
	// everything beyond the window itself.
	MaxQueue int
	// Seed derives the HMAC key ring (ignored with Ed25519).
	Seed int64
	// Ed25519 switches from the fast HMAC scheme to real signatures.
	Ed25519 bool
	// Tag domain-separates this engine's signatures (default "eng");
	// session k signs under Tag + "/sk", so instances cannot replay
	// each other's certificates.
	Tag string
	// Trace, if set, receives the message trace.
	Trace io.Writer
	// TickWorkers bounds the simulator's per-tick fan-out (0 = one per
	// CPU, 1 = serial); output is byte-identical at any value.
	TickWorkers int
	// MeasureBytes additionally encodes every payload through the wire
	// registry to count bytes on the wire (slower; off by default). The
	// word metric weighs every value as one word regardless of size, so
	// byte metering is what makes payload-size effects (inline values vs
	// constant-size anchors) visible in Metrics.Honest.Bytes.
	MeasureBytes bool
	// Halt, if set, is polled every tick; returning true aborts the run
	// with sim.ErrHalted (the cancellation hook for context callers).
	Halt func(types.Tick) bool
	// Recorder, if set, receives the run's metrics (a fresh one is
	// created otherwise).
	Recorder *metrics.Recorder
}

// Errors returned by Run.
var (
	ErrConfig     = errors.New("engine: invalid configuration")
	ErrNoSessions = errors.New("engine: no sessions requested")
)

// SessionResult is the outcome of one session.
type SessionResult struct {
	Index int
	Name  string // session ID on the wire ("s<Index>")
	Kind  Kind
	// Rejected marks sessions shed by the admission policy; all result
	// fields below are zero for them.
	Rejected bool
	// Queued marks sessions that waited behind the in-flight window.
	Queued bool
	// Start is the tick the session began on every process.
	Start types.Tick

	// Decisions maps every honest process to its output for this
	// session (present only if it decided).
	Decisions  map[types.ProcessID]types.Value
	Decision   types.Value
	Agreement  bool
	AllDecided bool

	Words    int64
	Messages int64
	// FallbackProcs counts honest processes that executed A_fallback in
	// this session.
	FallbackProcs int
	// DecisionTick is the latest tick at which an honest process decided
	// this session (absolute; subtract Start for the session's decision
	// latency in δ units).
	DecisionTick types.Tick
	// ByLayer is the session's word breakdown with the session prefix
	// stripped, so it lines up with a solo run of the same protocol
	// ("(root)", "wba", "wba/fallback", ...).
	ByLayer map[string]metrics.Stats
}

// Report is the aggregate outcome of an engine run.
type Report struct {
	N, T, F  int
	Sessions []SessionResult
	Accepted int
	Rejected int
	Queued   int
	// Scheduler names the admission/retirement policy the run used.
	Scheduler string
	// Stride is the tick offset between consecutive session starts
	// under the static schedule (0 under Eager, whose admission ticks
	// are decision-driven; see each session's Start); SessionTicks is
	// the per-session worst-case schedule length D.
	Stride       types.Tick
	SessionTicks types.Tick
	Ticks        types.Tick
	TimedOut     bool
	Metrics      metrics.Report
}

// Fingerprint canonically renders per-session observables — decisions
// of every honest process, word and message counts — for byte-identical
// comparison across window sizes (pipelined vs serial execution).
func (r *Report) Fingerprint() string {
	var b strings.Builder
	for i := range r.Sessions {
		s := &r.Sessions[i]
		if s.Rejected {
			fmt.Fprintf(&b, "%s rejected\n", s.Name)
			continue
		}
		fmt.Fprintf(&b, "%s kind=%s words=%d msgs=%d decided=%t agree=%t:",
			s.Name, s.Kind, s.Words, s.Messages, s.AllDecided, s.Agreement)
		ids := make([]int, 0, len(s.Decisions))
		for id := range s.Decisions {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Fprintf(&b, " %d=%q", id, []byte(s.Decisions[types.ProcessID(id)]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Run executes the requested sessions to completion (or Halt/MaxTicks).
func Run(cfg Config, reqs []Request) (*Report, error) {
	if len(reqs) == 0 {
		return nil, ErrNoSessions
	}
	if cfg.N < 3 {
		return nil, fmt.Errorf("%w: n=%d", ErrConfig, cfg.N)
	}
	var params types.Params
	var err error
	if cfg.T > 0 {
		params, err = types.Custom(cfg.N, cfg.T)
	} else {
		params, err = types.NewParams(cfg.N)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if cfg.F < 0 || cfg.F > params.T {
		return nil, fmt.Errorf("%w: f=%d with t=%d", ErrConfig, cfg.F, params.T)
	}
	tag := cfg.Tag
	if tag == "" {
		tag = "eng"
	}
	sched := cfg.Scheduler
	if sched == nil {
		sched = Static
	}

	var scheme sig.Scheme
	if cfg.Ed25519 {
		scheme, err = sig.NewEd25519Ring(cfg.N, rand.Reader)
	} else {
		scheme, err = sig.NewHMACRing(cfg.N, []byte(fmt.Sprintf("engine-%d", cfg.Seed)))
	}
	if err != nil {
		return nil, fmt.Errorf("engine: scheme: %w", err)
	}
	crypto := proto.NewCrypto(params, scheme, threshold.ModeCompact, []byte("engine-dealer"))

	// Admission: window W, optional queue bound, drop-not-block beyond.
	total := len(reqs)
	window := cfg.Inflight
	if window <= 0 || window > total {
		window = total
	}
	accepted := total
	switch {
	case cfg.MaxQueue > 0:
		if lim := window + cfg.MaxQueue; accepted > lim {
			accepted = lim
		}
	case cfg.MaxQueue < 0:
		accepted = window
	}

	rec := cfg.Recorder
	if rec == nil {
		rec = metrics.NewRecorder()
	}
	for k := window; k < accepted; k++ {
		rec.RecordEngineQueued()
	}
	for k := accepted; k < total; k++ {
		rec.RecordEngineReject()
	}

	b := &builder{params: params, crypto: crypto, tag: tag, reqs: reqs[:accepted],
		earlyACS: sched.reactive()}
	var slotTicks types.Tick
	for k := range b.reqs {
		d, err := b.duration(k)
		if err != nil {
			return nil, err
		}
		if d > slotTicks {
			slotTicks = d
		}
	}
	names := make([]string, accepted)
	for k := range names {
		names[k] = "s" + strconv.Itoa(k)
	}
	var stride types.Tick
	var starts []types.Tick
	var maxTicks types.Tick
	if sched.reactive() {
		maxTicks = sched.budget(accepted, window, slotTicks)
	} else {
		stride = (slotTicks + types.Tick(window) - 1) / types.Tick(window)
		if stride < 1 {
			stride = 1
		}
		starts = make([]types.Tick, accepted)
		for k := range starts {
			starts[k] = types.Tick(k) * stride
		}
		maxTicks = starts[accepted-1] + 2*slotTicks
	}

	procs := make([]*procMachine, cfg.N)
	factory := func(id types.ProcessID) proto.Machine {
		p := &procMachine{
			id:       id,
			build:    b.machine,
			starts:   starts,
			names:    names,
			duration: slotTicks,
			sched:    sched,
			window:   window,
			mux:      proto.NewMux(),
			children: make([]proto.Machine, accepted),
		}
		if sched.reactive() {
			p.admitted = make([]types.Tick, accepted)
			p.live = make([]int, 0, window)
			p.nameIdx = make(map[string]int, accepted)
			for i, nm := range names {
				p.nameIdx[nm] = i
			}
		}
		procs[id] = p
		return p
	}

	var adv sim.Adversary
	if cfg.Adversary != nil {
		adv = cfg.Adversary(maxTicks)
	} else if cfg.F > 0 {
		ids := make([]types.ProcessID, 0, cfg.F)
		start := 1
		if cfg.LeaderFault {
			start = 0
		}
		for i := 0; len(ids) < cfg.F; i++ {
			ids = append(ids, types.ProcessID((start+i)%cfg.N))
		}
		adv = adversary.NewCrash(ids...)
	}

	var sizeOf func(proto.Payload) int
	if cfg.MeasureBytes {
		reg := wire.NewRegistry()
		acs.RegisterWire(reg)
		bb.RegisterWire(reg)
		wba.RegisterWire(reg)
		strongba.RegisterWire(reg)
		sizeOf = func(p proto.Payload) int {
			n, err := reg.SizeOf(p)
			if err != nil {
				return 0
			}
			return n
		}
	}

	res, err := sim.Run(sim.Config{
		Params:    params,
		Crypto:    crypto,
		Factory:   factory,
		SizeOf:    sizeOf,
		Adversary: adv,
		MaxTicks:  maxTicks,
		Recorder:  rec,
		Trace:     cfg.Trace,
		Workers:   cfg.TickWorkers,
		Halt:      cfg.Halt,
	})
	if err != nil {
		return nil, err
	}
	if b.err != nil {
		return nil, b.err
	}

	// Demux losses: messages for already-retired sessions are discarded
	// and counted, never silently dropped. ACS sessions retire their own
	// broadcast children at the vote boundary, so their nested late
	// counts roll up too.
	var late int64
	for _, p := range procs {
		if p == nil || p.mux == nil {
			continue
		}
		late += p.mux.Late() + p.mux.Unrouted()
		// Early-frame buffer losses: frames for never-admitted sessions
		// still waiting at run end, plus any shed by the buffer bound.
		late += p.earlyDrops + int64(len(p.earlyBuf))
		for _, child := range p.children {
			if m, ok := child.(*acs.Machine); ok && m != nil {
				late += m.Late()
			}
		}
	}
	if late > 0 {
		rec.RecordEngineLate(late)
	}

	rep := &Report{
		N: cfg.N, T: params.T, F: cfg.F,
		Sessions:     make([]SessionResult, total),
		Accepted:     accepted,
		Rejected:     total - accepted,
		Queued:       max(0, accepted-window),
		Scheduler:    sched.Name(),
		Stride:       stride,
		SessionTicks: slotTicks,
		Ticks:        res.Ticks,
		TimedOut:     res.TimedOut,
		Metrics:      rec.Snapshot(),
	}
	perLayer := splitLayers(rep.Metrics.ByLayer)
	for k := range rep.Sessions {
		s := &rep.Sessions[k]
		s.Index, s.Name, s.Kind = k, "s"+strconv.Itoa(k), reqs[k].Kind
		if s.Kind == "" {
			s.Kind = KindBB
		}
		if k >= accepted {
			s.Rejected = true
			continue
		}
		s.Queued = k >= window
		if starts != nil {
			s.Start = starts[k]
		} else if len(res.Honest) > 0 {
			// Eager admission ticks are identical on every honest process
			// (decision-driven, lockstep); read them off the first one.
			s.Start = procs[res.Honest[0]].admitted[k]
		}
		s.Decisions = make(map[types.ProcessID]types.Value)
		s.AllDecided = true
		for _, id := range res.Honest {
			m := procs[id].children[k]
			if m == nil {
				s.AllDecided = false
				continue
			}
			if v, ok := m.Output(); ok {
				s.Decisions[id] = v
			} else {
				s.AllDecided = false
			}
			switch mm := m.(type) {
			case *bb.Machine:
				if mm.WBA() != nil && mm.WBA().RanFallback() {
					s.FallbackProcs++
				}
				if dt := mm.DecidedAtTick(); dt > s.DecisionTick {
					s.DecisionTick = dt
				}
			case *wba.Machine:
				if mm.RanFallback() {
					s.FallbackProcs++
				}
				if dt := mm.DecidedAtTick(); dt > s.DecisionTick {
					s.DecisionTick = dt
				}
			case *strongba.Machine:
				if mm.RanFallback() {
					s.FallbackProcs++
				}
				if dt := mm.DecidedAtTick(); dt > s.DecisionTick {
					s.DecisionTick = dt
				}
			case *acs.Machine:
				if mm.RanFallback() {
					s.FallbackProcs++
				}
				if dt := mm.DecidedAtTick(); dt > s.DecisionTick {
					s.DecisionTick = dt
				}
			}
		}
		s.Decision, s.Agreement = agreementOf(s.Decisions, res.Honest)
		if ls := perLayer[s.Name]; ls != nil {
			s.ByLayer = ls
			for _, st := range ls {
				s.Words += st.Words
				s.Messages += st.Messages
			}
		}
	}
	return rep, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// agreementOf mirrors sim.Result.Agreement for one session's decisions.
func agreementOf(dec map[types.ProcessID]types.Value, honest []types.ProcessID) (types.Value, bool) {
	var v types.Value
	first := true
	for _, id := range honest {
		d, ok := dec[id]
		if !ok {
			continue
		}
		if first {
			v, first = d, false
			continue
		}
		if !d.Equal(v) {
			return nil, false
		}
	}
	return v, true
}

// splitLayers groups the engine-wide layer breakdown by leading session
// segment, stripping the prefix so each session's map matches a solo
// run's layers.
func splitLayers(byLayer map[string]metrics.Stats) map[string]map[string]metrics.Stats {
	out := make(map[string]map[string]metrics.Stats)
	for layer, st := range byLayer {
		head, rest := proto.SplitSession(layer)
		if rest == "" {
			rest = "(root)"
		}
		m := out[head]
		if m == nil {
			m = make(map[string]metrics.Stats)
			out[head] = m
		}
		m[rest] = st
	}
	return out
}

// builder constructs per-session protocol machines.
type builder struct {
	params types.Params
	crypto *proto.Crypto
	tag    string
	reqs   []Request
	// earlyACS switches ACS sessions to the early-stopping vote boundary
	// (set when the engine runs the Eager scheduler; acs.Config.Early).
	earlyACS bool
	err      error
}

func (b *builder) sessionTag(k int) string {
	return fmt.Sprintf("%s/s%d", b.tag, k)
}

func (b *builder) inputFor(k int, id types.ProcessID, binary bool) types.Value {
	req := &b.reqs[k]
	if req.Inputs != nil {
		if int(id) < len(req.Inputs) {
			return req.Inputs[id]
		}
		return nil
	}
	if req.Value != nil {
		if binary && !req.Value.IsBinary() {
			return types.One
		}
		return req.Value
	}
	if binary {
		return types.One
	}
	return types.Value("v")
}

// duration returns session k's worst-case schedule length (its
// machine's MaxTicks bound), validating the request.
func (b *builder) duration(k int) (types.Tick, error) {
	req := &b.reqs[k]
	switch req.Kind {
	case KindBB, "":
		return bb.NewMachine(b.bbConfig(k, 0)).MaxTicks(), nil
	case KindWBA:
		return wba.NewMachine(b.wbaConfig(k, 0)).MaxTicks(), nil
	case KindStrongBA:
		m, err := strongba.NewMachine(b.sbaConfig(k, 0))
		if err != nil {
			return 0, fmt.Errorf("%w: session %d: %v", ErrConfig, k, err)
		}
		return m.MaxTicks(), nil
	case KindACS:
		return acs.NewMachine(b.acsConfig(k, 0)).MaxTicks(), nil
	default:
		return 0, fmt.Errorf("%w: session %d: unknown kind %q", ErrConfig, k, req.Kind)
	}
}

// machine builds session k's machine for process id.
func (b *builder) machine(k int, id types.ProcessID) proto.Machine {
	switch b.reqs[k].Kind {
	case KindWBA:
		return wba.NewMachine(b.wbaConfig(k, id))
	case KindStrongBA:
		m, err := strongba.NewMachine(b.sbaConfig(k, id))
		if err != nil {
			if b.err == nil {
				b.err = fmt.Errorf("%w: session %d process %v: %v", ErrConfig, k, id, err)
			}
			m, _ = strongba.NewMachine(b.sbaConfig(k, 0))
		}
		return m
	case KindACS:
		return acs.NewMachine(b.acsConfig(k, id))
	default:
		return bb.NewMachine(b.bbConfig(k, id))
	}
}

func (b *builder) bbConfig(k int, id types.ProcessID) bb.Config {
	req := &b.reqs[k]
	value := req.Value
	if value == nil {
		value = types.Value("v")
	}
	return bb.Config{
		Params: b.params, Crypto: b.crypto, ID: id,
		Sender: req.Sender, Input: value, Tag: b.sessionTag(k),
	}
}

func (b *builder) wbaConfig(k int, id types.ProcessID) wba.Config {
	req := &b.reqs[k]
	pred := valid.NonBottom()
	if req.Predicate != nil {
		pred = valid.Func{PredicateName: "custom", Fn: req.Predicate}
	}
	return wba.Config{
		Params: b.params, Crypto: b.crypto, ID: id,
		Input: b.inputFor(k, id, false), Predicate: pred,
		Tag: b.sessionTag(k),
	}
}

func (b *builder) sbaConfig(k int, id types.ProcessID) strongba.Config {
	return strongba.Config{
		Params: b.params, Crypto: b.crypto, ID: id,
		Input: b.inputFor(k, id, true), Tag: b.sessionTag(k),
	}
}

// acsConfig assigns process id its proposed batch via Request.Inputs
// (already EncodeBatch-framed by the caller); nil proposes an empty
// batch.
func (b *builder) acsConfig(k int, id types.ProcessID) acs.Config {
	req := &b.reqs[k]
	var input types.Value
	if req.Inputs != nil && int(id) < len(req.Inputs) {
		input = req.Inputs[id]
	}
	return acs.Config{
		Params: b.params, Crypto: b.crypto, ID: id,
		Input: input, Tag: b.sessionTag(k), Early: b.earlyACS,
	}
}

// earlyBufMax bounds the eager policy's per-process buffer of frames
// addressed to not-yet-admitted sessions; overflow sheds the frame
// (counted as late, drop-not-block applied to the receive side).
const earlyBufMax = 4096

// procMachine is one process's root machine: a Mux of per-session
// protocol machines driven by the configured scheduling policy. Under
// Static, admission, service, and retirement are pure functions of the
// tick; under Eager they are functions of locally observed decisions,
// which crash-fault simultaneity makes identical on every correct
// process — either way, all correct processes transition in lockstep.
type procMachine struct {
	id       types.ProcessID
	build    func(k int, id types.ProcessID) proto.Machine
	starts   []types.Tick // static stride starts (nil under Eager)
	names    []string
	duration types.Tick
	sched    Scheduler // nil = Static
	window   int       // max live sessions (Eager)

	mux      *proto.Mux
	children []proto.Machine // retained past retirement for result extraction
	next     int             // next session index to admit
	retired  int             // next session index to retire (static FIFO)
	outs     []proto.Outgoing

	// Eager state: per-session admission ticks, the live set in
	// admission order, the name→index table for early-frame
	// classification, and the buffered frames for sessions that have
	// not been admitted yet (replayed through the Sub's pre-Begin
	// buffer at admission; never silently dropped).
	admitted   []types.Tick
	live       []int
	nameIdx    map[string]int
	earlyBuf   []proto.Incoming
	earlyKeep  []proto.Incoming
	earlyMine  []proto.Incoming
	inboxKeep  []proto.Incoming
	earlyDrops int64
}

var _ proto.Machine = (*procMachine)(nil)

func (p *procMachine) Begin(now types.Tick) []proto.Outgoing {
	if p.sched == nil {
		p.sched = Static
	}
	if p.sched.reactive() {
		if p.admitted == nil {
			p.admitted = make([]types.Tick, len(p.names))
		}
		return p.admitEager(now, nil)
	}
	return p.admit(now, nil)
}

// admit opens every session scheduled at now, appending its Begin
// traffic after prior (already wrapped and mux-owned) outputs.
func (p *procMachine) admit(now types.Tick, prior []proto.Outgoing) []proto.Outgoing {
	if p.next >= len(p.starts) || p.starts[p.next] != now {
		return prior
	}
	outs := append(p.outs[:0], prior...)
	for p.next < len(p.starts) && p.starts[p.next] == now {
		k := p.next
		p.next++
		m := p.build(k, p.id)
		p.children[k] = m
		outs = append(outs, p.mux.Add(p.names[k], m).Begin(now)...)
	}
	p.outs = outs
	return outs
}

func (p *procMachine) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	if p.sched != nil && p.sched.reactive() {
		return p.tickEager(now, inbox)
	}
	// Retire sessions whose schedule has elapsed: machines are done (or
	// out of budget), buckets return to the pool, stragglers count as
	// late. Newly admitted sessions Begin at now and are first stepped
	// at now+1 — identical to a solo run beginning at that tick.
	for p.retired < p.next && now >= p.starts[p.retired]+p.duration {
		p.mux.Retire(p.names[p.retired])
		p.retired++
	}
	outs := p.mux.Tick(now, inbox)
	return p.admit(now, outs)
}

// tickEager is the decision-driven schedule: vacate slots whose machine
// decided by the previous tick (or hit the worst-case deadline), step
// the live set, then admit queued sessions into the freed slots. Frames
// addressed to sessions not yet admitted are buffered, not shed.
func (p *procMachine) tickEager(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	if len(p.live) > 0 {
		keep := p.live[:0]
		for _, k := range p.live {
			if p.sched.retireNow(p.children[k], p.admitted[k], p.duration, now) {
				p.mux.Retire(p.names[k])
			} else {
				keep = append(keep, k)
			}
		}
		p.live = keep
	}
	outs := p.mux.Tick(now, p.interceptEarly(inbox))
	return p.admitEager(now, outs)
}

// interceptEarly pulls frames addressed to not-yet-admitted sessions
// out of the inbox into the early buffer (bounded by earlyBufMax;
// overflow counts as late). The common no-early-frame case returns the
// inbox untouched.
func (p *procMachine) interceptEarly(inbox []proto.Incoming) []proto.Incoming {
	if p.next >= len(p.names) {
		return inbox
	}
	early := false
	for i := range inbox {
		head, _ := proto.SplitSession(inbox[i].Session)
		if k, ok := p.nameIdx[head]; ok && k >= p.next {
			early = true
			break
		}
	}
	if !early {
		return inbox
	}
	keep := p.inboxKeep[:0]
	for _, in := range inbox {
		head, _ := proto.SplitSession(in.Session)
		if k, ok := p.nameIdx[head]; ok && k >= p.next {
			if len(p.earlyBuf) >= earlyBufMax {
				p.earlyDrops++
			} else {
				p.earlyBuf = append(p.earlyBuf, in)
			}
			continue
		}
		keep = append(keep, in)
	}
	p.inboxKeep = keep
	return keep
}

// admitEager opens queued sessions while slots are free, handing each
// new Sub its buffered pre-admission frames (replayed on its first
// post-Begin tick, exactly as a late-joining solo run would see them).
func (p *procMachine) admitEager(now types.Tick, prior []proto.Outgoing) []proto.Outgoing {
	if p.next >= len(p.names) || len(p.live) >= p.window {
		return prior
	}
	outs := append(p.outs[:0], prior...)
	for p.next < len(p.names) && len(p.live) < p.window {
		k := p.next
		p.next++
		p.admitted[k] = now
		p.live = append(p.live, k)
		m := p.build(k, p.id)
		p.children[k] = m
		sub := p.mux.Add(p.names[k], m)
		p.replayEarly(sub, k, now)
		outs = append(outs, sub.Begin(now)...)
	}
	p.outs = outs
	return outs
}

// replayEarly moves session k's buffered frames into its Sub before
// Begin, compacting the remainder in place.
func (p *procMachine) replayEarly(sub *proto.Sub, k int, now types.Tick) {
	if len(p.earlyBuf) == 0 {
		return
	}
	name := p.names[k]
	keep := p.earlyKeep[:0]
	mine := p.earlyMine[:0]
	for _, in := range p.earlyBuf {
		head, rest := proto.SplitSession(in.Session)
		if head != name {
			keep = append(keep, in)
			continue
		}
		in.Session = rest
		mine = append(mine, in)
	}
	if len(mine) > 0 {
		sub.Tick(now, mine) // pre-Begin: the Sub buffers and replays
	}
	p.earlyBuf, p.earlyKeep, p.earlyMine = keep, p.earlyBuf[:0], mine[:0]
}

// Output canonically encodes every session's (decided, value) pair, so
// sim-level agreement checks cover the whole engine run at once.
func (p *procMachine) Output() (types.Value, bool) {
	if !p.Done() {
		return nil, false
	}
	w := wire.NewWriter()
	w.PutInt(len(p.children))
	for _, m := range p.children {
		v, ok := m.Output()
		if ok {
			w.PutInt(1)
			w.PutValue(v)
		} else {
			w.PutInt(0)
			w.PutValue(nil)
		}
	}
	return types.Value(w.Bytes()), true
}

func (p *procMachine) Done() bool {
	if p.sched != nil && p.sched.reactive() {
		// Eager: every session admitted and retired. Retirement happens
		// only after a decision (or the worst-case deadline), so the run
		// quiesces the tick after the last session decides.
		return p.next == len(p.names) && len(p.live) == 0 && p.mux.Done()
	}
	return p.next == len(p.starts) && p.mux.Done()
}
