package engine

import (
	"fmt"
	"testing"

	"adaptiveba/internal/acs"
	"adaptiveba/internal/adversary"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// TestSchedulerByName pins the CLI name mapping.
func TestSchedulerByName(t *testing.T) {
	for name, want := range map[string]Scheduler{"": Static, "static": Static, "eager": Eager} {
		got, err := SchedulerByName(name)
		if err != nil || got != want {
			t.Errorf("SchedulerByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := SchedulerByName("nope"); err == nil {
		t.Error("unknown scheduler name accepted")
	}
}

// TestEagerMatchesStatic is the A/B determinism contract behind the
// eager policy: across the fault grid and window sizes, per-session
// decisions, word counts, and message counts (the engine fingerprint)
// are byte-identical to the static stride schedule, no frame goes
// late — and at f=0 the decision-driven schedule finishes the run in
// strictly fewer ticks.
func TestEagerMatchesStatic(t *testing.T) {
	const n, sessions = 5, 16
	for _, f := range []struct {
		f      int
		leader bool
	}{{0, false}, {1, false}, {2, true}} {
		t.Run(fmt.Sprintf("f=%d,leader=%t", f.f, f.leader), func(t *testing.T) {
			reqs := mixedRequests(n, sessions)
			static, err := Run(Config{N: n, F: f.f, LeaderFault: f.leader, Inflight: 4, Seed: 7}, reqs)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 4, 16} {
				rep, err := Run(Config{
					N: n, F: f.f, LeaderFault: f.leader, Inflight: w, Seed: 7,
					Scheduler: Eager,
				}, reqs)
				if err != nil {
					t.Fatalf("eager W=%d: %v", w, err)
				}
				if rep.TimedOut {
					t.Fatalf("eager W=%d: timed out at %d ticks", w, rep.Ticks)
				}
				if rep.Scheduler != "eager" {
					t.Fatalf("eager W=%d: report names scheduler %q", w, rep.Scheduler)
				}
				if rep.Metrics.EngineLate != 0 {
					t.Errorf("eager W=%d: %d late messages", w, rep.Metrics.EngineLate)
				}
				if got, want := rep.Fingerprint(), static.Fingerprint(); got != want {
					t.Errorf("eager W=%d diverges from static:\n--- static ---\n%s--- eager ---\n%s", w, want, got)
				}
				if f.f == 0 && w > 1 && rep.Ticks >= static.Ticks {
					t.Errorf("eager W=%d: %d ticks, static W=4 took %d — no early-retirement gain", w, rep.Ticks, static.Ticks)
				}
				t.Logf("W=%d: eager %d ticks (static W=4: %d)", w, rep.Ticks, static.Ticks)
			}
		})
	}
}

// TestEagerACSMatchesStatic extends the A/B contract to ACS sessions,
// where Eager additionally switches the vote boundary to early-stopping
// (acs.Config.Early): committed subsets and word counts must match the
// conservative boundary exactly, in strictly fewer ticks at f=0.
func TestEagerACSMatchesStatic(t *testing.T) {
	const n, sessions = 5, 4
	inputs := make([]types.Value, n)
	for i := range inputs {
		inputs[i] = acs.EncodeBatch([]types.Value{types.Value(fmt.Sprintf("SET a%d 1", i))})
	}
	reqs := make([]Request, sessions)
	for k := range reqs {
		reqs[k] = Request{Kind: KindACS, Inputs: inputs}
	}
	for _, f := range []int{0, 2} {
		t.Run(fmt.Sprintf("f=%d", f), func(t *testing.T) {
			static, err := Run(Config{N: n, F: f, Inflight: 2, Seed: 7}, reqs)
			if err != nil {
				t.Fatal(err)
			}
			eager, err := Run(Config{N: n, F: f, Inflight: 2, Seed: 7, Scheduler: Eager}, reqs)
			if err != nil {
				t.Fatal(err)
			}
			if eager.TimedOut {
				t.Fatalf("eager timed out at %d ticks", eager.Ticks)
			}
			if eager.Metrics.EngineLate != 0 {
				t.Errorf("eager: %d late messages", eager.Metrics.EngineLate)
			}
			if got, want := eager.Fingerprint(), static.Fingerprint(); got != want {
				t.Errorf("eager ACS diverges from static:\n--- static ---\n%s--- eager ---\n%s", want, got)
			}
			if eager.Ticks >= static.Ticks {
				t.Errorf("eager: %d ticks, static took %d — early vote boundary bought nothing", eager.Ticks, static.Ticks)
			}
			t.Logf("f=%d: eager %d ticks vs static %d", f, eager.Ticks, static.Ticks)
		})
	}
}

// TestEagerLateAccounting drives the replay adversary against eagerly
// retired sessions: stale traffic re-sent after decision-driven
// retirement must surface in EngineLate — including the ACS machines'
// nested broadcast children — never be silently dropped, and the run
// must still converge deterministically across tick-worker counts.
func TestEagerLateAccounting(t *testing.T) {
	const n = 5
	queues := make([][]types.Value, n)
	for i := range queues {
		queues[i] = append(queues[i], types.Value(fmt.Sprintf("SET k%d p%d", i, i)))
	}
	var serialFP string
	for _, workers := range []int{1, 4} {
		rep, err := RunACSLog(Config{
			N:           n,
			TickWorkers: workers,
			Scheduler:   Eager,
			Adversary: func(maxTicks types.Tick) sim.Adversary {
				return adversary.NewReplay(7, maxTicks, 1)
			},
		}, queues, 1, 1)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !rep.Converged {
			t.Fatalf("workers=%d: round did not converge", workers)
		}
		if late := rep.Engine.Metrics.EngineLate; late == 0 {
			t.Errorf("workers=%d: replayed traffic did not surface in EngineLate", workers)
		}
		fp := rep.Engine.Fingerprint()
		if workers == 1 {
			serialFP = fp
		} else if fp != serialFP {
			t.Errorf("workers=%d: fingerprint differs from serial run", workers)
		}
	}
}

// recordMachine decides at a fixed tick and records every frame it was
// handed — the probe for early-frame delivery.
type recordMachine struct {
	decideAt types.Tick
	got      []proto.Incoming
	decided  bool
}

func (r *recordMachine) Begin(types.Tick) []proto.Outgoing { return nil }
func (r *recordMachine) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	r.got = append(r.got, inbox...)
	if now >= r.decideAt {
		r.decided = true
	}
	return nil
}
func (r *recordMachine) Output() (types.Value, bool) {
	if r.decided {
		return types.Value("d"), true
	}
	return nil, false
}
func (r *recordMachine) Done() bool { return r.decided }

// eagerProc builds a bare eager procMachine for scheduler unit tests.
func eagerProc(names []string, build func(k int, id types.ProcessID) proto.Machine, window int) *procMachine {
	p := &procMachine{
		build:    build,
		names:    names,
		duration: 1 << 30,
		sched:    Eager,
		window:   window,
		mux:      proto.NewMux(),
		children: make([]proto.Machine, len(names)),
		admitted: make([]types.Tick, len(names)),
		live:     make([]int, 0, window),
		nameIdx:  make(map[string]int, len(names)),
	}
	for i, nm := range names {
		p.nameIdx[nm] = i
	}
	return p
}

// TestEagerEarlyFrameBuffer pins the not-yet-admitted path: a frame for
// a queued session is buffered (not shed, not counted unrouted) and
// replayed into the session's machine on its first tick after eager
// admission — while frames for an eagerly retired session count late.
func TestEagerEarlyFrameBuffer(t *testing.T) {
	machines := []*recordMachine{{decideAt: 2}, {decideAt: 1 << 30}}
	p := eagerProc([]string{"s0", "s1"},
		func(k int, _ types.ProcessID) proto.Machine { return machines[k] }, 1)
	p.Begin(0)
	if p.next != 1 || len(p.live) != 1 {
		t.Fatalf("window-1 Begin admitted %d sessions, %d live", p.next, len(p.live))
	}
	// Tick 1: a frame for queued s1 arrives early — buffered.
	p.Tick(1, []proto.Incoming{{From: 3, Session: "s1/x", Payload: nil}})
	if got := p.mux.Unrouted(); got != 0 {
		t.Fatalf("early frame counted unrouted (%d)", got)
	}
	if len(p.earlyBuf) != 1 {
		t.Fatalf("early buffer holds %d frames, want 1", len(p.earlyBuf))
	}
	// Tick 2: s0 decides. Tick 3: s0 retires, s1 admitted, buffer drains.
	p.Tick(2, nil)
	p.Tick(3, nil)
	if p.next != 2 || len(p.earlyBuf) != 0 {
		t.Fatalf("after admission: next=%d earlyBuf=%d, want 2/0", p.next, len(p.earlyBuf))
	}
	// Tick 4: s1's first step replays the buffered frame (session prefix
	// stripped); a stale frame for retired s0 counts late.
	p.Tick(4, []proto.Incoming{{From: 2, Session: "s0/y", Payload: nil}})
	if len(machines[1].got) != 1 || machines[1].got[0].Session != "x" || machines[1].got[0].From != 3 {
		t.Errorf("s1 received %v, want the replayed early frame", machines[1].got)
	}
	if got := p.mux.Late(); got != 1 {
		t.Errorf("stale frame for retired s0: late=%d, want 1", got)
	}
	if p.earlyDrops != 0 {
		t.Errorf("earlyDrops=%d, want 0", p.earlyDrops)
	}
}

// TestEagerEarlyFrameOverflow pins the drop-not-block bound on the
// early buffer: beyond earlyBufMax frames, the overflow is counted (and
// later rolled into EngineLate), never silently lost.
func TestEagerEarlyFrameOverflow(t *testing.T) {
	p := eagerProc([]string{"s0", "s1"},
		func(int, types.ProcessID) proto.Machine { return &recordMachine{decideAt: 1 << 30} }, 1)
	p.Begin(0)
	inbox := make([]proto.Incoming, 64)
	for i := range inbox {
		inbox[i] = proto.Incoming{From: 1, Session: "s1/x"}
	}
	for now := types.Tick(1); len(p.earlyBuf) < earlyBufMax; now++ {
		p.Tick(now, inbox)
	}
	p.Tick(1<<20, inbox)
	if p.earlyDrops != int64(len(inbox)) {
		t.Errorf("earlyDrops=%d, want %d", p.earlyDrops, len(inbox))
	}
}

// TestEagerSteadyStateAllocs is the scheduler-hot-path alloc guard for
// the eager policy: with the window full and no decisions pending, a
// tick — retirement scan, early-frame classification, demux, admission
// check — allocates nothing. CI runs this next to the static guard.
func TestEagerSteadyStateAllocs(t *testing.T) {
	p := eagerProc([]string{"s0", "s1", "s2", "s3", "s4", "s5"},
		func(int, types.ProcessID) proto.Machine { return idleMachine{} }, 4)
	p.Begin(0)
	var now types.Tick
	for now = 1; now < 10; now++ {
		p.Tick(now, nil)
	}
	inbox := []proto.Incoming{
		{From: 1, Session: "s0", Payload: nil},
		{From: 2, Session: "s3", Payload: nil},
	}
	allocs := testing.AllocsPerRun(100, func() {
		now++
		p.Tick(now, inbox)
	})
	if allocs > 0 {
		t.Errorf("steady-state eager tick allocates %.1f/op, want 0", allocs)
	}
}
