// Package sim is a deterministic, tick-granular simulator of the paper's
// model (Section 2): a static set Π of n processes, reliable authenticated
// links, a synchronous network with delay bound δ (= one tick), and an
// adaptive adversary that corrupts up to t processes.
//
// Honest processes are proto.Machines. Corrupted processes are controlled
// by an Adversary, which observes the traffic addressed to them, sees all
// honest messages of the current tick before acting (a rushing adversary),
// and may send arbitrary messages from corrupted identities. The simulator
// enforces the reliable-link rule: the adversary cannot forge the sender
// identity of a correct process.
//
// Every honest message send is charged to a metrics.Recorder using the
// paper's word-cost model; self-addressed deliveries are free.
//
// # Concurrency model
//
// Within one tick, honest machines share no mutable state (they interact
// only through messages, which the engine delivers between ticks), so the
// engine fans their Begin/Tick calls out across a bounded worker pool
// (Config.Workers). Each machine's outputs land in a per-machine slot and
// are joined in ID order afterwards, so the observable schedule — honest
// traffic order, the rushing adversary's view, metrics, traces — is
// byte-identical at every worker count, including 1, which reduces to the
// strictly serial engine. All engine-side observation (adversary calls,
// recording, tracing, OnSend) happens post-join on the engine goroutine.
package sim

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"adaptiveba/internal/metrics"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

// Message is an addressed payload traveling through the simulated network.
type Message struct {
	From    types.ProcessID
	To      types.ProcessID
	Session string
	Payload proto.Payload
}

// Corruption schedules the takeover of one process at a given tick.
// At = 0 corrupts the process before the run starts.
type Corruption struct {
	ID types.ProcessID
	At types.Tick
}

// Env is the adversary's view of the trusted setup.
type Env struct {
	Params types.Params
	Crypto *proto.Crypto
}

// Adversary drives the corrupted processes. Implementations live in
// internal/adversary; a nil Adversary in the Config means a failure-free
// run (f = 0).
type Adversary interface {
	// Init is called once before the run with the setup artifacts.
	Init(env Env)
	// Corruptions returns the corruption schedule. The engine validates it
	// against Params (at most t distinct processes).
	Corruptions() []Corruption
	// Observe delivers the messages addressed to corrupted process `to`
	// at tick now (the adversary's inbox). The slice is reused by the
	// engine after the call returns; implementations that keep messages
	// must copy the elements (not retain the slice).
	Observe(now types.Tick, to types.ProcessID, inbox []proto.Incoming)
	// Act runs after all honest machines produced their tick-now sends
	// (rushing adversary: honestTraffic is this tick's honest output).
	// The returned messages must originate from corrupted identities and
	// are delivered at now+1, like all other traffic. honestTraffic is
	// reused by the engine after the call returns; copy elements to keep
	// them.
	Act(now types.Tick, honestTraffic []Message) []Message
	// Quiescent reports that the adversary has no future actions pending;
	// the engine only halts early when honest machines are done, no
	// messages are in flight, and the adversary is quiescent.
	Quiescent(now types.Tick) bool
}

// Config describes one run.
type Config struct {
	Params  types.Params
	Crypto  *proto.Crypto
	Factory func(id types.ProcessID) proto.Machine

	Adversary Adversary         // nil for failure-free runs
	MaxTicks  types.Tick        // hard stop; DefaultMaxTicks if 0
	Recorder  *metrics.Recorder // optional; a fresh one is created if nil
	Trace     io.Writer         // optional message trace
	// SizeOf, if set, reports each payload's encoded byte size for the
	// recorder's byte counters (the harness wires the wire registry in).
	// The engine memoizes it per boxed payload instance, so an n-way
	// broadcast of one payload is measured once, not n times.
	SizeOf func(proto.Payload) int
	// ShuffleSeed, if non-zero, deterministically permutes every inbox
	// before delivery: within one tick the adversary controls arrival
	// order, so correct protocols must be insensitive to it. Tests sweep
	// seeds to catch accidental order dependence.
	ShuffleSeed int64
	// OnSend, if set, observes every message (honest and Byzantine) as it
	// is sent, with the sending tick — structured tracing for tools.
	OnSend func(now types.Tick, m Message, honest bool)
	// Workers bounds the per-tick fan-out of honest machine stepping:
	// 0 derives one worker per CPU (GOMAXPROCS), 1 steps strictly
	// serially in the engine's goroutine. Honest machines share no
	// mutable state, so any worker count produces a byte-identical
	// observable schedule (traffic order, adversary view, metrics,
	// traces); the knob trades cores for wall clock only.
	Workers int
	// Halt, if set, is polled at the start of every tick; returning true
	// aborts the run with ErrHalted before any machine is stepped at that
	// tick. This is the cancellation hook: the run stays fully
	// synchronous (no goroutines outlive Run), so a caller-side
	// context.Done check here makes cancellation prompt and leak-free.
	Halt func(now types.Tick) bool
}

// DefaultMaxTicks bounds runs whose configuration forgot a limit.
const DefaultMaxTicks types.Tick = 100_000

// Result is the outcome of a run.
type Result struct {
	// Decisions maps every process that stayed honest for the whole run to
	// its output (present only if it decided).
	Decisions map[types.ProcessID]types.Value
	// Honest lists the processes that were never corrupted, ascending.
	Honest []types.ProcessID
	// Corrupted lists the corrupted processes, ascending.
	Corrupted []types.ProcessID
	// Ticks is the tick at which the run stopped.
	Ticks types.Tick
	// TimedOut reports the run hit MaxTicks before quiescing.
	TimedOut bool
	// Report is the metrics snapshot.
	Report metrics.Report
}

// F returns the number of actually corrupted processes in the run.
func (r *Result) F() int { return len(r.Corrupted) }

// AllDecided reports whether every process that remained honest decided.
func (r *Result) AllDecided() bool {
	for _, id := range r.Honest {
		if _, ok := r.Decisions[id]; !ok {
			return false
		}
	}
	return true
}

// Agreement reports whether all honest decisions are identical, returning
// the common value. Vacuously true (with ⊥) when nothing was decided.
func (r *Result) Agreement() (types.Value, bool) {
	var v types.Value
	first := true
	for _, id := range r.Honest {
		d, ok := r.Decisions[id]
		if !ok {
			continue
		}
		if first {
			v, first = d, false
			continue
		}
		if !d.Equal(v) {
			return nil, false
		}
	}
	return v, true
}

// Errors reported by Run.
var (
	ErrConfig     = errors.New("sim: invalid configuration")
	ErrForgery    = errors.New("sim: adversary sent from a non-corrupted identity")
	ErrCorruption = errors.New("sim: invalid corruption schedule")
	ErrHalted     = errors.New("sim: run halted")
)

// Run executes the configured run to quiescence or MaxTicks.
func Run(cfg Config) (*Result, error) {
	if !cfg.Params.Valid() {
		return nil, fmt.Errorf("%w: bad params %+v", ErrConfig, cfg.Params)
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("%w: nil factory", ErrConfig)
	}
	if cfg.Crypto == nil {
		return nil, fmt.Errorf("%w: nil crypto", ErrConfig)
	}
	maxTicks := cfg.MaxTicks
	if maxTicks <= 0 {
		maxTicks = DefaultMaxTicks
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = metrics.NewRecorder()
	}

	n := cfg.Params.N
	corruptAt := make(map[types.ProcessID]types.Tick)
	var schedule []Corruption
	if cfg.Adversary != nil {
		cfg.Adversary.Init(Env{Params: cfg.Params, Crypto: cfg.Crypto})
		for _, c := range cfg.Adversary.Corruptions() {
			if err := cfg.Params.CheckProcess(c.ID); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorruption, err)
			}
			if at, dup := corruptAt[c.ID]; dup {
				return nil, fmt.Errorf("%w: %v corrupted twice (ticks %d, %d)", ErrCorruption, c.ID, at, c.At)
			}
			if c.At < 0 {
				return nil, fmt.Errorf("%w: negative tick for %v", ErrCorruption, c.ID)
			}
			corruptAt[c.ID] = c.At
			schedule = append(schedule, c)
		}
		if len(corruptAt) > cfg.Params.T {
			return nil, fmt.Errorf("%w: %d corruptions exceed t=%d", ErrCorruption, len(corruptAt), cfg.Params.T)
		}
		// The tick loop consumes the schedule as a sorted stream with a
		// cursor, so applying corruptions is O(1) per tick instead of a
		// map walk — the walk was measurable at f ≈ t ≈ n/2, n = 4096.
		sort.Slice(schedule, func(a, b int) bool {
			if schedule[a].At != schedule[b].At {
				return schedule[a].At < schedule[b].At
			}
			return schedule[a].ID < schedule[b].ID
		})
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	e := &engine{
		cfg:       cfg,
		rec:       rec,
		machines:  make([]proto.Machine, n),
		corrupted: make([]bool, n),
		schedule:  schedule,
		workers:   workers,
		inboxOff:  make([]int32, n+1),
		counts:    make([]int32, n),
		outs:      make([][]proto.Outgoing, n),
		shufflers: make([]*shuffler, workers),
	}
	for w := range e.shufflers {
		e.shufflers[w] = newShuffler()
	}
	for i := 0; i < n; i++ {
		id := types.ProcessID(i)
		if at, ok := corruptAt[id]; ok && at == 0 {
			e.corrupted[i] = true
			continue
		}
		e.machines[i] = cfg.Factory(id)
	}
	rec.DenseProcs(n)

	return e.run(maxTicks)
}

type engine struct {
	cfg       Config
	rec       *metrics.Recorder
	machines  []proto.Machine
	corrupted []bool
	workers   int

	// schedule is the corruption schedule sorted by (At, ID); nextCorrupt
	// is the cursor of the first entry not yet applied. Together they make
	// applyCorruptions O(1) amortized instead of a per-tick map walk.
	schedule    []Corruption
	nextCorrupt int

	// pending holds the in-flight traffic due at the current tick. Every
	// message is delivered exactly one tick after it is sent, so a single
	// buffer suffices: it is drained into the inbox arena at tick start
	// and its backing array is immediately recycled for the tick's new
	// sends.
	pending []Message

	// Dense delivery state. Instead of n per-recipient append buckets
	// (n grow-able slices, n headers touched every tick), the tick's
	// in-flight messages are scattered into one flat arena grouped by
	// recipient: machine i's inbox is arena[inboxOff[i]:inboxOff[i+1]].
	// The scatter is a counting sort on the recipient — stable, so each
	// inbox preserves exactly the per-recipient arrival order the
	// append-bucket engine produced — and it shards across workers when
	// the tick is heavy (see deliver).
	arena    []proto.Incoming
	inboxOff []int32 // n+1 prefix offsets into arena
	counts   []int32 // per-recipient counts, doubling as scatter cursors
	// chunkCounts[w][r] is worker w's count of chunk-local messages for
	// recipient r during sharded delivery, then w's scatter cursor for r
	// after the merge. Allocated on first sharded tick.
	chunkCounts [][]int32

	// Per-tick scratch, sized once from n and reused for the whole run so
	// the steady-state tick loop allocates nothing.
	outs      [][]proto.Outgoing // per-machine step outputs, joined in ID order
	shufflers []*shuffler        // one reusable shuffle source per worker
}

// inbox returns machine i's delivery view for the current tick. The
// capacity is pinned to the slice length so a misbehaving machine cannot
// append into its neighbor's region of the shared arena.
func (e *engine) inbox(i int) []proto.Incoming {
	lo, hi := e.inboxOff[i], e.inboxOff[i+1]
	return e.arena[lo:hi:hi]
}

func (e *engine) run(maxTicks types.Tick) (*Result, error) {
	n := e.cfg.Params.N
	var now types.Tick
	timedOut := true

	for now = 0; now <= maxTicks; now++ {
		if e.cfg.Halt != nil && e.cfg.Halt(now) {
			return nil, fmt.Errorf("%w at tick %d", ErrHalted, now)
		}
		e.applyCorruptions(now)

		// Deliver: scatter the in-flight traffic into the inbox arena.
		e.deliver()

		// Step: shuffle inboxes and run the honest machines, fanned out
		// across the worker pool; outputs land per-machine in e.outs.
		e.step(now)

		// Join: concatenate honest outputs in ID order (the canonical
		// honest traffic order) into the recycled pending buffer, and
		// validate recipients in the same order the serial engine did.
		traffic := e.pending[:0]
		for i := 0; i < n; i++ {
			if e.corrupted[i] {
				continue
			}
			id := types.ProcessID(i)
			for _, o := range e.outs[i] {
				if err := e.cfg.Params.CheckProcess(o.To); err != nil {
					return nil, fmt.Errorf("sim: %v sent to invalid recipient: %w", id, err)
				}
				traffic = append(traffic, Message{
					From: id, To: o.To, Session: o.Session, Payload: o.Payload,
				})
			}
			e.outs[i] = nil
		}
		honestTraffic := traffic

		// Adversary observes corrupted inboxes, then acts with full
		// knowledge of this tick's honest traffic (rushing).
		var advTraffic []Message
		if e.cfg.Adversary != nil {
			for i := 0; i < n; i++ {
				if e.corrupted[i] {
					if box := e.inbox(i); len(box) > 0 {
						e.cfg.Adversary.Observe(now, types.ProcessID(i), box)
					}
				}
			}
			advTraffic = e.cfg.Adversary.Act(now, honestTraffic)
			for _, m := range advTraffic {
				if err := e.cfg.Params.CheckProcess(m.To); err != nil {
					return nil, fmt.Errorf("sim: adversary recipient: %w", err)
				}
				if err := e.cfg.Params.CheckProcess(m.From); err != nil || !e.corrupted[m.From] {
					return nil, fmt.Errorf("%w: from %v at tick %d", ErrForgery, m.From, now)
				}
			}
		}

		e.record(honestTraffic, true, now)
		e.record(advTraffic, false, now)
		e.pending = append(traffic, advTraffic...)

		if e.quiesced(now) {
			timedOut = false
			break
		}
	}

	res := &Result{
		Decisions: make(map[types.ProcessID]types.Value),
		Ticks:     now,
		TimedOut:  timedOut,
	}
	// Honest and Corrupted are appended in ascending ID order by
	// construction of this loop; no sort is needed.
	for i := 0; i < n; i++ {
		id := types.ProcessID(i)
		if e.corrupted[i] {
			res.Corrupted = append(res.Corrupted, id)
			continue
		}
		res.Honest = append(res.Honest, id)
		if v, ok := e.machines[i].Output(); ok {
			res.Decisions[id] = v
		}
	}
	if st, ok := e.cfg.Crypto.VerifyCacheStats(); ok {
		e.rec.SetCacheStats(st.Hits, st.Misses, st.InflightWaits)
	}
	e.rec.SetTicks(now)
	res.Report = e.rec.Snapshot()
	return res, nil
}

// step shuffles every inbox and runs each honest machine's Begin/Tick,
// filling e.outs. With one worker it runs serially in the engine's
// goroutine (the exact pre-parallel path); otherwise the machine indices
// are work-stolen by e.workers goroutines. Machine panics are re-raised
// on the engine goroutine.
func (e *engine) step(now types.Tick) {
	n := e.cfg.Params.N
	if e.workers == 1 {
		for i := 0; i < n; i++ {
			e.stepOne(now, i, e.shufflers[0])
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(sh *shuffler) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				e.stepOne(now, i, sh)
			}
		}(e.shufflers[w])
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// stepOne shuffles machine i's inbox and, if i is honest, steps it. The
// shuffle covers corrupted inboxes too: the adversary observes them in
// permuted order, exactly as the serial engine delivered them.
func (e *engine) stepOne(now types.Tick, i int, sh *shuffler) {
	box := e.inbox(i)
	if e.cfg.ShuffleSeed != 0 {
		sh.shuffle(e.cfg.ShuffleSeed, now, types.ProcessID(i), box)
	}
	if e.corrupted[i] {
		return
	}
	if now == 0 {
		e.outs[i] = e.machines[i].Begin(0)
	} else {
		e.outs[i] = e.machines[i].Tick(now, box)
	}
}

// shuffler deterministically permutes inboxes from (seed, tick, id). The
// source is allocated once and re-seeded per inbox, which yields the
// exact permutation rand.New(rand.NewSource(k)) would — without the
// per-inbox generator allocation the pre-parallel engine paid.
type shuffler struct {
	src rand.Source
	rng *rand.Rand
}

func newShuffler() *shuffler {
	src := rand.NewSource(0)
	return &shuffler{src: src, rng: rand.New(src)}
}

func (s *shuffler) shuffle(seed int64, now types.Tick, id types.ProcessID, inbox []proto.Incoming) {
	if len(inbox) < 2 {
		return
	}
	s.src.Seed(seed ^ int64(now)*2654435761 ^ int64(id)<<17)
	s.rng.Shuffle(len(inbox), func(a, b int) {
		inbox[a], inbox[b] = inbox[b], inbox[a]
	})
}

// applyCorruptions hands processes scheduled for tick now to the
// adversary. The schedule is sorted by tick and consumed with a cursor,
// so this is O(newly corrupted) per tick.
func (e *engine) applyCorruptions(now types.Tick) {
	for e.nextCorrupt < len(e.schedule) && e.schedule[e.nextCorrupt].At <= now {
		id := e.schedule[e.nextCorrupt].ID
		e.corrupted[id] = true
		e.machines[id] = nil
		e.nextCorrupt++
	}
}

// parallelDeliveryMin is the in-flight message count below which sharded
// delivery is not worth the O(workers·n) merge; light ticks take the
// serial counting sort. Both paths produce an identical arena layout, so
// the crossover is invisible to the observable schedule.
const parallelDeliveryMin = 4096

// deliver scatters e.pending into the inbox arena, grouped by recipient
// with per-recipient arrival order preserved (a stable counting sort on
// To). Heavy ticks shard the sort: the pending buffer is cut into one
// contiguous chunk per worker (chunk order = position order), each worker
// counts its chunk's per-recipient messages, a serial merge turns the
// (recipient-major, chunk-minor) counts into scatter cursors, and the
// workers then place their chunks independently. Because every message's
// final slot is (recipient base) + (messages for that recipient in
// earlier chunks) + (chunk-local rank), the sharded layout is byte-for-
// byte the serial one at any worker count.
func (e *engine) deliver() {
	n := len(e.counts)
	p := len(e.pending)
	if p == 0 {
		for i := range e.inboxOff {
			e.inboxOff[i] = 0
		}
		return
	}
	if cap(e.arena) < p {
		e.arena = make([]proto.Incoming, p)
	}
	e.arena = e.arena[:p]

	w := e.workers
	if w > 1 && p >= parallelDeliveryMin {
		e.deliverSharded(w)
		return
	}

	for i := range e.counts {
		e.counts[i] = 0
	}
	for i := range e.pending {
		e.counts[e.pending[i].To]++
	}
	var off int32
	for i := 0; i < n; i++ {
		e.inboxOff[i] = off
		c := e.counts[i]
		e.counts[i] = off // becomes the scatter cursor
		off += c
	}
	e.inboxOff[n] = off
	for i := range e.pending {
		m := &e.pending[i]
		pos := e.counts[m.To]
		e.counts[m.To] = pos + 1
		e.arena[pos] = proto.Incoming{From: m.From, Session: m.Session, Payload: m.Payload}
	}
}

// deliverSharded is deliver's heavy-tick path: count and scatter fan out
// across w workers over contiguous pending chunks.
func (e *engine) deliverSharded(w int) {
	n := len(e.counts)
	p := len(e.pending)
	if len(e.chunkCounts) < w {
		cc := make([][]int32, w)
		copy(cc, e.chunkCounts)
		for i := len(e.chunkCounts); i < w; i++ {
			cc[i] = make([]int32, n)
		}
		e.chunkCounts = cc
	}
	chunk := func(k int) (int, int) {
		return k * p / w, (k + 1) * p / w
	}

	fanOut(w, func(k int) {
		counts := e.chunkCounts[k]
		for i := range counts {
			counts[i] = 0
		}
		lo, hi := chunk(k)
		for i := lo; i < hi; i++ {
			counts[e.pending[i].To]++
		}
	})

	// Merge: recipient-major, chunk-minor prefix sum. chunkCounts[k][r]
	// becomes worker k's scatter cursor for recipient r.
	var off int32
	for r := 0; r < n; r++ {
		e.inboxOff[r] = off
		for k := 0; k < w; k++ {
			c := e.chunkCounts[k][r]
			e.chunkCounts[k][r] = off
			off += c
		}
	}
	e.inboxOff[n] = off

	fanOut(w, func(k int) {
		cursors := e.chunkCounts[k]
		lo, hi := chunk(k)
		for i := lo; i < hi; i++ {
			m := &e.pending[i]
			pos := cursors[m.To]
			cursors[m.To] = pos + 1
			e.arena[pos] = proto.Incoming{From: m.From, Session: m.Session, Payload: m.Payload}
		}
	})
}

// fanOut runs fn(0..w-1) on w goroutines and waits; panics are re-raised
// on the caller's goroutine.
func fanOut(w int, fn func(k int)) {
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			fn(k)
		}(k)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// payloadKey identifies one boxed payload instance: the interface's type
// and data words, read without dereferencing. Keys are only ever compared
// between payloads simultaneously reachable from the same traffic slice,
// so address reuse cannot alias two distinct live payloads. Interface
// equality (==) would be wrong here: payloads legitimately contain slices
// (values, signatures), which makes them non-comparable.
type payloadKey [2]uintptr

func keyOf(p proto.Payload) payloadKey {
	return *(*payloadKey)(unsafe.Pointer(&p))
}

// record charges messages to the recorder. Self-addressed messages are
// local deliveries, not network traffic, and are skipped. The per-message
// cost (words, signatures, encoded size) is memoized per boxed payload
// instance: a broadcast fans one payload out to n recipients, and its
// cost — in particular the SizeOf encoding walk — is computed once.
// When no per-message observer (Trace, OnSend) is attached, consecutive
// messages sharing one payload instance, sender, and session collapse
// into a single RecordSendN call, so an n-way broadcast costs one
// recorder round-trip instead of n.
func (e *engine) record(msgs []Message, honest bool, now types.Tick) {
	if e.cfg.Trace == nil && e.cfg.OnSend == nil {
		e.recordBatched(msgs, honest)
		return
	}
	var (
		last       payloadKey
		haveMemo   bool
		words      = 1
		sigs, size int
	)
	for _, m := range msgs {
		if m.From == m.To {
			continue
		}
		if m.Payload == nil {
			words, sigs, size = 1, 0, 0
			haveMemo = false
		} else if k := keyOf(m.Payload); !haveMemo || k != last {
			words = m.Payload.Words()
			sigs, size = 0, 0
			if sc, ok := m.Payload.(proto.SigCarrier); ok {
				sigs = sc.SigCount()
			}
			if e.cfg.SizeOf != nil {
				size = e.cfg.SizeOf(m.Payload)
			}
			last, haveMemo = k, true
		}
		e.rec.RecordSend(metrics.SendEvent{
			From:   m.From,
			To:     m.To,
			Words:  words,
			Sigs:   sigs,
			Bytes:  size,
			Layer:  layerOf(m.Session),
			Honest: honest,
		})
		if e.cfg.OnSend != nil {
			e.cfg.OnSend(now, m, honest)
		}
		if e.cfg.Trace != nil {
			typ := "?"
			if m.Payload != nil {
				typ = m.Payload.Type()
			}
			fmt.Fprintf(e.cfg.Trace, "t=%d %v->%v [%s] %s (%dw)\n", now, m.From, m.To, m.Session, typ, words)
		}
	}
}

// recordBatched is record's no-observer fast path: runs of messages with
// one payload instance, sender, and session — the shape proto.Broadcast
// produces — are charged with a single batched recorder call. The charge
// is identical to per-message recording because the recorder never
// distinguishes recipients.
func (e *engine) recordBatched(msgs []Message, honest bool) {
	i := 0
	for i < len(msgs) {
		m := &msgs[i]
		if m.From == m.To {
			i++
			continue
		}
		words, sigs, size := 1, 0, 0
		j := i + 1
		if m.Payload != nil {
			words = m.Payload.Words()
			if sc, ok := m.Payload.(proto.SigCarrier); ok {
				sigs = sc.SigCount()
			}
			if e.cfg.SizeOf != nil {
				size = e.cfg.SizeOf(m.Payload)
			}
			k := keyOf(m.Payload)
			for j < len(msgs) {
				nm := &msgs[j]
				if nm.From != m.From || nm.From == nm.To || nm.Session != m.Session ||
					nm.Payload == nil || keyOf(nm.Payload) != k {
					break
				}
				j++
			}
		}
		e.rec.RecordSendN(metrics.SendEvent{
			From:   m.From,
			To:     m.To,
			Words:  words,
			Sigs:   sigs,
			Bytes:  size,
			Layer:  layerOf(m.Session),
			Honest: honest,
		}, j-i)
		i = j
	}
}

// layerOf maps a session path to its metrics layer (the full path).
func layerOf(session string) string {
	if session == "" {
		return "(root)"
	}
	return session
}

// quiesced reports whether the run can stop after tick now.
func (e *engine) quiesced(now types.Tick) bool {
	if len(e.pending) > 0 {
		return false
	}
	if e.nextCorrupt < len(e.schedule) {
		return false // a future corruption is pending
	}
	for i := range e.machines {
		if e.corrupted[i] {
			continue
		}
		if !e.machines[i].Done() {
			return false
		}
	}
	if e.cfg.Adversary != nil && !e.cfg.Adversary.Quiescent(now) {
		return false
	}
	return true
}
