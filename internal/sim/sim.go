// Package sim is a deterministic, tick-granular simulator of the paper's
// model (Section 2): a static set Π of n processes, reliable authenticated
// links, a synchronous network with delay bound δ (= one tick), and an
// adaptive adversary that corrupts up to t processes.
//
// Honest processes are proto.Machines. Corrupted processes are controlled
// by an Adversary, which observes the traffic addressed to them, sees all
// honest messages of the current tick before acting (a rushing adversary),
// and may send arbitrary messages from corrupted identities. The simulator
// enforces the reliable-link rule: the adversary cannot forge the sender
// identity of a correct process.
//
// Every honest message send is charged to a metrics.Recorder using the
// paper's word-cost model; self-addressed deliveries are free.
package sim

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"adaptiveba/internal/metrics"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

// Message is an addressed payload traveling through the simulated network.
type Message struct {
	From    types.ProcessID
	To      types.ProcessID
	Session string
	Payload proto.Payload
}

// Corruption schedules the takeover of one process at a given tick.
// At = 0 corrupts the process before the run starts.
type Corruption struct {
	ID types.ProcessID
	At types.Tick
}

// Env is the adversary's view of the trusted setup.
type Env struct {
	Params types.Params
	Crypto *proto.Crypto
}

// Adversary drives the corrupted processes. Implementations live in
// internal/adversary; a nil Adversary in the Config means a failure-free
// run (f = 0).
type Adversary interface {
	// Init is called once before the run with the setup artifacts.
	Init(env Env)
	// Corruptions returns the corruption schedule. The engine validates it
	// against Params (at most t distinct processes).
	Corruptions() []Corruption
	// Observe delivers the messages addressed to corrupted process `to`
	// at tick now (the adversary's inbox).
	Observe(now types.Tick, to types.ProcessID, inbox []proto.Incoming)
	// Act runs after all honest machines produced their tick-now sends
	// (rushing adversary: honestTraffic is this tick's honest output).
	// The returned messages must originate from corrupted identities and
	// are delivered at now+1, like all other traffic.
	Act(now types.Tick, honestTraffic []Message) []Message
	// Quiescent reports that the adversary has no future actions pending;
	// the engine only halts early when honest machines are done, no
	// messages are in flight, and the adversary is quiescent.
	Quiescent(now types.Tick) bool
}

// Config describes one run.
type Config struct {
	Params  types.Params
	Crypto  *proto.Crypto
	Factory func(id types.ProcessID) proto.Machine

	Adversary Adversary         // nil for failure-free runs
	MaxTicks  types.Tick        // hard stop; DefaultMaxTicks if 0
	Recorder  *metrics.Recorder // optional; a fresh one is created if nil
	Trace     io.Writer         // optional message trace
	// SizeOf, if set, reports each payload's encoded byte size for the
	// recorder's byte counters (the harness wires the wire registry in).
	SizeOf func(proto.Payload) int
	// ShuffleSeed, if non-zero, deterministically permutes every inbox
	// before delivery: within one tick the adversary controls arrival
	// order, so correct protocols must be insensitive to it. Tests sweep
	// seeds to catch accidental order dependence.
	ShuffleSeed int64
	// OnSend, if set, observes every message (honest and Byzantine) as it
	// is sent, with the sending tick — structured tracing for tools.
	OnSend func(now types.Tick, m Message, honest bool)
}

// DefaultMaxTicks bounds runs whose configuration forgot a limit.
const DefaultMaxTicks types.Tick = 100_000

// Result is the outcome of a run.
type Result struct {
	// Decisions maps every process that stayed honest for the whole run to
	// its output (present only if it decided).
	Decisions map[types.ProcessID]types.Value
	// Honest lists the processes that were never corrupted, ascending.
	Honest []types.ProcessID
	// Corrupted lists the corrupted processes, ascending.
	Corrupted []types.ProcessID
	// Ticks is the tick at which the run stopped.
	Ticks types.Tick
	// TimedOut reports the run hit MaxTicks before quiescing.
	TimedOut bool
	// Report is the metrics snapshot.
	Report metrics.Report
}

// F returns the number of actually corrupted processes in the run.
func (r *Result) F() int { return len(r.Corrupted) }

// AllDecided reports whether every process that remained honest decided.
func (r *Result) AllDecided() bool {
	for _, id := range r.Honest {
		if _, ok := r.Decisions[id]; !ok {
			return false
		}
	}
	return true
}

// Agreement reports whether all honest decisions are identical, returning
// the common value. Vacuously true (with ⊥) when nothing was decided.
func (r *Result) Agreement() (types.Value, bool) {
	var v types.Value
	first := true
	for _, id := range r.Honest {
		d, ok := r.Decisions[id]
		if !ok {
			continue
		}
		if first {
			v, first = d, false
			continue
		}
		if !d.Equal(v) {
			return nil, false
		}
	}
	return v, true
}

// Errors reported by Run.
var (
	ErrConfig     = errors.New("sim: invalid configuration")
	ErrForgery    = errors.New("sim: adversary sent from a non-corrupted identity")
	ErrCorruption = errors.New("sim: invalid corruption schedule")
)

// Run executes the configured run to quiescence or MaxTicks.
func Run(cfg Config) (*Result, error) {
	if !cfg.Params.Valid() {
		return nil, fmt.Errorf("%w: bad params %+v", ErrConfig, cfg.Params)
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("%w: nil factory", ErrConfig)
	}
	if cfg.Crypto == nil {
		return nil, fmt.Errorf("%w: nil crypto", ErrConfig)
	}
	maxTicks := cfg.MaxTicks
	if maxTicks <= 0 {
		maxTicks = DefaultMaxTicks
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = metrics.NewRecorder()
	}

	n := cfg.Params.N
	corruptAt := make(map[types.ProcessID]types.Tick)
	if cfg.Adversary != nil {
		cfg.Adversary.Init(Env{Params: cfg.Params, Crypto: cfg.Crypto})
		for _, c := range cfg.Adversary.Corruptions() {
			if err := cfg.Params.CheckProcess(c.ID); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorruption, err)
			}
			if at, dup := corruptAt[c.ID]; dup {
				return nil, fmt.Errorf("%w: %v corrupted twice (ticks %d, %d)", ErrCorruption, c.ID, at, c.At)
			}
			if c.At < 0 {
				return nil, fmt.Errorf("%w: negative tick for %v", ErrCorruption, c.ID)
			}
			corruptAt[c.ID] = c.At
		}
		if len(corruptAt) > cfg.Params.T {
			return nil, fmt.Errorf("%w: %d corruptions exceed t=%d", ErrCorruption, len(corruptAt), cfg.Params.T)
		}
	}

	e := &engine{
		cfg:       cfg,
		rec:       rec,
		machines:  make([]proto.Machine, n),
		corrupted: make([]bool, n),
		corruptAt: corruptAt,
		inflight:  make(map[types.Tick][]Message),
	}
	for i := 0; i < n; i++ {
		id := types.ProcessID(i)
		if at, ok := corruptAt[id]; ok && at == 0 {
			e.corrupted[i] = true
			continue
		}
		e.machines[i] = cfg.Factory(id)
	}

	return e.run(maxTicks)
}

type engine struct {
	cfg       Config
	rec       *metrics.Recorder
	machines  []proto.Machine
	corrupted []bool
	corruptAt map[types.ProcessID]types.Tick
	inflight  map[types.Tick][]Message
}

func (e *engine) run(maxTicks types.Tick) (*Result, error) {
	n := e.cfg.Params.N
	var now types.Tick
	timedOut := true

	for now = 0; now <= maxTicks; now++ {
		e.applyCorruptions(now)

		delivered := e.inflight[now]
		delete(e.inflight, now)
		inboxes := make([][]proto.Incoming, n)
		for _, m := range delivered {
			inboxes[m.To] = append(inboxes[m.To], proto.Incoming{
				From:    m.From,
				Session: m.Session,
				Payload: m.Payload,
			})
		}
		if e.cfg.ShuffleSeed != 0 {
			for i := range inboxes {
				e.shuffle(now, types.ProcessID(i), inboxes[i])
			}
		}

		// Honest machines act in ID order for determinism.
		var honestTraffic []Message
		for i := 0; i < n; i++ {
			if e.corrupted[i] {
				continue
			}
			id := types.ProcessID(i)
			var outs []proto.Outgoing
			if now == 0 {
				outs = e.machines[i].Begin(0)
			} else {
				outs = e.machines[i].Tick(now, inboxes[i])
			}
			for _, o := range outs {
				if err := e.cfg.Params.CheckProcess(o.To); err != nil {
					return nil, fmt.Errorf("sim: %v sent to invalid recipient: %w", id, err)
				}
				honestTraffic = append(honestTraffic, Message{
					From: id, To: o.To, Session: o.Session, Payload: o.Payload,
				})
			}
		}

		// Adversary observes corrupted inboxes, then acts with full
		// knowledge of this tick's honest traffic (rushing).
		var advTraffic []Message
		if e.cfg.Adversary != nil {
			for i := 0; i < n; i++ {
				if e.corrupted[i] && len(inboxes[i]) > 0 {
					e.cfg.Adversary.Observe(now, types.ProcessID(i), inboxes[i])
				}
			}
			advTraffic = e.cfg.Adversary.Act(now, honestTraffic)
			for _, m := range advTraffic {
				if err := e.cfg.Params.CheckProcess(m.To); err != nil {
					return nil, fmt.Errorf("sim: adversary recipient: %w", err)
				}
				if err := e.cfg.Params.CheckProcess(m.From); err != nil || !e.corrupted[m.From] {
					return nil, fmt.Errorf("%w: from %v at tick %d", ErrForgery, m.From, now)
				}
			}
		}

		e.record(honestTraffic, true, now)
		e.record(advTraffic, false, now)
		if len(honestTraffic)+len(advTraffic) > 0 {
			e.inflight[now+1] = append(e.inflight[now+1], honestTraffic...)
			e.inflight[now+1] = append(e.inflight[now+1], advTraffic...)
		}

		if e.quiesced(now) {
			timedOut = false
			break
		}
	}

	res := &Result{
		Decisions: make(map[types.ProcessID]types.Value),
		Ticks:     now,
		TimedOut:  timedOut,
	}
	for i := 0; i < n; i++ {
		id := types.ProcessID(i)
		if e.corrupted[i] {
			res.Corrupted = append(res.Corrupted, id)
			continue
		}
		res.Honest = append(res.Honest, id)
		if v, ok := e.machines[i].Output(); ok {
			res.Decisions[id] = v
		}
	}
	sort.Slice(res.Honest, func(a, b int) bool { return res.Honest[a] < res.Honest[b] })
	sort.Slice(res.Corrupted, func(a, b int) bool { return res.Corrupted[a] < res.Corrupted[b] })
	if st, ok := e.cfg.Crypto.VerifyCacheStats(); ok {
		e.rec.SetCacheStats(st.Hits, st.Misses, st.InflightWaits)
	}
	e.rec.SetTicks(now)
	res.Report = e.rec.Snapshot()
	return res, nil
}

// shuffle deterministically permutes one inbox from (seed, tick, id).
func (e *engine) shuffle(now types.Tick, id types.ProcessID, inbox []proto.Incoming) {
	if len(inbox) < 2 {
		return
	}
	rng := rand.New(rand.NewSource(e.cfg.ShuffleSeed ^ int64(now)*2654435761 ^ int64(id)<<17))
	rng.Shuffle(len(inbox), func(a, b int) {
		inbox[a], inbox[b] = inbox[b], inbox[a]
	})
}

// applyCorruptions hands processes scheduled for tick now to the adversary.
func (e *engine) applyCorruptions(now types.Tick) {
	for id, at := range e.corruptAt {
		if at == now && !e.corrupted[id] {
			e.corrupted[id] = true
			e.machines[id] = nil
		}
	}
}

// record charges messages to the recorder. Self-addressed messages are
// local deliveries, not network traffic, and are skipped.
func (e *engine) record(msgs []Message, honest bool, now types.Tick) {
	for _, m := range msgs {
		if m.From == m.To {
			continue
		}
		words, sigs, size := 1, 0, 0
		if m.Payload != nil {
			words = m.Payload.Words()
			if sc, ok := m.Payload.(proto.SigCarrier); ok {
				sigs = sc.SigCount()
			}
			if e.cfg.SizeOf != nil {
				size = e.cfg.SizeOf(m.Payload)
			}
		}
		e.rec.RecordSend(metrics.SendEvent{
			From:   m.From,
			To:     m.To,
			Words:  words,
			Sigs:   sigs,
			Bytes:  size,
			Layer:  layerOf(m.Session),
			Honest: honest,
		})
		if e.cfg.OnSend != nil {
			e.cfg.OnSend(now, m, honest)
		}
		if e.cfg.Trace != nil {
			typ := "?"
			if m.Payload != nil {
				typ = m.Payload.Type()
			}
			fmt.Fprintf(e.cfg.Trace, "t=%d %v->%v [%s] %s (%dw)\n", now, m.From, m.To, m.Session, typ, words)
		}
	}
}

// layerOf maps a session path to its metrics layer (the full path).
func layerOf(session string) string {
	if session == "" {
		return "(root)"
	}
	return session
}

// quiesced reports whether the run can stop after tick now.
func (e *engine) quiesced(now types.Tick) bool {
	if len(e.inflight) > 0 {
		return false
	}
	for id, at := range e.corruptAt {
		if at > now && !e.corrupted[id] {
			return false // a future corruption is pending
		}
	}
	for i := range e.machines {
		if e.corrupted[i] {
			continue
		}
		if !e.machines[i].Done() {
			return false
		}
	}
	if e.cfg.Adversary != nil && !e.cfg.Adversary.Quiescent(now) {
		return false
	}
	return true
}
