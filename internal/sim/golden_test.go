package sim

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

// The golden traces in testdata/ were recorded from the pre-parallel
// serial engine. Every engine change — worker fan-out, scratch reuse,
// the shuffle-source rewrite — must reproduce them byte for byte: the
// trace encodes the delivery permutations (the echoer answers its inbox
// in arrival order), the honest traffic order (machines in ID order),
// and the rushing adversary's view (its relays mirror the order in
// which it saw this tick's honest sends).
//
// Regenerate with: go test ./internal/sim -run TestGoldenTraces -update-golden
// (only legitimate when the observable schedule intentionally changes).
var updateGolden = flag.Bool("update-golden", false, "rewrite golden trace files")

// echoPayload is a one-word payload; the trace records its type.
type echoPayload struct{}

func (echoPayload) Type() string { return "golden/echo" }
func (echoPayload) Words() int   { return 1 }

// echoer broadcasts at Begin and then, until its horizon, answers every
// inbox message in arrival order — so the trace is a faithful transcript
// of each tick's delivery permutation.
type echoer struct {
	params  types.Params
	horizon types.Tick
	now     types.Tick
}

func (e *echoer) Begin(now types.Tick) []proto.Outgoing {
	return proto.Broadcast(e.params, "", echoPayload{})
}

func (e *echoer) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	e.now = now
	if now >= e.horizon {
		return nil
	}
	outs := make([]proto.Outgoing, 0, len(inbox))
	for _, in := range inbox {
		outs = append(outs, proto.Outgoing{To: in.From, Session: "", Payload: echoPayload{}})
	}
	return outs
}

func (e *echoer) Output() (types.Value, bool) { return nil, e.now >= e.horizon }
func (e *echoer) Done() bool                  { return e.now >= e.horizon }

// relayPayload marks adversary relays in the trace.
type relayPayload struct{}

func (relayPayload) Type() string { return "golden/relay" }
func (relayPayload) Words() int   { return 1 }

// rushingRelay exercises the rushing-adversary contract: its sends are a
// function of the ORDER of the honest traffic it just saw (every third
// honest message is answered) and of the ORDER of its observed inboxes,
// so any reordering of either shows up in the golden trace.
type rushingRelay struct {
	silentAdversary
	observed []types.ProcessID // senders seen in corrupted inboxes, in order
}

func (a *rushingRelay) Observe(_ types.Tick, _ types.ProcessID, inbox []proto.Incoming) {
	for _, in := range inbox {
		a.observed = append(a.observed, in.From)
	}
}

func (a *rushingRelay) Act(now types.Tick, honest []Message) []Message {
	if now >= 4 {
		return nil
	}
	from := a.ids[0]
	var msgs []Message
	for i, m := range honest {
		if i%3 == 0 {
			msgs = append(msgs, Message{From: from, To: m.From, Payload: relayPayload{}})
		}
	}
	for i, sender := range a.observed {
		if i%2 == 0 && !a.corrupted(sender) {
			msgs = append(msgs, Message{From: from, To: sender, Payload: relayPayload{}})
		}
	}
	a.observed = a.observed[:0]
	return msgs
}

func (a *rushingRelay) Quiescent(now types.Tick) bool { return now >= 4 }

func (a *rushingRelay) corrupted(id types.ProcessID) bool {
	for _, c := range a.ids {
		if c == id {
			return true
		}
	}
	return false
}

// goldenCase is one recorded engine schedule.
type goldenCase struct {
	name        string
	n           int
	shuffleSeed int64
	adversary   func() Adversary
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{name: "noshuffle", n: 7, shuffleSeed: 0},
		{name: "shuffle-seed7", n: 7, shuffleSeed: 7},
		{name: "shuffle-seed13", n: 9, shuffleSeed: 13},
		{name: "adversary-noshuffle", n: 7, shuffleSeed: 0,
			adversary: func() Adversary { return &rushingRelay{silentAdversary: silentAdversary{ids: []types.ProcessID{5, 6}}} }},
		{name: "adversary-shuffle-seed7", n: 7, shuffleSeed: 7,
			adversary: func() Adversary { return &rushingRelay{silentAdversary: silentAdversary{ids: []types.ProcessID{5, 6}}} }},
		// scale-n64 pins the sharded delivery/merge path: at n=64 the
		// engine exercises multi-chunk inbox partitioning, and the trace
		// (recorded from the pre-shard serial engine) must stay
		// byte-identical at every worker count.
		{name: "scale-n64-shuffle-seed11", n: 64, shuffleSeed: 11,
			adversary: func() Adversary {
				return &rushingRelay{silentAdversary: silentAdversary{ids: []types.ProcessID{60, 62}}}
			}},
	}
}

// runGolden executes one golden configuration and returns its trace.
func runGolden(t *testing.T, tc goldenCase, workers int) []byte {
	t.Helper()
	crypto, params := testCrypto(t, tc.n)
	var trace bytes.Buffer
	cfg := Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return &echoer{params: params, horizon: 5}
		},
		MaxTicks:    64,
		Trace:       &trace,
		ShuffleSeed: tc.shuffleSeed,
		Workers:     workers,
	}
	if tc.adversary != nil {
		cfg.Adversary = tc.adversary()
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("golden run timed out")
	}
	return trace.Bytes()
}

func TestGoldenTraces(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			got := runGolden(t, tc, 1)
			path := filepath.Join("testdata", tc.name+".trace")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("trace diverged from the recorded serial engine:\n%s", diffHint(want, got))
			}
			// Any worker count must reproduce the recorded serial schedule.
			for _, w := range []int{0, 2, 8} {
				if gotW := runGolden(t, tc, w); !bytes.Equal(gotW, want) {
					t.Errorf("workers=%d trace diverged from serial golden:\n%s", w, diffHint(want, gotW))
				}
			}
		})
	}
}

// diffHint locates the first differing line for a readable failure.
func diffHint(want, got []byte) string {
	wl, gl := bytes.Split(want, []byte("\n")), bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d", len(wl), len(gl))
}
