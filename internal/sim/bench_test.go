package sim

import (
	"fmt"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

// BenchmarkEngineThroughput measures raw simulator overhead: n machines
// broadcasting every tick for a fixed horizon.
func BenchmarkEngineThroughput(b *testing.B) {
	for _, n := range []int{11, 41} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			params, err := types.NewParams(n)
			if err != nil {
				b.Fatal(err)
			}
			ring, err := sig.NewHMACRing(n, []byte("bench"))
			if err != nil {
				b.Fatal(err)
			}
			crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{
					Params: params,
					Crypto: crypto,
					Factory: func(id types.ProcessID) proto.Machine {
						return &chatter{params: params, horizon: 20}
					},
					MaxTicks: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.TimedOut {
					b.Fatal("timed out")
				}
			}
			b.ReportMetric(float64(20*n*n), "msgs/run")
		})
	}
}

// BenchmarkSimTick isolates the engine's per-tick overhead: quiet
// machines precompute their broadcast once, so allocations measured here
// are the engine's own (inbox buckets, traffic slices, shuffle sources,
// size metering) — the hot path this PR makes allocation-free. The
// committed ceiling for the serial path lives in TestSimTickAllocCeiling.
func BenchmarkSimTick(b *testing.B) {
	for _, n := range []int{11, 41} {
		for _, workers := range []int{1, 0} {
			name := fmt.Sprintf("n=%d/workers=serial", n)
			if workers != 1 {
				name = fmt.Sprintf("n=%d/workers=gomaxprocs", n)
			}
			b.Run(name, func(b *testing.B) {
				params, err := types.NewParams(n)
				if err != nil {
					b.Fatal(err)
				}
				ring, err := sig.NewHMACRing(n, []byte("bench"))
				if err != nil {
					b.Fatal(err)
				}
				crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))
				const horizon = 20
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := Run(Config{
						Params: params,
						Crypto: crypto,
						Factory: func(id types.ProcessID) proto.Machine {
							return newQuietChatter(params, horizon)
						},
						MaxTicks:    64,
						ShuffleSeed: 7,
						Workers:     workers,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.TimedOut {
						b.Fatal("timed out")
					}
				}
				b.ReportMetric(float64(horizon*n*n), "msgs/run")
			})
		}
	}
}

// TestSimTickAllocCeiling is the CI allocation guard for the serial hot
// path. Setup (machine construction, engine scratch, recorder stats,
// first-tick bucket growth) legitimately allocates O(n log n) per Run, so
// the guard differences two horizons: the extra ticks of the longer run
// must be allocation-free — inbox buckets, traffic buffers, and shuffle
// sources are reused per-engine scratch. Before this engine existed,
// every extra tick cost >n allocations (fresh inboxes plus a rand.New per
// shuffled inbox).
func TestSimTickAllocCeiling(t *testing.T) {
	const n = 41
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("bench"))
	if err != nil {
		t.Fatal(err)
	}
	crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))
	measure := func(horizon types.Tick) float64 {
		return testing.AllocsPerRun(10, func() {
			res, err := Run(Config{
				Params: params,
				Crypto: crypto,
				Factory: func(id types.ProcessID) proto.Machine {
					return newQuietChatter(params, horizon)
				},
				MaxTicks:    128,
				ShuffleSeed: 7,
				Workers:     1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.TimedOut {
				t.Fatal("timed out")
			}
		})
	}
	short, long := measure(5), measure(45)
	perTick := (long - short) / 40
	// Committed ceilings: the steady-state tick loop stays allocation-free
	// (< 2/tick leaves room for measurement noise; a real regression costs
	// >= n per tick), and whole-Run setup stays within ~12 allocations per
	// machine.
	if perTick >= 2 {
		t.Errorf("steady-state tick loop allocates %.2f per tick (short=%.0f long=%.0f), want < 2", perTick, short, long)
	}
	const runCeiling = 12*n + 120
	if long > runCeiling {
		t.Errorf("Run allocates %.0f, above committed ceiling %d", long, runCeiling)
	}
}

// TestSimTickAllocCeilingLargeN pins the dense-state engine at scale: at
// n = 1024 the steady-state tick loop must stay within 4x the n = 41
// ceiling (ISSUE acceptance). Before the arena/BitSet rewrite the
// engine's per-tick cost included O(n) map and slice churn, so this bound
// was unreachable at this n. Machines unicast to 8 ring neighbors — the
// per-tick pending count (8n = 8192) still crosses the sharded-delivery
// gate while keeping the test fast on one core.
func TestSimTickAllocCeilingLargeN(t *testing.T) {
	const n = 1024
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("bench"))
	if err != nil {
		t.Fatal(err)
	}
	crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))
	measure := func(horizon types.Tick) float64 {
		return testing.AllocsPerRun(5, func() {
			res, err := Run(Config{
				Params: params,
				Crypto: crypto,
				Factory: func(id types.ProcessID) proto.Machine {
					return newRingChatter(params, id, 8, horizon)
				},
				MaxTicks:    128,
				ShuffleSeed: 7,
				Workers:     1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.TimedOut {
				t.Fatal("timed out")
			}
		})
	}
	short, long := measure(5), measure(45)
	perTick := (long - short) / 40
	if perTick >= 8 {
		t.Errorf("n=%d steady-state tick loop allocates %.2f per tick (short=%.0f long=%.0f), want < 8 (4x the n=41 ceiling)",
			n, perTick, short, long)
	}
}

// ringChatter unicasts one precomputed payload to each of its k ring
// successors every tick, so the machine itself allocates only at
// construction — any steady-state allocation belongs to the engine.
type ringChatter struct {
	outs    []proto.Outgoing
	horizon types.Tick
	now     types.Tick
}

func newRingChatter(params types.Params, id types.ProcessID, k int, horizon types.Tick) *ringChatter {
	outs := make([]proto.Outgoing, k)
	for i := range outs {
		outs[i] = proto.Outgoing{To: types.ProcessID((int(id) + 1 + i) % params.N), Payload: ping{}}
	}
	return &ringChatter{outs: outs, horizon: horizon}
}

func (c *ringChatter) Begin(now types.Tick) []proto.Outgoing { return c.outs }

func (c *ringChatter) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	c.now = now
	if now >= c.horizon {
		return nil
	}
	return c.outs
}

func (c *ringChatter) Output() (types.Value, bool) { return nil, c.now >= c.horizon }
func (c *ringChatter) Done() bool                  { return c.now >= c.horizon }

// quietChatter broadcasts the same precomputed sends every tick, so the
// machine itself allocates only at construction.
type quietChatter struct {
	outs    []proto.Outgoing
	horizon types.Tick
	now     types.Tick
}

func newQuietChatter(params types.Params, horizon types.Tick) *quietChatter {
	return &quietChatter{outs: proto.Broadcast(params, "", ping{}), horizon: horizon}
}

func (c *quietChatter) Begin(now types.Tick) []proto.Outgoing { return c.outs }

func (c *quietChatter) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	c.now = now
	if now >= c.horizon {
		return nil
	}
	return c.outs
}

func (c *quietChatter) Output() (types.Value, bool) { return nil, c.now >= c.horizon }
func (c *quietChatter) Done() bool                  { return c.now >= c.horizon }

// chatter broadcasts one payload per tick until its horizon.
type chatter struct {
	params  types.Params
	horizon types.Tick
	now     types.Tick
}

type ping struct{}

func (ping) Type() string { return "bench/ping" }
func (ping) Words() int   { return 1 }

func (c *chatter) Begin(now types.Tick) []proto.Outgoing {
	return proto.Broadcast(c.params, "", ping{})
}

func (c *chatter) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	c.now = now
	if now >= c.horizon {
		return nil
	}
	return proto.Broadcast(c.params, "", ping{})
}

func (c *chatter) Output() (types.Value, bool) { return nil, c.now >= c.horizon }
func (c *chatter) Done() bool                  { return c.now >= c.horizon }
