package sim

import (
	"fmt"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

// BenchmarkEngineThroughput measures raw simulator overhead: n machines
// broadcasting every tick for a fixed horizon.
func BenchmarkEngineThroughput(b *testing.B) {
	for _, n := range []int{11, 41} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			params, err := types.NewParams(n)
			if err != nil {
				b.Fatal(err)
			}
			ring, err := sig.NewHMACRing(n, []byte("bench"))
			if err != nil {
				b.Fatal(err)
			}
			crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{
					Params: params,
					Crypto: crypto,
					Factory: func(id types.ProcessID) proto.Machine {
						return &chatter{params: params, horizon: 20}
					},
					MaxTicks: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.TimedOut {
					b.Fatal("timed out")
				}
			}
			b.ReportMetric(float64(20*n*n), "msgs/run")
		})
	}
}

// chatter broadcasts one payload per tick until its horizon.
type chatter struct {
	params  types.Params
	horizon types.Tick
	now     types.Tick
}

type ping struct{}

func (ping) Type() string { return "bench/ping" }
func (ping) Words() int   { return 1 }

func (c *chatter) Begin(now types.Tick) []proto.Outgoing {
	return proto.Broadcast(c.params, "", ping{})
}

func (c *chatter) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	c.now = now
	if now >= c.horizon {
		return nil
	}
	return proto.Broadcast(c.params, "", ping{})
}

func (c *chatter) Output() (types.Value, bool) { return nil, c.now >= c.horizon }
func (c *chatter) Done() bool                  { return c.now >= c.horizon }
