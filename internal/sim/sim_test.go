package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/metrics"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

// valuePayload is a one-word payload carrying a value.
type valuePayload struct {
	v types.Value
}

func (p valuePayload) Type() string { return "value" }
func (p valuePayload) Words() int   { return 1 }

// floodMax broadcasts its input at tick 0 and, two ticks later, decides
// the maximum value observed (including its own). A minimal correct
// synchronous protocol for exercising the engine.
type floodMax struct {
	params  types.Params
	input   types.Value
	best    types.Value
	decided bool
	began   types.Tick
}

func newFloodMax(params types.Params, input types.Value) *floodMax {
	return &floodMax{params: params, input: input, best: input}
}

func (m *floodMax) Begin(now types.Tick) []proto.Outgoing {
	m.began = now
	return proto.Broadcast(m.params, "", valuePayload{v: m.input})
}

func (m *floodMax) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	for _, in := range inbox {
		if p, ok := in.Payload.(valuePayload); ok {
			if bytes.Compare(p.v, m.best) > 0 {
				m.best = p.v
			}
		}
	}
	if now >= m.began+2 {
		m.decided = true
	}
	return nil
}

func (m *floodMax) Output() (types.Value, bool) { return m.best, m.decided }
func (m *floodMax) Done() bool                  { return m.decided }

func testCrypto(t *testing.T, n int) (*proto.Crypto, types.Params) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("sim-test"))
	if err != nil {
		t.Fatal(err)
	}
	return proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("dealer")), params
}

func TestRunFailureFree(t *testing.T) {
	crypto, params := testCrypto(t, 5)
	res, err := Run(Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return newFloodMax(params, types.Value{byte(id)})
		},
		MaxTicks: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("run timed out")
	}
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("disagreement")
	}
	if !v.Equal(types.Value{4}) {
		t.Errorf("decided %v, want max id 4", v)
	}
	if res.F() != 0 || len(res.Honest) != 5 {
		t.Errorf("F=%d honest=%d", res.F(), len(res.Honest))
	}
}

func TestMetricsExcludeSelfDelivery(t *testing.T) {
	crypto, params := testCrypto(t, 5)
	res, err := Run(Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return newFloodMax(params, types.Value{byte(id)})
		},
		MaxTicks: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each of 5 processes broadcasts to 5 recipients, 4 of them remote.
	if got := res.Report.Honest.Messages; got != 20 {
		t.Errorf("messages = %d, want 20", got)
	}
	if got := res.Report.Honest.Words; got != 20 {
		t.Errorf("words = %d, want 20", got)
	}
}

// silentAdversary corrupts processes and never sends anything (crash from
// the start).
type silentAdversary struct {
	ids []types.ProcessID
	env Env
}

func (a *silentAdversary) Init(env Env) { a.env = env }
func (a *silentAdversary) Corruptions() []Corruption {
	cs := make([]Corruption, len(a.ids))
	for i, id := range a.ids {
		cs[i] = Corruption{ID: id}
	}
	return cs
}
func (a *silentAdversary) Observe(types.Tick, types.ProcessID, []proto.Incoming) {}
func (a *silentAdversary) Act(types.Tick, []Message) []Message                   { return nil }
func (a *silentAdversary) Quiescent(types.Tick) bool                             { return true }

func TestRunWithCrashedProcesses(t *testing.T) {
	crypto, params := testCrypto(t, 5)
	res, err := Run(Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return newFloodMax(params, types.Value{byte(id)})
		},
		Adversary: &silentAdversary{ids: []types.ProcessID{4, 2}},
		MaxTicks:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.F() != 2 {
		t.Fatalf("F = %d", res.F())
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value{3}) {
		// p4 crashed, so the max among alive is 3.
		t.Errorf("agreement %v %v", v, ok)
	}
	if len(res.Honest) != 3 || res.Honest[0] != 0 || res.Honest[2] != 3 {
		t.Errorf("honest = %v", res.Honest)
	}
	if res.Corrupted[0] != 2 || res.Corrupted[1] != 4 {
		t.Errorf("corrupted = %v", res.Corrupted)
	}
}

func TestTooManyCorruptionsRejected(t *testing.T) {
	crypto, params := testCrypto(t, 5) // t = 2
	_, err := Run(Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return newFloodMax(params, types.Value{byte(id)})
		},
		Adversary: &silentAdversary{ids: []types.ProcessID{0, 1, 2}},
	})
	if !errors.Is(err, ErrCorruption) {
		t.Errorf("err = %v", err)
	}
}

func TestDuplicateCorruptionRejected(t *testing.T) {
	crypto, params := testCrypto(t, 5)
	_, err := Run(Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return newFloodMax(params, types.Value{byte(id)})
		},
		Adversary: &silentAdversary{ids: []types.ProcessID{1, 1}},
	})
	if !errors.Is(err, ErrCorruption) {
		t.Errorf("err = %v", err)
	}
}

// forger tries to send from an honest identity.
type forger struct {
	silentAdversary
	sent bool
}

func (a *forger) Corruptions() []Corruption { return []Corruption{{ID: 0}} }
func (a *forger) Act(now types.Tick, _ []Message) []Message {
	if a.sent {
		return nil
	}
	a.sent = true
	return []Message{{From: 1, To: 2, Payload: valuePayload{v: types.Value{9}}}}
}

func TestForgeryRejected(t *testing.T) {
	crypto, params := testCrypto(t, 5)
	_, err := Run(Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return newFloodMax(params, types.Value{byte(id)})
		},
		Adversary: &forger{},
	})
	if !errors.Is(err, ErrForgery) {
		t.Errorf("err = %v", err)
	}
}

// injector sends a high value from its corrupted identity: honest
// processes should incorporate it (it is a legal protocol message).
type injector struct {
	silentAdversary
	sent bool
}

func (a *injector) Corruptions() []Corruption { return []Corruption{{ID: 0}} }
func (a *injector) Act(now types.Tick, _ []Message) []Message {
	if a.sent {
		return nil
	}
	a.sent = true
	var msgs []Message
	for i := 1; i < a.env.Params.N; i++ {
		msgs = append(msgs, Message{From: 0, To: types.ProcessID(i), Payload: valuePayload{v: types.Value{99}}})
	}
	return msgs
}

func TestAdversaryInjection(t *testing.T) {
	crypto, params := testCrypto(t, 5)
	res, err := Run(Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return newFloodMax(params, types.Value{byte(id)})
		},
		Adversary: &injector{},
		MaxTicks:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value{99}) {
		t.Errorf("agreement = %v, %v", v, ok)
	}
	// Byzantine words recorded separately, not in the honest total.
	if res.Report.Byzantine.Messages != 4 {
		t.Errorf("byzantine messages = %d", res.Report.Byzantine.Messages)
	}
}

// lateCorruptionAdv corrupts p0 at tick 1, after p0 already broadcast.
type lateCorruptionAdv struct {
	silentAdversary
}

func (a *lateCorruptionAdv) Corruptions() []Corruption {
	return []Corruption{{ID: 0, At: 1}}
}

func TestAdaptiveCorruptionMidRun(t *testing.T) {
	crypto, params := testCrypto(t, 5)
	res, err := Run(Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return newFloodMax(params, types.Value{byte(id)})
		},
		Adversary: &lateCorruptionAdv{},
		MaxTicks:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.F() != 1 {
		t.Fatalf("F = %d", res.F())
	}
	// p0's tick-0 broadcast was already out; honest processes still see 4
	// as the max, and p0 is excluded from the honest set.
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value{4}) {
		t.Errorf("agreement = %v, %v", v, ok)
	}
	for _, id := range res.Honest {
		if id == 0 {
			t.Error("corrupted process listed honest")
		}
	}
}

func TestTimeout(t *testing.T) {
	crypto, params := testCrypto(t, 3)
	// A machine that never finishes.
	res, err := Run(Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return &neverDone{params: params}
		},
		MaxTicks: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("expected timeout")
	}
	if res.Ticks != 11 {
		t.Errorf("ticks = %d", res.Ticks)
	}
}

type neverDone struct {
	params types.Params
}

func (m *neverDone) Begin(types.Tick) []proto.Outgoing { return nil }
func (m *neverDone) Tick(types.Tick, []proto.Incoming) []proto.Outgoing {
	return nil
}
func (m *neverDone) Output() (types.Value, bool) { return nil, false }
func (m *neverDone) Done() bool                  { return false }

func TestConfigValidation(t *testing.T) {
	crypto, params := testCrypto(t, 3)
	if _, err := Run(Config{Params: params, Crypto: crypto}); !errors.Is(err, ErrConfig) {
		t.Errorf("nil factory: %v", err)
	}
	if _, err := Run(Config{Params: params, Factory: func(types.ProcessID) proto.Machine { return nil }}); !errors.Is(err, ErrConfig) {
		t.Errorf("nil crypto: %v", err)
	}
	if _, err := Run(Config{Params: types.Params{N: 1}, Crypto: crypto, Factory: func(types.ProcessID) proto.Machine { return nil }}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad params: %v", err)
	}
}

func TestTrace(t *testing.T) {
	crypto, params := testCrypto(t, 3)
	var buf bytes.Buffer
	_, err := Run(Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return newFloodMax(params, types.Value{byte(id)})
		},
		MaxTicks: 100,
		Trace:    &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "p0->p1") {
		t.Errorf("trace missing sends:\n%s", buf.String())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		crypto, params := testCrypto(t, 7)
		res, err := Run(Config{
			Params: params,
			Crypto: crypto,
			Factory: func(id types.ProcessID) proto.Machine {
				return newFloodMax(params, types.Value{byte(id)})
			},
			Adversary: &injector{},
			MaxTicks:  100,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Ticks != b.Ticks || a.Report.Honest.Words != b.Report.Honest.Words {
		t.Errorf("non-deterministic runs: %v vs %v", a.Report, b.Report)
	}
}

func TestRecorderSharing(t *testing.T) {
	crypto, params := testCrypto(t, 3)
	rec := metrics.NewRecorder()
	_, err := Run(Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return newFloodMax(params, types.Value{byte(id)})
		},
		Recorder: rec,
		MaxTicks: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot().Honest.Messages == 0 {
		t.Error("caller-provided recorder not used")
	}
}
