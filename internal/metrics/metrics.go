// Package metrics implements the paper's cost model (Section 2): the
// communication complexity of a run is the number of words sent by correct
// processes, where a word carries a constant number of signatures and
// values and every message costs at least one word.
//
// A Recorder is attached to a run by the simulator (or the TCP transport)
// and receives one event per message send. It keeps totals, a per-protocol-
// layer breakdown (used to regenerate Figure 1), and per-process counters.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"adaptiveba/internal/types"
)

// Stats aggregates the cost counters of some slice of a run.
type Stats struct {
	Messages   int64 // number of messages sent
	Words      int64 // total words per the paper's model
	Bytes      int64 // wire bytes (meaningful on the TCP transport; estimated in-sim)
	Signatures int64 // individual signatures created for these messages
}

func (s *Stats) add(o Stats) {
	s.Messages += o.Messages
	s.Words += o.Words
	s.Bytes += o.Bytes
	s.Signatures += o.Signatures
}

// SendEvent describes a single message send.
type SendEvent struct {
	From   types.ProcessID
	To     types.ProcessID
	Words  int    // word cost of the message (>= 1 is enforced)
	Bytes  int    // encoded size, if known
	Sigs   int    // fresh signatures the sender created for this message
	Layer  string // protocol layer path, e.g. "bb/wba/fallback"
	Honest bool   // whether the sender is correct; only honest sends count
}

// Recorder accumulates events. It is safe for concurrent use: the
// scalar operation counters are atomics (they are the hottest path —
// every certificate combine/verify in a run lands here), while the
// map-touching send path shares one mutex. The simulator's parallel tick
// engine keeps that mutex contention-free by construction: it records all
// of a tick's sends post-join on the engine goroutine, so concurrent
// RecordSend only occurs when several runs share one recorder.
type Recorder struct {
	mu sync.Mutex

	honest    Stats
	byzantine Stats
	byLayer   map[string]*Stats
	byProc    map[types.ProcessID]*Stats
	// procs, when non-nil, replaces byProc for IDs in [0, len(procs)):
	// a dense flat array the scale engine preallocates so the per-process
	// breakdown costs an index instead of a map insert at n=4096.
	// Out-of-range IDs still fall back to the map.
	procs []Stats

	// Last-used memo for the send path: consecutive sends overwhelmingly
	// share a layer (broadcasts) and often a sender, so remembering the
	// last *Stats of each skips two map lookups per message. Guarded by mu.
	lastLayer      string
	lastLayerStats *Stats
	lastProc       types.ProcessID
	lastProcStats  *Stats

	combines     atomic.Int64 // threshold-certificate combine operations
	certVerifies atomic.Int64
	ticks        atomic.Int64

	// Verification fast-path counters (internal/crypto/verifycache),
	// stored by the engine at snapshot time. CPU-cost instrumentation
	// only: the cache never changes messages or words.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	cacheWaits  atomic.Int64

	// Transport data-plane counters (internal/transport). Flushes are
	// coalesced writer wakeups; drops are frames shed by the slow-peer
	// backpressure policy. They are atomics because outbox writer
	// goroutines record them concurrently with the tick loop's sends.
	netFlushes       atomic.Int64
	netFlushedFrames atomic.Int64
	netFlushedBytes  atomic.Int64
	netDrops         atomic.Int64

	// Chaos-injection counters (internal/transport chaos layer): frames
	// deliberately lost or deferred by the configured fault schedule —
	// distinct from netDrops, which are genuine backpressure sheds.
	// Atomics because delayed-frame timers fire off the tick goroutine.
	chaosDrops  atomic.Int64
	chaosDelays atomic.Int64

	// Engine admission counters (internal/engine). Rejects are session
	// requests shed by the drop-not-block admission policy (window and
	// queue both full); queued are requests that waited behind the
	// in-flight window before starting; late are messages that arrived
	// for an already-retired session and were discarded by the demux.
	engineRejects atomic.Int64
	engineQueued  atomic.Int64
	engineLate    atomic.Int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		byLayer: make(map[string]*Stats),
		byProc:  make(map[types.ProcessID]*Stats),
	}
}

// DenseProcs preallocates per-process counters for IDs in [0, n) as one
// flat array, so the send path's per-process accounting is an index
// instead of a map lookup. Call it once before recording; counters that
// already live in the map keep accumulating there and both views are
// merged at Snapshot.
func (r *Recorder) DenseProcs(n int) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.procs) < n {
		procs := make([]Stats, n)
		copy(procs, r.procs)
		r.procs = procs
	}
}

// RecordSend ingests one message-send event.
func (r *Recorder) RecordSend(ev SendEvent) { r.RecordSendN(ev, 1) }

// RecordSendN ingests count identical-cost message sends in one call.
// All count messages share ev's sender, layer, and per-message cost
// (words, bytes, signatures); only the recipients differ, which the
// recorder does not track. The simulator uses this to charge an n-way
// broadcast with one mutex acquisition instead of n.
func (r *Recorder) RecordSendN(ev SendEvent, count int) {
	if count <= 0 {
		return
	}
	if ev.Words < 1 {
		ev.Words = 1 // every message carries at least one word
	}
	c := int64(count)
	s := Stats{
		Messages:   c,
		Words:      int64(ev.Words) * c,
		Bytes:      int64(ev.Bytes) * c,
		Signatures: int64(ev.Sigs) * c,
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if !ev.Honest {
		r.byzantine.add(s)
		return
	}
	r.honest.add(s)
	layer := ev.Layer
	if layer == "" {
		layer = "(root)"
	}
	ls := r.lastLayerStats
	if ls == nil || r.lastLayer != layer {
		var ok bool
		if ls, ok = r.byLayer[layer]; !ok {
			ls = &Stats{}
			r.byLayer[layer] = ls
		}
		r.lastLayer, r.lastLayerStats = layer, ls
	}
	ls.add(s)
	if i := int(ev.From); i >= 0 && i < len(r.procs) {
		r.procs[i].add(s)
		return
	}
	ps := r.lastProcStats
	if ps == nil || r.lastProc != ev.From {
		var ok bool
		if ps, ok = r.byProc[ev.From]; !ok {
			ps = &Stats{}
			r.byProc[ev.From] = ps
		}
		r.lastProc, r.lastProcStats = ev.From, ps
	}
	ps.add(s)
}

// RecordCombine notes one threshold combine operation.
func (r *Recorder) RecordCombine() { r.combines.Add(1) }

// RecordCertVerify notes one certificate verification.
func (r *Recorder) RecordCertVerify() { r.certVerifies.Add(1) }

// SetTicks records the run's duration in ticks (δ units).
func (r *Recorder) SetTicks(t types.Tick) { r.ticks.Store(int64(t)) }

// SetCacheStats records the run's verification-cache counters (hits,
// misses, single-flight waits).
func (r *Recorder) SetCacheStats(hits, misses, waits int64) {
	r.cacheHits.Store(hits)
	r.cacheMisses.Store(misses)
	r.cacheWaits.Store(waits)
}

// RecordNetFlush notes one coalesced transport flush carrying the given
// number of frames and wire bytes (headers included).
func (r *Recorder) RecordNetFlush(frames, bytes int) {
	r.netFlushes.Add(1)
	r.netFlushedFrames.Add(int64(frames))
	r.netFlushedBytes.Add(int64(bytes))
}

// RecordNetDrop notes one frame dropped by the transport's backpressure
// policy (the peer's outbox was full, or its connection already failed).
func (r *Recorder) RecordNetDrop() { r.netDrops.Add(1) }

// RecordChaosDrop notes one frame deliberately lost by the transport's
// chaos layer (drop verdict, partition window, or peer flap).
func (r *Recorder) RecordChaosDrop() { r.chaosDrops.Add(1) }

// RecordChaosDelay notes one frame deferred by chaos-injected latency
// jitter (delayed frames may overtake their successors: reordering).
func (r *Recorder) RecordChaosDelay() { r.chaosDelays.Add(1) }

// RecordEngineReject notes one session request shed by the engine's
// admission policy (in-flight window and queue both full).
func (r *Recorder) RecordEngineReject() { r.engineRejects.Add(1) }

// RecordEngineQueued notes one session request that had to wait behind
// the engine's in-flight window before starting.
func (r *Recorder) RecordEngineQueued() { r.engineQueued.Add(1) }

// RecordEngineLate notes messages discarded by the engine's session
// demux because their session had already retired.
func (r *Recorder) RecordEngineLate(n int64) { r.engineLate.Add(n) }

// Report is an immutable snapshot of a recorder.
type Report struct {
	Honest    Stats            // sends by correct processes (the paper's measure)
	Byzantine Stats            // sends by corrupted processes (informational)
	ByLayer   map[string]Stats // honest words per protocol layer
	ByProcess map[types.ProcessID]Stats
	Combines  int64
	CertVer   int64
	Ticks     types.Tick
	// Verification fast-path counters (0 when the cache is disabled).
	CacheHits   int64
	CacheMisses int64
	CacheWaits  int64
	// Transport data-plane counters (0 on the simulator and on the
	// transport's legacy synchronous send path).
	NetFlushes       int64
	NetFlushedFrames int64
	NetFlushedBytes  int64
	NetDrops         int64
	// Chaos-injection counters (0 unless the transport chaos layer is on).
	ChaosDrops  int64
	ChaosDelays int64
	// Engine admission counters (0 outside multi-session engine runs).
	EngineRejects int64
	EngineQueued  int64
	EngineLate    int64
}

// Snapshot copies the current counters.
func (r *Recorder) Snapshot() Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := Report{
		Honest:           r.honest,
		Byzantine:        r.byzantine,
		ByLayer:          make(map[string]Stats, len(r.byLayer)),
		ByProcess:        make(map[types.ProcessID]Stats, len(r.byProc)),
		Combines:         r.combines.Load(),
		CertVer:          r.certVerifies.Load(),
		Ticks:            types.Tick(r.ticks.Load()),
		CacheHits:        r.cacheHits.Load(),
		CacheMisses:      r.cacheMisses.Load(),
		CacheWaits:       r.cacheWaits.Load(),
		NetFlushes:       r.netFlushes.Load(),
		NetFlushedFrames: r.netFlushedFrames.Load(),
		NetFlushedBytes:  r.netFlushedBytes.Load(),
		NetDrops:         r.netDrops.Load(),
		ChaosDrops:       r.chaosDrops.Load(),
		ChaosDelays:      r.chaosDelays.Load(),
		EngineRejects:    r.engineRejects.Load(),
		EngineQueued:     r.engineQueued.Load(),
		EngineLate:       r.engineLate.Load(),
	}
	for k, v := range r.byLayer {
		rep.ByLayer[k] = *v
	}
	for k, v := range r.byProc {
		rep.ByProcess[k] = *v
	}
	for i := range r.procs {
		if r.procs[i] != (Stats{}) {
			s := rep.ByProcess[types.ProcessID(i)]
			s.add(r.procs[i])
			rep.ByProcess[types.ProcessID(i)] = s
		}
	}
	return rep
}

// Words is shorthand for the paper's headline number: words sent by correct
// processes.
func (rep Report) Words() int64 { return rep.Honest.Words }

// LayerTable renders the per-layer breakdown as an aligned text table,
// sorted by layer path. It is the textual regeneration of Figure 1.
func (rep Report) LayerTable() string {
	layers := make([]string, 0, len(rep.ByLayer))
	for l := range rep.ByLayer {
		layers = append(layers, l)
	}
	sort.Strings(layers)
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %10s %10s\n", "layer", "msgs", "words", "sigs")
	for _, l := range layers {
		s := rep.ByLayer[l]
		fmt.Fprintf(&b, "%-28s %10d %10d %10d\n", l, s.Messages, s.Words, s.Signatures)
	}
	fmt.Fprintf(&b, "%-28s %10d %10d %10d\n", "TOTAL (correct senders)",
		rep.Honest.Messages, rep.Honest.Words, rep.Honest.Signatures)
	return b.String()
}

// String summarises the report in one line.
func (rep Report) String() string {
	return fmt.Sprintf("words=%d msgs=%d sigs=%d combines=%d ticks=%d",
		rep.Honest.Words, rep.Honest.Messages, rep.Honest.Signatures, rep.Combines, rep.Ticks)
}
