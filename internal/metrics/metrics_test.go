package metrics

import (
	"strings"
	"sync"
	"testing"

	"adaptiveba/internal/types"
)

func TestRecorderTotals(t *testing.T) {
	r := NewRecorder()
	r.RecordSend(SendEvent{From: 0, To: 1, Words: 2, Bytes: 100, Sigs: 1, Layer: "bb", Honest: true})
	r.RecordSend(SendEvent{From: 1, To: 0, Words: 1, Layer: "bb/wba", Honest: true})
	r.RecordSend(SendEvent{From: 2, To: 0, Words: 5, Layer: "bb", Honest: false})

	rep := r.Snapshot()
	if rep.Honest.Messages != 2 || rep.Honest.Words != 3 || rep.Honest.Bytes != 100 || rep.Honest.Signatures != 1 {
		t.Errorf("honest stats wrong: %+v", rep.Honest)
	}
	if rep.Byzantine.Messages != 1 || rep.Byzantine.Words != 5 {
		t.Errorf("byzantine stats wrong: %+v", rep.Byzantine)
	}
	if rep.Words() != 3 {
		t.Errorf("Words() = %d", rep.Words())
	}
}

func TestEveryMessageCostsAtLeastOneWord(t *testing.T) {
	r := NewRecorder()
	r.RecordSend(SendEvent{From: 0, To: 1, Words: 0, Honest: true})
	r.RecordSend(SendEvent{From: 0, To: 1, Words: -7, Honest: true})
	if got := r.Snapshot().Honest.Words; got != 2 {
		t.Errorf("zero/negative word messages should cost 1 each, total %d", got)
	}
}

func TestLayerBreakdown(t *testing.T) {
	r := NewRecorder()
	r.RecordSend(SendEvent{From: 0, To: 1, Words: 1, Layer: "bb", Honest: true})
	r.RecordSend(SendEvent{From: 0, To: 1, Words: 2, Layer: "bb/wba", Honest: true})
	r.RecordSend(SendEvent{From: 0, To: 1, Words: 3, Layer: "bb/wba", Honest: true})
	r.RecordSend(SendEvent{From: 0, To: 1, Words: 9, Layer: "", Honest: true})
	// Byzantine sends never pollute the layer table.
	r.RecordSend(SendEvent{From: 9, To: 1, Words: 99, Layer: "bb", Honest: false})

	rep := r.Snapshot()
	if got := rep.ByLayer["bb"].Words; got != 1 {
		t.Errorf("bb words = %d", got)
	}
	if got := rep.ByLayer["bb/wba"].Words; got != 5 {
		t.Errorf("bb/wba words = %d", got)
	}
	if got := rep.ByLayer["(root)"].Words; got != 9 {
		t.Errorf("(root) words = %d", got)
	}
	table := rep.LayerTable()
	for _, want := range []string{"bb/wba", "(root)", "TOTAL"} {
		if !strings.Contains(table, want) {
			t.Errorf("LayerTable missing %q:\n%s", want, table)
		}
	}
}

func TestPerProcessBreakdown(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 3; i++ {
		r.RecordSend(SendEvent{From: 2, To: 0, Words: 1, Honest: true})
	}
	r.RecordSend(SendEvent{From: 1, To: 0, Words: 4, Honest: true})
	rep := r.Snapshot()
	if rep.ByProcess[types.ProcessID(2)].Messages != 3 {
		t.Errorf("p2 messages = %d", rep.ByProcess[2].Messages)
	}
	if rep.ByProcess[types.ProcessID(1)].Words != 4 {
		t.Errorf("p1 words = %d", rep.ByProcess[1].Words)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := NewRecorder()
	r.RecordSend(SendEvent{From: 0, To: 1, Words: 1, Layer: "x", Honest: true})
	rep := r.Snapshot()
	r.RecordSend(SendEvent{From: 0, To: 1, Words: 1, Layer: "x", Honest: true})
	if rep.ByLayer["x"].Words != 1 {
		t.Error("snapshot shares state with recorder")
	}
}

func TestAuxCountersAndTicks(t *testing.T) {
	r := NewRecorder()
	r.RecordCombine()
	r.RecordCombine()
	r.RecordCertVerify()
	r.SetTicks(42)
	rep := r.Snapshot()
	if rep.Combines != 2 || rep.CertVer != 1 || rep.Ticks != 42 {
		t.Errorf("aux counters: %+v", rep)
	}
	if !strings.Contains(rep.String(), "ticks=42") {
		t.Errorf("String() = %q", rep.String())
	}
}

func TestRecorderConcurrency(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.RecordSend(SendEvent{From: types.ProcessID(g), To: 0, Words: 1, Layer: "l", Honest: true})
			}
		}(g)
	}
	wg.Wait()
	if got := r.Snapshot().Honest.Messages; got != 8000 {
		t.Errorf("lost events under concurrency: %d", got)
	}
}

// TestNetCounters exercises the transport data-plane counters: coalesced
// flushes aggregate frames and bytes, drops count backpressure sheds, and
// both survive concurrent recording (outbox writers run off the tick loop).
func TestNetCounters(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.RecordNetFlush(3, 120)
				r.RecordNetDrop()
			}
		}()
	}
	wg.Wait()
	rep := r.Snapshot()
	if rep.NetFlushes != 400 || rep.NetFlushedFrames != 1200 || rep.NetFlushedBytes != 48000 {
		t.Errorf("flush counters: flushes=%d frames=%d bytes=%d",
			rep.NetFlushes, rep.NetFlushedFrames, rep.NetFlushedBytes)
	}
	if rep.NetDrops != 400 {
		t.Errorf("drops = %d, want 400", rep.NetDrops)
	}
}
