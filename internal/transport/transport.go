// Package transport runs proto.Machines as real networked nodes over TCP.
// It is the second runtime next to the simulator: the same deterministic
// state machines, driven by a wall-clock tick loop instead of simulated
// ticks.
//
// The synchrony assumption maps onto configuration: one tick lasts
// TickInterval, and the deployment must guarantee that a message sent
// during tick k is delivered before tick k+1 is processed (i.e.
// TickInterval comfortably exceeds the network's worst-case delay δ plus
// processing time). On localhost the default of 25ms is generous.
//
// Topology is a full mesh: every node dials every peer and uses the
// outbound connection for sending; inbound connections only receive. An
// authenticated hello frame binds each inbound connection to a process
// identity (demo-grade: it proves key possession but is not replay-proof
// across runs; production deployments would use mutually authenticated
// TLS).
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
	"unsafe"

	"adaptiveba/internal/acs"
	"adaptiveba/internal/baseline/dolevstrong"
	"adaptiveba/internal/baseline/echobb"
	"adaptiveba/internal/core/bb"
	"adaptiveba/internal/core/bbviaba"
	"adaptiveba/internal/core/strongba"
	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/metrics"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

// NewFullRegistry returns a registry with every protocol's payload codecs
// registered — enough to frame any machine in this repository.
func NewFullRegistry() *wire.Registry {
	reg := wire.NewRegistry()
	acs.RegisterWire(reg)
	bb.RegisterWire(reg)
	bbviaba.RegisterWire(reg)
	wba.RegisterWire(reg)
	strongba.RegisterWire(reg)
	dolevstrong.RegisterWire(reg)
	echobb.RegisterWire(reg)
	return reg
}

// Frame kinds on the stream.
const (
	frameHello byte = 1
	frameReady byte = 2
	frameMsg   byte = 3
)

// maxFrame bounds a single frame read. It is sized consistently with
// wire.MaxChunk (1 MiB per length-prefixed field): a message frame is a
// session path plus a (type, body) payload frame, so 4 MiB leaves room
// for a session, a type name, and two maximal fields. readFrame commits
// memory incrementally (see readChunk), so a hostile length prefix near
// this bound still cannot force a large allocation up front.
const maxFrame = 4 << 20

// readChunk bounds how far a frame reader's buffer grows ahead of bytes
// that have actually arrived. Oversize prefixes fail before any
// allocation; truncated frames allocate at most ~2x the bytes received.
const readChunk = 64 << 10

// Errors returned by the node.
var (
	ErrConfig  = errors.New("transport: invalid configuration")
	ErrNoPeers = errors.New("transport: could not connect to all peers")
	// ErrCrashed reports a CrashAfter fault injection firing.
	ErrCrashed = errors.New("transport: node crashed by fault injection")
	// ErrClosed reports that Close ended the run.
	ErrClosed = errors.New("transport: node closed")
	// ErrBackpressure reports a frame dropped because a peer's outbox was
	// full — the slow-peer policy drops rather than head-of-line blocks.
	ErrBackpressure = errors.New("transport: peer outbox full, frame dropped")
)

// Config describes one node.
type Config struct {
	Params types.Params
	Crypto *proto.Crypto
	ID     types.ProcessID
	// Addrs[i] is process i's listen address (host:port).
	Addrs []string
	// Registry frames payloads; NewFullRegistry() covers all protocols.
	Registry *wire.Registry
	// TickInterval is the duration of one tick (δ). Default 25ms.
	TickInterval time.Duration
	// DialTimeout bounds the whole connection setup. Default 10s.
	DialTimeout time.Duration
	// ExtraTicks keeps the node alive after its machine is done, so that
	// slower peers can still be served. Default 10.
	ExtraTicks int
	// Quorum is the number of peers (including self) that must be
	// connected and ready before the run starts; the rest are treated as
	// crashed. Default: all N (no tolerated absences at startup).
	Quorum int
	// CrashAfter, if positive, fail-stops the node after that many ticks:
	// it closes every connection and returns ErrCrashed — fault injection
	// for real-network runs.
	CrashAfter types.Tick
	// SessionHook, if set, is consulted for every authenticated inbound
	// message frame after the session path is parsed but before the
	// payload is decoded: return false to drop the frame (counted as a
	// net drop). Session-demuxing hosts use it to shed traffic for
	// sessions they have not admitted or have already retired, so a
	// node does not pay payload decoding and signature checks for words
	// it will never read. Ignored when SessionHookV2 is set.
	SessionHook func(from types.ProcessID, session string) bool
	// SessionHookV2, if set, replaces SessionHook with a tri-state
	// verdict: SessionAccept decodes the frame, SessionDrop sheds it (a
	// net drop), and SessionDefer parks the raw frame — undecoded, so a
	// deferred word costs no signature work — and re-offers it to the
	// hook at each subsequent tick until it is accepted or dropped.
	// Demuxing hosts running a decision-driven session schedule use
	// Defer for sessions they have not admitted *yet* (the frame is
	// early, not late), reserving Drop for retired sessions.
	SessionHookV2 func(from types.ProcessID, session string) SessionVerdict
	// DeferMax bounds the parked-frame buffer behind SessionDefer
	// (default 1024). When full, the oldest parked frame is shed as a
	// net drop — deferral degrades to the V1 behaviour, never blocks.
	DeferMax int
	// Recorder, if set, accounts for sent messages.
	Recorder *metrics.Recorder
	// Logf, if set, receives debug lines.
	Logf func(format string, args ...any)
	// LegacySend restores the pre-batching synchronous data plane: every
	// outgoing message encoded per recipient and written inline on the
	// tick goroutine. For A/B baselines (-bench-net-json) and bisection
	// only; the batched path is semantically identical on healthy links.
	LegacySend bool
	// FlushBytes bounds the bytes buffered per peer between coalesced
	// flushes. An enqueue that would exceed it drops the frame
	// (ErrBackpressure, surfaced through metrics) instead of blocking
	// the tick loop behind a slow peer. Default 4 MiB.
	FlushBytes int
	// WriteDeadline bounds each coalesced flush write (and each legacy
	// synchronous write), so a dead link fails fast. Default 10s.
	WriteDeadline time.Duration
	// Chaos, when any knob is set, injects seeded faults into the batched
	// send path: per-frame drops, latency jitter (which reorders), parity
	// partitions, and peer flaps. See ChaosConfig. Incompatible with
	// LegacySend (the synchronous path has no outboxes to defer into).
	Chaos ChaosConfig
}

// SessionVerdict is SessionHookV2's decision for one inbound frame.
type SessionVerdict int

// SessionHookV2 verdicts.
const (
	// SessionAccept decodes the frame and delivers it to the machine.
	SessionAccept SessionVerdict = iota
	// SessionDrop sheds the frame as a net drop (retired sessions).
	SessionDrop
	// SessionDefer parks the raw frame and re-offers it every tick
	// until the hook accepts or drops it (not-yet-admitted sessions).
	SessionDefer
)

// parkedFrame is one deferred inbound frame, held undecoded.
type parkedFrame struct {
	from    types.ProcessID
	session string
	payload []byte
}

// Node runs one machine over TCP. Close may be called from any
// goroutine, at any point of the lifecycle, any number of times.
type Node struct {
	cfg     Config
	machine proto.Machine

	mu       sync.Mutex
	inbox    []proto.Incoming
	deferred []parkedFrame
	readyCh  chan types.ProcessID

	listener net.Listener
	outbound []net.Conn
	inbound  map[net.Conn]struct{}

	// outboxes[i] is the coalescing writer for outbound[i] (nil for
	// crashed peers and on the legacy path). Built once after the start
	// barrier and only read by the tick goroutine thereafter.
	outboxes []*peerOutbox
	scratch  sendScratch
	chaos    *chaos // nil unless Config.Chaos is enabled

	closeOnce sync.Once
	closed    chan struct{}
}

// sendScratch is the tick goroutine's reusable encode-once state: the
// writers hold the grown buffers, and (key, session) memoize the last
// encoded payload so a broadcast is framed exactly once.
type sendScratch struct {
	payloadW *wire.Writer // registry (type, body) frame of the payload
	frameW   *wire.Writer // message body: session + framed payload
	key      payloadKey
	session  string
	valid    bool
	failed   bool // the memoized payload failed to encode
	words    int
}

// NewNode validates the configuration and builds a node.
func NewNode(cfg Config, machine proto.Machine) (*Node, error) {
	if !cfg.Params.Valid() || len(cfg.Addrs) != cfg.Params.N {
		return nil, fmt.Errorf("%w: need one address per process", ErrConfig)
	}
	if err := cfg.Params.CheckProcess(cfg.ID); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if cfg.Registry == nil || cfg.Crypto == nil || machine == nil {
		return nil, fmt.Errorf("%w: registry, crypto and machine are required", ErrConfig)
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 25 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.ExtraTicks <= 0 {
		cfg.ExtraTicks = 10
	}
	if cfg.Quorum <= 0 || cfg.Quorum > cfg.Params.N {
		cfg.Quorum = cfg.Params.N
	}
	if cfg.FlushBytes <= 0 {
		cfg.FlushBytes = 4 << 20
	}
	if cfg.DeferMax <= 0 {
		cfg.DeferMax = 1024
	}
	if cfg.WriteDeadline <= 0 {
		cfg.WriteDeadline = 10 * time.Second
	}
	if cfg.Chaos.Enabled() && cfg.LegacySend {
		return nil, fmt.Errorf("%w: chaos injection requires the batched send path", ErrConfig)
	}
	n := &Node{
		cfg:     cfg,
		machine: machine,
		readyCh: make(chan types.ProcessID, cfg.Params.N*2),
		inbound: make(map[net.Conn]struct{}),
		closed:  make(chan struct{}),
		scratch: sendScratch{payloadW: wire.NewWriter(), frameW: wire.NewWriter()},
	}
	if cfg.Chaos.Enabled() {
		n.chaos = newChaos(cfg.Chaos, cfg.ID, cfg.Params.N, cfg.TickInterval, cfg.Recorder)
	}
	return n, nil
}

// Close shuts the node down: it stops accepting, closes every inbound
// and outbound connection (unblocking their reader goroutines), and
// makes an in-flight Run return ErrClosed. It is idempotent and safe to
// call concurrently with Run and with itself.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.closed)
		n.mu.Lock()
		ln := n.listener
		conns := make([]net.Conn, 0, len(n.outbound)+len(n.inbound))
		for _, c := range n.outbound {
			if c != nil {
				conns = append(conns, c)
			}
		}
		for c := range n.inbound {
			conns = append(conns, c)
		}
		n.mu.Unlock()
		if ln != nil {
			ln.Close()
		}
		for _, c := range conns {
			c.Close()
		}
	})
	return nil
}

// helloBase is the byte string the hello frame signs.
func helloBase(id types.ProcessID) []byte {
	w := wire.NewWriter()
	w.PutString("transport/hello")
	w.PutProcess(id)
	return w.Bytes()
}

// Run connects to the mesh, synchronizes the start, drives the tick loop,
// and returns the machine's decision.
func (n *Node) Run(ctx context.Context) (types.Value, error) {
	ln, err := net.Listen("tcp", n.cfg.Addrs[n.cfg.ID])
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	n.mu.Lock()
	n.listener = ln
	n.mu.Unlock()
	// Close publishes n.closed before collecting connections under mu, so
	// either it sees the listener we just stored, or we see closed here.
	select {
	case <-n.closed:
		ln.Close()
		return nil, ErrClosed
	default:
	}
	defer ln.Close()
	defer n.closeOutbound()

	acceptCtx, stopAccept := context.WithCancel(ctx)
	defer stopAccept()
	go n.acceptLoop(acceptCtx, ln)

	if err := n.connectAll(ctx); err != nil {
		return nil, err
	}
	if err := n.barrier(ctx); err != nil {
		return nil, err
	}
	if !n.cfg.LegacySend {
		// The hello and ready frames went out synchronously above, so the
		// writers own their connections from the first tick onward.
		n.startOutboxes()
		defer n.stopOutboxes()
	}
	return n.tickLoop(ctx)
}

// startOutboxes spawns one coalescing writer per live outbound
// connection (including the loopback to self).
func (n *Node) startOutboxes() {
	n.outboxes = make([]*peerOutbox, n.cfg.Params.N)
	for i, conn := range n.outbound {
		if conn == nil {
			continue
		}
		n.outboxes[i] = newPeerOutbox(conn, n.cfg.FlushBytes, n.cfg.WriteDeadline, n.cfg.Recorder)
	}
}

// stopOutboxes drains and joins every writer goroutine. It runs before
// the deferred closeOutbound, so on a clean finish the final flush still
// has a live connection; after Close the writers fail fast instead.
func (n *Node) stopOutboxes() {
	for _, ob := range n.outboxes {
		if ob != nil {
			ob.shutdown()
		}
	}
}

// acceptLoop receives inbound connections and spawns readers.
func (n *Node) acceptLoop(ctx context.Context, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go n.readLoop(ctx, conn)
	}
}

// readLoop authenticates one inbound connection and ingests its frames.
func (n *Node) readLoop(ctx context.Context, conn net.Conn) {
	n.mu.Lock()
	n.inbound[conn] = struct{}{}
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
		conn.Close()
	}()
	// Same ordering argument as in Run: either Close sees this conn in
	// n.inbound, or we see closed and shut down ourselves.
	select {
	case <-n.closed:
		return
	default:
	}
	from := types.NilProcess
	var fr frameReader // reusable frame buffer: one allocation per conn, not per frame
	for {
		if ctx.Err() != nil {
			return
		}
		kind, body, err := fr.read(conn)
		if err != nil {
			return
		}
		switch kind {
		case frameHello:
			r := wire.NewReader(body)
			id := r.Process()
			s := r.Sig()
			if r.Close() != nil || n.cfg.Params.CheckProcess(id) != nil {
				return
			}
			if !n.cfg.Crypto.Scheme.Verify(id, helloBase(id), s) {
				n.logf("rejecting hello claiming %v", id)
				return
			}
			from = id
		case frameReady:
			if from == types.NilProcess {
				return
			}
			select {
			case n.readyCh <- from:
			default:
			}
		case frameMsg:
			if from == types.NilProcess {
				return // unauthenticated senders are dropped
			}
			r := wire.NewReader(body)
			session := r.String()
			payloadFrame := r.Bytes()
			if r.Close() != nil {
				return
			}
			switch n.sessionVerdict(from, session) {
			case SessionDrop:
				if n.cfg.Recorder != nil {
					n.cfg.Recorder.RecordNetDrop()
				}
				continue
			case SessionDefer:
				n.park(from, session, payloadFrame)
				continue
			}
			payload, err := n.cfg.Registry.DecodePayload(payloadFrame)
			if err != nil {
				n.logf("bad payload from %v: %v", from, err)
				continue
			}
			n.mu.Lock()
			n.inbox = append(n.inbox, proto.Incoming{From: from, Session: session, Payload: payload})
			n.mu.Unlock()
		default:
			return
		}
	}
}

// connectAll dials every peer (including a loopback to itself for
// uniform self-delivery) in parallel and sends the hello frame. Peers
// that stay unreachable until the deadline are treated as crashed; at
// least Quorum connections (including self) are required.
func (n *Node) connectAll(ctx context.Context) error {
	deadline := time.Now().Add(n.cfg.DialTimeout)
	s, err := n.cfg.Crypto.Signer(n.cfg.ID).Sign(helloBase(n.cfg.ID))
	if err != nil {
		return fmt.Errorf("transport: sign hello: %w", err)
	}
	hello := wire.NewWriter()
	hello.PutProcess(n.cfg.ID)
	hello.PutSig(s)

	var wg sync.WaitGroup
	conns := make([]net.Conn, n.cfg.Params.N)
	for i := 0; i < n.cfg.Params.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				select {
				case <-n.closed:
					return
				default:
				}
				conn, err := net.DialTimeout("tcp", n.cfg.Addrs[i], time.Second)
				if err == nil {
					conns[i] = conn
					return
				}
				if time.Now().After(deadline) {
					return // treated as crashed
				}
				time.Sleep(50 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	if ctx.Err() != nil {
		return ctx.Err()
	}
	connected := 0
	outbound := make([]net.Conn, n.cfg.Params.N)
	for i, conn := range conns {
		if conn == nil {
			continue
		}
		if err := writeFrame(conn, frameHello, hello.Bytes()); err != nil {
			conn.Close()
			continue
		}
		outbound[i] = conn
		connected++
	}
	n.mu.Lock()
	n.outbound = outbound
	n.mu.Unlock()
	select {
	case <-n.closed:
		n.closeOutbound()
		return ErrClosed
	default:
	}
	if connected < n.cfg.Quorum {
		return fmt.Errorf("%w: connected to %d/%d, need %d", ErrNoPeers, connected, n.cfg.Params.N, n.cfg.Quorum)
	}
	return nil
}

// barrier announces readiness and waits for Quorum peers (including
// itself) to do the same, so that all live nodes start tick 0 within a
// fraction of the tick interval.
func (n *Node) barrier(ctx context.Context) error {
	for i := range n.outbound {
		if n.outbound[i] == nil {
			continue
		}
		if err := writeFrame(n.outbound[i], frameReady, nil); err != nil {
			return fmt.Errorf("transport: ready to %d: %w", i, err)
		}
	}
	seen := make(map[types.ProcessID]bool)
	timeout := time.After(n.cfg.DialTimeout)
	for len(seen) < n.cfg.Quorum {
		select {
		case id := <-n.readyCh:
			seen[id] = true
		case <-timeout:
			return fmt.Errorf("%w: %d/%d ready", ErrNoPeers, len(seen), n.cfg.Quorum)
		case <-n.closed:
			return ErrClosed
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// tickLoop drives the machine until it is done (plus ExtraTicks) or the
// context ends.
func (n *Node) tickLoop(ctx context.Context) (types.Value, error) {
	ticker := time.NewTicker(n.cfg.TickInterval)
	defer ticker.Stop()

	var now types.Tick
	extra := 0
	outs := n.machine.Begin(0)
	n.send(outs)
	for {
		select {
		case <-ctx.Done():
			v, _ := n.machine.Output()
			return v, ctx.Err()
		case <-n.closed:
			v, _ := n.machine.Output()
			return v, ErrClosed
		case <-ticker.C:
		}
		now++
		if n.chaos != nil {
			n.chaos.tick(now)
		}
		if n.cfg.CrashAfter > 0 && now >= n.cfg.CrashAfter {
			n.closeOutbound()
			return nil, ErrCrashed
		}
		inbox := n.collectInbox()
		n.send(n.machine.Tick(now, inbox))
		if n.machine.Done() {
			extra++
			if extra >= n.cfg.ExtraTicks {
				v, _ := n.machine.Output()
				return v, nil
			}
		}
	}
}

// sessionVerdict runs the configured session hook (V2 wins over V1) for
// one parsed-but-undecoded frame.
func (n *Node) sessionVerdict(from types.ProcessID, session string) SessionVerdict {
	if n.cfg.SessionHookV2 != nil {
		return n.cfg.SessionHookV2(from, session)
	}
	if n.cfg.SessionHook != nil && !n.cfg.SessionHook(from, session) {
		return SessionDrop
	}
	return SessionAccept
}

// park defers one raw frame for later re-offering. The payload bytes are
// copied: the reader's frame buffer is reused for the next frame. When
// the buffer is at DeferMax the oldest parked frame is shed as a net
// drop, so a hook that never accepts degrades to V1 dropping.
func (n *Node) park(from types.ProcessID, session string, payload []byte) {
	n.mu.Lock()
	if len(n.deferred) >= n.cfg.DeferMax {
		n.deferred = n.deferred[1:]
		if n.cfg.Recorder != nil {
			n.cfg.Recorder.RecordNetDrop()
		}
	}
	n.deferred = append(n.deferred, parkedFrame{
		from:    from,
		session: session,
		payload: append([]byte(nil), payload...),
	})
	n.mu.Unlock()
}

// collectInbox takes this tick's inbox, first re-offering every parked
// frame to the session hook: accepted frames decode and deliver ahead of
// the tick's fresh arrivals (they are older), dropped ones shed, and
// still-deferred ones stay parked for the next tick.
func (n *Node) collectInbox() []proto.Incoming {
	n.mu.Lock()
	inbox := n.inbox
	n.inbox = nil
	parked := n.deferred
	n.deferred = nil
	n.mu.Unlock()
	if len(parked) == 0 {
		return inbox
	}
	var accepted []proto.Incoming
	keep := parked[:0]
	for _, p := range parked {
		switch n.sessionVerdict(p.from, p.session) {
		case SessionDrop:
			if n.cfg.Recorder != nil {
				n.cfg.Recorder.RecordNetDrop()
			}
		case SessionDefer:
			keep = append(keep, p)
		default:
			payload, err := n.cfg.Registry.DecodePayload(p.payload)
			if err != nil {
				n.logf("bad deferred payload from %v: %v", p.from, err)
				continue
			}
			accepted = append(accepted, proto.Incoming{From: p.from, Session: p.session, Payload: payload})
		}
	}
	if len(keep) > 0 {
		n.mu.Lock()
		// Frames parked by readers since the swap above arrived later —
		// they go behind the survivors to preserve arrival order.
		n.deferred = append(keep, n.deferred...)
		n.mu.Unlock()
	}
	if len(accepted) == 0 {
		return inbox
	}
	return append(accepted, inbox...)
}

// payloadKey identifies one boxed payload instance: the interface's type
// and data words, read without dereferencing (the same trick as the sim
// engine's cost memo). Keys are only compared between payloads reachable
// from the same outs slice, so address reuse cannot alias two distinct
// live payloads. Interface equality (==) would be wrong here: payloads
// legitimately contain slices (values, signatures), which makes them
// non-comparable.
type payloadKey [2]uintptr

func keyOf(p proto.Payload) payloadKey {
	return *(*payloadKey)(unsafe.Pointer(&p))
}

// send frames and transmits outgoing messages on the configured data
// plane. Both paths record identical metrics per delivered message.
func (n *Node) send(outs []proto.Outgoing) {
	if n.cfg.LegacySend {
		n.sendLegacy(outs)
		return
	}
	n.sendBatched(outs)
}

// sendBatched is the encode-once data plane: each distinct (session,
// payload) is framed exactly once into the node's scratch writers and the
// resulting bytes are enqueued on every recipient's outbox. A broadcast —
// n copies of one boxed payload, as proto.Broadcast emits — costs one
// registry encoding and n buffer appends; the steady-state path performs
// zero allocations (guarded by TestSendAllocCeiling).
func (n *Node) sendBatched(outs []proto.Outgoing) {
	s := &n.scratch
	s.valid = false // keys are only meaningful within one outs slice
	for i := range outs {
		o := &outs[i]
		if n.cfg.Params.CheckProcess(o.To) != nil || o.Payload == nil {
			continue
		}
		ob := n.outboxes[o.To]
		if ob == nil {
			continue // crashed peer: skipped before any encoding work
		}
		if k := keyOf(o.Payload); !s.valid || k != s.key || o.Session != s.session {
			s.key, s.session, s.valid = k, o.Session, true
			s.failed = false
			s.payloadW.Reset()
			if err := n.cfg.Registry.AppendPayload(s.payloadW, o.Payload); err != nil {
				n.logf("encode %s: %v", o.Payload.Type(), err)
				s.failed = true
			} else {
				s.frameW.Reset()
				s.frameW.PutString(o.Session)
				s.frameW.PutBytes(s.payloadW.Bytes())
				s.words = o.Payload.Words()
			}
		}
		if s.failed {
			continue
		}
		body := s.frameW.Bytes()
		if n.chaos != nil && n.chaos.apply(ob, o.To, body) {
			// The frame was chaos-dropped or deferred. Either way the
			// machine sent it, so it is metered like any send: the honest
			// word count must not depend on what the network does next.
			if n.cfg.Recorder != nil && o.To != n.cfg.ID {
				n.cfg.Recorder.RecordSend(metrics.SendEvent{
					From:   n.cfg.ID,
					To:     o.To,
					Words:  s.words,
					Bytes:  len(body) + 5,
					Layer:  o.Session,
					Honest: true,
				})
			}
			continue
		}
		if err := ob.enqueue(frameMsg, body); err != nil {
			n.logf("send to %v: %v", o.To, err)
			if n.cfg.Recorder != nil {
				n.cfg.Recorder.RecordNetDrop()
			}
			continue
		}
		if n.cfg.Recorder != nil && o.To != n.cfg.ID {
			n.cfg.Recorder.RecordSend(metrics.SendEvent{
				From:   n.cfg.ID,
				To:     o.To,
				Words:  s.words,
				Bytes:  len(body) + 5, // frame header counted once, as on the legacy path
				Layer:  o.Session,
				Honest: true,
			})
		}
	}
}

// sendLegacy is the pre-batching synchronous path: encode and write per
// recipient, inline on the tick goroutine.
func (n *Node) sendLegacy(outs []proto.Outgoing) {
	for _, o := range outs {
		// Skip crashed peers and out-of-range IDs before spending any
		// encoding work (or logging spurious encode errors) on them.
		if n.cfg.Params.CheckProcess(o.To) != nil || o.Payload == nil {
			continue
		}
		conn := n.outbound[o.To]
		if conn == nil {
			continue // crashed peer
		}
		payloadFrame, err := n.cfg.Registry.EncodePayload(o.Payload)
		if err != nil {
			n.logf("encode %s: %v", o.Payload.Type(), err)
			continue
		}
		w := wire.GetWriter()
		w.PutString(o.Session)
		w.PutBytes(payloadFrame)
		if n.cfg.WriteDeadline > 0 {
			conn.SetWriteDeadline(time.Now().Add(n.cfg.WriteDeadline))
		}
		err = writeFrame(conn, frameMsg, w.Bytes())
		frameBytes := w.Len() + 5
		wire.PutWriter(w)
		if err != nil {
			n.logf("send to %v: %v", o.To, err)
			continue
		}
		if n.cfg.Recorder != nil && o.To != n.cfg.ID {
			n.cfg.Recorder.RecordSend(metrics.SendEvent{
				From:   n.cfg.ID,
				To:     o.To,
				Words:  o.Payload.Words(),
				Bytes:  frameBytes,
				Layer:  o.Session,
				Honest: true,
			})
		}
	}
}

func (n *Node) closeOutbound() {
	n.mu.Lock()
	conns := append([]net.Conn(nil), n.outbound...)
	n.mu.Unlock()
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf("node %v: "+format, append([]any{n.cfg.ID}, args...)...)
	}
}

// frameBufPool recycles the scratch buffers behind writeFrame, so the
// synchronous framing path (hello/ready, legacy sends) stops allocating
// per frame.
var frameBufPool = sync.Pool{
	New: func() any { return new([]byte) },
}

// writeFrame emits [len u32][kind][body] in one write from a pooled
// buffer.
func writeFrame(w io.Writer, kind byte, body []byte) error {
	bp := frameBufPool.Get().(*[]byte)
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = kind
	buf := append((*bp)[:0], hdr[:]...)
	buf = append(buf, body...)
	*bp = buf
	_, err := w.Write(buf)
	frameBufPool.Put(bp)
	return err
}

// frameReader reads [len u32][kind][body] frames from one connection,
// reusing a single grow-only buffer across frames. The length prefix is
// read into a struct field rather than a local so that passing it to
// io.ReadFull does not heap-allocate per frame.
type frameReader struct {
	buf    []byte
	lenBuf [4]byte
}

// read returns the next frame's kind and body. The body aliases the
// reader's internal buffer and is valid only until the next read call.
//
// Allocation is bounded against hostile length prefixes consistently
// with wire.MaxChunk's philosophy: prefixes beyond maxFrame fail before
// any allocation, and in-range frames commit buffer memory in readChunk
// steps (doubling, capped at the frame size), so a truncated or
// slow-trickling frame can pin at most about twice the bytes actually
// received.
func (fr *frameReader) read(r io.Reader) (byte, []byte, error) {
	if _, err := io.ReadFull(r, fr.lenBuf[:]); err != nil {
		return 0, nil, err
	}
	size := binary.BigEndian.Uint32(fr.lenBuf[:])
	if size == 0 || size > maxFrame {
		return 0, nil, fmt.Errorf("transport: bad frame size %d", size)
	}
	n := int(size)
	buf := fr.buf[:0]
	for got := 0; got < n; {
		step := n - got
		if step > readChunk {
			step = readChunk
		}
		need := got + step
		if cap(buf) < need {
			newCap := 2 * cap(buf)
			if newCap < need {
				newCap = need
			}
			if newCap > n {
				newCap = n
			}
			grown := make([]byte, got, newCap)
			copy(grown, buf[:got])
			buf = grown
		}
		buf = buf[:need]
		if _, err := io.ReadFull(r, buf[got:need]); err != nil {
			fr.buf = buf[:0]
			return 0, nil, err
		}
		got = need
	}
	fr.buf = buf
	return buf[0], buf[1:], nil
}

// readFrame reads one frame with a throwaway buffer (setup-time helper;
// steady-state readers hold a frameReader).
func readFrame(r io.Reader) (byte, []byte, error) {
	var fr frameReader
	return fr.read(r)
}
