package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"
)

// TestBatchedVsLegacyClusterDeterminism is the golden-trace pattern
// applied to the TCP stack: a loopback BB cluster must produce
// byte-identical metrics CSVs and decisions whether the data plane
// batches (encode-once + coalescing outboxes) or writes synchronously
// per message (-legacy-send).
func TestBatchedVsLegacyClusterDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full TCP cluster runs")
	}
	const n = 5
	const tick = 30 * time.Millisecond

	batched, err := RunLoopbackCluster(n, false, tick)
	if err != nil {
		t.Fatalf("batched cluster: %v", err)
	}
	legacy, err := RunLoopbackCluster(n, true, tick)
	if err != nil {
		t.Fatalf("legacy cluster: %v", err)
	}

	if batched.Drops != 0 {
		t.Errorf("batched run dropped %d frames on a healthy loopback mesh", batched.Drops)
	}
	for i := range batched.Decisions {
		if !batched.Decisions[i].Equal(legacy.Decisions[i]) {
			t.Errorf("node %d decided %q batched vs %q legacy", i, batched.Decisions[i], legacy.Decisions[i])
		}
	}
	if !bytes.Equal(batched.CSV, legacy.CSV) {
		t.Errorf("metrics CSVs differ between send paths:\n--- batched ---\n%s--- legacy ---\n%s",
			batched.CSV, legacy.CSV)
	}
}

// TestSendBytesParity pins the metrics contract of the two send paths:
// RecordSend.Bytes must report the identical per-message wire size
// (frame header counted once) on both, so byte tables stay comparable
// across PRs regardless of the data plane in use.
func TestSendBytesParity(t *testing.T) {
	const n = 7
	snapshots := make(map[bool]int64)
	for _, legacy := range []bool{false, true} {
		sb, err := NewSendBench(n, legacy)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			sb.Broadcast()
		}
		sb.Drain()
		rep := sb.Snapshot()
		if want := int64(10 * sb.MessagesPerBroadcast()); rep.Honest.Messages != want {
			t.Errorf("legacy=%v: %d messages, want %d", legacy, rep.Honest.Messages, want)
		}
		snapshots[legacy] = rep.Honest.Bytes
		sb.Close()
	}
	if snapshots[false] != snapshots[true] {
		t.Errorf("Bytes diverge: batched=%d legacy=%d", snapshots[false], snapshots[true])
	}
	if snapshots[false] == 0 {
		t.Error("no bytes recorded")
	}

	// The reported size must be the exact frame length: header (5) +
	// session string (8+len) + payload frame as a length-prefixed chunk.
	sb, err := NewSendBench(3, false)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	payloadFrame, err := sb.node.cfg.Registry.EncodePayload(sb.outs[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	wantPerMsg := 5 + 8 + len(sb.outs[0].Session) + 8 + len(payloadFrame)
	sb.Broadcast()
	sb.Drain()
	rep := sb.Snapshot()
	if got := rep.Honest.Bytes / rep.Honest.Messages; got != int64(wantPerMsg) {
		t.Errorf("bytes per message = %d, want %d", got, wantPerMsg)
	}
}

// TestSendAllocCeiling is the CI allocation guard for the pooled send
// path, mirroring the sim engine's TestSimTickAllocCeiling: once the
// scratch writers and outbox buffers are warm, a steady-state broadcast
// through Node.send must not allocate. (The legacy path allocates
// several times per message; a regression here shows up as allocs >= n.)
func TestSendAllocCeiling(t *testing.T) {
	sb, err := NewSendBench(9, false)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	for i := 0; i < 200; i++ { // warm buffers and pools
		sb.Broadcast()
	}
	sb.Drain()
	allocs := testing.AllocsPerRun(100, sb.Broadcast)
	sb.Drain()
	if allocs > 0.5 {
		t.Errorf("steady-state Broadcast allocates %.2f times per call, want 0", allocs)
	}
}

// TestFrameReaderBoundsAllocations: a hostile length prefix near
// maxFrame with almost no body behind it must fail without committing
// memory for the claimed size — the reader grows in readChunk steps as
// bytes actually arrive.
func TestFrameReaderBoundsAllocations(t *testing.T) {
	hostile := make([]byte, 4)
	binary.BigEndian.PutUint32(hostile, maxFrame) // in-range, so only streaming bounds protect us
	hostile = append(hostile, frameMsg, 'h', 'i')

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var fr frameReader
	if _, _, err := fr.read(bytes.NewReader(hostile)); err == nil {
		t.Fatal("truncated hostile frame did not error")
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 2*readChunk {
		t.Errorf("truncated 7-byte frame allocated %d bytes (claimed %d)", grew, maxFrame)
	}

	// Oversize and zero-length prefixes fail before any body allocation:
	// only the error value itself may allocate, never buffer memory.
	for _, size := range []uint32{0, maxFrame + 1, 1<<32 - 1} {
		in := make([]byte, 4)
		binary.BigEndian.PutUint32(in, size)
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < 10; i++ {
			var r frameReader
			if _, _, err := r.read(bytes.NewReader(in)); err == nil {
				t.Fatalf("size %d accepted", size)
			}
		}
		runtime.ReadMemStats(&after)
		if grew := after.TotalAlloc - before.TotalAlloc; grew > 4096 {
			t.Errorf("size %d: %d bytes allocated across 10 rejections", size, grew)
		}
	}
}

// TestFrameReaderReusesBuffer: steady-state frame reads off one
// connection allocate nothing once the buffer has grown.
func TestFrameReaderReusesBuffer(t *testing.T) {
	body := bytes.Repeat([]byte{0xab}, 1024)
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		for i := 0; i < 120; i++ {
			writeFrame(c1, frameMsg, body)
		}
	}()
	var fr frameReader
	if _, _, err := fr.read(c2); err != nil { // warm the buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		kind, got, err := fr.read(c2)
		if err != nil || kind != frameMsg || len(got) != len(body) {
			t.Fatalf("read: kind=%d len=%d err=%v", kind, len(got), err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state frame read allocates %.1f times", allocs)
	}
}

// TestOutboxBackpressureDropsInsteadOfBlocking: with a stalled peer the
// outbox must reject frames beyond its bound immediately — the enqueue
// side (the tick loop in production) never blocks, and once the write
// deadline kills the connection the error becomes sticky.
func TestOutboxBackpressureDropsInsteadOfBlocking(t *testing.T) {
	c1, c2 := net.Pipe() // nothing ever reads c2: the peer is stalled
	defer c2.Close()
	ob := newPeerOutbox(c1, 256, 50*time.Millisecond, nil)
	defer func() {
		ob.shutdown()
		c1.Close()
	}()

	body := make([]byte, 64)
	deadline := time.Now().Add(10 * time.Second)
	var sawBackpressure, sawDead bool
	for time.Now().Before(deadline) && !(sawBackpressure && sawDead) {
		start := time.Now()
		err := ob.enqueue(frameMsg, body)
		if d := time.Since(start); d > time.Second {
			t.Fatalf("enqueue blocked for %v", d)
		}
		switch {
		case errors.Is(err, ErrBackpressure):
			sawBackpressure = true
		case err != nil:
			sawDead = true // write deadline fired; sticky connection error
		}
		time.Sleep(time.Millisecond)
	}
	if !sawBackpressure {
		t.Error("never saw ErrBackpressure from a full outbox")
	}
	if !sawDead {
		t.Error("write deadline never surfaced as a sticky enqueue error")
	}
}
