package transport

import (
	"io"
	"time"

	"adaptiveba/internal/types"
)

// This file exports the transport's framing and chaos-verdict primitives
// for other subsystems that speak the same wire format over their own
// connections — concretely internal/service, whose client/server path
// reuses the [len u32][kind u8][body] frame, the hostile-length bounds,
// and the seeded chaos schedule without owning a full mesh Node.

// ServiceFrameBase is the first frame kind available to non-mesh users.
// Kinds below it are reserved for the mesh handshake and data plane
// (hello/ready/msg), so a service speaking over the same framing can
// never collide with them.
const ServiceFrameBase byte = 16

// MaxFrame is the frame-size bound enforced by both WriteFrame readers
// and FrameReader: length prefixes beyond it fail before any allocation.
const MaxFrame = maxFrame

// WriteFrame emits one [len u32][kind][body] frame in a single write
// from a pooled buffer — the same frame format the mesh speaks.
func WriteFrame(w io.Writer, kind byte, body []byte) error {
	return writeFrame(w, kind, body)
}

// FrameReader reads frames written by WriteFrame, reusing one grow-only
// buffer across frames and bounding allocation against hostile length
// prefixes (see frameReader.read). The zero value is ready to use.
type FrameReader struct {
	fr frameReader
}

// Read returns the next frame's kind and body. The body aliases the
// reader's internal buffer and is valid only until the next Read call.
func (f *FrameReader) Read(r io.Reader) (byte, []byte, error) {
	return f.fr.read(r)
}

// ChaosVerdicts exposes the chaos schedule's pure decision core to
// non-mesh paths. Where the mesh's chaos layer both decides and applies
// (deferring frames into peer outboxes), a ChaosVerdicts user asks for
// the verdict and handles the drop or delay itself — the service's
// server, for instance, drops or defers inbound client request frames.
// Determinism matches the mesh layer: the verdict sequence is a pure
// function of the seed.
type ChaosVerdicts struct {
	c *chaos
}

// NewChaosVerdicts builds a verdict stream for one endpoint. self/n give
// the endpoint's identity and population (used by partition parity and
// flap victim selection); tick is the interval MaxDelay defaults
// against.
func NewChaosVerdicts(cfg ChaosConfig, self types.ProcessID, n int, tick time.Duration) *ChaosVerdicts {
	return &ChaosVerdicts{c: newChaos(cfg, self, n, tick, nil)}
}

// Tick advances the chaos clock; partition and flap windows are
// tick-indexed.
func (v *ChaosVerdicts) Tick(now types.Tick) { v.c.tick(now) }

// Verdict decides one frame's fate: deliver (false, 0), drop (true, 0),
// or deliver after the returned delay.
func (v *ChaosVerdicts) Verdict(to types.ProcessID) (drop bool, delay time.Duration) {
	return v.c.verdict(to)
}
