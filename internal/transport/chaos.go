package transport

import (
	"math/rand"
	"time"

	"adaptiveba/internal/metrics"
	"adaptiveba/internal/types"
)

// ChaosConfig is the transport's fault-injection schedule. It wraps the
// batched outbox path: every outgoing network frame is given a seeded
// verdict — deliver, drop, or delay — before it reaches the peer's
// outbox, and tick-indexed windows cut whole links (partitions, flaps).
// This deliberately violates the synchrony assumption the tick loop
// encodes (a message sent during tick k arrives before tick k+1), which
// is exactly the point: the protocols' δ-bound slack, help rounds, and
// 2δ fallback windows are supposed to absorb bounded violations, and the
// chaos tests pin where they do.
//
// Self-deliveries are never touched (they are local, not network), and
// the chaos layer requires the batched data plane (it defers frames into
// peer outboxes; the legacy synchronous path has none).
//
// Determinism: all verdicts are drawn from one rand.Rand seeded with
// Seed on the tick goroutine, so a node's verdict *sequence* is a pure
// function of its seed. Which frame receives which verdict still depends
// on real scheduling (this is wall-clock TCP, not the simulator), so
// chaos runs are reproducible in distribution, not byte-for-byte.
type ChaosConfig struct {
	// Seed drives every verdict. 0 is a valid seed.
	Seed int64
	// DropRate is the per-frame loss probability (0..1).
	DropRate float64
	// DelayRate is the per-frame jitter probability (0..1); a delayed
	// frame is enqueued after a uniform (0, MaxDelay] pause, overtaking
	// frames sent later — jitter doubles as reordering.
	DelayRate float64
	// MaxDelay bounds the injected latency. Keep it under the node's
	// TickInterval to stay inside the δ-bound; push it past 2× to violate
	// even the fallback's doubled rounds. Default TickInterval/4.
	MaxDelay time.Duration
	// PartitionEvery starts a partition window every that many ticks
	// (0 = no partitions): for PartitionTicks ticks the mesh is split by
	// process-id parity and frames crossing the cut are dropped.
	PartitionEvery types.Tick
	// PartitionTicks is the partition window length (default 1).
	PartitionTicks types.Tick
	// FlapEvery flaps one peer every that many ticks (0 = no flaps): for
	// FlapTicks ticks every frame to the seeded-chosen victim is dropped,
	// simulating a link that blinks out and recovers.
	FlapEvery types.Tick
	// FlapTicks is the flap window length (default 1).
	FlapTicks types.Tick
}

// Enabled reports whether any chaos knob is active.
func (c ChaosConfig) Enabled() bool {
	return c.DropRate > 0 || c.DelayRate > 0 ||
		c.PartitionEvery > 0 || c.FlapEvery > 0
}

// chaos executes the schedule for one node. All methods run on the tick
// goroutine except the delayed-enqueue timers it arms.
type chaos struct {
	cfg  ChaosConfig
	self types.ProcessID
	n    int
	rec  *metrics.Recorder
	rng  *rand.Rand
	now  types.Tick
}

// newChaos resolves defaults against the node's tick interval.
func newChaos(cfg ChaosConfig, self types.ProcessID, n int, tick time.Duration, rec *metrics.Recorder) *chaos {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = tick / 4
	}
	if cfg.PartitionEvery > 0 && cfg.PartitionTicks <= 0 {
		cfg.PartitionTicks = 1
	}
	if cfg.FlapEvery > 0 && cfg.FlapTicks <= 0 {
		cfg.FlapTicks = 1
	}
	return &chaos{
		cfg:  cfg,
		self: self,
		n:    n,
		rec:  rec,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
}

// tick advances the chaos clock (called once per tick-loop iteration).
func (c *chaos) tick(now types.Tick) { c.now = now }

// chaosSplitmix is the SplitMix64 finalizer, used to derive per-window
// flap victims from the seed without touching the verdict stream.
func chaosSplitmix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// verdict decides one frame's fate: deliver (drop=false, delay=0),
// drop, or deliver after delay.
func (c *chaos) verdict(to types.ProcessID) (drop bool, delay time.Duration) {
	// Partition window: drop frames crossing the parity cut.
	if e := c.cfg.PartitionEvery; e > 0 && c.now%e < c.cfg.PartitionTicks {
		if int(c.self)%2 != int(to)%2 {
			return true, 0
		}
	}
	// Peer flap: drop every frame to this window's victim.
	if e := c.cfg.FlapEvery; e > 0 && c.now%e < c.cfg.FlapTicks {
		window := uint64(c.now / e)
		victim := types.ProcessID(chaosSplitmix(uint64(c.cfg.Seed)+window) % uint64(c.n))
		if to == victim && victim != c.self {
			return true, 0
		}
	}
	if c.cfg.DropRate > 0 && c.rng.Float64() < c.cfg.DropRate {
		return true, 0
	}
	if c.cfg.DelayRate > 0 && c.rng.Float64() < c.cfg.DelayRate {
		return false, time.Duration(1 + c.rng.Int63n(int64(c.cfg.MaxDelay)))
	}
	return false, 0
}

// apply runs one frame through the schedule. It returns true when the
// frame was consumed (dropped or deferred); false means the caller
// should enqueue it normally. Deferred frames copy the body (the
// caller's buffer is scratch) and re-enqueue from a timer; a frame whose
// delay outlives the outbox is silently retained by the dead queue,
// exactly like a frame lost in a failing kernel buffer.
func (c *chaos) apply(ob *peerOutbox, to types.ProcessID, body []byte) bool {
	if to == c.self {
		return false // local delivery is not a network link
	}
	drop, delay := c.verdict(to)
	if drop {
		if c.rec != nil {
			c.rec.RecordChaosDrop()
		}
		return true
	}
	if delay > 0 {
		cp := append([]byte(nil), body...)
		time.AfterFunc(delay, func() { ob.enqueue(frameMsg, cp) })
		if c.rec != nil {
			c.rec.RecordChaosDelay()
		}
		return true
	}
	return false
}
