package transport

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"
)

// FuzzReadFrame feeds arbitrary [len][kind][body] byte streams to the
// frame reader: it must never panic, must reject zero/oversize length
// prefixes and truncated bodies with an error, and must never allocate
// far beyond the bytes actually present in the input — a hostile prefix
// claiming maxFrame backed by a 3-byte stream must not commit megabytes.
func FuzzReadFrame(f *testing.F) {
	valid := make([]byte, 4)
	binary.BigEndian.PutUint32(valid, 6)
	valid = append(valid, frameMsg, 'h', 'e', 'l', 'l', 'o')
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})                       // zero length
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, frameMsg}) // oversize
	hostile := make([]byte, 4)
	binary.BigEndian.PutUint32(hostile, maxFrame)
	f.Add(append(hostile, frameHello)) // in-range claim, truncated body
	f.Fuzz(func(t *testing.T, data []byte) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		var fr frameReader
		kind, body, err := fr.read(bytes.NewReader(data))
		runtime.ReadMemStats(&after)

		// Allocation bound: the reader may hold about twice the received
		// bytes (geometric growth) plus one readChunk step — never the
		// claimed frame size.
		if grew := after.TotalAlloc - before.TotalAlloc; grew > 2*uint64(len(data))+2*readChunk+4096 {
			t.Fatalf("read of %d input bytes allocated %d bytes", len(data), grew)
		}
		if err != nil {
			return
		}
		// A successful read must be consistent with the input framing.
		if len(data) < 5 {
			t.Fatalf("accepted a %d-byte stream", len(data))
		}
		size := binary.BigEndian.Uint32(data[:4])
		if size == 0 || size > maxFrame {
			t.Fatalf("accepted frame size %d", size)
		}
		if kind != data[4] {
			t.Fatalf("kind = %d, want %d", kind, data[4])
		}
		if uint32(len(body)) != size-1 {
			t.Fatalf("body length %d for size %d", len(body), size)
		}
		if !bytes.Equal(body, data[5:5+len(body)]) {
			t.Fatal("body does not match input")
		}
	})
}

// FuzzReadFrameRoundTrip: every frame writeFrame emits must read back
// identically through the chunked reader.
func FuzzReadFrameRoundTrip(f *testing.F) {
	f.Add(byte(frameMsg), []byte("payload"))
	f.Add(byte(frameHello), []byte{})
	f.Add(byte(0xee), make([]byte, 3*readChunk+17)) // spans several chunks
	f.Fuzz(func(t *testing.T, kind byte, body []byte) {
		if len(body)+1 > maxFrame {
			t.Skip()
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, kind, body); err != nil {
			t.Fatal(err)
		}
		var fr frameReader
		gotKind, gotBody, err := fr.read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if gotKind != kind || !bytes.Equal(gotBody, body) {
			t.Fatalf("round trip mismatch: kind %d/%d, body %d/%d bytes", gotKind, kind, len(gotBody), len(body))
		}
	})
}
