package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"adaptiveba/internal/core/bb"
	"adaptiveba/internal/core/strongba"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/kv"
	"adaptiveba/internal/metrics"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/smr"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

// freeAddrs reserves n distinct localhost ports and releases them so the
// nodes can bind.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

func setup(t *testing.T, n int) (*proto.Crypto, types.Params) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("tcp-test"))
	if err != nil {
		t.Fatal(err)
	}
	return proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d")), params
}

// runCluster starts one node per process and waits for all decisions.
func runCluster(t *testing.T, crypto *proto.Crypto, params types.Params, addrs []string, factory func(id types.ProcessID) proto.Machine) map[types.ProcessID]types.Value {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var (
		mu        sync.Mutex
		decisions = make(map[types.ProcessID]types.Value)
		wg        sync.WaitGroup
		firstErr  error
	)
	for i := 0; i < params.N; i++ {
		id := types.ProcessID(i)
		node, err := NewNode(Config{
			Params:       params,
			Crypto:       crypto,
			ID:           id,
			Addrs:        addrs,
			Registry:     NewFullRegistry(),
			TickInterval: 10 * time.Millisecond,
		}, factory(id))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := node.Run(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("node %v: %w", id, err)
				return
			}
			decisions[id] = v
		}()
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	return decisions
}

func TestStrongBAOverTCP(t *testing.T) {
	crypto, params := setup(t, 5)
	addrs := freeAddrs(t, 5)
	decisions := runCluster(t, crypto, params, addrs, func(id types.ProcessID) proto.Machine {
		m, err := strongba.NewMachine(strongba.Config{
			Params: params, Crypto: crypto, ID: id,
			Input: types.One, Tag: "tcp",
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	})
	if len(decisions) != 5 {
		t.Fatalf("got %d decisions", len(decisions))
	}
	for id, v := range decisions {
		if !v.Equal(types.One) {
			t.Errorf("node %v decided %v", id, v)
		}
	}
}

func TestBBOverTCP(t *testing.T) {
	crypto, params := setup(t, 5)
	addrs := freeAddrs(t, 5)
	decisions := runCluster(t, crypto, params, addrs, func(id types.ProcessID) proto.Machine {
		return bb.NewMachine(bb.Config{
			Params: params, Crypto: crypto, ID: id,
			Sender: 0, Input: types.Value("over-tcp"), Tag: "tcp",
		})
	})
	for id, v := range decisions {
		if !v.Equal(types.Value("over-tcp")) {
			t.Errorf("node %v decided %v", id, v)
		}
	}
}

func TestRecorderCountsBytes(t *testing.T) {
	crypto, params := setup(t, 3)
	addrs := freeAddrs(t, 3)
	recs := make([]*metrics.Recorder, 3)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		id := types.ProcessID(i)
		recs[i] = metrics.NewRecorder()
		m, err := strongba.NewMachine(strongba.Config{
			Params: params, Crypto: crypto, ID: id, Input: types.Zero, Tag: "rec",
		})
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(Config{
			Params: params, Crypto: crypto, ID: id, Addrs: addrs,
			Registry:     NewFullRegistry(),
			TickInterval: 10 * time.Millisecond,
			Recorder:     recs[i],
		}, m)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := node.Run(ctx); err != nil {
				t.Errorf("node %v: %v", id, err)
			}
		}()
	}
	wg.Wait()
	var totalBytes, totalWords int64
	for _, r := range recs {
		s := r.Snapshot()
		totalBytes += s.Honest.Bytes
		totalWords += s.Honest.Words
	}
	if totalBytes == 0 || totalWords == 0 {
		t.Errorf("recorder saw bytes=%d words=%d", totalBytes, totalWords)
	}
}

func TestNodeConfigValidation(t *testing.T) {
	crypto, params := setup(t, 3)
	m, err := strongba.NewMachine(strongba.Config{Params: params, Crypto: crypto, ID: 0, Input: types.One, Tag: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode(Config{Params: params, Crypto: crypto, ID: 0, Addrs: []string{"a"}, Registry: NewFullRegistry()}, m); err == nil {
		t.Error("wrong addr count accepted")
	}
	if _, err := NewNode(Config{Params: params, Crypto: crypto, ID: 9, Addrs: []string{"a", "b", "c"}, Registry: NewFullRegistry()}, m); err == nil {
		t.Error("bad id accepted")
	}
	if _, err := NewNode(Config{Params: params, Crypto: crypto, ID: 0, Addrs: []string{"a", "b", "c"}}, m); err == nil {
		t.Error("nil registry accepted")
	}
}

func TestFullRegistryCoversAllProtocols(t *testing.T) {
	reg := NewFullRegistry()
	for _, p := range []proto.Payload{
		bb.HelpReq{Phase: 1},
		strongba.Fallback{},
	} {
		if _, err := reg.EncodePayload(p); err != nil {
			t.Errorf("%s not registered: %v", p.Type(), err)
		}
	}
}

// TestCrashInjectionOverTCP fail-stops one node mid-run; the survivors
// must still decide via the fallback path — fault tolerance demonstrated
// on the real network stack, not just the simulator.
func TestCrashInjectionOverTCP(t *testing.T) {
	crypto, params := setup(t, 5)
	addrs := freeAddrs(t, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var (
		mu        sync.Mutex
		decisions = make(map[types.ProcessID]types.Value)
		crashed   int
		wg        sync.WaitGroup
	)
	for i := 0; i < 5; i++ {
		id := types.ProcessID(i)
		m, err := strongba.NewMachine(strongba.Config{
			Params: params, Crypto: crypto, ID: id, Input: types.One, Tag: "ci",
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Params: params, Crypto: crypto, ID: id, Addrs: addrs,
			Registry:     NewFullRegistry(),
			TickInterval: 10 * time.Millisecond,
		}
		if id == 4 {
			cfg.CrashAfter = 2 // dies before the fast path can finish
		}
		node, err := NewNode(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := node.Run(ctx)
			mu.Lock()
			defer mu.Unlock()
			if errors.Is(err, ErrCrashed) {
				crashed++
				return
			}
			if err != nil {
				t.Errorf("node %v: %v", id, err)
				return
			}
			decisions[id] = v
		}()
	}
	wg.Wait()
	if crashed != 1 {
		t.Fatalf("crashed = %d, want 1", crashed)
	}
	if len(decisions) != 4 {
		t.Fatalf("decisions = %d, want 4 survivors", len(decisions))
	}
	for id, v := range decisions {
		if !v.Equal(types.One) {
			t.Errorf("node %v decided %v, want 1", id, v)
		}
	}
}

// chatter is a payload for the lifecycle tests below.
type chatter struct{ Seq int }

func (chatter) Type() string { return "test/chatter" }
func (chatter) Words() int   { return 1 }

// chatterMachine broadcasts every tick and never finishes, so a node
// running it has active deliveries in flight until Close ends the run.
type chatterMachine struct {
	params types.Params
	seq    int
}

func (m *chatterMachine) broadcast() []proto.Outgoing {
	m.seq++
	outs := make([]proto.Outgoing, 0, m.params.N)
	for i := 0; i < m.params.N; i++ {
		outs = append(outs, proto.Outgoing{To: types.ProcessID(i), Session: "chat", Payload: chatter{Seq: m.seq}})
	}
	return outs
}

func (m *chatterMachine) Begin(types.Tick) []proto.Outgoing                  { return m.broadcast() }
func (m *chatterMachine) Tick(types.Tick, []proto.Incoming) []proto.Outgoing { return m.broadcast() }
func (m *chatterMachine) Output() (types.Value, bool)                        { return nil, false }
func (m *chatterMachine) Done() bool                                         { return false }

func chatterRegistry() *wire.Registry {
	reg := NewFullRegistry()
	reg.MustRegister(wire.Codec{
		Type: "test/chatter",
		Encode: func(w *wire.Writer, p proto.Payload) error {
			w.PutInt(p.(chatter).Seq)
			return nil
		},
		Decode: func(r *wire.Reader) (proto.Payload, error) {
			return chatter{Seq: r.Int()}, r.Err()
		},
	})
	return reg
}

// TestCloseUnblocksActiveCluster tears a busy mesh down: every node runs
// a machine that never decides, so the only way out of Run is Close.
// Several goroutines per node race Close against live deliveries; every
// Run must return ErrClosed promptly (no deadlock) and the reader,
// acceptor, and tick goroutines must all drain (no leak).
func TestCloseUnblocksActiveCluster(t *testing.T) {
	before := runtime.NumGoroutine()
	const n = 5
	crypto, params := setup(t, n)
	addrs := freeAddrs(t, n)

	nodes := make([]*Node, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		node, err := NewNode(Config{
			Params: params, Crypto: crypto, ID: types.ProcessID(i), Addrs: addrs,
			Registry:     chatterRegistry(),
			TickInterval: 5 * time.Millisecond,
		}, &chatterMachine{params: params})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		go func() {
			_, err := node.Run(context.Background())
			errs <- err
		}()
	}

	// Let the mesh come up and exchange a few hundred messages.
	time.Sleep(300 * time.Millisecond)

	var wg sync.WaitGroup
	for _, node := range nodes {
		for k := 0; k < 3; k++ {
			wg.Add(1)
			go func(nd *Node) {
				defer wg.Done()
				if err := nd.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}(node)
		}
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClosed) {
				t.Errorf("Run returned %v, want ErrClosed", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Run did not return after Close — deadlock")
		}
	}
	// Close after Run has already returned stays a no-op.
	if err := nodes[0].Close(); err != nil {
		t.Errorf("repeat Close: %v", err)
	}

	// Reader/acceptor goroutines unwind asynchronously after their
	// connections die; poll with a deadline instead of a fixed sleep.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after close", before, g)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCloseDuringConnectAborts closes a node whose peers never come up:
// the dial retry loops must notice and Run must return ErrClosed long
// before the dial deadline.
func TestCloseDuringConnectAborts(t *testing.T) {
	crypto, params := setup(t, 3)
	addrs := freeAddrs(t, 3) // nothing listens on the peer ports
	node, err := NewNode(Config{
		Params: params, Crypto: crypto, ID: 0, Addrs: addrs,
		Registry:    chatterRegistry(),
		DialTimeout: 30 * time.Second,
	}, &chatterMachine{params: params})
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 1)
	go func() {
		_, err := node.Run(context.Background())
		errs <- err
	}()
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	node.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Run returned %v, want ErrClosed", err)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Errorf("Run took %v to notice Close during dialing", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after Close during connect")
	}
}

// TestCloseBeforeRun: a node closed before Run starts must refuse to run.
func TestCloseBeforeRun(t *testing.T) {
	crypto, params := setup(t, 3)
	addrs := freeAddrs(t, 3)
	node, err := NewNode(Config{
		Params: params, Crypto: crypto, ID: 0, Addrs: addrs,
		Registry: chatterRegistry(),
	}, &chatterMachine{params: params})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := node.Run(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("Run after Close returned %v, want ErrClosed", err)
	}
}

// TestReplicatedLogOverTCP runs the full application stack — KV commands
// through the smr log over adaptive BB — on real TCP sockets.
func TestReplicatedLogOverTCP(t *testing.T) {
	crypto, params := setup(t, 3)
	addrs := freeAddrs(t, 3)
	decisions := runCluster(t, crypto, params, addrs, func(id types.ProcessID) proto.Machine {
		m, err := smr.NewMachine(smr.Config{
			Params: params, Crypto: crypto, ID: id, Tag: "tcp-log", Slots: 3,
			Queue: []types.Value{types.Value(fmt.Sprintf("SET k%d %d", id, id))},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	})
	if len(decisions) != 3 {
		t.Fatalf("got %d decisions", len(decisions))
	}
	var wantLog types.Value
	for id, enc := range decisions {
		if wantLog == nil {
			wantLog = enc
			entries, err := smr.DecodeLog(enc)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 3 {
				t.Fatalf("log length %d", len(entries))
			}
			store, rejected := kv.Replay(entries)
			if len(rejected) != 0 {
				t.Fatalf("rejected commands: %v", rejected)
			}
			if v, ok := store.Get("k1"); !ok || v != "1" {
				t.Errorf("k1 = %q, %v", v, ok)
			}
			continue
		}
		if !enc.Equal(wantLog) {
			t.Errorf("node %v log diverged", id)
		}
	}
}

// spamMachine wraps a protocol machine and additionally broadcasts one
// bogus frame per tick on the "spam" session — traffic a session-aware
// receiver should shed before paying payload decoding.
type spamMachine struct {
	proto.Machine
	params types.Params
}

func (s *spamMachine) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	outs := s.Machine.Tick(now, inbox)
	return append(outs, proto.Broadcast(s.params, "spam", bb.HelpReq{Phase: 1})...)
}

func TestSessionHookFiltersFrames(t *testing.T) {
	crypto, params := setup(t, 3)
	addrs := freeAddrs(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var hookDrops, hookPassed int64 // node 0's hook counters (tick goroutine only after Run)
	var hookMu sync.Mutex
	rec := metrics.NewRecorder()

	var (
		mu        sync.Mutex
		decisions = make(map[types.ProcessID]types.Value)
		wg        sync.WaitGroup
		firstErr  error
	)
	for i := 0; i < params.N; i++ {
		id := types.ProcessID(i)
		cfg := Config{
			Params:       params,
			Crypto:       crypto,
			ID:           id,
			Addrs:        addrs,
			Registry:     NewFullRegistry(),
			TickInterval: 10 * time.Millisecond,
		}
		if id == 0 {
			cfg.Recorder = rec
			cfg.SessionHook = func(from types.ProcessID, session string) bool {
				head, _ := proto.SplitSession(session)
				hookMu.Lock()
				defer hookMu.Unlock()
				if head == "spam" {
					hookDrops++
					return false
				}
				hookPassed++
				return true
			}
		}
		m := &spamMachine{
			Machine: bb.NewMachine(bb.Config{
				Params: params, Crypto: crypto, ID: id,
				Sender: 0, Input: types.Value("hooked"), Tag: "hook",
			}),
			params: params,
		}
		node, err := NewNode(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := node.Run(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("node %v: %w", id, err)
				return
			}
			decisions[id] = v
		}()
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	for id, v := range decisions {
		if !v.Equal(types.Value("hooked")) {
			t.Errorf("node %v decided %v despite the hook", id, v)
		}
	}
	hookMu.Lock()
	drops, passed := hookDrops, hookPassed
	hookMu.Unlock()
	if drops == 0 {
		t.Error("session hook never dropped a spam frame")
	}
	if passed == 0 {
		t.Error("session hook never passed a protocol frame")
	}
	if got := rec.Snapshot().NetDrops; got != drops {
		t.Errorf("NetDrops = %d, hook dropped %d", got, drops)
	}
}

// earlySender broadcasts one frame per tick on the "early" session for
// the first stretch of the run, then finishes.
type earlySender struct {
	params types.Params
	now    types.Tick
}

func (s *earlySender) Begin(types.Tick) []proto.Outgoing { return nil }
func (s *earlySender) Tick(now types.Tick, _ []proto.Incoming) []proto.Outgoing {
	s.now = now
	if now > 40 {
		return nil
	}
	return proto.Broadcast(s.params, "early", bb.HelpReq{Phase: 2})
}
func (s *earlySender) Output() (types.Value, bool) {
	if s.Done() {
		return types.Value("sent"), true
	}
	return nil, false
}
func (s *earlySender) Done() bool { return s.now > 60 }

// earlyReceiver counts delivered "early" frames and finishes once it has
// seen some (or gives up late).
type earlyReceiver struct {
	got int
	now types.Tick
}

func (r *earlyReceiver) Begin(types.Tick) []proto.Outgoing { return nil }
func (r *earlyReceiver) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	r.now = now
	for _, in := range inbox {
		if head, _ := proto.SplitSession(in.Session); head == "early" {
			r.got++
		}
	}
	return nil
}
func (r *earlyReceiver) Output() (types.Value, bool) {
	if r.Done() {
		return types.Value("got"), true
	}
	return nil, false
}
func (r *earlyReceiver) Done() bool { return r.now > 60 }

// TestSessionHookV2DefersFrames pins the tri-state hook: frames for a
// session the host has not admitted yet are parked undecoded and
// delivered once the hook starts accepting — never silently dropped, as
// the boolean V1 hook would have done.
func TestSessionHookV2DefersFrames(t *testing.T) {
	crypto, params := setup(t, 3)
	addrs := freeAddrs(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var hookMu sync.Mutex
	var deferrals int64
	receiver := &earlyReceiver{}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	for i := 0; i < params.N; i++ {
		id := types.ProcessID(i)
		cfg := Config{
			Params:       params,
			Crypto:       crypto,
			ID:           id,
			Addrs:        addrs,
			Registry:     NewFullRegistry(),
			TickInterval: 10 * time.Millisecond,
		}
		var m proto.Machine
		if id == 1 {
			m = &earlySender{params: params}
		} else {
			m = &earlyReceiver{}
		}
		if id == 0 {
			m = receiver
			// Treat "early" as not-yet-admitted for its first offers, then
			// admit it — the decision-driven scheduler's admission pattern.
			cfg.SessionHookV2 = func(from types.ProcessID, session string) SessionVerdict {
				if head, _ := proto.SplitSession(session); head != "early" {
					return SessionAccept
				}
				hookMu.Lock()
				defer hookMu.Unlock()
				if deferrals < 10 {
					deferrals++
					return SessionDefer
				}
				return SessionAccept
			}
		}
		node, err := NewNode(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := node.Run(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("node %v: %w", id, err)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	hookMu.Lock()
	d := deferrals
	hookMu.Unlock()
	if d == 0 {
		t.Error("hook never deferred a frame")
	}
	if receiver.got == 0 {
		t.Error("deferred frames were never delivered after admission")
	}
}
