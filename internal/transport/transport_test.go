package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"adaptiveba/internal/core/bb"
	"adaptiveba/internal/core/strongba"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/kv"
	"adaptiveba/internal/metrics"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/smr"
	"adaptiveba/internal/types"
)

// freeAddrs reserves n distinct localhost ports and releases them so the
// nodes can bind.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

func setup(t *testing.T, n int) (*proto.Crypto, types.Params) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("tcp-test"))
	if err != nil {
		t.Fatal(err)
	}
	return proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d")), params
}

// runCluster starts one node per process and waits for all decisions.
func runCluster(t *testing.T, crypto *proto.Crypto, params types.Params, addrs []string, factory func(id types.ProcessID) proto.Machine) map[types.ProcessID]types.Value {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var (
		mu        sync.Mutex
		decisions = make(map[types.ProcessID]types.Value)
		wg        sync.WaitGroup
		firstErr  error
	)
	for i := 0; i < params.N; i++ {
		id := types.ProcessID(i)
		node, err := NewNode(Config{
			Params:       params,
			Crypto:       crypto,
			ID:           id,
			Addrs:        addrs,
			Registry:     NewFullRegistry(),
			TickInterval: 10 * time.Millisecond,
		}, factory(id))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := node.Run(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("node %v: %w", id, err)
				return
			}
			decisions[id] = v
		}()
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	return decisions
}

func TestStrongBAOverTCP(t *testing.T) {
	crypto, params := setup(t, 5)
	addrs := freeAddrs(t, 5)
	decisions := runCluster(t, crypto, params, addrs, func(id types.ProcessID) proto.Machine {
		m, err := strongba.NewMachine(strongba.Config{
			Params: params, Crypto: crypto, ID: id,
			Input: types.One, Tag: "tcp",
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	})
	if len(decisions) != 5 {
		t.Fatalf("got %d decisions", len(decisions))
	}
	for id, v := range decisions {
		if !v.Equal(types.One) {
			t.Errorf("node %v decided %v", id, v)
		}
	}
}

func TestBBOverTCP(t *testing.T) {
	crypto, params := setup(t, 5)
	addrs := freeAddrs(t, 5)
	decisions := runCluster(t, crypto, params, addrs, func(id types.ProcessID) proto.Machine {
		return bb.NewMachine(bb.Config{
			Params: params, Crypto: crypto, ID: id,
			Sender: 0, Input: types.Value("over-tcp"), Tag: "tcp",
		})
	})
	for id, v := range decisions {
		if !v.Equal(types.Value("over-tcp")) {
			t.Errorf("node %v decided %v", id, v)
		}
	}
}

func TestRecorderCountsBytes(t *testing.T) {
	crypto, params := setup(t, 3)
	addrs := freeAddrs(t, 3)
	recs := make([]*metrics.Recorder, 3)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		id := types.ProcessID(i)
		recs[i] = metrics.NewRecorder()
		m, err := strongba.NewMachine(strongba.Config{
			Params: params, Crypto: crypto, ID: id, Input: types.Zero, Tag: "rec",
		})
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(Config{
			Params: params, Crypto: crypto, ID: id, Addrs: addrs,
			Registry:     NewFullRegistry(),
			TickInterval: 10 * time.Millisecond,
			Recorder:     recs[i],
		}, m)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := node.Run(ctx); err != nil {
				t.Errorf("node %v: %v", id, err)
			}
		}()
	}
	wg.Wait()
	var totalBytes, totalWords int64
	for _, r := range recs {
		s := r.Snapshot()
		totalBytes += s.Honest.Bytes
		totalWords += s.Honest.Words
	}
	if totalBytes == 0 || totalWords == 0 {
		t.Errorf("recorder saw bytes=%d words=%d", totalBytes, totalWords)
	}
}

func TestNodeConfigValidation(t *testing.T) {
	crypto, params := setup(t, 3)
	m, err := strongba.NewMachine(strongba.Config{Params: params, Crypto: crypto, ID: 0, Input: types.One, Tag: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode(Config{Params: params, Crypto: crypto, ID: 0, Addrs: []string{"a"}, Registry: NewFullRegistry()}, m); err == nil {
		t.Error("wrong addr count accepted")
	}
	if _, err := NewNode(Config{Params: params, Crypto: crypto, ID: 9, Addrs: []string{"a", "b", "c"}, Registry: NewFullRegistry()}, m); err == nil {
		t.Error("bad id accepted")
	}
	if _, err := NewNode(Config{Params: params, Crypto: crypto, ID: 0, Addrs: []string{"a", "b", "c"}}, m); err == nil {
		t.Error("nil registry accepted")
	}
}

func TestFullRegistryCoversAllProtocols(t *testing.T) {
	reg := NewFullRegistry()
	for _, p := range []proto.Payload{
		bb.HelpReq{Phase: 1},
		strongba.Fallback{},
	} {
		if _, err := reg.EncodePayload(p); err != nil {
			t.Errorf("%s not registered: %v", p.Type(), err)
		}
	}
}

// TestCrashInjectionOverTCP fail-stops one node mid-run; the survivors
// must still decide via the fallback path — fault tolerance demonstrated
// on the real network stack, not just the simulator.
func TestCrashInjectionOverTCP(t *testing.T) {
	crypto, params := setup(t, 5)
	addrs := freeAddrs(t, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var (
		mu        sync.Mutex
		decisions = make(map[types.ProcessID]types.Value)
		crashed   int
		wg        sync.WaitGroup
	)
	for i := 0; i < 5; i++ {
		id := types.ProcessID(i)
		m, err := strongba.NewMachine(strongba.Config{
			Params: params, Crypto: crypto, ID: id, Input: types.One, Tag: "ci",
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Params: params, Crypto: crypto, ID: id, Addrs: addrs,
			Registry:     NewFullRegistry(),
			TickInterval: 10 * time.Millisecond,
		}
		if id == 4 {
			cfg.CrashAfter = 2 // dies before the fast path can finish
		}
		node, err := NewNode(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := node.Run(ctx)
			mu.Lock()
			defer mu.Unlock()
			if errors.Is(err, ErrCrashed) {
				crashed++
				return
			}
			if err != nil {
				t.Errorf("node %v: %v", id, err)
				return
			}
			decisions[id] = v
		}()
	}
	wg.Wait()
	if crashed != 1 {
		t.Fatalf("crashed = %d, want 1", crashed)
	}
	if len(decisions) != 4 {
		t.Fatalf("decisions = %d, want 4 survivors", len(decisions))
	}
	for id, v := range decisions {
		if !v.Equal(types.One) {
			t.Errorf("node %v decided %v, want 1", id, v)
		}
	}
}

// TestReplicatedLogOverTCP runs the full application stack — KV commands
// through the smr log over adaptive BB — on real TCP sockets.
func TestReplicatedLogOverTCP(t *testing.T) {
	crypto, params := setup(t, 3)
	addrs := freeAddrs(t, 3)
	decisions := runCluster(t, crypto, params, addrs, func(id types.ProcessID) proto.Machine {
		m, err := smr.NewMachine(smr.Config{
			Params: params, Crypto: crypto, ID: id, Tag: "tcp-log", Slots: 3,
			Queue: []types.Value{types.Value(fmt.Sprintf("SET k%d %d", id, id))},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	})
	if len(decisions) != 3 {
		t.Fatalf("got %d decisions", len(decisions))
	}
	var wantLog types.Value
	for id, enc := range decisions {
		if wantLog == nil {
			wantLog = enc
			entries, err := smr.DecodeLog(enc)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 3 {
				t.Fatalf("log length %d", len(entries))
			}
			store, rejected := kv.Replay(entries)
			if len(rejected) != 0 {
				t.Fatalf("rejected commands: %v", rejected)
			}
			if v, ok := store.Get("k1"); !ok || v != "1" {
				t.Errorf("k1 = %q, %v", v, ok)
			}
			continue
		}
		if !enc.Equal(wantLog) {
			t.Errorf("node %v log diverged", id)
		}
	}
}
