package transport

import (
	"testing"
	"time"

	"adaptiveba/internal/types"
)

// Chaos tests: the fault-injection layer must (a) actually inject —
// the seeded schedules below are chosen so drops/delays demonstrably
// occur — and (b) stay inside the protocols' recovery envelope, so a
// chaos run decides exactly what the fault-free baseline decides. The
// per-run wall clock is real loopback TCP; ticks are kept generous so
// jitter under MaxDelay ≤ tick/2 stays within the δ-bound the tick
// loop assumes.

// runBaselineAndChaos runs one fault-free cluster and one chaos
// cluster with identical protocol inputs and asserts decisions match.
func runBaselineAndChaos(t *testing.T, proto string, tick time.Duration, chaos ChaosConfig) (*ClusterResult, *ClusterResult) {
	t.Helper()
	const n = 5
	base, err := RunCluster(ClusterOpts{N: n, Tick: tick, Protocol: proto})
	if err != nil {
		t.Fatalf("baseline cluster: %v", err)
	}
	got, err := RunCluster(ClusterOpts{N: n, Tick: tick, Protocol: proto, Chaos: chaos})
	if err != nil {
		t.Fatalf("chaos cluster: %v", err)
	}
	for i := range base.Decisions {
		if string(got.Decisions[i]) != string(base.Decisions[i]) {
			t.Fatalf("process %d: chaos decided %q, baseline %q",
				i, got.Decisions[i], base.Decisions[i])
		}
	}
	return base, got
}

// TestChaosWBADecidesLikeBaseline hits the WBA cluster with the full
// schedule — loss, jitter, and a flapping peer. WBA is the recovery
// workhorse: its help round and fallback certificate re-supply
// receivers that chaos starved of frames.
func TestChaosWBADecidesLikeBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback cluster in -short mode")
	}
	const tick = 40 * time.Millisecond
	_, got := runBaselineAndChaos(t, "wba", tick, ChaosConfig{
		Seed:      42,
		DropRate:  0.05,
		DelayRate: 0.20,
		MaxDelay:  tick / 4,
		FlapEvery: 7,
		FlapTicks: 1,
	})
	if got.ChaosDrops+got.ChaosDelays == 0 {
		t.Fatalf("chaos schedule injected nothing (drops=%d delays=%d) — test is vacuous",
			got.ChaosDrops, got.ChaosDelays)
	}
	t.Logf("chaos injected drops=%d delays=%d; decisions match baseline",
		got.ChaosDrops, got.ChaosDelays)
}

// TestChaosBBJitterDecidesLikeBaseline runs the BB broadcast under
// delay-only chaos (no loss): Dolev–Strong vetting has no
// retransmission, so loss is out of its recovery envelope, but
// sub-tick jitter must be absorbed by the δ-bound slack.
func TestChaosBBJitterDecidesLikeBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback cluster in -short mode")
	}
	const tick = 40 * time.Millisecond
	_, got := runBaselineAndChaos(t, "bb", tick, ChaosConfig{
		Seed:      7,
		DelayRate: 0.35,
		MaxDelay:  tick / 4,
	})
	if got.ChaosDelays == 0 {
		t.Fatalf("jitter schedule injected no delays — test is vacuous")
	}
	t.Logf("chaos injected delays=%d; decisions match baseline", got.ChaosDelays)
}

// TestChaosRequiresBatchedPath pins the config invariant: chaos defers
// frames into peer outboxes, which the legacy synchronous path lacks.
func TestChaosRequiresBatchedPath(t *testing.T) {
	params, err := types.NewParams(4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewNode(Config{
		Params:     params,
		ID:         0,
		Addrs:      []string{"a", "b", "c", "d"},
		Registry:   NewFullRegistry(),
		LegacySend: true,
		Chaos:      ChaosConfig{DropRate: 0.1},
	}, idleMachine{})
	if err == nil {
		t.Fatal("NewNode accepted chaos on the legacy send path")
	}
}

// TestChaosVerdictDeterminism: a node's verdict sequence is a pure
// function of (seed, tick schedule, destination sequence).
func TestChaosVerdictDeterminism(t *testing.T) {
	cfg := ChaosConfig{
		Seed:           99,
		DropRate:       0.2,
		DelayRate:      0.3,
		MaxDelay:       time.Millisecond,
		PartitionEvery: 5,
		PartitionTicks: 2,
		FlapEvery:      3,
		FlapTicks:      1,
	}
	type v struct {
		drop  bool
		delay time.Duration
	}
	run := func() []v {
		c := newChaos(cfg, 0, 7, 10*time.Millisecond, nil)
		var out []v
		for tick := types.Tick(0); tick < 40; tick++ {
			c.tick(tick)
			for to := types.ProcessID(1); to < 7; to++ {
				drop, delay := c.verdict(to)
				out = append(out, v{drop, delay})
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d diverged across identical replays: %+v vs %+v", i, a[i], b[i])
		}
	}
	var drops, delays int
	for _, x := range a {
		if x.drop {
			drops++
		}
		if x.delay > 0 {
			delays++
		}
	}
	if drops == 0 || delays == 0 {
		t.Fatalf("schedule exercised nothing: drops=%d delays=%d", drops, delays)
	}
}

// TestChaosPartitionCut pins the parity-cut geometry: inside a
// partition window every cross-parity frame drops and same-parity
// frames are untouched (given no rates configured).
func TestChaosPartitionCut(t *testing.T) {
	c := newChaos(ChaosConfig{
		Seed:           1,
		PartitionEvery: 4,
		PartitionTicks: 1,
	}, 0, 6, 10*time.Millisecond, nil)
	c.tick(4) // 4 % 4 == 0 < 1: window open
	for to := types.ProcessID(1); to < 6; to++ {
		drop, _ := c.verdict(to)
		wantDrop := int(to)%2 != 0 // self is 0 (even)
		if drop != wantDrop {
			t.Errorf("in-window verdict to %d: drop=%v, want %v", to, drop, wantDrop)
		}
	}
	c.tick(5) // window closed
	for to := types.ProcessID(1); to < 6; to++ {
		if drop, _ := c.verdict(to); drop {
			t.Errorf("out-of-window frame to %d dropped", to)
		}
	}
}
