package transport

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"adaptiveba/internal/core/bb"
	"adaptiveba/internal/core/valid"
	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/metrics"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

// This file is the measurement harness behind `adaptiveba-bench
// -bench-net-json` and the batching determinism tests: a sender whose
// Node.send is driven directly against loopback TCP sinks (SendBench),
// and a full in-process loopback cluster whose metrics are rendered to a
// canonical CSV (RunLoopbackCluster).

// idleMachine satisfies proto.Machine for harnesses that drive the data
// plane directly and never tick a real protocol.
type idleMachine struct{}

func (idleMachine) Begin(types.Tick) []proto.Outgoing                  { return nil }
func (idleMachine) Tick(types.Tick, []proto.Incoming) []proto.Outgoing { return nil }
func (idleMachine) Output() (types.Value, bool)                        { return nil, false }
func (idleMachine) Done() bool                                         { return false }

// SendBench wires one Node's send path to n real loopback TCP
// connections drained by discard sinks, so the data plane — encode-once
// framing, outbox enqueue, coalesced writer flushes (or the legacy
// synchronous writes) — can be measured in isolation from protocol
// logic and tick pacing.
type SendBench struct {
	node      *Node
	rec       *metrics.Recorder
	outs      []proto.Outgoing
	listeners []net.Listener
	sinkWG    sync.WaitGroup
}

// NewSendBench builds a sender for an n-process mesh broadcasting one
// signed BB sender-message per Broadcast call. legacy selects the
// synchronous pre-batching path.
func NewSendBench(n int, legacy bool) (*SendBench, error) {
	params, err := types.NewParams(n)
	if err != nil {
		return nil, err
	}
	ring, err := sig.NewHMACRing(n, []byte("net-bench"))
	if err != nil {
		return nil, err
	}
	crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("net-bench-dealer"))
	value := types.Value("net-bench-value-0123456789abcdef")
	sg, err := crypto.Signer(0).Sign(value)
	if err != nil {
		return nil, err
	}

	rec := metrics.NewRecorder()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0" // never dialed: connections are wired below
	}
	node, err := NewNode(Config{
		Params:   params,
		Crypto:   crypto,
		ID:       0,
		Addrs:    addrs,
		Registry: NewFullRegistry(),
		Recorder: rec,
		// A large bound so the benchmark measures throughput, not the
		// drop policy: the arms must deliver identical message counts.
		FlushBytes: 64 << 20,
		LegacySend: legacy,
	}, idleMachine{})
	if err != nil {
		return nil, err
	}

	sb := &SendBench{
		node: node,
		rec:  rec,
		outs: proto.Broadcast(params, "bench/bb", bb.SenderMsg{V: value, Sig: sg}),
	}
	node.outbound = make([]net.Conn, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			sb.Close()
			return nil, err
		}
		sb.listeners = append(sb.listeners, ln)
		sb.sinkWG.Add(1)
		go func() {
			defer sb.sinkWG.Done()
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			io.Copy(io.Discard, conn)
		}()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			sb.Close()
			return nil, err
		}
		node.outbound[i] = conn
	}
	if !legacy {
		node.startOutboxes()
	}
	return sb, nil
}

// Broadcast pushes one n-recipient broadcast through Node.send.
func (sb *SendBench) Broadcast() { sb.node.send(sb.outs) }

// MessagesPerBroadcast is the number of metered sends per Broadcast
// (self-delivery is not counted).
func (sb *SendBench) MessagesPerBroadcast() int { return sb.node.cfg.Params.N - 1 }

// Drain blocks until every outbox has flushed its queued bytes to the
// kernel (no-op on the legacy path, which writes inline).
func (sb *SendBench) Drain() {
	for _, ob := range sb.node.outboxes {
		if ob == nil {
			continue
		}
		for ob.buffered() > 0 {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// Snapshot returns the sender's metrics so far.
func (sb *SendBench) Snapshot() metrics.Report { return sb.rec.Snapshot() }

// Close tears the sinks and writers down.
func (sb *SendBench) Close() {
	sb.node.stopOutboxes()
	for _, c := range sb.node.outbound {
		if c != nil {
			c.Close()
		}
	}
	for _, ln := range sb.listeners {
		ln.Close()
	}
	sb.sinkWG.Wait()
}

// ClusterResult is one loopback cluster run, reduced to the observables
// the batched and legacy data planes must agree on byte-for-byte.
type ClusterResult struct {
	// Decisions[i] is process i's decided value.
	Decisions []types.Value
	// CSV is the canonical per-node metrics rendering (see MetricsCSV).
	CSV []byte
	// Drops is the backpressure total across nodes (0 on healthy runs).
	Drops int64
	// ChaosDrops / ChaosDelays total the chaos layer's injections across
	// nodes (0 with chaos off).
	ChaosDrops  int64
	ChaosDelays int64
}

// ClusterOpts configures one in-process loopback cluster run.
type ClusterOpts struct {
	N      int
	Legacy bool // pre-batching synchronous data plane (A/B baseline)
	Tick   time.Duration
	// Protocol selects the machines: "bb" (default, a broadcast from
	// process 0) or "wba" (weak BA on a unanimous input) — wba is the
	// chaos workhorse because its help round and fallback certificate
	// recover receivers that chaos starved of frames.
	Protocol string
	// Chaos, when enabled, injects the same seeded fault schedule into
	// every node (each node draws verdicts from Chaos.Seed + its ID).
	Chaos ChaosConfig
}

// RunLoopbackCluster runs an n-process BB broadcast over real localhost
// TCP and renders each node's recorder into the canonical CSV. With
// identical inputs, the batched and legacy data planes must produce
// byte-identical CSVs and decisions — the golden-trace determinism
// pattern applied to the TCP stack.
func RunLoopbackCluster(n int, legacy bool, tick time.Duration) (*ClusterResult, error) {
	return RunCluster(ClusterOpts{N: n, Legacy: legacy, Tick: tick})
}

// RunCluster runs an in-process loopback cluster per opts: n real TCP
// nodes on localhost, each driving one protocol machine, with optional
// chaos injection on every node's send path. It returns the decisions,
// the canonical metrics CSV, and the fault-injection totals.
func RunCluster(opts ClusterOpts) (*ClusterResult, error) {
	params, err := types.NewParams(opts.N)
	if err != nil {
		return nil, err
	}
	ring, err := sig.NewHMACRing(opts.N, []byte("net-cluster"))
	if err != nil {
		return nil, err
	}
	crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("net-cluster-dealer"))
	addrs, err := reserveLoopbackAddrs(opts.N)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	decisions := make([]types.Value, opts.N)
	recs := make([]*metrics.Recorder, opts.N)
	for i := 0; i < opts.N; i++ {
		id := types.ProcessID(i)
		recs[i] = metrics.NewRecorder()
		var machine proto.Machine
		switch opts.Protocol {
		case "", "bb":
			machine = bb.NewMachine(bb.Config{
				Params: params, Crypto: crypto, ID: id,
				Sender: 0, Input: types.Value("net-bench-broadcast"), Tag: "netbench",
			})
		case "wba":
			machine = wba.NewMachine(wba.Config{
				Params: params, Crypto: crypto, ID: id,
				Input: types.Value("net-bench-agree"), Predicate: valid.NonBottom(),
				Tag: "netbench",
			})
		default:
			return nil, fmt.Errorf("transport: unknown cluster protocol %q", opts.Protocol)
		}
		chaosCfg := opts.Chaos
		if chaosCfg.Enabled() {
			// Distinct per-node verdict streams from one cluster seed.
			chaosCfg.Seed = opts.Chaos.Seed + int64(i)*0x9e3779b9
		}
		node, err := NewNode(Config{
			Params:       params,
			Crypto:       crypto,
			ID:           id,
			Addrs:        addrs,
			Registry:     NewFullRegistry(),
			TickInterval: opts.Tick,
			Recorder:     recs[i],
			LegacySend:   opts.Legacy,
			Chaos:        chaosCfg,
		}, machine)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := node.Run(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("node %v: %w", id, err)
				return
			}
			decisions[id] = v
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	res := &ClusterResult{Decisions: decisions, CSV: MetricsCSV(recs)}
	for _, r := range recs {
		rep := r.Snapshot()
		res.Drops += rep.NetDrops
		res.ChaosDrops += rep.ChaosDrops
		res.ChaosDelays += rep.ChaosDelays
	}
	return res, nil
}

// MetricsCSV renders per-node recorders into a canonical CSV: one totals
// row per node followed by its per-layer breakdown, sorted by layer.
// Only transport-independent observables appear (messages, words, bytes,
// signatures) — flush and drop counters are data-plane internals and
// legitimately differ between send paths.
func MetricsCSV(recs []*metrics.Recorder) []byte {
	var buf bytes.Buffer
	fmt.Fprintln(&buf, "node,layer,msgs,words,bytes,sigs")
	for i, r := range recs {
		rep := r.Snapshot()
		fmt.Fprintf(&buf, "%d,TOTAL,%d,%d,%d,%d\n", i,
			rep.Honest.Messages, rep.Honest.Words, rep.Honest.Bytes, rep.Honest.Signatures)
		layers := make([]string, 0, len(rep.ByLayer))
		for l := range rep.ByLayer {
			layers = append(layers, l)
		}
		sort.Strings(layers)
		for _, l := range layers {
			s := rep.ByLayer[l]
			fmt.Fprintf(&buf, "%d,%s,%d,%d,%d,%d\n", i, l, s.Messages, s.Words, s.Bytes, s.Signatures)
		}
	}
	return buf.Bytes()
}

// reserveLoopbackAddrs picks n free localhost ports.
func reserveLoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}
