package transport

import (
	"encoding/binary"
	"net"
	"sync"
	"time"

	"adaptiveba/internal/metrics"
)

// peerOutbox is the bounded, coalescing send queue feeding one peer's
// outbound connection. The tick loop appends frames to a pending buffer
// under a mutex (a cheap memcpy) and a dedicated writer goroutine drains
// everything accumulated since its last write in a single conn.Write —
// the group-commit pattern: while one flush is on the wire, the frames
// of the next tick coalesce behind it, so a broadcast costs the sender
// one syscall per peer per flush instead of one per message, and a slow
// peer can never head-of-line block the node's round.
//
// Backpressure policy: an enqueue that would push the pending buffer past
// limit drops the frame and reports ErrBackpressure. Synchrony already
// bounds how much a correct peer can lag (one tick), so a persistently
// full outbox means the peer is effectively crashed; dropping is the
// behavior the protocols are designed to survive, blocking is not.
type peerOutbox struct {
	conn     net.Conn
	limit    int           // max buffered bytes; beyond it frames drop
	deadline time.Duration // per-flush write deadline
	rec      *metrics.Recorder

	mu      sync.Mutex
	pending []byte // frames queued since the last flush swap (reused)
	frames  int    // frame count in pending
	spare   []byte // writer-side buffer, exchanged with pending per flush
	dead    bool   // the connection failed; enqueues drop from now on
	err     error  // first write error, sticky

	wake     chan struct{} // cap-1 doorbell
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// newPeerOutbox starts the writer goroutine for conn.
func newPeerOutbox(conn net.Conn, limit int, deadline time.Duration, rec *metrics.Recorder) *peerOutbox {
	ob := &peerOutbox{
		conn:     conn,
		limit:    limit,
		deadline: deadline,
		rec:      rec,
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go ob.writeLoop()
	return ob
}

// enqueue appends one [len u32][kind][body] frame to the pending buffer
// and rings the writer's doorbell. The body bytes are copied, so callers
// may reuse their encoding buffers immediately. It returns the sticky
// connection error for a dead peer and ErrBackpressure for a full outbox;
// in both cases the frame is dropped, never blocked on.
func (ob *peerOutbox) enqueue(kind byte, body []byte) error {
	frameLen := 5 + len(body)
	ob.mu.Lock()
	if ob.dead {
		err := ob.err
		ob.mu.Unlock()
		return err
	}
	if ob.limit > 0 && len(ob.pending)+frameLen > ob.limit {
		ob.mu.Unlock()
		return ErrBackpressure
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = kind
	ob.pending = append(ob.pending, hdr[:]...)
	ob.pending = append(ob.pending, body...)
	ob.frames++
	ob.mu.Unlock()
	select {
	case ob.wake <- struct{}{}:
	default:
	}
	return nil
}

// buffered reports the bytes currently queued (tests and the bench
// harness use it to wait for drain).
func (ob *peerOutbox) buffered() int {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	return len(ob.pending)
}

// writeLoop drains the outbox until shutdown, flushing once per doorbell
// ring (which covers every frame enqueued since the previous flush).
func (ob *peerOutbox) writeLoop() {
	defer close(ob.done)
	for {
		select {
		case <-ob.wake:
			ob.flush()
		case <-ob.stop:
			ob.flush() // best-effort final drain
			return
		}
	}
}

// flush swaps the pending buffer against the writer's spare and writes it
// in one call. Both buffers are retained and reused, so the steady-state
// data plane allocates nothing.
func (ob *peerOutbox) flush() {
	ob.mu.Lock()
	buf, frames := ob.pending, ob.frames
	ob.pending, ob.frames = ob.spare[:0], 0
	ob.spare = buf
	dead := ob.dead
	ob.mu.Unlock()
	if dead || len(buf) == 0 {
		return
	}
	if ob.deadline > 0 {
		ob.conn.SetWriteDeadline(time.Now().Add(ob.deadline))
	}
	if _, err := ob.conn.Write(buf); err != nil {
		ob.mu.Lock()
		ob.dead = true
		if ob.err == nil {
			ob.err = err
		}
		ob.mu.Unlock()
		ob.conn.Close()
		return
	}
	if ob.rec != nil {
		ob.rec.RecordNetFlush(frames, len(buf))
	}
}

// shutdown stops the writer after a final drain and waits for it to exit.
// Safe to call multiple times and concurrently with a dying connection.
func (ob *peerOutbox) shutdown() {
	ob.stopOnce.Do(func() { close(ob.stop) })
	<-ob.done
}
