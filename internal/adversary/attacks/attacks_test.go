package attacks

import (
	"fmt"
	"testing"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/baseline/floodset"
	"adaptiveba/internal/core/bb"
	"adaptiveba/internal/core/valid"
	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

func setup(t *testing.T, n int) (*proto.Crypto, types.Params) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("attacks-test"))
	if err != nil {
		t.Fatal(err)
	}
	return proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d")), params
}

// corruptSet returns {1} ∪ {n-1, n-2, ...} of size t: the phase-1 leader
// plus fillers.
func corruptSet(params types.Params) []types.ProcessID {
	ids := []types.ProcessID{1}
	for i := params.N - 1; len(ids) < params.T; i-- {
		ids = append(ids, types.ProcessID(i))
	}
	return ids
}

func runSplitVote(t *testing.T, quorumOverride int) *sim.Result {
	t.Helper()
	crypto, params := setup(t, 9)
	quorum := params.Quorum()
	if quorumOverride > 0 {
		quorum = quorumOverride
	}
	adv := NewWBASplitVote("q", quorum, types.Value("v1"), types.Value("v2"), corruptSet(params)...)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return wba.NewMachine(wba.Config{
				Params: params, Crypto: crypto, ID: id,
				Input: types.Value("honest"), Predicate: valid.NonBottom(),
				Tag: "q", QuorumOverride: quorumOverride,
			})
		},
		Adversary: adv,
		MaxTicks:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSplitVoteBreaksNaiveQuorum demonstrates the paper's motivation for
// ⌈(n+t+1)/2⌉: with the naive t+1 quorum the double-commit attack splits
// the correct processes into two decisions.
func TestSplitVoteBreaksNaiveQuorum(t *testing.T) {
	params, _ := types.NewParams(9)
	res := runSplitVote(t, params.SmallQuorum()) // t+1 = 5
	if _, ok := res.Agreement(); ok {
		t.Fatal("expected a safety violation under the t+1 quorum; agreement held")
	}
}

// TestSplitVoteFailsAgainstPaperQuorum verifies the same adversary is
// powerless against the paper's quorum.
func TestSplitVoteFailsAgainstPaperQuorum(t *testing.T) {
	res := runSplitVote(t, 0)
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("agreement violated under the paper's quorum")
	}
	if v.IsBottom() {
		t.Errorf("decided ⊥; expected a real value from a later honest phase")
	}
}

func TestWBAPhaseSpamCostsLinearPerFailure(t *testing.T) {
	crypto, params := setup(t, 21)
	words := make(map[int]int64)
	for _, f := range []int{0, 2, 4} {
		var adv sim.Adversary
		if f > 0 {
			ids := make([]types.ProcessID, f)
			for i := range ids {
				ids[i] = types.ProcessID(i + 1)
			}
			adv = NewWBAPhaseSpam(types.Value("v"), ids...)
		}
		res, err := sim.Run(sim.Config{
			Params: params,
			Crypto: crypto,
			Factory: func(id types.ProcessID) proto.Machine {
				return wba.NewMachine(wba.Config{
					Params: params, Crypto: crypto, ID: id,
					Input: types.Value("v"), Predicate: valid.NonBottom(), Tag: "h/wba",
				})
			},
			Adversary: adv,
			MaxTicks:  2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided() {
			t.Fatalf("f=%d: not all decided", f)
		}
		if v, ok := res.Agreement(); !ok || !v.Equal(types.Value("v")) {
			t.Fatalf("f=%d: agreement %v %v", f, v, ok)
		}
		words[f] = res.Report.Honest.Words
	}
	// Each spammed phase should add roughly n-f honest votes.
	if words[2] <= words[0] || words[4] <= words[2] {
		t.Errorf("spam cost not increasing: %v", words)
	}
	if growth := words[4] - words[0]; growth < int64(2*(params.N-8)) || growth > int64(8*params.N) {
		t.Errorf("4 spam phases grew words by %d, want ~Θ(n) per phase", growth)
	}
}

func TestHelpSpamCostsLinearAndNoFallback(t *testing.T) {
	// n=21, t=10: f=3 Byzantine help-requesters force the decided correct
	// processes to answer (O(nf) helps) but cannot reach the t+1
	// certificate threshold alone — the fallback must stay off.
	crypto, params := setup(t, 21)
	helpRound := types.Tick((params.T + 1) * 5) // round A of the default t+1 phases
	machines := make(map[types.ProcessID]*wba.Machine)
	adv := NewWBAHelpSpam("h", helpRound, 18, 19, 20)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m := wba.NewMachine(wba.Config{
				Params: params, Crypto: crypto, ID: id,
				Input: types.Value("v"), Predicate: valid.NonBottom(), Tag: "h",
			})
			machines[id] = m
			return m
		},
		Adversary: adv,
		MaxTicks:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("v")) {
		t.Fatalf("agreement %v %v", v, ok)
	}
	for id, m := range machines {
		if m.RanFallback() {
			t.Errorf("%v ran fallback although only f=3 < t+1 help requests existed", id)
		}
	}
	// Every decided correct process answers each of the 3 requesters:
	// roughly 3*(n-3) help messages on top of the base run.
	helps := res.Report.ByLayer["(root)"].Messages
	if helps < int64(3*(params.N-3)) {
		t.Errorf("help answers missing: %d root messages", helps)
	}
}

func TestLateCertReleaseReactivatesSafely(t *testing.T) {
	// n=9, t=4: every correct process decides in phase 1, so no correct
	// help request ever exists and the adversary's own t shares cannot
	// reach the t+1 certificate threshold — the late release must fizzle
	// and the decision must stand.
	crypto, params := setup(t, 9)
	adv := NewLateCertRelease("h", 200, 5, 6, 7, 8)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return wba.NewMachine(wba.Config{
				Params: params, Crypto: crypto, ID: id,
				Input: types.Value("v"), Predicate: valid.NonBottom(), Tag: "h",
			})
		},
		Adversary: adv,
		MaxTicks:  1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("v")) {
		t.Fatalf("late cert release broke safety: %v %v", v, ok)
	}
}

func TestSelectiveFinalizeVictimHealedByHelpRound(t *testing.T) {
	// A Byzantine phase-1 leader finalizes everyone except p3. The victim
	// is the only undecided correct process after the phases: it asks for
	// help, the decided processes answer with the finalize certificate,
	// and it adopts the same decision — no fallback.
	crypto, params := setup(t, 9)
	machines := make(map[types.ProcessID]*wba.Machine)
	adv := NewSelectivePhaseLeader("s", 3, types.Value("v"), corruptSet(params)...)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m := wba.NewMachine(wba.Config{
				Params: params, Crypto: crypto, ID: id,
				Input: types.Value("v"), Predicate: valid.NonBottom(), Tag: "s",
			})
			machines[id] = m
			return m
		},
		Adversary: adv,
		MaxTicks:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided — the help round failed the victim")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("v")) {
		t.Fatalf("agreement %v %v", v, ok)
	}
	// The victim decided later than everyone else, via help.
	if machines[3].DecidedAtTick() <= machines[0].DecidedAtTick() {
		t.Errorf("victim decided at %d, others at %d — expected a delay",
			machines[3].DecidedAtTick(), machines[0].DecidedAtTick())
	}
	for id, m := range machines {
		if m.RanFallback() {
			t.Errorf("%v ran fallback; the help round should have sufficed", id)
		}
	}
}

func TestSelectiveFinalizePlusLateCertForcesFallback(t *testing.T) {
	// Same leader attack, extended with a late certificate release: the
	// victim's help-request share plus the t corrupted shares form a
	// valid fallback certificate that the adversary withholds and
	// releases after everything went quiet. All correct processes must
	// re-activate, echo the certificate, run A_fallback — and re-confirm
	// the SAME decision (Lemma 19).
	crypto, params := setup(t, 9)
	adv := NewSelectivePhaseLeader("s", 3, types.Value("v"), corruptSet(params)...)
	adv.LateRelease = 150
	machines := make(map[types.ProcessID]*wba.Machine)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m := wba.NewMachine(wba.Config{
				Params: params, Crypto: crypto, ID: id,
				Input: types.Value("v"), Predicate: valid.NonBottom(), Tag: "s",
			})
			machines[id] = m
			return m
		},
		Adversary: adv,
		MaxTicks:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("v")) {
		t.Fatalf("late fallback changed the decision: %v %v", v, ok)
	}
	// The certificate really was released and the fallback really ran.
	ran := 0
	for _, m := range machines {
		if m.RanFallback() {
			ran++
		}
	}
	if ran != len(res.Honest) {
		t.Errorf("%d/%d honest processes ran the late fallback", ran, len(res.Honest))
	}
}

// TestAdaptiveMidPhaseCorruption exercises the model's ADAPTIVE adversary:
// the phase-1 leader is corrupted in the middle of its own phase (after
// collecting votes, before finalizing) and goes silent. No certificate
// completes in phase 1; phase 2's correct leader heals the run.
func TestAdaptiveMidPhaseCorruption(t *testing.T) {
	crypto, params := setup(t, 9)
	machines := make(map[types.ProcessID]*wba.Machine)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m := wba.NewMachine(wba.Config{
				Params: params, Crypto: crypto, ID: id,
				Input: types.Value("v"), Predicate: valid.NonBottom(), Tag: "mid",
			})
			machines[id] = m
			return m
		},
		// p1 proposes at tick 0, receives votes at tick 2, would commit at
		// tick 2 and finalize at tick 4 — corrupting at tick 3 kills the
		// phase after the commit broadcast but before the finalize.
		Adversary: adversaryWithLateCorruption(3),
		MaxTicks:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided after mid-phase corruption")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("v")) {
		t.Fatalf("agreement %v %v", v, ok)
	}
	// Everyone committed in phase 1 (the commit broadcast went out) but
	// decided in phase 2 — the commit-carryover path (Alg. 4 line 36).
	for _, id := range res.Honest {
		if got := machines[id].DecidedAtPhase(); got != 2 {
			t.Errorf("%v decided at phase %d, want 2", id, got)
		}
	}
}

func adversaryWithLateCorruption(at types.Tick) sim.Adversary {
	a := &adversary.Crash{}
	a.Schedule = []sim.Corruption{{ID: 1, At: at}}
	return a
}

// TestBBVettingEquivocation: a Byzantine sender + Byzantine vetting leader
// seed the correct processes with two different sender-signed values. Both
// are BB_valid, so unique validity permits deciding either (or ⊥) — but
// never disagreement.
func TestBBVettingEquivocation(t *testing.T) {
	crypto, params := setup(t, 9)
	adv := NewBBVettingEquivocator("vt", types.Value("v1"), types.Value("v2"))
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return bb.NewMachine(bb.Config{
				Params: params, Crypto: crypto, ID: id,
				Sender: 0, Tag: "vt",
			})
		},
		Adversary: adv,
		MaxTicks:  4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("vetting equivocation broke agreement")
	}
	if !v.IsBottom() && !v.Equal(types.Value("v1")) && !v.Equal(types.Value("v2")) {
		t.Errorf("decided out-of-run value %v", v)
	}
}

// TestFloodChainForcesLinearRounds: the whisper chain delays FloodSet's
// early stopping by ~one round per crash — the round-complexity worst
// case the paper's Section 4 contrasts with its own word adaptivity.
func TestFloodChainForcesLinearRounds(t *testing.T) {
	crypto, params := setup(t, 13) // t=6
	rounds := make(map[int]types.Round)
	for _, f := range []int{0, 3, 6} {
		machines := make(map[types.ProcessID]*floodset.Machine)
		var adv sim.Adversary
		if f > 0 {
			ids := make([]types.ProcessID, f)
			for i := range ids {
				ids[i] = types.ProcessID(i + 1)
			}
			adv = NewFloodChain(types.Value("0-hidden-min"), ids...)
		}
		res, err := sim.Run(sim.Config{
			Params: params,
			Crypto: crypto,
			Factory: func(id types.ProcessID) proto.Machine {
				m := floodset.NewMachine(floodset.Config{
					Params: params, ID: id,
					Input: types.Value(fmt.Sprintf("5-v%02d", id)),
				})
				machines[id] = m
				return m
			},
			Adversary: adv,
			MaxTicks:  200,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided() {
			t.Fatalf("f=%d: not all decided", f)
		}
		v, ok := res.Agreement()
		if !ok {
			t.Fatalf("f=%d: disagreement", f)
		}
		if f > 0 && !v.Equal(types.Value("0-hidden-min")) {
			t.Fatalf("f=%d: hidden minimum lost, decided %v", f, v)
		}
		var max types.Round
		for _, id := range res.Honest {
			if r := machines[id].Rounds(); r > max {
				max = r
			}
		}
		rounds[f] = max
	}
	if rounds[3] <= rounds[0] || rounds[6] <= rounds[3] {
		t.Errorf("rounds did not grow with the chain: %v", rounds)
	}
}
