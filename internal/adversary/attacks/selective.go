package attacks

import (
	"adaptiveba/internal/adversary"
	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// SelectivePhaseLeader is a Byzantine weak-BA phase-1 leader that runs the
// phase protocol faithfully except for the last step: it withholds the
// finalize certificate from one victim. The victim stays undecided, sends
// the only correct help request in the run, and is healed by the help
// round — unless the adversary additionally withholds help by corrupting
// enough answerers, in which case the fallback certificate (victim's
// share + t-1 corrupted shares + the leader's) forms and the run
// exercises the full fallback path with a prior decision in the system
// (Lemma 19: the fallback must re-decide the same value).
type SelectivePhaseLeader struct {
	adversary.Core
	// Tag must match the weak BA instance's tag.
	Tag string
	// Victim is excluded from the finalize broadcast.
	Victim types.ProcessID
	// V is the leader's (valid) proposal.
	V types.Value
	// LateRelease, if positive, additionally harvests the victim's help
	// request and releases a fallback certificate at the given tick —
	// long after every correct process decided and went quiet.
	LateRelease types.Tick

	votes    []threshold.Share
	helpReqs []threshold.Share
	decs     []threshold.Share
	released bool
}

var _ sim.Adversary = (*SelectivePhaseLeader)(nil)

// NewSelectivePhaseLeader corrupts ids, which must include p1.
func NewSelectivePhaseLeader(tag string, victim types.ProcessID, v types.Value, ids ...types.ProcessID) *SelectivePhaseLeader {
	a := &SelectivePhaseLeader{Tag: tag, Victim: victim, V: v}
	for _, id := range ids {
		a.Schedule = append(a.Schedule, sim.Corruption{ID: id})
	}
	return a
}

// Observe harvests phase-1 votes and decide shares sent to the leader,
// plus help-request shares when a late release is scheduled.
func (a *SelectivePhaseLeader) Observe(_ types.Tick, to types.ProcessID, inbox []proto.Incoming) {
	for _, in := range inbox {
		if hr, ok := in.Payload.(wba.HelpReq); ok && a.LateRelease > 0 {
			a.helpReqs = append(a.helpReqs, threshold.Share{Signer: in.From, Sig: hr.Share})
		}
	}
	if to != 1 {
		return
	}
	for _, in := range inbox {
		switch p := in.Payload.(type) {
		case wba.Vote:
			if p.Phase == 1 && p.V.Equal(a.V) {
				a.votes = append(a.votes, threshold.Share{Signer: in.From, Sig: p.Share})
			}
		case wba.Decide:
			if p.Phase == 1 && p.V.Equal(a.V) {
				a.decs = append(a.decs, threshold.Share{Signer: in.From, Sig: p.Share})
			}
		}
	}
}

// Act drives phase 1 as leader: propose (tick 0), commit (tick 2),
// finalize-except-victim (tick 4).
func (a *SelectivePhaseLeader) Act(now types.Tick, _ []sim.Message) []sim.Message {
	quorum := a.Env.Crypto.Threshold(a.Env.Params.Quorum())
	switch now {
	case 0:
		return a.broadcast(wba.Propose{Phase: 1, V: a.V}, types.NilProcess)
	case 2:
		cert, err := a.combine(quorum, wba.VoteBase(a.Tag, 1, a.V), a.votes)
		if err != nil {
			return nil
		}
		return a.broadcast(wba.Commit{Phase: 1, V: a.V, Cert: cert, Level: 1}, types.NilProcess)
	case 4:
		cert, err := a.combine(quorum, wba.DecideBase(a.Tag, 1, a.V), a.decs)
		if err != nil {
			return nil
		}
		return a.broadcast(wba.Finalized{Phase: 1, V: a.V, Cert: cert}, a.Victim)
	}
	if a.LateRelease > 0 && now == a.LateRelease && !a.released {
		a.released = true
		small := a.Env.Crypto.Threshold(a.Env.Params.SmallQuorum())
		cert, err := a.combine(small, wba.HelpReqBase(a.Tag), a.helpReqs)
		if err != nil {
			return nil
		}
		return a.broadcast(wba.FallbackCert{Cert: cert}, types.NilProcess)
	}
	return nil
}

// Quiescent keeps the engine alive through the late release window.
func (a *SelectivePhaseLeader) Quiescent(now types.Tick) bool {
	if a.LateRelease <= 0 {
		return true
	}
	return now > a.LateRelease+types.Tick(a.Env.Params.T*8+40)
}

// combine merges harvested shares with the corrupted processes' own.
func (a *SelectivePhaseLeader) combine(scheme *threshold.Scheme, base []byte, harvested []threshold.Share) (*threshold.Cert, error) {
	all := append([]threshold.Share(nil), harvested...)
	for _, c := range a.Schedule {
		sg, err := a.Env.Crypto.Signer(c.ID).Sign(base)
		if err != nil {
			continue
		}
		all = append(all, threshold.Share{Signer: c.ID, Sig: sg})
	}
	return scheme.Combine(base, all)
}

// broadcast sends from the leader to every process except skip.
func (a *SelectivePhaseLeader) broadcast(p proto.Payload, skip types.ProcessID) []sim.Message {
	var msgs []sim.Message
	for i := 0; i < a.Env.Params.N; i++ {
		id := types.ProcessID(i)
		if id == skip {
			continue
		}
		msgs = append(msgs, sim.Message{From: 1, To: id, Payload: p})
	}
	return msgs
}
