package attacks

import (
	"adaptiveba/internal/adversary"
	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// WBASplitVote is the double-commit attack on weak BA that the paper's
// ⌈(n+t+1)/2⌉ quorum exists to prevent (Section 6, "our first key
// observation"). The adversary corrupts t processes including the phase-1
// leader and plays the leader two-faced:
//
//	r1: propose v1 to one half of the correct processes, v2 to the other
//	r3: combine each half's votes with the t corrupted signatures into
//	    two conflicting commit certificates
//	r5: likewise build two conflicting finalize certificates
//
// With quorum t+1 each certificate needs only ONE correct vote, both
// certificates form, and correct processes decide differently — a safety
// violation. With the paper's quorum the two vote sets would have to
// overlap in a correct process, so at most one certificate can form and
// the attack dies at r3. The ablate-quorum experiment runs both.
type WBASplitVote struct {
	adversary.Core
	// Tag must match the weak BA instance's tag.
	Tag string
	// Quorum is the certificate threshold the honest processes use (the
	// override under test, or the paper's value).
	Quorum int
	// V1, V2 are the two conflicting (predicate-valid) proposals.
	V1, V2 types.Value

	leader types.ProcessID
	votes  map[string][]threshold.Share
	decs   map[string][]threshold.Share
}

var _ sim.Adversary = (*WBASplitVote)(nil)

// NewWBASplitVote corrupts ids (which must include p1, the phase-1
// leader, and should have size t for maximal strength).
func NewWBASplitVote(tag string, quorum int, v1, v2 types.Value, ids ...types.ProcessID) *WBASplitVote {
	a := &WBASplitVote{
		Tag:    tag,
		Quorum: quorum,
		V1:     v1,
		V2:     v2,
		leader: 1,
		votes:  make(map[string][]threshold.Share),
		decs:   make(map[string][]threshold.Share),
	}
	for _, id := range ids {
		a.Schedule = append(a.Schedule, sim.Corruption{ID: id})
	}
	return a
}

// groupOf splits the correct processes into two halves by parity of their
// rank among non-corrupted ids.
func (a *WBASplitVote) groupOf(id types.ProcessID) int {
	rank := 0
	for i := 0; i < int(id); i++ {
		if !a.Corrupted(types.ProcessID(i)) {
			rank++
		}
	}
	return rank % 2
}

// Observe collects votes and decide shares addressed to the corrupted
// leader.
func (a *WBASplitVote) Observe(_ types.Tick, to types.ProcessID, inbox []proto.Incoming) {
	if to != a.leader {
		return
	}
	for _, in := range inbox {
		switch p := in.Payload.(type) {
		case wba.Vote:
			if p.Phase == 1 {
				a.votes[string(p.V)] = append(a.votes[string(p.V)], threshold.Share{Signer: in.From, Sig: p.Share})
			}
		case wba.Decide:
			if p.Phase == 1 {
				a.decs[string(p.V)] = append(a.decs[string(p.V)], threshold.Share{Signer: in.From, Sig: p.Share})
			}
		}
	}
}

// Act implements the attack timeline (phase 1 spans ticks 0..4).
func (a *WBASplitVote) Act(now types.Tick, _ []sim.Message) []sim.Message {
	switch now {
	case 0:
		return a.splitSend(func(v types.Value) proto.Payload {
			return wba.Propose{Phase: 1, V: v}
		})
	case 2:
		return a.splitCertSend(a.votes, wba.VoteBase, func(v types.Value, cert *threshold.Cert) proto.Payload {
			return wba.Commit{Phase: 1, V: v, Cert: cert, Level: 1}
		})
	case 4:
		return a.splitCertSend(a.decs, wba.DecideBase, func(v types.Value, cert *threshold.Cert) proto.Payload {
			return wba.Finalized{Phase: 1, V: v, Cert: cert}
		})
	}
	return nil
}

// splitSend sends mk(V1) to group 0 and mk(V2) to group 1.
func (a *WBASplitVote) splitSend(mk func(types.Value) proto.Payload) []sim.Message {
	var msgs []sim.Message
	for i := 0; i < a.Env.Params.N; i++ {
		id := types.ProcessID(i)
		if a.Corrupted(id) {
			continue
		}
		v := a.V1
		if a.groupOf(id) == 1 {
			v = a.V2
		}
		msgs = append(msgs, sim.Message{From: a.leader, To: id, Payload: mk(v)})
	}
	return msgs
}

// splitCertSend combines each value's observed shares with the corrupted
// processes' own signatures and, if a certificate forms, sends it to that
// value's group. Under the paper's quorum neither certificate can form.
func (a *WBASplitVote) splitCertSend(
	shares map[string][]threshold.Share,
	base func(string, int, types.Value) []byte,
	mk func(types.Value, *threshold.Cert) proto.Payload,
) []sim.Message {
	scheme := a.Env.Crypto.Threshold(a.Quorum)
	var msgs []sim.Message
	for _, v := range []types.Value{a.V1, a.V2} {
		all := append([]threshold.Share(nil), shares[string(v)]...)
		for _, c := range a.Schedule {
			sg, err := a.Env.Crypto.Signer(c.ID).Sign(base(a.Tag, 1, v))
			if err != nil {
				continue
			}
			all = append(all, threshold.Share{Signer: c.ID, Sig: sg})
		}
		cert, err := scheme.Combine(base(a.Tag, 1, v), all)
		if err != nil {
			continue // quorum unreachable: the defense worked
		}
		payload := mk(v, cert)
		for i := 0; i < a.Env.Params.N; i++ {
			id := types.ProcessID(i)
			if a.Corrupted(id) {
				continue
			}
			want := 0
			if v.Equal(a.V2) {
				want = 1
			}
			if a.groupOf(id) == want {
				msgs = append(msgs, sim.Message{From: a.leader, To: id, Payload: payload})
			}
		}
	}
	return msgs
}
