// Package attacks contains protocol-aware Byzantine behaviours. They live
// apart from the generic package adversary because they import the
// protocol packages (the generic behaviours are protocol-agnostic).
//
// The headline attack is phase spam: corrupted processes initiate their
// rotating-leader phases — asking every correct process for help or votes
// — and then ignore the answers, so each corrupted leader burns Θ(n)
// honest words without making progress. This is exactly the run family
// behind the paper's O(n(f+1)) upper bound; with plain crashes the
// adaptive protocols stay at O(n) regardless of f, because a crashed
// leader's phase is silent.
package attacks

import (
	"adaptiveba/internal/adversary"
	"adaptiveba/internal/core/bb"
	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// WBAPhaseSpam corrupts the given processes for a standalone weak BA run
// (session root ""). Each corrupted process p_j initiates weak BA phase j
// with a proposal and ignores the votes.
type WBAPhaseSpam struct {
	adversary.Core
	// Value is the spammed proposal; it must satisfy the run's validity
	// predicate for honest processes to vote (and thus pay words).
	Value types.Value
	// Session prefixes the spammed messages (empty for standalone runs).
	Session string
	// StartTick is the tick at which weak BA round 1 begins (0 for
	// standalone runs).
	StartTick types.Tick
}

var _ sim.Adversary = (*WBAPhaseSpam)(nil)

// NewWBAPhaseSpam corrupts ids (each id should be ≤ t+1 so that it leads
// a weak BA phase).
func NewWBAPhaseSpam(value types.Value, ids ...types.ProcessID) *WBAPhaseSpam {
	a := &WBAPhaseSpam{Value: value}
	for _, id := range ids {
		a.Schedule = append(a.Schedule, sim.Corruption{ID: id})
	}
	return a
}

// Act implements sim.Adversary: at the first tick of phase j (led by p_j),
// broadcast a proposal from the corrupted leader.
func (a *WBAPhaseSpam) Act(now types.Tick, _ []sim.Message) []sim.Message {
	var msgs []sim.Message
	for _, c := range a.Schedule {
		phase := int(c.ID) // p_j leads phase j
		if phase < 1 || phase > a.Env.Params.T+1 {
			continue
		}
		if now != a.StartTick+types.Tick(5*(phase-1)) {
			continue
		}
		for i := 0; i < a.Env.Params.N; i++ {
			msgs = append(msgs, sim.Message{
				From:    c.ID,
				To:      types.ProcessID(i),
				Session: a.Session,
				Payload: wba.Propose{Phase: phase, V: a.Value},
			})
		}
	}
	return msgs
}

// BBPhaseSpam corrupts processes for a BB run: each corrupted p_j spams
// the BB vetting phase j with a help request, and — once it has observed
// the sender's signed value — spams its nested weak BA phase with that
// (BB_valid) envelope, making the correct processes vote.
type BBPhaseSpam struct {
	adversary.Core
	senderEnv types.Value // captured ⟨v⟩_sender envelope
}

var _ sim.Adversary = (*BBPhaseSpam)(nil)

// NewBBPhaseSpam corrupts ids.
func NewBBPhaseSpam(ids ...types.ProcessID) *BBPhaseSpam {
	a := &BBPhaseSpam{}
	for _, id := range ids {
		a.Schedule = append(a.Schedule, sim.Corruption{ID: id})
	}
	return a
}

// Observe captures the sender's round-1 value for later (valid!) spam.
func (a *BBPhaseSpam) Observe(_ types.Tick, _ types.ProcessID, inbox []proto.Incoming) {
	if a.senderEnv != nil {
		return
	}
	for _, in := range inbox {
		if sm, ok := in.Payload.(bb.SenderMsg); ok {
			a.senderEnv = bb.EncodeSenderValue(bb.SenderValue{V: sm.V, Sig: sm.Sig})
			return
		}
	}
}

// Act implements sim.Adversary.
func (a *BBPhaseSpam) Act(now types.Tick, _ []sim.Message) []sim.Message {
	params := a.Env.Params
	wbaStart := types.Tick(1 + 3*params.N) // BB round 1 + n vetting phases
	var msgs []sim.Message
	for _, c := range a.Schedule {
		phase := int(c.ID)
		// Vetting-phase spam: help_req in BB phase j (round 1 of the
		// 3-round phase starting at tick 1 + 3(j-1)).
		if phase >= 1 && phase <= params.N && now == types.Tick(1+3*(phase-1)) {
			for i := 0; i < params.N; i++ {
				msgs = append(msgs, sim.Message{
					From: c.ID, To: types.ProcessID(i),
					Payload: bb.HelpReq{Phase: phase},
				})
			}
		}
		// Nested weak BA spam with the captured valid envelope.
		if a.senderEnv != nil && phase >= 1 && phase <= params.T+1 &&
			now == wbaStart+types.Tick(5*(phase-1)) {
			for i := 0; i < params.N; i++ {
				msgs = append(msgs, sim.Message{
					From: c.ID, To: types.ProcessID(i),
					Session: "wba",
					Payload: wba.Propose{Phase: phase, V: a.senderEnv},
				})
			}
		}
	}
	return msgs
}
