package attacks

import (
	"testing"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// Compile-time interface satisfaction for every attack in this package:
// each must be a full sim.Adversary (the adversary.Core lifecycle —
// Init, Corruptions, the Observe/Act hooks, Quiescent). A behaviour
// that loses one of the methods (e.g. by renaming an override so it no
// longer shadows Core's no-op) fails here at build time, not at the
// first simulation that happens to exercise it.
var (
	_ sim.Adversary = (*WBAPhaseSpam)(nil)
	_ sim.Adversary = (*BBPhaseSpam)(nil)
	_ sim.Adversary = (*BBVettingEquivocator)(nil)
	_ sim.Adversary = (*FloodChain)(nil)
	_ sim.Adversary = (*WBAHelpSpam)(nil)
	_ sim.Adversary = (*LateCertRelease)(nil)
	_ sim.Adversary = (*SelectivePhaseLeader)(nil)
	_ sim.Adversary = (*WBASplitVote)(nil)
)

// TestEveryAttackFollowsTheCoreLifecycle drives each attack through the
// engine's call order without a simulation: Init then Corruptions must
// be safe before any tick, the corruption schedule must be within the
// declared ids, and every attack must eventually report quiescent (a
// never-quiescent adversary deadlocks the run-termination check).
func TestEveryAttackFollowsTheCoreLifecycle(t *testing.T) {
	params, err := types.NewParams(7)
	if err != nil {
		t.Fatal(err)
	}
	ids := []types.ProcessID{1, 2}
	builds := map[string]sim.Adversary{
		"wba-phase-spam":     NewWBAPhaseSpam(types.Value("w"), ids...),
		"bb-phase-spam":      NewBBPhaseSpam(ids...),
		"bb-vetting-equiv":   NewBBVettingEquivocator("tag", types.Value("a"), types.Value("b")),
		"flood-chain":        NewFloodChain(types.Value("m"), ids...),
		"wba-help-spam":      NewWBAHelpSpam("tag", 25, ids...),
		"late-cert-release":  NewLateCertRelease("tag", 25, ids...),
		"selective-phase":    NewSelectivePhaseLeader("tag", 3, types.Value("v"), ids...),
		"wba-split-vote":     NewWBASplitVote("tag", params.Quorum(), types.Value("a"), types.Value("b"), ids...),
		"core-only-is-crash": adversary.NewCrash(ids...),
	}
	for name, adv := range builds {
		t.Run(name, func(t *testing.T) {
			adv.Init(sim.Env{Params: params})
			cs := adv.Corruptions()
			if len(cs) == 0 {
				t.Fatal("attack corrupts nothing")
			}
			if len(cs) > params.T {
				t.Fatalf("schedule corrupts %d > t=%d processes", len(cs), params.T)
			}
			seen := map[types.ProcessID]bool{}
			for _, c := range cs {
				if seen[c.ID] {
					t.Fatalf("duplicate corruption of %v", c.ID)
				}
				seen[c.ID] = true
			}
			// Every attack must go quiescent by some horizon, or runs
			// whose honest machines finished would never terminate.
			quiet := false
			for now := types.Tick(0); now <= 10_000; now++ {
				if adv.Quiescent(now) {
					quiet = true
					break
				}
			}
			if !quiet {
				t.Error("attack never reports quiescent within 10k ticks")
			}
		})
	}
}
