package attacks

import (
	"fmt"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/baseline/floodset"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// FloodChain is the classic Θ(f)-round lower-bound construction for
// early-stopping crash consensus: link k of the chain behaves correctly
// until round k, then crashes mid-broadcast, having delivered its flood
// (carrying the chain's hidden minimum value) to exactly the next link.
// Every round exposes one fresh failure, so the clean-round rule cannot
// fire before round f+1 — and only then does the minimum, handed to a
// correct process by the final link, surface and spread.
type FloodChain struct {
	adversary.Core
	// Min is the hidden minimum (must sort below every honest input for
	// the effect to be visible in the decision).
	Min types.Value
}

var _ sim.Adversary = (*FloodChain)(nil)

// NewFloodChain corrupts ids (the chain, in order).
func NewFloodChain(min types.Value, ids ...types.ProcessID) *FloodChain {
	a := &FloodChain{Min: min}
	for _, id := range ids {
		a.Schedule = append(a.Schedule, sim.Corruption{ID: id})
	}
	return a
}

// Act implements sim.Adversary. A message sent at tick T belongs to round
// T+1. Link ℓ (1-based): rounds < ℓ behave correctly (full heartbeat
// floods with a chaff value in round 1); round ℓ crashes mid-broadcast,
// reaching only the next link (or, for the last link, correct p0) with
// the minimum; afterwards silence.
func (a *FloodChain) Act(now types.Tick, _ []sim.Message) []sim.Message {
	r := int(now) + 1
	var msgs []sim.Message
	for k, c := range a.Schedule {
		link := k + 1
		switch {
		case r < link:
			// Alive and correct-looking: full broadcast.
			var vals []types.Value
			if r == 1 {
				vals = []types.Value{types.Value(fmt.Sprintf("9-chaff-%d", link))}
			}
			for i := 0; i < a.Env.Params.N; i++ {
				msgs = append(msgs, sim.Message{
					From: c.ID, To: types.ProcessID(i),
					Payload: floodset.Flood{Values: vals},
				})
			}
		case r == link:
			// Mid-broadcast crash: the round's flood (with the minimum)
			// reaches exactly one recipient.
			to := types.ProcessID(0)
			if k+1 < len(a.Schedule) {
				to = a.Schedule[k+1].ID
			}
			msgs = append(msgs, sim.Message{
				From: c.ID, To: to,
				Payload: floodset.Flood{Values: []types.Value{a.Min}},
			})
		}
	}
	return msgs
}

// Quiescent implements sim.Adversary.
func (a *FloodChain) Quiescent(now types.Tick) bool {
	return int(now) > len(a.Schedule)+1
}
