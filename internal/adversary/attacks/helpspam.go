package attacks

import (
	"adaptiveba/internal/adversary"
	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// WBAHelpSpam makes the corrupted processes send signed help requests in
// the weak BA help round even though they could have decided. The paper
// (Section 6) prices this precisely: decided correct processes answer
// each request, so f Byzantine requesters cost O(nf) words — and f < t+1
// Byzantine requesters alone can never assemble the (t+1) fallback
// certificate, so the quadratic fallback stays off.
type WBAHelpSpam struct {
	adversary.Core
	// Tag must match the weak BA instance's tag.
	Tag string
	// HelpRound is the tick of the weak BA's help round A (phases*5 with
	// default phases; StartTick offsets nested instances).
	HelpRound types.Tick

	sent bool
}

var _ sim.Adversary = (*WBAHelpSpam)(nil)

// NewWBAHelpSpam corrupts ids and spams help requests at helpRound.
func NewWBAHelpSpam(tag string, helpRound types.Tick, ids ...types.ProcessID) *WBAHelpSpam {
	a := &WBAHelpSpam{Tag: tag, HelpRound: helpRound}
	for _, id := range ids {
		a.Schedule = append(a.Schedule, sim.Corruption{ID: id})
	}
	return a
}

// Act implements sim.Adversary.
func (a *WBAHelpSpam) Act(now types.Tick, _ []sim.Message) []sim.Message {
	if a.sent || now != a.HelpRound {
		return nil
	}
	a.sent = true
	var msgs []sim.Message
	for _, c := range a.Schedule {
		share, err := a.Env.Crypto.Signer(c.ID).Sign(wba.HelpReqBase(a.Tag))
		if err != nil {
			continue
		}
		for i := 0; i < a.Env.Params.N; i++ {
			msgs = append(msgs, sim.Message{
				From: c.ID, To: types.ProcessID(i),
				Payload: wba.HelpReq{Share: share},
			})
		}
	}
	return msgs
}

// LateCertRelease is a freshness attack on the weak BA fallback path: the
// adversary passively collects help-request shares during the run and, if
// it ever holds t+1, releases the fallback certificate long after every
// correct process has decided and gone quiet. Correct processes must
// re-activate, echo the certificate, run A_fallback — and still decide
// the same value they already decided (Lemma 19).
type LateCertRelease struct {
	adversary.Core
	// Tag must match the weak BA instance's tag.
	Tag string
	// ReleaseTick is when the certificate is released.
	ReleaseTick types.Tick

	shares map[types.ProcessID]wba.HelpReq
	sent   bool
}

var _ sim.Adversary = (*LateCertRelease)(nil)

// NewLateCertRelease corrupts ids (their own signatures count towards the
// certificate) and schedules the release.
func NewLateCertRelease(tag string, release types.Tick, ids ...types.ProcessID) *LateCertRelease {
	a := &LateCertRelease{Tag: tag, ReleaseTick: release, shares: make(map[types.ProcessID]wba.HelpReq)}
	for _, id := range ids {
		a.Schedule = append(a.Schedule, sim.Corruption{ID: id})
	}
	return a
}

// Observe harvests help-request shares broadcast by correct processes.
func (a *LateCertRelease) Observe(_ types.Tick, _ types.ProcessID, inbox []proto.Incoming) {
	for _, in := range inbox {
		if hr, ok := in.Payload.(wba.HelpReq); ok {
			a.shares[in.From] = hr
		}
	}
}

// Act implements sim.Adversary: at the release tick, combine harvested
// and own shares into the fallback certificate and broadcast it.
func (a *LateCertRelease) Act(now types.Tick, _ []sim.Message) []sim.Message {
	if a.sent || now != a.ReleaseTick {
		return nil
	}
	a.sent = true
	small := a.Env.Crypto.Threshold(a.Env.Params.SmallQuorum())
	base := wba.HelpReqBase(a.Tag)

	var shares []threshold.Share
	for id, hr := range a.shares {
		shares = append(shares, threshold.Share{Signer: id, Sig: hr.Share})
	}
	for _, c := range a.Schedule {
		sg, err := a.Env.Crypto.Signer(c.ID).Sign(base)
		if err != nil {
			continue
		}
		shares = append(shares, threshold.Share{Signer: c.ID, Sig: sg})
	}
	cert, err := small.Combine(base, shares)
	if err != nil {
		return nil // fewer than t+1 distinct shares ever existed
	}
	payload := wba.FallbackCert{Cert: cert}
	var msgs []sim.Message
	from := a.Schedule[0].ID
	for i := 0; i < a.Env.Params.N; i++ {
		msgs = append(msgs, sim.Message{From: from, To: types.ProcessID(i), Payload: payload})
	}
	return msgs
}

// CertFormed reports whether the release actually produced a certificate
// attempt (i.e. Act ran).
func (a *LateCertRelease) CertFormed() bool { return a.sent }

// Quiescent keeps the engine alive until the release (plus the fallback's
// duration) has played out.
func (a *LateCertRelease) Quiescent(now types.Tick) bool {
	return now > a.ReleaseTick+types.Tick(a.Env.Params.T*8+40)
}
