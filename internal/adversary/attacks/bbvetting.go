package attacks

import (
	"adaptiveba/internal/adversary"
	"adaptiveba/internal/core/bb"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// BBVettingEquivocator attacks the vetting part of the adaptive BB
// (Algorithm 2) with a coalition of a Byzantine SENDER and a Byzantine
// phase-1 vetting leader:
//
//   - the sender equivocates in round 1, giving ⟨v1⟩_sender to one half of
//     the correct processes and nothing to the other half;
//   - the corrupted vetting leader then runs its phase and hands the half
//     that has no value a DIFFERENT sender-signed value ⟨v2⟩_sender.
//
// Both values are BB_valid (genuinely sender-signed), so the correct
// processes enter the weak BA with conflicting valid inputs — precisely
// the situation unique validity (Definition 3) must absorb: the run may
// decide v1, v2, or ⊥, but never split.
type BBVettingEquivocator struct {
	adversary.Core
	// Tag must match the BB instance's tag.
	Tag string
	// V1 and V2 are the two sender-signed values.
	V1, V2 types.Value

	sender types.ProcessID
	leader types.ProcessID
}

var _ sim.Adversary = (*BBVettingEquivocator)(nil)

// NewBBVettingEquivocator corrupts the sender (p0) and the phase-1
// vetting leader (p1).
func NewBBVettingEquivocator(tag string, v1, v2 types.Value) *BBVettingEquivocator {
	a := &BBVettingEquivocator{Tag: tag, V1: v1, V2: v2, sender: 0, leader: 1}
	a.Schedule = []sim.Corruption{{ID: 0}, {ID: 1}}
	return a
}

// signEnvelope produces the sender-signed BB envelope for v.
func (a *BBVettingEquivocator) signEnvelope(v types.Value) (types.Value, bb.SenderMsg, error) {
	s, err := a.Env.Crypto.Signer(a.sender).Sign(bb.SenderBase(a.Tag, a.sender, v))
	if err != nil {
		return nil, bb.SenderMsg{}, err
	}
	env := bb.EncodeSenderValue(bb.SenderValue{V: v, Sig: s})
	return env, bb.SenderMsg{V: v, Sig: s}, nil
}

// Act implements sim.Adversary.
func (a *BBVettingEquivocator) Act(now types.Tick, _ []sim.Message) []sim.Message {
	switch now {
	case 0:
		// Round 1: ⟨v1⟩_sender to even correct ids only.
		_, msg, err := a.signEnvelope(a.V1)
		if err != nil {
			return nil
		}
		var msgs []sim.Message
		for i := 2; i < a.Env.Params.N; i += 2 {
			msgs = append(msgs, sim.Message{From: a.sender, To: types.ProcessID(i), Payload: msg})
		}
		return msgs
	case 1:
		// Vetting phase 1, round 1 (tick 1): the corrupted leader asks
		// for help so the valueless half answers idk — and regardless of
		// the answers it will push v2 at them.
		var msgs []sim.Message
		for i := 0; i < a.Env.Params.N; i++ {
			msgs = append(msgs, sim.Message{From: a.leader, To: types.ProcessID(i), Payload: bb.HelpReq{Phase: 1}})
		}
		return msgs
	case 3:
		// Vetting phase 1, round 3: hand ⟨v2⟩_sender to the odd ids.
		env2, _, err := a.signEnvelope(a.V2)
		if err != nil {
			return nil
		}
		var msgs []sim.Message
		for i := 3; i < a.Env.Params.N; i += 2 {
			msgs = append(msgs, sim.Message{From: a.leader, To: types.ProcessID(i), Payload: bb.Vetted{Phase: 1, Val: env2}})
		}
		return msgs
	}
	return nil
}
