// Package adversary is a library of Byzantine behaviours for the
// simulator. The paper's adversary is adaptive, rushing, and fully
// malicious; the behaviours here cover the spectrum the experiments and
// tests need:
//
//   - Crash / CrashAt: processes fail by stopping (the "common case" the
//     adaptive complexity is optimized for).
//   - Mimic: corrupted processes run attacker-chosen machines — e.g. the
//     honest protocol with a conflicting input, or a modified protocol.
//   - Replay: records honest traffic and re-sends stale payloads from
//     corrupted identities to random targets at random later ticks; a
//     generic freshness attack that certificates and phase tags must
//     withstand.
//   - Compose: runs several behaviours side by side.
//
// Protocol-aware attacks (phase spam, split votes, selective finalize,
// help spam, late certificate release, flood chains) live in the attacks
// subpackage, which may import the protocol packages.
package adversary

import (
	"math/rand"

	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// Core provides the boilerplate of a sim.Adversary: a corruption schedule
// and access to the environment. Behaviours embed it by pointer and
// override only the hooks they need.
//
// # Lifecycle
//
// The engine drives every adversary through the same call sequence:
//
//  1. Init(env) — once, before the run, with the setup artifacts
//     (parameters and crypto). Core stores env for the behaviour.
//  2. Corruptions() — once, after Init. The engine validates the
//     schedule (at most t distinct processes) and applies each
//     corruption at its tick; a corrupted process's honest machine
//     stops being stepped from that tick on.
//  3. Per tick, the Observer hook: Observe(now, id, inbox) once per
//     currently-corrupted id, exposing the messages that identity
//     received. Core's default discards them — a behaviour that acts on
//     what it sees (Mimic, the explorer's schedule adversary) overrides
//     this; pure crash behaviours keep the no-op.
//  4. Per tick, the Actor hook: Act(now, honest) after ALL honest
//     machines produced their tick-now traffic — the adversary is
//     rushing: it sees the honest sends of the current tick before
//     committing its own. Returned messages must originate from
//     currently-corrupted ids (the engine rejects forgeries) and are
//     delivered at now+1 alongside the honest traffic. Core's default
//     returns nil: corrupted processes stay mute, which makes an
//     unoverridden Core + schedule exactly a crash adversary.
//  5. Quiescent(now) — polled when every honest machine is done; the
//     run ends only when the adversary also reports quiescent (and no
//     scheduled corruption is still pending). Core's default is true;
//     behaviours that act at future ticks (Replay, the attack library)
//     must override it to keep the run alive until their horizon.
//
// Observe and Act receive slices the engine reuses across ticks:
// implementations that retain messages must copy them.
type Core struct {
	Env      sim.Env
	Schedule []sim.Corruption
}

// Init implements sim.Adversary (lifecycle step 1).
func (c *Core) Init(env sim.Env) { c.Env = env }

// Corruptions implements sim.Adversary (lifecycle step 2).
func (c *Core) Corruptions() []sim.Corruption { return c.Schedule }

// Observe implements sim.Adversary (default Observer: ignore inboxes).
func (c *Core) Observe(types.Tick, types.ProcessID, []proto.Incoming) {}

// Act implements sim.Adversary (default Actor: stay silent).
func (c *Core) Act(types.Tick, []sim.Message) []sim.Message { return nil }

// Quiescent implements sim.Adversary (default: no pending actions).
func (c *Core) Quiescent(types.Tick) bool { return true }

// Corrupted reports whether id is in the schedule.
func (c *Core) Corrupted(id types.ProcessID) bool {
	for _, cor := range c.Schedule {
		if cor.ID == id {
			return true
		}
	}
	return false
}

// schedule builds an immediate corruption schedule.
func schedule(ids []types.ProcessID) []sim.Corruption {
	cs := make([]sim.Corruption, len(ids))
	for i, id := range ids {
		cs[i] = sim.Corruption{ID: id}
	}
	return cs
}

// Crash fails the given processes by stopping them before the run starts.
type Crash struct {
	Core
}

var _ sim.Adversary = (*Crash)(nil)

// NewCrash crashes ids at tick 0.
func NewCrash(ids ...types.ProcessID) *Crash {
	return &Crash{Core: Core{Schedule: schedule(ids)}}
}

// NewCrashAt crashes processes per the given tick schedule.
func NewCrashAt(at map[types.ProcessID]types.Tick) *Crash {
	cs := make([]sim.Corruption, 0, len(at))
	for id, tick := range at {
		cs = append(cs, sim.Corruption{ID: id, At: tick})
	}
	return &Crash{Core: Core{Schedule: cs}}
}

// FirstProcesses returns the ids 0..f-1, a convenient crash set that takes
// out the first f rotating leaders.
func FirstProcesses(f int) []types.ProcessID {
	ids := make([]types.ProcessID, f)
	for i := range ids {
		ids[i] = types.ProcessID(i)
	}
	return ids
}

// Mimic runs attacker-chosen machines for the corrupted processes. The
// machines see exactly the messages addressed to their identity and their
// sends are emitted from it — i.e. the corrupted processes follow the
// attacker's protocol instead of the honest one.
type Mimic struct {
	Core
	// Factory builds the machine for each corrupted id.
	Factory func(id types.ProcessID) proto.Machine

	machines map[types.ProcessID]proto.Machine
	inboxes  map[types.ProcessID][]proto.Incoming
	order    []types.ProcessID
}

var _ sim.Adversary = (*Mimic)(nil)

// NewMimic corrupts ids and drives them with factory's machines.
func NewMimic(factory func(id types.ProcessID) proto.Machine, ids ...types.ProcessID) *Mimic {
	return &Mimic{
		Core:     Core{Schedule: schedule(ids)},
		Factory:  factory,
		machines: make(map[types.ProcessID]proto.Machine),
		inboxes:  make(map[types.ProcessID][]proto.Incoming),
		order:    append([]types.ProcessID(nil), ids...),
	}
}

// Observe implements sim.Adversary.
func (m *Mimic) Observe(_ types.Tick, to types.ProcessID, inbox []proto.Incoming) {
	m.inboxes[to] = append(m.inboxes[to], inbox...)
}

// Act implements sim.Adversary.
func (m *Mimic) Act(now types.Tick, _ []sim.Message) []sim.Message {
	var msgs []sim.Message
	for _, id := range m.order {
		mach, ok := m.machines[id]
		var outs []proto.Outgoing
		if !ok {
			mach = m.Factory(id)
			m.machines[id] = mach
			outs = mach.Begin(now)
		} else {
			outs = mach.Tick(now, m.inboxes[id])
		}
		m.inboxes[id] = nil
		for _, o := range outs {
			msgs = append(msgs, sim.Message{From: id, To: o.To, Session: o.Session, Payload: o.Payload})
		}
	}
	return msgs
}

// Replay records honest traffic and re-sends stale payloads from corrupted
// identities to random recipients at random later ticks. Deterministic
// given the seed.
type Replay struct {
	Core
	rng      *rand.Rand
	recorded []sim.Message
	// Rate is the number of replayed messages per tick (default 2).
	Rate int
	// Horizon is the last tick at which the replayer acts; after it the
	// adversary reports quiescent. Required so runs terminate.
	Horizon types.Tick
}

var _ sim.Adversary = (*Replay)(nil)

// NewReplay corrupts ids and replays traffic until horizon.
func NewReplay(seed int64, horizon types.Tick, ids ...types.ProcessID) *Replay {
	return &Replay{
		Core:    Core{Schedule: schedule(ids)},
		rng:     rand.New(rand.NewSource(seed)),
		Rate:    2,
		Horizon: horizon,
	}
}

// Act implements sim.Adversary.
func (r *Replay) Act(now types.Tick, honest []sim.Message) []sim.Message {
	if now > r.Horizon {
		// Quiescent: recording past the horizon would only grow the
		// buffer without ever being replayed (unbounded memory on long
		// large-n runs).
		return nil
	}
	r.recorded = append(r.recorded, honest...)
	if len(r.recorded) == 0 || len(r.Schedule) == 0 {
		return nil
	}
	var msgs []sim.Message
	for i := 0; i < r.Rate; i++ {
		src := r.recorded[r.rng.Intn(len(r.recorded))]
		from := r.Schedule[r.rng.Intn(len(r.Schedule))].ID
		to := types.ProcessID(r.rng.Intn(r.Env.Params.N))
		msgs = append(msgs, sim.Message{From: from, To: to, Session: src.Session, Payload: src.Payload})
	}
	return msgs
}

// Quiescent implements sim.Adversary.
func (r *Replay) Quiescent(now types.Tick) bool { return now > r.Horizon }

// Compose runs several behaviours as one adversary; their corruption
// schedules must be disjoint.
type Compose struct {
	parts []sim.Adversary
}

var _ sim.Adversary = (*Compose)(nil)

// NewCompose combines behaviours.
func NewCompose(parts ...sim.Adversary) *Compose { return &Compose{parts: parts} }

// Init implements sim.Adversary.
func (c *Compose) Init(env sim.Env) {
	for _, p := range c.parts {
		p.Init(env)
	}
}

// Corruptions implements sim.Adversary.
func (c *Compose) Corruptions() []sim.Corruption {
	var out []sim.Corruption
	for _, p := range c.parts {
		out = append(out, p.Corruptions()...)
	}
	return out
}

// Observe implements sim.Adversary: routed to the part that owns the id.
func (c *Compose) Observe(now types.Tick, to types.ProcessID, inbox []proto.Incoming) {
	for _, p := range c.parts {
		for _, cor := range p.Corruptions() {
			if cor.ID == to {
				p.Observe(now, to, inbox)
				return
			}
		}
	}
}

// Act implements sim.Adversary.
func (c *Compose) Act(now types.Tick, honest []sim.Message) []sim.Message {
	var out []sim.Message
	for _, p := range c.parts {
		out = append(out, p.Act(now, honest)...)
	}
	return out
}

// Quiescent implements sim.Adversary.
func (c *Compose) Quiescent(now types.Tick) bool {
	for _, p := range c.parts {
		if !p.Quiescent(now) {
			return false
		}
	}
	return true
}
