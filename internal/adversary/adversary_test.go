package adversary

import (
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// notePayload is a trivial one-word payload.
type notePayload struct{ n byte }

func (notePayload) Type() string { return "test/note" }
func (notePayload) Words() int   { return 1 }

// countMachine broadcasts once and counts everything it receives.
type countMachine struct {
	params   types.Params
	received int
	decided  bool
	began    types.Tick
}

func (m *countMachine) Begin(now types.Tick) []proto.Outgoing {
	m.began = now
	return proto.Broadcast(m.params, "", notePayload{n: 1})
}

func (m *countMachine) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	m.received += len(inbox)
	if now >= m.began+3 {
		m.decided = true
	}
	return nil
}

func (m *countMachine) Output() (types.Value, bool) { return types.Value{1}, m.decided }
func (m *countMachine) Done() bool                  { return m.decided }

func env(t *testing.T, n int) (*proto.Crypto, types.Params) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("adv-test"))
	if err != nil {
		t.Fatal(err)
	}
	return proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d")), params
}

func TestCrashSchedules(t *testing.T) {
	a := NewCrash(1, 3)
	if len(a.Corruptions()) != 2 {
		t.Fatalf("corruptions: %v", a.Corruptions())
	}
	if !a.Corrupted(1) || !a.Corrupted(3) || a.Corrupted(0) {
		t.Error("Corrupted misreports")
	}
	b := NewCrashAt(map[types.ProcessID]types.Tick{2: 5})
	cs := b.Corruptions()
	if len(cs) != 1 || cs[0].ID != 2 || cs[0].At != 5 {
		t.Errorf("CrashAt schedule: %v", cs)
	}
}

func TestFirstProcesses(t *testing.T) {
	ids := FirstProcesses(3)
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Errorf("FirstProcesses(3) = %v", ids)
	}
	if len(FirstProcesses(0)) != 0 {
		t.Error("FirstProcesses(0) not empty")
	}
}

func TestMimicRunsMachinesFromCorruptIdentities(t *testing.T) {
	crypto, params := env(t, 5)
	mimic := NewMimic(func(id types.ProcessID) proto.Machine {
		return &countMachine{params: params}
	}, 2)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return &countMachine{params: params}
		},
		Adversary: mimic,
		MaxTicks:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The mimicked p2 broadcast like everyone else: honest processes got
	// messages from all 5 identities.
	if res.Report.Byzantine.Messages != 4 {
		t.Errorf("mimic sent %d messages, want 4", res.Report.Byzantine.Messages)
	}
}

func TestReplayDeterministicAndBounded(t *testing.T) {
	crypto, params := env(t, 5)
	run := func() *sim.Result {
		res, err := sim.Run(sim.Config{
			Params: params,
			Crypto: crypto,
			Factory: func(id types.ProcessID) proto.Machine {
				return &countMachine{params: params}
			},
			Adversary: NewReplay(7, 20, 0),
			MaxTicks:  200,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Report.Byzantine.Messages != b.Report.Byzantine.Messages {
		t.Error("replay not deterministic across runs")
	}
	if a.Report.Byzantine.Messages == 0 {
		t.Error("replay sent nothing")
	}
	if a.TimedOut {
		t.Error("replay kept the run alive past its horizon")
	}
}

func TestComposeRoutesAndMerges(t *testing.T) {
	crypto, params := env(t, 7)
	comp := NewCompose(NewCrash(1), NewReplay(3, 20, 4))
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return &countMachine{params: params}
		},
		Adversary: comp,
		MaxTicks:  200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.F() != 2 {
		t.Fatalf("F = %d", res.F())
	}
	if res.Report.Byzantine.Messages == 0 {
		t.Error("composed replay silent")
	}
	if !res.AllDecided() {
		t.Error("honest machines blocked")
	}
}
