package kv

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/smr"
	"adaptiveba/internal/types"
)

func TestApplyBasics(t *testing.T) {
	s := NewStore()
	steps := []struct {
		cmd     string
		wantErr bool
	}{
		{cmd: "SET a 1"},
		{cmd: "SET b 2"},
		{cmd: "DEL a"},
		{cmd: "CAS b 2 3"},
		{cmd: "CAS b 99 100"}, // mismatch: no-op, still valid
		{cmd: "NOPE x", wantErr: true},
		{cmd: "SET toofew", wantErr: true},
		{cmd: "DEL a b", wantErr: true},
		{cmd: "CAS a b", wantErr: true},
		{cmd: "   ", wantErr: true},
	}
	for _, st := range steps {
		err := s.Apply(types.Value(st.cmd))
		if st.wantErr != (err != nil) {
			t.Errorf("Apply(%q) err = %v", st.cmd, err)
		}
		if err != nil && !errors.Is(err, ErrBadCommand) {
			t.Errorf("Apply(%q) err type: %v", st.cmd, err)
		}
	}
	if _, ok := s.Get("a"); ok {
		t.Error("a survived DEL")
	}
	if v, _ := s.Get("b"); v != "3" {
		t.Errorf("b = %q, want 3 (CAS applied once)", v)
	}
	if s.Applied() != len(steps) {
		t.Errorf("Applied = %d", s.Applied())
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestBottomSlotIsNoOp(t *testing.T) {
	s := NewStore()
	if err := s.Apply(types.Bottom); err != nil {
		t.Errorf("⊥ slot errored: %v", err)
	}
	if s.Applied() != 1 || s.Len() != 0 {
		t.Errorf("state after ⊥: applied=%d len=%d", s.Applied(), s.Len())
	}
}

func TestHashCanonical(t *testing.T) {
	a, b := NewStore(), NewStore()
	// Same final state via different histories.
	for _, c := range []string{"SET x 1", "SET y 2", "DEL x", "SET x 3"} {
		if err := a.Apply(types.Value(c)); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []string{"SET y 2", "SET x 3"} {
		if err := b.Apply(types.Value(c)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Hash() != b.Hash() {
		t.Error("equal states hash differently")
	}
	if err := b.Apply(types.Value("SET z 9")); err != nil {
		t.Fatal(err)
	}
	if a.Hash() == b.Hash() {
		t.Error("different states hash equal")
	}
}

func TestSnapshotIsolated(t *testing.T) {
	s := NewStore()
	if err := s.Apply(types.Value("SET k v")); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	snap["k"] = "tampered"
	if v, _ := s.Get("k"); v != "v" {
		t.Error("snapshot aliases store")
	}
}

func TestReplayCollectsRejections(t *testing.T) {
	entries := []smr.Entry{
		{Slot: 0, Command: types.Value("SET a 1")},
		{Slot: 1, Command: types.Bottom},
		{Slot: 2, Command: types.Value("garbage from byzantine proposer")},
		{Slot: 3, Command: types.Value("SET b 2")},
	}
	s, rejected := Replay(entries)
	if len(rejected) != 1 {
		t.Fatalf("rejected: %v", rejected)
	}
	if s.Len() != 2 || s.Applied() != 4 {
		t.Errorf("len=%d applied=%d", s.Len(), s.Applied())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	for _, c := range []string{"SET a 1", "SET b 2", "CAS b 2 3", "DEL a", "SET c 4"} {
		if err := s.Apply(types.Value(c)); err != nil {
			t.Fatal(err)
		}
	}
	back, err := DecodeSnapshot(s.EncodeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != s.Hash() {
		t.Errorf("hash mismatch after round trip: %s vs %s", back.Hash(), s.Hash())
	}
	if back.Applied() != s.Applied() {
		t.Errorf("applied mismatch: %d vs %d", back.Applied(), s.Applied())
	}
}

// TestSnapshotTruncateReplay is the log-truncation correctness property a
// long-running service rests on: snapshot at a prefix, drop the prefix,
// replay only the suffix on the decoded snapshot — same state hash as
// replaying the whole log from genesis.
func TestSnapshotTruncateReplay(t *testing.T) {
	log := []smr.Entry{
		{Slot: 0, Command: types.Value("SET a 1")},
		{Slot: 1, Command: types.Value("SET b 2")},
		{Slot: 2, Command: types.Value("CAS a 1 10")},
		{Slot: 3, Command: types.Value("DEL b")},
		{Slot: 4, Command: types.Value("SET c 3")},
		{Slot: 5, Command: types.Value("SET a final")},
	}
	full, _ := Replay(log)

	// Snapshot after the first 3 entries, truncate, replay the suffix.
	prefix, _ := Replay(log[:3])
	resumed, err := DecodeSnapshot(prefix.EncodeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Applied() != 3 {
		t.Fatalf("snapshot applied = %d, want 3", resumed.Applied())
	}
	for _, e := range log[3:] {
		_ = resumed.Apply(e.Command)
	}
	if resumed.Hash() != full.Hash() {
		t.Errorf("snapshot+suffix hash %s != full replay hash %s", resumed.Hash(), full.Hash())
	}
	if resumed.Applied() != full.Applied() {
		t.Errorf("applied %d != %d", resumed.Applied(), full.Applied())
	}
}

func TestSnapshotTamperDetected(t *testing.T) {
	s := NewStore()
	for _, c := range []string{"SET alpha one", "SET beta two"} {
		if err := s.Apply(types.Value(c)); err != nil {
			t.Fatal(err)
		}
	}
	enc := s.EncodeSnapshot()
	// Flip one byte inside a stored value (past the 16-byte header).
	for i := 20; i < len(enc)-50; i++ {
		mutated := append([]byte(nil), enc...)
		mutated[i] ^= 0x01
		if _, err := DecodeSnapshot(mutated); err == nil {
			t.Fatalf("flipped byte at offset %d went undetected", i)
		}
	}
	if _, err := DecodeSnapshot(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated snapshot went undetected")
	}
}

// TestQuickDeterminism: any command sequence applied to two fresh stores
// yields identical hashes — the property replication correctness rests on.
func TestQuickDeterminism(t *testing.T) {
	f := func(ops []uint8, keys []uint8) bool {
		a, b := NewStore(), NewStore()
		for i, op := range ops {
			k := "k0"
			if len(keys) > 0 {
				k = fmt.Sprintf("k%d", keys[i%len(keys)]%5)
			}
			var cmd string
			switch op % 4 {
			case 0:
				cmd = fmt.Sprintf("SET %s v%d", k, op)
			case 1:
				cmd = fmt.Sprintf("DEL %s", k)
			case 2:
				cmd = fmt.Sprintf("CAS %s v%d v%d", k, op, op+1)
			case 3:
				cmd = fmt.Sprintf("junk %d", op)
			}
			_ = a.Apply(types.Value(cmd))
			_ = b.Apply(types.Value(cmd))
		}
		return a.Hash() == b.Hash() && a.Applied() == b.Applied()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestEndToEndReplication runs the whole stack: commands → smr log over
// the adaptive BB → kv state machines, with a crashed replica, asserting
// state convergence across replicas.
func TestEndToEndReplication(t *testing.T) {
	const n = 5
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("kv-test"))
	if err != nil {
		t.Fatal(err)
	}
	crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))

	machines := make(map[types.ProcessID]*smr.Machine)
	var budget types.Tick
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m, err := smr.NewMachine(smr.Config{
				Params: params, Crypto: crypto, ID: id, Tag: "kv", Slots: 10,
				Queue: []types.Value{
					types.Value(fmt.Sprintf("SET key%d %d", id, id)),
					types.Value(fmt.Sprintf("CAS key%d %d updated", id, id)),
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			machines[id] = m
			budget = m.MaxTicks()
			return m
		},
		Adversary: adversary.NewCrash(4),
		MaxTicks:  budget * 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	var wantHash string
	for _, id := range res.Honest {
		store, _ := Replay(machines[id].Log())
		if wantHash == "" {
			wantHash = store.Hash()
			// p4 crashed: its keys never appear; others do and were CASed.
			if _, ok := store.Get("key4"); ok {
				t.Error("crashed replica's key committed")
			}
			if v, _ := store.Get("key0"); v != "updated" {
				t.Errorf("key0 = %q, want updated", v)
			}
			continue
		}
		if store.Hash() != wantHash {
			t.Errorf("replica %v state diverged", id)
		}
	}
}
