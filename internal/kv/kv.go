// Package kv is a deterministic replicated key-value state machine driven
// by the smr log: replicas apply committed commands in log order and,
// because the log is totally ordered and identical everywhere, their
// stores converge byte-for-byte. It is the smallest end-to-end
// application of the paper's protocols — a BFT-replicated database whose
// replication cost is O(n) words per write in the common case.
//
// Command language (UTF-8, space-separated):
//
//	SET <key> <value>   — write
//	DEL <key>           — delete
//	CAS <key> <old> <new> — compare-and-swap (no-op if mismatch)
//
// Unknown or malformed commands are rejected deterministically: every
// replica skips them identically, so a Byzantine proposer cannot diverge
// the state by committing garbage.
package kv

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"

	"adaptiveba/internal/smr"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

// ErrBadCommand reports a command the state machine rejects; rejection is
// deterministic and identical on every replica.
var ErrBadCommand = errors.New("kv: malformed command")

// ErrSnapshotMismatch reports a snapshot whose embedded state hash does
// not match the state it decodes to — a corrupted or tampered snapshot.
var ErrSnapshotMismatch = errors.New("kv: snapshot state hash mismatch")

// Store is the deterministic state machine.
type Store struct {
	data    map[string]string
	applied int // log positions consumed (including skipped/rejected)
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{data: make(map[string]string)}
}

// Len returns the number of live keys.
func (s *Store) Len() int { return len(s.data) }

// Applied returns the number of log entries consumed.
func (s *Store) Applied() int { return s.applied }

// Get reads a key.
func (s *Store) Get(key string) (string, bool) {
	v, ok := s.data[key]
	return v, ok
}

// Apply executes one committed command. Skipped log slots (⊥) and
// malformed commands are consumed without effect; malformed ones are
// reported (so callers can log them) but never diverge state.
func (s *Store) Apply(cmd types.Value) error {
	s.applied++
	if cmd.IsBottom() {
		return nil // skipped slot
	}
	fields := strings.Fields(string(cmd))
	if len(fields) == 0 {
		return fmt.Errorf("%w: empty", ErrBadCommand)
	}
	switch fields[0] {
	case "SET":
		if len(fields) != 3 {
			return fmt.Errorf("%w: SET wants 2 args, got %d", ErrBadCommand, len(fields)-1)
		}
		s.data[fields[1]] = fields[2]
		return nil
	case "DEL":
		if len(fields) != 2 {
			return fmt.Errorf("%w: DEL wants 1 arg, got %d", ErrBadCommand, len(fields)-1)
		}
		delete(s.data, fields[1])
		return nil
	case "CAS":
		if len(fields) != 4 {
			return fmt.Errorf("%w: CAS wants 3 args, got %d", ErrBadCommand, len(fields)-1)
		}
		if s.data[fields[1]] == fields[2] {
			s.data[fields[1]] = fields[3]
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown op %q", ErrBadCommand, fields[0])
	}
}

// Replay builds a store from a committed log prefix.
func Replay(entries []smr.Entry) (*Store, []error) {
	s := NewStore()
	var rejected []error
	for _, e := range entries {
		if err := s.Apply(e.Command); err != nil {
			rejected = append(rejected, fmt.Errorf("slot %d: %w", e.Slot, err))
		}
	}
	return s, rejected
}

// Snapshot returns a copy of the live keys.
func (s *Store) Snapshot() map[string]string {
	out := make(map[string]string, len(s.data))
	for k, v := range s.data {
		out[k] = v
	}
	return out
}

// EncodeSnapshot serializes the store canonically (sorted keys, the
// applied-entry count, and the state hash). A snapshot plus the log
// suffix after Applied() reconstructs the exact store, which is what lets
// a long-running service truncate its committed log: replaying the
// suffix on top of the snapshot yields the same state hash as replaying
// the full log from genesis.
func (s *Store) EncodeSnapshot() []byte {
	w := wire.NewWriter()
	w.PutInt(s.applied)
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.PutInt(len(keys))
	for _, k := range keys {
		w.PutString(k)
		w.PutString(s.data[k])
	}
	w.PutString(s.Hash())
	return w.Bytes()
}

// DecodeSnapshot reconstructs a store from EncodeSnapshot output. The
// embedded state hash is re-verified against the decoded state; any
// corruption — hostile lengths, truncation, or a flipped byte that
// changes a value — fails with ErrSnapshotMismatch or a wire error, never
// a silently wrong store.
func DecodeSnapshot(enc []byte) (*Store, error) {
	r := wire.NewReader(enc)
	applied := r.Int()
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if applied < 0 || n < 0 || n > wire.MaxChunk/8 {
		return nil, fmt.Errorf("%w: implausible snapshot header (applied=%d keys=%d)",
			ErrSnapshotMismatch, applied, n)
	}
	s := NewStore()
	s.applied = applied
	for i := 0; i < n; i++ {
		k := r.String()
		v := r.String()
		if r.Err() != nil {
			break
		}
		s.data[k] = v
	}
	want := r.String()
	if err := r.Close(); err != nil {
		return nil, err
	}
	if got := s.Hash(); got != want {
		return nil, fmt.Errorf("%w: decoded %s, snapshot claims %s", ErrSnapshotMismatch, got, want)
	}
	return s, nil
}

// Hash returns a canonical digest of the state, for cheap cross-replica
// convergence checks.
func (s *Store) Hash() string {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%d:%s=%d:%s;", len(k), k, len(s.data[k]), s.data[k])
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
