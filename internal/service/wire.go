// Service wire codecs: the client↔server request/response payloads and
// the audit log's on-disk record format. Everything rides the
// length-prefixed big-endian internal/wire codec, so every variable
// field inherits the wire.MaxChunk hostile-length guard, and the framing
// above (transport.WriteFrame / FrameReader) bounds whole messages at
// transport.MaxFrame. Decoders must survive arbitrary bytes — both
// codecs are in the fuzz corpus (fuzz_test.go).
package service

import (
	"fmt"

	"adaptiveba/internal/blob"
	"adaptiveba/internal/wire"
)

// Frame kinds on a service connection (client↔server), allocated above
// transport.ServiceFrameBase so they can never collide with the mesh
// handshake.
const (
	// FrameHello opens a session: client → server, empty body; the
	// server replies FrameWelcome with the assigned client ID.
	FrameHello byte = 16 + iota
	// FrameWelcome carries the assigned client ID (8 bytes, PutInt).
	FrameWelcome
	// FrameRequest carries an encoded Request.
	FrameRequest
	// FrameResponse carries an encoded Response.
	FrameResponse
)

// Request ops.
const (
	ReqPut    byte = 1
	ReqGet    byte = 2
	ReqDel    byte = 3
	ReqVerify byte = 4
)

// MaxValue bounds a single value, inline or anchored: request bodies are
// wire-chunked, so anything larger fails encoding anyway. Exposed so
// clients can reject oversized payloads before a round trip.
const MaxValue = wire.MaxChunk

// Request is one client request. Dedup identity is (Client, Seq): a
// retried request reuses its Seq, and the server replays the recorded
// response instead of re-executing.
type Request struct {
	Client int
	Seq    int
	Op     byte
	Key    []byte
	Value  []byte
}

// Response statuses.
const (
	StatusOK byte = 1
	// StatusError carries a failure in Detail; Sentinel maps it back to
	// a typed error at the client.
	StatusError byte = 2
)

// Sentinel codes carried in error responses so typed errors survive the
// wire (see Client.mapError / the public API's sentinels).
const (
	CodeNone       byte = 0
	CodeNotFound   byte = 1
	CodeDuplicate  byte = 2
	CodeTampered   byte = 3
	CodeBadRequest byte = 4
)

// Response answers one request. For ReqGet, Value is the resolved
// payload. For ReqVerify, Report is set.
type Response struct {
	Seq    int
	Status byte
	Code   byte
	Detail string
	Value  []byte
	Report *VerifyReport
}

// VerifyReport is the outcome of a full tamper-evidence walk.
type VerifyReport struct {
	// Entries is the audit chain length checked.
	Entries int
	// Blobs is the number of stored blobs checked.
	Blobs int
	// ChainOK reports the hash chain recomputed end to end.
	ChainOK bool
	// BadBlobs counts anchored entries whose blob failed its content
	// check; BadSeqs lists their audit seqs.
	BadBlobs int
	BadSeqs  []int
	// StateHash is the kv state digest at verification time.
	StateHash string
}

// OK reports a fully clean verification.
func (r *VerifyReport) OK() bool { return r.ChainOK && r.BadBlobs == 0 }

// EncodeRequest serializes a request.
func EncodeRequest(q *Request) []byte {
	w := wire.NewWriter()
	w.PutInt(q.Client)
	w.PutInt(q.Seq)
	w.PutByte(q.Op)
	w.PutBytes(q.Key)
	w.PutBytes(q.Value)
	return w.Bytes()
}

// DecodeRequest parses a request, rejecting trailing bytes and hostile
// lengths.
func DecodeRequest(b []byte) (*Request, error) {
	r := wire.NewReader(b)
	q := &Request{
		Client: r.Int(),
		Seq:    r.Int(),
		Op:     r.Byte(),
		Key:    r.Bytes(),
		Value:  r.Bytes(),
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("service: bad request: %w", err)
	}
	if q.Client < 0 || q.Seq < 0 {
		return nil, fmt.Errorf("service: bad request: negative client/seq")
	}
	switch q.Op {
	case ReqPut, ReqGet, ReqDel, ReqVerify:
	default:
		return nil, fmt.Errorf("service: bad request: unknown op %d", q.Op)
	}
	return q, nil
}

// EncodeResponse serializes a response.
func EncodeResponse(p *Response) []byte {
	w := wire.NewWriter()
	w.PutInt(p.Seq)
	w.PutByte(p.Status)
	w.PutByte(p.Code)
	w.PutString(p.Detail)
	w.PutBytes(p.Value)
	if p.Report == nil {
		w.PutBool(false)
	} else {
		w.PutBool(true)
		w.PutInt(p.Report.Entries)
		w.PutInt(p.Report.Blobs)
		w.PutBool(p.Report.ChainOK)
		w.PutInt(p.Report.BadBlobs)
		w.PutInt(len(p.Report.BadSeqs))
		for _, s := range p.Report.BadSeqs {
			w.PutInt(s)
		}
		w.PutString(p.Report.StateHash)
	}
	return w.Bytes()
}

// DecodeResponse parses a response.
func DecodeResponse(b []byte) (*Response, error) {
	r := wire.NewReader(b)
	p := &Response{
		Seq:    r.Int(),
		Status: r.Byte(),
		Code:   r.Byte(),
		Detail: r.String(),
		Value:  r.Bytes(),
	}
	if r.Bool() {
		rep := &VerifyReport{
			Entries:  r.Int(),
			Blobs:    r.Int(),
			ChainOK:  r.Bool(),
			BadBlobs: r.Int(),
		}
		n := r.Int()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("service: bad response: %w", err)
		}
		if n < 0 || n > wire.MaxChunk/8 {
			return nil, fmt.Errorf("service: bad response: implausible bad-seq count %d", n)
		}
		for i := 0; i < n; i++ {
			rep.BadSeqs = append(rep.BadSeqs, r.Int())
		}
		rep.StateHash = r.String()
		p.Report = rep
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("service: bad response: %w", err)
	}
	return p, nil
}

// encodeAuditEntry appends one on-disk audit record to w.
func encodeAuditEntry(w *wire.Writer, e *AuditEntry) {
	w.PutInt(e.Seq)
	w.PutInt(e.Slot)
	w.PutByte(e.Op)
	w.PutBytes(e.Key)
	w.PutBytes(e.Anchor[:])
	w.PutBool(e.Anchored)
	w.PutBytes(e.Prev[:])
	w.PutBytes(e.Hash[:])
}

// EncodeAuditEntry serializes one audit record (the on-disk format is a
// plain concatenation of these).
func EncodeAuditEntry(e *AuditEntry) []byte {
	w := wire.NewWriter()
	encodeAuditEntry(w, e)
	return w.Bytes()
}

// decodeAuditEntry reads one record from r.
func decodeAuditEntry(r *wire.Reader, e *AuditEntry) error {
	e.Seq = r.Int()
	e.Slot = r.Int()
	e.Op = r.Byte()
	e.Key = r.Bytes()
	anchor := r.Bytes()
	e.Anchored = r.Bool()
	prev := r.Bytes()
	hash := r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	if len(anchor) != 32 || len(prev) != 32 || len(hash) != 32 {
		return fmt.Errorf("service: bad audit record: digest lengths %d/%d/%d",
			len(anchor), len(prev), len(hash))
	}
	if e.Seq < 0 || e.Slot < 0 {
		return fmt.Errorf("service: bad audit record: negative seq/slot")
	}
	copy(e.Anchor[:], anchor)
	copy(e.Prev[:], prev)
	copy(e.Hash[:], hash)
	return nil
}

// DecodeAuditEntry parses one standalone audit record.
func DecodeAuditEntry(b []byte) (*AuditEntry, error) {
	r := wire.NewReader(b)
	var e AuditEntry
	if err := decodeAuditEntry(r, &e); err != nil {
		return nil, err
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("service: bad audit record: %w", err)
	}
	return &e, nil
}

// DecodeAuditLog parses a whole on-disk audit file (concatenated
// records). The record count is bounded by the input length, so a
// hostile file cannot amplify allocation.
func DecodeAuditLog(data []byte) ([]AuditEntry, error) {
	r := wire.NewReader(data)
	var out []AuditEntry
	for r.Err() == nil {
		if rem := r.Close(); rem == nil {
			break // fully consumed
		}
		var e AuditEntry
		if err := decodeAuditEntry(r, &e); err != nil {
			return nil, fmt.Errorf("service: audit record %d: %w", len(out), err)
		}
		out = append(out, e)
	}
	return out, nil
}

// anchorOf computes the content address an audit entry records for a
// committed value.
func anchorOf(value []byte) blob.Ref { return blob.Sum(value) }
