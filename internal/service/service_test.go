package service

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"adaptiveba/internal/blob"
	"adaptiveba/internal/transport"
)

func testCore(t *testing.T, mut func(*Config)) *Core {
	t.Helper()
	dir := t.TempDir()
	cfg := Config{
		N: 4, Seed: 7,
		BlobDir:   filepath.Join(dir, "blobs"),
		AuditPath: filepath.Join(dir, "audit.log"),
		InlineMax: 32,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// coreSlots / coreAuditLen read a live server's core through Inspect so
// the reads are serialized with the run loop (clean under -race).
func coreSlots(s *Server) int {
	var n int
	s.Inspect(func(c *Core) { n = c.Slots() })
	return n
}

func coreAuditLen(s *Server) int {
	var n int
	s.Inspect(func(c *Core) { n = c.Audit().Len() })
	return n
}

func TestCoreCommitGet(t *testing.T) {
	c := testCore(t, nil)
	small := []byte("small")
	large := bytes.Repeat([]byte("x"), 500) // > InlineMax: anchored
	n, err := c.Commit([]Op{
		{Op: OpPut, Key: []byte("a"), Value: small},
		{Op: OpPut, Key: []byte("b"), Value: large},
		{Op: OpDel, Key: []byte("missing")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("committed %d, want 3", n)
	}
	if v, err := c.Get([]byte("a")); err != nil || !bytes.Equal(v, small) {
		t.Fatalf("get a: %q %v", v, err)
	}
	if v, err := c.Get([]byte("b")); err != nil || !bytes.Equal(v, large) {
		t.Fatalf("get b (anchored): %v", err)
	}
	if _, err := c.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if c.audit.Len() != 3 {
		t.Fatalf("audit chain %d entries, want 3", c.audit.Len())
	}
	if rep, err := c.Verify(); err != nil || !rep.OK() {
		t.Fatalf("verify: %v (%+v)", err, rep)
	}
}

func TestCoreCommitWithCrashFaults(t *testing.T) {
	c := testCore(t, func(cfg *Config) { cfg.N = 5; cfg.F = 2 })
	var ops []Op
	for i := 0; i < 10; i++ {
		ops = append(ops, Op{Op: OpPut, Key: []byte{byte(i)}, Value: []byte{byte(i), byte(i)}})
	}
	n, err := c.Commit(ops)
	if err != nil {
		t.Fatal(err)
	}
	if n < 10 {
		t.Fatalf("only %d of 10 committed under crash faults", n)
	}
	for i := 0; i < 10; i++ {
		if v, err := c.Get([]byte{byte(i)}); err != nil || !bytes.Equal(v, []byte{byte(i), byte(i)}) {
			t.Fatalf("key %d lost: %v", i, err)
		}
	}
}

func TestCoreSnapshotTruncateRestore(t *testing.T) {
	c := testCore(t, func(cfg *Config) { cfg.SnapshotEvery = 4 })
	for i := 0; i < 3; i++ {
		ops := []Op{
			{Op: OpPut, Key: []byte(fmt.Sprintf("k%d", i)), Value: []byte(fmt.Sprintf("v%d", i))},
			{Op: OpPut, Key: []byte(fmt.Sprintf("j%d", i)), Value: bytes.Repeat([]byte("y"), 100)},
		}
		if _, err := c.Commit(ops); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Snapshots == 0 {
		t.Fatal("no snapshot was taken")
	}
	if c.Slots() != 6 {
		t.Fatalf("slots = %d, want 6", c.Slots())
	}
	// Replay from snapshot + retained suffix must reproduce the state.
	got, err := c.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if got != c.StateHash() {
		t.Fatalf("restore hash %s != live hash %s", got, c.StateHash())
	}
	if c.LogLen() >= 6 {
		t.Fatalf("log was never truncated: %d entries retained", c.LogLen())
	}
}

// TestEndToEndTamperEvidence is the acceptance test: a single flipped
// byte in a stored blob AND (separately) in one audit-log record must
// both fail Verify.
func TestEndToEndTamperEvidence(t *testing.T) {
	dir := t.TempDir()
	blobDir := filepath.Join(dir, "blobs")
	auditPath := filepath.Join(dir, "audit.log")
	c, err := NewCore(Config{N: 4, BlobDir: blobDir, AuditPath: auditPath, InlineMax: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	large := bytes.Repeat([]byte("payload"), 64)
	if _, err := c.Commit([]Op{
		{Op: OpPut, Key: []byte("small"), Value: []byte("tiny")},
		{Op: OpPut, Key: []byte("big"), Value: large},
	}); err != nil {
		t.Fatal(err)
	}
	if rep, err := c.Verify(); err != nil || !rep.OK() {
		t.Fatalf("clean state failed verify: %v", err)
	}

	// 1. Flip one byte in the stored blob.
	ref := blob.Sum(large)
	blobPath := filepath.Join(blobDir, ref.String())
	data, err := os.ReadFile(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	orig := data[10]
	data[10] ^= 0x01
	if err := os.WriteFile(blobPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Verify()
	if !errors.Is(err, ErrTampered) {
		t.Fatalf("flipped blob byte: want ErrTampered, got %v", err)
	}
	if rep.BadBlobs != 1 {
		t.Fatalf("report blames %d blobs, want 1", rep.BadBlobs)
	}
	// Also via the read path.
	if _, err := c.Get([]byte("big")); !errors.Is(err, ErrTampered) {
		t.Fatalf("get of tampered blob: want ErrTampered, got %v", err)
	}
	data[10] = orig
	if err := os.WriteFile(blobPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(); err != nil {
		t.Fatalf("restored blob still failing: %v", err)
	}

	// 2. Flip one byte in an audit-log record.
	audit, err := os.ReadFile(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	mutated := append([]byte(nil), audit...)
	mutated[len(mutated)/2] ^= 0x01
	if err := os.WriteFile(auditPath, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(); !errors.Is(err, ErrTampered) {
		t.Fatalf("flipped audit byte: want ErrTampered, got %v", err)
	}
	if err := os.WriteFile(auditPath, audit, 0o644); err != nil {
		t.Fatal(err)
	}
	if rep, err := c.Verify(); err != nil || !rep.OK() {
		t.Fatalf("restored audit still failing: %v", err)
	}
}

// TestAuditEveryByteTamperEvident flips EVERY byte of the audit file in
// turn; each flip must be detected (by chain walk or record parse).
func TestAuditEveryByteTamperEvident(t *testing.T) {
	c := testCore(t, nil)
	if _, err := c.Commit([]Op{
		{Op: OpPut, Key: []byte("k1"), Value: []byte("v1")},
		{Op: OpPut, Key: []byte("k2"), Value: bytes.Repeat([]byte("z"), 64)},
		{Op: OpDel, Key: []byte("k1")},
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.cfg.AuditPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0x01
		entries, err := DecodeAuditLog(mutated)
		if err != nil {
			continue // detected at parse
		}
		if err := VerifyChain(entries); err == nil {
			t.Fatalf("flipped byte %d of audit log went undetected", i)
		}
	}
}

func TestOpenAuditRejectsBrokenChain(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.log")
	a, err := OpenAudit(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := a.Append(AuditEntry{Slot: i, Op: OpPut, Key: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	// Reopen clean.
	a2, err := OpenAudit(path)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Len() != 3 {
		t.Fatalf("reloaded %d entries, want 3", a2.Len())
	}
	a2.Close()
	// Corrupt and reopen: must refuse.
	data, _ := os.ReadFile(path)
	data[len(data)/3] ^= 0x01
	os.WriteFile(path, data, 0o644)
	if _, err := OpenAudit(path); err == nil {
		t.Fatal("OpenAudit accepted a broken chain")
	}
}

func startServer(t *testing.T, mut func(*ServerConfig)) *Server {
	t.Helper()
	dir := t.TempDir()
	cfg := ServerConfig{
		Core: Config{
			N: 4, Seed: 11,
			BlobDir:   filepath.Join(dir, "blobs"),
			AuditPath: filepath.Join(dir, "audit.log"),
			InlineMax: 64,
		},
		Addr: "127.0.0.1:0",
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestServerClientRoundTrip(t *testing.T) {
	s := startServer(t, nil)
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	large := bytes.Repeat([]byte("L"), 4096)
	if err := c.Put([]byte("small"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put([]byte("large"), large); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get([]byte("small")); err != nil || string(v) != "v" {
		t.Fatalf("get small: %q %v", v, err)
	}
	if v, err := c.Get([]byte("large")); err != nil || !bytes.Equal(v, large) {
		t.Fatalf("get large: %v", err)
	}
	if err := c.Del([]byte("small")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get([]byte("small")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: want ErrNotFound, got %v", err)
	}
	rep, err := c.Verify()
	if err != nil || !rep.OK() {
		t.Fatalf("verify: %v (%+v)", err, rep)
	}
	if rep.Entries != 3 {
		t.Fatalf("audit entries = %d, want 3", rep.Entries)
	}
}

func TestServerTwoClients(t *testing.T) {
	s := startServer(t, nil)
	c1, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c1.ID() == c2.ID() {
		t.Fatalf("both clients got ID %d", c1.ID())
	}
	done := make(chan error, 2)
	for i, c := range []*Client{c1, c2} {
		go func(i int, c *Client) {
			for j := 0; j < 5; j++ {
				key := []byte(fmt.Sprintf("c%d-k%d", i, j))
				if err := c.Put(key, bytes.Repeat([]byte{byte(i + 1)}, 128)); err != nil {
					done <- err
					return
				}
				if _, err := c.Get(key); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i, c)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if rep, err := c1.Verify(); err != nil || !rep.OK() {
		t.Fatalf("verify after concurrent clients: %v", err)
	}
	if n := coreSlots(s); n != 10 {
		t.Fatalf("slots = %d, want 10", n)
	}
}

// TestDedupReplay re-sends an executed request verbatim: the response
// must replay from the dedup window and the op must not re-execute.
func TestDedupReplay(t *testing.T) {
	s := startServer(t, nil)
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	slotsAfter := coreSlots(s)
	auditAfter := coreAuditLen(s)

	// Re-send the exact same (client, seq) request over the raw frame
	// path — what a retrying client does after a lost response.
	req := EncodeRequest(&Request{Client: c.ID(), Seq: 1, Op: ReqPut, Key: []byte("k"), Value: []byte("v")})
	if err := transport.WriteFrame(c.conn, FrameRequest, req); err != nil {
		t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	kind, body, err := c.fr.Read(c.conn)
	if err != nil || kind != FrameResponse {
		t.Fatalf("replay read: kind=%d err=%v", kind, err)
	}
	resp, err := DecodeResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 1 || resp.Status != StatusOK {
		t.Fatalf("replayed response: %+v", resp)
	}
	if n := coreSlots(s); n != slotsAfter {
		t.Fatalf("duplicate re-executed: slots %d → %d", slotsAfter, n)
	}
	if n := coreAuditLen(s); n != auditAfter {
		t.Fatalf("duplicate re-appended audit: %d → %d", auditAfter, n)
	}
}

// TestDedupWindowEviction: a seq older than the window is refused with
// ErrDuplicate rather than re-executed.
func TestDedupWindowEviction(t *testing.T) {
	s := startServer(t, func(cfg *ServerConfig) { cfg.DedupWindow = 2 })
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if err := c.Put([]byte{byte(i)}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Seq 1 is far behind the 2-deep window now.
	req := EncodeRequest(&Request{Client: c.ID(), Seq: 1, Op: ReqPut, Key: []byte{0}, Value: []byte{0}})
	if err := transport.WriteFrame(c.conn, FrameRequest, req); err != nil {
		t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	kind, body, err := c.fr.Read(c.conn)
	if err != nil || kind != FrameResponse {
		t.Fatalf("read: %v", err)
	}
	resp, err := DecodeResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(ResponseErr(resp), ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %+v", resp)
	}
}

// TestServerUnderChaos reuses the transport chaos schedule against the
// service path: dropped requests are absorbed by client retries + the
// dedup window, and the final state still verifies.
func TestServerUnderChaos(t *testing.T) {
	s := startServer(t, func(cfg *ServerConfig) {
		cfg.Chaos = transport.ChaosConfig{Seed: 42, DropRate: 0.3, DelayRate: 0.2, MaxDelay: 5 * time.Millisecond}
	})
	c, err := Dial(s.Addr(), ClientConfig{Timeout: 300 * time.Millisecond, Retries: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 8; i++ {
		key := []byte(fmt.Sprintf("chaos-%d", i))
		if err := c.Put(key, bytes.Repeat([]byte{byte(i)}, 200)); err != nil {
			t.Fatalf("put %d under chaos: %v", i, err)
		}
		v, err := c.Get(key)
		if err != nil {
			t.Fatalf("get %d under chaos: %v", i, err)
		}
		if !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 200)) {
			t.Fatalf("value %d corrupted under chaos", i)
		}
	}
	// Every put must have committed exactly once despite retries.
	if n := coreSlots(s); n != 8 {
		t.Fatalf("slots = %d, want 8 (dedup failed under chaos)", n)
	}
	if rep, err := c.Verify(); err != nil || !rep.OK() {
		t.Fatalf("verify under chaos: %v", err)
	}
}

// TestDedupWindowRejectsAncientSeq: recording a response for a seq
// already behind the window must not re-enter it and evict a fresher
// response a pending retry may still need.
func TestDedupWindowRejectsAncientSeq(t *testing.T) {
	w := newClientWindow()
	w.put(1, []byte("r1"), 2)
	w.put(2, []byte("r2"), 2)
	w.put(3, []byte("r3"), 2) // evicts seq 1
	w.put(1, []byte("stale"), 2)
	if _, ok := w.get(1); ok {
		t.Fatal("ancient seq re-entered the window")
	}
	for seq := 2; seq <= 3; seq++ {
		if _, ok := w.get(seq); !ok {
			t.Fatalf("fresh seq %d evicted by an ancient retransmit", seq)
		}
	}
}

// TestCloseWithIdleClient: Close must close live client connections so
// reader goroutines parked in fr.Read return, instead of deadlocking in
// wg.Wait while a client sits idle.
func TestCloseWithIdleClient(t *testing.T) {
	s := startServer(t, nil)
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Close deadlocked with an idle client connected")
	}
}

// TestSessionStateFreedOnDisconnect: a departed client's dedup window
// and inflight marks must be dropped, not retained for the server's
// unbounded lifetime.
func TestSessionStateFreedOnDisconnect(t *testing.T) {
	s := startServer(t, nil)
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	var before int
	s.Inspect(func(*Core) { before = len(s.windows) })
	if before != 1 {
		t.Fatalf("windows before disconnect = %d, want 1", before)
	}
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		var retained int
		s.Inspect(func(*Core) { retained = len(s.windows) + len(s.inflight) })
		if retained == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("session state retained after disconnect: %d entries", retained)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerStatsAccumulate(t *testing.T) {
	s := startServer(t, func(cfg *ServerConfig) { cfg.Core.MeasureBytes = true })
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Rounds == 0 || st.Committed == 0 || st.Words == 0 || st.Bytes == 0 {
		t.Fatalf("stats not accumulating: %+v", st)
	}
}
