// Package service promotes the SMR/kv stack from test harness to a
// long-running replicated KV service. The Core owns the replicated
// state: client writes batch into BKR ACS rounds (engine.RunACSLog — n
// proposers, ≥ n−t committed subset per round), committed commands apply
// to the kv state machine, and reads serve from that replicated state.
//
// Large values take the triangle architecture. A value above InlineMax
// never enters agreement: it is stored in the content-addressed blob
// store and only its 32-byte anchor rides the committed command, so the
// per-request agreement cost is a constant number of digest words
// regardless of payload size — the paper's word-complexity story held
// intact under a large-payload workload. Every committed write also
// appends one record to the hash-chained audit log; Verify walks the
// chain end to end and re-hashes every anchored blob, so a single
// flipped byte anywhere in the blob store or the audit file is detected.
//
// Snapshots bound memory for unbounded uptime: every SnapshotEvery
// committed entries the Core encodes the kv state (hash-embedded,
// self-verifying) and truncates the in-memory log suffix; correctness is
// pinned by the snapshot+suffix replay tests.
package service

import (
	"encoding/base64"
	"errors"
	"fmt"
	"strings"

	"adaptiveba/internal/blob"
	"adaptiveba/internal/engine"
	"adaptiveba/internal/kv"
	"adaptiveba/internal/smr"
	"adaptiveba/internal/types"
)

// Typed sentinels; the public API chains these under its error tree.
var (
	// ErrTampered reports tamper evidence: a blob or audit record whose
	// bytes no longer match their digest.
	ErrTampered = errors.New("service: tamper detected")
	// ErrDuplicate reports a (client, seq) that fell behind the dedup
	// window — too old to replay, refused rather than re-executed.
	ErrDuplicate = errors.New("service: duplicate request outside dedup window")
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("service: key not found")
	// ErrNotConverged reports an agreement round that failed to commit
	// (outside the supported fault model).
	ErrNotConverged = errors.New("service: agreement round did not converge")
	// ErrConfig reports an invalid service configuration.
	ErrConfig = errors.New("service: invalid config")
)

// Config parameterizes a Core.
type Config struct {
	// N is the replica count (default 4). T and F follow the repo's
	// conventions: T defaults to floor((n-1)/2), F crash faults.
	N int
	T int
	F int
	// Batch bounds commands per proposer per ACS round (default 8).
	Batch int
	// Inflight is the engine's admission window (default 1 — service
	// rounds are already batched; pipelining is for multi-round calls).
	Inflight int
	// Seed drives the per-round engine seeds (round r runs with
	// Seed+r), keeping long runs deterministic but not identical across
	// rounds.
	Seed int64
	// InlineMax is the largest value committed inline through agreement
	// (default 256 bytes); anything larger is anchored through the blob
	// store.
	InlineMax int
	// SnapshotEvery triggers a snapshot + log truncation each time that
	// many entries accumulate since the last snapshot (default 1024;
	// negative disables).
	SnapshotEvery int
	// BlobDir roots the content-addressed store (required).
	BlobDir string
	// AuditPath locates the audit log file (required).
	AuditPath string
	// MeasureBytes meters encoded payload bytes through the agreement
	// rounds (Stats.Bytes); words alone weigh every value as 1.
	MeasureBytes bool
	// Scheduler picks the engine's admission policy ("" = static).
	Scheduler engine.Scheduler
}

// Stats accumulates the service's agreement-side cost counters.
type Stats struct {
	// Rounds is the number of ACS rounds committed.
	Rounds int
	// Committed counts committed commands.
	Committed int
	// Words / Messages / Bytes are honest-send totals across all rounds
	// (Bytes only when MeasureBytes).
	Words    int64
	Messages int64
	Bytes    int64
	// Snapshots counts snapshot+truncate events; Truncated counts log
	// entries dropped by them.
	Snapshots int
	Truncated int
}

// Core is the replicated service state. It is not goroutine-safe: the
// server serializes all access through one goroutine.
type Core struct {
	cfg   Config
	store *kv.Store
	blobs *blob.Store
	audit *Audit

	log      []smr.Entry // suffix since the last snapshot
	snapshot []byte      // last kv.EncodeSnapshot (nil before the first)
	slots    int         // global committed-entry count (log renumbering base)
	honest   []int       // proposer IDs that are not in the crash set
	stats    Stats
}

// NewCore opens the stores and builds a core.
func NewCore(cfg Config) (*Core, error) {
	if cfg.N == 0 {
		cfg.N = 4
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrConfig, cfg.N)
	}
	if cfg.T == 0 {
		cfg.T = (cfg.N - 1) / 2
	}
	if cfg.F < 0 || cfg.F > cfg.T {
		return nil, fmt.Errorf("%w: f=%d with t=%d", ErrConfig, cfg.F, cfg.T)
	}
	if cfg.Batch == 0 {
		cfg.Batch = 8
	}
	if cfg.Batch < 1 {
		return nil, fmt.Errorf("%w: batch=%d", ErrConfig, cfg.Batch)
	}
	if cfg.Inflight == 0 {
		cfg.Inflight = 1
	}
	if cfg.InlineMax == 0 {
		cfg.InlineMax = 256
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 1024
	}
	if cfg.BlobDir == "" || cfg.AuditPath == "" {
		return nil, fmt.Errorf("%w: BlobDir and AuditPath are required", ErrConfig)
	}
	blobs, err := blob.Open(cfg.BlobDir)
	if err != nil {
		return nil, err
	}
	audit, err := OpenAudit(cfg.AuditPath)
	if err != nil {
		return nil, err
	}
	c := &Core{cfg: cfg, store: kv.NewStore(), blobs: blobs, audit: audit}
	// The engine's crash set is IDs 1..F; only honest proposers carry
	// client commands, so every accepted command commits (a crashed
	// proposer's batch is excluded from the round's subset).
	for id := 0; id < cfg.N; id++ {
		if id >= 1 && id <= cfg.F {
			continue
		}
		c.honest = append(c.honest, id)
	}
	return c, nil
}

// Close releases the audit file.
func (c *Core) Close() error { return c.audit.Close() }

// Stats returns the accumulated cost counters.
func (c *Core) Stats() Stats { return c.stats }

// StateHash returns the kv state digest.
func (c *Core) StateHash() string { return c.store.Hash() }

// LogLen returns the retained (post-snapshot) log length; Slots the
// global committed-entry count.
func (c *Core) LogLen() int { return len(c.log) }
func (c *Core) Slots() int  { return c.slots }

// Snapshot returns the last snapshot encoding (nil before the first).
func (c *Core) Snapshot() []byte { return c.snapshot }

// Audit exposes the chained audit log (read-only for callers).
func (c *Core) Audit() *Audit { return c.audit }

// Command encoding: kv commands are whitespace-split, so keys and values
// travel base64url (no padding, no spaces). Values carry a one-byte
// tag — i: inline payload, a: hex anchor into the blob store.
func encKey(key []byte) string { return base64.RawURLEncoding.EncodeToString(key) }

func encInline(value []byte) string {
	return "i:" + base64.RawURLEncoding.EncodeToString(value)
}

func encAnchor(ref blob.Ref) string { return "a:" + ref.String() }

// decodeStored resolves a stored kv value back to payload bytes,
// fetching (and content-verifying) anchored values from the blob store.
func (c *Core) decodeStored(stored string) ([]byte, bool, error) {
	switch {
	case strings.HasPrefix(stored, "i:"):
		v, err := base64.RawURLEncoding.DecodeString(stored[2:])
		if err != nil {
			return nil, false, fmt.Errorf("%w: inline value corrupt: %v", ErrTampered, err)
		}
		return v, false, nil
	case strings.HasPrefix(stored, "a:"):
		ref, err := blob.ParseRef(stored[2:])
		if err != nil {
			return nil, true, fmt.Errorf("%w: bad anchor: %v", ErrTampered, err)
		}
		v, err := c.blobs.Get(ref)
		if errors.Is(err, blob.ErrTampered) || errors.Is(err, blob.ErrNotFound) {
			return nil, true, fmt.Errorf("%w: %v", ErrTampered, err)
		}
		return v, true, err
	default:
		return nil, false, fmt.Errorf("%w: unrecognized stored value", ErrTampered)
	}
}

// Op is one client write to commit.
type Op struct {
	Op    byte // OpPut or OpDel
	Key   []byte
	Value []byte // OpPut only
}

// commandFor encodes one op as a kv command, anchoring large values.
func (c *Core) commandFor(op Op) (types.Value, error) {
	switch op.Op {
	case OpPut:
		if len(op.Value) > c.cfg.InlineMax {
			ref, err := c.blobs.Put(op.Value)
			if err != nil {
				return nil, err
			}
			return types.Value("SET " + encKey(op.Key) + " " + encAnchor(ref)), nil
		}
		return types.Value("SET " + encKey(op.Key) + " " + encInline(op.Value)), nil
	case OpDel:
		return types.Value("DEL " + encKey(op.Key)), nil
	default:
		return nil, fmt.Errorf("%w: op %d", ErrConfig, op.Op)
	}
}

// Commit drives one batch of writes through agreement: the ops spread
// round-robin over the honest proposers' queues, as many ACS rounds as
// the batch bound requires run in one engine call, committed entries
// renumber into the global log, apply to the kv store, and append audit
// records. Returns the committed entry count.
func (c *Core) Commit(ops []Op) (int, error) {
	if len(ops) == 0 {
		return 0, nil
	}
	queues := make([][]types.Value, c.cfg.N)
	for i, op := range ops {
		cmd, err := c.commandFor(op)
		if err != nil {
			return 0, err
		}
		p := c.honest[i%len(c.honest)]
		queues[p] = append(queues[p], cmd)
	}
	perRound := len(c.honest) * c.cfg.Batch
	rounds := (len(ops) + perRound - 1) / perRound

	rep, err := engine.RunACSLog(engine.Config{
		N: c.cfg.N, T: c.cfg.T, F: c.cfg.F,
		Inflight:     c.cfg.Inflight,
		Seed:         c.cfg.Seed + int64(c.stats.Rounds),
		Scheduler:    c.cfg.Scheduler,
		MeasureBytes: c.cfg.MeasureBytes,
	}, queues, rounds, c.cfg.Batch)
	if err != nil {
		return 0, err
	}
	if !rep.Converged {
		return 0, ErrNotConverged
	}
	if rep.Committed < len(ops) {
		return 0, fmt.Errorf("%w: %d of %d commands committed", ErrNotConverged, rep.Committed, len(ops))
	}

	for _, e := range rep.Entries {
		slot := c.slots
		entry := smr.Entry{Slot: slot, Proposer: e.Proposer, Command: e.Command}
		if err := c.applyEntry(entry); err != nil {
			return 0, err
		}
		c.log = append(c.log, entry)
		c.slots++
	}
	c.stats.Rounds += len(rep.Rounds)
	c.stats.Committed += rep.Committed
	c.stats.Words += rep.Engine.Metrics.Honest.Words
	c.stats.Messages += rep.Engine.Metrics.Honest.Messages
	c.stats.Bytes += rep.Engine.Metrics.Honest.Bytes
	if err := c.maybeSnapshot(); err != nil {
		return 0, err
	}
	return rep.Committed, nil
}

// applyEntry applies one committed command to the kv store and appends
// its audit record. Audit records derive purely from committed entries,
// so replicas reconstruct identical chains.
func (c *Core) applyEntry(e smr.Entry) error {
	_ = c.store.Apply(e.Command) // malformed commands skip deterministically
	fields := strings.Fields(string(e.Command))
	if len(fields) < 2 {
		return nil
	}
	key, err := base64.RawURLEncoding.DecodeString(fields[1])
	if err != nil {
		return nil // not a service-encoded command; nothing to audit
	}
	rec := AuditEntry{Slot: e.Slot, Key: key}
	switch fields[0] {
	case "SET":
		if len(fields) != 3 {
			return nil
		}
		rec.Op = OpPut
		switch {
		case strings.HasPrefix(fields[2], "i:"):
			v, err := base64.RawURLEncoding.DecodeString(fields[2][2:])
			if err != nil {
				return nil
			}
			rec.Anchor = anchorOf(v)
		case strings.HasPrefix(fields[2], "a:"):
			ref, err := blob.ParseRef(fields[2][2:])
			if err != nil {
				return nil
			}
			rec.Anchor = ref
			rec.Anchored = true
		default:
			return nil
		}
	case "DEL":
		rec.Op = OpDel
	default:
		return nil
	}
	_, err = c.audit.Append(rec)
	return err
}

// maybeSnapshot snapshots and truncates once enough entries accumulate.
func (c *Core) maybeSnapshot() error {
	if c.cfg.SnapshotEvery < 0 || len(c.log) < c.cfg.SnapshotEvery {
		return nil
	}
	return c.SnapshotNow()
}

// SnapshotNow unconditionally snapshots the kv state and truncates the
// retained log suffix. The snapshot embeds its own state hash, so a
// later restore is self-verifying (kv.ErrSnapshotMismatch).
func (c *Core) SnapshotNow() error {
	c.snapshot = c.store.EncodeSnapshot()
	if _, err := kv.DecodeSnapshot(c.snapshot); err != nil {
		return err // never truncate on an unrestorable snapshot
	}
	c.stats.Snapshots++
	c.stats.Truncated += len(c.log)
	c.log = nil
	return nil
}

// Get resolves a key from replicated state, fetching anchored values
// from the blob store with content verification.
func (c *Core) Get(key []byte) ([]byte, error) {
	stored, ok := c.store.Get(encKey(key))
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	v, _, err := c.decodeStored(stored)
	return v, err
}

// Verify is the end-to-end tamper-evidence walk: re-read the audit file
// from disk, recompute the whole hash chain, and re-hash every anchored
// blob. Any flipped byte in either store surfaces here.
func (c *Core) Verify() (*VerifyReport, error) {
	rep := &VerifyReport{StateHash: c.store.Hash()}
	entries, err := c.audit.ReloadFromDisk()
	if err != nil {
		return rep, fmt.Errorf("%w: %v", ErrTampered, err)
	}
	rep.Entries = len(entries)
	refs, err := c.blobs.Refs()
	if err != nil {
		return rep, err
	}
	rep.Blobs = len(refs)
	badSeqs, err := VerifyAgainst(entries, c.blobs)
	if err != nil {
		return rep, fmt.Errorf("%w: %v", ErrTampered, err)
	}
	rep.ChainOK = true
	rep.BadSeqs = badSeqs
	rep.BadBlobs = len(badSeqs)
	if rep.BadBlobs > 0 {
		return rep, fmt.Errorf("%w: %d anchored blobs failed verification", ErrTampered, rep.BadBlobs)
	}
	// Chain and anchors are clean; also sweep unreferenced blobs.
	if bad, err := c.blobs.VerifyAll(); err != nil {
		return rep, err
	} else if len(bad) > 0 {
		return rep, fmt.Errorf("%w: %d stored blobs failed verification", ErrTampered, len(bad))
	}
	return rep, nil
}

// Restore rebuilds a store from the snapshot plus the retained log
// suffix — the recovery path a replica would take after truncation. It
// returns the rebuilt store's hash (which must equal StateHash()).
func (c *Core) Restore() (string, error) {
	var s *kv.Store
	if c.snapshot == nil {
		s = kv.NewStore()
	} else {
		var err error
		s, err = kv.DecodeSnapshot(c.snapshot)
		if err != nil {
			return "", err
		}
	}
	for _, e := range c.log {
		_ = s.Apply(e.Command)
	}
	return s.Hash(), nil
}
