package service

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adaptiveba/internal/transport"
	"adaptiveba/internal/types"
)

// ServerConfig parameterizes a Server.
type ServerConfig struct {
	// Core configures the replicated state (see Config).
	Core Config
	// Addr is the TCP listen address (use "127.0.0.1:0" for tests).
	Addr string
	// DedupWindow is how many responses per client are retained for
	// replay (default 64; a retried (client, seq) inside the window gets
	// its original response back, one behind the window gets
	// ErrDuplicate).
	DedupWindow int
	// MaxBatch bounds how many writes one flush commits together
	// (default 4× the core's per-round capacity).
	MaxBatch int
	// Chaos, when enabled, injects the transport chaos schedule into the
	// inbound request path: dropped requests get no response (the client
	// retries into the dedup window), delayed responses are deferred.
	Chaos transport.ChaosConfig
	// Logf, if set, receives server diagnostics.
	Logf func(format string, args ...any)
}

// serverReq is one decoded request paired with its connection's outbox.
// A bye tombstone (bye != 0, req == nil) tells the run loop the session
// ended so its dedup state can be dropped.
type serverReq struct {
	req  *Request
	conn *serverConn
	bye  int
}

// serverConn is the per-connection send side.
type serverConn struct {
	out  chan []byte // encoded response frames
	quit chan struct{}
}

// send enqueues one encoded response, dropping it if the connection is
// gone or its outbox is full (drop-not-block, like the mesh outboxes —
// the client's retry path absorbs the loss).
func (c *serverConn) send(body []byte) {
	select {
	case c.out <- body:
	case <-c.quit:
	default:
	}
}

// clientWindow retains the last DedupWindow responses of one client.
type clientWindow struct {
	resp    map[int][]byte
	order   []int // insertion order, oldest first
	evicted int   // highest seq evicted so far (-1 when none)
}

func newClientWindow() *clientWindow {
	return &clientWindow{resp: make(map[int][]byte), evicted: -1}
}

func (w *clientWindow) get(seq int) ([]byte, bool) {
	b, ok := w.resp[seq]
	return b, ok
}

func (w *clientWindow) tooOld(seq int) bool { return seq <= w.evicted }

func (w *clientWindow) put(seq int, body []byte, limit int) {
	if seq <= w.evicted {
		// A retransmit of a seq already behind the window must not
		// re-enter it: that would evict a fresher response a pending
		// retry may still need.
		return
	}
	if _, ok := w.resp[seq]; ok {
		return
	}
	w.resp[seq] = body
	w.order = append(w.order, seq)
	for len(w.order) > limit {
		old := w.order[0]
		w.order = w.order[1:]
		delete(w.resp, old)
		if old > w.evicted {
			w.evicted = old
		}
	}
}

// Server runs the replicated KV service on one TCP listener: client
// sessions with request dedup, writes batched across clients into ACS
// commits, reads from replicated state, snapshots for unbounded uptime.
// All core access is serialized through the run loop.
type Server struct {
	cfg  ServerConfig
	core *Core
	ln   net.Listener

	reqCh chan serverReq
	// inspectCh carries read-only closures the run loop executes against
	// the core, serializing external reads with all mutation.
	inspectCh chan func(*Core)
	done      chan struct{}
	// runDone closes when the run loop exits; after that, direct core
	// reads are race-free.
	runDone chan struct{}
	wg      sync.WaitGroup
	// connMu guards conns and closed: every live client connection is
	// tracked so Close can unblock their reader goroutines.
	connMu     sync.Mutex
	conns      map[net.Conn]struct{}
	closed     bool
	closeOnce  sync.Once
	closeErr   error
	nextClient atomic.Int64
	windows    map[int]*clientWindow
	// inflight marks buffered-but-uncommitted (client, seq) writes, so a
	// fast retransmit (chaos delay, eager client) cannot double-queue an
	// op before its first copy flushes and its response lands in the
	// dedup window.
	inflight  map[int]map[int]bool
	chaos     *transport.ChaosVerdicts
	chaosTick types.Tick

	pending     []Op
	pendingReqs []serverReq
}

// NewServer builds the core, binds the listener, and starts serving.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.DedupWindow == 0 {
		cfg.DedupWindow = 64
	}
	if cfg.DedupWindow < 1 {
		return nil, fmt.Errorf("%w: dedup window %d", ErrConfig, cfg.DedupWindow)
	}
	core, err := NewCore(cfg.Core)
	if err != nil {
		return nil, err
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 4 * len(core.honest) * core.cfg.Batch
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		core.Close()
		return nil, fmt.Errorf("service: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:       cfg,
		core:      core,
		ln:        ln,
		reqCh:     make(chan serverReq, 256),
		inspectCh: make(chan func(*Core)),
		done:      make(chan struct{}),
		runDone:   make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
		windows:   make(map[int]*clientWindow),
		inflight:  make(map[int]map[int]bool),
	}
	if cfg.Chaos.Enabled() {
		// The verdict population is the service's replica count; client
		// IDs fold onto it so every knob (partition parity, flap victims)
		// exercises the same schedule as the mesh.
		s.chaos = transport.NewChaosVerdicts(cfg.Chaos, 0, core.cfg.N, time.Millisecond)
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.runLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Core exposes the replicated core for in-process inspection. The run
// loop owns the core while the server is running, so direct access is
// only race-free after Close returns; use Inspect or Stats on a live
// server.
func (s *Server) Core() *Core { return s.core }

// Inspect runs fn against the core with all mutation excluded: on a
// live server it executes on the run loop, after shutdown it runs
// directly (the run loop has exited, so the access is ordered). fn must
// only read.
func (s *Server) Inspect(fn func(*Core)) {
	ran := make(chan struct{})
	select {
	case s.inspectCh <- func(c *Core) { fn(c); close(ran) }:
		select {
		case <-ran:
		case <-s.runDone:
			// The run loop exited without executing fn (runDone closes
			// only after the loop returns, so it cannot be mid-fn).
			select {
			case <-ran:
			default:
				fn(s.core)
			}
		}
	case <-s.runDone:
		fn(s.core)
	}
}

// Stats returns the core's cost counters, serialized with the run loop.
func (s *Server) Stats() Stats {
	var st Stats
	s.Inspect(func(c *Core) { st = c.Stats() })
	return st
}

// track registers a live client connection so Close can unblock its
// reader; false means the server is already shutting down.
func (s *Server) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

// Close stops the listener, closes every live client connection (so
// reader goroutines blocked on their sockets return), waits for all
// goroutines, and closes the core. Safe to call more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.done)
		s.ln.Close()
		s.connMu.Lock()
		s.closed = true
		for conn := range s.conns {
			conn.Close()
		}
		s.connMu.Unlock()
		s.wg.Wait()
		s.closeErr = s.core.Close()
	})
	return s.closeErr
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf("service: "+format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				s.logf("accept: %v", err)
				return
			}
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn handles one client connection: hello handshake, then a
// read loop feeding the run loop and a write goroutine draining the
// connection's outbox.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	if !s.track(conn) {
		return // lost the race with Close
	}
	defer s.untrack(conn)

	var fr transport.FrameReader
	kind, _, err := fr.Read(conn)
	if err != nil || kind != FrameHello {
		return
	}
	id := int(s.nextClient.Add(1))
	w := newWelcome(id)
	if err := transport.WriteFrame(conn, FrameWelcome, w); err != nil {
		return
	}

	sc := &serverConn{out: make(chan []byte, 64), quit: make(chan struct{})}
	// On exit: close quit first (LIFO), then tell the run loop the
	// session ended so its dedup window and inflight marks are freed —
	// with quit already closed, any request of this session still in
	// flight (chaos-delayed requeues included) is dropped rather than
	// resurrecting the state.
	defer func() {
		select {
		case s.reqCh <- serverReq{bye: id}:
		case <-s.done:
		}
	}()
	defer close(sc.quit)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			select {
			case body := <-sc.out:
				if err := transport.WriteFrame(conn, FrameResponse, body); err != nil {
					return
				}
			case <-sc.quit:
				return
			case <-s.done:
				return
			}
		}
	}()

	for {
		kind, body, err := fr.Read(conn)
		if err != nil {
			return
		}
		if kind != FrameRequest {
			continue
		}
		req, err := DecodeRequest(body)
		if err != nil {
			s.logf("client %d: %v", id, err)
			continue
		}
		if req.Client != id {
			continue // requests must carry the session's assigned ID
		}
		select {
		case s.reqCh <- serverReq{req: req, conn: sc}:
		case <-s.done:
			return
		}
	}
}

// runLoop serializes all core access: it drains whatever requests are
// queued, buffers writes, and flushes them as one ACS commit.
func (s *Server) runLoop() {
	defer s.wg.Done()
	defer close(s.runDone)
	for {
		select {
		case r := <-s.reqCh:
			s.handle(r)
		case fn := <-s.inspectCh:
			fn(s.core)
		case <-s.done:
			return
		}
	drain:
		for len(s.pending) < s.cfg.MaxBatch {
			select {
			case r := <-s.reqCh:
				s.handle(r)
			default:
				break drain
			}
		}
		s.flush()
	}
}

// handle routes one request: chaos verdict, dedup, then buffer (writes)
// or serve (reads, verification).
func (s *Server) handle(r serverReq) {
	if r.bye != 0 {
		// Session ended: free its dedup window and inflight marks. A
		// reconnect gets a fresh ID, so nothing can still need them.
		delete(s.windows, r.bye)
		delete(s.inflight, r.bye)
		return
	}
	select {
	case <-r.conn.quit:
		return // session already gone; don't resurrect its dedup state
	default:
	}
	if s.chaos != nil {
		s.chaosTick++
		s.chaos.Tick(s.chaosTick)
		drop, delay := s.chaos.Verdict(types.ProcessID(r.req.Client % s.core.cfg.N))
		if drop {
			return // no response; the client's retry re-enters the dedup window
		}
		if delay > 0 {
			// Defer the whole request, preserving dedup semantics when the
			// retry arrives first.
			req := r
			time.AfterFunc(delay, func() {
				select {
				case s.reqCh <- req:
				case <-s.done:
				}
			})
			return
		}
	}

	w := s.windows[r.req.Client]
	if w == nil {
		w = newClientWindow()
		s.windows[r.req.Client] = w
	}
	if body, ok := w.get(r.req.Seq); ok {
		r.conn.send(body) // replayed response, not re-executed
		return
	}
	if w.tooOld(r.req.Seq) {
		s.reply(r, &Response{
			Seq: r.req.Seq, Status: StatusError, Code: CodeDuplicate,
			Detail: ErrDuplicate.Error(),
		})
		return
	}

	switch r.req.Op {
	case ReqPut:
		if len(r.req.Value) > MaxValue {
			s.reply(r, errResponse(r.req.Seq, CodeBadRequest, "value exceeds MaxValue"))
			return
		}
		if !s.markInflight(r.req.Client, r.req.Seq) {
			return // already queued; its flush response will cover the retry
		}
		s.pending = append(s.pending, Op{Op: OpPut, Key: r.req.Key, Value: r.req.Value})
		s.pendingReqs = append(s.pendingReqs, r)
	case ReqDel:
		if !s.markInflight(r.req.Client, r.req.Seq) {
			return
		}
		s.pending = append(s.pending, Op{Op: OpDel, Key: r.req.Key})
		s.pendingReqs = append(s.pendingReqs, r)
	case ReqGet:
		s.flush() // reads observe every write queued before them
		v, err := s.core.Get(r.req.Key)
		if err != nil {
			s.reply(r, errResponseFor(r.req.Seq, err))
			return
		}
		s.reply(r, &Response{Seq: r.req.Seq, Status: StatusOK, Value: v})
	case ReqVerify:
		s.flush()
		rep, err := s.core.Verify()
		resp := &Response{Seq: r.req.Seq, Status: StatusOK, Report: rep}
		if err != nil {
			resp.Status = StatusError
			resp.Code = CodeTampered
			resp.Detail = err.Error()
		}
		s.reply(r, resp)
	}
}

// flush commits the buffered writes as one batch and answers them.
func (s *Server) flush() {
	if len(s.pending) == 0 {
		return
	}
	ops, reqs := s.pending, s.pendingReqs
	s.pending, s.pendingReqs = nil, nil
	_, err := s.core.Commit(ops)
	for _, r := range reqs {
		s.clearInflight(r.req.Client, r.req.Seq)
		if err != nil {
			s.reply(r, errResponseFor(r.req.Seq, err))
			continue
		}
		s.reply(r, &Response{Seq: r.req.Seq, Status: StatusOK})
	}
}

// markInflight records a buffered write; false means the seq is already
// queued.
func (s *Server) markInflight(client, seq int) bool {
	m := s.inflight[client]
	if m == nil {
		m = make(map[int]bool)
		s.inflight[client] = m
	}
	if m[seq] {
		return false
	}
	m[seq] = true
	return true
}

func (s *Server) clearInflight(client, seq int) {
	delete(s.inflight[client], seq)
}

// reply encodes, records for dedup replay, and sends one response.
func (s *Server) reply(r serverReq, resp *Response) {
	body := EncodeResponse(resp)
	if w := s.windows[r.req.Client]; w != nil {
		w.put(r.req.Seq, body, s.cfg.DedupWindow)
	}
	r.conn.send(body)
}

func errResponse(seq int, code byte, detail string) *Response {
	return &Response{Seq: seq, Status: StatusError, Code: code, Detail: detail}
}

// errResponseFor maps a core error to its wire code so the typed
// sentinel survives to the client.
func errResponseFor(seq int, err error) *Response {
	code := CodeNone
	switch {
	case errors.Is(err, ErrNotFound):
		code = CodeNotFound
	case errors.Is(err, ErrTampered):
		code = CodeTampered
	case errors.Is(err, ErrDuplicate):
		code = CodeDuplicate
	}
	return errResponse(seq, code, err.Error())
}
