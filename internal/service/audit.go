package service

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"os"

	"adaptiveba/internal/blob"
	"adaptiveba/internal/wire"
)

// The audit log is the third corner of the triangle architecture: the
// blob store holds payloads off-chain, agreement orders constant-size
// commands, and the audit log binds the two with a hash chain. Every
// committed write appends one entry whose hash covers its fields AND the
// previous entry's hash, so the log is tamper-evident end to end: a
// flipped byte in any entry breaks either its own recomputed hash or the
// next entry's Prev link, and a flipped byte in any referenced blob
// breaks the anchor check. Entries are derived purely from the committed
// log, so every replica's chain is byte-identical.

// Audit ops.
const (
	// OpPut records a committed write; Anchor is the value's content
	// address whether the value traveled inline or anchored.
	OpPut byte = 1
	// OpDel records a committed delete; Anchor is zero.
	OpDel byte = 2
)

// auditDomain separates audit-entry hashing from every other SHA-256 use
// in the repo.
const auditDomain = "adaptiveba/service/audit\x00"

// ErrAuditChain reports a broken audit chain: an entry whose recomputed
// hash or Prev link does not match what is stored.
var ErrAuditChain = errors.New("service: audit chain broken")

// AuditEntry is one link of the chain.
type AuditEntry struct {
	// Seq is the entry's position in the chain (0-based).
	Seq int
	// Slot is the committed log slot the entry records.
	Slot int
	// Op is OpPut or OpDel.
	Op byte
	// Key is the user key (raw bytes, pre-encoding).
	Key []byte
	// Anchor is the value's content address (OpPut) or zero (OpDel).
	Anchor blob.Ref
	// Anchored reports whether the value lives in the blob store (true)
	// or traveled inline through agreement (false).
	Anchored bool
	// Prev is the previous entry's Hash (zero for the genesis entry).
	Prev [32]byte
	// Hash covers every field above plus Prev.
	Hash [32]byte
}

// computeHash derives the entry hash over a domain-separated canonical
// encoding of all fields except Hash itself.
func (e *AuditEntry) computeHash() [32]byte {
	h := sha256.New()
	io.WriteString(h, auditDomain)
	w := wire.NewWriter()
	w.PutInt(e.Seq)
	w.PutInt(e.Slot)
	w.PutByte(e.Op)
	w.PutBytes(e.Key)
	w.PutBytes(e.Anchor[:])
	w.PutBool(e.Anchored)
	w.PutBytes(e.Prev[:])
	h.Write(w.Bytes())
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Audit is an append-only, fsync'd, hash-chained log file.
type Audit struct {
	path    string
	f       *os.File
	entries []AuditEntry
	tip     [32]byte // hash of the last entry (zero when empty)
}

// OpenAudit opens (creating if needed) the audit log at path, loading
// and chain-verifying any existing entries. A corrupt existing file
// fails here rather than silently extending a broken chain.
func OpenAudit(path string) (*Audit, error) {
	a := &Audit{path: path}
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("service: open audit: %w", err)
	}
	if len(data) > 0 {
		entries, err := DecodeAuditLog(data)
		if err != nil {
			return nil, err
		}
		if err := VerifyChain(entries); err != nil {
			return nil, err
		}
		a.entries = entries
		if n := len(entries); n > 0 {
			a.tip = entries[n-1].Hash
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: open audit: %w", err)
	}
	a.f = f
	return a, nil
}

// Close releases the underlying file.
func (a *Audit) Close() error { return a.f.Close() }

// Len returns the number of chained entries.
func (a *Audit) Len() int { return len(a.entries) }

// Entries returns the in-memory chain (callers must not mutate).
func (a *Audit) Entries() []AuditEntry { return a.entries }

// Append chains and durably appends one entry. Seq, Prev, and Hash are
// assigned here; the caller fills the record fields.
func (a *Audit) Append(e AuditEntry) (AuditEntry, error) {
	e.Seq = len(a.entries)
	e.Prev = a.tip
	e.Hash = e.computeHash()
	w := wire.NewWriter()
	encodeAuditEntry(w, &e)
	if _, err := a.f.Write(w.Bytes()); err != nil {
		return e, fmt.Errorf("service: audit append: %w", err)
	}
	if err := a.f.Sync(); err != nil {
		return e, fmt.Errorf("service: audit append: %w", err)
	}
	a.entries = append(a.entries, e)
	a.tip = e.Hash
	return e, nil
}

// VerifyChain walks a chain end to end: every entry's hash must recompute
// and every Prev must equal the prior entry's hash (genesis Prev zero).
func VerifyChain(entries []AuditEntry) error {
	var prev [32]byte
	for i := range entries {
		e := &entries[i]
		if e.Seq != i {
			return fmt.Errorf("%w: entry %d claims seq %d", ErrAuditChain, i, e.Seq)
		}
		if e.Prev != prev {
			return fmt.Errorf("%w: entry %d prev link mismatch", ErrAuditChain, i)
		}
		if e.computeHash() != e.Hash {
			return fmt.Errorf("%w: entry %d hash mismatch", ErrAuditChain, i)
		}
		prev = e.Hash
	}
	return nil
}

// VerifyAgainst walks the chain and additionally checks every anchored
// entry's blob: present in the store and hashing to its anchor. It
// returns the seqs of entries whose blob check failed (chain breaks
// still error immediately — a broken chain invalidates everything after
// the break, not one entry).
func VerifyAgainst(entries []AuditEntry, blobs *blob.Store) (badBlobs []int, err error) {
	if err := VerifyChain(entries); err != nil {
		return nil, err
	}
	for i := range entries {
		e := &entries[i]
		if e.Op != OpPut || !e.Anchored {
			continue
		}
		if blobs.Verify(e.Anchor) != nil {
			badBlobs = append(badBlobs, e.Seq)
		}
	}
	return badBlobs, nil
}

// ReloadFromDisk re-reads and re-verifies the on-disk file — the
// external auditor's view, used by Verify to catch tampering that
// happened after entries were cached in memory.
func (a *Audit) ReloadFromDisk() ([]AuditEntry, error) {
	data, err := os.ReadFile(a.path)
	if err != nil {
		return nil, fmt.Errorf("service: audit reload: %w", err)
	}
	return DecodeAuditLog(data)
}
