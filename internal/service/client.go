package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"adaptiveba/internal/transport"
	"adaptiveba/internal/wire"
)

// ErrUnavailable reports a request that got no response within the
// retry budget (the server is gone, or chaos ate every attempt).
var ErrUnavailable = errors.New("service: no response within retry budget")

// newWelcome encodes a FrameWelcome body.
func newWelcome(id int) []byte {
	w := wire.NewWriter()
	w.PutInt(id)
	return w.Bytes()
}

// decodeWelcome parses a FrameWelcome body.
func decodeWelcome(b []byte) (int, error) {
	r := wire.NewReader(b)
	id := r.Int()
	if err := r.Close(); err != nil {
		return 0, fmt.Errorf("service: bad welcome: %w", err)
	}
	if id < 0 {
		return 0, fmt.Errorf("service: bad welcome: negative id")
	}
	return id, nil
}

// ClientConfig tunes a client session.
type ClientConfig struct {
	// Timeout bounds one attempt's wait for a response (default 2s).
	Timeout time.Duration
	// Retries is how many times a timed-out request is re-sent with the
	// same sequence number (default 4). Retries are what make the
	// server's dedup window observable: a request executed but whose
	// response was lost is answered from the window, never re-executed.
	Retries int
}

// Client is one synchronous service session. Not goroutine-safe: one
// request is in flight at a time (use one Client per goroutine).
type Client struct {
	cfg  ClientConfig
	conn net.Conn
	fr   transport.FrameReader
	id   int
	seq  int
}

// Dial connects, performs the hello handshake, and returns a session
// with a server-assigned client ID.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 4
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("service: dial %s: %w", addr, err)
	}
	c := &Client{cfg: cfg, conn: conn}
	if err := transport.WriteFrame(conn, FrameHello, nil); err != nil {
		conn.Close()
		return nil, fmt.Errorf("service: hello: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(cfg.Timeout))
	kind, body, err := c.fr.Read(conn)
	if err != nil || kind != FrameWelcome {
		conn.Close()
		return nil, fmt.Errorf("service: handshake failed: %v", err)
	}
	id, err := decodeWelcome(body)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.id = id
	return c, nil
}

// Close tears the session down.
func (c *Client) Close() error { return c.conn.Close() }

// ID returns the server-assigned client ID.
func (c *Client) ID() int { return c.id }

// Do sends one request and waits for its response, re-sending the same
// sequence number on timeout. Stale responses (earlier seqs delayed by
// chaos) are discarded by seq match. The context is honored at attempt
// granularity: a context deadline caps each attempt's read deadline, and
// cancellation is noticed between attempts (at worst one Timeout late).
func (c *Client) Do(ctx context.Context, op byte, key, value []byte) (*Response, error) {
	c.seq++
	req := EncodeRequest(&Request{Client: c.id, Seq: c.seq, Op: op, Key: key, Value: value})
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := transport.WriteFrame(c.conn, FrameRequest, req); err != nil {
			return nil, fmt.Errorf("service: send: %w", err)
		}
		deadline := time.Now().Add(c.cfg.Timeout)
		if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
			deadline = d
		}
		for {
			c.conn.SetReadDeadline(deadline)
			kind, body, err := c.fr.Read(c.conn)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					if cerr := ctx.Err(); cerr != nil {
						return nil, cerr
					}
					break // retry the same seq
				}
				return nil, fmt.Errorf("service: recv: %w", err)
			}
			if kind != FrameResponse {
				continue
			}
			resp, err := DecodeResponse(body)
			if err != nil {
				return nil, err
			}
			if resp.Seq != c.seq {
				continue // stale (delayed) response to an earlier request
			}
			return resp, nil
		}
	}
	return nil, fmt.Errorf("%w: seq %d after %d attempts", ErrUnavailable, c.seq, c.cfg.Retries+1)
}

// ResponseErr maps an error response back to the typed sentinels (nil
// for StatusOK).
func ResponseErr(p *Response) error {
	if p.Status == StatusOK {
		return nil
	}
	switch p.Code {
	case CodeNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, p.Detail)
	case CodeDuplicate:
		return fmt.Errorf("%w: %s", ErrDuplicate, p.Detail)
	case CodeTampered:
		return fmt.Errorf("%w: %s", ErrTampered, p.Detail)
	default:
		return fmt.Errorf("service: request failed: %s", p.Detail)
	}
}

// Put commits key=value through agreement (anchoring large values).
func (c *Client) Put(key, value []byte) error {
	if len(value) > MaxValue {
		return fmt.Errorf("%w: value of %d bytes exceeds MaxValue", ErrConfig, len(value))
	}
	resp, err := c.Do(context.Background(), ReqPut, key, value)
	if err != nil {
		return err
	}
	return ResponseErr(resp)
}

// Del commits a delete through agreement.
func (c *Client) Del(key []byte) error {
	resp, err := c.Do(context.Background(), ReqDel, key, nil)
	if err != nil {
		return err
	}
	return ResponseErr(resp)
}

// Get reads a key from replicated state (anchored values resolve
// through the blob store with content verification).
func (c *Client) Get(key []byte) ([]byte, error) {
	resp, err := c.Do(context.Background(), ReqGet, key, nil)
	if err != nil {
		return nil, err
	}
	if err := ResponseErr(resp); err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// Verify asks the server for the end-to-end tamper-evidence walk. The
// report is returned even when verification fails (err wraps
// ErrTampered and the report says what broke).
func (c *Client) Verify() (*VerifyReport, error) {
	resp, err := c.Do(context.Background(), ReqVerify, nil, nil)
	if err != nil {
		return nil, err
	}
	return resp.Report, ResponseErr(resp)
}
