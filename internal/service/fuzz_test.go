package service

import (
	"bytes"
	"testing"

	"adaptiveba/internal/blob"
)

// FuzzDecodeRequest: arbitrary bytes must decode cleanly or fail — never
// panic, never allocate past the hostile-length guards — and valid
// decodes must re-encode to the same bytes.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(&Request{Client: 1, Seq: 2, Op: ReqPut, Key: []byte("k"), Value: []byte("v")}))
	f.Add(EncodeRequest(&Request{Client: 3, Seq: 9, Op: ReqGet, Key: []byte("k")}))
	f.Add(EncodeRequest(&Request{Client: 0, Seq: 0, Op: ReqVerify}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeRequest(data)
		if err != nil {
			return
		}
		back, err := DecodeRequest(EncodeRequest(q))
		if err != nil {
			t.Fatalf("re-decode of valid request failed: %v", err)
		}
		if back.Client != q.Client || back.Seq != q.Seq || back.Op != q.Op ||
			!bytes.Equal(back.Key, q.Key) || !bytes.Equal(back.Value, q.Value) {
			t.Fatal("request round trip diverged")
		}
	})
}

// FuzzDecodeResponse mirrors FuzzDecodeRequest for the response codec,
// including the optional verify-report tail.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(EncodeResponse(&Response{Seq: 1, Status: StatusOK, Value: []byte("v")}))
	f.Add(EncodeResponse(&Response{Seq: 2, Status: StatusError, Code: CodeTampered, Detail: "x"}))
	f.Add(EncodeResponse(&Response{Seq: 3, Status: StatusOK, Report: &VerifyReport{
		Entries: 4, Blobs: 2, ChainOK: true, BadBlobs: 1, BadSeqs: []int{3}, StateHash: "ab",
	}}))
	f.Add(bytes.Repeat([]byte{0xfe}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeResponse(data)
		if err != nil {
			return
		}
		if _, err := DecodeResponse(EncodeResponse(p)); err != nil {
			t.Fatalf("re-decode of valid response failed: %v", err)
		}
	})
}

// FuzzDecodeAuditLog: a hostile audit file must parse cleanly or fail,
// and whatever parses must re-verify exactly as a chain walk decides —
// no input may panic the verifier.
func FuzzDecodeAuditLog(f *testing.F) {
	// Seed with a genuine 2-entry chain.
	var buf []byte
	var prev [32]byte
	for i := 0; i < 2; i++ {
		e := AuditEntry{Seq: i, Slot: i, Op: OpPut, Key: []byte{byte(i)}, Anchor: blob.Sum([]byte{byte(i)}), Prev: prev}
		e.Hash = e.computeHash()
		prev = e.Hash
		buf = append(buf, EncodeAuditEntry(&e)...)
	}
	f.Add(buf)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeAuditLog(data)
		if err != nil {
			return
		}
		_ = VerifyChain(entries) // must not panic
		for i := range entries {
			enc := EncodeAuditEntry(&entries[i])
			back, err := DecodeAuditEntry(enc)
			if err != nil {
				t.Fatalf("re-decode of valid audit entry failed: %v", err)
			}
			if back.Hash != entries[i].Hash || back.Prev != entries[i].Prev {
				t.Fatal("audit entry round trip diverged")
			}
		}
	})
}
