package explore

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"adaptiveba/internal/harness"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// Protocol aliases the harness protocol selector; the explorer searches
// the two adaptive protocols whose word bound the paper claims.
type Protocol = harness.Protocol

// Explorable protocols.
const (
	ProtocolWBA = harness.ProtocolWBA
	ProtocolBB  = harness.ProtocolBB
)

// Config parameterizes one search.
type Config struct {
	Protocol Protocol // default ProtocolWBA
	N        int
	F        int // corruption budget of searched schedules (≤ t)
	// Seed drives the whole search: population seeding, mutation, and
	// tournament draws. Same seed ⇒ byte-identical Result and Report.
	Seed        int64
	Generations int // default 4
	Population  int // default 8
	Elites      int // survivors copied verbatim per generation (default 2)
	Workers     int // harness.Pool workers (0 = one per CPU)
}

// withDefaults fills unset knobs.
func (c Config) withDefaults() Config {
	if c.Protocol == "" {
		c.Protocol = ProtocolWBA
	}
	if c.Generations <= 0 {
		c.Generations = 4
	}
	if c.Population <= 0 {
		c.Population = 8
	}
	if c.Elites <= 0 {
		c.Elites = 2
	}
	if c.Elites > c.Population {
		c.Elites = c.Population
	}
	return c
}

// Candidate is one evaluated schedule.
type Candidate struct {
	Genome    Genome
	Words     int64 // honest words — the quantity the envelope bounds
	Ticks     types.Tick
	Fallbacks int
	Decided   bool
	Agreement bool
	Decision  types.Value
	// Violations lists broken safety/liveness invariants (empty for a
	// correct implementation; any entry is a falsification, reproducible
	// from Config.Seed + Genome).
	Violations []string
}

// GenerationStat summarizes one generation for the report table.
type GenerationStat struct {
	Gen       int
	BestWords int64
	BestTicks types.Tick
	BestFB    int
	MeanWords int64
	Best      Genome
}

// Result is one complete search outcome.
type Result struct {
	Config      Config
	T           int // resolved corruption threshold
	Generations []GenerationStat
	// Best is the worst schedule found: the candidate extracting the most
	// honest words (ties: most ticks).
	Best Candidate
	// Violating collects every evaluated candidate that broke an
	// invariant, each replayable from its genome.
	Violating []Candidate
	Evaluated int
	// Envelope is the O(n(f+1)) word budget for this grid point.
	Envelope int64
}

// Envelope constants. The repository's claim (DESIGN.md, T1-WBA) is
// piecewise: honest words are Θ(n(f+1)) in the adaptive regime
// f < (n−t−1)/2, where the fallback provably never runs (Lemma 6), and
// may additionally pay the fallback's cost above that threshold. This
// implementation's A_fallback is n parallel Dolev–Strong — Θ(n³) words
// (the paper's Momose–Ren instantiation would be Θ(n²)) — measured at
// ≈3n² words per process (BENCH_explore.json), so the surcharge constant
// 4 leaves margin without hiding a regression.
const (
	// EnvelopeWords is the adaptive-regime constant: ≤ EnvelopeWords·n
	// honest words per actual corruption (+1). Worst searched schedules
	// sit under 5 words per process per (f+1); 12 is the falsification
	// line — any schedule found above it is a bug, not noise.
	EnvelopeWords = 12
	// FallbackWords·n³ is the fallback-regime surcharge.
	FallbackWords = 4
)

// FallbackThreshold is the corruption count below which the fallback
// never runs (Lemma 6): f < (n−t−1)/2.
func FallbackThreshold(n, t int) int { return (n - t - 1) / 2 }

// Envelope is the adversarial honest-word budget for an (n, f) grid
// point: EnvelopeWords·n·(f+1), plus the fallback surcharge once f
// reaches the threshold where the quadratic path may legally trigger.
func Envelope(n, t, f int) int64 {
	e := int64(EnvelopeWords) * int64(n) * int64(f+1)
	if f >= FallbackThreshold(n, t) {
		e += int64(FallbackWords) * int64(n) * int64(n) * int64(n)
	}
	return e
}

// Spec builds the harness spec evaluating genome g under the search
// configuration. The spec is a pure function of (Config, g): the
// adversary's replay randomness is seeded from the genome itself, so a
// genome's fitness is identical wherever and whenever it is evaluated.
func (c Config) Spec(g Genome) harness.Spec {
	advSeed := harness.DeriveSeed(c.Seed, g.ShuffleSeed)
	return harness.Spec{
		Protocol:    c.Protocol,
		N:           c.N,
		F:           c.F,
		Seed:        c.Seed,
		ShuffleSeed: g.ShuffleSeed,
		Adversary: func(maxTicks types.Tick) sim.Adversary {
			return NewAdversary(g, c.Protocol, advSeed, maxTicks)
		},
	}
}

// ReplaySchedule re-runs one schedule outside a search — the reproducer
// for any reported worst schedule or violation dump.
func ReplaySchedule(cfg Config, g Genome) (*harness.Outcome, error) {
	cfg = cfg.withDefaults()
	return harness.Run(cfg.Spec(g))
}

// CorruptedIDs returns the process ids a genome corrupts in an (n, t)
// run, in gene order — the same slot→id mapping the adversary compiles
// (modulo n, linear probe past collisions, truncated at t genes).
func CorruptedIDs(g Genome, n, t int) []types.ProcessID {
	taken := make(map[types.ProcessID]bool, len(g.Corruptions))
	var ids []types.ProcessID
	for _, c := range g.Corruptions {
		if len(ids) >= t {
			break
		}
		id := types.ProcessID(int(c.Slot) % n)
		for taken[id] {
			id = types.ProcessID((int(id) + 1) % n)
		}
		taken[id] = true
		ids = append(ids, id)
	}
	return ids
}

// checkInvariants derives the violation list for one evaluated schedule.
// Termination and agreement are unconditional. Validity is protocol-
// specific: weak BA under the default any-non-⊥ predicate may decide any
// value a phase leader proposed — honest "v" or the adversary's "w"/"u"
// — but nothing else, and must decide exactly "v" in corruption-free
// runs; BB must decide the sender's value whenever the sender is honest.
func checkInvariants(cfg Config, t int, g Genome, o *harness.Outcome) []string {
	var v []string
	if !o.Decided {
		v = append(v, "termination: not every honest process decided")
	}
	if !o.Agreement {
		v = append(v, "agreement: honest decisions differ")
	}
	if !o.Decided || !o.Agreement {
		return v
	}
	corrupted := CorruptedIDs(g, cfg.N, t)
	// Lemma 6: below the fallback threshold no schedule can assemble the
	// (t+1)-share fallback certificate, so the quadratic path must stay
	// off. A single fallback run down there is a falsification.
	if len(corrupted) < FallbackThreshold(cfg.N, t) && o.FallbackCount > 0 {
		v = append(v, fmt.Sprintf("lemma6: fallback ran in %d processes at f=%d < threshold %d",
			o.FallbackCount, len(corrupted), FallbackThreshold(cfg.N, t)))
	}
	switch cfg.Protocol {
	case ProtocolBB:
		senderCorrupt := false
		for _, id := range corrupted {
			if id == 0 {
				senderCorrupt = true
			}
		}
		if !senderCorrupt && !o.Decision.Equal(types.Value("v")) {
			v = append(v, fmt.Sprintf("validity: honest sender sent %q, decided %q", "v", o.Decision))
		}
	default: // weak BA
		if len(corrupted) == 0 {
			if !o.Decision.Equal(types.Value("v")) {
				v = append(v, fmt.Sprintf("validity: failure-free run decided %q, want %q", o.Decision, "v"))
			}
			break
		}
		switch {
		case o.Decision.Equal(types.Value("v")),
			o.Decision.Equal(types.Value("w")),
			o.Decision.Equal(types.Value("u")):
		default:
			v = append(v, fmt.Sprintf("validity: decided %q, not among the run's proposable values", o.Decision))
		}
	}
	return v
}

// better orders candidates by fitness: more honest words, then more
// ticks, then (for a stable total order at any worker count) smaller
// genome encoding.
func better(a, b *Candidate) bool {
	if a.Words != b.Words {
		return a.Words > b.Words
	}
	if a.Ticks != b.Ticks {
		return a.Ticks > b.Ticks
	}
	return strings.Compare(a.Genome.Hex(), b.Genome.Hex()) < 0
}

// seedPopulation draws the initial genomes. The first slot is the known
// worst-case heuristic — all F corruptions spam their rotating-leader
// phases from tick 0 (the paper's own lower-bound run family) — so the
// search starts at the theory's floor and can only climb from there.
func seedPopulation(rng *rand.Rand, cfg Config) []Genome {
	pop := make([]Genome, cfg.Population)
	spam := Genome{}
	for i := 0; i < cfg.F; i++ {
		spam.Corruptions = append(spam.Corruptions, Corrupt{
			Slot:  uint8((i + 1) % 256),
			Moves: []Move{{Op: OpProposeSpam, Arg: uint8(i)}, {Op: OpHelpSpam}},
		})
	}
	pop[0] = spam
	for i := 1; i < cfg.Population; i++ {
		pop[i] = RandomGenome(rng, cfg.F)
	}
	return pop
}

// nextGen breeds the following population: Elites survive verbatim, the
// rest are mutants of tournament winners (binary tournament).
func nextGen(rng *rand.Rand, cfg Config, ranked []Candidate) []Genome {
	pop := make([]Genome, 0, cfg.Population)
	for i := 0; i < cfg.Elites && i < len(ranked); i++ {
		pop = append(pop, ranked[i].Genome.clone())
	}
	for len(pop) < cfg.Population {
		a := &ranked[rng.Intn(len(ranked))]
		b := &ranked[rng.Intn(len(ranked))]
		winner := a
		if better(b, a) {
			winner = b
		}
		pop = append(pop, Mutate(rng, winner.Genome))
	}
	return pop
}

// Explore runs the search: seed a population, evaluate every genome
// through the parallel harness, select, mutate, repeat. All randomness
// (population seeding, mutation, tournament draws) happens on the
// caller's goroutine from one seeded source; evaluation parallelism
// cannot perturb it (harness.Pool returns outcomes in spec order), so
// the whole Result is a pure function of Config.
func Explore(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	params, err := types.NewParams(cfg.N)
	if err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	if cfg.F < 0 || cfg.F > params.T {
		return nil, fmt.Errorf("explore: f=%d with t=%d", cfg.F, params.T)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	pop := seedPopulation(rng, cfg)
	pool := harness.Pool{Workers: cfg.Workers}

	res := &Result{Config: cfg, T: params.T, Envelope: Envelope(cfg.N, params.T, cfg.F)}
	var best *Candidate
	for gen := 1; gen <= cfg.Generations; gen++ {
		specs := make([]harness.Spec, len(pop))
		for i, g := range pop {
			specs[i] = cfg.Spec(g)
		}
		outs, err := pool.Run(specs)
		if err != nil {
			return nil, fmt.Errorf("explore: generation %d: %w", gen, err)
		}

		ranked := make([]Candidate, len(pop))
		var sum int64
		for i := range outs {
			o := &outs[i]
			ranked[i] = Candidate{
				Genome:     pop[i],
				Words:      o.Words,
				Ticks:      o.Ticks,
				Fallbacks:  o.FallbackCount,
				Decided:    o.Decided,
				Agreement:  o.Agreement,
				Decision:   o.Decision,
				Violations: checkInvariants(cfg, params.T, pop[i], o),
			}
			sum += o.Words
			if len(ranked[i].Violations) > 0 {
				res.Violating = append(res.Violating, ranked[i])
			}
		}
		res.Evaluated += len(ranked)
		sort.SliceStable(ranked, func(a, b int) bool { return better(&ranked[a], &ranked[b]) })

		res.Generations = append(res.Generations, GenerationStat{
			Gen:       gen,
			BestWords: ranked[0].Words,
			BestTicks: ranked[0].Ticks,
			BestFB:    ranked[0].Fallbacks,
			MeanWords: sum / int64(len(ranked)),
			Best:      ranked[0].Genome.clone(),
		})
		if best == nil || better(&ranked[0], best) {
			c := ranked[0]
			c.Genome = c.Genome.clone()
			best = &c
		}
		if gen < cfg.Generations {
			pop = nextGen(rng, cfg, ranked)
		}
	}
	res.Best = *best
	return res, nil
}

// UnderEnvelope reports whether the worst schedule found stays within
// the O(n(f+1)) budget.
func (r *Result) UnderEnvelope() bool { return r.Best.Words <= r.Envelope }

// Ratio is worst-observed words over the envelope.
func (r *Result) Ratio() float64 { return float64(r.Best.Words) / float64(r.Envelope) }

// Report renders the deterministic search report: the per-generation
// worst-schedule table, the overall worst schedule against the envelope,
// and the replayable genome dump. Byte-identical for a given Config.
func (r *Result) Report() string {
	var b strings.Builder
	c := r.Config
	fmt.Fprintf(&b, "explore protocol=%s n=%d f=%d t=%d seed=%d population=%d generations=%d\n",
		c.Protocol, c.N, c.F, r.T, c.Seed, c.Population, c.Generations)
	fmt.Fprintf(&b, "%4s %12s %7s %4s %12s\n", "gen", "best-words", "ticks", "fb", "mean-words")
	for _, g := range r.Generations {
		fmt.Fprintf(&b, "%4d %12d %7d %4d %12d\n", g.Gen, g.BestWords, g.BestTicks, g.BestFB, g.MeanWords)
	}
	fmt.Fprintf(&b, "worst schedule: words=%d ticks=%d fallback=%d envelope=%d ratio=%.3f under=%v\n",
		r.Best.Words, r.Best.Ticks, r.Best.Fallbacks, r.Envelope, r.Ratio(), r.UnderEnvelope())
	fmt.Fprintf(&b, "violations: %d\n", len(r.Violating))
	for _, v := range r.Violating {
		fmt.Fprintf(&b, "  VIOLATION genome=%s: %s\n", v.Genome.Hex(), strings.Join(v.Violations, "; "))
	}
	fmt.Fprintf(&b, "genome: %s\n", r.Best.Genome.Hex())
	fmt.Fprintf(&b, "schedule: %s\n", r.Best.Genome.String())
	return b.String()
}
