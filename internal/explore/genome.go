// Package explore is a reproducible mutation-search engine over
// adversary schedules: it encodes corruption timing, equivocation and
// selective targets, help-spam patterns, replay/flood choices, and
// message-delivery order as a compact genome, runs candidate schedules
// through the experiment harness, and hill-climbs/tournament-selects to
// maximize the honest words and rounds a schedule extracts per (n, f).
//
// The paper's O(n(f+1)) word bound is an adversarial worst-case claim.
// The fixed attack library (internal/adversary/attacks) checks a handful
// of hand-written strategies; the explorer instead *searches* the
// schedule space and reports the worst schedule found against the
// envelope — turning the test suite from "known attacks pass" into an
// active falsifier. Every run is deterministic in its seed: the same
// seed produces a byte-identical report, and any schedule (including a
// safety violation) is replayable from its seed + genome dump.
package explore

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// Op selects one adversarial move. Protocol-specific ops degrade
// gracefully: an op that does not apply to the run's protocol emits
// nothing (a silent gene), which keeps every genome valid for every
// protocol and lets crossover carry genes between protocol runs.
type Op uint8

// Move operations.
const (
	// OpSilence does nothing: the corrupted process simply stays mute
	// (crash-like, the cheap case the adaptive protocols optimize for).
	OpSilence Op = iota
	// OpProposeSpam initiates a rotating-leader phase from the corrupted
	// process and ignores the answers — the run family behind the paper's
	// O(n(f+1)) bound. WBA: a Propose for phase 1+Arg%(t+1). BB: a
	// vetting-phase HelpReq for phase 1+Arg%n.
	OpProposeSpam
	// OpEquivocate plays a phase leader two-faced: proposal v1 to the
	// even-ranked correct processes, v2 to the odd-ranked (WBA), or the
	// captured sender envelope to only half the processes (BB) — the
	// split/selective target family.
	OpEquivocate
	// OpHelpSpam spends the help path: WBA corrupted processes sign and
	// broadcast help requests even though they could decide (each decided
	// correct process answers, Θ(n) words per requester); BB spams the
	// nested weak BA with the captured (valid!) sender envelope.
	OpHelpSpam
	// OpReplay re-sends Count recorded honest payloads from the corrupted
	// identity to pseudorandom targets at the move's tick (freshness
	// attack; certificates and phase tags must withstand it).
	OpReplay
	// OpFlood re-broadcasts the most recently recorded honest payload to
	// every process (a burst of stale traffic at a searched tick).
	OpFlood

	opCount // number of ops; keep last
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpSilence:
		return "silence"
	case OpProposeSpam:
		return "propose-spam"
	case OpEquivocate:
		return "equivocate"
	case OpHelpSpam:
		return "help-spam"
	case OpReplay:
		return "replay"
	case OpFlood:
		return "flood"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Move is one adversarial action gene. Field interpretation is op- and
// protocol-dependent (see the Op docs); all fields are clamped/reduced
// modulo the run's parameters at compile time, so every byte pattern is
// a valid move.
type Move struct {
	Op Op
	// Arg selects a phase (phase-driven ops) or a raw tick (replay/flood).
	Arg uint8
	// Target selects the victim / target half (equivocate, replay).
	Target uint8
	// Value selects the proposal value (0 = the honest value, else a
	// conflicting-but-valid second value).
	Value uint8
	// Count is the repetition count for replay bursts (clamped to 1..8).
	Count uint8
}

// Corrupt is one corruption gene: which process the adversary takes over,
// when, and what it does.
type Corrupt struct {
	// Slot selects the corrupted process (reduced modulo n and probed to
	// the next free id at compile time, so slots never collide).
	Slot uint8
	// At is the corruption tick (clamped to the schedule horizon). Before
	// At the process runs the honest protocol — corruption *timing* is
	// part of the search space.
	At    uint8
	Moves []Move
}

// Genome is one complete adversary schedule plus the delivery-order
// choice. It is a pure value: compiling it against run parameters
// (protocol, n, t, horizon) yields the executable schedule.
type Genome struct {
	// ShuffleSeed permutes per-tick message delivery order (sim.Config.
	// ShuffleSeed): within one tick the adversary controls arrival order,
	// so the delivery permutation is a searched gene, not a constant.
	ShuffleSeed int64
	Corruptions []Corrupt
}

// Genome encoding limits. Decode rejects anything beyond them, which
// bounds the work any byte string can demand.
const (
	genomeVersion    = 1
	maxCorruptions   = 64
	maxMovesPerSlot  = 8
	genomeHeaderLen  = 1 + 8 + 1 // version + shuffle seed + corruption count
	corruptHeaderLen = 3         // slot + at + move count
	moveLen          = 5
)

// ErrGenome reports a malformed genome encoding.
var ErrGenome = errors.New("explore: malformed genome")

// Encode serializes the genome to its canonical byte form.
func (g Genome) Encode() []byte {
	size := genomeHeaderLen
	for _, c := range g.Corruptions {
		size += corruptHeaderLen + moveLen*len(c.Moves)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, genomeVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(g.ShuffleSeed))
	buf = append(buf, byte(len(g.Corruptions)))
	for _, c := range g.Corruptions {
		buf = append(buf, c.Slot, c.At, byte(len(c.Moves)))
		for _, m := range c.Moves {
			buf = append(buf, byte(m.Op), m.Arg, m.Target, m.Value, m.Count)
		}
	}
	return buf
}

// Decode parses a canonical genome encoding. Every accepted byte string
// round-trips: Decode(b).Encode() == b (FuzzScheduleGenome pins this).
func Decode(b []byte) (Genome, error) {
	var g Genome
	if len(b) < genomeHeaderLen {
		return g, fmt.Errorf("%w: %d bytes", ErrGenome, len(b))
	}
	if b[0] != genomeVersion {
		return g, fmt.Errorf("%w: version %d", ErrGenome, b[0])
	}
	g.ShuffleSeed = int64(binary.BigEndian.Uint64(b[1:9]))
	nc := int(b[9])
	if nc > maxCorruptions {
		return g, fmt.Errorf("%w: %d corruptions", ErrGenome, nc)
	}
	rest := b[genomeHeaderLen:]
	for i := 0; i < nc; i++ {
		if len(rest) < corruptHeaderLen {
			return g, fmt.Errorf("%w: truncated corruption %d", ErrGenome, i)
		}
		c := Corrupt{Slot: rest[0], At: rest[1]}
		nm := int(rest[2])
		rest = rest[corruptHeaderLen:]
		if nm > maxMovesPerSlot {
			return g, fmt.Errorf("%w: %d moves", ErrGenome, nm)
		}
		if len(rest) < nm*moveLen {
			return g, fmt.Errorf("%w: truncated moves of corruption %d", ErrGenome, i)
		}
		for j := 0; j < nm; j++ {
			mv := Move{Op: Op(rest[0]), Arg: rest[1], Target: rest[2], Value: rest[3], Count: rest[4]}
			if mv.Op >= opCount {
				return g, fmt.Errorf("%w: op %d", ErrGenome, mv.Op)
			}
			c.Moves = append(c.Moves, mv)
			rest = rest[moveLen:]
		}
		g.Corruptions = append(g.Corruptions, c)
	}
	if len(rest) != 0 {
		return g, fmt.Errorf("%w: %d trailing bytes", ErrGenome, len(rest))
	}
	return g, nil
}

// Hex is the genome dump format used in reports and testdata: the
// canonical encoding in hexadecimal.
func (g Genome) Hex() string { return hex.EncodeToString(g.Encode()) }

// DecodeHex parses a Hex dump.
func DecodeHex(s string) (Genome, error) {
	b, err := hex.DecodeString(strings.TrimSpace(s))
	if err != nil {
		return Genome{}, fmt.Errorf("%w: %v", ErrGenome, err)
	}
	return Decode(b)
}

// String renders a compact human-readable schedule summary.
func (g Genome) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shuffle=%d", g.ShuffleSeed)
	for _, c := range g.Corruptions {
		fmt.Fprintf(&b, " [p~%d@t%d:", c.Slot, c.At)
		for j, m := range c.Moves {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s(a%d,t%d,v%d,c%d)", m.Op, m.Arg, m.Target, m.Value, m.Count)
		}
		b.WriteByte(']')
	}
	return b.String()
}

// clone deep-copies the genome so mutation never aliases a survivor.
func (g Genome) clone() Genome {
	out := Genome{ShuffleSeed: g.ShuffleSeed, Corruptions: make([]Corrupt, len(g.Corruptions))}
	for i, c := range g.Corruptions {
		out.Corruptions[i] = Corrupt{Slot: c.Slot, At: c.At, Moves: append([]Move(nil), c.Moves...)}
	}
	return out
}

// randomMove draws a uniformly random move gene.
func randomMove(rng *rand.Rand) Move {
	return Move{
		Op:     Op(rng.Intn(int(opCount))),
		Arg:    uint8(rng.Intn(256)),
		Target: uint8(rng.Intn(256)),
		Value:  uint8(rng.Intn(256)),
		Count:  uint8(rng.Intn(256)),
	}
}

// RandomGenome draws a schedule with exactly f corruption genes, each
// carrying 1–3 random moves.
func RandomGenome(rng *rand.Rand, f int) Genome {
	if f > maxCorruptions {
		f = maxCorruptions
	}
	g := Genome{ShuffleSeed: rng.Int63()}
	for i := 0; i < f; i++ {
		c := Corrupt{Slot: uint8(rng.Intn(256)), At: uint8(rng.Intn(8))}
		for m := 1 + rng.Intn(3); m > 0; m-- {
			c.Moves = append(c.Moves, randomMove(rng))
		}
		g.Corruptions = append(g.Corruptions, c)
	}
	return g
}

// Mutate returns a copy of the genome with one random point change.
// Mutation is deterministic in the rng state: two explorers advancing
// identical rngs over identical genomes produce identical offspring
// (FuzzScheduleGenome pins this).
func Mutate(rng *rand.Rand, g Genome) Genome {
	out := g.clone()
	if len(out.Corruptions) == 0 {
		// Only the delivery order is searchable for f=0 schedules.
		out.ShuffleSeed = rng.Int63()
		return out
	}
	switch rng.Intn(6) {
	case 0: // re-draw the delivery permutation
		out.ShuffleSeed = rng.Int63()
	case 1: // move a corruption to another process
		c := &out.Corruptions[rng.Intn(len(out.Corruptions))]
		c.Slot = uint8(rng.Intn(256))
	case 2: // shift a corruption in time
		c := &out.Corruptions[rng.Intn(len(out.Corruptions))]
		c.At = uint8(rng.Intn(256))
	case 3: // point-mutate one field of one move
		c := &out.Corruptions[rng.Intn(len(out.Corruptions))]
		if len(c.Moves) == 0 {
			c.Moves = append(c.Moves, randomMove(rng))
			break
		}
		m := &c.Moves[rng.Intn(len(c.Moves))]
		switch rng.Intn(5) {
		case 0:
			m.Op = Op(rng.Intn(int(opCount)))
		case 1:
			m.Arg = uint8(rng.Intn(256))
		case 2:
			m.Target = uint8(rng.Intn(256))
		case 3:
			m.Value = uint8(rng.Intn(256))
		case 4:
			m.Count = uint8(rng.Intn(256))
		}
	case 4: // grow a schedule
		c := &out.Corruptions[rng.Intn(len(out.Corruptions))]
		if len(c.Moves) < maxMovesPerSlot {
			c.Moves = append(c.Moves, randomMove(rng))
		}
	case 5: // shrink a schedule
		c := &out.Corruptions[rng.Intn(len(out.Corruptions))]
		if len(c.Moves) > 0 {
			i := rng.Intn(len(c.Moves))
			c.Moves = append(c.Moves[:i], c.Moves[i+1:]...)
		}
	}
	return out
}
