package explore

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// dumpViolation writes a replayable reproducer for a schedule that broke
// an invariant to testdata/, so a failing CI run leaves the exact seed +
// genome behind. Replay with:
//
//	g, _ := explore.DecodeHex(<genome line>)
//	explore.ReplaySchedule(cfg, g)
func dumpViolation(t *testing.T, cfg Config, c Candidate) {
	t.Helper()
	name := fmt.Sprintf("violation-%s-n%d-f%d-seed%d.txt", cfg.Protocol, cfg.N, cfg.F, cfg.Seed)
	path := filepath.Join("testdata", name)
	body := fmt.Sprintf("protocol: %s\nn: %d\nf: %d\nseed: %d\ngenome: %s\nschedule: %s\nviolations:\n  %s\n",
		cfg.Protocol, cfg.N, cfg.F, cfg.Seed, c.Genome.Hex(), c.Genome.String(),
		strings.Join(c.Violations, "\n  "))
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Logf("could not write violation dump: %v", err)
		return
	}
	t.Logf("violation reproducer written to %s", path)
}

// TestExploredSchedulesKeepInvariants is the property-based safety net:
// across protocols, mesh sizes, corruption budgets, and seeds, no
// schedule the explorer generates — random, heuristic, or bred — may
// break termination, agreement, validity, or Lemma 6. Any violator is
// dumped to testdata/ with its seed + genome for replay.
func TestExploredSchedulesKeepInvariants(t *testing.T) {
	grid := []Config{
		{Protocol: ProtocolWBA, N: 5, F: 2, Seed: 1},
		{Protocol: ProtocolWBA, N: 9, F: 4, Seed: 2},
		{Protocol: ProtocolWBA, N: 9, F: 0, Seed: 3},
		{Protocol: ProtocolBB, N: 5, F: 2, Seed: 4},
		{Protocol: ProtocolBB, N: 9, F: 3, Seed: 5},
	}
	for _, cfg := range grid {
		cfg.Generations, cfg.Population = 3, 6
		t.Run(fmt.Sprintf("%s-n%d-f%d", cfg.Protocol, cfg.N, cfg.F), func(t *testing.T) {
			res, err := Explore(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violating {
				dumpViolation(t, cfg, v)
				t.Errorf("schedule %s violated: %s", v.Genome.Hex(), strings.Join(v.Violations, "; "))
			}
			if !res.UnderEnvelope() {
				dumpViolation(t, cfg, res.Best)
				t.Errorf("worst schedule beat the envelope: %d words > %d (genome %s)",
					res.Best.Words, res.Envelope, res.Best.Genome.Hex())
			}
		})
	}
}

// TestExploreDeterministic pins the reproducibility contract: the same
// Config produces a byte-identical Report at any worker count — two
// independent explorers must converge on the identical worst schedule.
func TestExploreDeterministic(t *testing.T) {
	cfg := Config{Protocol: ProtocolWBA, N: 5, F: 2, Seed: 7, Generations: 3, Population: 6}
	var reports []string
	for _, workers := range []int{1, 4} {
		c := cfg
		c.Workers = workers
		res, err := Explore(c)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, res.Report())
	}
	if reports[0] != reports[1] {
		t.Errorf("reports differ across worker counts:\n--- workers=1\n%s\n--- workers=4\n%s", reports[0], reports[1])
	}
}

// TestReplayWorstSchedule replays the reported worst genome standalone
// and checks it reproduces the exact fitness the search recorded — the
// genome dump really is a complete reproducer.
func TestReplayWorstSchedule(t *testing.T) {
	cfg := Config{Protocol: ProtocolWBA, N: 9, F: 4, Seed: 11, Generations: 3, Population: 6}
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecodeHex(res.Best.Genome.Hex())
	if err != nil {
		t.Fatalf("worst genome does not round-trip: %v", err)
	}
	o, err := ReplaySchedule(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if o.Words != res.Best.Words || o.Ticks != res.Best.Ticks {
		t.Errorf("replay: words=%d ticks=%d, search recorded words=%d ticks=%d",
			o.Words, o.Ticks, res.Best.Words, res.Best.Ticks)
	}
}

// TestExploreSearchImproves: on the richest searched grid point, breeding
// must find schedules at least as bad as the seeded heuristic — the
// final generation's best cannot be worse than the first's.
func TestExploreSearchImproves(t *testing.T) {
	res, err := Explore(Config{Protocol: ProtocolWBA, N: 9, F: 4, Seed: 3, Generations: 4, Population: 8})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Generations[0].BestWords
	last := res.Generations[len(res.Generations)-1].BestWords
	if last < first {
		t.Errorf("search regressed: generation 1 best %d words, final best %d", first, last)
	}
	if res.Best.Words < first {
		t.Errorf("overall best %d below first generation's %d", res.Best.Words, first)
	}
}

// TestCorruptedIDsMatchesAdversary: the exported slot→id mapping and the
// compiled adversary must corrupt the same processes, including slot
// collisions (probing) and budget truncation.
func TestCorruptedIDsMatchesAdversary(t *testing.T) {
	g := Genome{Corruptions: []Corrupt{
		{Slot: 3}, {Slot: 3}, {Slot: 12}, {Slot: 4}, {Slot: 200},
	}}
	const n, tt = 9, 4
	ids := CorruptedIDs(g, n, tt)
	if len(ids) != tt {
		t.Fatalf("CorruptedIDs returned %d ids, want truncation at t=%d", len(ids), tt)
	}
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	adv := NewAdversary(g, ProtocolWBA, 1, 100)
	adv.Init(sim.Env{Params: params})
	cs := adv.Corruptions()
	if len(cs) != len(ids) {
		t.Fatalf("adversary corrupts %d processes, mapping says %d", len(cs), len(ids))
	}
	seen := make(map[types.ProcessID]bool)
	for i, c := range cs {
		if c.ID != ids[i] {
			t.Errorf("corruption %d: adversary id %v, mapping id %v", i, c.ID, ids[i])
		}
		if seen[c.ID] {
			t.Errorf("duplicate corrupted id %v", c.ID)
		}
		seen[c.ID] = true
	}
}

// TestEnvelopePiecewise pins the envelope's shape: linear in f below the
// Lemma 6 threshold, cubic surcharge at and above it.
func TestEnvelopePiecewise(t *testing.T) {
	params, err := types.NewParams(17)
	if err != nil {
		t.Fatal(err)
	}
	n, tt := 17, params.T
	th := FallbackThreshold(n, tt)
	if th != 4 {
		t.Fatalf("threshold(17, %d) = %d, want 4", tt, th)
	}
	below := Envelope(n, tt, th-1)
	at := Envelope(n, tt, th)
	if below != int64(EnvelopeWords)*int64(n)*int64(th) {
		t.Errorf("below threshold: envelope %d has a surcharge", below)
	}
	wantSurcharge := int64(FallbackWords) * int64(n) * int64(n) * int64(n)
	if at-int64(EnvelopeWords)*int64(n)*int64(th+1) != wantSurcharge {
		t.Errorf("at threshold: surcharge %d, want %d", at-int64(EnvelopeWords)*int64(n)*int64(th+1), wantSurcharge)
	}
}

// TestRandomGenomesAlwaysCompile: any genome the generator can draw must
// produce a runnable schedule on both protocols (no panics, run decides).
func TestRandomGenomesAlwaysCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		g := RandomGenome(rng, 2)
		for _, p := range []Protocol{ProtocolWBA, ProtocolBB} {
			o, err := ReplaySchedule(Config{Protocol: p, N: 5, F: 2, Seed: int64(i)}, g)
			if err != nil {
				t.Fatalf("genome %s on %s: %v", g.Hex(), p, err)
			}
			if !o.Decided {
				t.Errorf("genome %s on %s: honest processes did not decide", g.Hex(), p)
			}
		}
	}
}
