package explore

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzScheduleGenome pins the genome codec's two contracts:
//
//  1. Round-trip: every byte string Decode accepts re-encodes to the
//     identical bytes — the hex dump in a report or violation file IS
//     the schedule, with no lossy normalization in between.
//  2. Mutate determinism: mutating any decoded genome with two
//     identically-seeded rngs yields identical offspring — the whole
//     search replays from its seed.
func FuzzScheduleGenome(f *testing.F) {
	// Corpus: empty schedule, the heuristic spam shape, a random draw,
	// and a mutated descendant.
	f.Add(Genome{}.Encode())
	f.Add(Genome{ShuffleSeed: -1, Corruptions: []Corrupt{
		{Slot: 1, Moves: []Move{{Op: OpProposeSpam}, {Op: OpHelpSpam}}},
		{Slot: 2, At: 3, Moves: []Move{{Op: OpEquivocate, Target: 1, Value: 7}}},
	}}.Encode())
	rng := rand.New(rand.NewSource(1))
	g := RandomGenome(rng, 4)
	f.Add(g.Encode())
	f.Add(Mutate(rng, g).Encode())
	// Malformed shapes Decode must reject without panicking.
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Decode(data)
		if err != nil {
			return // malformed input: rejection is the contract
		}
		if got := g.Encode(); !bytes.Equal(got, data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, got)
		}
		if _, err := DecodeHex(g.Hex()); err != nil {
			t.Fatalf("hex round-trip rejected: %v", err)
		}
		m1 := Mutate(rand.New(rand.NewSource(42)), g)
		m2 := Mutate(rand.New(rand.NewSource(42)), g)
		if !bytes.Equal(m1.Encode(), m2.Encode()) {
			t.Fatalf("same-seed mutation diverged:\n %x\n %x", m1.Encode(), m2.Encode())
		}
		// Mutation output must itself round-trip (offspring stay encodable).
		if _, err := Decode(m1.Encode()); err != nil {
			t.Fatalf("mutated genome does not decode: %v", err)
		}
	})
}
