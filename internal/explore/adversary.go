package explore

import (
	"math/rand"
	"sort"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/core/bb"
	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// Protocol timing constants the compiler targets. They mirror the
// machines' round layout (wba.Machine, bb.Machine) exactly as the fixed
// attack library does: weak BA phases are 5 rounds, BB vetting phases
// are 3 rounds, and BB's nested weak BA (session "wba") starts after
// round 1 + n vetting phases.
const (
	wbaRoundsPerPhase = 5
	bbRoundsPerPhase  = 3
)

// maxRecorded bounds the honest-traffic tape kept for replay/flood moves.
const maxRecorded = 4096

// action is one compiled, executable move: the genome's symbolic fields
// resolved against the run's protocol and parameters.
type action struct {
	tick  types.Tick
	from  types.ProcessID
	op    Op
	phase int         // resolved phase for phase-driven ops
	value types.Value // proposal value (wba ops)
	alt   types.Value // equivocation second face
	half  uint8       // equivocation/selective target half selector
	count int         // replay burst size
}

// Adversary executes a compiled Genome inside the simulator. One value
// drives one run; the harness factory builds a fresh Adversary per run,
// so searches can evaluate the same genome many times deterministically.
type Adversary struct {
	adversary.Core

	genome   Genome
	protocol Protocol
	rng      *rand.Rand
	maxTicks types.Tick

	actions  []action
	horizon  types.Tick
	recorded []sim.Message
	recIdx   int
	sender   types.Value // captured BB ⟨v⟩_sender envelope
}

var _ sim.Adversary = (*Adversary)(nil)

// NewAdversary builds the executable adversary for a genome. seed drives
// the replay-target choices; maxTicks is the run's tick budget (the
// harness passes it through Spec.Adversary) and bounds every compiled
// tick so a schedule can never stall the run past its natural horizon.
// A genome with no corruptions yields a nil adversary (failure-free run).
func NewAdversary(g Genome, protocol Protocol, seed int64, maxTicks types.Tick) sim.Adversary {
	if len(g.Corruptions) == 0 {
		return nil
	}
	return &Adversary{
		genome:   g,
		protocol: protocol,
		rng:      rand.New(rand.NewSource(seed)),
		maxTicks: maxTicks,
	}
}

// Init implements sim.Adversary: capture the environment, then compile
// the genome against it (slot→process mapping and tick resolution need
// n and t, which only the Env provides).
func (a *Adversary) Init(env sim.Env) {
	a.Core.Init(env)
	a.compile()
}

// compile resolves the genome into the corruption schedule and the
// sorted action list. Every byte pattern compiles: fields are reduced
// modulo the run's parameters, ops that do not apply to the protocol
// become silent genes.
func (a *Adversary) compile() {
	p := a.Env.Params
	n, t := p.N, p.T

	// The corruption horizon keeps every takeover inside the run's
	// natural length (maxTicks is already the doubled probe budget), so
	// a late-At gene delays corruption, never stalls quiescence.
	horizon := a.maxTicks / 2
	if horizon < 1 {
		horizon = 1
	}

	// Slot→process: reduce modulo n, then linear-probe to the next free
	// id, so corruption genes never collide (the simulator rejects
	// duplicate corruption of one process).
	taken := make(map[types.ProcessID]bool, len(a.genome.Corruptions))
	a.Schedule = a.Schedule[:0]
	for _, c := range a.genome.Corruptions {
		if len(a.Schedule) >= t {
			break // decode allows up to 64 genes; the run allows t
		}
		id := types.ProcessID(int(c.Slot) % n)
		for taken[id] {
			id = types.ProcessID((int(id) + 1) % n)
		}
		taken[id] = true
		at := types.Tick(c.At) % horizon
		a.Schedule = append(a.Schedule, sim.Corruption{ID: id, At: at})

		for _, m := range c.Moves {
			if act, ok := a.compileMove(m, id, at, horizon); ok {
				a.actions = append(a.actions, act)
			}
		}
	}
	sort.SliceStable(a.actions, func(i, j int) bool { return a.actions[i].tick < a.actions[j].tick })
	a.horizon = 0
	for _, act := range a.actions {
		if act.tick > a.horizon {
			a.horizon = act.tick
		}
	}
}

// compileMove resolves one move gene for corrupted process id (taken
// over at tick `at`). Returns ok=false for silent genes.
func (a *Adversary) compileMove(m Move, id types.ProcessID, at types.Tick, horizon types.Tick) (action, bool) {
	p := a.Env.Params
	act := action{
		from:  id,
		op:    m.Op,
		half:  m.Target,
		count: 1 + int(m.Count)%8,
		value: types.Value("v"),
		alt:   types.Value("w"),
	}
	if m.Value%2 == 1 {
		act.value, act.alt = types.Value("w"), types.Value("u")
	}

	// A move can never run before its process is corrupted (the simulator
	// rejects sends from not-yet-corrupted identities), so resolved ticks
	// are floored at the corruption tick.
	clamp := func(tick types.Tick) types.Tick {
		if tick < at {
			return at
		}
		return tick
	}

	switch a.protocol {
	case ProtocolWBA:
		phases := p.T + 1
		switch m.Op {
		case OpSilence:
			return act, false
		case OpProposeSpam, OpEquivocate:
			act.phase = 1 + int(m.Arg)%phases
			act.tick = clamp(types.Tick(wbaRoundsPerPhase * (act.phase - 1)))
		case OpHelpSpam:
			act.tick = clamp(types.Tick(wbaRoundsPerPhase * phases))
		case OpReplay, OpFlood:
			act.tick = clamp(types.Tick(m.Arg) % horizon)
		}
	case ProtocolBB:
		wbaStart := types.Tick(1 + bbRoundsPerPhase*p.N)
		switch m.Op {
		case OpSilence:
			return act, false
		case OpProposeSpam: // vetting-phase help request
			act.phase = 1 + int(m.Arg)%p.N
			act.tick = clamp(1 + types.Tick(bbRoundsPerPhase*(act.phase-1)))
		case OpEquivocate, OpHelpSpam: // nested weak BA spam with the captured envelope
			act.phase = 1 + int(m.Arg)%(p.T+1)
			act.tick = clamp(wbaStart + types.Tick(wbaRoundsPerPhase*(act.phase-1)))
		case OpReplay, OpFlood:
			act.tick = clamp(types.Tick(m.Arg) % horizon)
		}
	default:
		// Other protocols get the protocol-agnostic subset only.
		switch m.Op {
		case OpReplay, OpFlood:
			act.tick = clamp(types.Tick(m.Arg) % horizon)
		default:
			return act, false
		}
	}
	return act, true
}

// Observe implements sim.Adversary: BB runs capture the sender's signed
// round-1 value, the raw material for BB_valid nested-weak-BA spam.
func (a *Adversary) Observe(_ types.Tick, _ types.ProcessID, inbox []proto.Incoming) {
	if a.protocol != ProtocolBB || a.sender != nil {
		return
	}
	for _, in := range inbox {
		if sm, ok := in.Payload.(bb.SenderMsg); ok {
			a.sender = bb.EncodeSenderValue(bb.SenderValue{V: sm.V, Sig: sm.Sig})
			return
		}
	}
}

// Act implements sim.Adversary: record the rushing view for replay
// moves, then emit every action scheduled for this tick.
func (a *Adversary) Act(now types.Tick, honest []sim.Message) []sim.Message {
	a.record(honest)
	var msgs []sim.Message
	for _, act := range a.actions {
		if act.tick != now {
			continue
		}
		msgs = a.emit(msgs, act)
	}
	return msgs
}

// record appends honest traffic to the bounded tape (ring overwrite once
// full, so late traffic stays observable).
func (a *Adversary) record(honest []sim.Message) {
	for _, m := range honest {
		if len(a.recorded) < maxRecorded {
			a.recorded = append(a.recorded, m)
			continue
		}
		a.recorded[a.recIdx] = m
		a.recIdx = (a.recIdx + 1) % maxRecorded
	}
}

// emit appends the messages of one action.
func (a *Adversary) emit(msgs []sim.Message, act action) []sim.Message {
	n := a.Env.Params.N
	switch act.op {
	case OpProposeSpam:
		if a.protocol == ProtocolBB {
			for i := 0; i < n; i++ {
				msgs = append(msgs, sim.Message{
					From: act.from, To: types.ProcessID(i),
					Payload: bb.HelpReq{Phase: act.phase},
				})
			}
			return msgs
		}
		for i := 0; i < n; i++ {
			msgs = append(msgs, sim.Message{
				From: act.from, To: types.ProcessID(i),
				Payload: wba.Propose{Phase: act.phase, V: act.value},
			})
		}
	case OpEquivocate:
		if a.protocol == ProtocolBB {
			// Selective release of the (valid) sender envelope: only the
			// chosen half sees the nested proposal.
			if a.sender == nil {
				return msgs
			}
			for i := 0; i < n; i++ {
				if uint8(i)%2 != act.half%2 {
					continue
				}
				msgs = append(msgs, sim.Message{
					From: act.from, To: types.ProcessID(i), Session: "wba",
					Payload: wba.Propose{Phase: act.phase, V: a.sender},
				})
			}
			return msgs
		}
		// Two-faced leader: value to one parity class, alt to the other.
		for i := 0; i < n; i++ {
			v := act.value
			if uint8(i)%2 == act.half%2 {
				v = act.alt
			}
			msgs = append(msgs, sim.Message{
				From: act.from, To: types.ProcessID(i),
				Payload: wba.Propose{Phase: act.phase, V: v},
			})
		}
	case OpHelpSpam:
		if a.protocol == ProtocolBB {
			if a.sender == nil {
				return msgs
			}
			for i := 0; i < n; i++ {
				msgs = append(msgs, sim.Message{
					From: act.from, To: types.ProcessID(i), Session: "wba",
					Payload: wba.Propose{Phase: act.phase, V: a.sender},
				})
			}
			return msgs
		}
		share, err := a.Env.Crypto.Signer(act.from).Sign(wba.HelpReqBase("h/wba"))
		if err != nil {
			return msgs
		}
		for i := 0; i < n; i++ {
			msgs = append(msgs, sim.Message{
				From: act.from, To: types.ProcessID(i),
				Payload: wba.HelpReq{Share: share},
			})
		}
	case OpReplay:
		if len(a.recorded) == 0 {
			return msgs
		}
		for k := 0; k < act.count; k++ {
			src := a.recorded[a.rng.Intn(len(a.recorded))]
			msgs = append(msgs, sim.Message{
				From: act.from, To: types.ProcessID(a.rng.Intn(n)),
				Session: src.Session, Payload: src.Payload,
			})
		}
	case OpFlood:
		if len(a.recorded) == 0 {
			return msgs
		}
		src := a.recorded[len(a.recorded)-1]
		for i := 0; i < n; i++ {
			msgs = append(msgs, sim.Message{
				From: act.from, To: types.ProcessID(i),
				Session: src.Session, Payload: src.Payload,
			})
		}
	}
	return msgs
}

// Quiescent implements sim.Adversary: no actions remain past the last
// compiled tick (pending corruptions are tracked by the engine itself).
func (a *Adversary) Quiescent(now types.Tick) bool { return now > a.horizon }
