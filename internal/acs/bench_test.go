package acs

import (
	"fmt"
	"testing"

	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// runLockstep drives n machines through a full round with direct
// next-tick delivery (no simulator), so tests can keep ticking the
// machines past their decision.
func runLockstep(t testing.TB, machines []*Machine, budget types.Tick) types.Tick {
	t.Helper()
	n := len(machines)
	pending := make([][]proto.Incoming, n)
	route := func(from types.ProcessID, outs []proto.Outgoing) {
		for _, o := range outs {
			pending[o.To] = append(pending[o.To], proto.Incoming{
				From: from, Session: o.Session, Payload: o.Payload,
			})
		}
	}
	for i, m := range machines {
		route(types.ProcessID(i), m.Begin(0))
	}
	for now := types.Tick(1); now <= budget; now++ {
		inboxes := pending
		pending = make([][]proto.Incoming, n)
		for i, m := range machines {
			route(types.ProcessID(i), m.Tick(now, inboxes[i]))
		}
		done := true
		for _, m := range machines {
			if !m.Done() {
				done = false
				break
			}
		}
		if done {
			return now
		}
	}
	t.Fatalf("round did not finish within %d ticks", budget)
	return 0
}

// TestACSAllocCeiling is the CI allocation guard for the ACS hot path
// at n = 33: once a round has quiesced (every broadcast retired, every
// vote decided), further ticks — including ticks that deliver stale
// traffic to retired broadcast sessions — must not allocate. This pins
// the Mux bucket reuse and the machine's own tick path; a regression
// that allocates per live child costs ≥ 2n per tick here.
func TestACSAllocCeiling(t *testing.T) {
	const n = 33
	crypto, params := setup(t, n)
	machines := make([]*Machine, n)
	for i := range machines {
		machines[i] = NewMachine(Config{
			Params: params, Crypto: crypto, ID: types.ProcessID(i),
			Input: batchFor(types.ProcessID(i), 4), Tag: "t",
		})
	}
	now := runLockstep(t, machines, machines[0].MaxTicks()+4)
	for _, m := range machines {
		if m.Failed() != nil {
			t.Fatal(m.Failed())
		}
	}
	// Stale broadcast-stage traffic addressed to a retired session: the
	// late path must count it without allocating.
	stale := []proto.Incoming{
		{From: 1, Session: "b0/wba", Payload: nil},
		{From: 2, Session: "b5", Payload: nil},
	}
	m := machines[0]
	allocs := testing.AllocsPerRun(100, func() {
		now++
		m.Tick(now, stale)
	})
	if allocs >= 2 {
		t.Errorf("steady-state ACS tick allocates %.1f/op, want < 2", allocs)
	}
	if m.Late() == 0 {
		t.Error("stale traffic to retired broadcast sessions was not counted late")
	}
}

// BenchmarkACSRound measures one full ACS round end to end over the
// deterministic simulator: n proposers, `batch` requests each, so one
// round commits n×batch requests.
func BenchmarkACSRound(b *testing.B) {
	for _, n := range []int{9, 17} {
		for _, batch := range []int{1, 64} {
			b.Run(fmt.Sprintf("n=%d/batch=%d", n, batch), func(b *testing.B) {
				crypto, params := setup(b, n)
				probe := NewMachine(Config{Params: params, Crypto: crypto, ID: 0, Tag: "t"})
				budget := probe.MaxTicks() + 4
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := sim.Run(sim.Config{
						Params: params,
						Crypto: crypto,
						Factory: func(id types.ProcessID) proto.Machine {
							return NewMachine(Config{
								Params: params, Crypto: crypto, ID: id,
								Input: batchFor(id, batch), Tag: "t",
							})
						},
						MaxTicks: budget,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.TimedOut {
						b.Fatal("timed out")
					}
				}
				b.ReportMetric(float64(n*batch), "reqs/round")
			})
		}
	}
}
