// Wire encodings for the ACS layer. Two payload types cross process
// boundaries:
//
//   - acs/batch: a proposer's batch of requests. The batch rides inside
//     the BB dissemination as the broadcast value, so its bytes are fully
//     adversary-controlled — a Byzantine proposer can commit any frame it
//     likes. Decoding therefore never trusts a length prefix: counts are
//     validated against wire.MaxChunk before any allocation.
//   - acs/result: the round's committed subset (bitmap of winning
//     proposers plus their batches in ID order). It is the ACS machine's
//     canonical Output, i.e. exactly what the replicated-log driver
//     decodes and what the sim's cross-process agreement check compares
//     byte-for-byte.
//
// Both are registered in the shared payload registry (see
// transport.NewFullRegistry) so framing, sizing (Registry.SizeOf), and
// the wire corpus/fuzz suite cover them like every other message type.
package acs

import (
	"fmt"

	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

// Batch is one proposer's batch of requests for a round.
type Batch struct {
	// Cmds are the batched requests, in proposal order.
	Cmds []types.Value
}

// Type implements proto.Payload.
func (Batch) Type() string { return "acs/batch" }

// Words implements proto.Payload: a batch occupies one word per request
// (each request is one value), so per-request word cost amortizes as the
// batch grows while the envelope cost stays that of a single value.
func (b Batch) Words() int {
	if len(b.Cmds) == 0 {
		return 1
	}
	return len(b.Cmds)
}

// Result is the committed subset of one ACS round.
type Result struct {
	// Committed marks the proposers whose batches made the subset.
	Committed *types.BitSet
	// Batches are the winning batches in ascending proposer-ID order
	// (one per set bit of Committed), each an EncodeBatch frame.
	Batches []types.Value
}

// Type implements proto.Payload.
func (Result) Type() string { return "acs/result" }

// Words implements proto.Payload.
func (r Result) Words() int {
	if len(r.Batches) == 0 {
		return 1
	}
	return len(r.Batches)
}

// Requests counts the individual requests across the committed batches.
// Malformed batches (possible only for Results assembled from hostile
// bytes, never for ones built by the machine) count zero.
func (r *Result) Requests() int {
	total := 0
	for _, b := range r.Batches {
		if batch, err := DecodeBatch(b); err == nil {
			total += len(batch.Cmds)
		}
	}
	return total
}

// maxBatchCmds bounds the request count a single batch frame may claim.
// Consistent with the other decoders' wire.MaxChunk/8 list bound: a
// hostile count cannot force a large up-front allocation, because every
// request still has to materialize at least one length byte within the
// frame that was actually read (itself bounded by the transport's
// maxFrame).
const maxBatchCmds = wire.MaxChunk / 8

// RegisterWire registers this package's payload codecs.
func RegisterWire(reg *wire.Registry) {
	reg.MustRegister(
		wire.Codec{
			Type: Batch{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(Batch)
				if !ok {
					return badType(p)
				}
				w.PutInt(len(m.Cmds))
				for _, c := range m.Cmds {
					w.PutValue(c)
				}
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				n := r.Int()
				if err := r.Err(); err != nil {
					return nil, err
				}
				if n < 0 || n > maxBatchCmds {
					return nil, fmt.Errorf("acs: implausible batch length %d", n)
				}
				b := Batch{}
				if n > 0 {
					b.Cmds = make([]types.Value, 0, clampCap(n))
				}
				for i := 0; i < n; i++ {
					b.Cmds = append(b.Cmds, r.Value())
					if err := r.Err(); err != nil {
						return nil, err
					}
				}
				return b, nil
			},
		},
		wire.Codec{
			Type: Result{}.Type(),
			Encode: func(w *wire.Writer, p proto.Payload) error {
				m, ok := p.(Result)
				if !ok {
					return badType(p)
				}
				w.PutBitSet(m.Committed)
				w.PutInt(len(m.Batches))
				for _, b := range m.Batches {
					w.PutValue(b)
				}
				return nil
			},
			Decode: func(r *wire.Reader) (proto.Payload, error) {
				committed := r.BitSet()
				n := r.Int()
				if err := r.Err(); err != nil {
					return nil, err
				}
				if n < 0 || n > maxBatchCmds {
					return nil, fmt.Errorf("acs: implausible subset size %d", n)
				}
				res := Result{Committed: committed}
				if n > 0 {
					res.Batches = make([]types.Value, 0, clampCap(n))
				}
				for i := 0; i < n; i++ {
					res.Batches = append(res.Batches, r.Value())
					if err := r.Err(); err != nil {
						return nil, err
					}
				}
				return res, nil
			},
		},
	)
}

// clampCap keeps a hostile element count from pre-allocating more than a
// small constant number of slots; append grows the slice only as far as
// the frame's real bytes allow.
func clampCap(n int) int {
	const lim = 64
	if n > lim {
		return lim
	}
	return n
}

// selfReg frames this package's own payloads for value-level encoding.
var selfReg = func() *wire.Registry {
	r := wire.NewRegistry()
	RegisterWire(r)
	return r
}()

// EncodeBatch frames cmds as an acs/batch value — the bytes a proposer
// hands to its BB instance. An empty batch encodes non-⊥, so an honest
// proposer with nothing to propose still wins its vote (and contributes
// zero requests) instead of being mistaken for a faulty one.
func EncodeBatch(cmds []types.Value) types.Value {
	buf, err := selfReg.EncodePayload(Batch{Cmds: cmds})
	if err != nil {
		panic("acs: batch encoding cannot fail: " + err.Error())
	}
	return types.Value(buf)
}

// DecodeBatch parses an EncodeBatch frame. Hostile frames (a Byzantine
// proposer controls these bytes end to end) fail cleanly without large
// allocations.
func DecodeBatch(v types.Value) (*Batch, error) {
	p, err := selfReg.DecodePayload(v)
	if err != nil {
		return nil, fmt.Errorf("acs: decode batch: %w", err)
	}
	b, ok := p.(Batch)
	if !ok {
		return nil, fmt.Errorf("acs: decode batch: unexpected payload type %q", p.Type())
	}
	return &b, nil
}

// EncodeResult frames the round's committed subset as an acs/result
// value — the ACS machine's canonical Output.
func EncodeResult(res *Result) types.Value {
	buf, err := selfReg.EncodePayload(*res)
	if err != nil {
		panic("acs: result encoding cannot fail: " + err.Error())
	}
	return types.Value(buf)
}

// DecodeResult parses an EncodeResult frame.
func DecodeResult(v types.Value) (*Result, error) {
	p, err := selfReg.DecodePayload(v)
	if err != nil {
		return nil, fmt.Errorf("acs: decode result: %w", err)
	}
	r, ok := p.(Result)
	if !ok {
		return nil, fmt.Errorf("acs: decode result: unexpected payload type %q", p.Type())
	}
	return &r, nil
}

func badType(p proto.Payload) error {
	return fmt.Errorf("acs: unexpected payload %T", p)
}
