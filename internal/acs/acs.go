// Package acs implements a BKR-style Agreement on Common Subset round
// (Ben-Or–Kelmer–Rabin, PODC '94 — the n-proposer batching architecture
// behind HoneyBadgerBFT-family systems) on top of the paper's
// primitives: each of the n processes proposes a batch of requests, n
// concurrent adaptive-BB instances disseminate the batches, and n
// binary strong-BA votes (1 iff the corresponding BB delivered a batch)
// decide the committed subset. The winning batches, concatenated in
// ascending proposer-ID order, form one log entry — so one round
// commits up to n×batch requests for one round's words, amortizing the
// per-request word cost by the batch size.
//
// # Synchronous port of the BKR coupling rule
//
// Asynchronous BKR inputs 1 to BA_i the moment BB_i delivers, and once
// n−t BAs have decided 1 it inputs 0 to the rest (the coupling rule
// that guarantees termination and |subset| ≥ n−t). A lock-step port
// cannot stagger BA starts per process — the round clocks of a BA
// instance must anchor at the same tick on every correct process or its
// quorum rounds shear apart. This machine therefore places ONE vote
// boundary at BB's worst-case bound (bb.MaxTicks), where synchrony
// guarantees every honest process has decided every BB instance — the
// ≥ n−t honest proposers' BBs unanimously non-⊥, the rest unanimously
// agreed (possibly ⊥). At that boundary the coupling rule is applied
// degenerately: the ≥ n−t delivered indices get 1-votes and every
// remaining index is voted 0 immediately rather than waited on. Honest
// votes are unanimous per index, so strong unanimity pins every BA's
// outcome and the committed subset has ≥ n−t members — and because the
// subset is pinned by unanimity, no process can see BA_i = 1 without
// holding batch i, which is why this port needs no post-vote batch
// fetch protocol.
//
// Config.Early restores the spirit of the asynchronous coupling rule:
// vote v_i starts the tick b_i decides (BB decisions are simultaneous
// across honest processes under crash faults — certificate- or
// fallback-schedule-driven — so the staggered anchors stay lockstep),
// with the conservative boundary kept as the sweep point for broadcasts
// that never decide. Decisions and word counts are identical in both
// modes; Early only shortens the round.
//
// The BB children are retired at the vote boundary (their bucket
// returns to the mux free list, mirroring the engine's own session
// retirement); any batch-dissemination traffic arriving after the
// boundary — e.g. replayed by an adversary — is counted by Late(), not
// silently dropped, and surfaces in the engine's EngineLate metric.
package acs

import (
	"fmt"
	"strconv"

	"adaptiveba/internal/core/bb"
	"adaptiveba/internal/core/strongba"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

// Config parameterizes one ACS round for one process.
type Config struct {
	Params types.Params
	Crypto *proto.Crypto
	ID     types.ProcessID
	// Input is this process's proposed batch, pre-framed by EncodeBatch.
	// nil proposes an empty batch (still a non-⊥ broadcast, so an idle
	// proposer wins its vote with zero requests).
	Input types.Value
	// Tag domain-separates this round's signatures; child i signs under
	// Tag+"/b<i>" (broadcast) and Tag+"/v<i>" (vote).
	Tag string
	// Early switches to the early-stopping vote boundary: vote v_i
	// starts the tick broadcast b_i decides (and b_i retires then),
	// instead of waiting for the conservative bb.MaxTicks boundary.
	// Under crash faults every honest process observes each b_i's
	// decision at the same tick (BB decisions are certificate- or
	// fallback-schedule-driven, both simultaneous), so the staggered
	// vote anchors stay lockstep-consistent and the BKR coupling rule is
	// preserved per index: 1 iff b_i delivered a batch. Broadcasts still
	// undecided at the conservative boundary are swept there with
	// 0-votes, and the ≥ n−t delivered check fires at whichever point
	// closes the vote stage. Decisions, words, and messages are
	// identical to the conservative boundary; only the round's latency
	// changes. Default off (the engine's Eager scheduler turns it on).
	Early bool
}

// Machine implements proto.Machine for one ACS round.
type Machine struct {
	cfg    Config
	mux    *proto.Mux
	bcasts []*bb.Machine       // retained past retirement for output reads
	votes  []*strongba.Machine // nil until the vote boundary
	vsubs  []*proto.Sub

	start    types.Tick
	voteTick types.Tick
	bbTicks  types.Tick
	baTicks  types.Tick

	batches   []types.Value // BB outputs captured when each vote starts
	committed *types.BitSet

	delivered    int  // broadcasts captured non-⊥ (vote input 1)
	startedVotes int  // votes opened so far
	voting       bool // every vote started; the broadcast stage is closed
	decided      bool
	decision     types.Value

	decidedAtTick types.Tick
	err           error
}

var _ proto.Machine = (*Machine)(nil)

// NewMachine builds the ACS machine. The schedule (vote boundary, total
// budget) is a pure function of Params, so every correct process
// transitions in lockstep regardless of its batch.
func NewMachine(cfg Config) *Machine {
	m := &Machine{cfg: cfg, mux: proto.NewMux()}
	m.bbTicks = bb.NewMachine(m.bbConfig(0)).MaxTicks()
	probe, err := strongba.NewMachine(m.baConfig(0, types.Zero))
	if err != nil {
		// Unreachable: the input is canonical binary and leader 0 is
		// always a valid process.
		m.fail(err)
		m.baTicks = m.bbTicks
	} else {
		m.baTicks = probe.MaxTicks()
	}
	return m
}

// MaxTicks conservatively bounds a full round for scheduler budgets:
// the broadcast stage runs to BB's worst case, the vote stage to strong
// BA's (which already absorbs a crashed vote leader's fallback).
func (m *Machine) MaxTicks() types.Tick { return m.bbTicks + m.baTicks + 4 }

// VoteBoundary returns the round-relative tick at which broadcasts are
// closed out and the vote stage starts (for tests and adversaries that
// target the retirement edge).
func (m *Machine) VoteBoundary() types.Tick { return m.bbTicks }

// Committed returns the decided subset as a bitmap of winning proposers
// (nil until decided).
func (m *Machine) Committed() *types.BitSet { return m.committed }

// Late counts messages that arrived for retired broadcast sessions or
// unknown sessions — the ACS-level contribution to EngineLate.
func (m *Machine) Late() int64 { return m.mux.Late() + m.mux.Unrouted() }

// RanFallback reports whether any vote instance executed A_fallback on
// this process (e.g. because a crashed proposer was that vote's leader).
func (m *Machine) RanFallback() bool {
	for _, v := range m.votes {
		if v != nil && v.RanFallback() {
			return true
		}
	}
	return false
}

// DecidedAtTick reports when (in δ ticks) this process decided.
func (m *Machine) DecidedAtTick() types.Tick { return m.decidedAtTick }

// Failed returns the first internal error (for tests).
func (m *Machine) Failed() error { return m.err }

// Begin implements proto.Machine: all n broadcast instances start at
// once, each under its own session ("b<i>") and signature domain.
func (m *Machine) Begin(now types.Tick) []proto.Outgoing {
	m.start = now
	m.voteTick = now + m.bbTicks
	n := m.cfg.Params.N
	m.bcasts = make([]*bb.Machine, n)
	m.batches = make([]types.Value, n)
	m.votes = make([]*strongba.Machine, n)
	m.vsubs = make([]*proto.Sub, n)
	var outs []proto.Outgoing
	for i := 0; i < n; i++ {
		child := bb.NewMachine(m.bbConfig(types.ProcessID(i)))
		m.bcasts[i] = child
		outs = append(outs, m.mux.Add(bName(i), child).Begin(now)...)
	}
	return outs
}

// Tick implements proto.Machine.
func (m *Machine) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	outs := m.mux.Tick(now, inbox)
	if !m.voting {
		if m.cfg.Early {
			outs = m.startReadyVotes(now, outs)
		}
		if !m.voting && now >= m.voteTick {
			outs = m.closeVotes(now, outs)
		}
	}
	if m.voting && !m.decided {
		m.finish(now)
	}
	return outs
}

// startReadyVotes (Early mode) opens vote v_i the tick b_i decides: the
// output is captured, b_i retires (stragglers count as late from here
// on), and the vote begins anchored at now — the same tick on every
// honest process, because BB decisions are simultaneous under crash
// faults. Once all n votes are open the vote stage is sealed early.
func (m *Machine) startReadyVotes(now types.Tick, prior []proto.Outgoing) []proto.Outgoing {
	outs := prior
	for i, child := range m.bcasts {
		if m.vsubs[i] != nil {
			continue
		}
		v, ok := child.Output()
		if !ok {
			continue
		}
		if !v.IsBottom() {
			m.batches[i] = v
			m.delivered++
		}
		if err := child.Failed(); err != nil {
			m.fail(err)
		}
		m.mux.Retire(bName(i))
		outs = m.startVote(i, now, outs)
	}
	if m.startedVotes == m.cfg.Params.N {
		m.sealVotes()
	}
	return outs
}

// closeVotes closes the broadcast stage at the conservative boundary:
// every remaining BB output is captured (undecided ones vote 0 outright
// — the BKR coupling rule applied degenerately, since synchrony
// guarantees ≥ n−t honest proposers' BBs have delivered by now), the
// remaining broadcast sessions retire, and the remaining votes begin.
func (m *Machine) closeVotes(now types.Tick, prior []proto.Outgoing) []proto.Outgoing {
	outs := prior
	for i, child := range m.bcasts {
		if m.vsubs[i] != nil {
			continue
		}
		if v, ok := child.Output(); ok && !v.IsBottom() {
			m.batches[i] = v
			m.delivered++
		}
		if err := child.Failed(); err != nil {
			m.fail(err)
		}
		m.mux.Retire(bName(i))
		outs = m.startVote(i, now, outs)
	}
	m.sealVotes()
	return outs
}

// startVote opens vote i — led by proposer i, input 1 iff b_i delivered
// a batch — under its own session and signature domain.
func (m *Machine) startVote(i int, now types.Tick, prior []proto.Outgoing) []proto.Outgoing {
	m.startedVotes++
	input := types.Zero
	if m.batches[i] != nil {
		input = types.One
	}
	child, err := strongba.NewMachine(m.baConfig(types.ProcessID(i), input))
	if err != nil {
		m.fail(err)
		return prior
	}
	m.votes[i] = child
	sub := m.mux.Add(vName(i), child)
	m.vsubs[i] = sub
	return append(prior, sub.Begin(now)...)
}

// sealVotes marks the vote stage fully open and applies the ≥ n−t
// loud-failure check on the delivered count.
func (m *Machine) sealVotes() {
	m.voting = true
	if min := m.cfg.Params.N - m.cfg.Params.T; m.delivered < min {
		m.fail(fmt.Errorf("only %d of %d broadcasts delivered by the vote boundary (fault model exceeded)", m.delivered, min))
	}
}

// finish concludes the round once every vote has decided: the committed
// subset is the 1-voted indices, and the output is the canonical
// acs/result frame — winning batches concatenated in ascending
// proposer-ID order. Strong unanimity over unanimous honest votes makes
// both the subset and the batch bytes identical on every honest
// process.
func (m *Machine) finish(now types.Tick) {
	for _, sub := range m.vsubs {
		if sub == nil || !sub.Done() {
			return
		}
	}
	n := m.cfg.Params.N
	committed := types.NewBitSet(n)
	var batches []types.Value
	for i := 0; i < n; i++ {
		v, ok := m.votes[i].Output()
		if !ok || !v.Equal(types.One) {
			continue
		}
		committed.Add(types.ProcessID(i))
		batch := m.batches[i]
		if batch == nil {
			// A 1-decision for a batch this process never saw delivered
			// is impossible under ≤t faults (unanimous 0-votes pin the
			// BA at 0); commit a deterministic empty batch if the fault
			// model is exceeded rather than diverging on nil.
			batch = EncodeBatch(nil)
		}
		batches = append(batches, batch)
	}
	m.committed = committed
	m.decision = EncodeResult(&Result{Committed: committed, Batches: batches})
	m.decided = true
	m.decidedAtTick = now
}

// Output implements proto.Machine: the EncodeResult frame of the
// committed subset.
func (m *Machine) Output() (types.Value, bool) { return m.decision, m.decided }

// Done implements proto.Machine.
func (m *Machine) Done() bool { return m.decided && m.mux.Done() }

func (m *Machine) bbConfig(sender types.ProcessID) bb.Config {
	cfg := bb.Config{
		Params: m.cfg.Params, Crypto: m.cfg.Crypto, ID: m.cfg.ID,
		Sender: sender, Tag: m.cfg.Tag + "/" + bName(int(sender)),
	}
	if m.cfg.ID == sender {
		cfg.Input = m.cfg.Input
		if cfg.Input == nil {
			cfg.Input = EncodeBatch(nil)
		}
	}
	return cfg
}

func (m *Machine) baConfig(idx types.ProcessID, input types.Value) strongba.Config {
	return strongba.Config{
		Params: m.cfg.Params, Crypto: m.cfg.Crypto, ID: m.cfg.ID,
		Input: input, Leader: idx, Tag: m.cfg.Tag + "/" + vName(int(idx)),
	}
}

func bName(i int) string { return "b" + strconv.Itoa(i) }
func vName(i int) string { return "v" + strconv.Itoa(i) }

func (m *Machine) fail(err error) {
	if m.err == nil {
		m.err = fmt.Errorf("acs %v: %w", m.cfg.ID, err)
	}
}
