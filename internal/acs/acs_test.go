package acs

import (
	"fmt"
	"testing"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

func setup(t testing.TB, n int) (*proto.Crypto, types.Params) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("acs-test"))
	if err != nil {
		t.Fatal(err)
	}
	return proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d")), params
}

// batchFor builds proposer id's batch: `size` synthetic SET commands.
func batchFor(id types.ProcessID, size int) types.Value {
	if size == 0 {
		return nil
	}
	cmds := make([]types.Value, 0, size)
	for j := 0; j < size; j++ {
		cmds = append(cmds, types.Value(fmt.Sprintf("SET p%d-%d v%d", id, j, j)))
	}
	return EncodeBatch(cmds)
}

func run(t testing.TB, n, batch, workers int, adv sim.Adversary) (*sim.Result, map[types.ProcessID]*Machine) {
	t.Helper()
	crypto, params := setup(t, n)
	machines := make(map[types.ProcessID]*Machine)
	probe := NewMachine(Config{Params: params, Crypto: crypto, ID: 0, Tag: "t"})
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m := NewMachine(Config{
				Params: params,
				Crypto: crypto,
				ID:     id,
				Input:  batchFor(id, batch),
				Tag:    "t",
			})
			machines[id] = m
			return m
		},
		Adversary: adv,
		MaxTicks:  probe.MaxTicks() + 4,
		Workers:   workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, machines
}

func checkHonestClean(t *testing.T, res *sim.Result, machines map[types.ProcessID]*Machine) {
	t.Helper()
	honest := make(map[types.ProcessID]bool, len(res.Honest))
	for _, id := range res.Honest {
		honest[id] = true
	}
	for id, m := range machines {
		if honest[id] && m.Failed() != nil {
			t.Fatalf("machine %v: %v", id, m.Failed())
		}
	}
}

func TestACSFailureFree(t *testing.T) {
	for _, n := range []int{5, 9} {
		const batch = 4
		res, machines := run(t, n, batch, 1, nil)
		checkHonestClean(t, res, machines)
		if res.TimedOut {
			t.Fatalf("n=%d: timed out after %d ticks", n, res.Ticks)
		}
		if !res.AllDecided() {
			t.Fatalf("n=%d: not all decided", n)
		}
		v, ok := res.Agreement()
		if !ok {
			t.Fatalf("n=%d: honest decisions disagree", n)
		}
		result, err := DecodeResult(v)
		if err != nil {
			t.Fatalf("n=%d: decode result: %v", n, err)
		}
		if got := result.Committed.Count(); got != n {
			t.Errorf("n=%d: committed %d proposers, want all %d", n, got, n)
		}
		if got, want := result.Requests(), n*batch; got != want {
			t.Errorf("n=%d: committed %d requests, want %d", n, got, want)
		}
		if len(result.Batches) != n {
			t.Errorf("n=%d: %d batches, want %d", n, len(result.Batches), n)
		}
	}
}

// TestACSCrashedProposers drives a round with crashed proposers: the
// committed subset must exclude exactly the crashed senders and retain
// all ≥ n−t honest ones, and every honest process must decide the same
// result bytes.
func TestACSCrashedProposers(t *testing.T) {
	const n, batch = 7, 3
	crashed := []types.ProcessID{1, 2, 3} // t = 3 crashes
	res, machines := run(t, n, batch, 1, adversary.NewCrash(crashed...))
	checkHonestClean(t, res, machines)
	if res.TimedOut {
		t.Fatalf("timed out after %d ticks", res.Ticks)
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("honest decisions disagree")
	}
	result, err := DecodeResult(v)
	if err != nil {
		t.Fatal(err)
	}
	params, _ := types.NewParams(n)
	if got, min := result.Committed.Count(), params.N-params.T; got < min {
		t.Errorf("committed subset %d < n-t = %d", got, min)
	}
	for _, id := range crashed {
		if result.Committed.Has(id) {
			t.Errorf("crashed proposer %v committed", id)
		}
	}
	for _, id := range res.Honest {
		if !result.Committed.Has(id) {
			t.Errorf("honest proposer %v not committed", id)
		}
	}
	if got, want := result.Requests(), (n-len(crashed))*batch; got != want {
		t.Errorf("committed %d requests, want %d", got, want)
	}
}

// TestACSEmptyBatch checks that a proposer with nothing to propose still
// wins its vote (empty batch, zero requests) instead of reading as
// faulty.
func TestACSEmptyBatch(t *testing.T) {
	const n = 5
	crypto, params := setup(t, n)
	probe := NewMachine(Config{Params: params, Crypto: crypto, ID: 0, Tag: "t"})
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			var input types.Value // proposer 0 proposes nothing
			if id != 0 {
				input = batchFor(id, 2)
			}
			return NewMachine(Config{Params: params, Crypto: crypto, ID: id, Input: input, Tag: "t"})
		},
		MaxTicks: probe.MaxTicks() + 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("honest decisions disagree")
	}
	result, err := DecodeResult(v)
	if err != nil {
		t.Fatal(err)
	}
	if got := result.Committed.Count(); got != n {
		t.Errorf("committed %d proposers, want all %d (empty batch must still win)", got, n)
	}
	if got, want := result.Requests(), (n-1)*2; got != want {
		t.Errorf("committed %d requests, want %d", got, want)
	}
}

// TestACSDeterministicAcrossWorkers pins the CI determinism contract:
// the decided result bytes are identical at every per-tick worker
// count.
func TestACSDeterministicAcrossWorkers(t *testing.T) {
	const n, batch = 9, 2
	var base types.Value
	for _, workers := range []int{1, 2, 8} {
		res, machines := run(t, n, batch, workers, adversary.NewCrash(1))
		checkHonestClean(t, res, machines)
		v, ok := res.Agreement()
		if !ok {
			t.Fatalf("workers=%d: honest decisions disagree", workers)
		}
		if workers == 1 {
			base = v
			continue
		}
		if !v.Equal(base) {
			t.Errorf("workers=%d: decision differs from serial run", workers)
		}
	}
}

// TestACSLateBroadcastTraffic replays stale broadcast-stage traffic past
// the vote boundary: the round must still commit ≥ n−t batches, and the
// replayed messages must surface in Late() rather than vanish.
func TestACSLateBroadcastTraffic(t *testing.T) {
	const n, batch = 7, 2
	crypto, params := setup(t, n)
	probe := NewMachine(Config{Params: params, Crypto: crypto, ID: 0, Tag: "t"})
	horizon := probe.VoteBoundary() + 8 // replay well past BB retirement
	machines := make(map[types.ProcessID]*Machine)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m := NewMachine(Config{Params: params, Crypto: crypto, ID: id, Input: batchFor(id, batch), Tag: "t"})
			machines[id] = m
			return m
		},
		Adversary: adversary.NewReplay(42, horizon, 1),
		MaxTicks:  probe.MaxTicks() + 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatalf("timed out after %d ticks", res.Ticks)
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("honest decisions disagree")
	}
	result, err := DecodeResult(v)
	if err != nil {
		t.Fatal(err)
	}
	if got, min := result.Committed.Count(), params.N-params.T; got < min {
		t.Errorf("committed subset %d < n-t = %d", got, min)
	}
	var late int64
	for _, id := range res.Honest {
		late += machines[id].Late()
	}
	if late == 0 {
		t.Error("replayed broadcast traffic past the vote boundary was not counted late")
	}
}
