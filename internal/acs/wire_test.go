package acs

import (
	"bytes"
	"testing"

	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

func TestBatchRoundTrip(t *testing.T) {
	cases := [][]types.Value{
		nil,
		{types.Value("SET a 1")},
		{types.Value("SET a 1"), types.Value("DEL b"), types.Value("CAS c 1 2")},
	}
	for _, cmds := range cases {
		enc := EncodeBatch(cmds)
		got, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("decode %d cmds: %v", len(cmds), err)
		}
		if len(got.Cmds) != len(cmds) {
			t.Fatalf("round trip %d cmds -> %d", len(cmds), len(got.Cmds))
		}
		for i := range cmds {
			if !got.Cmds[i].Equal(cmds[i]) {
				t.Errorf("cmd %d: %q != %q", i, got.Cmds[i], cmds[i])
			}
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	committed := types.NewBitSet(7)
	committed.Add(0)
	committed.Add(3)
	committed.Add(6)
	res := &Result{
		Committed: committed,
		Batches: []types.Value{
			EncodeBatch([]types.Value{types.Value("SET a 1")}),
			EncodeBatch(nil),
			EncodeBatch([]types.Value{types.Value("DEL b"), types.Value("DEL c")}),
		},
	}
	enc := EncodeResult(res)
	got, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Committed.Equal(committed) {
		t.Errorf("committed %v != %v", got.Committed, committed)
	}
	if len(got.Batches) != 3 {
		t.Fatalf("%d batches, want 3", len(got.Batches))
	}
	for i := range res.Batches {
		if !got.Batches[i].Equal(res.Batches[i]) {
			t.Errorf("batch %d differs", i)
		}
	}
	if got.Requests() != 3 {
		t.Errorf("requests %d, want 3", got.Requests())
	}
}

// TestDecodeBatchHostileLength pins the allocation guard: a frame
// claiming an enormous command count must fail cleanly instead of
// allocating storage for the claim.
func TestDecodeBatchHostileLength(t *testing.T) {
	w := wire.NewWriter()
	w.PutString(Batch{}.Type())
	w.PutInt(1 << 40) // claimed count far beyond maxBatchCmds
	if _, err := DecodeBatch(types.Value(w.Bytes())); err == nil {
		t.Error("hostile batch length decoded without error")
	}

	w = wire.NewWriter()
	w.PutString(Batch{}.Type())
	w.PutInt(maxBatchCmds) // within the cap, but the frame holds no data
	if _, err := DecodeBatch(types.Value(w.Bytes())); err == nil {
		t.Error("truncated batch decoded without error")
	}
}

func TestDecodeResultHostileLength(t *testing.T) {
	w := wire.NewWriter()
	w.PutString(Result{}.Type())
	w.PutBitSet(types.NewBitSet(3))
	w.PutInt(1 << 40)
	if _, err := DecodeResult(types.Value(w.Bytes())); err == nil {
		t.Error("hostile subset size decoded without error")
	}
}

func TestDecodeRejectsWrongType(t *testing.T) {
	if _, err := DecodeBatch(EncodeResult(&Result{Committed: types.NewBitSet(3)})); err == nil {
		t.Error("DecodeBatch accepted an acs/result frame")
	}
	if _, err := DecodeResult(EncodeBatch(nil)); err == nil {
		t.Error("DecodeResult accepted an acs/batch frame")
	}
}

// FuzzDecodeBatch feeds arbitrary bytes to the batch decoder: it must
// never panic nor allocate proportionally to a hostile claimed length,
// and everything it accepts must re-encode to the same bytes.
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte(EncodeBatch(nil)))
	f.Add([]byte(EncodeBatch([]types.Value{types.Value("SET a 1"), types.Value("DEL b")})))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(types.Value(data))
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeBatch(b.Cmds), data) {
			t.Errorf("accepted batch frame is not canonical: %x", data)
		}
	})
}

// FuzzDecodeResult is the same contract for the result decoder.
func FuzzDecodeResult(f *testing.F) {
	committed := types.NewBitSet(5)
	committed.Add(1)
	f.Add([]byte(EncodeResult(&Result{Committed: committed, Batches: []types.Value{EncodeBatch(nil)}})))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResult(types.Value(data))
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeResult(r), data) {
			t.Errorf("accepted result frame is not canonical: %x", data)
		}
		r.Requests() // must not panic on arbitrary inner batches
	})
}
