package echobb

import (
	"fmt"

	"adaptiveba/internal/proto"
	"adaptiveba/internal/wire"
)

// RegisterWire registers this package's payload codecs.
func RegisterWire(reg *wire.Registry) {
	reg.MustRegister(wire.Codec{
		Type: Echo{}.Type(),
		Encode: func(w *wire.Writer, p proto.Payload) error {
			m, ok := p.(Echo)
			if !ok {
				return fmt.Errorf("echobb: unexpected payload %T", p)
			}
			w.PutValue(m.V)
			w.PutSig(m.Sig)
			return nil
		},
		Decode: func(r *wire.Reader) (proto.Payload, error) {
			return Echo{V: r.Value(), Sig: r.Sig()}, r.Err()
		},
	})
}
