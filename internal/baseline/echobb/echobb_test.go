package echobb

import (
	"testing"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

func setup(t *testing.T, n int) (*proto.Crypto, types.Params) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("echo-test"))
	if err != nil {
		t.Fatal(err)
	}
	return proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d")), params
}

func factory(crypto *proto.Crypto, params types.Params, sender types.ProcessID, input types.Value) func(types.ProcessID) proto.Machine {
	return func(id types.ProcessID) proto.Machine {
		return NewMachine(Config{
			Params: params, Crypto: crypto, ID: id,
			Sender: sender, Input: input, Tag: "e",
		})
	}
}

func TestCorrectSender(t *testing.T) {
	crypto, params := setup(t, 9)
	res, err := sim.Run(sim.Config{
		Params:   params,
		Crypto:   crypto,
		Factory:  factory(crypto, params, 0, types.Value("v")),
		MaxTicks: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("v")) {
		t.Errorf("decided %v (%v)", v, ok)
	}
}

func TestCrashedSenderBottom(t *testing.T) {
	crypto, params := setup(t, 9)
	res, err := sim.Run(sim.Config{
		Params:    params,
		Crypto:    crypto,
		Factory:   factory(crypto, params, 0, types.Value("v")),
		Adversary: adversary.NewCrash(0),
		MaxTicks:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Agreement()
	if !ok || !v.IsBottom() {
		t.Errorf("decided %v (%v), want ⊥", v, ok)
	}
}

func TestValidityUnderFollowerCrashes(t *testing.T) {
	crypto, params := setup(t, 9) // t=4
	res, err := sim.Run(sim.Config{
		Params:    params,
		Crypto:    crypto,
		Factory:   factory(crypto, params, 0, types.Value("v")),
		Adversary: adversary.NewCrash(3, 4, 5, 6),
		MaxTicks:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("v")) {
		t.Errorf("decided %v (%v), want v with f=t follower crashes", v, ok)
	}
}

func TestQuadraticCostEvenFailureFree(t *testing.T) {
	// The point of this baseline: words ~ n² regardless of f.
	for _, n := range []int{11, 21, 41} {
		crypto, params := setup(t, n)
		res, err := sim.Run(sim.Config{
			Params:   params,
			Crypto:   crypto,
			Factory:  factory(crypto, params, 0, types.Value("v")),
			MaxTicks: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		words := res.Report.Honest.Words
		if words < int64(n*(n-1)) || words > int64(3*n*n) {
			t.Errorf("n=%d: words = %d, want ~n²", n, words)
		}
	}
}

func TestNoForgedValueDecidable(t *testing.T) {
	// A Byzantine non-sender cannot make anyone decide a value the sender
	// never signed: echoes carry the sender's signature.
	crypto, params := setup(t, 5)
	res, err := sim.Run(sim.Config{
		Params:    params,
		Crypto:    crypto,
		Factory:   factory(crypto, params, 0, types.Value("v")),
		Adversary: adversary.NewReplay(3, 50, 2),
		MaxTicks:  200,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("v")) {
		t.Errorf("decided %v (%v)", v, ok)
	}
}
