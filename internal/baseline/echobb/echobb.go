// Package echobb is a simple always-quadratic authenticated broadcast
// baseline: the sender disseminates its signed value, every process echoes
// the signed value to everyone, and a process decides a value once it sees
// t+1 echoes of a single sender-signed value within two rounds (otherwise
// ⊥). It is the "obvious" O(n²)-word protocol a practitioner would write
// first; the experiments contrast its flat quadratic cost with the
// adaptive BB's O(n(f+1)).
//
// Correctness caveat (intentional, documented): unlike Dolev–Strong, this
// two-round echo protocol does NOT solve full Byzantine Broadcast — a
// Byzantine sender can split correct processes between a value and ⊥.
// It does guarantee validity (a correct sender's value is decided by all)
// and it never decides a non-sender value. It exists purely as a cost
// baseline for failure-free and crash runs, where it is correct.
package echobb

import (
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

// signBase is what the sender signs.
func signBase(tag string, sender types.ProcessID, v types.Value) []byte {
	w := wire.NewWriter()
	w.PutString("echobb")
	w.PutString(tag)
	w.PutProcess(sender)
	w.PutValue(v)
	return w.Bytes()
}

// Echo carries the sender-signed value, either from the sender itself
// (round 1) or echoed by a peer (round 2).
type Echo struct {
	V   types.Value
	Sig sig.Signature // the sender's signature
}

// Type implements proto.Payload.
func (Echo) Type() string { return "echobb/echo" }

// Words implements proto.Payload.
func (Echo) Words() int { return 1 }

// Config parameterizes one instance for one process.
type Config struct {
	Params types.Params
	Crypto *proto.Crypto
	ID     types.ProcessID
	Sender types.ProcessID
	Input  types.Value // used when ID == Sender
	Tag    string
}

// Machine implements the echo broadcast.
type Machine struct {
	cfg    Config
	clock  proto.RoundClock
	echoed bool
	// counts tracks, per value, the distinct processes that echoed it.
	counts   map[string]*types.BitSet
	sigs     map[string]sig.Signature
	decided  bool
	decision types.Value
}

var _ proto.Machine = (*Machine)(nil)

// NewMachine builds the machine.
func NewMachine(cfg Config) *Machine {
	return &Machine{
		cfg:    cfg,
		counts: make(map[string]*types.BitSet),
		sigs:   make(map[string]sig.Signature),
	}
}

// Begin implements proto.Machine.
func (m *Machine) Begin(now types.Tick) []proto.Outgoing {
	m.clock = proto.NewRoundClock(now, 1)
	if m.cfg.ID != m.cfg.Sender {
		return nil
	}
	s, err := m.cfg.Crypto.Signer(m.cfg.ID).Sign(signBase(m.cfg.Tag, m.cfg.Sender, m.cfg.Input))
	if err != nil {
		return nil
	}
	return proto.Broadcast(m.cfg.Params, "", Echo{V: m.cfg.Input, Sig: s})
}

// Tick implements proto.Machine.
func (m *Machine) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	var outs []proto.Outgoing
	for _, in := range inbox {
		e, ok := in.Payload.(Echo)
		if !ok || m.decided {
			continue
		}
		if !m.cfg.Crypto.Scheme.Verify(m.cfg.Sender, signBase(m.cfg.Tag, m.cfg.Sender, e.V), e.Sig) {
			continue
		}
		key := string(e.V)
		if m.counts[key] == nil {
			m.counts[key] = types.NewBitSet(m.cfg.Params.N)
			m.sigs[key] = e.Sig.Clone()
		}
		m.counts[key].Add(in.From)
		// Echo the first sender-signed value seen, once.
		if !m.echoed {
			m.echoed = true
			outs = append(outs, proto.Broadcast(m.cfg.Params, "", Echo{V: e.V, Sig: e.Sig})...)
		}
	}
	if r, ok := m.clock.BoundaryAt(now); ok && r >= 4 && !m.decided {
		// Echoes from round 2 have arrived by round 3's end; decide at 4.
		m.decided = true
		best := ""
		bestCount := 0
		for k, set := range m.counts {
			if c := set.Count(); c > bestCount || (c == bestCount && k < best) {
				best, bestCount = k, c
			}
		}
		if bestCount >= m.cfg.Params.SmallQuorum() {
			m.decision = types.Value(best).Clone()
		}
	}
	return outs
}

// Output implements proto.Machine.
func (m *Machine) Output() (types.Value, bool) { return m.decision, m.decided }

// Done implements proto.Machine.
func (m *Machine) Done() bool { return m.decided }

// SigCount implements proto.SigCarrier.
func (Echo) SigCount() int { return 1 }
