package floodset

import (
	"fmt"
	"testing"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

func run(t *testing.T, n int, adv sim.Adversary, input func(types.ProcessID) types.Value) (*sim.Result, map[types.ProcessID]*Machine) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	// FloodSet is unauthenticated; the crypto suite is only engine plumbing.
	ring, err := sig.NewHMACRing(n, []byte("fs"))
	if err != nil {
		t.Fatal(err)
	}
	crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))
	machines := make(map[types.ProcessID]*Machine)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m := NewMachine(Config{Params: params, ID: id, Input: input(id)})
			machines[id] = m
			return m
		},
		Adversary: adv,
		MaxTicks:  types.Tick(4*n + 40),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, machines
}

func TestFailureFreeDecidesFast(t *testing.T) {
	res, machines := run(t, 9, nil, func(id types.ProcessID) types.Value {
		return types.Value(fmt.Sprintf("v%d", id))
	})
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("v0")) {
		t.Errorf("decided %v (%v), want min v0", v, ok)
	}
	// Early stopping: with f=0 everything converges after 2 rounds, far
	// below the worst case t+1 = 5.
	for id, m := range machines {
		if m.Rounds() > 3 {
			t.Errorf("%v used %d rounds at f=0", id, m.Rounds())
		}
	}
}

func TestUnanimity(t *testing.T) {
	res, _ := run(t, 5, nil, func(types.ProcessID) types.Value { return types.Value("same") })
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("same")) {
		t.Errorf("decided %v (%v)", v, ok)
	}
}

func TestCrashAtStart(t *testing.T) {
	res, _ := run(t, 9, adversary.NewCrash(0, 1), func(id types.ProcessID) types.Value {
		return types.Value(fmt.Sprintf("v%d", id))
	})
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("disagreement")
	}
	// p0 and p1 never sent anything; the minimum among survivors wins.
	if !v.Equal(types.Value("v2")) {
		t.Errorf("decided %v, want v2", v)
	}
}

func TestStaggeredCrashesDelayDecision(t *testing.T) {
	// One crash per round (the classic worst case for early stopping):
	// p0 crashes at tick 1 (after flooding round 1), p1 at tick 2, ...
	// decisions take ~f extra rounds but stay within t+1.
	res, machines := run(t, 9, adversary.NewCrashAt(map[types.ProcessID]types.Tick{
		0: 1, 1: 2, 2: 3,
	}), func(id types.ProcessID) types.Value {
		return types.Value(fmt.Sprintf("v%d", id))
	})
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	if _, ok := res.Agreement(); !ok {
		t.Fatal("disagreement under staggered crashes")
	}
	for _, id := range res.Honest {
		if r := machines[id].Rounds(); int(r) > 9/2+1 {
			t.Errorf("%v exceeded the t+1 round bound: %d", id, r)
		}
	}
}

func TestQuadraticWordsRegardlessOfF(t *testing.T) {
	// The §4 contrast: FloodSet's words are Θ(n²) even failure-free —
	// round complexity adapts, word complexity does not.
	for _, n := range []int{11, 21} {
		res, _ := run(t, n, nil, func(id types.ProcessID) types.Value {
			return types.Value(fmt.Sprintf("v%02d", id))
		})
		words := res.Report.Honest.Words
		if words < int64(n*(n-1)) {
			t.Errorf("n=%d: words = %d, expected at least n(n-1)", n, words)
		}
	}
}

func TestFloodWordAccounting(t *testing.T) {
	if (Flood{}).Words() != 1 {
		t.Error("empty flood should still cost one word")
	}
	f := Flood{Values: []types.Value{types.Value("a"), types.Value("b"), types.Value("c")}}
	if f.Words() != 3 {
		t.Errorf("Words = %d", f.Words())
	}
}
