// Package floodset implements the classic early-stopping crash-fault
// consensus (FloodSet with the clean-round decision rule, in the spirit
// of Dolev–Reischuk–Strong [10] as discussed in the paper's Section 4):
// every process floods the values it knows every round, watches which
// processes are still sending, and decides after the first CLEAN round —
// a round in which no new failure is observed — at which point the
// surviving sets have provably converged. With f staggered crashes the
// first clean round can be delayed to round f+1: decisions take
// min(f+2, t+2) rounds.
//
// It exists as the related-work contrast the paper draws: thirty years of
// "adaptive" consensus meant adaptive ROUND complexity, while the word
// complexity stayed Θ(n²) per round. The paper's protocols flip the
// trade: word complexity O(n(f+1)), round complexity up to t+1 phases.
//
// Fault model: CRASH failures only (a faulty process may send to an
// arbitrary subset of recipients in its final round, then stays silent —
// the classic mid-broadcast crash). Byzantine behaviour is out of scope
// for this baseline: equivocation breaks it, and the tests do not pretend
// otherwise. Deciders announce their decision in one final flood, which
// undecided processes adopt; under crash faults at most one decision
// value can circulate (all deciders decide the minimum of the converged
// set).
package floodset

import (
	"sort"

	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

// Flood is the per-round message: the values its sender learned since its
// previous flood (usually empty — a heartbeat), plus the sender's
// decision once it has one.
type Flood struct {
	Values   []types.Value
	Decision types.Value // nil until the sender decided
}

// Type implements proto.Payload.
func (Flood) Type() string { return "floodset/flood" }

// Words implements proto.Payload: one word per carried value, at least 1.
func (f Flood) Words() int {
	w := len(f.Values)
	if !f.Decision.IsBottom() {
		w++
	}
	if w == 0 {
		return 1
	}
	return w
}

// Config parameterizes one process.
type Config struct {
	Params types.Params
	ID     types.ProcessID
	Input  types.Value
}

// Machine implements proto.Machine.
type Machine struct {
	cfg   Config
	clock proto.RoundClock

	known map[string]bool
	fresh []types.Value // learned since the last flood

	// Round-r sender sets live in a 3-slot ring of reused bitsets
	// (cleanRound at the boundary of round r only ever consults rounds
	// r-2 and r-1, so three slots cover writer + both readers without
	// the per-round map and BitSet allocations the first version paid —
	// at n = 4096 that was 512 B × rounds × n of garbage).
	sendSets  [3]*types.BitSet
	sendRound [3]types.Round
	adopted   types.Value // a decision received from a peer

	outs []proto.Outgoing // reusable flood buffer

	decided   bool
	announced bool
	decision  types.Value
	rounds    types.Round // decision round (early-stopping metric)
}

var _ proto.Machine = (*Machine)(nil)

// NewMachine builds the machine.
func NewMachine(cfg Config) *Machine {
	m := &Machine{
		cfg:   cfg,
		known: make(map[string]bool),
	}
	for i := range m.sendRound {
		m.sendRound[i] = -1
	}
	m.learn(cfg.Input)
	return m
}

// Rounds returns the round in which the process decided.
func (m *Machine) Rounds() types.Round { return m.rounds }

// learn records a value, tracking novelty.
func (m *Machine) learn(v types.Value) {
	if v.IsBottom() || m.known[string(v)] {
		return
	}
	m.known[string(v)] = true
	m.fresh = append(m.fresh, v.Clone())
}

// Begin implements proto.Machine: round 1 floods the input.
func (m *Machine) Begin(now types.Tick) []proto.Outgoing {
	m.clock = proto.NewRoundClock(now, 1)
	return m.flood(nil)
}

// flood broadcasts the fresh values (and optionally a decision) and
// resets the novelty tracker.
func (m *Machine) flood(decision types.Value) []proto.Outgoing {
	payload := Flood{Values: m.fresh, Decision: decision}
	m.fresh = nil
	m.outs = proto.AppendBroadcast(m.outs[:0], m.cfg.Params, "", payload)
	return m.outs
}

// sendersMark returns the (reset-on-reuse) sender set for round r.
func (m *Machine) sendersMark(r types.Round) *types.BitSet {
	i := (int(r%3) + 3) % 3
	if m.sendSets[i] == nil {
		m.sendSets[i] = types.NewBitSet(m.cfg.Params.N)
	} else if m.sendRound[i] != r {
		m.sendSets[i].Reset()
	}
	m.sendRound[i] = r
	return m.sendSets[i]
}

// sendersAt returns round r's sender set, or nil if none arrived (or its
// slot was already recycled — only possible for rounds cleanRound no
// longer consults).
func (m *Machine) sendersAt(r types.Round) *types.BitSet {
	i := (int(r%3) + 3) % 3
	if m.sendSets[i] == nil || m.sendRound[i] != r {
		return nil
	}
	return m.sendSets[i]
}

// Tick implements proto.Machine.
func (m *Machine) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	r, boundary := m.clock.BoundaryAt(now)
	for _, in := range inbox {
		f, ok := in.Payload.(Flood)
		if !ok {
			continue
		}
		// A flood arriving at the boundary of round r was sent in round
		// r-1; mid-round arrivals (impossible for honest ticks with
		// duration-1 rounds) would also belong to the previous round.
		prev := m.clock.RoundAt(now) - 1
		if boundary {
			prev = r - 1
		}
		m.sendersMark(prev).Add(in.From)
		for _, v := range f.Values {
			m.learn(v)
		}
		if !f.Decision.IsBottom() && m.adopted == nil {
			m.adopted = f.Decision.Clone()
		}
	}
	if !boundary {
		return nil
	}
	if m.decided {
		if !m.announced {
			m.announced = true
			return m.flood(m.decision)
		}
		return nil
	}
	// Boundary of round r: round r-1's floods are in.
	switch {
	case m.adopted != nil:
		// A peer decided: its set had converged, adopt its decision.
		m.decide(r, m.adopted)
		return m.flood(m.decision)
	case r >= 3 && m.cleanRound(r-1):
		m.decide(r, m.minKnown())
		return m.flood(m.decision)
	case int(r) > m.cfg.Params.T+2:
		// Worst-case cap: after t+1 rounds of flooding every value has
		// propagated regardless of the failure pattern.
		m.decide(r, m.minKnown())
		return m.flood(m.decision)
	default:
		return m.flood(nil)
	}
}

// cleanRound reports whether round r brought no NEW failures: everyone
// who sent in round r-1 also sent in round r (checked word-wise, no
// member materialization).
func (m *Machine) cleanRound(r types.Round) bool {
	prev, cur := m.sendersAt(r-1), m.sendersAt(r)
	if prev == nil {
		return false
	}
	if cur == nil {
		return prev.Count() == 0
	}
	return cur.ContainsAll(prev)
}

// minKnown picks the canonical minimum of the converged set.
func (m *Machine) minKnown() types.Value {
	keys := make([]string, 0, len(m.known))
	for k := range m.known {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return types.Bottom
	}
	sort.Strings(keys)
	return types.Value(keys[0]).Clone()
}

// decide records the decision and the round it happened in.
func (m *Machine) decide(r types.Round, v types.Value) {
	m.decided = true
	m.decision = v.Clone()
	m.rounds = r - 1 // decided on round r-1's evidence
}

// Output implements proto.Machine.
func (m *Machine) Output() (types.Value, bool) { return m.decision, m.decided }

// Done implements proto.Machine.
func (m *Machine) Done() bool { return m.decided && m.announced }
