package committee

import (
	"fmt"
	"testing"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

func run(t *testing.T, n int, adv sim.Adversary, input func(types.ProcessID) types.Value) (*sim.Result, map[types.ProcessID]*Machine) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	// Committee sampling is unauthenticated; crypto is engine plumbing.
	ring, err := sig.NewHMACRing(n, []byte("cmte"))
	if err != nil {
		t.Fatal(err)
	}
	crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))
	machines := make(map[types.ProcessID]*Machine)
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m := NewMachine(Config{Params: params, ID: id, Input: input(id), Seed: 42})
			machines[id] = m
			return m
		},
		Adversary: adv,
		MaxTicks:  types.Tick(2 * (Size(n) + 8)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, machines
}

func distinct(id types.ProcessID) types.Value {
	return types.Value(fmt.Sprintf("v%02d", id))
}

func TestSampleDeterministicAndSized(t *testing.T) {
	for _, n := range []int{1, 2, 9, 33, 64, 257, 1024, 4096} {
		a, b := Sample(n, 7), Sample(n, 7)
		if !a.Equal(b) {
			t.Errorf("n=%d: same seed sampled different committees", n)
		}
		if a.Count() != Size(n) {
			t.Errorf("n=%d: committee size %d, want %d", n, a.Count(), Size(n))
		}
		if Size(n) < n { // a full committee is seed-independent
			if c := Sample(n, 8); c.Equal(a) {
				t.Errorf("n=%d: different seeds sampled identical committees", n)
			}
		}
	}
	if got := Size(4096); got != 128 {
		t.Errorf("Size(4096) = %d, want 128", got)
	}
}

func TestFailureFreeAgreementAndValidity(t *testing.T) {
	res, machines := run(t, 33, nil, distinct)
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("no agreement")
	}
	// Validity: the decision is some process's input (the committee's
	// minimum of the received inputs).
	if !v.Equal(types.Value("v00")) {
		t.Errorf("decided %v, want the global minimum v00", v)
	}
	// Early stopping: failure-free runs decide in ~5 rounds, far below
	// the c+2 cap.
	for id, m := range machines {
		if m.Rounds() > 6 {
			t.Errorf("%v used %d rounds at f=0", id, m.Rounds())
		}
	}
}

func TestUnanimity(t *testing.T) {
	res, _ := run(t, 9, nil, func(types.ProcessID) types.Value { return types.Value("same") })
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("same")) {
		t.Errorf("decided %v (%v)", v, ok)
	}
}

func TestCrashFaultsStillDecide(t *testing.T) {
	// Crash the first 4 processes (some may be committee members); the
	// survivors must still converge and agree.
	res, _ := run(t, 17, adversary.NewCrash(1, 2, 3, 4), distinct)
	if !res.AllDecided() {
		t.Fatalf("not all honest decided (f=%d)", res.F())
	}
	if _, ok := res.Agreement(); !ok {
		t.Fatal("honest processes disagree")
	}
}

func TestStaggeredMemberCrash(t *testing.T) {
	// Crash two committee members mid-run: the clean-round rule must
	// absorb the failure and the survivors still announce.
	members := Sample(33, 42)
	var victims []types.ProcessID
	for id, ok := members.NextSet(0); ok && len(victims) < 2; id, ok = members.NextSet(int(id) + 1) {
		victims = append(victims, id)
	}
	at := map[types.ProcessID]types.Tick{victims[0]: 2, victims[1]: 3}
	res, _ := run(t, 33, adversary.NewCrashAt(at), distinct)
	if !res.AllDecided() {
		t.Fatal("not all honest decided after member crashes")
	}
	if _, ok := res.Agreement(); !ok {
		t.Fatal("honest processes disagree after member crashes")
	}
}

func TestSubquadraticWords(t *testing.T) {
	// The whole point: total words ≈ 2nc + rounds·c², asymptotically
	// below n² full flooding. At n=257, c=33: bound ≈ 2·257·33 + 8·33²
	// ≈ 26k words versus 66k for one flooding round alone.
	n := 257
	res, _ := run(t, n, nil, func(types.ProcessID) types.Value { return types.One })
	words := res.Report.Words()
	c := int64(Size(n))
	bound := 3*int64(n)*c + 10*c*c
	if words > bound {
		t.Errorf("words = %d, want ≤ %d (Õ(n^1.5))", words, bound)
	}
	if words >= int64(n)*int64(n) {
		t.Errorf("words = %d, not subquadratic (n² = %d)", words, n*n)
	}
}

func TestShuffleInsensitive(t *testing.T) {
	// Arrival order within a tick must not change decisions.
	params, _ := types.NewParams(17)
	ring, _ := sig.NewHMACRing(17, []byte("cmte"))
	crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))
	var base types.Value
	for i, seed := range []int64{0, 7, 99} {
		res, err := sim.Run(sim.Config{
			Params: params,
			Crypto: crypto,
			Factory: func(id types.ProcessID) proto.Machine {
				return NewMachine(Config{Params: params, ID: id, Input: distinct(id), Seed: 42})
			},
			Adversary:   adversary.NewCrash(1, 2),
			MaxTicks:    200,
			ShuffleSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		v, ok := res.Agreement()
		if !ok {
			t.Fatalf("seed %d: no agreement", seed)
		}
		if i == 0 {
			base = v
		} else if !v.Equal(base) {
			t.Errorf("seed %d decided %v, seed 0 decided %v", seed, v, base)
		}
	}
}
