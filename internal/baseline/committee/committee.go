// Package committee implements a committee-sampling agreement baseline in
// the spirit of King–Saia's "Breaking the O(n²) Bit Barrier" (PODC 2010,
// arXiv:1002.4561): instead of every process talking to every process, a
// Õ(√n)-sized committee is sampled from a common seed, everyone ships its
// input to the committee, the committee runs an early-stopping flood
// agreement among itself, and the members announce the outcome to all.
// Total traffic is n·c + rounds·c² + c·n words with c = ⌈2√n⌉ — Õ(n^1.5)
// in total, Õ(√n) per process — versus Θ(n²) per round for full flooding.
//
// This is the paper's natural large-n rival: committee sampling beats the
// O(n²) total-word floor regardless of f, while the adaptive protocol
// pays O(n(f+1)) — cheaper exactly when f ≲ √n. BENCH_scale.json plots
// the crossover.
//
// Fault model: CRASH failures only, like the floodset baseline (King–Saia
// handle Byzantine faults with spectral sampling defenses that are out of
// scope here; this baseline keeps their cost structure, not their
// adversarial machinery). The run terminates as long as at least one
// committee member survives; sampling is uniform from the seed, so an
// f-crash pattern leaves ≈ c·(n−f)/n members alive in expectation.
package committee

import (
	"math"

	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

// Input ships a process's initial value to a committee member (round 1).
type Input struct {
	V types.Value
}

// Type implements proto.Payload.
func (Input) Type() string { return "committee/input" }

// Words implements proto.Payload.
func (Input) Words() int { return 1 }

// Flood is the intra-committee per-round message: the values its sender
// learned since its previous flood (usually empty — a heartbeat).
type Flood struct {
	Values []types.Value
}

// Type implements proto.Payload.
func (Flood) Type() string { return "committee/flood" }

// Words implements proto.Payload: one word per carried value, at least 1.
func (f Flood) Words() int {
	if len(f.Values) == 0 {
		return 1
	}
	return len(f.Values)
}

// Announce carries a committee decision to every process.
type Announce struct {
	V types.Value
}

// Type implements proto.Payload.
func (Announce) Type() string { return "committee/announce" }

// Words implements proto.Payload.
func (Announce) Words() int { return 1 }

// Size returns the sampled committee size for n processes: ⌈2√n⌉, capped
// at n. The constant 2 stands in for King–Saia's polylog supermajority
// margin at the scales the benchmark sweeps.
func Size(n int) int {
	if n <= 0 {
		return 0
	}
	c := int(math.Ceil(2 * math.Sqrt(float64(n))))
	if c > n {
		c = n
	}
	return c
}

// splitmix64 is the standard 64-bit mix; every process derives the same
// committee from the same seed with no coordination.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sample deterministically draws the Size(n)-member committee for
// (n, seed). All processes call it with the common seed and agree on the
// membership set without any communication.
func Sample(n int, seed uint64) *types.BitSet {
	members := types.NewBitSet(n)
	c := Size(n)
	x := seed
	for members.Count() < c {
		x = splitmix64(x)
		members.Add(types.ProcessID(x % uint64(n)))
	}
	return members
}

// Config parameterizes one process.
type Config struct {
	Params types.Params
	ID     types.ProcessID
	Input  types.Value
	// Seed is the common committee-sampling seed (public randomness).
	Seed uint64
}

// Machine implements proto.Machine.
type Machine struct {
	cfg      Config
	clock    proto.RoundClock
	members  *types.BitSet
	isMember bool

	known map[string]bool
	fresh []types.Value // learned since the last intra-committee flood

	// Round-r flood-sender sets, in the same 3-slot reused-bitset ring
	// the floodset baseline uses (the clean-round rule only consults the
	// last two rounds).
	sendSets  [3]*types.BitSet
	sendRound [3]types.Round
	adopted   types.Value // a decision received via Announce

	decided   bool
	announced bool
	decision  types.Value
	rounds    types.Round // decision round (early-stopping metric)

	outs []proto.Outgoing // reusable output buffer
}

var _ proto.Machine = (*Machine)(nil)

// NewMachine builds the machine.
func NewMachine(cfg Config) *Machine {
	m := &Machine{
		cfg:     cfg,
		members: Sample(cfg.Params.N, cfg.Seed),
		known:   make(map[string]bool),
	}
	m.isMember = m.members.Has(cfg.ID)
	for i := range m.sendRound {
		m.sendRound[i] = -1
	}
	if m.isMember {
		m.learn(cfg.Input)
	}
	return m
}

// IsMember reports whether this process sits on the sampled committee.
func (m *Machine) IsMember() bool { return m.isMember }

// Members exposes the sampled committee set (shared, do not mutate).
func (m *Machine) Members() *types.BitSet { return m.members }

// Rounds returns the round in which the process decided.
func (m *Machine) Rounds() types.Round { return m.rounds }

// MaxRounds bounds the run: input delivery + intra-committee flooding
// capped at c+2 rounds + announcement propagation.
func (m *Machine) MaxRounds() int { return Size(m.cfg.Params.N) + 6 }

// learn records a value, tracking novelty for the next flood.
func (m *Machine) learn(v types.Value) {
	if v.IsBottom() || m.known[string(v)] {
		return
	}
	m.known[string(v)] = true
	m.fresh = append(m.fresh, v.Clone())
}

// Begin implements proto.Machine: round 1 ships the input to the
// committee (n·c words across all processes).
func (m *Machine) Begin(now types.Tick) []proto.Outgoing {
	m.clock = proto.NewRoundClock(now, 1)
	payload := Input{V: m.cfg.Input}
	m.outs = m.outs[:0]
	for id, ok := m.members.NextSet(0); ok; id, ok = m.members.NextSet(int(id) + 1) {
		m.outs = append(m.outs, proto.Outgoing{To: id, Session: "", Payload: payload})
	}
	return m.outs
}

// floodCommittee sends the fresh values to every committee member.
func (m *Machine) floodCommittee() []proto.Outgoing {
	payload := Flood{Values: m.fresh}
	m.fresh = nil
	m.outs = m.outs[:0]
	for id, ok := m.members.NextSet(0); ok; id, ok = m.members.NextSet(int(id) + 1) {
		m.outs = append(m.outs, proto.Outgoing{To: id, Session: "", Payload: payload})
	}
	return m.outs
}

// announce broadcasts the decision to all n processes.
func (m *Machine) announce() []proto.Outgoing {
	m.announced = true
	m.outs = proto.AppendBroadcast(m.outs[:0], m.cfg.Params, "", Announce{V: m.decision})
	return m.outs
}

// sendersMark returns the (reset-on-reuse) flood-sender set for round r.
func (m *Machine) sendersMark(r types.Round) *types.BitSet {
	i := (int(r%3) + 3) % 3
	if m.sendSets[i] == nil {
		m.sendSets[i] = types.NewBitSet(m.cfg.Params.N)
	} else if m.sendRound[i] != r {
		m.sendSets[i].Reset()
	}
	m.sendRound[i] = r
	return m.sendSets[i]
}

// sendersAt returns round r's sender set, or nil if none arrived.
func (m *Machine) sendersAt(r types.Round) *types.BitSet {
	i := (int(r%3) + 3) % 3
	if m.sendSets[i] == nil || m.sendRound[i] != r {
		return nil
	}
	return m.sendSets[i]
}

// cleanRound reports whether round r brought no NEW member failures:
// every member whose flood arrived in round r-1 also flooded in round r.
func (m *Machine) cleanRound(r types.Round) bool {
	prev, cur := m.sendersAt(r-1), m.sendersAt(r)
	if prev == nil {
		return false
	}
	if cur == nil {
		return prev.Count() == 0
	}
	return cur.ContainsAll(prev)
}

// minKnown picks the canonical minimum of the converged set.
func (m *Machine) minKnown() types.Value {
	var best types.Value
	for k := range m.known {
		if best == nil || k < string(best) {
			best = types.Value(k)
		}
	}
	if best == nil {
		return types.Bottom
	}
	return best.Clone()
}

// decide records the decision and the round it happened in.
func (m *Machine) decide(r types.Round, v types.Value) {
	m.decided = true
	m.decision = v.Clone()
	m.rounds = r
}

// Tick implements proto.Machine.
func (m *Machine) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	r, boundary := m.clock.BoundaryAt(now)
	prev := m.clock.RoundAt(now) - 1
	if boundary {
		prev = r - 1
	}
	for _, in := range inbox {
		switch p := in.Payload.(type) {
		case Input:
			if m.isMember && !m.decided {
				m.learn(p.V)
			}
		case Flood:
			if m.isMember {
				m.sendersMark(prev).Add(in.From)
				for _, v := range p.Values {
					m.learn(v)
				}
			}
		case Announce:
			if m.adopted == nil {
				m.adopted = p.V.Clone()
			}
		}
	}
	if !boundary {
		return nil
	}
	if m.decided {
		if m.isMember && !m.announced {
			return m.announce()
		}
		return nil
	}
	if !m.isMember {
		if m.adopted != nil {
			m.decide(r, m.adopted)
		}
		return nil
	}
	// Member at the boundary of round r: round r-1's floods are in.
	switch {
	case m.adopted != nil:
		// Another member decided and announced: its view had converged.
		m.decide(r, m.adopted)
		return m.announce()
	case r >= 4 && m.cleanRound(r-1):
		m.decide(r, m.minKnown())
		return m.announce()
	case int(r) > Size(m.cfg.Params.N)+2:
		// Worst-case cap: after c rounds of intra-committee flooding
		// every surviving member's set has converged regardless of the
		// crash pattern (at most c−1 members can have crashed).
		m.decide(r, m.minKnown())
		return m.announce()
	default:
		return m.floodCommittee()
	}
}

// Output implements proto.Machine.
func (m *Machine) Output() (types.Value, bool) { return m.decision, m.decided }

// Done implements proto.Machine.
func (m *Machine) Done() bool {
	return m.decided && (!m.isMember || m.announced)
}
