package dolevstrong

import (
	"bytes"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

func TestWireRoundTrip(t *testing.T) {
	reg := wire.NewRegistry()
	RegisterWire(reg)
	ring, err := sig.NewHMACRing(3, []byte("d"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChain(sig.NewSigner(ring, 0), "tag", types.Value("v"))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c.Extend(sig.NewSigner(ring, 1), "tag", 0, types.Value("v"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Relay{
		{Sender: 0, V: types.Value("v"), Chain: c},
		{Sender: 0, V: types.Value("v"), Chain: c2},
	} {
		b1, err := reg.EncodePayload(p)
		if err != nil {
			t.Fatal(err)
		}
		gotAny, err := reg.DecodePayload(b1)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := gotAny.(Relay)
		if !ok {
			t.Fatalf("decoded %T", gotAny)
		}
		if !got.Chain.Valid(ring, "tag", 0, types.Value("v"), got.Chain.Len()) {
			t.Error("decoded chain no longer valid")
		}
		b2, err := reg.EncodePayload(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Error("round trip not byte-identical")
		}
	}
}
