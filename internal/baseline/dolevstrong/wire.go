package dolevstrong

import (
	"fmt"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

// RegisterWire registers this package's payload codecs so the TCP
// transport can frame them.
func RegisterWire(reg *wire.Registry) {
	reg.MustRegister(wire.Codec{
		Type: Relay{}.Type(),
		Encode: func(w *wire.Writer, p proto.Payload) error {
			r, ok := p.(Relay)
			if !ok {
				return fmt.Errorf("dolevstrong: unexpected payload %T", p)
			}
			w.PutProcess(r.Sender)
			w.PutValue(r.V)
			w.PutInt(r.Chain.Len())
			for i := range r.Chain.Signers {
				w.PutProcess(r.Chain.Signers[i])
				w.PutSig(r.Chain.Sigs[i])
			}
			return nil
		},
		Decode: func(r *wire.Reader) (proto.Payload, error) {
			out := Relay{Sender: r.Process(), V: r.Value()}
			n := r.Int()
			if err := r.Err(); err != nil {
				return nil, err
			}
			if n < 0 || n > wire.MaxChunk/8 {
				return nil, fmt.Errorf("dolevstrong: implausible chain length %d", n)
			}
			out.Chain = Chain{
				Signers: make([]types.ProcessID, n),
				Sigs:    make([]sig.Signature, n),
			}
			for i := 0; i < n; i++ {
				out.Chain.Signers[i] = r.Process()
				out.Chain.Sigs[i] = r.Sig()
			}
			return out, r.Err()
		},
	})
}
