// Package dolevstrong implements the classic Dolev–Strong authenticated
// broadcast protocol (1983): Byzantine Broadcast for any t < n in t+1
// rounds using signature chains. In this repository it plays two roles:
//
//   - the historical baseline the paper contrasts against (Section 4): its
//     word complexity is Ω(n²) even in failure-free runs because every
//     process relays chains of signatures, while the adaptive BB of
//     Section 5 pays O(n) words when f = 0;
//   - the building block of internal/fallback's strong BA (n parallel
//     instances + plurality), our stand-in for Momose–Ren's A_fallback.
//
// Values travel with a chain of distinct signatures, the designated
// sender's first. A chain processed at local round boundary b is accepted
// if it carries at least min(b-1, t+1) valid distinct signatures. A
// process extracts at most two distinct values per instance and relays
// each newly extracted value once, with its own signature appended. After
// the boundary of round t+2 the process decides: the unique extracted
// value, or ⊥ if the (faulty) sender equivocated or stayed silent.
package dolevstrong

import (
	"fmt"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

// signBase is the byte string every chain signature covers: the instance
// tag, the designated sender, and the value. Domain separation across
// protocol layers comes from the tag. The bytes are views into w's
// buffer; callers must finish with them before returning w to the pool.
func signBase(w *wire.Writer, tag string, sender types.ProcessID, v types.Value) []byte {
	w.PutString("ds")
	w.PutString(tag)
	w.PutProcess(sender)
	w.PutValue(v)
	return w.Bytes()
}

// Chain is an ordered list of distinct signers and their signatures over
// the same sign base. The first signer must be the instance's sender.
type Chain struct {
	Signers []types.ProcessID
	Sigs    []sig.Signature
}

// Len returns the chain length.
func (c Chain) Len() int { return len(c.Signers) }

// Has reports whether id already signed the chain.
func (c Chain) Has(id types.ProcessID) bool {
	for _, s := range c.Signers {
		if s == id {
			return true
		}
	}
	return false
}

// Clone deep-copies the chain.
func (c Chain) Clone() Chain {
	out := Chain{
		Signers: append([]types.ProcessID(nil), c.Signers...),
		Sigs:    make([]sig.Signature, len(c.Sigs)),
	}
	for i, s := range c.Sigs {
		out.Sigs[i] = s.Clone()
	}
	return out
}

// Valid checks structure and signatures: non-empty, first signer is the
// sender, signers distinct and in range, every signature valid, and length
// at least minLen.
func (c Chain) Valid(scheme sig.Scheme, tag string, sender types.ProcessID, v types.Value, minLen int) bool {
	if c.Len() < minLen || c.Len() == 0 || len(c.Sigs) != len(c.Signers) {
		return false
	}
	if c.Signers[0] != sender {
		return false
	}
	if !c.distinctSigners(scheme.N()) {
		return false
	}
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	base := signBase(w, tag, sender, v)
	for i, id := range c.Signers {
		if !scheme.Verify(id, base, c.Sigs[i]) {
			return false
		}
	}
	return true
}

// distinctSigners checks range and pairwise distinctness without the
// per-relay map the validator used to allocate: honest chains are a
// handful of links, so a quadratic scan is both faster and alloc-free.
// Only an adversarially long chain (length bounded by n via distinctness)
// falls back to a map.
func (c Chain) distinctSigners(n int) bool {
	if len(c.Signers) > 64 {
		seen := make(map[types.ProcessID]bool, len(c.Signers))
		for _, id := range c.Signers {
			if id < 0 || int(id) >= n || seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	for i, id := range c.Signers {
		if id < 0 || int(id) >= n {
			return false
		}
		for j := 0; j < i; j++ {
			if c.Signers[j] == id {
				return false
			}
		}
	}
	return true
}

// Extend returns a copy of the chain with signer's signature appended.
func (c Chain) Extend(signer *sig.Signer, tag string, sender types.ProcessID, v types.Value) (Chain, error) {
	w := wire.GetWriter()
	s, err := signer.Sign(signBase(w, tag, sender, v))
	wire.PutWriter(w)
	if err != nil {
		return Chain{}, fmt.Errorf("dolevstrong: extend chain: %w", err)
	}
	out := c.Clone()
	out.Signers = append(out.Signers, signer.ID())
	out.Sigs = append(out.Sigs, s)
	return out, nil
}

// NewChain starts a chain with the sender's own signature.
func NewChain(signer *sig.Signer, tag string, v types.Value) (Chain, error) {
	w := wire.GetWriter()
	s, err := signer.Sign(signBase(w, tag, signer.ID(), v))
	wire.PutWriter(w)
	if err != nil {
		return Chain{}, fmt.Errorf("dolevstrong: new chain: %w", err)
	}
	return Chain{
		Signers: []types.ProcessID{signer.ID()},
		Sigs:    []sig.Signature{s},
	}, nil
}

// Relay is the protocol's only message: a value plus its signature chain.
type Relay struct {
	Sender types.ProcessID // the instance's designated sender
	V      types.Value
	Chain  Chain
}

// Type implements proto.Payload.
func (r Relay) Type() string { return "ds/relay" }

// Words implements proto.Payload: one word for the value plus one word per
// signature (the model packs a constant number of signatures per word;
// signature chains cannot be batched by a threshold scheme because every
// link signs the same statement but the chain's length is semantic).
func (r Relay) Words() int { return 1 + r.Chain.Len() }

// Config parameterizes one Dolev–Strong instance for one process.
type Config struct {
	Params types.Params
	Crypto *proto.Crypto
	ID     types.ProcessID
	Sender types.ProcessID
	// Input is broadcast if ID == Sender; ignored otherwise.
	Input types.Value
	// Tag domain-separates instances across protocol layers.
	Tag string
	// RoundDur is the tick length of one round (>= 1).
	RoundDur int
}

// Machine runs one Dolev–Strong instance for one process.
type Machine struct {
	cfg    Config
	signer *sig.Signer
	clock  proto.RoundClock

	extracted []types.Value // at most 2 distinct accepted values
	pending   []Relay       // received since the last boundary
	decided   bool
	decision  types.Value
}

var _ proto.Machine = (*Machine)(nil)

// NewMachine builds the instance machine.
func NewMachine(cfg Config) *Machine {
	if cfg.RoundDur < 1 {
		cfg.RoundDur = 1
	}
	return &Machine{cfg: cfg, signer: cfg.Crypto.Signer(cfg.ID)}
}

// Rounds returns the total number of protocol rounds including the final
// decision boundary: the machine decides at the start of round t+2.
func (m *Machine) Rounds() int { return m.cfg.Params.T + 2 }

// Duration returns the number of ticks from Begin to decision.
func (m *Machine) Duration() types.Tick {
	return types.Tick((m.Rounds() - 1) * m.cfg.RoundDur)
}

// Begin implements proto.Machine. The sender broadcasts its signed value
// in round 1.
func (m *Machine) Begin(now types.Tick) []proto.Outgoing {
	m.clock = proto.NewRoundClock(now, m.cfg.RoundDur)
	if m.cfg.ID != m.cfg.Sender {
		return nil
	}
	chain, err := NewChain(m.signer, m.cfg.Tag, m.cfg.Input)
	if err != nil {
		// Signing with own identity cannot fail with validated params.
		return nil
	}
	m.extract(m.cfg.Input)
	return proto.Broadcast(m.cfg.Params, "", Relay{Sender: m.cfg.Sender, V: m.cfg.Input, Chain: chain})
}

// Tick implements proto.Machine.
func (m *Machine) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	for _, in := range inbox {
		if r, ok := in.Payload.(Relay); ok && r.Sender == m.cfg.Sender {
			m.pending = append(m.pending, r)
		}
	}
	r, boundary := m.clock.BoundaryAt(now)
	if !boundary || m.decided {
		return nil
	}
	var outs []proto.Outgoing
	if r >= 2 && int(r) <= m.Rounds() {
		outs = m.processPending(int(r))
	}
	if int(r) >= m.Rounds() {
		m.decide()
	}
	return outs
}

// processPending validates buffered relays at round boundary b and relays
// newly extracted values.
func (m *Machine) processPending(b int) []proto.Outgoing {
	pending := m.pending
	m.pending = nil
	required := b - 1
	if maxReq := m.cfg.Params.T + 1; required > maxReq {
		required = maxReq
	}
	var outs []proto.Outgoing
	for _, r := range pending {
		if len(m.extracted) >= 2 {
			break
		}
		if m.has(r.V) {
			continue
		}
		if !r.Chain.Valid(m.cfg.Crypto.Scheme, m.cfg.Tag, m.cfg.Sender, r.V, required) {
			continue
		}
		m.extract(r.V)
		// Relay with own signature appended, unless it is somehow present
		// (cannot happen for honest runs, but stay defensive) or the run
		// is past its last sending round.
		if r.Chain.Has(m.cfg.ID) || b >= m.Rounds() {
			continue
		}
		ext, err := r.Chain.Extend(m.signer, m.cfg.Tag, m.cfg.Sender, r.V)
		if err != nil {
			continue
		}
		outs = append(outs, proto.Broadcast(m.cfg.Params, "", Relay{Sender: m.cfg.Sender, V: r.V, Chain: ext})...)
	}
	return outs
}

func (m *Machine) has(v types.Value) bool {
	for _, e := range m.extracted {
		if e.Equal(v) {
			return true
		}
	}
	return false
}

func (m *Machine) extract(v types.Value) {
	if len(m.extracted) < 2 && !m.has(v) {
		m.extracted = append(m.extracted, v.Clone())
	}
}

func (m *Machine) decide() {
	m.decided = true
	if len(m.extracted) == 1 {
		m.decision = m.extracted[0]
		return
	}
	m.decision = types.Bottom // silent or equivocating sender
}

// Output implements proto.Machine.
func (m *Machine) Output() (types.Value, bool) { return m.decision, m.decided }

// Done implements proto.Machine.
func (m *Machine) Done() bool { return m.decided }

// SigCount implements proto.SigCarrier: a relay transports its whole
// signature chain.
func (r Relay) SigCount() int { return r.Chain.Len() }
