package dolevstrong

import (
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

func setup(t *testing.T, n int) (*proto.Crypto, types.Params) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("ds-test"))
	if err != nil {
		t.Fatal(err)
	}
	return proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d")), params
}

func factory(crypto *proto.Crypto, params types.Params, sender types.ProcessID, input types.Value, dur int) func(types.ProcessID) proto.Machine {
	return func(id types.ProcessID) proto.Machine {
		return NewMachine(Config{
			Params:   params,
			Crypto:   crypto,
			ID:       id,
			Sender:   sender,
			Input:    input,
			Tag:      "test",
			RoundDur: dur,
		})
	}
}

func TestHonestSenderAllDecide(t *testing.T) {
	for _, n := range []int{3, 5, 9} {
		crypto, params := setup(t, n)
		res, err := sim.Run(sim.Config{
			Params:   params,
			Crypto:   crypto,
			Factory:  factory(crypto, params, 0, types.Value("v"), 1),
			MaxTicks: 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided() {
			t.Fatalf("n=%d: not all decided", n)
		}
		v, ok := res.Agreement()
		if !ok || !v.Equal(types.Value("v")) {
			t.Errorf("n=%d: agreement %v %v", n, v, ok)
		}
	}
}

func TestHonestSenderDoubleDuration(t *testing.T) {
	crypto, params := setup(t, 5)
	res, err := sim.Run(sim.Config{
		Params:   params,
		Crypto:   crypto,
		Factory:  factory(crypto, params, 2, types.Value("w"), 2),
		MaxTicks: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Agreement()
	if !ok || !v.Equal(types.Value("w")) {
		t.Errorf("agreement %v %v", v, ok)
	}
}

type crashAdv struct {
	ids []types.ProcessID
	env sim.Env
}

func (a *crashAdv) Init(env sim.Env) { a.env = env }
func (a *crashAdv) Corruptions() []sim.Corruption {
	cs := make([]sim.Corruption, len(a.ids))
	for i, id := range a.ids {
		cs[i] = sim.Corruption{ID: id}
	}
	return cs
}
func (a *crashAdv) Observe(types.Tick, types.ProcessID, []proto.Incoming) {}
func (a *crashAdv) Act(types.Tick, []sim.Message) []sim.Message           { return nil }
func (a *crashAdv) Quiescent(types.Tick) bool                             { return true }

func TestCrashedSenderDecidesBottom(t *testing.T) {
	crypto, params := setup(t, 5)
	res, err := sim.Run(sim.Config{
		Params:    params,
		Crypto:    crypto,
		Factory:   factory(crypto, params, 0, types.Value("v"), 1),
		Adversary: &crashAdv{ids: []types.ProcessID{0}},
		MaxTicks:  1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok || !v.IsBottom() {
		t.Errorf("agreement %v %v, want ⊥", v, ok)
	}
}

// equivocator is a Byzantine sender that sends "a" to the first half and
// "b" to the second half in round 1.
type equivocator struct {
	crashAdv
	sent bool
}

func (a *equivocator) Corruptions() []sim.Corruption {
	return []sim.Corruption{{ID: 0}}
}

func (a *equivocator) Act(now types.Tick, _ []sim.Message) []sim.Message {
	if a.sent {
		return nil
	}
	a.sent = true
	signer := a.env.Crypto.Signer(0)
	va, vb := types.Value("a"), types.Value("b")
	ca, err := NewChain(signer, "test", va)
	if err != nil {
		return nil
	}
	cb, err := NewChain(signer, "test", vb)
	if err != nil {
		return nil
	}
	var msgs []sim.Message
	for i := 1; i < a.env.Params.N; i++ {
		v, c := va, ca
		if i%2 == 0 {
			v, c = vb, cb
		}
		msgs = append(msgs, sim.Message{
			From: 0, To: types.ProcessID(i),
			Payload: Relay{Sender: 0, V: v, Chain: c},
		})
	}
	return msgs
}

func TestEquivocatingSenderAgreementHolds(t *testing.T) {
	crypto, params := setup(t, 7)
	res, err := sim.Run(sim.Config{
		Params:    params,
		Crypto:    crypto,
		Factory:   factory(crypto, params, 0, nil, 1),
		Adversary: &equivocator{},
		MaxTicks:  1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("agreement violated under equivocation")
	}
	if !v.IsBottom() {
		t.Errorf("equivocation should yield ⊥, got %v", v)
	}
}

// lateInjector corrupts the sender, stays silent until the LAST round, and
// then sends a fresh 1-signature chain to a single process. The chain is
// too short for that round, so no honest process may extract it.
type lateInjector struct {
	crashAdv
	params types.Params
	sent   bool
}

func (a *lateInjector) Corruptions() []sim.Corruption {
	return []sim.Corruption{{ID: 0}}
}

func (a *lateInjector) Act(now types.Tick, _ []sim.Message) []sim.Message {
	last := types.Tick(a.env.Params.T) // sending round t+1 starts at tick t
	if a.sent || now < last {
		return nil
	}
	a.sent = true
	c, err := NewChain(a.env.Crypto.Signer(0), "test", types.Value("late"))
	if err != nil {
		return nil
	}
	return []sim.Message{{
		From: 0, To: 1,
		Payload: Relay{Sender: 0, V: types.Value("late"), Chain: c},
	}}
}

func TestLateShortChainRejected(t *testing.T) {
	crypto, params := setup(t, 7)
	res, err := sim.Run(sim.Config{
		Params:    params,
		Crypto:    crypto,
		Factory:   factory(crypto, params, 0, nil, 1),
		Adversary: &lateInjector{params: params},
		MaxTicks:  1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Agreement()
	if !ok {
		t.Fatal("agreement violated")
	}
	if !v.IsBottom() {
		t.Errorf("late short chain was accepted: decided %v", v)
	}
}

func TestFailureFreeComplexityQuadratic(t *testing.T) {
	// At f=0 every process relays the sender's value once: words grow
	// roughly as 3n² (2-sig chains to n recipients) — the baseline cost
	// the paper's Section 4 discusses.
	for _, n := range []int{5, 11, 21} {
		crypto, params := setup(t, n)
		res, err := sim.Run(sim.Config{
			Params:   params,
			Crypto:   crypto,
			Factory:  factory(crypto, params, 0, types.Value("v"), 1),
			MaxTicks: 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		words := res.Report.Honest.Words
		lo, hi := int64(n*n), int64(6*n*n)
		if words < lo || words > hi {
			t.Errorf("n=%d: words = %d, want within [%d, %d]", n, words, lo, hi)
		}
	}
}

func TestChainValidation(t *testing.T) {
	crypto, params := setup(t, 5)
	_ = params
	v := types.Value("v")
	s0 := crypto.Signer(0)
	s1 := crypto.Signer(1)
	c0, err := NewChain(s0, "tag", v)
	if err != nil {
		t.Fatal(err)
	}
	if !c0.Valid(crypto.Scheme, "tag", 0, v, 1) {
		t.Fatal("fresh chain invalid")
	}
	if c0.Valid(crypto.Scheme, "tag", 0, v, 2) {
		t.Error("minLen not enforced")
	}
	if c0.Valid(crypto.Scheme, "other", 0, v, 1) {
		t.Error("tag not bound")
	}
	if c0.Valid(crypto.Scheme, "tag", 1, v, 1) {
		t.Error("sender not bound (first signer)")
	}
	if c0.Valid(crypto.Scheme, "tag", 0, types.Value("w"), 1) {
		t.Error("value not bound")
	}

	c01, err := c0.Extend(s1, "tag", 0, v)
	if err != nil {
		t.Fatal(err)
	}
	if !c01.Valid(crypto.Scheme, "tag", 0, v, 2) {
		t.Fatal("extended chain invalid")
	}
	if !c01.Has(1) || c01.Has(2) {
		t.Error("Has misreports")
	}

	// Duplicate signer.
	dup := c01.Clone()
	dup.Signers = append(dup.Signers, 1)
	dup.Sigs = append(dup.Sigs, dup.Sigs[1].Clone())
	if dup.Valid(crypto.Scheme, "tag", 0, v, 1) {
		t.Error("duplicate signer accepted")
	}

	// Mismatched lengths.
	broken := c01.Clone()
	broken.Sigs = broken.Sigs[:1]
	if broken.Valid(crypto.Scheme, "tag", 0, v, 1) {
		t.Error("ragged chain accepted")
	}

	// Tampered signature.
	bad := c01.Clone()
	bad.Sigs[0][0] ^= 1
	if bad.Valid(crypto.Scheme, "tag", 0, v, 1) {
		t.Error("tampered chain accepted")
	}

	// Empty chain.
	if (Chain{}).Valid(crypto.Scheme, "tag", 0, v, 0) {
		t.Error("empty chain accepted")
	}

	// Clone independence.
	cl := c01.Clone()
	cl.Sigs[0][0] ^= 0xFF
	if !c01.Valid(crypto.Scheme, "tag", 0, v, 2) {
		t.Error("clone aliases original")
	}
}

func TestRelayWords(t *testing.T) {
	crypto, _ := setup(t, 5)
	c, err := NewChain(crypto.Signer(0), "t", types.Value("v"))
	if err != nil {
		t.Fatal(err)
	}
	r := Relay{Sender: 0, V: types.Value("v"), Chain: c}
	if r.Words() != 2 {
		t.Errorf("1-sig relay words = %d, want 2", r.Words())
	}
	c2, _ := c.Extend(crypto.Signer(1), "t", 0, types.Value("v"))
	r2 := Relay{Sender: 0, V: types.Value("v"), Chain: c2}
	if r2.Words() != 3 {
		t.Errorf("2-sig relay words = %d, want 3", r2.Words())
	}
}

func TestMachineTiming(t *testing.T) {
	crypto, params := setup(t, 7) // t=3
	m := NewMachine(Config{Params: params, Crypto: crypto, ID: 1, Sender: 0, Tag: "x", RoundDur: 2})
	if m.Rounds() != 5 {
		t.Errorf("Rounds = %d", m.Rounds())
	}
	if m.Duration() != 8 {
		t.Errorf("Duration = %d", m.Duration())
	}
}
