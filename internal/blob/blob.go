// Package blob is a content-addressed local blob store: the off-chain
// corner of the triangle architecture. Payloads live on the local disk
// keyed by their SHA-256 digest; agreement commits only the 32-byte
// anchor (plus a hash-chained audit entry, see internal/service), so the
// per-request word cost through the protocol stack is a constant number
// of digest words regardless of payload size.
//
// Durability follows the write-then-rename discipline: a payload is
// written to a temp file, fsync'd, renamed to its content address, and
// the directory entry fsync'd, so a crash never leaves a partially
// written blob under a valid key nor loses an acknowledged one.
// Reads re-hash the payload before returning it — a flipped byte on disk
// surfaces as ErrTampered, never as silently corrupt data.
package blob

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Ref is a content address: the SHA-256 digest of the payload.
type Ref [32]byte

// String returns the hex form of the ref (also its on-disk file name).
func (r Ref) String() string { return hex.EncodeToString(r[:]) }

// ParseRef parses the hex form produced by Ref.String.
func ParseRef(s string) (Ref, error) {
	var r Ref
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(r) {
		return r, fmt.Errorf("blob: bad ref %q", s)
	}
	copy(r[:], b)
	return r, nil
}

// Sum returns the content address of a payload without storing it.
func Sum(data []byte) Ref { return Ref(sha256.Sum256(data)) }

var (
	// ErrNotFound reports a ref with no stored payload.
	ErrNotFound = errors.New("blob: not found")
	// ErrTampered reports a stored payload whose bytes no longer hash to
	// its content address.
	ErrTampered = errors.New("blob: content does not match ref")
)

// Store is a content-addressed blob store rooted at one directory.
// Methods are safe for concurrent use by multiple goroutines only in the
// trivial sense that content addressing makes concurrent Puts of the
// same payload idempotent; callers that share a Store across goroutines
// should serialize externally (internal/service does).
type Store struct {
	dir string
	seq int // temp-file counter, keeps names unique within the process
}

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blob: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(r Ref) string { return filepath.Join(s.dir, r.String()) }

// Put stores a payload and returns its content address. Storing the same
// bytes twice is free: the existing blob is kept — but only after its
// bytes re-verify, so a blob corrupted on disk is repaired rather than
// silently acknowledged. New blobs are written to a temp file, fsync'd,
// renamed into place, and the directory is fsync'd so the entry itself
// survives a crash.
func (s *Store) Put(data []byte) (Ref, error) {
	r := Sum(data)
	if prev, err := os.ReadFile(s.path(r)); err == nil && Sum(prev) == r {
		return r, nil // dedup: intact copy already stored
	}
	// Missing or corrupt: write via temp+rename, which is idempotent and
	// atomically replaces a corrupt copy.
	s.seq++
	tmp := filepath.Join(s.dir, fmt.Sprintf(".tmp-%d-%d", os.Getpid(), s.seq))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return r, fmt.Errorf("blob: put: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(tmp)
		return r, fmt.Errorf("blob: put: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return r, fmt.Errorf("blob: put: %w", err)
	}
	if err := os.Rename(tmp, s.path(r)); err != nil {
		os.Remove(tmp)
		return r, fmt.Errorf("blob: put: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return r, fmt.Errorf("blob: put: %w", err)
	}
	return r, nil
}

// syncDir fsyncs the store directory so a just-renamed entry is durable
// across a crash, completing the write-then-rename discipline.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Get reads a payload back by ref, re-verifying the content address
// before returning. A missing blob is ErrNotFound; a blob whose bytes
// have changed on disk is ErrTampered.
func (s *Store) Get(r Ref) ([]byte, error) {
	data, err := os.ReadFile(s.path(r))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, r)
	}
	if err != nil {
		return nil, fmt.Errorf("blob: get %s: %w", r, err)
	}
	if Sum(data) != r {
		return nil, fmt.Errorf("%w: %s", ErrTampered, r)
	}
	return data, nil
}

// Verify checks one stored blob against its content address without
// returning the payload.
func (s *Store) Verify(r Ref) error {
	_, err := s.Get(r)
	return err
}

// Refs lists every stored content address in sorted order, skipping
// temp files and anything that does not parse as a ref.
func (s *Store) Refs() ([]Ref, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("blob: list: %w", err)
	}
	var refs []Ref
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		r, err := ParseRef(e.Name())
		if err != nil {
			continue
		}
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].String() < refs[j].String() })
	return refs, nil
}

// VerifyAll checks every stored blob, returning the refs that failed.
func (s *Store) VerifyAll() (bad []Ref, err error) {
	refs, err := s.Refs()
	if err != nil {
		return nil, err
	}
	for _, r := range refs {
		if s.Verify(r) != nil {
			bad = append(bad, r)
		}
	}
	return bad, nil
}
