package blob

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("the quick brown fox")
	ref, err := s.Put(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ref != Sum(payload) {
		t.Fatalf("ref mismatch: %s vs %s", ref, Sum(payload))
	}
	got, err := s.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
	if err := s.Verify(ref); err != nil {
		t.Fatal(err)
	}
}

func TestPutDedup(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Put([]byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Put([]byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("dedup refs differ: %s vs %s", r1, r2)
	}
	refs, err := s.Refs()
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 {
		t.Fatalf("want 1 stored blob, got %d", len(refs))
	}
}

func TestGetMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Get(Sum([]byte("never stored")))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestTamperedBlobDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Put([]byte("payload to corrupt"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte of the stored file.
	path := filepath.Join(dir, ref.String())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ref); !errors.Is(err, ErrTampered) {
		t.Fatalf("want ErrTampered, got %v", err)
	}
	bad, err := s.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != ref {
		t.Fatalf("VerifyAll missed the tampered blob: %v", bad)
	}
}

// TestPutRepairsCorruptBlob: re-storing bytes whose on-disk copy was
// corrupted must rewrite the blob, not ack the corrupt copy as durable.
func TestPutRepairsCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("payload to corrupt then re-put")
	ref, err := s.Put(payload)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ref.String())
	if err := os.WriteFile(path, []byte("corrupted on disk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ref); !errors.Is(err, ErrTampered) {
		t.Fatalf("want ErrTampered before repair, got %v", err)
	}
	if _, err := s.Put(payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ref)
	if err != nil {
		t.Fatalf("blob not repaired by Put: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("repaired payload mismatch: %q", got)
	}
}

func TestRefParseRoundTrip(t *testing.T) {
	ref := Sum([]byte("abc"))
	back, err := ParseRef(ref.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != ref {
		t.Fatalf("parse round trip mismatch")
	}
	if _, err := ParseRef("zz"); err == nil {
		t.Fatal("want error for bad hex")
	}
	if _, err := ParseRef("abcd"); err == nil {
		t.Fatal("want error for short ref")
	}
}

func TestRefsSkipsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	refs, err := s.Refs()
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 {
		t.Fatalf("want 1 ref, got %d", len(refs))
	}
}
