// CountingWriter / Registry.SizeOf coverage: the size-only path must
// agree byte-for-byte with the materializing encoder on every registered
// payload type, and must not allocate — the simulator calls SizeOf for
// every send it charges. Lives in package wire_test to reuse the captured
// payload corpus.
package wire_test

import (
	"testing"

	"adaptiveba/internal/proto"
	"adaptiveba/internal/transport"
	"adaptiveba/internal/wire"
)

// corpusPayloads decodes the captured corpus back into one payload
// instance per registered type.
func corpusPayloads(t testing.TB) (*wire.Registry, map[string]proto.Payload) {
	t.Helper()
	frames, err := captureCorpus()
	if err != nil {
		t.Fatal(err)
	}
	reg := transport.NewFullRegistry()
	payloads := make(map[string]proto.Payload, len(frames))
	for typ, frame := range frames {
		p, err := reg.DecodePayload(frame)
		if err != nil {
			t.Fatalf("decode %q: %v", typ, err)
		}
		payloads[typ] = p
	}
	return reg, payloads
}

func TestSizeOfMatchesEncodedLength(t *testing.T) {
	reg, payloads := corpusPayloads(t)
	for typ, p := range payloads {
		buf, err := reg.EncodePayload(p)
		if err != nil {
			t.Fatalf("encode %q: %v", typ, err)
		}
		n, err := reg.SizeOf(p)
		if err != nil {
			t.Fatalf("size %q: %v", typ, err)
		}
		if n != len(buf) {
			t.Errorf("%q: SizeOf=%d, encoded length=%d", typ, n, len(buf))
		}
	}
}

func TestSizeOfUnknownType(t *testing.T) {
	reg := wire.NewRegistry()
	_, payloads := corpusPayloads(t)
	for _, p := range payloads {
		if _, err := reg.SizeOf(p); err == nil {
			t.Fatalf("SizeOf on empty registry accepted %q", p.Type())
		}
		break
	}
}

// TestSizeOfZeroAllocs guards the whole point of the counting writer: a
// size query allocates nothing, for every registered payload type.
func TestSizeOfZeroAllocs(t *testing.T) {
	reg, payloads := corpusPayloads(t)
	for typ, p := range payloads {
		p := p
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := reg.SizeOf(p); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%q: SizeOf allocates %.1f per call, want 0", typ, allocs)
		}
	}
}

// TestCountingWriterMatchesWriter drives both writers through every Put
// primitive and checks the count tracks the materialized length.
func TestCountingWriterMatchesWriter(t *testing.T) {
	var drive = func(w *wire.Writer) {
		w.PutUint64(42)
		w.PutInt(-7)
		w.PutByte(0xAB)
		w.PutBool(true)
		w.PutBool(false)
		w.PutBytes([]byte("hello"))
		w.PutBytes(nil)
		w.PutString("payload/type")
		w.PutString("")
		w.PutValue([]byte{1, 2, 3})
		w.PutSig([]byte{9, 9})
		w.PutProcess(3)
	}
	real := wire.NewWriter()
	drive(real)
	cw := wire.NewCountingWriter()
	drive(&cw.Writer)
	if cw.Size() != real.Len() {
		t.Fatalf("counting writer: size=%d, materialized=%d", cw.Size(), real.Len())
	}
	if cw.Len() != cw.Size() {
		t.Fatalf("Len()=%d disagrees with Size()=%d", cw.Len(), cw.Size())
	}
	if cw.Bytes() != nil {
		t.Fatal("counting writer materialized a buffer")
	}
	cw.Reset()
	if cw.Size() != 0 {
		t.Fatalf("Reset left size %d", cw.Size())
	}
}

func BenchmarkRegistrySizeOf(b *testing.B) {
	reg, payloads := corpusPayloads(b)
	for typ, p := range payloads {
		b.Run(typ, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := reg.SizeOf(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRegistryEncodePayload(b *testing.B) {
	reg, payloads := corpusPayloads(b)
	for typ, p := range payloads {
		b.Run(typ, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := reg.EncodePayload(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
