package wire

import (
	"bytes"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

// fuzzPayload is a payload with several field shapes for the corpus.
type fuzzPayload struct {
	A int
	B []byte
	C bool
}

func (fuzzPayload) Type() string { return "fuzz/p" }
func (fuzzPayload) Words() int   { return 1 }

func fuzzRegistry() *Registry {
	reg := NewRegistry()
	reg.MustRegister(Codec{
		Type: "fuzz/p",
		Encode: func(w *Writer, p proto.Payload) error {
			fp := p.(fuzzPayload)
			w.PutInt(fp.A)
			w.PutBytes(fp.B)
			w.PutBool(fp.C)
			return nil
		},
		Decode: func(r *Reader) (proto.Payload, error) {
			return fuzzPayload{A: r.Int(), B: r.Bytes(), C: r.Bool()}, r.Err()
		},
	})
	return reg
}

// FuzzDecodePayload: arbitrary bytes must never panic the registry
// decoder; valid frames must round-trip.
func FuzzDecodePayload(f *testing.F) {
	reg := fuzzRegistry()
	seed, err := reg.EncodePayload(fuzzPayload{A: -3, B: []byte("hello"), C: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte("fuzz/p"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := reg.DecodePayload(data) // must not panic
		if err != nil {
			return
		}
		// A successfully decoded frame must re-encode.
		if _, err := reg.EncodePayload(p); err != nil {
			t.Fatalf("decoded payload does not re-encode: %v", err)
		}
	})
}

// FuzzReaderPrimitives: the Reader must be total over arbitrary inputs.
func FuzzReaderPrimitives(f *testing.F) {
	w := NewWriter()
	w.PutUint64(7)
	w.PutBytes([]byte("x"))
	w.PutBool(true)
	w.PutSig(sig.Signature{1, 2})
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		_ = r.Uint64()
		_ = r.Bytes()
		_ = r.Bool()
		_ = r.Sig()
		_ = r.Value()
		_ = r.BitSet()
		_ = r.Cert()
		_ = r.Close()
	})
}

// FuzzCertRoundTrip targets the threshold-certificate encoding: seeds
// are real certificates in both encodings (aggregate carries quorum
// component signatures, compact carries one); a decodable input must
// re-encode to a byte-identical, re-decodable frame.
func FuzzCertRoundTrip(f *testing.F) {
	ring, err := sig.NewHMACRing(7, []byte("fuzz-cert"))
	if err != nil {
		f.Fatal(err)
	}
	msg := []byte("fuzzed message")
	for _, mode := range []threshold.Mode{threshold.ModeAggregate, threshold.ModeCompact} {
		scheme, err := threshold.New(ring, 5, mode, []byte("d"))
		if err != nil {
			f.Fatal(err)
		}
		shares := make([]threshold.Share, 0, 5)
		for i := 0; i < 5; i++ {
			sh, err := scheme.SignShare(types.ProcessID(i), msg)
			if err != nil {
				f.Fatal(err)
			}
			shares = append(shares, sh)
		}
		cert, err := scheme.Combine(msg, shares)
		if err != nil {
			f.Fatal(err)
		}
		w := NewWriter()
		w.PutCert(cert)
		f.Add(w.Bytes())
	}
	nilCert := NewWriter()
	nilCert.PutCert(nil)
	f.Add(nilCert.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		c := r.Cert() // must not panic
		if r.Close() != nil {
			return
		}
		w := NewWriter()
		w.PutCert(c)
		enc := w.Bytes()
		r2 := NewReader(enc)
		c2 := r2.Cert()
		if err := r2.Close(); err != nil {
			t.Fatalf("re-encoded certificate does not decode: %v", err)
		}
		w2 := NewWriter()
		w2.PutCert(c2)
		if !bytes.Equal(enc, w2.Bytes()) {
			t.Fatalf("certificate encoding is not a fixed point:\n first: %x\nsecond: %x", enc, w2.Bytes())
		}
	})
}
