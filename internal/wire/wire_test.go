package wire

import (
	"errors"
	"testing"
	"testing/quick"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	w := NewWriter()
	w.PutUint64(42)
	w.PutInt(-7)
	w.PutByte(0xAB)
	w.PutBool(true)
	w.PutBool(false)
	w.PutBytes([]byte("hello"))
	w.PutString("world")
	w.PutValue(types.Value("v"))
	w.PutValue(types.Bottom)
	w.PutSig(sig.Signature{1, 2, 3})
	w.PutProcess(9)

	r := NewReader(w.Bytes())
	if got := r.Uint64(); got != 42 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Byte(); got != 0xAB {
		t.Errorf("Byte = %x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip")
	}
	if got := r.Bytes(); string(got) != "hello" {
		t.Errorf("Bytes = %q", got)
	}
	if got := r.String(); got != "world" {
		t.Errorf("String = %q", got)
	}
	if got := r.Value(); !got.Equal(types.Value("v")) {
		t.Errorf("Value = %v", got)
	}
	if got := r.Value(); !got.IsBottom() {
		t.Errorf("bottom Value = %v", got)
	}
	if got := r.Sig(); string(got) != "\x01\x02\x03" {
		t.Errorf("Sig = %v", got)
	}
	if got := r.Process(); got != 9 {
		t.Errorf("Process = %v", got)
	}
	if err := r.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestTruncation(t *testing.T) {
	w := NewWriter()
	w.PutBytes([]byte("payload"))
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Bytes()
		if r.Err() == nil {
			t.Errorf("cut=%d: no error", cut)
		}
	}
}

func TestOversizePrefixRejected(t *testing.T) {
	w := NewWriter()
	w.PutUint64(uint64(MaxChunk) + 1)
	r := NewReader(w.Bytes())
	if r.Bytes() != nil || !errors.Is(r.Err(), ErrOversize) {
		t.Errorf("err = %v", r.Err())
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	w := NewWriter()
	w.PutInt(1)
	w.PutInt(2)
	r := NewReader(w.Bytes())
	r.Int()
	if err := r.Close(); !errors.Is(err, ErrTrailing) {
		t.Errorf("err = %v", err)
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	r.Uint64() // fails
	if r.Int() != 0 || r.Bool() || r.Bytes() != nil {
		t.Error("reads after error returned data")
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("err = %v", r.Err())
	}
}

func TestBitSetRoundTrip(t *testing.T) {
	b := types.NewBitSet(130)
	b.Add(0)
	b.Add(64)
	b.Add(129)
	w := NewWriter()
	w.PutBitSet(b)
	r := NewReader(w.Bytes())
	got := r.BitSet()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(b) {
		t.Errorf("got %v", got)
	}
}

func certScheme(t *testing.T, mode threshold.Mode) *threshold.Scheme {
	t.Helper()
	ring, err := sig.NewHMACRing(7, []byte("wire"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := threshold.New(ring, 3, mode, []byte("dealer"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCertRoundTrip(t *testing.T) {
	msg := []byte("m")
	for _, mode := range []threshold.Mode{threshold.ModeAggregate, threshold.ModeCompact} {
		t.Run(mode.String(), func(t *testing.T) {
			s := certScheme(t, mode)
			var shares []threshold.Share
			for _, id := range []types.ProcessID{1, 3, 5} {
				sh, err := s.SignShare(id, msg)
				if err != nil {
					t.Fatal(err)
				}
				shares = append(shares, sh)
			}
			cert, err := s.Combine(msg, shares)
			if err != nil {
				t.Fatal(err)
			}
			w := NewWriter()
			w.PutCert(cert)
			r := NewReader(w.Bytes())
			got := r.Cert()
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			if !s.Verify(msg, got) {
				t.Error("decoded cert does not verify")
			}
		})
	}
}

func TestNilCertRoundTrip(t *testing.T) {
	w := NewWriter()
	w.PutCert(nil)
	r := NewReader(w.Bytes())
	if got := r.Cert(); got != nil {
		t.Errorf("got %+v", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestValueQuickRoundTrip(t *testing.T) {
	f := func(vals [][]byte) bool {
		w := NewWriter()
		for _, v := range vals {
			w.PutValue(types.Value(v))
		}
		r := NewReader(w.Bytes())
		for _, v := range vals {
			got := r.Value()
			if len(v) == 0 {
				if !got.IsBottom() {
					return false
				}
			} else if !got.Equal(types.Value(v)) {
				return false
			}
		}
		return r.Close() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// testPayload is a trivial payload for registry tests.
type testPayload struct {
	N int
}

func (p testPayload) Type() string { return "test/pay" }
func (p testPayload) Words() int   { return 1 }

func testCodec() Codec {
	return Codec{
		Type: "test/pay",
		Encode: func(w *Writer, p proto.Payload) error {
			tp, ok := p.(testPayload)
			if !ok {
				return errors.New("wrong type")
			}
			w.PutInt(tp.N)
			return nil
		},
		Decode: func(r *Reader) (proto.Payload, error) {
			return testPayload{N: r.Int()}, r.Err()
		},
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(testCodec())
	b, err := reg.EncodePayload(testPayload{N: 17})
	if err != nil {
		t.Fatal(err)
	}
	p, err := reg.DecodePayload(b)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := p.(testPayload)
	if !ok || got.N != 17 {
		t.Errorf("got %#v", p)
	}
}

func TestRegistryErrors(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.EncodePayload(testPayload{}); !errors.Is(err, ErrUnknownType) {
		t.Errorf("encode unknown: %v", err)
	}
	reg.MustRegister(testCodec())
	if err := reg.Register(testCodec()); !errors.Is(err, ErrDupType) {
		t.Errorf("dup: %v", err)
	}
	if err := reg.Register(Codec{Type: "x"}); err == nil {
		t.Error("incomplete codec accepted")
	}
	if _, err := reg.DecodePayload([]byte{0xff}); err == nil {
		t.Error("garbage frame accepted")
	}
	w := NewWriter()
	w.PutString("nope")
	if _, err := reg.DecodePayload(w.Bytes()); !errors.Is(err, ErrUnknownType) {
		t.Errorf("decode unknown: %v", err)
	}
	// Trailing bytes after a valid body must be rejected.
	b, _ := reg.EncodePayload(testPayload{N: 1})
	if _, err := reg.DecodePayload(append(b, 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
