package wire

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"adaptiveba/internal/proto"
)

// Codec encodes and decodes one payload type.
type Codec struct {
	// Type must match Payload.Type() of the payloads it handles.
	Type string
	// Encode appends the payload body to w.
	Encode func(w *Writer, p proto.Payload) error
	// Decode reconstructs a payload from r.
	Decode func(r *Reader) (proto.Payload, error)
}

// Registry maps payload type names to codecs. Protocol packages expose a
// RegisterWire(reg) function; runtimes that need framing (the TCP
// transport) call them explicitly — no init() magic.
type Registry struct {
	mu     sync.RWMutex
	codecs map[string]Codec
}

// Errors returned by the registry.
var (
	ErrUnknownType = errors.New("wire: unknown payload type")
	ErrDupType     = errors.New("wire: duplicate payload type")
)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{codecs: make(map[string]Codec)}
}

// Register adds a codec. Registering the same type twice is a programming
// error and is reported.
func (r *Registry) Register(c Codec) error {
	if c.Type == "" || c.Encode == nil || c.Decode == nil {
		return fmt.Errorf("wire: incomplete codec for %q", c.Type)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.codecs[c.Type]; dup {
		return fmt.Errorf("%w: %q", ErrDupType, c.Type)
	}
	r.codecs[c.Type] = c
	return nil
}

// MustRegister registers codecs and panics on conflict (setup-time only).
func (r *Registry) MustRegister(codecs ...Codec) {
	for _, c := range codecs {
		if err := r.Register(c); err != nil {
			panic(err)
		}
	}
}

// Types returns the sorted names of every registered payload type.
func (r *Registry) Types() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.codecs))
	for t := range r.codecs {
		names = append(names, t)
	}
	sort.Strings(names)
	return names
}

// EncodePayload frames a payload as (type, body).
func (r *Registry) EncodePayload(p proto.Payload) ([]byte, error) {
	w := NewWriter()
	if err := r.AppendPayload(w, p); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// AppendPayload appends the (type, body) frame of p to w. It is the
// allocation-free sibling of EncodePayload: callers that reuse a pooled
// writer (GetWriter/PutWriter, or a per-connection scratch writer) encode
// into grown capacity without materializing a fresh buffer per message.
// On error the writer may hold a partial frame; callers must Reset before
// reuse.
func (r *Registry) AppendPayload(w *Writer, p proto.Payload) error {
	r.mu.RLock()
	c, ok := r.codecs[p.Type()]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownType, p.Type())
	}
	w.PutString(p.Type())
	if err := c.Encode(w, p); err != nil {
		return fmt.Errorf("wire: encode %q: %w", p.Type(), err)
	}
	return nil
}

// countingPool recycles CountingWriters so SizeOf stays allocation-free
// and safe under concurrent use.
var countingPool = sync.Pool{
	New: func() any { return NewCountingWriter() },
}

// SizeOf reports the framed encoded size of p — exactly
// len(EncodePayload(p)) — without materializing the encoding: the codec
// runs against a pooled counting writer, so the hot byte-metering path
// (the simulator charges every send) performs zero allocations.
func (r *Registry) SizeOf(p proto.Payload) (int, error) {
	r.mu.RLock()
	c, ok := r.codecs[p.Type()]
	r.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownType, p.Type())
	}
	cw := countingPool.Get().(*CountingWriter)
	cw.Reset()
	cw.PutString(p.Type())
	err := c.Encode(&cw.Writer, p)
	n := cw.Size()
	countingPool.Put(cw)
	if err != nil {
		return 0, fmt.Errorf("wire: size %q: %w", p.Type(), err)
	}
	return n, nil
}

// DecodePayload parses a frame produced by EncodePayload.
func (r *Registry) DecodePayload(b []byte) (proto.Payload, error) {
	rd := NewReader(b)
	typ := rd.String()
	if err := rd.Err(); err != nil {
		return nil, err
	}
	r.mu.RLock()
	c, ok := r.codecs[typ]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, typ)
	}
	p, err := c.Decode(rd)
	if err != nil {
		return nil, fmt.Errorf("wire: decode %q: %w", typ, err)
	}
	if err := rd.Close(); err != nil {
		return nil, fmt.Errorf("wire: decode %q: %w", typ, err)
	}
	return p, nil
}
