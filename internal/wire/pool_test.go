package wire

import (
	"bytes"
	"testing"

	"adaptiveba/internal/proto"
)

// TestWriterReset: a reset writer re-encodes from a clean slate while
// keeping its grown capacity.
func TestWriterReset(t *testing.T) {
	w := NewWriter()
	w.PutString("hello")
	w.PutInt(42)
	first := append([]byte(nil), w.Bytes()...)
	capBefore := cap(w.Bytes())

	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
	w.PutString("hello")
	w.PutInt(42)
	if !bytes.Equal(w.Bytes(), first) {
		t.Fatalf("re-encoded bytes differ:\n%x\n%x", w.Bytes(), first)
	}
	if cap(w.Bytes()) < capBefore {
		t.Errorf("Reset shrank capacity: %d -> %d", capBefore, cap(w.Bytes()))
	}
}

// TestWriterPoolRoundTrip: pooled writers come back reset and produce
// identical encodings to fresh ones.
func TestWriterPoolRoundTrip(t *testing.T) {
	want := NewWriter()
	want.PutString("x")
	want.PutUint64(7)

	for i := 0; i < 100; i++ {
		w := GetWriter()
		if w.Len() != 0 {
			t.Fatalf("pooled writer not reset: Len=%d", w.Len())
		}
		w.PutString("x")
		w.PutUint64(7)
		if !bytes.Equal(w.Bytes(), want.Bytes()) {
			t.Fatalf("pooled encoding differs at iteration %d", i)
		}
		PutWriter(w)
	}
	PutWriter(nil) // nil-safe
}

// TestPutWriterRejectsCountingWriter: counting writers belong to the
// SizeOf pool and must not leak into the materializing pool, where a
// later GetWriter user would silently encode nothing.
func TestPutWriterRejectsCountingWriter(t *testing.T) {
	cw := NewCountingWriter()
	PutWriter(&cw.Writer) // must be a no-op
	for i := 0; i < 10; i++ {
		w := GetWriter()
		w.PutByte(1)
		if len(w.Bytes()) != 1 {
			t.Fatal("counting writer leaked into the writer pool")
		}
		PutWriter(w)
	}
}

// TestAppendPayloadMatchesEncodePayload: the in-place framing must be
// byte-identical to the allocating path for every registered type.
func TestAppendPayloadMatchesEncodePayload(t *testing.T) {
	reg := fuzzRegistry()
	p := fuzzPayload{A: -3, B: []byte("hello"), C: true}
	want, err := reg.EncodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	w := GetWriter()
	defer PutWriter(w)
	w.PutString("prefix") // AppendPayload must append, not clobber
	prefixLen := w.Len()
	if err := reg.AppendPayload(w, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Bytes()[prefixLen:], want) {
		t.Fatalf("AppendPayload frame differs from EncodePayload")
	}
}

// TestAppendPayloadZeroAllocs: steady-state framing into a warm writer
// performs no allocations — the contract the transport's encode-once
// send path relies on.
func TestAppendPayloadZeroAllocs(t *testing.T) {
	reg := fuzzRegistry()
	// Pre-boxed: the transport's payloads arrive as interfaces already, so
	// the measurement must not charge the test's own boxing.
	var p proto.Payload = fuzzPayload{A: 9, B: bytes.Repeat([]byte("v"), 64), C: true}
	w := NewWriter()
	if err := reg.AppendPayload(w, p); err != nil { // warm the buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		w.Reset()
		if err := reg.AppendPayload(w, p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("AppendPayload into warm writer allocates %.1f times", allocs)
	}
}
