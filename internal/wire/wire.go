// Package wire provides a small deterministic binary codec used in two
// places: (1) protocol values that embed structure (the BB protocol agrees
// on ⟨v⟩_sender envelopes and idk certificates, which must serialize into
// opaque types.Values), and (2) the TCP transport, which frames whole
// payloads. The format is length-prefixed, big-endian, and has no
// reflection or allocation surprises.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/types"
)

// Errors returned by the codec.
var (
	ErrTruncated = errors.New("wire: truncated input")
	ErrOversize  = errors.New("wire: length prefix exceeds limit")
	ErrTrailing  = errors.New("wire: trailing bytes")
)

// MaxChunk bounds any single length-prefixed field, protecting decoders
// from hostile length prefixes.
const MaxChunk = 1 << 20

// Writer accumulates an encoded buffer. A Writer in counting mode (see
// CountingWriter) only measures: every Put advances a byte counter and the
// buffer never grows, so codecs written against *Writer can size an
// encoding without materializing it.
type Writer struct {
	buf      []byte
	count    int  // bytes "written" in counting mode
	counting bool // measure only; buf stays nil
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Reset clears the writer for reuse, retaining the buffer's capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.count = 0
}

// writerPool recycles Writers for hot encoding paths (the transport's
// send path frames every outgoing message). A recycled writer keeps its
// grown buffer, so steady-state encoding performs no allocations.
var writerPool = sync.Pool{
	New: func() any { return NewWriter() },
}

// GetWriter returns a pooled writer, reset and ready for use. Pair with
// PutWriter once the encoded bytes have been consumed.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter recycles w. The caller must not retain w.Bytes() afterwards:
// the buffer will be overwritten by the next GetWriter user.
func PutWriter(w *Writer) {
	if w == nil || w.counting {
		return // counting writers have their own pool (Registry.SizeOf)
	}
	writerPool.Put(w)
}

// Bytes returns the encoded buffer (nil for a counting writer, which
// never materializes one).
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int {
	if w.counting {
		return w.count
	}
	return len(w.buf)
}

// PutUint64 appends a fixed 8-byte big-endian integer.
func (w *Writer) PutUint64(v uint64) {
	if w.counting {
		w.count += 8
		return
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

// PutInt appends an int (as uint64; negative values round-trip).
func (w *Writer) PutInt(v int) { w.PutUint64(uint64(int64(v))) }

// PutByte appends one byte.
func (w *Writer) PutByte(b byte) {
	if w.counting {
		w.count++
		return
	}
	w.buf = append(w.buf, b)
}

// PutBool appends a boolean as one byte.
func (w *Writer) PutBool(b bool) {
	if b {
		w.PutByte(1)
	} else {
		w.PutByte(0)
	}
}

// PutBytes appends a length-prefixed byte string.
func (w *Writer) PutBytes(b []byte) {
	w.PutUint64(uint64(len(b)))
	if w.counting {
		w.count += len(b)
		return
	}
	w.buf = append(w.buf, b...)
}

// PutString appends a length-prefixed string. The string is appended
// directly (no []byte conversion), so the call never allocates beyond
// buffer growth.
func (w *Writer) PutString(s string) {
	if w.counting {
		w.count += 8 + len(s)
		return
	}
	w.PutUint64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// PutValue appends a protocol value (⊥ encodes as the empty string).
func (w *Writer) PutValue(v types.Value) { w.PutBytes(v) }

// PutSig appends a signature.
func (w *Writer) PutSig(s sig.Signature) { w.PutBytes(s) }

// PutProcess appends a process ID.
func (w *Writer) PutProcess(id types.ProcessID) { w.PutInt(int(id)) }

// PutBitSet appends a bitset (capacity + words).
func (w *Writer) PutBitSet(b *types.BitSet) {
	w.PutInt(b.Cap())
	n := b.NumWords()
	w.PutInt(n)
	for i := 0; i < n; i++ {
		w.PutUint64(b.Word(i))
	}
}

// PutCert appends a threshold certificate, nil-safe.
func (w *Writer) PutCert(c *threshold.Cert) {
	if c == nil {
		w.PutBool(false)
		return
	}
	w.PutBool(true)
	w.PutInt(c.K)
	w.PutBitSet(c.Signers)
	w.PutInt(len(c.Shares))
	for _, s := range c.Shares {
		w.PutSig(s)
	}
	w.PutBytes(c.Tag)
}

// CountingWriter measures encodings without materializing them: it is a
// Writer permanently in counting mode, so any codec written against
// *Writer runs unchanged while every Put costs an integer add — no buffer
// ever grows. Use it (via Registry.SizeOf) on hot byte-metering paths.
type CountingWriter struct {
	Writer
}

// NewCountingWriter returns a writer that counts and never allocates.
func NewCountingWriter() *CountingWriter {
	return &CountingWriter{Writer{counting: true}}
}

// Size returns the number of bytes the encoding would occupy.
func (c *CountingWriter) Size() int { return c.count }

// Reset clears the count for reuse.
func (c *CountingWriter) Reset() { c.count = 0 }

// Reader decodes a buffer produced by Writer. The first error sticks; all
// subsequent reads return zero values. Callers check Err (or Close) once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps an encoded buffer.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// Close verifies the buffer was fully consumed.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf)-r.off < n {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Uint64 reads a fixed 8-byte integer.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int reads an int written by PutInt.
func (r *Reader) Int() int { return int(int64(r.Uint64())) }

// Byte reads one byte.
func (r *Reader) Byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Bytes reads a length-prefixed byte string (copied).
func (r *Reader) Bytes() []byte {
	n := r.Uint64()
	if n > MaxChunk {
		r.fail(ErrOversize)
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Value reads a protocol value; empty decodes to ⊥ (nil).
func (r *Reader) Value() types.Value {
	b := r.Bytes()
	if len(b) == 0 {
		return nil
	}
	return types.Value(b)
}

// Sig reads a signature; empty decodes to nil.
func (r *Reader) Sig() sig.Signature {
	b := r.Bytes()
	if len(b) == 0 {
		return nil
	}
	return sig.Signature(b)
}

// Process reads a process ID.
func (r *Reader) Process() types.ProcessID { return types.ProcessID(r.Int()) }

// BitSet reads a bitset.
func (r *Reader) BitSet() *types.BitSet {
	capacity := r.Int()
	nwords := r.Int()
	if r.err != nil {
		return nil
	}
	if capacity < 0 || nwords < 0 || nwords > MaxChunk/8 {
		r.fail(ErrOversize)
		return nil
	}
	words := make([]uint64, nwords)
	for i := range words {
		words[i] = r.Uint64()
	}
	if r.err != nil {
		return nil
	}
	b, err := types.BitSetFromWords(capacity, words)
	if err != nil {
		r.fail(err)
		return nil
	}
	return b
}

// Cert reads a threshold certificate written by PutCert (may be nil).
func (r *Reader) Cert() *threshold.Cert {
	if !r.Bool() {
		return nil
	}
	c := &threshold.Cert{K: r.Int()}
	c.Signers = r.BitSet()
	nshares := r.Int()
	if r.err != nil {
		return nil
	}
	if nshares < 0 || nshares > MaxChunk/8 {
		r.fail(ErrOversize)
		return nil
	}
	if nshares > 0 {
		c.Shares = make([]sig.Signature, nshares)
		for i := range c.Shares {
			c.Shares[i] = r.Sig()
		}
	}
	c.Tag = r.Bytes()
	if len(c.Tag) == 0 {
		c.Tag = nil
	}
	if r.err != nil {
		return nil
	}
	if c.K < 0 || c.K > math.MaxInt32 {
		r.fail(fmt.Errorf("wire: implausible certificate threshold %d", c.K))
		return nil
	}
	return c
}
