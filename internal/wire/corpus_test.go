// Corpus coverage for the full payload registry: short harness runs of
// every protocol capture one encoded instance of each registered
// message type, seeding the round-trip fuzz target with real frames.
// Lives in package wire_test because it drives harness and transport,
// which themselves import wire.
package wire_test

import (
	"fmt"
	"sync"
	"testing"

	"adaptiveba/internal/acs"
	"adaptiveba/internal/adversary/attacks"
	"adaptiveba/internal/core/valid"
	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/harness"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/transport"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

// corpusRuns is the spec matrix that exercises every payload type:
// fallback-regime f for the help/fallback messages, spam for the
// leader-phase messages, and each baseline protocol once.
var corpusRuns = []harness.Spec{
	{Protocol: harness.ProtocolBB, N: 9, F: 3},
	{Protocol: harness.ProtocolBB, N: 9, F: 2, Fault: harness.FaultSpam},
	// A crashed sender forces the idk path: helpers sign ⟨idk⟩ shares
	// and the phase leader broadcasts the vetted idk certificate.
	{Protocol: harness.ProtocolBB, N: 9, F: 1, Fault: harness.FaultCrashLeader},
	{Protocol: harness.ProtocolWBA, N: 9, F: 3},
	{Protocol: harness.ProtocolWBA, N: 9, F: 2, Fault: harness.FaultSpam},
	// With silent phases disabled, later leaders keep proposing after
	// the decision, so committed processes answer with commit-info.
	{Protocol: harness.ProtocolWBA, N: 9, F: 0, DisableSilentPhases: true},
	{Protocol: harness.ProtocolStrongBA, N: 9, F: 2},
	// The decide broadcast needs all n decide shares, i.e. f = 0.
	{Protocol: harness.ProtocolStrongBA, N: 9, F: 0},
	{Protocol: harness.ProtocolBBViaBA, N: 9, F: 1},
	{Protocol: harness.ProtocolDolevStrong, N: 5, F: 1},
	{Protocol: harness.ProtocolEchoBB, N: 5, F: 0},
}

var (
	corpusOnce   sync.Once
	corpusFrames map[string][]byte
	corpusErr    error
)

// captureCorpus runs the matrix once and keeps the first encoded frame
// of every payload type seen on the simulated network.
func captureCorpus() (map[string][]byte, error) {
	corpusOnce.Do(func() {
		reg := transport.NewFullRegistry()
		frames := make(map[string][]byte)
		for i := range corpusRuns {
			spec := corpusRuns[i]
			var encodeErr error
			spec.OnSend = func(_ types.Tick, m sim.Message, _ bool) {
				typ := m.Payload.Type()
				if _, seen := frames[typ]; seen || encodeErr != nil {
					return
				}
				buf, err := reg.EncodePayload(m.Payload)
				if err != nil {
					encodeErr = err
					return
				}
				frames[typ] = buf
			}
			if _, err := harness.Run(spec); err != nil {
				corpusErr = err
				return
			}
			if encodeErr != nil {
				corpusErr = encodeErr
				return
			}
		}
		if err := captureHelpRun(reg, frames); err != nil {
			corpusErr = err
			return
		}
		if err := captureACSRun(frames); err != nil {
			corpusErr = err
			return
		}
		corpusFrames = frames
	})
	return corpusFrames, corpusErr
}

// captureACSRun covers the ACS payload types. They never appear as
// top-level messages on the simulated network — a batch rides inside BB
// dissemination as opaque value bytes, and the result is the round's
// decision — so OnSend cannot harvest them. Instead a real ProtocolACS
// run's decided Outcome.Decision IS a framed acs/result (the machine's
// canonical output), and each of its committed batches is a framed
// acs/batch.
func captureACSRun(frames map[string][]byte) error {
	out, err := harness.Run(harness.Spec{Protocol: harness.ProtocolACS, N: 5, F: 1, Batch: 2})
	if err != nil {
		return err
	}
	if !out.Agreement || out.Decision == nil {
		return fmt.Errorf("corpus acs run did not decide")
	}
	result, err := acs.DecodeResult(out.Decision)
	if err != nil {
		return err
	}
	if len(result.Batches) == 0 {
		return fmt.Errorf("corpus acs run committed no batches")
	}
	if _, seen := frames[acs.Result{}.Type()]; !seen {
		frames[acs.Result{}.Type()] = []byte(out.Decision)
	}
	if _, seen := frames[acs.Batch{}.Type()]; !seen {
		frames[acs.Batch{}.Type()] = []byte(result.Batches[0])
	}
	return nil
}

// captureHelpRun emits wba/help, which no harness fault model produces:
// the help answer is only sent by a decided process to an undecided
// peer, so a Byzantine phase leader must finalize everyone except one
// victim. This mirrors the SelectivePhaseLeader attack test.
func captureHelpRun(reg *wire.Registry, frames map[string][]byte) error {
	params, err := types.NewParams(9)
	if err != nil {
		return err
	}
	ring, err := sig.NewHMACRing(params.N, []byte("corpus-help"))
	if err != nil {
		return err
	}
	crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))
	corrupt := []types.ProcessID{1}
	for id := types.ProcessID(params.N - 1); len(corrupt) < params.T; id-- {
		corrupt = append(corrupt, id)
	}
	adv := attacks.NewSelectivePhaseLeader("s", 3, types.Value("v"), corrupt...)
	var encodeErr error
	_, err = sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			return wba.NewMachine(wba.Config{
				Params: params, Crypto: crypto, ID: id,
				Input: types.Value("v"), Predicate: valid.NonBottom(), Tag: "s",
			})
		},
		Adversary: adv,
		MaxTicks:  2000,
		OnSend: func(_ types.Tick, m sim.Message, _ bool) {
			typ := m.Payload.Type()
			if _, seen := frames[typ]; seen || encodeErr != nil {
				return
			}
			buf, err := reg.EncodePayload(m.Payload)
			if err != nil {
				encodeErr = err
				return
			}
			frames[typ] = buf
		},
	})
	if err != nil {
		return err
	}
	return encodeErr
}

// TestCorpusCoversEveryRegisteredType pins the matrix to the registry:
// adding a payload type without extending the corpus is a test failure,
// so the fuzz seeds can never silently go stale.
func TestCorpusCoversEveryRegisteredType(t *testing.T) {
	frames, err := captureCorpus()
	if err != nil {
		t.Fatal(err)
	}
	reg := transport.NewFullRegistry()
	for _, typ := range reg.Types() {
		if _, ok := frames[typ]; !ok {
			t.Errorf("no corpus run emits payload type %q — extend corpusRuns", typ)
		}
	}
	for typ := range frames {
		if _, err := reg.DecodePayload(frames[typ]); err != nil {
			t.Errorf("captured frame for %q does not decode: %v", typ, err)
		}
	}
}

// FuzzFullRegistryRoundTrip seeds the registry decoder with one real
// frame per registered message type; any decodable mutation must
// re-encode without error.
func FuzzFullRegistryRoundTrip(f *testing.F) {
	frames, err := captureCorpus()
	if err != nil {
		f.Fatal(err)
	}
	for _, buf := range frames {
		f.Add(buf)
	}
	f.Add([]byte{})
	reg := transport.NewFullRegistry()
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := reg.DecodePayload(data) // must not panic
		if err != nil {
			return
		}
		buf, err := reg.EncodePayload(p)
		if err != nil {
			t.Fatalf("decoded %q payload does not re-encode: %v", p.Type(), err)
		}
		p2, err := reg.DecodePayload(buf)
		if err != nil {
			t.Fatalf("re-encoded %q payload does not decode: %v", p.Type(), err)
		}
		if p2.Type() != p.Type() {
			t.Fatalf("type changed across round trip: %q -> %q", p.Type(), p2.Type())
		}
	})
}
