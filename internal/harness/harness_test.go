package harness

import (
	"errors"
	"strings"
	"testing"

	"adaptiveba/internal/types"
)

func TestRunEveryProtocolFailureFree(t *testing.T) {
	for _, p := range []Protocol{
		ProtocolBB, ProtocolWBA, ProtocolStrongBA,
		ProtocolDolevStrong, ProtocolEchoBB, ProtocolFallback,
	} {
		t.Run(string(p), func(t *testing.T) {
			o, err := Run(Spec{Protocol: p, N: 5})
			if err != nil {
				t.Fatal(err)
			}
			if !o.Decided || !o.Agreement {
				t.Fatalf("decided=%v agreement=%v", o.Decided, o.Agreement)
			}
			if o.Words <= 0 || o.Messages <= 0 {
				t.Errorf("words=%d messages=%d", o.Words, o.Messages)
			}
		})
	}
}

func TestRunWithCrashes(t *testing.T) {
	for _, p := range []Protocol{ProtocolBB, ProtocolWBA, ProtocolStrongBA} {
		t.Run(string(p), func(t *testing.T) {
			o, err := Run(Spec{Protocol: p, N: 9, F: 2})
			if err != nil {
				t.Fatal(err)
			}
			if !o.Decided || !o.Agreement {
				t.Fatalf("decided=%v agreement=%v", o.Decided, o.Agreement)
			}
		})
	}
}

func TestAdaptiveVsBaselineShape(t *testing.T) {
	// At f=0, the adaptive BB must cost O(n) vs the quadratic baselines.
	n := 41
	adaptive, err := Run(Spec{Protocol: ProtocolBB, N: n})
	if err != nil {
		t.Fatal(err)
	}
	echo, err := Run(Spec{Protocol: ProtocolEchoBB, N: n})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Run(Spec{Protocol: ProtocolDolevStrong, N: n})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Words*3 >= echo.Words {
		t.Errorf("adaptive %d vs echo %d: no clear win at f=0", adaptive.Words, echo.Words)
	}
	if adaptive.Words*3 >= ds.Words {
		t.Errorf("adaptive %d vs dolev-strong %d: no clear win at f=0", adaptive.Words, ds.Words)
	}
}

func TestFallbackCountReported(t *testing.T) {
	// n=9 t=4 quorum=7: f=3 crashes starve the quorum; all 6 honest
	// processes must run the fallback.
	o, err := Run(Spec{Protocol: ProtocolWBA, N: 9, F: 3})
	if err != nil {
		t.Fatal(err)
	}
	if o.FallbackCount != 6 {
		t.Errorf("FallbackCount = %d, want 6", o.FallbackCount)
	}
	// f=1 stays on the fast path.
	o, err = Run(Spec{Protocol: ProtocolWBA, N: 9, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	if o.FallbackCount != 0 {
		t.Errorf("FallbackCount = %d, want 0", o.FallbackCount)
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Run(Spec{Protocol: ProtocolBB, N: 2}); !errors.Is(err, ErrSpec) {
		t.Errorf("n too small: %v", err)
	}
	if _, err := Run(Spec{Protocol: ProtocolBB, N: 5, F: 3}); !errors.Is(err, ErrSpec) {
		t.Errorf("f > t: %v", err)
	}
	if _, err := Run(Spec{Protocol: "nope", N: 5}); !errors.Is(err, ErrSpec) {
		t.Errorf("unknown protocol: %v", err)
	}
}

func TestCrashLeaderFault(t *testing.T) {
	o, err := Run(Spec{Protocol: ProtocolBB, N: 9, F: 1, Fault: FaultCrashLeader})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Decided || !o.Agreement {
		t.Fatal("run failed")
	}
	// The sender (p0) crashed: decision must be ⊥.
	if !o.Decision.IsBottom() {
		t.Errorf("decision %v, want ⊥", o.Decision)
	}
}

func TestReplayFault(t *testing.T) {
	o, err := Run(Spec{Protocol: ProtocolWBA, N: 9, F: 2, Fault: FaultReplay, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Decided || !o.Agreement {
		t.Fatal("replay run failed")
	}
}

func TestDistinctInputs(t *testing.T) {
	o, err := Run(Spec{Protocol: ProtocolWBA, N: 7, Inputs: InputsDistinct})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Agreement || o.Decision.IsBottom() {
		t.Errorf("agreement=%v decision=%v", o.Agreement, o.Decision)
	}
	o, err = Run(Spec{Protocol: ProtocolStrongBA, N: 7, Inputs: InputsDistinct})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Agreement {
		t.Error("binary split inputs broke agreement")
	}
}

func TestEd25519Spec(t *testing.T) {
	o, err := Run(Spec{Protocol: ProtocolStrongBA, N: 5, Ed25519: true})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Decided || !o.Agreement {
		t.Fatal("ed25519 run failed")
	}
}

func TestSweepAndTable(t *testing.T) {
	outcomes, err := Sweep(Spec{Protocol: ProtocolWBA}, []int{5, 9}, []int{0, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	// f=4 is infeasible at n=5 (t=2) and n=9 (t=4 allows it).
	if len(outcomes) != 5 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	table := Table(outcomes)
	if !strings.Contains(table, "wba") || !strings.Contains(table, "words") {
		t.Errorf("table:\n%s", table)
	}
	for _, o := range outcomes {
		if !o.Agreement {
			t.Errorf("n=%d f=%d: agreement violated", o.Spec.N, o.Spec.F)
		}
	}
}

func TestByLayerBreakdown(t *testing.T) {
	o, err := Run(Spec{Protocol: ProtocolBB, N: 9, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	sawWBA := false
	for layer := range o.ByLayer {
		if strings.Contains(layer, "wba") {
			sawWBA = true
		}
	}
	if !sawWBA {
		t.Errorf("layer breakdown missing wba: %v", o.ByLayer)
	}
}

func TestDeterministicOutcome(t *testing.T) {
	run := func() *Outcome {
		o, err := Run(Spec{Protocol: ProtocolBB, N: 9, F: 2, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	a, b := run(), run()
	if a.Words != b.Words || a.Ticks != b.Ticks || !a.Decision.Equal(b.Decision) {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestOutcomeDecisionValue(t *testing.T) {
	o, err := Run(Spec{Protocol: ProtocolBB, N: 5, Value: types.Value("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Decision.Equal(types.Value("hello")) {
		t.Errorf("decision %v", o.Decision)
	}
}

func TestDolevReischukSignatureAnnotation(t *testing.T) {
	// Table 1's "(Ω(n²) signatures)" note: at f=0 the adaptive BB ships
	// Θ(n²) component signatures inside Θ(n) words.
	for _, n := range []int{11, 41} {
		o, err := Run(Spec{Protocol: ProtocolBB, N: n})
		if err != nil {
			t.Fatal(err)
		}
		sigsPerN2 := float64(o.Signatures) / float64(n*n)
		wordsPerN := float64(o.Words) / float64(n)
		if sigsPerN2 < 1 || sigsPerN2 > 4 {
			t.Errorf("n=%d: sigs/n² = %.2f, want ~2", n, sigsPerN2)
		}
		if wordsPerN < 3 || wordsPerN > 12 {
			t.Errorf("n=%d: words/n = %.2f, want ~7", n, wordsPerN)
		}
	}
}

func TestAllExperimentsRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, e := range Experiments() {
		// The heavyweight sweeps are exercised by the bench CLI; here we
		// only check the cheap ones end to end.
		switch e.ID {
		case "ablate-quorum", "ablate-cert", "dr-sigs":
			report, err := e.Run(Sequential())
			if err != nil {
				t.Errorf("%s: %v", e.ID, err)
			}
			if len(report) == 0 {
				t.Errorf("%s: empty report", e.ID)
			}
		}
	}
	if _, ok := ExperimentByID("t1-bb"); !ok {
		t.Error("t1-bb not registered")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Error("phantom experiment found")
	}
}

func TestCustomResilience(t *testing.T) {
	// Section 8: any n >= 2t+1 works. Fix t=3, run at n=7, 10, 13 with
	// f = t crashes; validity must hold every time.
	for _, n := range []int{7, 10, 13} {
		for _, p := range []Protocol{ProtocolBB, ProtocolWBA} {
			o, err := Run(Spec{Protocol: p, N: n, T: 3, F: 3})
			if err != nil {
				t.Fatalf("%s n=%d: %v", p, n, err)
			}
			if !o.Decided || !o.Agreement {
				t.Errorf("%s n=%d t=3 f=3: decided=%v agreement=%v", p, n, o.Decided, o.Agreement)
			}
			if !o.Decision.Equal(types.Value("v")) {
				t.Errorf("%s n=%d: decision %v", p, n, o.Decision)
			}
		}
	}
	// Invalid overrides are rejected.
	if _, err := Run(Spec{Protocol: ProtocolBB, N: 7, T: 4}); !errors.Is(err, ErrSpec) {
		t.Errorf("n < 2t+1 accepted: %v", err)
	}
}

func TestBBViaBAProtocol(t *testing.T) {
	// Correct sender: the reduction decides the sender's bit at O(n)
	// words when failure-free.
	o, err := Run(Spec{Protocol: ProtocolBBViaBA, N: 21, Value: types.One})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Decided || !o.Agreement || !o.Decision.Equal(types.One) {
		t.Fatalf("outcome: %+v", o)
	}
	if o.Words > int64(8*21) {
		t.Errorf("f=0 words = %d, want O(n)", o.Words)
	}
	// One crash: the reduction degrades to quadratic while the adaptive
	// BB stays linear — the Section 5 motivation for building weak BA.
	red, err := Run(Spec{Protocol: ProtocolBBViaBA, N: 21, F: 1, Value: types.One})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := Run(Spec{Protocol: ProtocolBB, N: 21, F: 1, Value: types.One})
	if err != nil {
		t.Fatal(err)
	}
	if red.Words <= ad.Words*4 {
		t.Errorf("reduction (%d words) should be ≫ adaptive BB (%d words) at f=1", red.Words, ad.Words)
	}
}

func TestCountOps(t *testing.T) {
	// NoVerifyCache: the counter sits below the verification cache, so
	// this pins the protocol's raw operation demand.
	o, err := Run(Spec{Protocol: ProtocolBB, N: 9, CountOps: true, NoVerifyCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if o.SignOps <= 0 || o.VerifyOps <= 0 {
		t.Errorf("ops not counted: sign=%d verify=%d", o.SignOps, o.VerifyOps)
	}
	// Verification dominates signing in threshold-certified protocols:
	// every recipient checks certificates with many component signatures.
	if o.VerifyOps < o.SignOps {
		t.Errorf("expected verify-heavy workload: sign=%d verify=%d", o.SignOps, o.VerifyOps)
	}
	// The cache deduplicates exactly those repeats: the same run with the
	// fast path on must compute strictly fewer verifications.
	cached, err := Run(Spec{Protocol: ProtocolBB, N: 9, CountOps: true})
	if err != nil {
		t.Fatal(err)
	}
	if cached.VerifyOps >= o.VerifyOps {
		t.Errorf("cache saved nothing: cached=%d uncached=%d", cached.VerifyOps, o.VerifyOps)
	}
	if cached.CacheHits <= 0 || cached.CacheMisses <= 0 {
		t.Errorf("cache counters not surfaced: hits=%d misses=%d", cached.CacheHits, cached.CacheMisses)
	}
	if o.CacheHits != 0 || o.CacheMisses != 0 {
		t.Errorf("uncached run reported cache stats: hits=%d misses=%d", o.CacheHits, o.CacheMisses)
	}
	// Without CountOps the fields stay zero.
	o2, err := Run(Spec{Protocol: ProtocolBB, N: 9})
	if err != nil {
		t.Fatal(err)
	}
	if o2.SignOps != 0 || o2.VerifyOps != 0 {
		t.Error("ops counted without CountOps")
	}
}

func TestRunStats(t *testing.T) {
	st, err := RunStats(Spec{Protocol: ProtocolWBA, N: 9, F: 2, Fault: FaultReplay}, []int64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 5 || st.Violations != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Words.Min > st.Words.Median || st.Words.Median > st.Words.Max || st.Words.Min <= 0 {
		t.Errorf("word ordering: %+v", st.Words)
	}
	if _, err := RunStats(Spec{Protocol: ProtocolWBA, N: 9}, nil); !errors.Is(err, ErrSpec) {
		t.Errorf("no seeds: %v", err)
	}
}
