package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The golden trace in testdata/ was recorded from the pre-parallel
// serial engine on a real protocol stack: BB under the phase-spamming
// adversary with shuffled delivery. It pins the full observable
// schedule — honest traffic order, the shuffle permutations, and the
// rushing adversary's replies — through every layer above the engine.
//
// Regenerate with: go test ./internal/harness -run TestGoldenProtocolTrace -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite golden trace files")

// goldenSpec is the recorded configuration. TickWorkers varies per run;
// everything else is fixed.
func goldenSpec(tickWorkers int) Spec {
	return Spec{
		Protocol:    ProtocolBB,
		N:           9,
		F:           2,
		Fault:       FaultSpam,
		ShuffleSeed: 11,
		TickWorkers: tickWorkers,
	}
}

func TestGoldenProtocolTrace(t *testing.T) {
	runTrace := func(tickWorkers int) []byte {
		var trace bytes.Buffer
		spec := goldenSpec(tickWorkers)
		spec.Trace = &trace
		o, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !o.Decided || !o.Agreement {
			t.Fatalf("golden run incorrect: decided=%v agreement=%v", o.Decided, o.Agreement)
		}
		return trace.Bytes()
	}
	got := runTrace(1)
	path := filepath.Join("testdata", "bb-spam-shuffle.trace")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("tick-workers=1 trace diverged from the recorded serial engine")
	}
	for _, w := range []int{0, 2, 8} {
		if !bytes.Equal(runTrace(w), want) {
			t.Errorf("tick-workers=%d trace diverged from serial golden", w)
		}
	}
}
