package harness

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// determinismGrid is a mixed-protocol, mixed-adversary spec list: every
// point family the parallel runner must reproduce bit-for-bit,
// including the randomized replay adversary (seed-driven).
func determinismGrid(t *testing.T) []Spec {
	t.Helper()
	specs := []Spec{
		{Protocol: ProtocolBB, N: 9, F: 0},
		{Protocol: ProtocolBB, N: 9, F: 2},
		{Protocol: ProtocolBB, N: 9, F: 2, Fault: FaultSpam},
		{Protocol: ProtocolWBA, N: 9, F: 3},
		{Protocol: ProtocolWBA, N: 9, F: 2, Fault: FaultSpam},
		{Protocol: ProtocolStrongBA, N: 7, F: 1},
		{Protocol: ProtocolEchoBB, N: 7, F: 1},
		{Protocol: ProtocolDolevStrong, N: 7, F: 1},
		{Protocol: ProtocolWBA, N: 9, F: 3, Fault: FaultReplay, Seed: 7},
		{Protocol: ProtocolWBA, N: 9, F: 3, Fault: FaultReplay, Seed: 8},
	}
	if !testing.Short() {
		more, err := Grid(Spec{Protocol: ProtocolBB}, []int{7, 11, 15}, []int{0, 1, 3, 5}, 2)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, more...)
	}
	return specs
}

// TestParallelDeterminism is the runner's core guarantee: the same grid
// run sequentially and at several worker counts yields identical
// per-point metrics, decisions, and CSV bytes.
func TestParallelDeterminism(t *testing.T) {
	specs := determinismGrid(t)
	ref, err := Sequential().Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if err := WriteCSV(&refCSV, ref); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		outs, err := Pool{Workers: workers}.Run(specs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(outs) != len(ref) {
			t.Fatalf("workers=%d: %d outcomes, want %d", workers, len(outs), len(ref))
		}
		for i := range outs {
			if !reflect.DeepEqual(outs[i], ref[i]) {
				t.Errorf("workers=%d point %d (%s n=%d f=%d): parallel outcome differs from sequential\n got %+v\nwant %+v",
					workers, i, specs[i].Protocol, specs[i].N, specs[i].F, outs[i], ref[i])
			}
		}
		var csv bytes.Buffer
		if err := WriteCSV(&csv, outs); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(csv.Bytes(), refCSV.Bytes()) {
			t.Errorf("workers=%d: CSV bytes differ from sequential run", workers)
		}
	}
}

// TestExperimentReportsDeterministic checks a full experiment — the
// layer-breakdown report with map-ordered sections — is byte-identical
// across pools.
func TestExperimentReportsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment is slow")
	}
	e, ok := ExperimentByID("f1")
	if !ok {
		t.Fatal("f1 not registered")
	}
	ref, err := e.Run(Sequential())
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Run(Pool{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Errorf("parallel report differs from sequential:\n got: %q\nwant: %q", got, ref)
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, 9, 2, 0) != DeriveSeed(1, 9, 2, 0) {
		t.Error("DeriveSeed is not deterministic")
	}
	seen := make(map[int64][]int64)
	for _, c := range [][]int64{
		{1, 9, 2, 0}, {1, 9, 2, 1}, {1, 9, 3, 0}, {1, 11, 2, 0}, {2, 9, 2, 0},
		{1, 2, 9, 0}, // coordinate order matters
	} {
		s := DeriveSeed(c[0], c[1:]...)
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision: %v and %v both derive %d", prev, c, s)
		}
		seen[s] = c
	}
}

func TestGrid(t *testing.T) {
	t.Run("skips infeasible f", func(t *testing.T) {
		specs, err := Grid(Spec{Protocol: ProtocolBB}, []int{7, 11}, []int{0, 3, 5}, 1)
		if err != nil {
			t.Fatal(err)
		}
		// n=7 has t=3, so f=5 is skipped there; n=11 (t=5) keeps all three.
		want := []struct{ n, f int }{{7, 0}, {7, 3}, {11, 0}, {11, 3}, {11, 5}}
		if len(specs) != len(want) {
			t.Fatalf("got %d specs, want %d", len(specs), len(want))
		}
		for i, w := range want {
			if specs[i].N != w.n || specs[i].F != w.f {
				t.Errorf("specs[%d] = (n=%d, f=%d), want (n=%d, f=%d)", i, specs[i].N, specs[i].F, w.n, w.f)
			}
		}
	})
	t.Run("reps derive distinct seeds", func(t *testing.T) {
		specs, err := Grid(Spec{Protocol: ProtocolWBA, Seed: 3}, []int{9}, []int{0, 1}, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(specs) != 6 {
			t.Fatalf("got %d specs, want 6", len(specs))
		}
		seeds := make(map[int64]bool)
		for _, s := range specs {
			if seeds[s.Seed] {
				t.Errorf("duplicate derived seed %d", s.Seed)
			}
			seeds[s.Seed] = true
		}
		// Re-deriving must agree point-wise, independent of expansion order.
		if specs[4].Seed != DeriveSeed(3, 9, 1, 1) {
			t.Error("derived seed is not a pure function of (base, n, f, rep)")
		}
	})
	t.Run("custom resilience", func(t *testing.T) {
		specs, err := Grid(Spec{Protocol: ProtocolBB, T: 2}, []int{11}, []int{0, 2, 3}, 1)
		if err != nil {
			t.Fatal(err)
		}
		// t is pinned at 2, so f=3 is infeasible even though n=11.
		if len(specs) != 2 {
			t.Fatalf("got %d specs, want 2 (f=3 must be skipped at t=2)", len(specs))
		}
	})
	t.Run("rejects bad n", func(t *testing.T) {
		if _, err := Grid(Spec{Protocol: ProtocolBB}, []int{2}, []int{0}, 1); err == nil {
			t.Error("Grid accepted n=2")
		}
	})
}

func TestStreamEmitsInOrder(t *testing.T) {
	specs := make([]Spec, 12)
	for i := range specs {
		specs[i] = Spec{Protocol: ProtocolWBA, N: 7, F: i % 3}
	}
	for _, workers := range []int{1, 3, 5} {
		nextWant := 0
		err := Pool{Workers: workers}.Stream(specs, func(i int, o *Outcome) error {
			if i != nextWant {
				t.Fatalf("workers=%d: emitted point %d, want %d", workers, i, nextWant)
			}
			if o == nil || !o.Decided {
				t.Fatalf("workers=%d point %d: bad outcome %+v", workers, i, o)
			}
			nextWant++
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if nextWant != len(specs) {
			t.Fatalf("workers=%d: emitted %d points, want %d", workers, nextWant, len(specs))
		}
	}
}

func TestStreamBoundedWindow(t *testing.T) {
	// With the emit callback blocked, workers may claim at most 2×w
	// points (the reorder window) before stalling on tickets; the rest
	// of the grid must stay untouched until emit unblocks. This is the
	// bounded-memory half of the streaming contract.
	const w = 2
	const window = 2 * w
	specs := make([]Spec, 40)
	var started atomic.Int64
	for i := range specs {
		specs[i] = Spec{Protocol: ProtocolEchoBB, N: 7}
		once := new(sync.Once)
		specs[i].OnSend = func(types.Tick, sim.Message, bool) {
			once.Do(func() { started.Add(1) })
		}
	}
	release := make(chan struct{})
	go func() {
		// Wait until the started count stops growing (all workers are
		// stalled on the window), then let the collector proceed.
		prev := int64(-1)
		for {
			time.Sleep(20 * time.Millisecond)
			cur := started.Load()
			if cur == prev {
				break
			}
			prev = cur
		}
		close(release)
	}()
	var peak int64
	err := Pool{Workers: w}.Stream(specs, func(i int, o *Outcome) error {
		if i == 0 {
			<-release
			peak = started.Load()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > window {
		t.Errorf("with emit blocked, %d points started; the window bound is %d", peak, window)
	}
	if got := started.Load(); got != int64(len(specs)) {
		t.Errorf("%d points ran in total, want %d", got, len(specs))
	}
}

func TestStreamPropagatesRunError(t *testing.T) {
	specs := []Spec{
		{Protocol: ProtocolWBA, N: 7},
		{Protocol: ProtocolWBA, N: 0}, // invalid: Run must fail
		{Protocol: ProtocolWBA, N: 7},
	}
	for _, workers := range []int{1, 4} {
		_, err := Pool{Workers: workers}.Run(specs)
		if !errors.Is(err, ErrSpec) {
			t.Errorf("workers=%d: error = %v, want ErrSpec", workers, err)
		}
	}
}

func TestStreamPropagatesEmitError(t *testing.T) {
	specs := make([]Spec, 8)
	for i := range specs {
		specs[i] = Spec{Protocol: ProtocolEchoBB, N: 7}
	}
	sentinel := fmt.Errorf("stop after first point")
	for _, workers := range []int{1, 4} {
		calls := 0
		err := Pool{Workers: workers}.Stream(specs, func(i int, o *Outcome) error {
			calls++
			return sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: error = %v, want sentinel", workers, err)
		}
		if calls != 1 {
			t.Errorf("workers=%d: emit called %d times after error, want 1", workers, calls)
		}
	}
}

// TestPoolStatsMatchesSequential pins Pool.Stats to RunStats.
func TestPoolStatsMatchesSequential(t *testing.T) {
	spec := Spec{Protocol: ProtocolWBA, N: 9, F: 3, Fault: FaultReplay}
	seeds := []int64{1, 2, 3, 4, 5}
	ref, err := RunStats(spec, seeds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Pool{Workers: 4}.Stats(spec, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("parallel stats differ: got %+v, want %+v", got, ref)
	}
}

// TestPoolConcurrentUse runs several sweeps on one pool value from
// multiple goroutines — Pool must be stateless and reusable.
func TestPoolConcurrentUse(t *testing.T) {
	pool := Pool{Workers: 2}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			outs, err := pool.Sweep(Spec{Protocol: ProtocolWBA}, []int{7, 9}, []int{0, 1})
			if err == nil && len(outs) != 4 {
				err = fmt.Errorf("got %d outcomes, want 4", len(outs))
			}
			errs[g] = err
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}
