// Package harness configures, executes, and summarizes simulator runs of
// every protocol in the repository. It is the engine behind the benchmark
// suite (bench_test.go), the experiment CLI (cmd/adaptiveba-bench), and
// the examples: one Spec in, one Outcome with the paper's cost metrics
// out.
package harness

import (
	"crypto/rand"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"adaptiveba/internal/acs"
	"adaptiveba/internal/adversary"
	"adaptiveba/internal/adversary/attacks"
	"adaptiveba/internal/baseline/committee"
	"adaptiveba/internal/baseline/dolevstrong"
	"adaptiveba/internal/baseline/echobb"
	"adaptiveba/internal/baseline/floodset"
	"adaptiveba/internal/core/bb"
	"adaptiveba/internal/core/bbviaba"
	"adaptiveba/internal/core/strongba"
	"adaptiveba/internal/core/valid"
	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/engine"
	"adaptiveba/internal/fallback"
	"adaptiveba/internal/metrics"
	"adaptiveba/internal/oracle"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

// Protocol selects the algorithm under test.
type Protocol string

// Protocols known to the harness.
const (
	// ProtocolBB is the paper's adaptive Byzantine Broadcast (Alg. 1+2).
	ProtocolBB Protocol = "bb"
	// ProtocolWBA is the paper's adaptive weak BA (Alg. 3+4).
	ProtocolWBA Protocol = "wba"
	// ProtocolStrongBA is the paper's binary strong BA (Alg. 5).
	ProtocolStrongBA Protocol = "strongba"
	// ProtocolBBViaBA is the classic reduction BB-from-strong-BA that the
	// paper recalls in Section 5 (binary values only).
	ProtocolBBViaBA Protocol = "bb-via-ba"
	// ProtocolDolevStrong is the classic BB baseline.
	ProtocolDolevStrong Protocol = "dolev-strong"
	// ProtocolEchoBB is the naive always-quadratic BB baseline.
	ProtocolEchoBB Protocol = "echo-bb"
	// ProtocolFallback is A_fallback run directly (the non-adaptive
	// strong BA used as the quadratic-regime baseline).
	ProtocolFallback Protocol = "fallback"
	// ProtocolFloodSet is the early-stopping CRASH-fault consensus from
	// the Section 4 related-work discussion: adaptive rounds, quadratic
	// words — the mirror image of the paper's protocols.
	ProtocolFloodSet Protocol = "floodset"
	// ProtocolCommittee is the King–Saia-style Õ(√n)-words-per-process
	// committee-sampling baseline (CRASH faults): the large-n rival the
	// scale benchmark compares the adaptive protocol against.
	ProtocolCommittee Protocol = "committee"
	// ProtocolACS is the BKR agreement-on-common-subset round: every
	// process proposes a batch of Spec.Batch commands, n concurrent BBs
	// disseminate them, n binary strong-BA votes decide the committed
	// subset (internal/acs).
	ProtocolACS Protocol = "acs"
)

// Fault selects the failure pattern applied to the run.
type Fault string

// Fault patterns.
const (
	// FaultCrash crashes processes 1..F at tick 0: it takes out the first
	// F rotating phase leaders while sparing p0 (the BB sender and the
	// strong BA leader), the pattern that maximizes non-silent phases.
	FaultCrash Fault = "crash"
	// FaultCrashLeader crashes processes 0..F-1, including p0.
	FaultCrashLeader Fault = "crash-leader"
	// FaultReplay crashes ⌈F/1⌉ processes and replays stale honest
	// traffic from them (freshness attack).
	FaultReplay Fault = "replay"
	// FaultSpam makes the corrupted processes wastefully initiate their
	// rotating-leader phases and ignore the answers — the worst-case run
	// family behind the O(n(f+1)) bound (BB and weak BA only; other
	// protocols fall back to FaultCrash).
	FaultSpam Fault = "spam"
	// FaultStagger crashes one process per tick (process i at tick i+1) —
	// the classic worst case for early-stopping round complexity.
	FaultStagger Fault = "stagger"
)

// Inputs selects how process inputs are assigned.
type Inputs string

// Input assignments.
const (
	// InputsUnanimous gives every process the same value.
	InputsUnanimous Inputs = "unanimous"
	// InputsDistinct gives every process a unique value (binary
	// protocols split ~evenly instead).
	InputsDistinct Inputs = "distinct"
)

// Spec describes one run. It is the composed form the runner consumes:
// prefer building it from the three orthogonal descriptors via Compose
// (Workload × Deployment × FaultPlan, see descriptor.go) or running
// them directly with RunWorkload — filling a flat 25-field literal is
// the deprecated style, kept working for instrumentation-heavy callers
// and pinned byte-identical to the descriptor path by the parity tests.
type Spec struct {
	Protocol Protocol
	N        int
	// T overrides the corruption threshold (default floor((n-1)/2), the
	// paper's optimal n = 2t+1). Any n >= 2t+1 is supported — Section 8
	// notes the BB/weak BA constructions tolerate improved resilience.
	T      int
	F      int
	Fault  Fault  // default FaultCrash
	Inputs Inputs // default InputsUnanimous
	// Value is the unanimous input / BB broadcast value (default "v";
	// binary protocols use 1).
	Value types.Value
	// PerProcessInputs, when non-nil, assigns each process its own input
	// (length N) and overrides Inputs/Value for the agreement protocols.
	// For ProtocolACS the values must be acs.EncodeBatch frames.
	PerProcessInputs []types.Value
	// Batch is the per-proposer batch size for ProtocolACS (default 1):
	// each process proposes that many synthetic commands, so one round
	// commits up to N×Batch requests.
	Batch int
	// Predicate overrides weak BA's validity predicate (default:
	// accept any non-⊥ value).
	Predicate func(types.Value) bool
	// Sender is the BB designated sender / echo & DS sender (default 0).
	Sender types.ProcessID
	// Seed drives randomized adversaries.
	Seed int64
	// ShuffleSeed permutes per-tick message delivery order (0 = natural
	// order); correct protocols are insensitive to it.
	ShuffleSeed int64
	// CertMode selects the threshold-certificate encoding (default
	// compact).
	CertMode threshold.Mode
	// Ed25519 switches from the fast HMAC scheme to real signatures.
	Ed25519 bool
	// MeasureBytes additionally encodes every payload through the wire
	// registry to count bytes on the wire (slower; off by default).
	MeasureBytes bool
	// CountOps wraps the signature scheme with operation counters and
	// reports SignOps/VerifyOps in the outcome. The counter sits below
	// the verification cache, so VerifyOps counts verifications actually
	// computed — with the cache on, deduplicated repeats are not counted
	// (that saving is the fast path's whole point; see CacheHits).
	CountOps bool
	// NoVerifyCache disables the run's verification fast path (shared
	// content-addressed memoization of signature/certificate checks plus
	// parallel aggregate-share verification) for A/B comparisons. The
	// cache affects CPU cost only: words, messages, decisions, and CSVs
	// are byte-identical in both modes.
	NoVerifyCache bool
	// CertWorkers bounds the per-certificate share-verification fan-out
	// (0 = one worker per CPU, 1 = serial).
	CertWorkers int
	// TickWorkers bounds the simulator's per-tick fan-out of honest
	// machine stepping (0 = one worker per CPU, 1 = serial). Output is
	// byte-identical at any value; see sim.Config.Workers.
	TickWorkers int
	// WBAPhases / BBPhases override phase counts (ablations).
	WBAPhases int
	BBPhases  int
	// DisableSilentPhases removes the adaptivity mechanism (ablation).
	DisableSilentPhases bool
	// Trace, if set, receives the message trace.
	Trace io.Writer
	// Halt, if set, is polled every tick; returning true aborts the run
	// with sim.ErrHalted (the public API's context-cancellation hook).
	Halt func(now types.Tick) bool
	// OnSend, if set, observes every sent message (structured tracing).
	OnSend func(now types.Tick, m sim.Message, honest bool)
	// Adversary, if set, overrides the Fault/F-derived adversary: the
	// factory is invoked once per run with the run's tick budget and must
	// return a fresh sim.Adversary (nil for a failure-free run). The
	// schedule explorer (internal/explore) uses this hook to evaluate
	// searched schedules through the harness; the returned adversary's
	// corruption schedule is still validated against t by the simulator.
	Adversary func(maxTicks types.Tick) sim.Adversary
	// Monitor attaches the wire-level invariant oracle (internal/oracle)
	// to the run; violations land in Outcome.InvariantViolations.
	Monitor bool
	// Sched selects the engine's session scheduling policy for RunEngine
	// (engine.Static or engine.Eager; nil = Static). Solo Run ignores it.
	Sched engine.Scheduler
}

// Outcome summarizes one run.
type Outcome struct {
	Spec Spec

	Words      int64
	Messages   int64
	Signatures int64
	Bytes      int64 // only when Spec.MeasureBytes
	Combines   int64
	SignOps    int64 // only when Spec.CountOps
	VerifyOps  int64 // only when Spec.CountOps
	Ticks      types.Tick

	// Verification fast-path counters (zero when Spec.NoVerifyCache).
	CacheHits   int64
	CacheMisses int64
	CacheWaits  int64

	Decided   bool // every honest process decided
	Agreement bool
	Decision  types.Value

	// FallbackCount is the number of honest processes that executed
	// A_fallback (adaptive protocols only).
	FallbackCount int
	// DecisionTick is the latest tick at which an honest process decided
	// (the run's decision latency in δ units; adaptive protocols only).
	DecisionTick types.Tick
	// InvariantViolations holds the oracle's findings (Spec.Monitor only).
	InvariantViolations []string
	// ByLayer is the per-protocol-layer word breakdown (Figure 1).
	ByLayer map[string]metrics.Stats
}

// Errors returned by the harness.
var (
	ErrSpec = errors.New("harness: invalid spec")
)

// Run executes one spec in the simulator.
func Run(spec Spec) (*Outcome, error) {
	if spec.N < 3 {
		return nil, fmt.Errorf("%w: n=%d", ErrSpec, spec.N)
	}
	var params types.Params
	var err error
	if spec.T > 0 {
		params, err = types.Custom(spec.N, spec.T)
	} else {
		params, err = types.NewParams(spec.N)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	if spec.F < 0 || spec.F > params.T {
		return nil, fmt.Errorf("%w: f=%d with t=%d", ErrSpec, spec.F, params.T)
	}
	if spec.Fault == "" {
		spec.Fault = FaultCrash
	}
	if spec.Inputs == "" {
		spec.Inputs = InputsUnanimous
	}
	if spec.CertMode == 0 {
		spec.CertMode = threshold.ModeCompact
	}
	if spec.Value == nil {
		spec.Value = types.Value("v")
	}

	var scheme sig.Scheme
	if spec.Ed25519 {
		scheme, err = sig.NewEd25519Ring(spec.N, rand.Reader)
	} else {
		seed := fmt.Sprintf("harness-%d", spec.Seed)
		scheme, err = sig.NewHMACRing(spec.N, []byte(seed))
	}
	if err != nil {
		return nil, fmt.Errorf("harness: scheme: %w", err)
	}
	var counter *sig.Counting
	if spec.CountOps {
		counter = sig.NewCounting(scheme)
		scheme = counter
	}
	var copts []proto.CryptoOption
	if spec.NoVerifyCache {
		copts = append(copts, proto.WithoutVerifyCache())
	}
	if spec.CertWorkers > 0 {
		copts = append(copts, proto.WithCertVerifyWorkers(spec.CertWorkers))
	}
	crypto := proto.NewCrypto(params, scheme, spec.CertMode, []byte("harness-dealer"), copts...)

	run := &runner{spec: spec, params: params, crypto: crypto, counter: counter}
	return run.execute()
}

type runner struct {
	spec    Spec
	params  types.Params
	crypto  *proto.Crypto
	counter *sig.Counting

	wbaMachines map[types.ProcessID]*wba.Machine
	sbaMachines map[types.ProcessID]*strongba.Machine
	bbMachines  map[types.ProcessID]*bb.Machine
	fsMachines  map[types.ProcessID]*floodset.Machine
	cmMachines  map[types.ProcessID]*committee.Machine
	acsMachines map[types.ProcessID]*acs.Machine
}

// crashSet derives the crashed process IDs from the fault pattern.
func (r *runner) crashSet() []types.ProcessID {
	ids := make([]types.ProcessID, 0, r.spec.F)
	start := 1
	if r.spec.Fault == FaultCrashLeader {
		start = 0
	}
	for i := 0; len(ids) < r.spec.F; i++ {
		ids = append(ids, types.ProcessID((start+i)%r.spec.N))
	}
	return ids
}

// adversaryFor builds the spec's adversary (nil when f=0).
func (r *runner) adversaryFor(maxTicks types.Tick) sim.Adversary {
	if r.spec.Adversary != nil {
		return r.spec.Adversary(maxTicks)
	}
	if r.spec.F == 0 {
		return nil
	}
	ids := r.crashSet()
	switch r.spec.Fault {
	case FaultStagger:
		at := make(map[types.ProcessID]types.Tick, len(ids))
		for i, id := range ids {
			at[id] = types.Tick(i + 1)
		}
		return adversary.NewCrashAt(at)
	case FaultReplay:
		return adversary.NewReplay(r.spec.Seed, maxTicks/2, ids...)
	case FaultSpam:
		switch r.spec.Protocol {
		case ProtocolBB:
			return attacks.NewBBPhaseSpam(ids...)
		case ProtocolWBA:
			return attacks.NewWBAPhaseSpam(r.inputFor(0, false), ids...)
		default:
			return adversary.NewCrash(ids...)
		}
	default:
		return adversary.NewCrash(ids...)
	}
}

// inputFor assigns process inputs.
func (r *runner) inputFor(id types.ProcessID, binary bool) types.Value {
	if r.spec.PerProcessInputs != nil {
		if int(id) < len(r.spec.PerProcessInputs) {
			return r.spec.PerProcessInputs[id]
		}
		return nil
	}
	switch r.spec.Inputs {
	case InputsDistinct:
		if binary {
			return types.BinaryValue(int(id)%2 == 0)
		}
		return types.Value(fmt.Sprintf("v%d", int(id)))
	default:
		if binary {
			return types.One
		}
		return r.spec.Value
	}
}

// execute builds the factory and runs the simulation.
func (r *runner) execute() (*Outcome, error) {
	var (
		factory  func(types.ProcessID) proto.Machine
		maxTicks types.Tick
		buildErr error
	)
	switch r.spec.Protocol {
	case ProtocolBB:
		r.bbMachines = make(map[types.ProcessID]*bb.Machine)
		probe := bb.NewMachine(r.bbConfig(0))
		maxTicks = probe.MaxTicks() * 2
		factory = func(id types.ProcessID) proto.Machine {
			m := bb.NewMachine(r.bbConfig(id))
			r.bbMachines[id] = m
			return m
		}
	case ProtocolWBA:
		r.wbaMachines = make(map[types.ProcessID]*wba.Machine)
		probe := wba.NewMachine(r.wbaConfig(0))
		maxTicks = probe.MaxTicks() * 2
		factory = func(id types.ProcessID) proto.Machine {
			m := wba.NewMachine(r.wbaConfig(id))
			r.wbaMachines[id] = m
			return m
		}
	case ProtocolStrongBA:
		r.sbaMachines = make(map[types.ProcessID]*strongba.Machine)
		probe, err := strongba.NewMachine(r.sbaConfig(0))
		if err != nil {
			return nil, err
		}
		maxTicks = probe.MaxTicks() * 2
		factory = func(id types.ProcessID) proto.Machine {
			m, err := strongba.NewMachine(r.sbaConfig(id))
			if err != nil {
				buildErr = err
				m, _ = strongba.NewMachine(r.sbaConfig(0))
			}
			r.sbaMachines[id] = m
			return m
		}
	case ProtocolBBViaBA:
		probe, err := bbviaba.NewMachine(r.bbviabaConfig(r.spec.Sender))
		if err != nil {
			return nil, err
		}
		maxTicks = probe.MaxTicks() * 2
		factory = func(id types.ProcessID) proto.Machine {
			m, err := bbviaba.NewMachine(r.bbviabaConfig(id))
			if err != nil {
				buildErr = err
				m, _ = bbviaba.NewMachine(r.bbviabaConfig(r.spec.Sender))
			}
			return m
		}
	case ProtocolDolevStrong:
		maxTicks = types.Tick(r.params.T+4) * 2
		factory = func(id types.ProcessID) proto.Machine {
			return dolevstrong.NewMachine(dolevstrong.Config{
				Params: r.params, Crypto: r.crypto, ID: id,
				Sender: r.spec.Sender, Input: r.spec.Value, Tag: "h/ds",
			})
		}
	case ProtocolEchoBB:
		maxTicks = 20
		factory = func(id types.ProcessID) proto.Machine {
			return echobb.NewMachine(echobb.Config{
				Params: r.params, Crypto: r.crypto, ID: id,
				Sender: r.spec.Sender, Input: r.spec.Value, Tag: "h/echo",
			})
		}
	case ProtocolFloodSet:
		maxTicks = types.Tick(r.params.T+6) * 2
		r.fsMachines = make(map[types.ProcessID]*floodset.Machine)
		factory = func(id types.ProcessID) proto.Machine {
			m := floodset.NewMachine(floodset.Config{
				Params: r.params, ID: id, Input: r.inputFor(id, false),
			})
			r.fsMachines[id] = m
			return m
		}
	case ProtocolCommittee:
		maxTicks = types.Tick(2 * (committee.Size(r.spec.N) + 8))
		r.cmMachines = make(map[types.ProcessID]*committee.Machine)
		factory = func(id types.ProcessID) proto.Machine {
			m := committee.NewMachine(committee.Config{
				Params: r.params, ID: id, Input: r.inputFor(id, false),
				// The sampling seed is public common randomness; every
				// process must derive the same committee, so it comes
				// from the spec, not the process.
				Seed: uint64(r.spec.Seed) + 0x636d7465, // "cmte"
			})
			r.cmMachines[id] = m
			return m
		}
	case ProtocolACS:
		r.acsMachines = make(map[types.ProcessID]*acs.Machine)
		probe := acs.NewMachine(r.acsConfig(0))
		maxTicks = probe.MaxTicks() + 4
		factory = func(id types.ProcessID) proto.Machine {
			m := acs.NewMachine(r.acsConfig(id))
			r.acsMachines[id] = m
			return m
		}
	case ProtocolFallback:
		maxTicks = types.Tick(r.params.T+4) * 4
		factory = func(id types.ProcessID) proto.Machine {
			return fallback.NewMachine(fallback.Config{
				Params: r.params, Crypto: r.crypto, ID: id,
				Input: r.inputFor(id, false), Tag: "h/fb", RoundDur: 1,
			})
		}
	default:
		return nil, fmt.Errorf("%w: unknown protocol %q", ErrSpec, r.spec.Protocol)
	}

	rec := metrics.NewRecorder()
	onSend := r.spec.OnSend
	var monitors []interface{ Violations() []string }
	if r.spec.Monitor {
		var hooks []func(types.Tick, sim.Message, bool)
		if user := onSend; user != nil {
			hooks = append(hooks, user)
		}
		switch r.spec.Protocol {
		case ProtocolWBA:
			m := oracle.NewWBA(r.params, r.crypto, "h/wba", 0)
			monitors = append(monitors, m)
			hooks = append(hooks, m.OnSend)
		case ProtocolBB:
			m := oracle.NewWBA(r.params, r.crypto, "h/bb/wba", 0)
			monitors = append(monitors, m)
			hooks = append(hooks, m.OnSend)
		case ProtocolStrongBA:
			m := oracle.NewStrongBA(r.params, r.crypto, "h/sba")
			monitors = append(monitors, m)
			hooks = append(hooks, m.OnSend)
		}
		if len(hooks) > 0 {
			onSend = func(now types.Tick, msg sim.Message, honest bool) {
				for _, h := range hooks {
					h(now, msg, honest)
				}
			}
		}
	}
	var sizeOf func(proto.Payload) int
	if r.spec.MeasureBytes {
		reg := wire.NewRegistry()
		acs.RegisterWire(reg)
		bb.RegisterWire(reg)
		wba.RegisterWire(reg)
		strongba.RegisterWire(reg)
		dolevstrong.RegisterWire(reg)
		echobb.RegisterWire(reg)
		sizeOf = func(p proto.Payload) int {
			n, err := reg.SizeOf(p)
			if err != nil {
				return 0
			}
			return n
		}
	}
	res, err := sim.Run(sim.Config{
		Params:      r.params,
		Crypto:      r.crypto,
		Factory:     factory,
		Adversary:   r.adversaryFor(maxTicks),
		MaxTicks:    maxTicks,
		Recorder:    rec,
		Trace:       r.spec.Trace,
		SizeOf:      sizeOf,
		ShuffleSeed: r.spec.ShuffleSeed,
		OnSend:      onSend,
		Workers:     r.spec.TickWorkers,
		Halt:        r.spec.Halt,
	})
	if err != nil {
		return nil, err
	}
	if buildErr != nil {
		return nil, buildErr
	}

	decision, agreement := res.Agreement()
	out := &Outcome{
		Spec:          r.spec,
		Words:         res.Report.Honest.Words,
		Messages:      res.Report.Honest.Messages,
		Signatures:    res.Report.Honest.Signatures,
		Bytes:         res.Report.Honest.Bytes,
		Combines:      res.Report.Combines,
		Ticks:         res.Ticks,
		Decided:       res.AllDecided() && !res.TimedOut,
		Agreement:     agreement,
		Decision:      decision,
		ByLayer:       res.Report.ByLayer,
		FallbackCount: r.fallbackCount(res),
		DecisionTick:  r.decisionTick(res),
		CacheHits:     res.Report.CacheHits,
		CacheMisses:   res.Report.CacheMisses,
		CacheWaits:    res.Report.CacheWaits,
	}
	if r.counter != nil {
		out.SignOps = r.counter.Signs()
		out.VerifyOps = r.counter.Verifies()
	}
	for _, m := range monitors {
		out.InvariantViolations = append(out.InvariantViolations, m.Violations()...)
	}
	return out, nil
}

func (r *runner) bbConfig(id types.ProcessID) bb.Config {
	return bb.Config{
		Params: r.params, Crypto: r.crypto, ID: id,
		Sender: r.spec.Sender, Input: r.spec.Value, Tag: "h/bb",
		Phases: r.spec.BBPhases, WBAPhases: r.spec.WBAPhases,
		DisableSilentPhases: r.spec.DisableSilentPhases,
	}
}

func (r *runner) wbaConfig(id types.ProcessID) wba.Config {
	pred := valid.NonBottom()
	if r.spec.Predicate != nil {
		pred = valid.Func{PredicateName: "custom", Fn: r.spec.Predicate}
	}
	return wba.Config{
		Params: r.params, Crypto: r.crypto, ID: id,
		Input: r.inputFor(id, false), Predicate: pred,
		Tag: "h/wba", Phases: r.spec.WBAPhases,
		DisableSilentPhases: r.spec.DisableSilentPhases,
	}
}

func (r *runner) bbviabaConfig(id types.ProcessID) bbviaba.Config {
	bit := r.spec.Value
	if !bit.IsBinary() {
		bit = types.One
	}
	return bbviaba.Config{
		Params: r.params, Crypto: r.crypto, ID: id,
		Sender: r.spec.Sender, Input: bit, Tag: "h/bbr",
	}
}

func (r *runner) sbaConfig(id types.ProcessID) strongba.Config {
	return strongba.Config{
		Params: r.params, Crypto: r.crypto, ID: id,
		Input: r.inputFor(id, true), Tag: "h/sba",
	}
}

// acsBatch builds process id's proposed batch: Spec.Batch synthetic
// commands (deterministic per proposer), unless PerProcessInputs
// supplies a pre-framed batch.
func (r *runner) acsBatch(id types.ProcessID) types.Value {
	if r.spec.PerProcessInputs != nil {
		if int(id) < len(r.spec.PerProcessInputs) {
			return r.spec.PerProcessInputs[id]
		}
		return nil
	}
	size := r.spec.Batch
	if size <= 0 {
		size = 1
	}
	cmds := make([]types.Value, 0, size)
	for j := 0; j < size; j++ {
		cmds = append(cmds, types.Value(fmt.Sprintf("SET a%d-%d v%d", int(id), j, j)))
	}
	return acs.EncodeBatch(cmds)
}

func (r *runner) acsConfig(id types.ProcessID) acs.Config {
	return acs.Config{
		Params: r.params, Crypto: r.crypto, ID: id,
		Input: r.acsBatch(id), Tag: "h/acs",
	}
}

// fallbackCount counts honest processes that ran A_fallback.
func (r *runner) fallbackCount(res *sim.Result) int {
	count := 0
	for _, id := range res.Honest {
		switch {
		case r.wbaMachines != nil:
			if m := r.wbaMachines[id]; m != nil && m.RanFallback() {
				count++
			}
		case r.sbaMachines != nil:
			if m := r.sbaMachines[id]; m != nil && m.RanFallback() {
				count++
			}
		case r.bbMachines != nil:
			if m := r.bbMachines[id]; m != nil && m.WBA() != nil && m.WBA().RanFallback() {
				count++
			}
		case r.acsMachines != nil:
			if m := r.acsMachines[id]; m != nil && m.RanFallback() {
				count++
			}
		}
	}
	return count
}

// decisionTick returns the latest honest decision tick (0 for protocols
// without latency introspection).
func (r *runner) decisionTick(res *sim.Result) types.Tick {
	var latest types.Tick
	note := func(t types.Tick) {
		if t > latest {
			latest = t
		}
	}
	for _, id := range res.Honest {
		switch {
		case r.wbaMachines != nil:
			if m := r.wbaMachines[id]; m != nil {
				note(m.DecidedAtTick())
			}
		case r.sbaMachines != nil:
			if m := r.sbaMachines[id]; m != nil {
				note(m.DecidedAtTick())
			}
		case r.bbMachines != nil:
			if m := r.bbMachines[id]; m != nil {
				note(m.DecidedAtTick())
			}
		case r.fsMachines != nil:
			if m := r.fsMachines[id]; m != nil {
				note(types.Tick(m.Rounds()))
			}
		case r.cmMachines != nil:
			if m := r.cmMachines[id]; m != nil {
				note(types.Tick(m.Rounds()))
			}
		case r.acsMachines != nil:
			if m := r.acsMachines[id]; m != nil {
				note(m.DecidedAtTick())
			}
		}
	}
	return latest
}

// Sweep runs the spec across (n, f) combinations (skipping infeasible
// f > t pairs), in parallel across CPU cores — runs are independent
// simulations with private crypto suites. Results are identical to a
// sequential sweep (see Pool's determinism contract in parallel.go).
func Sweep(base Spec, ns, fs []int) ([]Outcome, error) {
	return Parallel().Sweep(base, ns, fs)
}

// Table renders outcomes as an aligned text table.
func Table(outcomes []Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %6s %5s %10s %10s %7s %9s %7s %7s\n",
		"protocol", "n", "f", "words", "msgs", "ticks", "words/n", "fb", "ok")
	for i := range outcomes {
		o := &outcomes[i]
		okStr := "yes"
		if !o.Decided || !o.Agreement {
			okStr = "NO"
		}
		fmt.Fprintf(&b, "%-14s %6d %5d %10d %10d %7d %9.1f %7d %7s\n",
			o.Spec.Protocol, o.Spec.N, o.Spec.F, o.Words, o.Messages, o.Ticks,
			float64(o.Words)/float64(o.Spec.N), o.FallbackCount, okStr)
	}
	return b.String()
}

// WriteCSV emits outcomes as CSV for external plotting.
func WriteCSV(w io.Writer, outcomes []Outcome) error {
	cw := csv.NewWriter(w)
	header := []string{
		"protocol", "n", "t", "f", "fault", "words", "messages",
		"signatures", "ticks", "decision_tick", "fallback_procs",
		"decided", "agreement",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range outcomes {
		o := &outcomes[i]
		t := o.Spec.T
		if t == 0 {
			t = (o.Spec.N - 1) / 2
		}
		row := []string{
			string(o.Spec.Protocol),
			strconv.Itoa(o.Spec.N),
			strconv.Itoa(t),
			strconv.Itoa(o.Spec.F),
			string(o.Spec.Fault),
			strconv.FormatInt(o.Words, 10),
			strconv.FormatInt(o.Messages, 10),
			strconv.FormatInt(o.Signatures, 10),
			strconv.FormatInt(int64(o.Ticks), 10),
			strconv.FormatInt(int64(o.DecisionTick), 10),
			strconv.Itoa(o.FallbackCount),
			strconv.FormatBool(o.Decided),
			strconv.FormatBool(o.Agreement),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Stats aggregates repeated runs of one spec across seeds — the honest
// way to report randomized-adversary numbers.
type Stats struct {
	Spec  Spec
	Runs  int
	Words struct{ Min, Median, Max int64 }
	Ticks struct{ Min, Median, Max types.Tick }
	// Violations counts runs that failed termination or agreement
	// (always 0 for a correct implementation).
	Violations int
}

// RunStats executes the spec once per seed and aggregates. The
// aggregation is order-independent, so any Pool produces the same
// Stats; use Pool.Stats directly to spread the seeds across workers.
func RunStats(spec Spec, seeds []int64) (*Stats, error) {
	return Sequential().Stats(spec, seeds)
}
