package harness

import (
	"bytes"
	"fmt"
	"testing"

	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/types"
)

// TestVerifyCacheDeterminism is the cache-on/cache-off regression for the
// determinism contract: the verification fast path may change CPU cost
// only. For an aggregate-mode sweep, at several pool worker counts, the
// sweep outcomes must be deep-equal (after stripping the cache's own
// knobs and counters) and the emitted CSV must be byte-identical.
func TestVerifyCacheDeterminism(t *testing.T) {
	base := Spec{
		Protocol: ProtocolBB,
		Value:    types.Value("v"),
		Seed:     7,
		CertMode: threshold.ModeAggregate,
		CountOps: true,
	}
	ns := []int{5, 9}
	fs := []int{0, 1}

	type variant struct {
		name    string
		noCache bool
		workers int
	}
	variants := []variant{
		{"cache/pool1", false, 1},
		{"cache/pool2", false, 2},
		{"cache/pool4", false, 4},
		{"nocache/pool1", true, 1},
		{"nocache/pool4", true, 4},
	}
	type result struct {
		outcomes []Outcome
		csv      []byte
	}
	results := make([]result, len(variants))
	for i, v := range variants {
		spec := base
		spec.NoVerifyCache = v.noCache
		outs, err := Pool{Workers: v.workers}.Sweep(spec, ns, fs)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, outs); err != nil {
			t.Fatalf("%s: WriteCSV: %v", v.name, err)
		}
		results[i] = result{outcomes: outs, csv: buf.Bytes()}
	}

	ref := results[0]
	for i, v := range variants[1:] {
		got := results[i+1]
		if !bytes.Equal(got.csv, ref.csv) {
			t.Errorf("%s: CSV differs from %s:\n--- want ---\n%s\n--- got ---\n%s",
				v.name, variants[0].name, ref.csv, got.csv)
		}
		if len(got.outcomes) != len(ref.outcomes) {
			t.Fatalf("%s: %d outcomes, want %d", v.name, len(got.outcomes), len(ref.outcomes))
		}
		for j := range got.outcomes {
			if d := outcomeDiff(normalizeCacheFields(ref.outcomes[j]), normalizeCacheFields(got.outcomes[j])); d != "" {
				t.Errorf("%s outcome %d: %s", v.name, j, d)
			}
		}
	}

	// The cached variants must actually have exercised the cache, and the
	// uncached ones must not report phantom stats.
	for i, v := range variants {
		for j, o := range results[i].outcomes {
			if v.noCache {
				if o.CacheHits != 0 || o.CacheMisses != 0 || o.CacheWaits != 0 {
					t.Errorf("%s outcome %d: cache counters nonzero with cache off: %+v",
						v.name, j, o)
				}
			} else if o.CacheMisses == 0 {
				t.Errorf("%s outcome %d: cache never consulted", v.name, j)
			}
		}
	}
}

// normalizeCacheFields strips the fields the fast path is allowed to
// change: its own spec knob, its counters, and VerifyOps (which counts
// verifications actually computed, i.e. cache misses).
func normalizeCacheFields(o Outcome) Outcome {
	o.Spec.NoVerifyCache = false
	o.Spec.CertWorkers = 0
	o.CacheHits, o.CacheMisses, o.CacheWaits = 0, 0, 0
	o.VerifyOps = 0
	return o
}

// outcomeDiff compares the measurement fields that must be invariant
// across cache modes, returning a description of the first mismatch.
func outcomeDiff(a, b Outcome) string {
	type row struct {
		name string
		av   any
		bv   any
	}
	rows := []row{
		{"Words", a.Words, b.Words},
		{"Messages", a.Messages, b.Messages},
		{"Signatures", a.Signatures, b.Signatures},
		{"Combines", a.Combines, b.Combines},
		{"SignOps", a.SignOps, b.SignOps},
		{"Ticks", a.Ticks, b.Ticks},
		{"Decided", a.Decided, b.Decided},
		{"Agreement", a.Agreement, b.Agreement},
		{"FallbackCount", a.FallbackCount, b.FallbackCount},
		{"DecisionTick", a.DecisionTick, b.DecisionTick},
	}
	for _, r := range rows {
		if r.av != r.bv {
			return fmt.Sprintf("%s: %v != %v", r.name, r.av, r.bv)
		}
	}
	if !bytes.Equal(a.Decision, b.Decision) {
		return fmt.Sprintf("Decision: %q != %q", a.Decision, b.Decision)
	}
	if len(a.ByLayer) != len(b.ByLayer) {
		return fmt.Sprintf("ByLayer size: %d != %d", len(a.ByLayer), len(b.ByLayer))
	}
	for k, av := range a.ByLayer {
		if bv, ok := b.ByLayer[k]; !ok || av != bv {
			return fmt.Sprintf("ByLayer[%q]: %+v != %+v", k, av, bv)
		}
	}
	return ""
}

// TestVerifyCacheSavesWork pins the fast path's raison d'être: with the
// cache on, the computed verification count (VerifyOps under CountOps)
// drops strictly below the uncached protocol demand on an aggregate run.
func TestVerifyCacheSavesWork(t *testing.T) {
	spec := Spec{
		Protocol: ProtocolBB,
		N:        9,
		Value:    types.Value("v"),
		CertMode: threshold.ModeAggregate,
		CountOps: true,
	}
	cached, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	uspec := spec
	uspec.NoVerifyCache = true
	uncached, err := Run(uspec)
	if err != nil {
		t.Fatal(err)
	}
	if cached.VerifyOps >= uncached.VerifyOps {
		t.Errorf("cache saved nothing: %d computed vs %d uncached", cached.VerifyOps, uncached.VerifyOps)
	}
	if cached.CacheHits == 0 {
		t.Error("no cache hits on an aggregate BB run")
	}
	// Every computed signature verification is a cache miss, but misses
	// also include whole-certificate entries, so VerifyOps can only be
	// bounded by — never exceed — the miss count.
	if cached.VerifyOps > cached.CacheMisses {
		t.Errorf("VerifyOps (%d) > CacheMisses (%d): counter placement drifted",
			cached.VerifyOps, cached.CacheMisses)
	}
}
