// Parallel experiment runner: a worker-pool scheduler that fans
// independent grid points (one Spec each) out across workers, with
// per-run isolated state, deterministic per-point seed derivation, and
// streaming in-order result collection under a bounded reorder window.
//
// Determinism contract: Run(spec) depends only on the spec (every run
// builds a private signature ring, crypto suite, simulator, and
// recorder), and both Pool.Run and Pool.Stream deliver outcomes in grid
// order. A sweep executed with any worker count therefore produces
// byte-identical tables, CSVs, and reports; TestParallelDeterminism
// enforces this.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"adaptiveba/internal/types"
)

// Pool schedules independent harness runs across a fixed number of
// workers. The zero value uses one worker per CPU (GOMAXPROCS).
type Pool struct {
	// Workers is the worker count: <= 0 means GOMAXPROCS(0), 1 runs
	// strictly sequentially in the caller's goroutine.
	Workers int
}

// Sequential returns a pool that runs points one at a time.
func Sequential() Pool { return Pool{Workers: 1} }

// Parallel returns a pool with one worker per CPU.
func Parallel() Pool { return Pool{} }

// workers resolves the effective worker count for a job list.
func (p Pool) workers(jobs int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// pointErr labels a failed grid point with its coordinates.
func pointErr(i int, s Spec, err error) error {
	return fmt.Errorf("point %d (%s n=%d f=%d seed=%d): %w", i, s.Protocol, s.N, s.F, s.Seed, err)
}

// Stream executes every spec and hands each outcome to emit in spec
// order as soon as it is available. Memory stays bounded: at most
// 2×workers outcomes exist at once (in flight or awaiting their turn in
// the reorder window), so arbitrarily large grids can stream to disk.
// The first run or emit error aborts the remaining points.
func (p Pool) Stream(specs []Spec, emit func(i int, o *Outcome) error) error {
	n := len(specs)
	if n == 0 {
		return nil
	}
	if p.workers(n) == 1 {
		for i := range specs {
			o, err := Run(specs[i])
			if err != nil {
				return pointErr(i, specs[i], err)
			}
			if emit != nil {
				if err := emit(i, o); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return p.stream(specs, emit)
}

// stream is the multi-worker path of Stream.
func (p Pool) stream(specs []Spec, emit func(i int, o *Outcome) error) error {
	n := len(specs)
	w := p.workers(n)
	// The window caps claimed-but-unemitted points: a ticket is taken
	// when a worker claims a point and released when the collector emits
	// it, so no worker races more than `window` points ahead of the
	// in-order output cursor.
	window := 2 * w

	type slot struct {
		i   int
		o   *Outcome
		err error
	}
	var (
		next    atomic.Int64
		quit    = make(chan struct{})
		results = make(chan slot, window)
		tickets = make(chan struct{}, window)
		wg      sync.WaitGroup
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case tickets <- struct{}{}:
				case <-quit:
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					<-tickets // return the unused claim
					return
				}
				o, err := Run(specs[i])
				if err != nil {
					err = pointErr(i, specs[i], err)
				}
				// Never blocks: a held ticket guarantees buffer space.
				select {
				case results <- slot{i: i, o: o, err: err}:
				case <-quit:
					return
				}
			}
		}()
	}

	pending := make(map[int]*Outcome, window)
	emitted := 0
	var firstErr error
collect:
	for emitted < n {
		s := <-results
		if s.err != nil {
			firstErr = s.err
			break
		}
		pending[s.i] = s.o
		for {
			o, ok := pending[emitted]
			if !ok {
				continue collect
			}
			delete(pending, emitted)
			if emit != nil {
				if err := emit(emitted, o); err != nil {
					firstErr = err
					break collect
				}
			}
			<-tickets // emitted: the output cursor advanced, admit a new claim
			emitted++
		}
	}
	close(quit)
	wg.Wait()
	return firstErr
}

// Run executes every spec and returns the outcomes in spec order.
func (p Pool) Run(specs []Spec) ([]Outcome, error) {
	outs := make([]Outcome, 0, len(specs))
	err := p.Stream(specs, func(_ int, o *Outcome) error {
		outs = append(outs, *o)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// DeriveSeed maps a base seed plus grid coordinates (n, f, repetition,
// ...) to a per-point seed. The derivation is a pure function of the
// point, never of scheduling order, so sequential and parallel sweeps
// assign identical seeds — the root of the byte-identical guarantee for
// randomized adversaries.
func DeriveSeed(base int64, coords ...int64) int64 {
	x := splitmix64(uint64(base) + 0x9e3779b97f4a7c15)
	for _, c := range coords {
		x = splitmix64(x + 0x9e3779b97f4a7c15 + uint64(c))
	}
	return int64(x)
}

// Grid expands base across the (n, f) sweep lattice in row-major order,
// skipping infeasible f > t points. reps > 1 repeats each point that
// many times with DeriveSeed-assigned seeds; reps <= 1 keeps the base
// seed (one point per cell).
func Grid(base Spec, ns, fs []int, reps int) ([]Spec, error) {
	var specs []Spec
	for _, n := range ns {
		var params types.Params
		var err error
		if base.T > 0 {
			params, err = types.Custom(n, base.T)
		} else {
			params, err = types.NewParams(n)
		}
		if err != nil {
			return nil, err
		}
		for _, f := range fs {
			if f > params.T {
				continue
			}
			s := base
			s.N, s.F = n, f
			if reps <= 1 {
				specs = append(specs, s)
				continue
			}
			for r := 0; r < reps; r++ {
				s.Seed = DeriveSeed(base.Seed, int64(n), int64(f), int64(r))
				specs = append(specs, s)
			}
		}
	}
	return specs, nil
}

// Sweep runs the spec across (n, f) combinations on this pool.
func (p Pool) Sweep(base Spec, ns, fs []int) ([]Outcome, error) {
	specs, err := Grid(base, ns, fs, 1)
	if err != nil {
		return nil, err
	}
	return p.Run(specs)
}

// Stats executes the spec once per seed on this pool and aggregates.
func (p Pool) Stats(spec Spec, seeds []int64) (*Stats, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("%w: no seeds", ErrSpec)
	}
	specs := make([]Spec, len(seeds))
	for i, seed := range seeds {
		s := spec
		s.Seed = seed
		specs[i] = s
	}
	words := make([]int64, 0, len(seeds))
	ticks := make([]types.Tick, 0, len(seeds))
	st := &Stats{Spec: spec, Runs: len(seeds)}
	err := p.Stream(specs, func(_ int, o *Outcome) error {
		if !o.Decided || !o.Agreement {
			st.Violations++
		}
		words = append(words, o.Words)
		ticks = append(ticks, o.Ticks)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(words, func(a, b int) bool { return words[a] < words[b] })
	sort.Slice(ticks, func(a, b int) bool { return ticks[a] < ticks[b] })
	st.Words.Min, st.Words.Median, st.Words.Max = words[0], words[len(words)/2], words[len(words)-1]
	st.Ticks.Min, st.Ticks.Median, st.Ticks.Max = ticks[0], ticks[len(ticks)/2], ticks[len(ticks)-1]
	return st, nil
}
