package harness

import (
	"fmt"
	"testing"

	"adaptiveba/internal/types"
)

// TestSafetySweep is the X-SAFE gate from DESIGN.md §3: agreement,
// termination, and the protocol-specific validity property must hold for
// every protocol under every fault pattern, fault count, and seed in the
// matrix. Any violation here invalidates every measured number.
func TestSafetySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("safety sweep is slow")
	}
	protocols := []Protocol{ProtocolBB, ProtocolWBA, ProtocolStrongBA}
	faults := []Fault{FaultCrash, FaultCrashLeader, FaultReplay, FaultSpam}
	for _, p := range protocols {
		for _, fault := range faults {
			for _, n := range []int{3, 5, 9} {
				params, err := types.NewParams(n)
				if err != nil {
					t.Fatal(err)
				}
				for f := 0; f <= params.T; f++ {
					for seed := int64(1); seed <= 2; seed++ {
						name := fmt.Sprintf("%s/%s/n=%d/f=%d/seed=%d", p, fault, n, f, seed)
						o, err := Run(Spec{Protocol: p, N: n, F: f, Fault: fault, Seed: seed, Monitor: true})
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						if !o.Decided {
							t.Errorf("%s: termination violated", name)
						}
						if !o.Agreement {
							t.Errorf("%s: agreement violated", name)
						}
						if len(o.InvariantViolations) > 0 {
							t.Errorf("%s: oracle violations: %v", name, o.InvariantViolations)
						}
						checkValidity(t, name, o)
					}
				}
			}
		}
	}
}

// checkValidity asserts the protocol-specific validity property.
func checkValidity(t *testing.T, name string, o *Outcome) {
	t.Helper()
	switch o.Spec.Protocol {
	case ProtocolBB:
		// Sender is p0. With FaultCrashLeader and f >= 1 the sender is
		// corrupted: any common value (incl. ⊥) is fine. Otherwise the
		// decision must be the sender's value.
		senderCorrupt := o.Spec.Fault == FaultCrashLeader && o.Spec.F >= 1
		if !senderCorrupt && !o.Decision.Equal(types.Value("v")) {
			t.Errorf("%s: BB validity violated, decided %v", name, o.Decision)
		}
	case ProtocolWBA:
		// Unanimous correct inputs "v". The spam adversary proposes the
		// same valid value; replayers resend real messages. In every
		// pattern only "v" exists as a valid value, so unique validity
		// forces the decision to "v" (⊥ would require a second valid
		// value in the run).
		if !o.Decision.Equal(types.Value("v")) {
			t.Errorf("%s: unique validity violated, decided %v", name, o.Decision)
		}
	case ProtocolStrongBA:
		// Unanimous correct inputs 1: strong unanimity forces 1.
		if !o.Decision.Equal(types.One) {
			t.Errorf("%s: strong unanimity violated, decided %v", name, o.Decision)
		}
	}
}

// TestSafetySweepDistinctInputs repeats the sweep with per-process
// distinct inputs, where only agreement/termination (and binary-ness for
// strong BA) are required.
func TestSafetySweepDistinctInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("safety sweep is slow")
	}
	for _, p := range []Protocol{ProtocolWBA, ProtocolStrongBA, ProtocolFallback} {
		for _, f := range []int{0, 2, 4} {
			for seed := int64(1); seed <= 2; seed++ {
				name := fmt.Sprintf("%s/f=%d/seed=%d", p, f, seed)
				o, err := Run(Spec{Protocol: p, N: 9, F: f, Inputs: InputsDistinct, Fault: FaultReplay, Seed: seed})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !o.Decided || !o.Agreement {
					t.Errorf("%s: decided=%v agreement=%v", name, o.Decided, o.Agreement)
				}
				if p == ProtocolStrongBA && !o.Decision.IsBinary() && !o.Decision.IsBottom() {
					t.Errorf("%s: non-binary decision %v", name, o.Decision)
				}
			}
		}
	}
}

// TestDeliveryOrderInsensitivity reruns the protocols under adversarial
// per-tick delivery permutations: the decision must not depend on the
// order messages arrive within a round.
func TestDeliveryOrderInsensitivity(t *testing.T) {
	for _, p := range []Protocol{ProtocolBB, ProtocolWBA, ProtocolStrongBA} {
		var baseline types.Value
		for seed := int64(0); seed <= 5; seed++ {
			o, err := Run(Spec{Protocol: p, N: 9, F: 3, ShuffleSeed: seed})
			if err != nil {
				t.Fatalf("%s seed=%d: %v", p, seed, err)
			}
			if !o.Decided || !o.Agreement {
				t.Fatalf("%s seed=%d: decided=%v agreement=%v", p, seed, o.Decided, o.Agreement)
			}
			if seed == 0 {
				baseline = o.Decision
				continue
			}
			if !o.Decision.Equal(baseline) {
				t.Errorf("%s seed=%d: decision %v differs from natural-order %v",
					p, seed, o.Decision, baseline)
			}
		}
	}
}
