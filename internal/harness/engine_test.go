package harness

import (
	"testing"

	"adaptiveba/internal/types"
)

// TestRunEngineMatchesSolo pins the engine's determinism contract at the
// harness level: every session of a pipelined multi-session run must
// reproduce a solo Run of the same spec byte for byte — same decision,
// same agreement, same word/message counts, same fallback behavior, and
// same decision latency — at every window size.
func TestRunEngineMatchesSolo(t *testing.T) {
	specs := []Spec{
		{Protocol: ProtocolBB, N: 5, Value: types.Value("pin")},
		{Protocol: ProtocolBB, N: 5, F: 1, Fault: FaultCrash, Value: types.Value("pin")},
		{Protocol: ProtocolBB, N: 5, F: 2, Fault: FaultCrashLeader, Value: types.Value("pin")},
		{Protocol: ProtocolWBA, N: 5, Inputs: InputsDistinct},
		{Protocol: ProtocolWBA, N: 5, F: 1, Fault: FaultCrash},
		{Protocol: ProtocolStrongBA, N: 5, Inputs: InputsDistinct},
		{Protocol: ProtocolStrongBA, N: 5, F: 2, Fault: FaultCrash, Inputs: InputsDistinct},
	}
	const sessions = 6
	for _, spec := range specs {
		spec := spec
		solo, err := Run(spec)
		if err != nil {
			t.Fatalf("%s f=%d: solo run: %v", spec.Protocol, spec.F, err)
		}
		var fingerprint string
		for _, inflight := range []int{1, 3, sessions} {
			rep, err := RunEngine(spec, sessions, inflight, 0)
			if err != nil {
				t.Fatalf("%s f=%d W=%d: %v", spec.Protocol, spec.F, inflight, err)
			}
			if rep.Metrics.EngineLate != 0 {
				t.Errorf("%s f=%d W=%d: %d late messages", spec.Protocol, spec.F, inflight, rep.Metrics.EngineLate)
			}
			if fp := rep.Fingerprint(); inflight == 1 {
				fingerprint = fp
			} else if fp != fingerprint {
				t.Errorf("%s f=%d W=%d: fingerprint diverged from serial:\n%s\nvs\n%s",
					spec.Protocol, spec.F, inflight, fp, fingerprint)
			}
			for _, s := range rep.Sessions {
				if !s.Decision.Equal(solo.Decision) {
					t.Errorf("%s f=%d W=%d %s: decided %v, solo %v",
						spec.Protocol, spec.F, inflight, s.Name, s.Decision, solo.Decision)
				}
				if s.Agreement != solo.Agreement || s.AllDecided != solo.Decided {
					t.Errorf("%s f=%d W=%d %s: agreement=%t decided=%t, solo %t/%t",
						spec.Protocol, spec.F, inflight, s.Name, s.Agreement, s.AllDecided, solo.Agreement, solo.Decided)
				}
				if s.Words != solo.Words || s.Messages != solo.Messages {
					t.Errorf("%s f=%d W=%d %s: words/msgs %d/%d, solo %d/%d",
						spec.Protocol, spec.F, inflight, s.Name, s.Words, s.Messages, solo.Words, solo.Messages)
				}
				if s.FallbackProcs != solo.FallbackCount {
					t.Errorf("%s f=%d W=%d %s: fallback procs %d, solo %d",
						spec.Protocol, spec.F, inflight, s.Name, s.FallbackProcs, solo.FallbackCount)
				}
				if got := s.DecisionTick - s.Start; got != solo.DecisionTick {
					t.Errorf("%s f=%d W=%d %s: decision latency %d, solo %d",
						spec.Protocol, spec.F, inflight, s.Name, got, solo.DecisionTick)
				}
			}
		}
	}
}

// TestRunEngineRejectsUnsupportedSpecs keeps the engine's scope honest:
// protocols and fault patterns outside its determinism argument are
// refused up front rather than silently approximated.
func TestRunEngineRejectsUnsupportedSpecs(t *testing.T) {
	if _, err := RunEngine(Spec{Protocol: ProtocolDolevStrong, N: 5}, 2, 0, 0); err == nil {
		t.Error("dolev-strong accepted")
	}
	if _, err := RunEngine(Spec{Protocol: ProtocolBB, N: 5, F: 1, Fault: FaultReplay}, 2, 0, 0); err == nil {
		t.Error("replay fault accepted")
	}
	if _, err := RunEngine(Spec{Protocol: ProtocolBB, N: 5}, 0, 0, 0); err == nil {
		t.Error("zero sessions accepted")
	}
}
