package harness

import (
	"bytes"
	"reflect"
	"testing"

	"adaptiveba/internal/types"
)

// TestComposeDescriptorsRoundTrip: Descriptors ∘ Compose is the
// identity on descriptor fields, and Compose ∘ Descriptors reproduces
// the spec (instrumentation fields zeroed).
func TestComposeDescriptorsRoundTrip(t *testing.T) {
	spec := Spec{
		Protocol: ProtocolACS, N: 7, T: 3, F: 2,
		Fault: FaultCrashLeader, Inputs: InputsDistinct,
		Value: types.Value("x"), Batch: 4, Sender: 2,
		Seed: 9, ShuffleSeed: 11, Ed25519: true,
		CertWorkers: 2, TickWorkers: 1,
		WBAPhases: 3, BBPhases: 2, DisableSilentPhases: true,
		NoVerifyCache: true,
	}
	w, d, p := spec.Descriptors()
	back := Compose(w, d, p)
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("round trip diverged:\n spec %+v\n back %+v", spec, back)
	}
}

// TestRunWorkloadParity: for a grid of protocol × fault × size cells,
// RunWorkload on the decomposed spec emits a byte-identical CSV row to
// Run on the flat spec — the descriptor API is a pure re-arrangement,
// not a behavior change.
func TestRunWorkloadParity(t *testing.T) {
	cells := []Spec{
		{Protocol: ProtocolBB, N: 5, F: 0},
		{Protocol: ProtocolBB, N: 5, F: 2, Fault: FaultCrash},
		{Protocol: ProtocolBB, N: 7, F: 2, Fault: FaultSpam, Seed: 3},
		{Protocol: ProtocolWBA, N: 5, F: 1, Fault: FaultCrashLeader},
		{Protocol: ProtocolWBA, N: 5, F: 2, Inputs: InputsDistinct},
		{Protocol: ProtocolStrongBA, N: 5, F: 1, Fault: FaultStagger},
		{Protocol: ProtocolACS, N: 5, F: 1, Batch: 3},
		{Protocol: ProtocolDolevStrong, N: 5, F: 1},
		{Protocol: ProtocolFallback, N: 5, F: 2, MeasureBytes: true},
	}
	for _, spec := range cells {
		spec := spec
		a, err := Run(spec)
		if err != nil {
			t.Fatalf("%s n=%d f=%d: %v", spec.Protocol, spec.N, spec.F, err)
		}
		w, d, p := spec.Descriptors()
		b, err := RunWorkload(w, d, p)
		if err != nil {
			t.Fatalf("%s descriptors: %v", spec.Protocol, err)
		}
		// MeasureBytes is instrumentation: it stays Spec-only, so carry it
		// over explicitly for the cell that uses it.
		if spec.MeasureBytes {
			composed := Compose(w, d, p)
			composed.MeasureBytes = true
			b, err = Run(composed)
			if err != nil {
				t.Fatalf("%s composed: %v", spec.Protocol, err)
			}
		}
		var bufA, bufB bytes.Buffer
		if err := WriteCSV(&bufA, []Outcome{*a}); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&bufB, []Outcome{*b}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
			t.Errorf("%s n=%d f=%d fault=%s: CSV diverged\n run: %s\n desc: %s",
				spec.Protocol, spec.N, spec.F, spec.Fault, bufA.String(), bufB.String())
		}
	}
}

// TestRunWorkloadDefaults: zero-valued descriptors inherit the same
// defaults Run applies to a zero Spec.
func TestRunWorkloadDefaults(t *testing.T) {
	out, err := RunWorkload(Workload{Protocol: ProtocolBB}, Deployment{N: 5}, FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Decided || !out.Agreement {
		t.Fatalf("default workload did not decide: %+v", out)
	}
	if out.Spec.Fault != FaultCrash {
		t.Fatalf("fault default not applied: %+v", out.Spec)
	}
}
