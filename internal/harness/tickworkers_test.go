package harness

import (
	"bytes"
	"fmt"
	"testing"
)

// TestTickWorkersDeterminism asserts the engine's concurrency contract at
// the level users observe it: CSV rows and message traces are
// byte-identical for every tick-worker count, across the EXPERIMENTS-grid
// protocols, with and without delivery shuffling, with and without an
// adversary (whose rushing view — the full tick's honest traffic in ID
// order — must survive the parallel fan-out).
func TestTickWorkersDeterminism(t *testing.T) {
	type cell struct {
		protocol Protocol
		n, f     int
		fault    Fault
		shuffle  int64
	}
	cells := []cell{
		{protocol: ProtocolBB, n: 9, f: 0},
		{protocol: ProtocolBB, n: 9, f: 2, fault: FaultSpam},
		{protocol: ProtocolBB, n: 9, f: 2, fault: FaultSpam, shuffle: 7},
		{protocol: ProtocolWBA, n: 9, f: 0, shuffle: 3},
		{protocol: ProtocolWBA, n: 9, f: 2, fault: FaultReplay},
		{protocol: ProtocolStrongBA, n: 9, f: 2, fault: FaultCrash, shuffle: 5},
		{protocol: ProtocolDolevStrong, n: 7, f: 2, fault: FaultSpam, shuffle: 9},
		{protocol: ProtocolBBViaBA, n: 9, f: 1, fault: FaultStagger},
	}
	if testing.Short() {
		cells = cells[:3]
	}
	run := func(c cell, tickWorkers int) (csv, trace []byte) {
		t.Helper()
		var tr bytes.Buffer
		spec := Spec{
			Protocol:     c.protocol,
			N:            c.n,
			F:            c.f,
			Fault:        c.fault,
			ShuffleSeed:  c.shuffle,
			MeasureBytes: true,
			TickWorkers:  tickWorkers,
			Trace:        &tr,
		}
		o, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, []Outcome{*o}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), tr.Bytes()
	}
	for _, c := range cells {
		name := fmt.Sprintf("%s-n%d-f%d-%s-shuffle%d", c.protocol, c.n, c.f, c.fault, c.shuffle)
		t.Run(name, func(t *testing.T) {
			wantCSV, wantTrace := run(c, 1)
			for _, w := range []int{2, 8} {
				gotCSV, gotTrace := run(c, w)
				if !bytes.Equal(gotCSV, wantCSV) {
					t.Errorf("tick-workers=%d CSV diverged from serial:\nserial: %s\ngot:    %s", w, wantCSV, gotCSV)
				}
				if !bytes.Equal(gotTrace, wantTrace) {
					t.Errorf("tick-workers=%d trace diverged from serial (%d vs %d bytes)", w, len(gotTrace), len(wantTrace))
				}
			}
		})
	}
}
