// Experiment definitions: each regenerates one table or figure of the
// paper (see DESIGN.md §3 for the index). The benchmark suite
// (bench_test.go) and the CLI (cmd/adaptiveba-bench) both run these.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/adversary/attacks"
	"adaptiveba/internal/core/valid"
	"adaptiveba/internal/core/wba"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/smr"
	"adaptiveba/internal/types"
)

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the experiment key from DESIGN.md §3 (e.g. "t1-bb").
	ID string
	// Title describes the reproduced artifact.
	Title string
	// Run executes the experiment on the given pool and returns a
	// formatted report. The report is byte-identical for every worker
	// count (Pool's determinism contract).
	Run func(Pool) (string, error)
}

// Experiments lists every experiment in DESIGN.md order.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID:    "t1-bb",
			Title: "Table 1, Byzantine Broadcast: O(n(f+1)) words",
			Run:   expT1BB,
		},
		{
			ID:    "t1-strongba",
			Title: "Table 1, strong BA: O(n) words at f=0, quadratic otherwise",
			Run:   expT1StrongBA,
		},
		{
			ID:    "t1-wba",
			Title: "Table 1, weak BA: O(n(f+1)) words, fallback threshold (n-t-1)/2",
			Run:   expT1WBA,
		},
		{
			ID:    "f1",
			Title: "Figure 1: composition of the solutions (per-layer words)",
			Run:   expFigure1,
		},
		{
			ID:    "adapt",
			Title: "Adaptivity: words vs f, adaptive BB vs always-quadratic baselines",
			Run:   expAdapt,
		},
		{
			ID:    "dr",
			Title: "Section 4: Dolev–Strong baseline vs adaptive BB at f=0",
			Run:   expDolevReischuk,
		},
		{
			ID:    "dr-sigs",
			Title: "Table 1 annotation: Ω(n²) signatures ride inside O(n) words (f=0)",
			Run:   expDRSignatures,
		},
		{
			ID:    "ablate-quorum",
			Title: "Ablation: ⌈(n+t+1)/2⌉ quorum vs naive t+1 under the split-vote attack",
			Run:   expAblateQuorum,
		},
		{
			ID:    "crypto-ops",
			Title: "CPU proxy: signing/verification operations per protocol",
			Run:   expCryptoOps,
		},
		{
			ID:    "latency",
			Title: "Decision latency (δ rounds) vs f — early stopping behaviour",
			Run:   expLatency,
		},
		{
			ID:    "two-adaptivities",
			Title: "Section 4 contrast: round-adaptive (FloodSet) vs word-adaptive (this paper)",
			Run:   expTwoAdaptivities,
		},
		{
			ID:    "resilience",
			Title: "Section 8: improved resilience n > 2t+1 for BB and weak BA",
			Run:   expResilience,
		},
		{
			ID:    "smr",
			Title: "Application: replicated-log cost per committed command",
			Run:   expSMR,
		},
		{
			ID:    "ablate-phases",
			Title: "Ablation: weak BA with t+1 vs n phases",
			Run:   expAblatePhases,
		},
		{
			ID:    "ablate-silent",
			Title: "Ablation: silent-phase rule on vs off",
			Run:   expAblateSilent,
		},
		{
			ID:    "ablate-cert",
			Title: "Ablation: compact vs aggregate certificate encodings",
			Run:   expAblateCert,
		},
	}
}

// ExperimentByID finds one experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func expT1BB(pool Pool) (string, error) {
	var b strings.Builder
	b.WriteString("BB words, n sweep at f=0 (expected: linear in n):\n")
	outs, err := pool.Sweep(Spec{Protocol: ProtocolBB}, []int{11, 21, 41, 81, 161}, []int{0})
	if err != nil {
		return "", err
	}
	b.WriteString(Table(outs))

	b.WriteString("\nBB words, f sweep at n=41, crash-first-leaders (crashed leaders stay silent, so the cost is FLAT at O(n) below the fallback threshold (n-t-1)/2=10 and jumps to the quadratic regime beyond it):\n")
	outs, err = pool.Sweep(Spec{Protocol: ProtocolBB}, []int{41}, []int{0, 2, 4, 6, 8, 10, 12, 16, 20})
	if err != nil {
		return "", err
	}
	b.WriteString(Table(outs))

	b.WriteString("\nBB words, f sweep at n=41, phase-spamming Byzantine leaders (the O(n(f+1)) worst case: each Byzantine leader burns Θ(n) words):\n")
	outs, err = pool.Sweep(Spec{Protocol: ProtocolBB, Fault: FaultSpam}, []int{41}, []int{0, 2, 4, 6, 8, 10})
	if err != nil {
		return "", err
	}
	b.WriteString(Table(outs))
	return b.String(), nil
}

func expT1StrongBA(pool Pool) (string, error) {
	var b strings.Builder
	b.WriteString("strong BA words, n sweep at f=0 (expected: ~4n, Lemma 8):\n")
	outs, err := pool.Sweep(Spec{Protocol: ProtocolStrongBA}, []int{11, 21, 41, 81, 161}, []int{0})
	if err != nil {
		return "", err
	}
	b.WriteString(Table(outs))

	b.WriteString("\nstrong BA words with failures at n=21 (expected: fallback, quadratic+):\n")
	outs, err = pool.Sweep(Spec{Protocol: ProtocolStrongBA}, []int{21}, []int{1, 5, 10})
	if err != nil {
		return "", err
	}
	b.WriteString(Table(outs))
	return b.String(), nil
}

func expT1WBA(pool Pool) (string, error) {
	var b strings.Builder
	b.WriteString("weak BA words, n sweep at f=0 (expected: linear in n):\n")
	outs, err := pool.Sweep(Spec{Protocol: ProtocolWBA}, []int{11, 21, 41, 81, 161}, []int{0})
	if err != nil {
		return "", err
	}
	b.WriteString(Table(outs))

	b.WriteString("\nweak BA words, f sweep at n=41, crashes (threshold (n-t-1)/2 = 10; fb column = processes that ran the fallback):\n")
	outs, err = pool.Sweep(Spec{Protocol: ProtocolWBA}, []int{41}, []int{0, 2, 4, 6, 8, 10, 11, 14, 20})
	if err != nil {
		return "", err
	}
	b.WriteString(Table(outs))

	b.WriteString("\nweak BA words, f sweep at n=41, phase-spamming Byzantine leaders (the O(n(f+1)) worst case):\n")
	outs, err = pool.Sweep(Spec{Protocol: ProtocolWBA, Fault: FaultSpam}, []int{41}, []int{0, 2, 4, 6, 8, 10})
	if err != nil {
		return "", err
	}
	b.WriteString(Table(outs))
	return b.String(), nil
}

func expFigure1(pool Pool) (string, error) {
	var b strings.Builder
	fs := []int{0, 4, 12}
	specs := make([]Spec, len(fs))
	for i, f := range fs {
		specs[i] = Spec{Protocol: ProtocolBB, N: 41, F: f}
	}
	outs, err := pool.Run(specs)
	if err != nil {
		return "", err
	}
	for i, f := range fs {
		o := &outs[i]
		fmt.Fprintf(&b, "BB at n=41, f=%d — per-layer words (decision %s, fallback procs %d):\n",
			f, o.Decision, o.FallbackCount)
		layers := make([]string, 0, len(o.ByLayer))
		for l := range o.ByLayer {
			layers = append(layers, l)
		}
		sort.Strings(layers)
		for _, l := range layers {
			s := o.ByLayer[l]
			fmt.Fprintf(&b, "  %-28s %10d words %10d msgs\n", l, s.Words, s.Messages)
		}
		fmt.Fprintf(&b, "  %-28s %10d words %10d msgs\n\n", "TOTAL", o.Words, o.Messages)
	}
	return b.String(), nil
}

func expAdapt(pool Pool) (string, error) {
	var b strings.Builder
	fs := []int{0, 1, 2, 4, 6, 8, 10, 12, 16, 20}
	b.WriteString("words vs f at n=41: adaptive BB (crash and worst-case spam adversaries) vs always-quadratic baselines. The spam column grows ~n per failure; the baselines stay quadratic; the adaptive protocol crosses them only in the fallback regime f > (n-t-1)/2 = 10:\n")
	fmt.Fprintf(&b, "%5s %12s %12s %12s %12s\n", "f", "bb(crash)", "bb(spam)", "echo-bb", "dolev-strong")
	var specs []Spec
	idx := make(map[string]int)
	add := func(key string, s Spec) {
		idx[key] = len(specs)
		specs = append(specs, s)
	}
	for _, f := range fs {
		add(fmt.Sprintf("bb/%d", f), Spec{Protocol: ProtocolBB, N: 41, F: f})
		if f <= 10 { // spam exercises the pre-fallback worst case
			add(fmt.Sprintf("spam/%d", f), Spec{Protocol: ProtocolBB, N: 41, F: f, Fault: FaultSpam})
		}
		add(fmt.Sprintf("echo/%d", f), Spec{Protocol: ProtocolEchoBB, N: 41, F: f})
		add(fmt.Sprintf("ds/%d", f), Spec{Protocol: ProtocolDolevStrong, N: 41, F: f})
	}
	outs, err := pool.Run(specs)
	if err != nil {
		return "", err
	}
	for _, f := range fs {
		spamStr := "-"
		if i, ok := idx[fmt.Sprintf("spam/%d", f)]; ok {
			spamStr = fmt.Sprintf("%d", outs[i].Words)
		}
		fmt.Fprintf(&b, "%5d %12d %12s %12d %12d\n", f,
			outs[idx[fmt.Sprintf("bb/%d", f)]].Words, spamStr,
			outs[idx[fmt.Sprintf("echo/%d", f)]].Words,
			outs[idx[fmt.Sprintf("ds/%d", f)]].Words)
	}
	return b.String(), nil
}

func expDolevReischuk(pool Pool) (string, error) {
	var b strings.Builder
	b.WriteString("failure-free words, n sweep: Dolev–Strong pays Θ(n²)+, adaptive BB pays Θ(n):\n")
	fmt.Fprintf(&b, "%6s %14s %14s %10s\n", "n", "dolev-strong", "adaptive-bb", "ratio")
	ns := []int{11, 21, 41, 81, 161}
	var specs []Spec
	for _, n := range ns {
		specs = append(specs,
			Spec{Protocol: ProtocolDolevStrong, N: n},
			Spec{Protocol: ProtocolBB, N: n})
	}
	outs, err := pool.Run(specs)
	if err != nil {
		return "", err
	}
	for i, n := range ns {
		ds, ad := &outs[2*i], &outs[2*i+1]
		fmt.Fprintf(&b, "%6d %14d %14d %9.1fx\n", n, ds.Words, ad.Words, float64(ds.Words)/float64(ad.Words))
	}
	return b.String(), nil
}

// expDRSignatures regenerates the "(Ω(n²) signatures)" annotation of
// Table 1: Dolev–Reischuk's signature lower bound still holds — Θ(nt)
// component signatures are delivered in every failure-free run — but
// threshold certificates compact them into Θ(n) words. Signatures are
// counted per delivery: a certificate sent to one recipient counts as its
// signer-set size.
func expDRSignatures(pool Pool) (string, error) {
	var b strings.Builder
	b.WriteString("failure-free BB: delivered component signatures vs words (sigs/n² should be ~constant, words/n should be ~constant):\n")
	fmt.Fprintf(&b, "%6s %12s %12s %10s %10s\n", "n", "signatures", "words", "sigs/n²", "words/n")
	ns := []int{11, 21, 41, 81, 161}
	specs := make([]Spec, len(ns))
	for i, n := range ns {
		specs[i] = Spec{Protocol: ProtocolBB, N: n}
	}
	outs, err := pool.Run(specs)
	if err != nil {
		return "", err
	}
	for i, n := range ns {
		o := &outs[i]
		fmt.Fprintf(&b, "%6d %12d %12d %10.2f %10.1f\n", n, o.Signatures, o.Words,
			float64(o.Signatures)/float64(n*n), float64(o.Words)/float64(n))
	}
	return b.String(), nil
}

// expAblateQuorum runs the double-commit attack against both quorum
// choices (the paper's Section 6 key observation).
func expAblateQuorum(Pool) (string, error) {
	var b strings.Builder
	b.WriteString("split-vote attack on weak BA (n=9, t=4 corrupted incl. the phase-1 leader):\n")
	for _, naive := range []bool{true, false} {
		params, err := types.NewParams(9)
		if err != nil {
			return "", err
		}
		ring, err := sig.NewHMACRing(9, []byte("ablate-quorum"))
		if err != nil {
			return "", err
		}
		crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))

		override := 0
		quorum := params.Quorum()
		label := fmt.Sprintf("paper quorum ⌈(n+t+1)/2⌉ = %d", quorum)
		if naive {
			override = params.SmallQuorum()
			quorum = override
			label = fmt.Sprintf("naive quorum t+1 = %d", quorum)
		}
		ids := []types.ProcessID{1}
		for i := params.N - 1; len(ids) < params.T; i-- {
			ids = append(ids, types.ProcessID(i))
		}
		adv := attacks.NewWBASplitVote("q", quorum, types.Value("v1"), types.Value("v2"), ids...)
		res, err := sim.Run(sim.Config{
			Params: params,
			Crypto: crypto,
			Factory: func(id types.ProcessID) proto.Machine {
				return wba.NewMachine(wba.Config{
					Params: params, Crypto: crypto, ID: id,
					Input: types.Value("honest"), Predicate: valid.NonBottom(),
					Tag: "q", QuorumOverride: override,
				})
			},
			Adversary: adv,
			MaxTicks:  2000,
		})
		if err != nil {
			return "", err
		}
		_, agreement := res.Agreement()
		verdict := "SAFETY VIOLATED (correct processes decided differently)"
		if agreement {
			verdict = "safe (attack failed, agreement held)"
		}
		fmt.Fprintf(&b, "  %-36s -> %s\n", label, verdict)
	}
	return b.String(), nil
}

// expCryptoOps reports the cryptographic work per protocol at n=21:
// signatures created and verified across all correct processes. Aggregate
// certificates shift cost from the network to verification; the word
// model hides this, so it is reported separately.
func expCryptoOps(pool Pool) (string, error) {
	var b strings.Builder
	b.WriteString("signature operations at n=21 (all correct processes combined):\n")
	fmt.Fprintf(&b, "%-14s %4s %10s %12s %10s\n", "protocol", "f", "signs", "verifies", "words")
	rows := []struct {
		p Protocol
		f int
	}{
		{ProtocolBB, 0}, {ProtocolBB, 4},
		{ProtocolWBA, 0}, {ProtocolStrongBA, 0},
		{ProtocolEchoBB, 0}, {ProtocolDolevStrong, 0},
	}
	// NoVerifyCache: this experiment documents the protocol's inherent
	// verification demand (what ideal constant-size threshold signatures
	// save); the runtime's memoization would hide exactly that number.
	specs := make([]Spec, 0, len(rows)+1)
	for _, row := range rows {
		specs = append(specs, Spec{Protocol: row.p, N: 21, F: row.f, CountOps: true, NoVerifyCache: true})
	}
	specs = append(specs, Spec{Protocol: ProtocolBB, N: 21, CountOps: true, NoVerifyCache: true, CertMode: threshold.ModeAggregate})
	outs, err := pool.Run(specs)
	if err != nil {
		return "", err
	}
	for i, row := range rows {
		o := &outs[i]
		fmt.Fprintf(&b, "%-14s %4d %10d %12d %10d\n", row.p, row.f, o.SignOps, o.VerifyOps, o.Words)
	}
	b.WriteString("\nsame BB run, aggregate certificates (every recipient re-verifies each\ncomponent signature — the verification cost ideal threshold schemes avoid):\n")
	o := &outs[len(rows)]
	fmt.Fprintf(&b, "%-14s %4d %10d %12d %10d\n", "bb(aggregate)", 0, o.SignOps, o.VerifyOps, o.Words)
	return b.String(), nil
}

// expLatency measures when the last honest process decides, in δ rounds.
// Crashing the first f rotating leaders delays the deciding phase — the
// round-complexity analogue of early stopping [10]: latency grows with
// the number of failed leaders, not with t.
func expLatency(pool Pool) (string, error) {
	var b strings.Builder
	wbaFs := []int{0, 1, 2, 4, 8}
	sbaFs := []int{0, 1}
	var specs []Spec
	for _, f := range wbaFs {
		specs = append(specs, Spec{Protocol: ProtocolWBA, N: 41, F: f})
	}
	for _, f := range sbaFs {
		specs = append(specs, Spec{Protocol: ProtocolStrongBA, N: 41, F: f})
	}
	outs, err := pool.Run(specs)
	if err != nil {
		return "", err
	}
	b.WriteString("weak BA decision latency at n=41 (crashing leaders p1..pf delays the deciding phase by 5 rounds each; t would allow 107 rounds of phases):\n")
	fmt.Fprintf(&b, "%5s %18s %14s\n", "f", "decision tick (δ)", "total ticks")
	for i, f := range wbaFs {
		fmt.Fprintf(&b, "%5d %18d %14d\n", f, outs[i].DecisionTick, outs[i].Ticks)
	}
	b.WriteString("\nstrong BA decision latency at n=41 (f=0 decides in 5 rounds; any failure pays the fallback's t+2 double-length rounds):\n")
	fmt.Fprintf(&b, "%5s %18s %14s\n", "f", "decision tick (δ)", "total ticks")
	for i, f := range sbaFs {
		o := &outs[len(wbaFs)+i]
		fmt.Fprintf(&b, "%5d %18d %14d\n", f, o.DecisionTick, o.Ticks)
	}
	return b.String(), nil
}

// expTwoAdaptivities contrasts the two meanings of "adaptive" in the
// literature (paper Section 4): classic early-stopping consensus adapts
// its ROUND count to f but pays Θ(n²) words regardless, while this
// paper's weak BA adapts its WORD count to f. Crash-at-start failures,
// n = 21.
func expTwoAdaptivities(pool Pool) (string, error) {
	var b strings.Builder
	b.WriteString("crash consensus, n=21, distinct inputs, one crash per round (staggered — the early-stopping worst case):\n")
	fmt.Fprintf(&b, "%5s %16s %16s %16s %16s\n", "f", "floodset words", "floodset rounds", "wba words", "wba decide-tick")
	fs := []int{0, 2, 4, 8}
	var specs []Spec
	for _, f := range fs {
		specs = append(specs,
			Spec{Protocol: ProtocolFloodSet, N: 21, F: f, Fault: FaultStagger, Inputs: InputsDistinct},
			Spec{Protocol: ProtocolWBA, N: 21, F: f, Inputs: InputsDistinct})
	}
	outs, err := pool.Run(specs)
	if err != nil {
		return "", err
	}
	for i, f := range fs {
		fsOut, wbaOut := &outs[2*i], &outs[2*i+1]
		fmt.Fprintf(&b, "%5d %16d %16d %16d %16d\n",
			f, fsOut.Words, fsOut.DecisionTick, wbaOut.Words, wbaOut.DecisionTick)
	}
	return b.String(), nil
}

// expResilience exercises the Section 8 observation that the BB / weak BA
// constructions tolerate any n >= 2t+1: fix t and grow n, checking the
// quorum arithmetic, correctness, and the cost's linear growth in n.
func expResilience(pool Pool) (string, error) {
	var b strings.Builder
	b.WriteString("BB at fixed t=5, growing n (n = 2t+1, 3t+1, 4t+1), f = t crashes:\n")
	fmt.Fprintf(&b, "%6s %4s %4s %8s %10s %10s %5s\n", "n", "t", "f", "quorum", "words", "words/n", "ok")
	ns := []int{11, 16, 21}
	specs := make([]Spec, len(ns))
	for i, n := range ns {
		specs[i] = Spec{Protocol: ProtocolBB, N: n, T: 5, F: 5}
	}
	outs, err := pool.Run(specs)
	if err != nil {
		return "", err
	}
	for i, n := range ns {
		o := &outs[i]
		params, err := types.Custom(n, 5)
		if err != nil {
			return "", err
		}
		okStr := "yes"
		if !o.Decided || !o.Agreement || !o.Decision.Equal(types.Value("v")) {
			okStr = "NO"
		}
		fmt.Fprintf(&b, "%6d %4d %4d %8d %10d %10.1f %5s\n",
			n, 5, 5, params.Quorum(), o.Words, float64(o.Words)/float64(n), okStr)
	}
	return b.String(), nil
}

// expSMR measures the replicated log built on the adaptive BB: words per
// committed command and wall-clock (ticks) per command, sequential vs
// pipelined slots, failure-free vs one crashed proposer.
func expSMR(Pool) (string, error) {
	var b strings.Builder
	b.WriteString("replicated log over adaptive BB, n=9, 9 slots:\n")
	fmt.Fprintf(&b, "%-24s %4s %14s %14s %12s\n", "configuration", "f", "words/commit", "ticks/commit", "committed")
	run := func(label string, f int, stride types.Tick) error {
		params, err := types.NewParams(9)
		if err != nil {
			return err
		}
		ring, err := sig.NewHMACRing(9, []byte("exp-smr"))
		if err != nil {
			return err
		}
		crypto := proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))
		var adv sim.Adversary
		if f > 0 {
			ids := make([]types.ProcessID, f)
			for i := range ids {
				ids[i] = types.ProcessID(i + 1)
			}
			adv = adversary.NewCrash(ids...)
		}
		var budget types.Tick
		machines := make(map[types.ProcessID]*smr.Machine)
		res, err := sim.Run(sim.Config{
			Params: params,
			Crypto: crypto,
			Factory: func(id types.ProcessID) proto.Machine {
				m, err := smr.NewMachine(smr.Config{
					Params: params, Crypto: crypto, ID: id, Tag: "exp", Slots: 9,
					Stride: stride,
					Queue: []types.Value{
						types.Value(fmt.Sprintf("cmd-%d-0", id)),
						types.Value(fmt.Sprintf("cmd-%d-1", id)),
					},
				})
				if err != nil {
					panic(err)
				}
				machines[id] = m
				budget = m.MaxTicks()
				return m
			},
			Adversary: adv,
			MaxTicks:  budget * 2,
		})
		if err != nil {
			return err
		}
		committed := 0
		for _, id := range res.Honest {
			committed = len(machines[id].Committed())
			break
		}
		if committed == 0 {
			committed = 1
		}
		fmt.Fprintf(&b, "%-24s %4d %14.1f %14.1f %12d\n", label, f,
			float64(res.Report.Honest.Words)/float64(committed),
			float64(res.Ticks)/float64(committed), committed)
		return nil
	}
	if err := run("sequential", 0, 0); err != nil {
		return "", err
	}
	if err := run("pipelined (stride 8)", 0, 8); err != nil {
		return "", err
	}
	if err := run("sequential", 1, 0); err != nil {
		return "", err
	}
	if err := run("pipelined (stride 8)", 1, 8); err != nil {
		return "", err
	}
	return b.String(), nil
}

func expAblatePhases(pool Pool) (string, error) {
	var b strings.Builder
	b.WriteString("weak BA, t+1 phases (Alg. 3) vs n phases (Section 6 prose), n=41:\n")
	fmt.Fprintf(&b, "%5s %16s %16s %12s %12s\n", "f", "words(t+1 ph)", "words(n ph)", "ticks(t+1)", "ticks(n)")
	fs := []int{0, 4, 8}
	var specs []Spec
	for _, f := range fs {
		specs = append(specs,
			Spec{Protocol: ProtocolWBA, N: 41, F: f},
			Spec{Protocol: ProtocolWBA, N: 41, F: f, WBAPhases: 41})
	}
	outs, err := pool.Run(specs)
	if err != nil {
		return "", err
	}
	for i, f := range fs {
		a, c := &outs[2*i], &outs[2*i+1]
		fmt.Fprintf(&b, "%5d %16d %16d %12d %12d\n", f, a.Words, c.Words, a.Ticks, c.Ticks)
	}
	return b.String(), nil
}

func expAblateSilent(pool Pool) (string, error) {
	var b strings.Builder
	b.WriteString("weak BA with and without the silent-phase rule, n=41 (without it, every phase costs Θ(n): the adaptivity disappears):\n")
	fmt.Fprintf(&b, "%5s %14s %16s\n", "f", "silent(on)", "silent(off)")
	fs := []int{0, 2, 4}
	var specs []Spec
	for _, f := range fs {
		specs = append(specs,
			Spec{Protocol: ProtocolWBA, N: 41, F: f},
			Spec{Protocol: ProtocolWBA, N: 41, F: f, DisableSilentPhases: true})
	}
	outs, err := pool.Run(specs)
	if err != nil {
		return "", err
	}
	for i, f := range fs {
		on, off := &outs[2*i], &outs[2*i+1]
		fmt.Fprintf(&b, "%5d %14d %16d\n", f, on.Words, off.Words)
	}
	return b.String(), nil
}

func expAblateCert(pool Pool) (string, error) {
	var b strings.Builder
	b.WriteString("certificate encodings at quorum ⌈(n+t+1)/2⌉ (identical word cost = 1; bytes differ):\n")
	fmt.Fprintf(&b, "%6s %8s %16s %16s\n", "n", "quorum", "aggregate(B)", "compact(B)")
	for _, n := range []int{11, 41, 161} {
		params, err := types.NewParams(n)
		if err != nil {
			return "", err
		}
		ring, err := sig.NewHMACRing(n, []byte("ablate"))
		if err != nil {
			return "", err
		}
		q := params.Quorum()
		sizes := make(map[threshold.Mode]int, 2)
		for _, mode := range []threshold.Mode{threshold.ModeAggregate, threshold.ModeCompact} {
			scheme, err := threshold.New(ring, q, mode, []byte("d"))
			if err != nil {
				return "", err
			}
			msg := []byte("bench")
			shares := make([]threshold.Share, 0, q)
			for i := 0; i < q; i++ {
				sh, err := scheme.SignShare(types.ProcessID(i), msg)
				if err != nil {
					return "", err
				}
				shares = append(shares, sh)
			}
			cert, err := scheme.Combine(msg, shares)
			if err != nil {
				return "", err
			}
			sizes[mode] = cert.Bytes()
		}
		fmt.Fprintf(&b, "%6d %8d %16d %16d\n", n, q,
			sizes[threshold.ModeAggregate], sizes[threshold.ModeCompact])
	}

	b.WriteString("\nend-to-end weak BA run at n=21, f=2 — identical words, different wire bytes:\n")
	fmt.Fprintf(&b, "%-12s %10s %12s\n", "encoding", "words", "bytes")
	modes := []threshold.Mode{threshold.ModeAggregate, threshold.ModeCompact}
	specs := make([]Spec, len(modes))
	for i, mode := range modes {
		specs[i] = Spec{Protocol: ProtocolWBA, N: 21, F: 2, CertMode: mode, MeasureBytes: true}
	}
	outs, err := pool.Run(specs)
	if err != nil {
		return "", err
	}
	for i, mode := range modes {
		fmt.Fprintf(&b, "%-12s %10d %12d\n", mode, outs[i].Words, outs[i].Bytes)
	}
	return b.String(), nil
}
