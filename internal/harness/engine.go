package harness

import (
	"fmt"

	"adaptiveba/internal/engine"
	"adaptiveba/internal/types"
)

// RunEngine executes `sessions` copies of spec's protocol as one
// multi-session engine run: all instances share a single deployment (one
// process set, one failure pattern, one signature ring) and are
// pipelined through the engine's admission window. inflight bounds the
// concurrently live sessions (0 = unbounded, 1 = strictly serial) and
// maxQueue is the engine's queue policy (see engine.Config.MaxQueue).
//
// The engine schedules sessions so that each one's schedule is
// tick-for-tick the schedule a solo Run of the same spec would produce —
// per-session decisions, words, and messages are byte-identical to
// serial execution, which TestRunEngineMatchesSolo pins.
func RunEngine(spec Spec, sessions, inflight, maxQueue int) (*engine.Report, error) {
	if sessions < 1 {
		return nil, fmt.Errorf("%w: need at least one session, got %d", ErrSpec, sessions)
	}
	var kind engine.Kind
	switch spec.Protocol {
	case ProtocolBB:
		kind = engine.KindBB
	case ProtocolWBA:
		kind = engine.KindWBA
	case ProtocolStrongBA:
		kind = engine.KindStrongBA
	case ProtocolACS:
		kind = engine.KindACS
	default:
		return nil, fmt.Errorf("%w: engine runs bb, wba, strongba or acs, got %q", ErrSpec, spec.Protocol)
	}
	// Apply Run's spec defaults before deriving inputs, so inputFor sees
	// the same spec a solo run would.
	if spec.Fault == "" {
		spec.Fault = FaultCrash
	}
	if spec.Inputs == "" {
		spec.Inputs = InputsUnanimous
	}
	if spec.Value == nil {
		spec.Value = types.Value("v")
	}
	switch spec.Fault {
	case FaultCrash, FaultCrashLeader:
	default:
		return nil, fmt.Errorf("%w: engine supports crash fault patterns, got %q", ErrSpec, spec.Fault)
	}

	req := engine.Request{Kind: kind, Sender: spec.Sender, Predicate: spec.Predicate}
	switch kind {
	case engine.KindBB:
		req.Value = spec.Value
	case engine.KindACS:
		// Every process proposes its batch, exactly as a solo ProtocolACS
		// run would build it.
		r := &runner{spec: spec}
		for id := 0; id < spec.N; id++ {
			req.Inputs = append(req.Inputs, r.acsBatch(types.ProcessID(id)))
		}
	default:
		// Materialize the spec's input policy (unanimous / distinct /
		// per-process) exactly as a solo Run would assign it.
		r := &runner{spec: spec}
		binary := kind == engine.KindStrongBA
		for id := 0; id < spec.N; id++ {
			req.Inputs = append(req.Inputs, r.inputFor(types.ProcessID(id), binary))
		}
	}
	reqs := make([]engine.Request, sessions)
	for i := range reqs {
		reqs[i] = req
	}

	return engine.Run(engine.Config{
		N:           spec.N,
		T:           spec.T,
		F:           spec.F,
		LeaderFault: spec.Fault == FaultCrashLeader,
		Inflight:    inflight,
		MaxQueue:    maxQueue,
		Seed:        spec.Seed,
		Ed25519:     spec.Ed25519,
		Trace:       spec.Trace,
		TickWorkers: spec.TickWorkers,
		Halt:        spec.Halt,
		Scheduler:   spec.Sched,
	}, reqs)
}
