// Workload descriptors: the composable replacement for filling all ~25
// Spec fields by hand. A run is described by three orthogonal pieces —
// WHAT runs (Workload), ON WHAT cluster (Deployment), and UNDER WHICH
// failures (FaultPlan) — that compose into a Spec. The split is what
// lets callers reuse one Workload across deployments (the service reuses
// its ACS workload at several n), sweep fault plans against a fixed
// workload, and share deployment shapes across experiments, without
// copying 20 unrelated fields each time.
//
// Compose and Spec.Descriptors are exact inverses over the descriptor
// fields, and RunWorkload(spec.Descriptors()) is byte-identical to
// Run(spec) for every spec that carries no instrumentation — pinned by
// the parity tests in descriptor_test.go. Instrumentation hooks (Trace,
// Halt, OnSend, Monitor, MeasureBytes, CountOps, Sched) are deliberately
// NOT descriptor fields: they observe a run rather than describe it, and
// stay Spec-only — compose first, then attach instrumentation to the
// returned Spec.
package harness

import (
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

// Workload describes what is agreed on: the protocol, its inputs, and
// its protocol-level knobs. A Workload is deployment-independent — the
// same value runs at any n or fault count.
type Workload struct {
	// Protocol selects the algorithm under test (default ProtocolBB).
	Protocol Protocol
	// Inputs selects how process inputs are assigned (default
	// InputsUnanimous).
	Inputs Inputs
	// Value is the unanimous input / BB broadcast value (default "v").
	Value types.Value
	// PerProcessInputs, when non-nil, assigns each process its own input
	// and overrides Inputs/Value (length must equal the deployment's N).
	PerProcessInputs []types.Value
	// Batch is the per-proposer batch size for ProtocolACS (default 1).
	Batch int
	// Predicate overrides weak BA's validity predicate.
	Predicate func(types.Value) bool
	// Sender is the BB designated sender (default 0).
	Sender types.ProcessID
	// WBAPhases / BBPhases override phase counts (ablations).
	WBAPhases int
	BBPhases  int
	// DisableSilentPhases removes the adaptivity mechanism (ablation).
	DisableSilentPhases bool
}

// Deployment describes the cluster a workload runs on: its size, its
// corruption budget, and the execution/crypto knobs that belong to the
// machines rather than the protocol.
type Deployment struct {
	// N is the process count.
	N int
	// T overrides the corruption threshold (default floor((n-1)/2)).
	T int
	// F is the number of actually-faulty processes the fault plan may
	// corrupt.
	F int
	// Seed drives randomized adversaries; ShuffleSeed permutes per-tick
	// delivery order.
	Seed        int64
	ShuffleSeed int64
	// CertMode selects the threshold-certificate encoding; Ed25519
	// switches to real signatures.
	CertMode threshold.Mode
	Ed25519  bool
	// NoVerifyCache disables the verification fast path (A/B runs).
	NoVerifyCache bool
	// CertWorkers / TickWorkers bound the crypto and tick fan-outs.
	CertWorkers int
	TickWorkers int
}

// FaultPlan describes how the deployment's F faulty processes
// misbehave: a named pattern, or an arbitrary adversary factory.
type FaultPlan struct {
	// Pattern is the named failure pattern (default FaultCrash).
	Pattern Fault
	// Adversary, if set, overrides the pattern: invoked once per run
	// with the tick budget, returning a fresh sim.Adversary (nil for a
	// failure-free run). See Spec.Adversary.
	Adversary func(maxTicks types.Tick) sim.Adversary
}

// Compose assembles the three descriptors into a Spec. Instrumentation
// fields of the result are zero; attach them afterwards if needed.
func Compose(w Workload, d Deployment, p FaultPlan) Spec {
	return Spec{
		Protocol:            w.Protocol,
		Inputs:              w.Inputs,
		Value:               w.Value,
		PerProcessInputs:    w.PerProcessInputs,
		Batch:               w.Batch,
		Predicate:           w.Predicate,
		Sender:              w.Sender,
		WBAPhases:           w.WBAPhases,
		BBPhases:            w.BBPhases,
		DisableSilentPhases: w.DisableSilentPhases,

		N:             d.N,
		T:             d.T,
		F:             d.F,
		Seed:          d.Seed,
		ShuffleSeed:   d.ShuffleSeed,
		CertMode:      d.CertMode,
		Ed25519:       d.Ed25519,
		NoVerifyCache: d.NoVerifyCache,
		CertWorkers:   d.CertWorkers,
		TickWorkers:   d.TickWorkers,

		Fault:     p.Pattern,
		Adversary: p.Adversary,
	}
}

// Descriptors decomposes a Spec back into its three descriptors —
// the exact inverse of Compose over descriptor fields. Instrumentation
// fields (Trace, Halt, OnSend, Monitor, MeasureBytes, CountOps, Sched)
// are not carried; they stay with the Spec.
func (s Spec) Descriptors() (Workload, Deployment, FaultPlan) {
	return Workload{
			Protocol:            s.Protocol,
			Inputs:              s.Inputs,
			Value:               s.Value,
			PerProcessInputs:    s.PerProcessInputs,
			Batch:               s.Batch,
			Predicate:           s.Predicate,
			Sender:              s.Sender,
			WBAPhases:           s.WBAPhases,
			BBPhases:            s.BBPhases,
			DisableSilentPhases: s.DisableSilentPhases,
		}, Deployment{
			N:             s.N,
			T:             s.T,
			F:             s.F,
			Seed:          s.Seed,
			ShuffleSeed:   s.ShuffleSeed,
			CertMode:      s.CertMode,
			Ed25519:       s.Ed25519,
			NoVerifyCache: s.NoVerifyCache,
			CertWorkers:   s.CertWorkers,
			TickWorkers:   s.TickWorkers,
		}, FaultPlan{
			Pattern:   s.Fault,
			Adversary: s.Adversary,
		}
}

// RunWorkload executes a composed run — the descriptor-first entry
// point. Identical (byte-for-byte, including CSV output) to Run on the
// composed Spec.
func RunWorkload(w Workload, d Deployment, p FaultPlan) (*Outcome, error) {
	return Run(Compose(w, d, p))
}
