package smr

import (
	"fmt"
	"testing"

	"adaptiveba/internal/adversary"
	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/sim"
	"adaptiveba/internal/types"
)

func setup(t *testing.T, n int) (*proto.Crypto, types.Params) {
	t.Helper()
	params, err := types.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := sig.NewHMACRing(n, []byte("smr-test"))
	if err != nil {
		t.Fatal(err)
	}
	return proto.NewCrypto(params, ring, threshold.ModeCompact, []byte("d")), params
}

func runLog(t *testing.T, n, slots int, adv sim.Adversary, queue func(types.ProcessID) []types.Value) (*sim.Result, map[types.ProcessID]*Machine) {
	t.Helper()
	crypto, params := setup(t, n)
	machines := make(map[types.ProcessID]*Machine)
	var budget types.Tick
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m, err := NewMachine(Config{
				Params: params, Crypto: crypto, ID: id,
				Tag: "log", Slots: slots, Queue: queue(id),
			})
			if err != nil {
				t.Fatal(err)
			}
			machines[id] = m
			budget = m.MaxTicks()
			return m
		},
		Adversary: adv,
		MaxTicks:  budget * 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, machines
}

func cmdQueue(id types.ProcessID) []types.Value {
	return []types.Value{
		types.Value(fmt.Sprintf("cmd-%d-a", id)),
		types.Value(fmt.Sprintf("cmd-%d-b", id)),
	}
}

func TestReplicatedLogFailureFree(t *testing.T) {
	res, machines := runLog(t, 5, 7, nil, cmdQueue)
	if res.TimedOut || !res.AllDecided() {
		t.Fatalf("run failed: timedOut=%v", res.TimedOut)
	}
	logEnc, ok := res.Agreement()
	if !ok {
		t.Fatal("replicas diverged")
	}
	entries, err := DecodeLog(logEnc)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 {
		t.Fatalf("log length %d", len(entries))
	}
	// Slot s is proposed by p_{s mod 5} and commits its queued command.
	for s, e := range entries {
		if e.Slot != s || e.Proposer != types.ProcessID(s%5) {
			t.Errorf("entry %d: %+v", s, e)
		}
		if e.Command.IsBottom() {
			t.Errorf("slot %d skipped in a failure-free run", s)
		}
	}
	// Slot 0 and slot 5 are both p0's: first and second queued command.
	if !entries[0].Command.Equal(types.Value("cmd-0-a")) || !entries[5].Command.Equal(types.Value("cmd-0-b")) {
		t.Errorf("p0's commands misordered: %v, %v", entries[0].Command, entries[5].Command)
	}
	for _, m := range machines {
		if got := len(m.Committed()); got != 7 {
			t.Errorf("Committed() returned %d commands", got)
		}
	}
}

func TestReplicatedLogSkipsCrashedProposers(t *testing.T) {
	// p1 and p3 crash: their slots commit ⊥ and are skipped; all other
	// slots commit, and every replica sees the identical log.
	res, machines := runLog(t, 5, 5, adversary.NewCrash(1, 3), cmdQueue)
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	logEnc, ok := res.Agreement()
	if !ok {
		t.Fatal("replicas diverged with crashed proposers")
	}
	entries, err := DecodeLog(logEnc)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		crashed := e.Proposer == 1 || e.Proposer == 3
		if crashed && !e.Command.IsBottom() {
			t.Errorf("slot %d committed %v from a crashed proposer", e.Slot, e.Command)
		}
		if !crashed && e.Command.IsBottom() {
			t.Errorf("slot %d skipped although proposer %v is alive", e.Slot, e.Proposer)
		}
	}
	var committed int
	for _, m := range machines {
		committed = len(m.Committed())
	}
	if committed != 3 {
		t.Errorf("committed %d commands, want 3", committed)
	}
}

func TestReplicatedLogProposerWithEmptyQueue(t *testing.T) {
	// p2 has no commands: its slot commits ⊥ gracefully.
	res, _ := runLog(t, 5, 5, nil, func(id types.ProcessID) []types.Value {
		if id == 2 {
			return nil
		}
		return cmdQueue(id)
	})
	logEnc, ok := res.Agreement()
	if !ok {
		t.Fatal("replicas diverged")
	}
	entries, err := DecodeLog(logEnc)
	if err != nil {
		t.Fatal(err)
	}
	if !entries[2].Command.IsBottom() {
		t.Errorf("slot 2 committed %v from an empty queue", entries[2].Command)
	}
	if entries[0].Command.IsBottom() || entries[1].Command.IsBottom() {
		t.Error("non-empty proposers skipped")
	}
}

func TestPerSlotCostIsLinearFailureFree(t *testing.T) {
	n, slots := 21, 4
	res, _ := runLog(t, n, slots, nil, cmdQueue)
	if !res.AllDecided() {
		t.Fatal("not all decided")
	}
	perSlot := res.Report.Honest.Words / int64(slots)
	if max := int64(14 * n); perSlot > max {
		t.Errorf("words per committed slot = %d, want linear (< %d)", perSlot, max)
	}
}

func TestLogCodecRoundTrip(t *testing.T) {
	entries := []Entry{
		{Slot: 0, Proposer: 0, Command: types.Value("a")},
		{Slot: 1, Proposer: 1, Command: types.Bottom},
		{Slot: 2, Proposer: 2, Command: types.Value("c")},
	}
	enc := EncodeLog(entries)
	got, err := DecodeLog(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !got[0].Command.Equal(types.Value("a")) || !got[1].Command.IsBottom() {
		t.Errorf("round trip: %+v", got)
	}
	if _, err := DecodeLog(types.Value("garbage")); err == nil {
		t.Error("garbage decoded")
	}
	if _, err := DecodeLog(append(enc.Clone(), 1)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	crypto, params := setup(t, 5)
	if _, err := NewMachine(Config{Params: params, Crypto: crypto, ID: 0, Slots: 0}); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := NewMachine(Config{Params: params, Crypto: crypto, ID: 99, Slots: 1}); err == nil {
		t.Error("bad id accepted")
	}
	m, err := NewMachine(Config{Params: params, Crypto: crypto, ID: 0, Slots: 2, Tag: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if m.SlotTicks() <= 0 || m.MaxTicks() <= m.SlotTicks() {
		t.Errorf("timing: slot=%d max=%d", m.SlotTicks(), m.MaxTicks())
	}
	if m.Proposer(7) != types.ProcessID(2) {
		t.Errorf("Proposer(7) = %v", m.Proposer(7))
	}
}

func TestPipelinedSlotsMatchSequential(t *testing.T) {
	// Pipelining slots (stride ≪ slot duration) must produce the exact
	// same committed log, much faster.
	crypto, params := setup(t, 5)
	runWith := func(stride types.Tick) (types.Value, types.Tick) {
		machines := make(map[types.ProcessID]*Machine)
		var budget types.Tick
		res, err := sim.Run(sim.Config{
			Params: params,
			Crypto: crypto,
			Factory: func(id types.ProcessID) proto.Machine {
				m, err := NewMachine(Config{
					Params: params, Crypto: crypto, ID: id,
					Tag: fmt.Sprintf("pipe%d", stride), Slots: 6, Queue: cmdQueue(id),
					Stride: stride,
				})
				if err != nil {
					t.Fatal(err)
				}
				machines[id] = m
				budget = m.MaxTicks()
				return m
			},
			MaxTicks: budget * 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided() {
			t.Fatalf("stride=%d: not all decided", stride)
		}
		logEnc, ok := res.Agreement()
		if !ok {
			t.Fatalf("stride=%d: replicas diverged", stride)
		}
		return logEnc, res.Ticks
	}

	seqLog, seqTicks := runWith(0)   // default: sequential
	pipeLog, pipeTicks := runWith(5) // new slot every 5 ticks

	// Same commands and proposers (slot tags differ only in the session
	// namespace, not in the content).
	seqEntries, err := DecodeLog(seqLog)
	if err != nil {
		t.Fatal(err)
	}
	pipeEntries, err := DecodeLog(pipeLog)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqEntries) != len(pipeEntries) {
		t.Fatalf("entry counts differ: %d vs %d", len(seqEntries), len(pipeEntries))
	}
	for i := range seqEntries {
		if !seqEntries[i].Command.Equal(pipeEntries[i].Command) {
			t.Errorf("slot %d: %v vs %v", i, seqEntries[i].Command, pipeEntries[i].Command)
		}
	}
	if pipeTicks*2 >= seqTicks {
		t.Errorf("pipelining did not speed up: %d vs %d ticks", pipeTicks, seqTicks)
	}
}

func TestPipelinedWithCrashes(t *testing.T) {
	crypto, params := setup(t, 5)
	var budget types.Tick
	res, err := sim.Run(sim.Config{
		Params: params,
		Crypto: crypto,
		Factory: func(id types.ProcessID) proto.Machine {
			m, err := NewMachine(Config{
				Params: params, Crypto: crypto, ID: id,
				Tag: "pc", Slots: 5, Queue: cmdQueue(id), Stride: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			budget = m.MaxTicks()
			return m
		},
		Adversary: adversary.NewCrash(2),
		MaxTicks:  budget * 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	logEnc, ok := res.Agreement()
	if !ok {
		t.Fatal("pipelined replicas diverged under a crash")
	}
	entries, err := DecodeLog(logEnc)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Proposer == 2 && !e.Command.IsBottom() {
			t.Errorf("slot %d committed from crashed proposer", e.Slot)
		}
	}
}
