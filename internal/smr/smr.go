// Package smr builds a totally-ordered replicated log — the application
// the paper's introduction motivates ("BA is a key component in many
// distributed systems ... improving the communication complexity was the
// focus of many recent works and deployed systems") — on top of the
// adaptive Byzantine Broadcast.
//
// The log is a sequence of slots. Slot s is decided by one BB instance
// whose designated sender is the rotating proposer p_{s mod n}; the
// proposer broadcasts the next command from its local queue. All correct
// replicas commit identical entries in identical order: agreement per
// slot is exactly BB agreement, and total order follows from the fixed
// slot schedule. A slot whose proposer is faulty or has nothing to
// propose commits ⊥ and is skipped by the application.
//
// Because each slot costs O(n(f+1)) words, the log inherits the paper's
// adaptivity: a failure-free deployment pays O(n) words per committed
// command instead of the Θ(n²) of a classic PBFT-style broadcast round.
package smr

import (
	"fmt"

	"adaptiveba/internal/core/bb"
	"adaptiveba/internal/proto"
	"adaptiveba/internal/types"
	"adaptiveba/internal/wire"
)

// Entry is one committed log position.
type Entry struct {
	Slot     int
	Proposer types.ProcessID
	// Command is the committed value; ⊥ (nil) marks a skipped slot.
	Command types.Value
}

// Config parameterizes one replica.
type Config struct {
	Params types.Params
	Crypto *proto.Crypto
	ID     types.ProcessID
	// Tag domain-separates this log instance.
	Tag string
	// Slots is the number of slots to run (this demo-scale SMR is finite;
	// a deployment would run slots forever).
	Slots int
	// Queue holds the commands this replica proposes in its own slots,
	// in order.
	Queue []types.Value
	// SlotTicks overrides the per-slot schedule length. The default is
	// the BB machine's conservative worst-case duration, so every
	// correct replica starts every slot at the same tick even when a
	// slot needs the fallback.
	SlotTicks types.Tick
	// Stride is the tick offset between consecutive slot starts. The
	// default equals SlotTicks (strictly sequential slots); smaller
	// strides pipeline the broadcasts — instances are independent, so
	// overlap is safe and multiplies throughput by SlotTicks/Stride.
	Stride types.Tick
}

// Machine implements proto.Machine for one replica.
type Machine struct {
	cfg       Config
	slotTicks types.Tick
	stride    types.Tick
	start     types.Tick
	queuePos  int

	// mux demultiplexes the inbox to the live slots in one pass; subs
	// keeps slot-indexed references for the in-order commit loop. Slots
	// are never retired: a decided BB instance may still owe replies to
	// lagging peers, and dropping its traffic would change the schedule.
	mux     *proto.Mux
	subs    []*proto.Sub
	entries []Entry
	done    bool
	output  types.Value
}

var _ proto.Machine = (*Machine)(nil)

// NewMachine builds a replica.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Slots < 1 {
		return nil, fmt.Errorf("smr: need at least one slot, got %d", cfg.Slots)
	}
	if err := cfg.Params.CheckProcess(cfg.ID); err != nil {
		return nil, fmt.Errorf("smr: %w", err)
	}
	slotTicks := cfg.SlotTicks
	if slotTicks <= 0 {
		probe := bb.NewMachine(bb.Config{
			Params: cfg.Params, Crypto: cfg.Crypto, ID: cfg.ID,
			Sender: 0, Tag: cfg.Tag + "/probe",
		})
		slotTicks = probe.MaxTicks()
	}
	stride := cfg.Stride
	if stride <= 0 {
		stride = slotTicks
	}
	return &Machine{
		cfg:       cfg,
		slotTicks: slotTicks,
		stride:    stride,
		mux:       proto.NewMux(),
		subs:      make([]*proto.Sub, cfg.Slots),
	}, nil
}

// SlotTicks returns the per-slot schedule length.
func (m *Machine) SlotTicks() types.Tick { return m.slotTicks }

// MaxTicks bounds the whole log for simulator budgets.
func (m *Machine) MaxTicks() types.Tick {
	return m.stride*types.Tick(m.cfg.Slots-1) + m.slotTicks + 16
}

// Stride returns the tick offset between consecutive slot starts.
func (m *Machine) Stride() types.Tick { return m.stride }

// Proposer returns slot s's designated sender.
func (m *Machine) Proposer(slot int) types.ProcessID {
	return types.ProcessID(slot % m.cfg.Params.N)
}

// Log returns the committed entries so far, in slot order.
func (m *Machine) Log() []Entry {
	out := make([]Entry, len(m.entries))
	copy(out, m.entries)
	return out
}

// Committed returns the non-skipped commands in commit order.
func (m *Machine) Committed() []types.Value {
	var out []types.Value
	for _, e := range m.entries {
		if !e.Command.IsBottom() {
			out = append(out, e.Command.Clone())
		}
	}
	return out
}

// sessionName names slot s's BB session.
func sessionName(slot int) string { return fmt.Sprintf("s%d", slot) }

// Begin implements proto.Machine.
func (m *Machine) Begin(now types.Tick) []proto.Outgoing {
	m.start = now
	return m.startSlot(0, now)
}

// startSlot spins up slot s's BB instance.
func (m *Machine) startSlot(slot int, now types.Tick) []proto.Outgoing {
	proposer := m.Proposer(slot)
	var input types.Value
	if proposer == m.cfg.ID && m.queuePos < len(m.cfg.Queue) {
		input = m.cfg.Queue[m.queuePos]
		m.queuePos++
	}
	inst := bb.NewMachine(bb.Config{
		Params: m.cfg.Params,
		Crypto: m.cfg.Crypto,
		ID:     m.cfg.ID,
		Sender: proposer,
		Input:  input,
		Tag:    fmt.Sprintf("%s/%s", m.cfg.Tag, sessionName(slot)),
	})
	m.subs[slot] = m.mux.Add(sessionName(slot), inst)
	return m.subs[slot].Begin(now)
}

// Tick implements proto.Machine.
func (m *Machine) Tick(now types.Tick, inbox []proto.Incoming) []proto.Outgoing {
	var outs []proto.Outgoing

	// Open the next slot on schedule (with pipelining, several slots may
	// be live at once; each runs in its own session).
	elapsed := now - m.start
	if elapsed%m.stride == 0 {
		if next := int(elapsed / m.stride); next < m.cfg.Slots && m.subs[next] == nil {
			outs = append(outs, m.startSlot(next, now)...)
		}
	}

	// One routing pass over the shared inbox, then every live slot steps
	// in slot order — exactly the delivery order the old per-Sub Route
	// chain produced, at O(inbox) instead of O(slots × inbox).
	if mouts := m.mux.Tick(now, inbox); len(outs) == 0 {
		outs = mouts
	} else {
		outs = append(outs, mouts...)
	}

	// Commit decided slots in order.
	for len(m.entries) < m.cfg.Slots {
		slot := len(m.entries)
		sub := m.subs[slot]
		if sub == nil || !sub.Done() {
			break
		}
		v, _ := sub.Output()
		m.entries = append(m.entries, Entry{Slot: slot, Proposer: m.Proposer(slot), Command: v.Clone()})
	}
	if !m.done && len(m.entries) == m.cfg.Slots {
		m.done = true
		m.output = EncodeLog(m.entries)
	}
	return outs
}

// Output implements proto.Machine: the canonical encoding of the whole
// log, so replica agreement can be checked byte-for-byte.
func (m *Machine) Output() (types.Value, bool) { return m.output, m.done }

// Done implements proto.Machine.
func (m *Machine) Done() bool { return m.done }

// EncodeLog canonically serializes a log.
func EncodeLog(entries []Entry) types.Value {
	w := wire.NewWriter()
	w.PutInt(len(entries))
	for _, e := range entries {
		w.PutInt(e.Slot)
		w.PutProcess(e.Proposer)
		w.PutValue(e.Command)
	}
	return types.Value(w.Bytes())
}

// DecodeLog parses an encoded log.
func DecodeLog(v types.Value) ([]Entry, error) {
	r := wire.NewReader(v)
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("smr: decode log: %w", err)
	}
	if n < 0 || n > wire.MaxChunk/8 {
		return nil, fmt.Errorf("smr: implausible log length %d", n)
	}
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Slot: r.Int(), Proposer: r.Process(), Command: r.Value()}
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("smr: decode log: %w", err)
	}
	return entries, nil
}
