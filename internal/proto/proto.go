// Package proto defines the execution model shared by every protocol in
// the library and by both runtimes (the deterministic simulator and the
// TCP transport).
//
// A protocol is a Machine: a deterministic state machine driven by ticks.
// One tick equals the synchrony bound δ. Machines exchange Payloads inside
// sessions — "/"-separated paths that let a parent protocol host
// sub-protocols (BB hosts weak BA, weak BA hosts the fallback) without the
// runtimes knowing anything about the nesting.
package proto

import (
	"strings"

	"adaptiveba/internal/types"
)

// Payload is one protocol message body. Implementations are immutable
// value-like structs that know their cost in the paper's word model.
type Payload interface {
	// Type returns a short stable name, e.g. "bb/help_req".
	Type() string
	// Words returns the message's cost: the number of words it carries.
	// The runtime clamps this to at least 1 (every message costs a word).
	Words() int
}

// SigCarrier is an optional Payload extension reporting how many
// component signatures the message transports (a threshold certificate
// counts as its signer count, an individual signature as 1). This is the
// measure behind Dolev–Reischuk's Ω(nt)-signatures lower bound: threshold
// schemes compact many signatures into one word, so word complexity can
// be O(n(f+1)) while Θ(nt) signatures still flow through the network.
type SigCarrier interface {
	SigCount() int
}

// Incoming is a received message, addressed to the machine's session.
type Incoming struct {
	From    types.ProcessID
	Session string // path relative to the receiving machine ("" = for me)
	Payload Payload
}

// Outgoing is a message to send. Session is relative to the sending
// machine; parents prefix it while routing upward.
type Outgoing struct {
	To      types.ProcessID
	Session string
	Payload Payload
}

// Machine is a deterministic, single-threaded protocol instance for one
// process. The runtime calls Begin exactly once, then Tick once per tick
// in increasing tick order. Machines never block and never spawn
// goroutines; all state transitions happen inside these calls. Distinct
// machines may be stepped concurrently (they share no state), but no
// single machine ever sees overlapping calls.
type Machine interface {
	// Begin starts the machine at tick now and returns its initial sends.
	Begin(now types.Tick) []Outgoing
	// Tick delivers the messages that arrived at tick now and returns the
	// sends the machine performs at this tick. The inbox slice is only
	// valid for the duration of the call — the runtime reuses its backing
	// array; keep the Incoming values, not the slice. Symmetrically, the
	// runtime copies the returned sends before the next Tick, so machines
	// may reuse their output slice across ticks.
	Tick(now types.Tick, inbox []Incoming) []Outgoing
	// Output returns the machine's decision, if reached. For agreement
	// protocols the value may legitimately be types.Bottom with ok=true.
	Output() (types.Value, bool)
	// Done reports that the machine has decided and has no pending
	// obligations (it will send nothing more unless new messages arrive
	// that re-activate it, e.g. a late fallback certificate).
	Done() bool
}

// Broadcast expands a payload into one Outgoing per process, including the
// sender itself (self-delivery is free: runtimes do not count it).
func Broadcast(params types.Params, session string, p Payload) []Outgoing {
	outs := make([]Outgoing, params.N)
	for i := 0; i < params.N; i++ {
		outs[i] = Outgoing{To: types.ProcessID(i), Session: session, Payload: p}
	}
	return outs
}

// AppendBroadcast appends one message per process to outs and returns
// the extended slice. Machines on per-round broadcast cadences use it to
// recycle their output buffer across ticks — the runtime consumes the
// returned slice before the machine is stepped again, so reuse is within
// the Machine.Tick retention contract. At n = 4096 the per-tick
// Broadcast allocation is the difference between O(1) and O(n) words of
// garbage per machine per round.
func AppendBroadcast(outs []Outgoing, params types.Params, session string, p Payload) []Outgoing {
	for i := 0; i < params.N; i++ {
		outs = append(outs, Outgoing{To: types.ProcessID(i), Session: session, Payload: p})
	}
	return outs
}

// Unicast is a convenience constructor for a single send.
func Unicast(to types.ProcessID, session string, p Payload) []Outgoing {
	return []Outgoing{{To: to, Session: session, Payload: p}}
}

// JoinSession prefixes child-relative session paths with the child's name.
func JoinSession(name, rest string) string {
	if rest == "" {
		return name
	}
	return name + "/" + rest
}

// SplitSession splits a path into its first segment and the remainder.
func SplitSession(s string) (head, rest string) {
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}

// RoundClock maps ticks to 1-based protocol rounds of fixed duration.
// Round r occupies ticks [Start+(r-1)*Dur, Start+r*Dur). With Dur = 1 this
// is the paper's lock-step round model; the fallback algorithm runs with
// Dur = 2 (rounds of 2δ, Lemma 18).
type RoundClock struct {
	Start types.Tick
	Dur   int
}

// NewRoundClock starts a clock at tick start with the given round duration.
func NewRoundClock(start types.Tick, dur int) RoundClock {
	if dur < 1 {
		dur = 1
	}
	return RoundClock{Start: start, Dur: dur}
}

// RoundAt returns the round that tick now falls in (0 if before Start).
func (c RoundClock) RoundAt(now types.Tick) types.Round {
	if now < c.Start {
		return 0
	}
	return types.Round((now-c.Start)/types.Tick(c.Dur)) + 1
}

// BoundaryAt reports whether now is the first tick of a round, and which.
// At the boundary of round r (r >= 2), all honest round-(r-1) messages
// have been delivered, so machines act for round r at its boundary.
func (c RoundClock) BoundaryAt(now types.Tick) (types.Round, bool) {
	if now < c.Start {
		return 0, false
	}
	off := now - c.Start
	if off%types.Tick(c.Dur) != 0 {
		return 0, false
	}
	return types.Round(off/types.Tick(c.Dur)) + 1, true
}

// StartOf returns the first tick of round r.
func (c RoundClock) StartOf(r types.Round) types.Tick {
	return c.Start + types.Tick(int(r-1)*c.Dur)
}
