package proto

import "adaptiveba/internal/types"

// Mux hosts many child machines, each under its own session name, and
// demultiplexes a shared inbox to them in a single pass. It is the
// session-keyed machine lifecycle used by parents that run whole fleets
// of concurrent sub-protocols (the smr log's slots, the multi-session
// engine's agreement instances): children are Added when their session
// is admitted, stepped every tick while live, and Retired when the
// parent no longer owes them service.
//
// Compared to calling Sub.Route once per child — O(children × inbox) —
// Mux buckets the whole inbox by leading session segment in one O(inbox)
// pass. The buckets are owned by the Mux and recycled every tick, and
// retired children return their bucket to a free list for reuse by later
// admissions, so the steady-state tick path allocates nothing.
//
// Message order is preserved exactly as serial per-child routing would
// deliver it: within one session, messages keep their inbox order, and
// children are stepped in insertion order.
type Mux struct {
	names map[string]int
	subs  []*Sub
	state []muxState

	buckets [][]Incoming // per-child delivery bucket, reset each tick
	free    [][]Incoming // buckets reclaimed from retired children
	outs    []Outgoing   // reused join buffer returned by Tick

	unrouted int64
	late     int64
}

type muxState uint8

const (
	muxLive muxState = iota
	muxRetired
)

// NewMux returns an empty multiplexer.
func NewMux() *Mux {
	return &Mux{names: make(map[string]int)}
}

// Len returns the number of children ever added (including retired).
func (x *Mux) Len() int { return len(x.subs) }

// Get returns the child registered under name (nil if unknown or
// retired).
func (x *Mux) Get(name string) *Sub {
	i, ok := x.names[name]
	if !ok || x.state[i] == muxRetired {
		return nil
	}
	return x.subs[i]
}

// Add registers machine under the session segment name and returns its
// Sub. The caller decides when to Begin it (Sub buffers earlier
// deliveries). Adding a name twice, or adding after Retire under the
// same name, panics: session names identify one lifecycle.
func (x *Mux) Add(name string, m Machine) *Sub {
	if _, dup := x.names[name]; dup {
		panic("proto: duplicate mux session " + name)
	}
	sub := NewSub(name, m)
	x.names[name] = len(x.subs)
	x.subs = append(x.subs, sub)
	x.state = append(x.state, muxLive)
	var bucket []Incoming
	if n := len(x.free); n > 0 {
		bucket, x.free = x.free[n-1], x.free[:n-1]
	}
	x.buckets = append(x.buckets, bucket)
	return sub
}

// Retire drops the child registered under name: it is no longer stepped,
// later messages addressed to it are counted as late and discarded, its
// machine reference is released, and its delivery bucket joins the free
// list for the next Add. Retiring an unknown or already-retired name is
// a no-op.
func (x *Mux) Retire(name string) {
	i, ok := x.names[name]
	if !ok || x.state[i] == muxRetired {
		return
	}
	x.state[i] = muxRetired
	x.subs[i] = nil
	x.free = append(x.free, x.buckets[i][:0])
	x.buckets[i] = nil
}

// Unrouted returns the number of messages addressed to sessions never
// registered (e.g. traffic for a not-yet-admitted instance).
func (x *Mux) Unrouted() int64 { return x.unrouted }

// Late returns the number of messages addressed to retired sessions.
func (x *Mux) Late() int64 { return x.late }

// Tick buckets inbox by leading session segment in one pass, then steps
// every live child in insertion order with its bucket. The returned
// slice is owned by the Mux and reused on the next call; callers must
// copy (or forward immediately) rather than retain it — the same
// contract Machine.Tick already imposes on runtimes.
func (x *Mux) Tick(now types.Tick, inbox []Incoming) []Outgoing {
	for _, in := range inbox {
		head, rest := SplitSession(in.Session)
		i, ok := x.names[head]
		if !ok {
			x.unrouted++
			continue
		}
		if x.state[i] == muxRetired {
			x.late++
			continue
		}
		in.Session = rest
		x.buckets[i] = append(x.buckets[i], in)
	}
	outs := x.outs[:0]
	for i, sub := range x.subs {
		if x.state[i] == muxRetired {
			continue
		}
		outs = append(outs, sub.Tick(now, x.buckets[i])...)
		x.buckets[i] = x.buckets[i][:0]
	}
	x.outs = outs
	return outs
}

// Done reports whether every child ever added is either retired or done.
// An empty Mux is done (vacuously); parents typically guard with their
// own admission bookkeeping.
func (x *Mux) Done() bool {
	for i, sub := range x.subs {
		if x.state[i] == muxRetired {
			continue
		}
		if !sub.Done() {
			return false
		}
	}
	return true
}
