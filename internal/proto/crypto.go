package proto

import (
	"runtime"
	"sync"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/crypto/verifycache"
	"adaptiveba/internal/types"
)

// Crypto bundles the artifacts of the trusted setup (Section 2): the run
// parameters, the PKI signature scheme, and (k, n)-threshold schemes at
// whatever thresholds the protocols request. One Crypto instance is shared
// by all machines of a run; it is safe for concurrent use.
//
// Unless disabled with WithoutVerifyCache, Crypto layers the verification
// fast path (internal/crypto/verifycache) under every machine: Scheme is
// the cache-wrapped signature scheme, and threshold schemes memoize whole
// certificates and fan aggregate share checks across cores. Caching is
// shared across all machines of the run — the point is that n processes
// verifying the same bytes should pay for one verification, not n.
type Crypto struct {
	Params types.Params
	Scheme sig.Scheme

	mode        threshold.Mode
	dealerSeed  []byte
	cache       *verifycache.Cache
	certWorkers int

	mu  sync.RWMutex
	byK map[int]*threshold.Scheme
}

// cryptoConfig collects option state for NewCrypto.
type cryptoConfig struct {
	disableCache  bool
	cacheCapacity int
	certWorkers   int
}

// CryptoOption configures NewCrypto.
type CryptoOption func(*cryptoConfig)

// WithoutVerifyCache disables the shared verification fast path: Scheme
// stays exactly the scheme passed in and certificates are verified
// serially from scratch every time. Used for A/B runs (-no-verify-cache).
func WithoutVerifyCache() CryptoOption {
	return func(c *cryptoConfig) { c.disableCache = true }
}

// WithVerifyCacheCapacity bounds the cache to at most entries results
// (default verifycache.DefaultCapacity).
func WithVerifyCacheCapacity(entries int) CryptoOption {
	return func(c *cryptoConfig) { c.cacheCapacity = entries }
}

// WithCertVerifyWorkers bounds the per-certificate share-verification
// fan-out (default one worker per CPU; 1 means serial).
func WithCertVerifyWorkers(workers int) CryptoOption {
	return func(c *cryptoConfig) {
		if workers > 0 {
			c.certWorkers = workers
		}
	}
}

// NewCrypto assembles the trusted setup. mode selects the certificate
// encoding used by all threshold schemes in the run.
func NewCrypto(params types.Params, scheme sig.Scheme, mode threshold.Mode, dealerSeed []byte, opts ...CryptoOption) *Crypto {
	cfg := cryptoConfig{certWorkers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(&cfg)
	}
	c := &Crypto{
		Params:      params,
		Scheme:      scheme,
		mode:        mode,
		dealerSeed:  dealerSeed,
		certWorkers: cfg.certWorkers,
		byK:         make(map[int]*threshold.Scheme),
	}
	if !cfg.disableCache {
		c.cache = verifycache.New(cfg.cacheCapacity)
		c.Scheme = verifycache.WrapScheme(scheme, c.cache)
	}
	return c
}

// Threshold returns the (k, n)-threshold scheme for threshold k, creating
// it on first use. It panics on invalid k — thresholds are derived from
// validated Params, so an invalid k is a programming error.
//
// The lookup sits on the per-message path (every certificate combine and
// verify resolves its scheme here), so the steady state takes only a read
// lock; the write lock is paid once per distinct threshold.
func (c *Crypto) Threshold(k int) *threshold.Scheme {
	c.mu.RLock()
	s, ok := c.byK[k]
	c.mu.RUnlock()
	if ok {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.byK[k]; ok {
		return s
	}
	opts := []threshold.Option{threshold.WithParallelVerify(c.certWorkers)}
	if c.cache != nil {
		opts = append(opts, threshold.WithVerifyCache(c.cache))
	}
	s, err := threshold.New(c.Scheme, k, c.mode, c.dealerSeed, opts...)
	if err != nil {
		panic("proto: invalid threshold requested: " + err.Error())
	}
	c.byK[k] = s
	return s
}

// Signer returns the signing capability for id.
func (c *Crypto) Signer(id types.ProcessID) *sig.Signer {
	return sig.NewSigner(c.Scheme, id)
}

// Mode returns the certificate encoding used in this run.
func (c *Crypto) Mode() threshold.Mode { return c.mode }

// VerifyCacheEnabled reports whether the verification fast path is on.
func (c *Crypto) VerifyCacheEnabled() bool { return c.cache != nil }

// VerifyCacheStats snapshots the fast-path counters; ok is false when the
// cache is disabled.
func (c *Crypto) VerifyCacheStats() (st verifycache.Stats, ok bool) {
	if c.cache == nil {
		return verifycache.Stats{}, false
	}
	return c.cache.Stats(), true
}
