package proto

import (
	"sync"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/types"
)

// Crypto bundles the artifacts of the trusted setup (Section 2): the run
// parameters, the PKI signature scheme, and (k, n)-threshold schemes at
// whatever thresholds the protocols request. One Crypto instance is shared
// by all machines of a run; it is safe for concurrent use.
type Crypto struct {
	Params types.Params
	Scheme sig.Scheme

	mode       threshold.Mode
	dealerSeed []byte

	mu  sync.Mutex
	byK map[int]*threshold.Scheme
}

// NewCrypto assembles the trusted setup. mode selects the certificate
// encoding used by all threshold schemes in the run.
func NewCrypto(params types.Params, scheme sig.Scheme, mode threshold.Mode, dealerSeed []byte) *Crypto {
	return &Crypto{
		Params:     params,
		Scheme:     scheme,
		mode:       mode,
		dealerSeed: dealerSeed,
		byK:        make(map[int]*threshold.Scheme),
	}
}

// Threshold returns the (k, n)-threshold scheme for threshold k, creating
// it on first use. It panics on invalid k — thresholds are derived from
// validated Params, so an invalid k is a programming error.
func (c *Crypto) Threshold(k int) *threshold.Scheme {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.byK[k]; ok {
		return s
	}
	s, err := threshold.New(c.Scheme, k, c.mode, c.dealerSeed)
	if err != nil {
		panic("proto: invalid threshold requested: " + err.Error())
	}
	c.byK[k] = s
	return s
}

// Signer returns the signing capability for id.
func (c *Crypto) Signer(id types.ProcessID) *sig.Signer {
	return sig.NewSigner(c.Scheme, id)
}

// Mode returns the certificate encoding used in this run.
func (c *Crypto) Mode() threshold.Mode { return c.mode }
