package proto

import (
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/types"
)

// BenchmarkThresholdParallelAccess measures the Threshold(k) lookup under
// contention — the per-message hot path every machine takes to resolve
// its certificate scheme. The RWMutex read path should scale with cores
// instead of serializing on a single mutex.
func BenchmarkThresholdParallelAccess(b *testing.B) {
	params, err := types.NewParams(31)
	if err != nil {
		b.Fatal(err)
	}
	ring, err := sig.NewHMACRing(31, []byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	c := NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))
	// Pre-create the schemes so the benchmark hits the steady state.
	ks := []int{8, 16, 21, 24}
	for _, k := range ks {
		c.Threshold(k)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s := c.Threshold(ks[i%len(ks)])
			if s == nil {
				b.Fatal("nil scheme")
			}
			i++
		}
	})
}
