package proto

import (
	"fmt"
	"testing"

	"adaptiveba/internal/types"
)

// recMachine records (copies of) its inboxes and echoes them back.
type recMachine struct {
	seen    []Incoming
	decided bool
}

func (r *recMachine) Begin(now types.Tick) []Outgoing { return nil }

func (r *recMachine) Tick(now types.Tick, inbox []Incoming) []Outgoing {
	var outs []Outgoing
	for _, in := range inbox {
		r.seen = append(r.seen, in) // element copies, not the slice
		outs = append(outs, Outgoing{To: in.From, Session: in.Session, Payload: in.Payload})
	}
	return outs
}

func (r *recMachine) Output() (types.Value, bool) { return nil, r.decided }
func (r *recMachine) Done() bool                  { return r.decided }

func muxInbox(sessions ...string) []Incoming {
	in := make([]Incoming, len(sessions))
	for i, s := range sessions {
		in[i] = Incoming{From: types.ProcessID(i), Session: s, Payload: fakePayload{name: "p", words: 1}}
	}
	return in
}

// TestMuxMatchesSerialRouting proves the single-pass bucketing delivers
// exactly what per-child Sub.Route chains would: same per-child
// messages, same order, same wrapped output order.
func TestMuxMatchesSerialRouting(t *testing.T) {
	build := func() ([]*Sub, []*recMachine) {
		subs := make([]*Sub, 3)
		machines := make([]*recMachine, 3)
		for i := range subs {
			machines[i] = &recMachine{}
			subs[i] = NewSub(fmt.Sprintf("s%d", i), machines[i])
			subs[i].Begin(0)
		}
		return subs, machines
	}

	inbox := muxInbox("s0", "s1/inner", "s2", "s0/deep/er", "nope", "s1", "s2")

	// Serial reference: Route chains in child order.
	refSubs, refMachines := build()
	var refOuts []Outgoing
	rest := inbox
	for _, sub := range refSubs {
		var mine []Incoming
		mine, rest = sub.Route(rest)
		refOuts = append(refOuts, sub.Tick(1, mine)...)
	}

	// Mux under test.
	x := NewMux()
	machines := make([]*recMachine, 3)
	for i := range machines {
		machines[i] = &recMachine{}
		x.Add(fmt.Sprintf("s%d", i), machines[i]).Begin(0)
	}
	outs := x.Tick(1, inbox)

	if len(outs) != len(refOuts) {
		t.Fatalf("outs: %d vs serial %d", len(outs), len(refOuts))
	}
	for i := range outs {
		if outs[i].To != refOuts[i].To || outs[i].Session != refOuts[i].Session {
			t.Errorf("out %d: %+v vs %+v", i, outs[i], refOuts[i])
		}
	}
	for i := range machines {
		if len(machines[i].seen) != len(refMachines[i].seen) {
			t.Fatalf("child %d saw %d msgs, serial saw %d", i, len(machines[i].seen), len(refMachines[i].seen))
		}
		for j := range machines[i].seen {
			if machines[i].seen[j].Session != refMachines[i].seen[j].Session ||
				machines[i].seen[j].From != refMachines[i].seen[j].From {
				t.Errorf("child %d msg %d: %+v vs %+v", i, j, machines[i].seen[j], refMachines[i].seen[j])
			}
		}
	}
	if x.Unrouted() != 1 {
		t.Errorf("unrouted = %d, want 1 (the \"nope\" session)", x.Unrouted())
	}
}

func TestMuxRetire(t *testing.T) {
	x := NewMux()
	m := &recMachine{}
	x.Add("a", m).Begin(0)
	x.Add("b", &recMachine{}).Begin(0)

	x.Tick(1, muxInbox("a", "b"))
	if len(m.seen) != 1 {
		t.Fatalf("pre-retire: child a saw %d", len(m.seen))
	}

	x.Retire("a")
	x.Retire("a") // idempotent
	if x.Get("a") != nil {
		t.Error("retired child still visible")
	}
	x.Tick(2, muxInbox("a", "b"))
	if len(m.seen) != 1 {
		t.Errorf("retired child was stepped with traffic: %d", len(m.seen))
	}
	if x.Late() != 1 {
		t.Errorf("late = %d, want 1", x.Late())
	}

	// The retired child's bucket is recycled by the next Add.
	before := len(x.free)
	x.Add("c", &recMachine{}).Begin(0)
	if len(x.free) != before-1 {
		t.Errorf("free list not consumed: %d -> %d", before, len(x.free))
	}
}

func TestMuxDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	x := NewMux()
	x.Add("a", &recMachine{})
	x.Add("a", &recMachine{})
}

// TestMuxSteadyStateAllocs pins the allocation-free tick path: with all
// children live and buckets warmed up, routing plus stepping allocates
// nothing in the Mux itself.
func TestMuxSteadyStateAllocs(t *testing.T) {
	x := NewMux()
	for i := 0; i < 4; i++ {
		x.Add(fmt.Sprintf("s%d", i), &quietMachine{}).Begin(0)
	}
	inbox := muxInbox("s0", "s1", "s2", "s3", "s0", "s2")
	x.Tick(1, inbox) // warm buckets
	allocs := testing.AllocsPerRun(100, func() {
		x.Tick(2, inbox)
	})
	if allocs > 0 {
		t.Errorf("steady-state Mux.Tick allocates %.1f/op, want 0", allocs)
	}
}

// quietMachine consumes everything and sends nothing.
type quietMachine struct{}

func (quietMachine) Begin(types.Tick) []Outgoing            { return nil }
func (quietMachine) Tick(types.Tick, []Incoming) []Outgoing { return nil }
func (quietMachine) Output() (types.Value, bool)            { return nil, false }
func (quietMachine) Done() bool                             { return false }
