package proto

import (
	"sync"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/threshold"
	"adaptiveba/internal/types"
)

// fakePayload is a minimal payload for framework tests.
type fakePayload struct {
	name  string
	words int
}

func (f fakePayload) Type() string { return f.name }
func (f fakePayload) Words() int   { return f.words }

// echoMachine records calls and echoes every inbox message back to its
// sender, for exercising Sub routing.
type echoMachine struct {
	begun   types.Tick
	ticks   []types.Tick
	inboxes [][]Incoming
	decided bool
}

func (e *echoMachine) Begin(now types.Tick) []Outgoing {
	e.begun = now
	return []Outgoing{{To: 1, Payload: fakePayload{name: "hello", words: 1}}}
}

func (e *echoMachine) Tick(now types.Tick, inbox []Incoming) []Outgoing {
	e.ticks = append(e.ticks, now)
	e.inboxes = append(e.inboxes, inbox)
	var outs []Outgoing
	for _, in := range inbox {
		outs = append(outs, Outgoing{To: in.From, Session: in.Session, Payload: in.Payload})
	}
	return outs
}

func (e *echoMachine) Output() (types.Value, bool) { return nil, e.decided }
func (e *echoMachine) Done() bool                  { return e.decided }

func TestSessionHelpers(t *testing.T) {
	if got := JoinSession("bb", ""); got != "bb" {
		t.Errorf("JoinSession = %q", got)
	}
	if got := JoinSession("bb", "wba/fallback"); got != "bb/wba/fallback" {
		t.Errorf("JoinSession = %q", got)
	}
	head, rest := SplitSession("bb/wba/fallback")
	if head != "bb" || rest != "wba/fallback" {
		t.Errorf("SplitSession = %q, %q", head, rest)
	}
	head, rest = SplitSession("leaf")
	if head != "leaf" || rest != "" {
		t.Errorf("SplitSession leaf = %q, %q", head, rest)
	}
}

func TestBroadcastIncludesSelf(t *testing.T) {
	p, _ := types.NewParams(5)
	outs := Broadcast(p, "s", fakePayload{name: "x", words: 2})
	if len(outs) != 5 {
		t.Fatalf("broadcast to %d", len(outs))
	}
	seen := map[types.ProcessID]bool{}
	for _, o := range outs {
		seen[o.To] = true
		if o.Session != "s" {
			t.Errorf("session = %q", o.Session)
		}
	}
	if len(seen) != 5 {
		t.Errorf("recipients: %v", seen)
	}
}

func TestUnicast(t *testing.T) {
	outs := Unicast(3, "", fakePayload{name: "y", words: 1})
	if len(outs) != 1 || outs[0].To != 3 {
		t.Fatalf("got %+v", outs)
	}
}

func TestRoundClockLockStep(t *testing.T) {
	c := NewRoundClock(0, 1)
	for tick, want := range map[types.Tick]types.Round{0: 1, 1: 2, 5: 6} {
		if got := c.RoundAt(tick); got != want {
			t.Errorf("RoundAt(%d) = %d, want %d", tick, got, want)
		}
		if r, ok := c.BoundaryAt(tick); !ok || r != want {
			t.Errorf("BoundaryAt(%d) = %d,%v", tick, r, ok)
		}
	}
}

func TestRoundClockDoubleDuration(t *testing.T) {
	c := NewRoundClock(10, 2)
	if r := c.RoundAt(9); r != 0 {
		t.Errorf("before start: %d", r)
	}
	if _, ok := c.BoundaryAt(9); ok {
		t.Error("boundary before start")
	}
	cases := []struct {
		tick     types.Tick
		round    types.Round
		boundary bool
	}{
		{10, 1, true}, {11, 1, false}, {12, 2, true}, {13, 2, false}, {18, 5, true},
	}
	for _, tc := range cases {
		if got := c.RoundAt(tc.tick); got != tc.round {
			t.Errorf("RoundAt(%d) = %d, want %d", tc.tick, got, tc.round)
		}
		_, ok := c.BoundaryAt(tc.tick)
		if ok != tc.boundary {
			t.Errorf("BoundaryAt(%d) = %v", tc.tick, ok)
		}
	}
	if got := c.StartOf(3); got != 14 {
		t.Errorf("StartOf(3) = %d", got)
	}
}

func TestRoundClockClampsDuration(t *testing.T) {
	c := NewRoundClock(0, 0)
	if c.Dur != 1 {
		t.Errorf("Dur = %d", c.Dur)
	}
}

func TestSubRoutingAndWrapping(t *testing.T) {
	child := &echoMachine{}
	sub := NewSub("wba", child)

	inbox := []Incoming{
		{From: 1, Session: "wba", Payload: fakePayload{name: "a"}},
		{From: 2, Session: "wba/fallback", Payload: fakePayload{name: "b"}},
		{From: 3, Session: "other", Payload: fakePayload{name: "c"}},
		{From: 4, Session: "", Payload: fakePayload{name: "d"}},
	}
	mine, rest := sub.Route(inbox)
	if len(mine) != 2 || len(rest) != 2 {
		t.Fatalf("route split %d/%d", len(mine), len(rest))
	}
	if mine[0].Session != "" || mine[1].Session != "fallback" {
		t.Errorf("stripped sessions: %q %q", mine[0].Session, mine[1].Session)
	}

	outs := sub.Begin(5)
	if child.begun != 5 {
		t.Errorf("child begun at %d", child.begun)
	}
	if len(outs) != 1 || outs[0].Session != "wba" {
		t.Fatalf("begin outs: %+v", outs)
	}
	outs = sub.Tick(6, mine)
	if len(outs) != 2 {
		t.Fatalf("tick outs: %+v", outs)
	}
	if outs[0].Session != "wba" || outs[1].Session != "wba/fallback" {
		t.Errorf("wrapped sessions: %q %q", outs[0].Session, outs[1].Session)
	}
}

func TestSubBuffersBeforeBegin(t *testing.T) {
	child := &echoMachine{}
	sub := NewSub("fb", child)

	early := []Incoming{{From: 1, Session: "fb", Payload: fakePayload{name: "early"}}}
	mine, _ := sub.Route(early)
	if outs := sub.Tick(1, mine); outs != nil {
		t.Fatalf("unstarted child produced sends: %+v", outs)
	}
	if sub.Done() {
		t.Error("unstarted child reported done")
	}
	sub.Begin(3)
	outs := sub.Tick(4, nil)
	if len(outs) != 1 {
		t.Fatalf("buffered message not replayed: %+v", outs)
	}
	if len(child.inboxes) != 1 || len(child.inboxes[0]) != 1 {
		t.Fatalf("child saw %+v", child.inboxes)
	}
	if child.inboxes[0][0].Payload.Type() != "early" {
		t.Error("wrong replayed payload")
	}
}

func TestSubBeginIdempotent(t *testing.T) {
	child := &echoMachine{}
	sub := NewSub("x", child)
	if outs := sub.Begin(0); len(outs) != 1 {
		t.Fatal("first begin")
	}
	if outs := sub.Begin(1); outs != nil {
		t.Fatal("second begin produced sends")
	}
	if child.begun != 0 {
		t.Error("child restarted")
	}
}

func TestCryptoThresholdCaching(t *testing.T) {
	params, _ := types.NewParams(7)
	ring, _ := sig.NewHMACRing(7, []byte("s"))
	c := NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))
	a := c.Threshold(4)
	b := c.Threshold(4)
	if a != b {
		t.Error("threshold scheme not cached")
	}
	if a.K() != 4 || a.N() != 7 {
		t.Errorf("scheme params: k=%d n=%d", a.K(), a.N())
	}
	if c.Threshold(5) == a {
		t.Error("different k returned same scheme")
	}
	if c.Mode() != threshold.ModeCompact {
		t.Errorf("mode = %v", c.Mode())
	}
	s := c.Signer(3)
	if s.ID() != 3 {
		t.Errorf("signer id = %v", s.ID())
	}
}

func TestCryptoThresholdPanicsOnInvalidK(t *testing.T) {
	params, _ := types.NewParams(7)
	ring, _ := sig.NewHMACRing(7, []byte("s"))
	c := NewCrypto(params, ring, threshold.ModeAggregate, nil)
	defer func() {
		if recover() == nil {
			t.Error("no panic for invalid threshold")
		}
	}()
	c.Threshold(0)
}

func TestCryptoVerifyCacheDefaultOn(t *testing.T) {
	params, _ := types.NewParams(7)
	ring, _ := sig.NewHMACRing(7, []byte("s"))
	c := NewCrypto(params, ring, threshold.ModeAggregate, nil)
	if !c.VerifyCacheEnabled() {
		t.Fatal("verify cache not enabled by default")
	}
	if c.Scheme == sig.Scheme(ring) {
		t.Error("Scheme not cache-wrapped")
	}
	msg := []byte("m")
	sg, err := c.Scheme.Sign(2, msg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !c.Scheme.Verify(2, msg, sg) {
			t.Fatal("valid signature rejected")
		}
	}
	st, ok := c.VerifyCacheStats()
	if !ok || st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v ok=%v, want 1 miss / 2 hits", st, ok)
	}
}

func TestCryptoWithoutVerifyCache(t *testing.T) {
	params, _ := types.NewParams(7)
	ring, _ := sig.NewHMACRing(7, []byte("s"))
	c := NewCrypto(params, ring, threshold.ModeAggregate, nil, WithoutVerifyCache())
	if c.VerifyCacheEnabled() {
		t.Fatal("cache enabled despite WithoutVerifyCache")
	}
	if c.Scheme != sig.Scheme(ring) {
		t.Error("Scheme wrapped despite WithoutVerifyCache")
	}
	if _, ok := c.VerifyCacheStats(); ok {
		t.Error("stats reported with cache off")
	}
}

// TestCryptoThresholdConcurrentAccess hammers the Threshold lookup from
// many goroutines (race detector checks the RWMutex discipline) and
// asserts every caller sees the same cached scheme per k.
func TestCryptoThresholdConcurrentAccess(t *testing.T) {
	params, _ := types.NewParams(15)
	ring, _ := sig.NewHMACRing(15, []byte("s"))
	c := NewCrypto(params, ring, threshold.ModeCompact, []byte("d"))
	const goroutines = 16
	got := make([][]*threshold.Scheme, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make([]*threshold.Scheme, 0, 400)
			for i := 0; i < 100; i++ {
				for k := 1; k <= 4; k++ {
					got[g] = append(got[g], c.Threshold(k))
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range got[g] {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d saw a different scheme instance at %d", g, i)
			}
		}
	}
}
