package proto

import "adaptiveba/internal/types"

// Sub hosts a child machine under a named session. Parents create a Sub,
// feed it the child-addressed slice of their inbox every tick, and start
// it whenever the protocol dictates (possibly mid-run, as with the
// fallback). Messages that arrive before the child starts are buffered and
// replayed on the first tick after Begin.
type Sub struct {
	name    string
	machine Machine
	started bool
	begun   bool
	buffer  []Incoming
}

// NewSub wraps machine under the session segment name.
func NewSub(name string, machine Machine) *Sub {
	return &Sub{name: name, machine: machine}
}

// Name returns the session segment.
func (s *Sub) Name() string { return s.name }

// Started reports whether Begin has been called.
func (s *Sub) Started() bool { return s.started }

// Machine exposes the wrapped machine (for Output/Done inspection).
func (s *Sub) Machine() Machine { return s.machine }

// Route splits inbox into messages addressed to this child (with the
// session prefix stripped) and the rest. Parents with several children
// call Route once per child on the remainder.
func (s *Sub) Route(inbox []Incoming) (mine, rest []Incoming) {
	for _, in := range inbox {
		head, tail := SplitSession(in.Session)
		if head == s.name {
			in.Session = tail
			mine = append(mine, in)
		} else {
			rest = append(rest, in)
		}
	}
	return mine, rest
}

// Begin starts the child at tick now and returns its wrapped sends. It is
// idempotent: second and later calls return nil.
func (s *Sub) Begin(now types.Tick) []Outgoing {
	if s.started {
		return nil
	}
	s.started = true
	return s.wrap(s.machine.Begin(now))
}

// Tick forwards child-addressed messages. Before the child starts, the
// messages are buffered; the buffered backlog is replayed in the first
// Tick after Begin.
func (s *Sub) Tick(now types.Tick, mine []Incoming) []Outgoing {
	if !s.started {
		s.buffer = append(s.buffer, mine...)
		return nil
	}
	if len(s.buffer) > 0 {
		mine = append(s.buffer, mine...)
		s.buffer = nil
	}
	return s.wrap(s.machine.Tick(now, mine))
}

// Output proxies the child's decision.
func (s *Sub) Output() (types.Value, bool) {
	return s.machine.Output()
}

// Done proxies the child's completion; an unstarted child is not done.
func (s *Sub) Done() bool {
	return s.started && s.machine.Done()
}

func (s *Sub) wrap(outs []Outgoing) []Outgoing {
	for i := range outs {
		outs[i].Session = JoinSession(s.name, outs[i].Session)
	}
	return outs
}
