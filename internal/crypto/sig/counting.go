package sig

import (
	"sync/atomic"

	"adaptiveba/internal/types"
)

// Counting decorates a Scheme with atomic operation counters, used by the
// experiments to report cryptographic work (signing and verification are
// the CPU cost of authenticated BA, next to the network cost in words).
type Counting struct {
	inner    Scheme
	signs    atomic.Int64
	verifies atomic.Int64
}

var _ Scheme = (*Counting)(nil)

// NewCounting wraps inner.
func NewCounting(inner Scheme) *Counting {
	return &Counting{inner: inner}
}

// Signs returns the number of Sign calls so far.
func (c *Counting) Signs() int64 { return c.signs.Load() }

// Verifies returns the number of Verify calls so far.
func (c *Counting) Verifies() int64 { return c.verifies.Load() }

// Name implements Scheme.
func (c *Counting) Name() string { return c.inner.Name() + "+count" }

// N implements Scheme.
func (c *Counting) N() int { return c.inner.N() }

// SignatureSize implements Scheme.
func (c *Counting) SignatureSize() int { return c.inner.SignatureSize() }

// Sign implements Scheme.
func (c *Counting) Sign(signer types.ProcessID, msg []byte) (Signature, error) {
	c.signs.Add(1)
	return c.inner.Sign(signer, msg)
}

// Verify implements Scheme.
func (c *Counting) Verify(signer types.ProcessID, msg []byte, s Signature) bool {
	c.verifies.Add(1)
	return c.inner.Verify(signer, msg, s)
}
