package sig

import (
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"

	"adaptiveba/internal/types"
)

func rings(t *testing.T, n int) []Scheme {
	t.Helper()
	ed, err := NewEd25519Ring(n, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := NewHMACRing(n, []byte("test-seed"))
	if err != nil {
		t.Fatal(err)
	}
	return []Scheme{ed, hm}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	for _, sch := range rings(t, 5) {
		t.Run(sch.Name(), func(t *testing.T) {
			msg := []byte("make every word count")
			for id := types.ProcessID(0); id < 5; id++ {
				s, err := sch.Sign(id, msg)
				if err != nil {
					t.Fatalf("Sign(%v): %v", id, err)
				}
				if !sch.Verify(id, msg, s) {
					t.Errorf("valid signature by %v rejected", id)
				}
			}
		})
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	for _, sch := range rings(t, 3) {
		t.Run(sch.Name(), func(t *testing.T) {
			msg := []byte("payload")
			s, err := sch.Sign(1, msg)
			if err != nil {
				t.Fatal(err)
			}
			if sch.Verify(1, []byte("payloae"), s) {
				t.Error("signature verified for different message")
			}
			if sch.Verify(2, msg, s) {
				t.Error("signature verified for different signer")
			}
			bad := s.Clone()
			bad[0] ^= 0xff
			if sch.Verify(1, msg, bad) {
				t.Error("tampered signature verified")
			}
			if sch.Verify(1, msg, nil) {
				t.Error("nil signature verified")
			}
		})
	}
}

func TestOutOfRangeSigner(t *testing.T) {
	for _, sch := range rings(t, 3) {
		t.Run(sch.Name(), func(t *testing.T) {
			if _, err := sch.Sign(3, []byte("m")); !errors.Is(err, ErrUnknownSigner) {
				t.Errorf("Sign out of range: err = %v", err)
			}
			if _, err := sch.Sign(types.NilProcess, []byte("m")); !errors.Is(err, ErrUnknownSigner) {
				t.Errorf("Sign nil process: err = %v", err)
			}
			if sch.Verify(7, []byte("m"), Signature("x")) {
				t.Error("verify accepted out-of-range signer")
			}
		})
	}
}

func TestRingSizeValidation(t *testing.T) {
	if _, err := NewEd25519Ring(0, rand.Reader); err == nil {
		t.Error("ed25519 ring of size 0 accepted")
	}
	if _, err := NewHMACRing(-1, nil); err == nil {
		t.Error("hmac ring of size -1 accepted")
	}
}

func TestSchemeMetadata(t *testing.T) {
	for _, sch := range rings(t, 4) {
		if sch.N() != 4 {
			t.Errorf("%s: N = %d", sch.Name(), sch.N())
		}
		if sch.SignatureSize() <= 0 {
			t.Errorf("%s: SignatureSize = %d", sch.Name(), sch.SignatureSize())
		}
		s, err := sch.Sign(0, []byte("m"))
		if err != nil {
			t.Fatal(err)
		}
		if len(s) != sch.SignatureSize() {
			t.Errorf("%s: signature length %d != declared %d", sch.Name(), len(s), sch.SignatureSize())
		}
	}
}

func TestHMACDeterministicAcrossRings(t *testing.T) {
	a, _ := NewHMACRing(3, []byte("seed"))
	b, _ := NewHMACRing(3, []byte("seed"))
	sa, _ := a.Sign(2, []byte("m"))
	if !b.Verify(2, []byte("m"), sa) {
		t.Error("same-seed rings disagree")
	}
	c, _ := NewHMACRing(3, []byte("other"))
	if c.Verify(2, []byte("m"), sa) {
		t.Error("different-seed ring verified foreign signature")
	}
}

func TestSignerCapability(t *testing.T) {
	sch := rings(t, 3)[1]
	s := NewSigner(sch, 2)
	if s.ID() != 2 {
		t.Fatalf("ID = %v", s.ID())
	}
	sg, err := s.Sign([]byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if !sch.Verify(2, []byte("m"), sg) {
		t.Error("signer signature invalid")
	}
}

func TestSignatureCloneIndependence(t *testing.T) {
	s := Signature{1, 2, 3}
	c := s.Clone()
	c[0] = 9
	if s[0] != 1 {
		t.Error("Clone aliases original")
	}
	if Signature(nil).Clone() != nil {
		t.Error("nil clone should stay nil")
	}
}

// Property: for random messages, signatures verify for the right (signer,
// message) pair and fail when the message is perturbed.
func TestQuickSignVerify(t *testing.T) {
	hm, _ := NewHMACRing(7, []byte("q"))
	f := func(msg []byte, idRaw uint8, flip uint8) bool {
		id := types.ProcessID(int(idRaw) % 7)
		s, err := hm.Sign(id, msg)
		if err != nil || !hm.Verify(id, msg, s) {
			return false
		}
		mutated := append([]byte{flip ^ 0xAA}, msg...)
		return !hm.Verify(id, mutated, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
