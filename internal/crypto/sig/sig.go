// Package sig provides the trusted-PKI signature abstraction the paper
// assumes (Section 2). A Scheme is created by a trusted setup for a fixed
// set of n processes; ⟨m⟩_p in the paper corresponds to Sign(p, m).
//
// Two interchangeable implementations are provided:
//
//   - Ed25519Ring: real asymmetric signatures from crypto/ed25519. Use for
//     the TCP runtime and whenever genuine unforgeability matters.
//   - HMACRing: HMAC-SHA256 tags with per-process keys. Verification needs
//     the signing key, so the ring object itself is the trusted party; it
//     models the paper's "ideal" scheme and is an order of magnitude faster,
//     which matters for large simulated sweeps. Honest processes only sign
//     through a Signer bound to their own identity.
package sig

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"adaptiveba/internal/types"
)

// Signature is an opaque signature or MAC tag.
type Signature []byte

// Clone returns an independent copy.
func (s Signature) Clone() Signature {
	if s == nil {
		return nil
	}
	c := make(Signature, len(s))
	copy(c, s)
	return c
}

// Scheme signs and verifies on behalf of the n processes of one run.
type Scheme interface {
	// Name identifies the implementation ("ed25519" or "hmac").
	Name() string
	// N returns the number of identities in the ring.
	N() int
	// Sign produces signer's signature on msg.
	Sign(signer types.ProcessID, msg []byte) (Signature, error)
	// Verify reports whether s is signer's valid signature on msg.
	Verify(signer types.ProcessID, msg []byte, s Signature) bool
	// SignatureSize is the byte length of signatures (for wire sizing).
	SignatureSize() int
}

// Errors returned by schemes.
var (
	ErrUnknownSigner = errors.New("sig: signer id out of range")
)

// Ed25519Ring is a PKI of n real Ed25519 key pairs.
type Ed25519Ring struct {
	priv []ed25519.PrivateKey
	pub  []ed25519.PublicKey
}

var _ Scheme = (*Ed25519Ring)(nil)

// NewEd25519Ring generates n key pairs from the given randomness source.
func NewEd25519Ring(n int, rand io.Reader) (*Ed25519Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sig: invalid ring size %d", n)
	}
	r := &Ed25519Ring{
		priv: make([]ed25519.PrivateKey, n),
		pub:  make([]ed25519.PublicKey, n),
	}
	for i := 0; i < n; i++ {
		pub, priv, err := ed25519.GenerateKey(rand)
		if err != nil {
			return nil, fmt.Errorf("sig: generate key %d: %w", i, err)
		}
		r.pub[i], r.priv[i] = pub, priv
	}
	return r, nil
}

// Name implements Scheme.
func (r *Ed25519Ring) Name() string { return "ed25519" }

// N implements Scheme.
func (r *Ed25519Ring) N() int { return len(r.priv) }

// SignatureSize implements Scheme.
func (r *Ed25519Ring) SignatureSize() int { return ed25519.SignatureSize }

// Sign implements Scheme.
func (r *Ed25519Ring) Sign(signer types.ProcessID, msg []byte) (Signature, error) {
	if signer < 0 || int(signer) >= len(r.priv) {
		return nil, fmt.Errorf("%w: %v", ErrUnknownSigner, signer)
	}
	return ed25519.Sign(r.priv[signer], msg), nil
}

// Verify implements Scheme.
func (r *Ed25519Ring) Verify(signer types.ProcessID, msg []byte, s Signature) bool {
	if signer < 0 || int(signer) >= len(r.pub) {
		return false
	}
	return ed25519.Verify(r.pub[signer], msg, s)
}

// HMACRing is a symmetric "ideal signature" functionality: per-process
// HMAC-SHA256 keys derived from a master seed. Fast and deterministic;
// unforgeable only against parties that use the ring through its API.
type HMACRing struct {
	keys [][]byte
}

var _ Scheme = (*HMACRing)(nil)

// hmacTagSize is the truncated tag length; 16 bytes keeps messages small
// while leaving forgery probability negligible for simulation purposes.
const hmacTagSize = 16

// NewHMACRing derives n keys from seed.
func NewHMACRing(n int, seed []byte) (*HMACRing, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sig: invalid ring size %d", n)
	}
	r := &HMACRing{keys: make([][]byte, n)}
	for i := 0; i < n; i++ {
		mac := hmac.New(sha256.New, seed)
		var idb [8]byte
		binary.BigEndian.PutUint64(idb[:], uint64(i))
		mac.Write([]byte("adaptiveba/keyderive"))
		mac.Write(idb[:])
		r.keys[i] = mac.Sum(nil)
	}
	return r, nil
}

// Name implements Scheme.
func (r *HMACRing) Name() string { return "hmac" }

// N implements Scheme.
func (r *HMACRing) N() int { return len(r.keys) }

// SignatureSize implements Scheme.
func (r *HMACRing) SignatureSize() int { return hmacTagSize }

// Sign implements Scheme.
func (r *HMACRing) Sign(signer types.ProcessID, msg []byte) (Signature, error) {
	if signer < 0 || int(signer) >= len(r.keys) {
		return nil, fmt.Errorf("%w: %v", ErrUnknownSigner, signer)
	}
	mac := hmac.New(sha256.New, r.keys[signer])
	mac.Write(msg)
	return mac.Sum(nil)[:hmacTagSize], nil
}

// Verify implements Scheme.
func (r *HMACRing) Verify(signer types.ProcessID, msg []byte, s Signature) bool {
	if signer < 0 || int(signer) >= len(r.keys) {
		return false
	}
	want, err := r.Sign(signer, msg)
	if err != nil {
		return false
	}
	return hmac.Equal(want, s)
}

// Signer is a capability binding one identity to a scheme. Honest protocol
// code receives a Signer (not the full Scheme) so it can only sign as
// itself; the adversary receives Signers for every corrupted identity.
type Signer struct {
	scheme Scheme
	id     types.ProcessID
}

// NewSigner binds id to scheme.
func NewSigner(scheme Scheme, id types.ProcessID) *Signer {
	return &Signer{scheme: scheme, id: id}
}

// ID returns the bound identity.
func (s *Signer) ID() types.ProcessID { return s.id }

// Sign signs msg as the bound identity.
func (s *Signer) Sign(msg []byte) (Signature, error) {
	return s.scheme.Sign(s.id, msg)
}
