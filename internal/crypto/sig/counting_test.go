package sig

import "testing"

func TestCountingScheme(t *testing.T) {
	inner, err := NewHMACRing(3, []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounting(inner)
	if c.N() != 3 || c.SignatureSize() != inner.SignatureSize() {
		t.Error("metadata not forwarded")
	}
	if c.Name() != "hmac+count" {
		t.Errorf("Name = %q", c.Name())
	}
	s, err := c.Sign(1, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Verify(1, []byte("m"), s) {
		t.Error("verify failed")
	}
	c.Verify(1, []byte("x"), s)
	if c.Signs() != 1 || c.Verifies() != 2 {
		t.Errorf("counters: signs=%d verifies=%d", c.Signs(), c.Verifies())
	}
}
