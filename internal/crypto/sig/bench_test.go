package sig

import (
	"crypto/rand"
	"testing"
)

func benchScheme(b *testing.B, sch Scheme) {
	b.Helper()
	msg := []byte("benchmark message for adaptive byzantine agreement")
	b.Run("sign", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sch.Sign(0, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	s, err := sch.Sign(0, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !sch.Verify(0, msg, s) {
				b.Fatal("verify failed")
			}
		}
	})
}

func BenchmarkHMAC(b *testing.B) {
	sch, err := NewHMACRing(4, []byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	benchScheme(b, sch)
}

func BenchmarkEd25519(b *testing.B) {
	sch, err := NewEd25519Ring(4, rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	benchScheme(b, sch)
}
