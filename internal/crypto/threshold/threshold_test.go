package threshold

import (
	"errors"
	"testing"
	"testing/quick"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/types"
)

func newScheme(t *testing.T, n, k int, mode Mode) *Scheme {
	t.Helper()
	base, err := sig.NewHMACRing(n, []byte("threshold-test"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(base, k, mode, []byte("dealer"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func collectShares(t *testing.T, s *Scheme, msg []byte, ids ...types.ProcessID) []Share {
	t.Helper()
	shares := make([]Share, 0, len(ids))
	for _, id := range ids {
		sh, err := s.SignShare(id, msg)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	return shares
}

func modes() []Mode { return []Mode{ModeAggregate, ModeCompact} }

func TestCombineAndVerify(t *testing.T) {
	msg := []byte("commit v in phase 3")
	for _, mode := range modes() {
		t.Run(mode.String(), func(t *testing.T) {
			s := newScheme(t, 7, 4, mode)
			cert, err := s.Combine(msg, collectShares(t, s, msg, 0, 2, 4, 6))
			if err != nil {
				t.Fatal(err)
			}
			if !s.Verify(msg, cert) {
				t.Fatal("valid certificate rejected")
			}
			if cert.Count() != 4 {
				t.Errorf("Count = %d", cert.Count())
			}
			if cert.Words() != 1 {
				t.Errorf("certificate must cost one word, got %d", cert.Words())
			}
			if s.Verify([]byte("other message"), cert) {
				t.Error("certificate verified for wrong message")
			}
		})
	}
}

func TestCombineTooFewShares(t *testing.T) {
	for _, mode := range modes() {
		s := newScheme(t, 7, 4, mode)
		msg := []byte("m")
		_, err := s.Combine(msg, collectShares(t, s, msg, 0, 1, 2))
		if !errors.Is(err, ErrTooFewShares) {
			t.Errorf("%v: err = %v, want ErrTooFewShares", mode, err)
		}
	}
}

func TestCombineDeduplicatesSigners(t *testing.T) {
	for _, mode := range modes() {
		s := newScheme(t, 5, 3, mode)
		msg := []byte("m")
		// Same signer repeated must not count multiple times.
		shares := collectShares(t, s, msg, 0, 0, 0, 1)
		if _, err := s.Combine(msg, shares); !errors.Is(err, ErrTooFewShares) {
			t.Errorf("%v: duplicated signers formed a quorum: %v", mode, err)
		}
		shares = collectShares(t, s, msg, 0, 0, 1, 2)
		cert, err := s.Combine(msg, shares)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if cert.Count() != 3 {
			t.Errorf("%v: Count = %d", mode, cert.Count())
		}
	}
}

func TestCombineRejectsForgedShare(t *testing.T) {
	for _, mode := range modes() {
		s := newScheme(t, 5, 3, mode)
		msg := []byte("m")
		shares := collectShares(t, s, msg, 0, 1)
		forged := Share{Signer: 2, Sig: sig.Signature("not a real signature")}
		if _, err := s.Combine(msg, append(shares, forged)); !errors.Is(err, ErrBadShare) {
			t.Errorf("%v: forged share accepted: %v", mode, err)
		}
		// A share by one signer presented as another's must fail too.
		sh, _ := s.SignShare(0, msg)
		stolen := Share{Signer: 3, Sig: sh.Sig}
		if _, err := s.Combine(msg, append(shares, stolen)); !errors.Is(err, ErrBadShare) {
			t.Errorf("%v: transplanted share accepted: %v", mode, err)
		}
	}
}

func TestVerifyRejectsMutations(t *testing.T) {
	msg := []byte("m")
	for _, mode := range modes() {
		t.Run(mode.String(), func(t *testing.T) {
			s := newScheme(t, 7, 3, mode)
			cert, err := s.Combine(msg, collectShares(t, s, msg, 0, 1, 2))
			if err != nil {
				t.Fatal(err)
			}
			if s.Verify(msg, nil) {
				t.Error("nil cert verified")
			}
			// Wrong K claimed.
			c := cert.Clone()
			c.K = 2
			if s.Verify(msg, c) {
				t.Error("cert with mismatched K verified")
			}
			// Claiming extra signers must break verification.
			c = cert.Clone()
			c.Signers.Add(6)
			if s.Verify(msg, c) {
				t.Error("cert with inflated signer set verified")
			}
			// Tag/share tampering.
			c = cert.Clone()
			if mode == ModeCompact {
				c.Tag[0] ^= 1
			} else {
				c.Shares[0][0] ^= 1
			}
			if s.Verify(msg, c) {
				t.Error("tampered cert verified")
			}
		})
	}
}

func TestVerifyAcrossSchemesRequiresMatchingThreshold(t *testing.T) {
	msg := []byte("m")
	base, _ := sig.NewHMACRing(7, []byte("threshold-test"))
	s3, _ := New(base, 3, ModeCompact, []byte("dealer"))
	s4, _ := New(base, 4, ModeCompact, []byte("dealer"))
	cert, err := s3.Combine(msg, []Share{
		mustShare(t, s3, 0, msg), mustShare(t, s3, 1, msg), mustShare(t, s3, 2, msg),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s4.Verify(msg, cert) {
		t.Error("(3,n) certificate verified by (4,n) scheme")
	}
}

func mustShare(t *testing.T, s *Scheme, id types.ProcessID, msg []byte) Share {
	t.Helper()
	sh, err := s.SignShare(id, msg)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func TestNewValidation(t *testing.T) {
	base, _ := sig.NewHMACRing(5, []byte("x"))
	cases := []struct {
		k    int
		mode Mode
	}{
		{k: 0, mode: ModeAggregate},
		{k: 6, mode: ModeAggregate},
		{k: -1, mode: ModeCompact},
		{k: 3, mode: Mode(99)},
	}
	for _, c := range cases {
		if _, err := New(base, c.k, c.mode, nil); !errors.Is(err, ErrBadParams) {
			t.Errorf("New(k=%d, mode=%v): err = %v", c.k, c.mode, err)
		}
	}
	if _, err := New(nil, 3, ModeAggregate, nil); !errors.Is(err, ErrBadParams) {
		t.Errorf("nil base accepted: %v", err)
	}
}

func TestCertCloneIndependence(t *testing.T) {
	s := newScheme(t, 5, 3, ModeAggregate)
	msg := []byte("m")
	cert, err := s.Combine(msg, collectShares(t, s, msg, 0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	c := cert.Clone()
	c.Shares[0][0] ^= 0xff
	c.Signers.Add(4)
	if !s.Verify(msg, cert) {
		t.Error("mutating clone corrupted original")
	}
	var nilCert *Cert
	if nilCert.Clone() != nil || nilCert.Count() != 0 || nilCert.Bytes() != 0 {
		t.Error("nil cert helpers misbehave")
	}
}

func TestCompactCertIsConstantSize(t *testing.T) {
	s := newScheme(t, 31, 16, ModeCompact)
	msg := []byte("m")
	ids := make([]types.ProcessID, 16)
	for i := range ids {
		ids[i] = types.ProcessID(i)
	}
	c16, err := s.Combine(msg, collectShares(t, s, msg, ids...))
	if err != nil {
		t.Fatal(err)
	}
	agg := newScheme(t, 31, 16, ModeAggregate)
	a16, err := agg.Combine(msg, collectSharesAgg(t, agg, msg, ids...))
	if err != nil {
		t.Fatal(err)
	}
	if c16.Bytes() >= a16.Bytes() {
		t.Errorf("compact (%dB) not smaller than aggregate (%dB)", c16.Bytes(), a16.Bytes())
	}
}

func collectSharesAgg(t *testing.T, s *Scheme, msg []byte, ids ...types.ProcessID) []Share {
	t.Helper()
	return collectShares(t, s, msg, ids...)
}

// Property: any subset of >= k distinct signers combines into a cert that
// verifies, and never verifies under a different message.
func TestQuickCombine(t *testing.T) {
	s := newScheme(t, 9, 5, ModeCompact)
	f := func(pick uint16, msg []byte) bool {
		var ids []types.ProcessID
		for i := 0; i < 9; i++ {
			if pick&(1<<i) != 0 {
				ids = append(ids, types.ProcessID(i))
			}
		}
		shares := make([]Share, 0, len(ids))
		for _, id := range ids {
			sh, err := s.SignShare(id, msg)
			if err != nil {
				return false
			}
			shares = append(shares, sh)
		}
		cert, err := s.Combine(msg, shares)
		if len(ids) < 5 {
			return errors.Is(err, ErrTooFewShares)
		}
		if err != nil || !s.Verify(msg, cert) {
			return false
		}
		return !s.Verify(append(msg, 0x01), cert)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
