package threshold

import (
	"errors"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/types"
)

// TestLargeNQuorumArithmetic checks the paper's threshold identities at
// scale-regime sizes (including even n, where n > 2t+1): any two Quorum
// sets intersect in at least t+1 processes (so at least one correct one),
// a SmallQuorum always contains a correct process, and the fallback
// threshold stays below what f can reach.
func TestLargeNQuorumArithmetic(t *testing.T) {
	for _, n := range []int{257, 258, 1024, 1025, 4096} {
		params, err := types.NewParams(n)
		if err != nil {
			t.Fatal(err)
		}
		q, sq, fb := params.Quorum(), params.SmallQuorum(), params.FallbackThreshold()
		// Two quorums of size q out of n overlap in >= 2q-n processes;
		// quorum intersection demands that beats t.
		if overlap := 2*q - n; overlap < params.T+1 {
			t.Errorf("n=%d: quorum overlap %d < t+1 = %d", n, overlap, params.T+1)
		}
		if sq != params.T+1 {
			t.Errorf("n=%d: SmallQuorum = %d, want t+1 = %d", n, sq, params.T+1)
		}
		if q > n {
			t.Errorf("n=%d: quorum %d unreachable (> n)", n, q)
		}
		if fb < 0 || fb > params.T {
			t.Errorf("n=%d: fallback threshold %d outside [0, t=%d]", n, fb, params.T)
		}
	}
}

// TestLargeNCertificateThresholds builds real certificates at n = 257 and
// n = 1024 with the actual protocol thresholds (Quorum and SmallQuorum as
// K), in both encodings, and checks the properties the protocol layers
// rely on: a K-signer certificate combines and verifies, K-1 signers are
// rejected, two disjointly-chosen quorum certificates share at least t+1
// signers, and a signer-set tampered certificate fails verification.
func TestLargeNCertificateThresholds(t *testing.T) {
	for _, n := range []int{257, 1024} {
		params, err := types.NewParams(n)
		if err != nil {
			t.Fatal(err)
		}
		base, err := sig.NewHMACRing(n, []byte("large-n"))
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte("large-n quorum message")
		for _, mode := range modes() {
			for _, k := range []int{params.Quorum(), params.SmallQuorum()} {
				s, err := New(base, k, mode, []byte("dealer"))
				if err != nil {
					t.Fatal(err)
				}
				// Low-end signers [0, k) and high-end signers [n-k, n).
				lo := make([]Share, 0, k)
				hi := make([]Share, 0, k)
				for i := 0; i < k; i++ {
					shLo, err := s.SignShare(types.ProcessID(i), msg)
					if err != nil {
						t.Fatal(err)
					}
					shHi, err := s.SignShare(types.ProcessID(n-k+i), msg)
					if err != nil {
						t.Fatal(err)
					}
					lo = append(lo, shLo)
					hi = append(hi, shHi)
				}
				certLo, err := s.Combine(msg, lo)
				if err != nil {
					t.Fatalf("n=%d %v k=%d: %v", n, mode, k, err)
				}
				certHi, err := s.Combine(msg, hi)
				if err != nil {
					t.Fatalf("n=%d %v k=%d: %v", n, mode, k, err)
				}
				for _, cert := range []*Cert{certLo, certHi} {
					if !s.Verify(msg, cert) {
						t.Fatalf("n=%d %v k=%d: valid certificate rejected", n, mode, k)
					}
					if cert.Words() != 1 {
						t.Errorf("n=%d: certificate words = %d, want 1", n, cert.Words())
					}
				}
				if _, err := s.Combine(msg, lo[:k-1]); !errors.Is(err, ErrTooFewShares) {
					t.Errorf("n=%d %v k=%d: k-1 shares combined, err = %v", n, mode, k, err)
				}
				if k == params.Quorum() {
					// Quorum intersection with real signer sets: count the
					// overlap of the two certificates' BitSets.
					overlap := 0
					for id, ok := certLo.Signers.NextSet(0); ok; id, ok = certLo.Signers.NextSet(int(id) + 1) {
						if certHi.Signers.Has(id) {
							overlap++
						}
					}
					if overlap < params.T+1 {
						t.Errorf("n=%d %v: quorum certs overlap in %d signers, want >= t+1 = %d",
							n, mode, overlap, params.T+1)
					}
				}
				// Tampering with the signer set must invalidate the
				// certificate: the tag/shares no longer match the set.
				forged := certLo.Clone()
				var outsider types.ProcessID = -1
				for i := 0; i < n; i++ {
					if !forged.Signers.Has(types.ProcessID(i)) {
						outsider = types.ProcessID(i)
						break
					}
				}
				if outsider >= 0 {
					forged.Signers.Add(outsider)
					if s.Verify(msg, forged) {
						t.Errorf("n=%d %v k=%d: signer-set-tampered certificate verified", n, mode, k)
					}
				}
			}
		}
	}
}
