package threshold

import (
	"fmt"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/types"
)

func benchCombine(b *testing.B, n int, mode Mode) {
	base, err := sig.NewHMACRing(n, []byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	k := (n + (n-1)/2 + 2) / 2 // the paper's quorum
	s, err := New(base, k, mode, []byte("d"))
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("m")
	shares := make([]Share, k)
	for i := 0; i < k; i++ {
		sh, err := s.SignShare(types.ProcessID(i), msg)
		if err != nil {
			b.Fatal(err)
		}
		shares[i] = sh
	}
	var cert *Cert
	b.Run("combine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := s.Combine(msg, shares)
			if err != nil {
				b.Fatal(err)
			}
			cert = c
		}
	})
	b.Run("verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !s.Verify(msg, cert) {
				b.Fatal("verify failed")
			}
		}
	})
}

func BenchmarkQuorumCert(b *testing.B) {
	for _, n := range []int{21, 101} {
		for _, mode := range []Mode{ModeAggregate, ModeCompact} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode), func(b *testing.B) {
				benchCombine(b, n, mode)
			})
		}
	}
}
