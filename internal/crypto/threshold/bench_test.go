package threshold

import (
	"crypto/rand"
	"fmt"
	"runtime"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/verifycache"
	"adaptiveba/internal/types"
)

func benchCombine(b *testing.B, n int, mode Mode) {
	base, err := sig.NewHMACRing(n, []byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	k := (n + (n-1)/2 + 2) / 2 // the paper's quorum
	s, err := New(base, k, mode, []byte("d"))
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("m")
	shares := make([]Share, k)
	for i := 0; i < k; i++ {
		sh, err := s.SignShare(types.ProcessID(i), msg)
		if err != nil {
			b.Fatal(err)
		}
		shares[i] = sh
	}
	var cert *Cert
	b.Run("combine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := s.Combine(msg, shares)
			if err != nil {
				b.Fatal(err)
			}
			cert = c
		}
	})
	b.Run("verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !s.Verify(msg, cert) {
				b.Fatal("verify failed")
			}
		}
	})
}

func BenchmarkQuorumCert(b *testing.B) {
	for _, n := range []int{21, 101} {
		for _, mode := range []Mode{ModeAggregate, ModeCompact} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode), func(b *testing.B) {
				benchCombine(b, n, mode)
			})
		}
	}
}

// BenchmarkAggregateVerifyFastPath compares the plain serial aggregate
// verify against the parallel fan-out and the content-addressed cache,
// over an Ed25519 base where share verification dominates.
func BenchmarkAggregateVerifyFastPath(b *testing.B) {
	for _, n := range []int{21, 41} {
		base, err := sig.NewEd25519Ring(n, rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		k := (n + (n-1)/2 + 2) / 2
		msg := []byte("m")
		plain, err := New(base, k, ModeAggregate, nil)
		if err != nil {
			b.Fatal(err)
		}
		shares := make([]Share, k)
		for i := 0; i < k; i++ {
			sh, err := plain.SignShare(types.ProcessID(i), msg)
			if err != nil {
				b.Fatal(err)
			}
			shares[i] = sh
		}
		cert, err := plain.Combine(msg, shares)
		if err != nil {
			b.Fatal(err)
		}
		run := func(b *testing.B, s *Scheme) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !s.Verify(msg, cert) {
					b.Fatal("verify failed")
				}
			}
		}
		b.Run(fmt.Sprintf("n=%d/serial", n), func(b *testing.B) { run(b, plain) })
		b.Run(fmt.Sprintf("n=%d/parallel", n), func(b *testing.B) {
			s, err := New(base, k, ModeAggregate, nil, WithParallelVerify(runtime.GOMAXPROCS(0)))
			if err != nil {
				b.Fatal(err)
			}
			run(b, s)
		})
		b.Run(fmt.Sprintf("n=%d/cached", n), func(b *testing.B) {
			s, err := New(base, k, ModeAggregate, nil, WithVerifyCache(verifycache.New(verifycache.DefaultCapacity)))
			if err != nil {
				b.Fatal(err)
			}
			run(b, s)
		})
	}
}
