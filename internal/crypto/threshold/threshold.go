// Package threshold implements the (k, n)-threshold signature abstraction
// from Section 2 of the paper: k unique signatures on the same message can
// be batched into a certificate "with the same length as an individual
// signature", i.e. a certificate costs one word.
//
// The paper assumes an ideal scheme (BLS-style threshold signatures); the
// Go standard library has no pairing crypto, so two encodings are offered
// with identical word accounting:
//
//   - ModeAggregate: the certificate physically carries the k component
//     signatures. Verification checks each against the base scheme. Fully
//     trustless, larger on the wire.
//   - ModeCompact: a trusted dealer (part of the same trusted setup that
//     distributes keys) condenses k verified shares into a constant-size
//     HMAC tag over (message, signer set). This matches the paper's ideal-
//     functionality abstraction and the constant byte size of real
//     threshold signatures.
//
// Both encodings count as exactly one word (Cert.Words), so every
// complexity measurement in this repository is encoding-independent.
package threshold

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/verifycache"
	"adaptiveba/internal/types"
)

// Mode selects the certificate encoding.
type Mode int

// Certificate encodings.
const (
	ModeAggregate Mode = iota + 1
	ModeCompact
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeAggregate:
		return "aggregate"
	case ModeCompact:
		return "compact"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Errors returned by the scheme.
var (
	ErrTooFewShares = errors.New("threshold: not enough valid unique shares")
	ErrBadShare     = errors.New("threshold: invalid share")
	ErrBadParams    = errors.New("threshold: invalid parameters")
	ErrBadCert      = errors.New("threshold: malformed certificate")
)

// Share is one process's contribution towards a certificate: its ordinary
// signature on the message.
type Share struct {
	Signer types.ProcessID
	Sig    sig.Signature
}

// Cert is a (k, n)-threshold certificate: proof that at least K distinct
// processes signed Msg. Exactly one of Shares/Tag is populated, depending
// on the scheme's mode.
type Cert struct {
	K       int
	Signers *types.BitSet
	// Shares holds the component signatures ordered by ascending signer ID
	// (aggregate mode only).
	Shares []sig.Signature
	// Tag is the dealer's constant-size tag (compact mode only).
	Tag []byte
}

// Words returns the certificate's cost in the paper's model: one word.
func (c *Cert) Words() int { return 1 }

// Count returns the number of distinct signers backing the certificate.
func (c *Cert) Count() int {
	if c == nil || c.Signers == nil {
		return 0
	}
	return c.Signers.Count()
}

// Bytes estimates the certificate's wire size.
func (c *Cert) Bytes() int {
	if c == nil {
		return 0
	}
	n := 8 + len(c.Signers.Words())*8 + len(c.Tag)
	for _, s := range c.Shares {
		n += len(s)
	}
	return n
}

// Clone returns a deep copy.
func (c *Cert) Clone() *Cert {
	if c == nil {
		return nil
	}
	out := &Cert{K: c.K, Signers: c.Signers.Clone()}
	if c.Tag != nil {
		out.Tag = append([]byte(nil), c.Tag...)
	}
	if c.Shares != nil {
		out.Shares = make([]sig.Signature, len(c.Shares))
		for i, s := range c.Shares {
			out.Shares[i] = s.Clone()
		}
	}
	return out
}

// Scheme batches and verifies threshold certificates at one fixed
// threshold K over a base signature scheme.
type Scheme struct {
	n         int
	k         int
	mode      Mode
	base      sig.Scheme
	dealerKey []byte // compact mode only

	// Verification fast path (see internal/crypto/verifycache): an
	// optional content-addressed memo for whole-certificate checks and a
	// worker bound for fanning aggregate share verification across cores.
	cache   *verifycache.Cache
	workers int
}

// Option configures optional Scheme behavior at construction.
type Option func(*Scheme)

// WithVerifyCache memoizes aggregate-certificate verification results in
// c, keyed by the full (mode, k, n, message, signer set, share bytes)
// content. Compact certificates are not cached: their verification is a
// single HMAC, no more expensive than the key hash itself.
func WithVerifyCache(c *verifycache.Cache) Option {
	return func(s *Scheme) { s.cache = c }
}

// WithParallelVerify fans aggregate share verification across up to
// workers goroutines (early-cancelling on the first invalid share).
// workers <= 1 keeps verification serial.
func WithParallelVerify(workers int) Option {
	return func(s *Scheme) { s.workers = workers }
}

// minParallelShares is the smallest share count worth the goroutine
// fan-out; below it the spawn overhead exceeds the win even for Ed25519.
const minParallelShares = 4

// New creates a (k, n)-threshold scheme over base. For ModeCompact,
// dealerSeed keys the trusted dealer; same seed, same dealer.
func New(base sig.Scheme, k int, mode Mode, dealerSeed []byte, opts ...Option) (*Scheme, error) {
	if base == nil {
		return nil, fmt.Errorf("%w: nil base scheme", ErrBadParams)
	}
	n := base.N()
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadParams, k, n)
	}
	s := &Scheme{n: n, k: k, mode: mode, base: base}
	switch mode {
	case ModeAggregate:
	case ModeCompact:
		mac := hmac.New(sha256.New, dealerSeed)
		mac.Write([]byte("adaptiveba/threshold-dealer"))
		s.dealerKey = mac.Sum(nil)
	default:
		return nil, fmt.Errorf("%w: unknown mode %v", ErrBadParams, mode)
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// K returns the threshold.
func (s *Scheme) K() int { return s.k }

// N returns the ring size.
func (s *Scheme) N() int { return s.n }

// Mode returns the certificate encoding.
func (s *Scheme) Mode() Mode { return s.mode }

// SignShare produces signer's share on msg (an ordinary signature).
func (s *Scheme) SignShare(signer types.ProcessID, msg []byte) (Share, error) {
	sg, err := s.base.Sign(signer, msg)
	if err != nil {
		return Share{}, err
	}
	return Share{Signer: signer, Sig: sg}, nil
}

// VerifyShare reports whether sh is a valid share on msg.
func (s *Scheme) VerifyShare(msg []byte, sh Share) bool {
	return s.base.Verify(sh.Signer, msg, sh.Sig)
}

// Combine batches shares into a certificate. Shares are verified and
// de-duplicated by signer; at least K valid unique shares are required.
func (s *Scheme) Combine(msg []byte, shares []Share) (*Cert, error) {
	signers := types.NewBitSet(s.n)
	bySigner := make(map[types.ProcessID]sig.Signature, len(shares))
	for _, sh := range shares {
		if signers.Has(sh.Signer) {
			continue
		}
		if !s.VerifyShare(msg, sh) {
			return nil, fmt.Errorf("%w: signer %v", ErrBadShare, sh.Signer)
		}
		signers.Add(sh.Signer)
		bySigner[sh.Signer] = sh.Sig
	}
	if signers.Count() < s.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewShares, signers.Count(), s.k)
	}
	cert := &Cert{K: s.k, Signers: signers}
	switch s.mode {
	case ModeAggregate:
		members := signers.Members()
		cert.Shares = make([]sig.Signature, len(members))
		for i, id := range members {
			cert.Shares[i] = bySigner[id].Clone()
		}
	case ModeCompact:
		cert.Tag = s.tag(msg, signers)
	}
	return cert, nil
}

// Verify reports whether cert proves that K distinct processes signed msg.
//
// With WithVerifyCache, aggregate-mode results are memoized under a key
// committing to the entire certificate content, so the n-th machine
// checking the same certificate pays a hash instead of k public-key
// operations. With WithParallelVerify, a miss fans the k share checks
// across cores, cancelling early on the first invalid share.
func (s *Scheme) Verify(msg []byte, cert *Cert) bool {
	if cert == nil || cert.Signers == nil || cert.K != s.k || cert.Signers.Cap() != s.n {
		return false
	}
	if cert.Count() < s.k {
		return false
	}
	if s.cache == nil || s.mode != ModeAggregate {
		return s.verifyCert(msg, cert)
	}
	return s.cache.Do(s.certKey(msg, cert), func() bool {
		return s.verifyCert(msg, cert)
	})
}

// certKey commits to the scheme parameters, the message, and the full
// certificate bytes (signer set and every share), so a cached positive
// can never be served for a certificate that differs anywhere.
func (s *Scheme) certKey(msg []byte, cert *Cert) verifycache.Key {
	h := verifycache.NewHasher("cert")
	h.Uint64(uint64(s.mode))
	h.Uint64(uint64(s.k))
	h.Uint64(uint64(s.n))
	h.Bytes(msg)
	words := cert.Signers.Words()
	h.Uint64(uint64(len(words)))
	for _, w := range words {
		h.Uint64(w)
	}
	h.Uint64(uint64(len(cert.Shares)))
	for _, sh := range cert.Shares {
		h.Bytes(sh)
	}
	h.Bytes(cert.Tag)
	return h.Sum()
}

// verifyCert is the uncached verification path (structural checks done).
func (s *Scheme) verifyCert(msg []byte, cert *Cert) bool {
	switch s.mode {
	case ModeAggregate:
		members := cert.Signers.Members()
		if len(cert.Shares) != len(members) {
			return false
		}
		if s.workers > 1 && len(members) >= minParallelShares {
			return s.verifySharesParallel(msg, members, cert.Shares)
		}
		for i, id := range members {
			if !s.base.Verify(id, msg, cert.Shares[i]) {
				return false
			}
		}
		return true
	case ModeCompact:
		return hmac.Equal(cert.Tag, s.tag(msg, cert.Signers))
	default:
		return false
	}
}

// verifySharesParallel checks shares across up to s.workers goroutines in
// strided slices. The first failure flips a shared flag so the remaining
// workers stop starting new verifications (the result — valid iff every
// share is valid — is identical to the serial path either way).
func (s *Scheme) verifySharesParallel(msg []byte, members []types.ProcessID, shares []sig.Signature) bool {
	w := s.workers
	if w > len(members) {
		w = len(members)
	}
	var failed atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(members); i += w {
				if failed.Load() {
					return
				}
				if !s.base.Verify(members[i], msg, shares[i]) {
					failed.Store(true)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	return !failed.Load()
}

// tag computes the dealer's compact tag over (k, msg, signer set).
func (s *Scheme) tag(msg []byte, signers *types.BitSet) []byte {
	mac := hmac.New(sha256.New, s.dealerKey)
	var kb [8]byte
	binary.BigEndian.PutUint64(kb[:], uint64(s.k))
	mac.Write(kb[:])
	var lb [8]byte
	binary.BigEndian.PutUint64(lb[:], uint64(len(msg)))
	mac.Write(lb[:])
	mac.Write(msg)
	for _, w := range signers.Words() {
		var wb [8]byte
		binary.BigEndian.PutUint64(wb[:], w)
		mac.Write(wb[:])
	}
	return mac.Sum(nil)[:16]
}
