package threshold

import (
	"crypto/rand"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/crypto/verifycache"
	"adaptiveba/internal/types"
)

func fastpathScheme(t *testing.T, n, k int, opts ...Option) *Scheme {
	t.Helper()
	base, err := sig.NewHMACRing(n, []byte("fastpath-test"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(base, k, ModeAggregate, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func quorumIDs(k int) []types.ProcessID {
	ids := make([]types.ProcessID, k)
	for i := range ids {
		ids[i] = types.ProcessID(i)
	}
	return ids
}

// TestParallelVerifyMatchesSerial: for the same certificates — valid,
// share-tampered, signer-inflated — the parallel path must return exactly
// what the serial path returns, at several worker counts.
func TestParallelVerifyMatchesSerial(t *testing.T) {
	const n, k = 21, 14
	msg := []byte("parallel equivalence")
	serial := fastpathScheme(t, n, k)
	cert, err := serial.Combine(msg, collectShares(t, serial, msg, quorumIDs(k)...))
	if err != nil {
		t.Fatal(err)
	}
	// Variants: the valid cert plus every single-share tampering.
	variants := []*Cert{cert}
	for i := 0; i < k; i++ {
		c := cert.Clone()
		c.Shares[i][0] ^= 0x80
		variants = append(variants, c)
	}
	inflated := cert.Clone()
	inflated.Signers.Add(types.ProcessID(n - 1)) // Shares no longer line up
	variants = append(variants, inflated)

	for _, workers := range []int{2, 3, 8, 64} {
		par := fastpathScheme(t, n, k, WithParallelVerify(workers))
		for vi, c := range variants {
			want := serial.Verify(msg, c)
			if got := par.Verify(msg, c); got != want {
				t.Errorf("workers=%d variant=%d: parallel=%v serial=%v", workers, vi, got, want)
			}
		}
		if par.Verify([]byte("other"), cert) {
			t.Errorf("workers=%d: cert verified under wrong message", workers)
		}
	}
}

// TestParallelVerifySmallCertStaysSerial: below minParallelShares the
// fan-out is skipped (spawn overhead exceeds the win) but the result is
// still correct.
func TestParallelVerifySmallCertStaysSerial(t *testing.T) {
	s := fastpathScheme(t, 7, minParallelShares-1, WithParallelVerify(8))
	msg := []byte("small")
	cert, err := s.Combine(msg, collectShares(t, s, msg, quorumIDs(minParallelShares-1)...))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Verify(msg, cert) {
		t.Error("small valid cert rejected")
	}
	bad := cert.Clone()
	bad.Shares[0][0] ^= 1
	if s.Verify(msg, bad) {
		t.Error("small tampered cert accepted")
	}
}

// TestCertCacheForgerySafety: after a valid aggregate certificate is
// cached positive, any byte-level variation of its shares, signer set, or
// message must miss the cache and fail verification.
func TestCertCacheForgerySafety(t *testing.T) {
	const n, k = 9, 6
	cache := verifycache.New(4096)
	s := fastpathScheme(t, n, k, WithVerifyCache(cache))
	msg := []byte("decide 1 in view 7")
	cert, err := s.Combine(msg, collectShares(t, s, msg, quorumIDs(k)...))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Verify(msg, cert) {
		t.Fatal("valid cert rejected")
	}
	if st := cache.Stats(); st.Misses != 1 {
		t.Fatalf("priming stats = %+v", st)
	}
	// Every share byte-flip must be a distinct key and fail.
	for i := 0; i < k; i++ {
		for _, bit := range []byte{0x01, 0x80} {
			c := cert.Clone()
			c.Shares[i][0] ^= bit
			if s.Verify(msg, c) {
				t.Fatalf("share %d flipped by %#x accepted", i, bit)
			}
		}
	}
	// Signer-set and message perturbations.
	c := cert.Clone()
	c.Signers.Add(types.ProcessID(n - 1))
	if s.Verify(msg, c) {
		t.Error("inflated signer set accepted")
	}
	if s.Verify(append([]byte(nil), msg[:len(msg)-1]...), cert) {
		t.Error("cert accepted for truncated message")
	}
	// The honest entry is still served — as a hit, not a recompute.
	before := cache.Stats()
	if !s.Verify(msg, cert) {
		t.Fatal("honest cert rejected after forgery probes")
	}
	after := cache.Stats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Errorf("honest re-verify was not a pure hit: before=%+v after=%+v", before, after)
	}
}

// TestCompactModeNotCached: compact verification is one HMAC, so the
// cache must stay cold even when configured.
func TestCompactModeNotCached(t *testing.T) {
	base, err := sig.NewHMACRing(5, []byte("compact"))
	if err != nil {
		t.Fatal(err)
	}
	cache := verifycache.New(64)
	s, err := New(base, 3, ModeCompact, []byte("dealer"), WithVerifyCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	cert, err := s.Combine(msg, collectShares(t, s, msg, 0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !s.Verify(msg, cert) {
			t.Fatal("valid compact cert rejected")
		}
	}
	if st := cache.Stats(); st != (verifycache.Stats{}) {
		t.Errorf("compact verification touched the cache: %+v", st)
	}
}

// TestCachedCertWithEd25519 exercises the production pairing (ed25519
// base + cache + parallel workers) end to end.
func TestCachedCertWithEd25519(t *testing.T) {
	base, err := sig.NewEd25519Ring(7, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cache := verifycache.New(1024)
	s, err := New(base, 5, ModeAggregate, nil, WithVerifyCache(cache), WithParallelVerify(4))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("ed25519 cert")
	cert, err := s.Combine(msg, collectShares(t, s, msg, quorumIDs(5)...))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !s.Verify(msg, cert) {
			t.Fatal("valid cert rejected")
		}
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 3 {
		t.Errorf("stats = %+v, want 1 miss / 3 hits", st)
	}
	bad := cert.Clone()
	bad.Shares[2][10] ^= 0x40
	if s.Verify(msg, bad) {
		t.Error("tampered ed25519 cert accepted")
	}
}
