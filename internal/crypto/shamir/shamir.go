// Package shamir implements (k, n) Shamir secret sharing over the field
// GF(p) with p = 2^61 - 1 (a Mersenne prime). It is the dealer-side
// substrate behind the trusted setup of the compact threshold-certificate
// mode: the setup can split a dealer secret so that no coalition smaller
// than k learns anything about it.
package shamir

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
)

// P is the field modulus 2^61 - 1.
const P uint64 = 1<<61 - 1

// Errors returned by the package.
var (
	ErrBadThreshold = errors.New("shamir: need 1 <= k <= n and n < P")
	ErrBadSecret    = errors.New("shamir: secret must be < P")
	ErrBadShares    = errors.New("shamir: need k distinct shares")
)

// Share is one point (X, Y) on the dealer's polynomial. X is never zero.
type Share struct {
	X uint64
	Y uint64
}

// add returns a+b mod P.
func add(a, b uint64) uint64 {
	s := a + b
	if s >= P || s < a { // s < a catches overflow, impossible here since a,b < 2^61
		s -= P
	}
	return s
}

// sub returns a-b mod P.
func sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + P - b
}

// mul returns a*b mod P using 128-bit intermediate and Mersenne reduction.
func mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo. With p = 2^61-1, 2^61 ≡ 1, so fold in 61-bit limbs.
	l0 := lo & P
	l1 := (lo >> 61) | (hi << 3 & P)
	l2 := hi >> 58
	r := l0 + l1
	if r >= P {
		r -= P
	}
	r += l2
	if r >= P {
		r -= P
	}
	return r
}

// pow returns a^e mod P.
func pow(a, e uint64) uint64 {
	r := uint64(1)
	base := a % P
	for e > 0 {
		if e&1 == 1 {
			r = mul(r, base)
		}
		base = mul(base, base)
		e >>= 1
	}
	return r
}

// inv returns the multiplicative inverse of a (a != 0) via Fermat.
func inv(a uint64) uint64 {
	return pow(a, P-2)
}

// Split shares secret among n parties with threshold k, drawing polynomial
// coefficients from rand. Share i has X = i+1.
func Split(secret uint64, k, n int, rand io.Reader) ([]Share, error) {
	if k < 1 || n < k || uint64(n) >= P {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadThreshold, k, n)
	}
	if secret >= P {
		return nil, ErrBadSecret
	}
	coeffs := make([]uint64, k)
	coeffs[0] = secret
	for i := 1; i < k; i++ {
		c, err := randFieldElement(rand)
		if err != nil {
			return nil, fmt.Errorf("shamir: draw coefficient: %w", err)
		}
		coeffs[i] = c
	}
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		x := uint64(i + 1)
		// Horner evaluation.
		y := uint64(0)
		for j := k - 1; j >= 0; j-- {
			y = add(mul(y, x), coeffs[j])
		}
		shares[i] = Share{X: x, Y: y}
	}
	return shares, nil
}

// randFieldElement draws a uniform element of GF(P) by rejection sampling.
func randFieldElement(rand io.Reader) (uint64, error) {
	var buf [8]byte
	for {
		if _, err := io.ReadFull(rand, buf[:]); err != nil {
			return 0, err
		}
		v := binary.BigEndian.Uint64(buf[:]) & (1<<61 - 1)
		if v < P {
			return v, nil
		}
	}
}

// Reconstruct recovers the secret from at least k distinct shares using
// Lagrange interpolation at x = 0. Extra shares beyond the first k distinct
// ones are ignored.
func Reconstruct(shares []Share, k int) (uint64, error) {
	if k < 1 {
		return 0, ErrBadThreshold
	}
	// Select the first k shares with distinct, valid X coordinates.
	pts := make([]Share, 0, k)
	seen := make(map[uint64]bool, k)
	for _, s := range shares {
		if s.X == 0 || s.X >= P || s.Y >= P || seen[s.X] {
			continue
		}
		seen[s.X] = true
		pts = append(pts, s)
		if len(pts) == k {
			break
		}
	}
	if len(pts) < k {
		return 0, fmt.Errorf("%w: have %d distinct, need %d", ErrBadShares, len(pts), k)
	}
	secret := uint64(0)
	for i := 0; i < k; i++ {
		num, den := uint64(1), uint64(1)
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			num = mul(num, pts[j].X)                // Π x_j
			den = mul(den, sub(pts[j].X, pts[i].X)) // Π (x_j - x_i)
		}
		li := mul(num, inv(den))
		secret = add(secret, mul(pts[i].Y, li))
	}
	return secret, nil
}
