package shamir

import (
	"crypto/rand"
	"errors"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

func TestSplitReconstructRoundTrip(t *testing.T) {
	tests := []struct {
		name   string
		secret uint64
		k, n   int
	}{
		{name: "2-of-3", secret: 42, k: 2, n: 3},
		{name: "1-of-1", secret: 7, k: 1, n: 1},
		{name: "5-of-9", secret: P - 1, k: 5, n: 9},
		{name: "t+1 of 2t+1", secret: 123456789, k: 11, n: 21},
		{name: "zero secret", secret: 0, k: 3, n: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			shares, err := Split(tt.secret, tt.k, tt.n, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if len(shares) != tt.n {
				t.Fatalf("got %d shares", len(shares))
			}
			got, err := Reconstruct(shares[:tt.k], tt.k)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.secret {
				t.Errorf("Reconstruct = %d, want %d", got, tt.secret)
			}
		})
	}
}

func TestReconstructFromAnySubset(t *testing.T) {
	secret := uint64(987654321)
	k, n := 4, 10
	shares, err := Split(secret, k, n, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(n)
		subset := make([]Share, k)
		for i := 0; i < k; i++ {
			subset[i] = shares[perm[i]]
		}
		got, err := Reconstruct(subset, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != secret {
			t.Fatalf("trial %d: got %d", trial, got)
		}
	}
}

func TestTooFewShares(t *testing.T) {
	shares, err := Split(5, 3, 5, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reconstruct(shares[:2], 3); !errors.Is(err, ErrBadShares) {
		t.Errorf("err = %v", err)
	}
	// Duplicated shares do not count twice.
	dup := []Share{shares[0], shares[0], shares[0]}
	if _, err := Reconstruct(dup, 3); !errors.Is(err, ErrBadShares) {
		t.Errorf("duplicates counted: %v", err)
	}
}

func TestKMinusOneSharesRevealNothingStructural(t *testing.T) {
	// With k-1 shares, every candidate secret is consistent with some
	// polynomial; verify at least that two different secrets can produce
	// an identical first share when coefficients differ (no functional
	// dependence of a single share on the secret alone).
	sharesA, err := Split(1, 2, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Craft: for secret 2, choose coefficient so that share at X=1 equals
	// sharesA[0]. y = s + c*1 => c = y - s.
	y := sharesA[0].Y
	c := sub(y, 2)
	manual := Share{X: 1, Y: add(2, mul(c, 1))}
	if manual.Y != y {
		t.Fatalf("could not construct colliding share: %d vs %d", manual.Y, y)
	}
}

func TestSplitValidation(t *testing.T) {
	if _, err := Split(1, 0, 3, rand.Reader); !errors.Is(err, ErrBadThreshold) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := Split(1, 4, 3, rand.Reader); !errors.Is(err, ErrBadThreshold) {
		t.Errorf("k>n: %v", err)
	}
	if _, err := Split(P, 2, 3, rand.Reader); !errors.Is(err, ErrBadSecret) {
		t.Errorf("secret >= P: %v", err)
	}
	if _, err := Reconstruct(nil, 0); !errors.Is(err, ErrBadThreshold) {
		t.Error("Reconstruct accepted k=0")
	}
}

func TestReconstructSkipsMalformedShares(t *testing.T) {
	shares, err := Split(77, 2, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	polluted := append([]Share{{X: 0, Y: 1}, {X: 1, Y: P}}, shares...)
	got, err := Reconstruct(polluted, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Errorf("got %d", got)
	}
}

func TestFieldArithmetic(t *testing.T) {
	if got := mul(P-1, P-1); got != 1 {
		// (-1)*(-1) = 1 mod P
		t.Errorf("mul(P-1,P-1) = %d", got)
	}
	if got := add(P-1, 1); got != 0 {
		t.Errorf("add(P-1,1) = %d", got)
	}
	if got := sub(0, 1); got != P-1 {
		t.Errorf("sub(0,1) = %d", got)
	}
	if got := pow(3, P-1); got != 1 {
		// Fermat's little theorem.
		t.Errorf("3^(P-1) = %d", got)
	}
	for _, a := range []uint64{1, 2, 12345, P - 1, P / 2} {
		if got := mul(a, inv(a)); got != 1 {
			t.Errorf("a*inv(a) = %d for a=%d", got, a)
		}
	}
}

func TestQuickFieldMulMatchesBigIntSemantics(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= P
		b %= P
		got := mul(a, b)
		// Reference via 128-bit decomposition using math/bits directly with
		// mod-by-subtraction on the folded limbs mirrors the implementation;
		// instead check ring axioms on random triples.
		return got < P && mul(a, b) == mul(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	g := func(a, b, c uint64) bool {
		a %= P
		b %= P
		c %= P
		// Distributivity: a*(b+c) == a*b + a*c.
		return mul(a, add(b, c)) == add(mul(a, b), mul(a, c))
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSplitReconstruct(t *testing.T) {
	f := func(secretRaw uint64, kRaw, extraRaw uint8) bool {
		secret := secretRaw % P
		k := int(kRaw%10) + 1
		n := k + int(extraRaw%10)
		shares, err := Split(secret, k, n, rand.Reader)
		if err != nil {
			return false
		}
		got, err := Reconstruct(shares[n-k:], k)
		return err == nil && got == secret
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
