package verifycache

import (
	"fmt"
	"testing"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/types"
)

func testRing(t testing.TB, n int) *sig.HMACRing {
	t.Helper()
	r, err := sig.NewHMACRing(n, []byte("verifycache-test"))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDoMemoizes(t *testing.T) {
	c := New(64)
	k := SigKey(1, []byte("m"), sig.Signature("s"))
	calls := 0
	for i := 0; i < 5; i++ {
		if !c.Do(k, func() bool { calls++; return true }) {
			t.Fatal("cached result flipped")
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Errorf("stats = %+v, want 1 miss / 4 hits", st)
	}
}

func TestDoCachesNegatives(t *testing.T) {
	// Verification is deterministic, so a failed check is as cacheable as
	// a successful one.
	c := New(64)
	k := SigKey(2, []byte("m"), sig.Signature("bad"))
	calls := 0
	for i := 0; i < 3; i++ {
		if c.Do(k, func() bool { calls++; return false }) {
			t.Fatal("negative result flipped to positive")
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
}

func TestNilCacheComputesDirectly(t *testing.T) {
	var c *Cache
	calls := 0
	for i := 0; i < 3; i++ {
		if !c.Do(Key{}, func() bool { calls++; return true }) {
			t.Fatal("nil cache altered result")
		}
	}
	if calls != 3 {
		t.Errorf("nil cache memoized: %d calls, want 3", calls)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
	if _, ok := c.Lookup(Key{}); ok {
		t.Error("nil cache lookup hit")
	}
}

func TestCapacityBound(t *testing.T) {
	const capacity = 16
	c := New(capacity)
	for i := 0; i < 10*capacity; i++ {
		k := SigKey(types.ProcessID(i), []byte("m"), sig.Signature(fmt.Sprintf("s%d", i)))
		c.Do(k, func() bool { return true })
	}
	st := c.Stats()
	if st.Entries > capacity {
		t.Errorf("%d entries resident, capacity %d", st.Entries, capacity)
	}
	if st.Evictions == 0 {
		t.Error("no evictions after 10x-capacity inserts")
	}
	if st.Misses != 10*capacity {
		t.Errorf("misses = %d, want %d (all keys distinct)", st.Misses, 10*capacity)
	}
}

func TestEvictedKeyRecomputes(t *testing.T) {
	c := New(4) // half = 2: generations rotate every 2 inserts
	k0 := SigKey(0, []byte("m"), sig.Signature("s0"))
	calls := 0
	c.Do(k0, func() bool { calls++; return true })
	for i := 1; i < 8; i++ {
		c.Do(SigKey(types.ProcessID(i), []byte("m"), sig.Signature(fmt.Sprintf("s%d", i))), func() bool { return true })
	}
	c.Do(k0, func() bool { calls++; return true })
	if calls != 2 {
		t.Errorf("evicted key computed %d times, want 2", calls)
	}
}

func TestKeyCommitsToEveryField(t *testing.T) {
	msg, sg := []byte("message"), sig.Signature("signature")
	base := SigKey(1, msg, sg)
	if SigKey(2, msg, sg) == base {
		t.Error("key ignores signer")
	}
	if SigKey(1, []byte("messagf"), sg) == base {
		t.Error("key ignores message content")
	}
	if SigKey(1, msg, sig.Signature("signaturf")) == base {
		t.Error("key ignores signature content")
	}
	if SigKey(1, msg[:6], append(sg.Clone(), msg[6:]...)) == base {
		t.Error("key is not injective across the msg/sig boundary")
	}
	// Domain separation: a sig key can never equal a cert-domain key over
	// the same raw bytes.
	h := NewHasher("cert")
	h.Uint64(1)
	h.Bytes(msg)
	h.Bytes(sg)
	if h.Sum() == base {
		t.Error("domains collide")
	}
}

func TestWrapScheme(t *testing.T) {
	ring := testRing(t, 4)
	c := New(1024)
	s := WrapScheme(ring, c)
	if s.Name() != "hmac+cache" {
		t.Errorf("name = %q", s.Name())
	}
	if s.N() != 4 || s.SignatureSize() != ring.SignatureSize() {
		t.Error("scheme metadata not forwarded")
	}
	msg := []byte("hello")
	sg, err := s.Sign(1, msg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !s.Verify(1, msg, sg) {
			t.Fatal("valid signature rejected")
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 1 miss / 2 hits", st)
	}
	cs := s.(*Scheme)
	if cs.Unwrap() != sig.Scheme(ring) || cs.Cache() != c {
		t.Error("accessors broken")
	}
	// Nil cache: wrapping is the identity.
	if WrapScheme(ring, nil) != sig.Scheme(ring) {
		t.Error("nil cache did not return inner scheme")
	}
}

func TestWrapSchemeRejectsUnknownSigner(t *testing.T) {
	s := WrapScheme(testRing(t, 3), New(64))
	if s.Verify(7, []byte("m"), sig.Signature("x")) {
		t.Error("out-of-range signer accepted")
	}
	if s.Verify(-1, []byte("m"), sig.Signature("x")) {
		t.Error("negative signer accepted")
	}
	if _, err := s.Sign(9, []byte("m")); err == nil {
		t.Error("out-of-range signer signed")
	}
}

func TestDoSurvivesComputePanic(t *testing.T) {
	c := New(64)
	k := SigKey(0, []byte("m"), sig.Signature("s"))
	func() {
		defer func() { recover() }()
		c.Do(k, func() bool { panic("boom") })
	}()
	// The key must not be stuck in flight or cached: the next Do computes.
	calls := 0
	if !c.Do(k, func() bool { calls++; return true }) || calls != 1 {
		t.Errorf("cache wedged after panic: calls=%d", calls)
	}
}
