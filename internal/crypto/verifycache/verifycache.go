// Package verifycache is the verification fast path shared by every
// machine of a run: a content-addressed memoization table for signature
// and certificate checks. In a simulated run all honest processes share
// one trusted setup (proto.Crypto), yet each of the n processes
// independently re-verifies the identical signatures and threshold
// certificates — O(n²) redundant public-key operations per round. Since
// verification is a deterministic pure function of (signer, message,
// signature bytes), its result can be cached under a key that commits to
// that entire triple.
//
// Forgery safety: a cache key is the SHA-256 of a domain-separated,
// length-prefixed serialization of the signer identity, the full message,
// and the full signature (or certificate) bytes. A cached positive can
// therefore never be served for a signature that differs in even one bit
// from the one that actually verified; negative results are equally
// cacheable because verification is deterministic. The cache changes CPU
// cost only — never message contents, word counts, or protocol decisions.
//
// Concurrency: lookups take a read lock; misses are deduplicated with
// single-flight, so concurrent machines verifying the same certificate
// compute it once and the rest wait for that result. Memory is bounded by
// a two-generation table (at most Capacity entries live at once); the
// cache has per-run lifetime.
package verifycache

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sync"
	"sync/atomic"

	"adaptiveba/internal/crypto/sig"
	"adaptiveba/internal/types"
)

// Key is a content-addressed verification-cache key: a SHA-256 hash
// committing to the verification domain, the signer, the full message,
// and the full signature/certificate bytes.
type Key [sha256.Size]byte

// Hasher incrementally builds a Key from length-prefixed fields, so
// callers (e.g. the threshold package for certificates) can commit to
// structured inputs without ambiguity.
type Hasher struct {
	h   hash.Hash
	buf [8]byte
}

// NewHasher starts a Key computation under the given domain-separation
// tag. Distinct domains ("sig", "cert") can never collide.
func NewHasher(domain string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.Bytes([]byte(domain))
	return h
}

// Uint64 appends a fixed-width integer field.
func (h *Hasher) Uint64(v uint64) {
	binary.BigEndian.PutUint64(h.buf[:], v)
	h.h.Write(h.buf[:])
}

// Bytes appends a length-prefixed byte field. The prefix makes the
// serialization injective: ("ab","c") and ("a","bc") hash differently.
func (h *Hasher) Bytes(b []byte) {
	h.Uint64(uint64(len(b)))
	h.h.Write(b)
}

// Sum finalizes the key.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// SigKey is the cache key for an individual signature verification.
func SigKey(signer types.ProcessID, msg []byte, s sig.Signature) Key {
	h := NewHasher("sig")
	h.Uint64(uint64(signer))
	h.Bytes(msg)
	h.Bytes(s)
	return h.Sum()
}

// DefaultCapacity bounds a cache created with capacity <= 0. At ~33 bytes
// per entry the worst case is a few MB per run.
const DefaultCapacity = 1 << 16

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits          int64 // lookups answered from the table
	Misses        int64 // lookups that computed the verification
	InflightWaits int64 // lookups that waited on a concurrent computation
	Evictions     int64 // entries dropped by generation rotation
	Entries       int64 // entries currently resident
}

// Cache memoizes boolean verification results under content-addressed
// keys. The zero of *Cache (nil) is valid and disables caching: Do
// computes directly. Cache is safe for concurrent use.
type Cache struct {
	half int // per-generation entry bound (capacity / 2)

	mu       sync.RWMutex
	cur      map[Key]bool
	prev     map[Key]bool
	inflight map[Key]*call

	hits      atomic.Int64
	misses    atomic.Int64
	waits     atomic.Int64
	evictions atomic.Int64
}

// call is one in-flight computation other verifiers can wait on.
type call struct {
	done chan struct{}
	ok   bool
}

// New creates a cache holding at most capacity entries (DefaultCapacity
// if capacity <= 0). Eviction is two-generation: when the current
// generation fills half the capacity, the previous generation is dropped
// wholesale — O(1) bookkeeping per insert, strict memory bound.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	half := capacity / 2
	if half < 1 {
		half = 1
	}
	return &Cache{
		half:     half,
		cur:      make(map[Key]bool),
		inflight: make(map[Key]*call),
	}
}

// lookupLocked checks both generations. Callers hold c.mu (read or write).
func (c *Cache) lookupLocked(k Key) (v, ok bool) {
	if v, ok = c.cur[k]; ok {
		return v, true
	}
	v, ok = c.prev[k]
	return v, ok
}

// storeLocked inserts a result, rotating generations at the bound.
// Callers hold c.mu for writing.
func (c *Cache) storeLocked(k Key, v bool) {
	if len(c.cur) >= c.half {
		c.evictions.Add(int64(len(c.prev)))
		c.prev = c.cur
		c.cur = make(map[Key]bool, c.half)
	}
	c.cur[k] = v
}

// Do returns the memoized verification result for k, calling compute at
// most once per cached lifetime of the key. Concurrent calls for the same
// key are coalesced: one computes, the others wait for its result. A nil
// cache computes directly.
func (c *Cache) Do(k Key, compute func() bool) bool {
	if c == nil {
		return compute()
	}
	c.mu.RLock()
	v, ok := c.lookupLocked(k)
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return v
	}

	c.mu.Lock()
	if v, ok := c.lookupLocked(k); ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return v
	}
	if cl, ok := c.inflight[k]; ok {
		c.mu.Unlock()
		<-cl.done
		c.waits.Add(1)
		return cl.ok
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[k] = cl
	c.mu.Unlock()

	c.misses.Add(1)
	completed := false
	defer func() {
		// Runs on panic too: waiters must never deadlock. If compute
		// panicked, the result is not stored and waiters see false —
		// the conservative answer for a verification.
		c.mu.Lock()
		delete(c.inflight, k)
		if completed {
			c.storeLocked(k, cl.ok)
		}
		c.mu.Unlock()
		close(cl.done)
	}()
	cl.ok = compute()
	completed = true
	return cl.ok
}

// Lookup reports a cached result without computing on miss.
func (c *Cache) Lookup(k Key) (v, ok bool) {
	if c == nil {
		return false, false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.lookupLocked(k)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.RLock()
	entries := int64(len(c.cur) + len(c.prev))
	c.mu.RUnlock()
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		InflightWaits: c.waits.Load(),
		Evictions:     c.evictions.Load(),
		Entries:       entries,
	}
}

// Scheme decorates a sig.Scheme with the cache, in the style of
// sig.Counting: Verify is memoized, Sign passes through.
type Scheme struct {
	inner sig.Scheme
	cache *Cache
}

var _ sig.Scheme = (*Scheme)(nil)

// WrapScheme returns inner with Verify memoized through cache. A nil
// cache returns inner unchanged.
func WrapScheme(inner sig.Scheme, cache *Cache) sig.Scheme {
	if cache == nil {
		return inner
	}
	return &Scheme{inner: inner, cache: cache}
}

// Name implements sig.Scheme.
func (s *Scheme) Name() string { return s.inner.Name() + "+cache" }

// N implements sig.Scheme.
func (s *Scheme) N() int { return s.inner.N() }

// SignatureSize implements sig.Scheme.
func (s *Scheme) SignatureSize() int { return s.inner.SignatureSize() }

// Sign implements sig.Scheme (pass-through; signing is never cached).
func (s *Scheme) Sign(signer types.ProcessID, msg []byte) (sig.Signature, error) {
	return s.inner.Sign(signer, msg)
}

// Verify implements sig.Scheme with memoization.
func (s *Scheme) Verify(signer types.ProcessID, msg []byte, sg sig.Signature) bool {
	return s.cache.Do(SigKey(signer, msg, sg), func() bool {
		return s.inner.Verify(signer, msg, sg)
	})
}

// Unwrap returns the underlying scheme.
func (s *Scheme) Unwrap() sig.Scheme { return s.inner }

// Cache returns the backing cache (for stats).
func (s *Scheme) Cache() *Cache { return s.cache }
